module github.com/snails-bench/snails

go 1.22
