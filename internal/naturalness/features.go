package naturalness

import (
	"hash/fnv"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
)

// FeatureDim is the dimensionality of the hashed character n-gram feature
// space; dense engineered features occupy the first denseFeatures slots.
const (
	hashedDim     = 1024
	denseFeatures = 8
	FeatureDim    = denseFeatures + hashedDim
)

// Featurizer converts identifiers into sparse feature vectors for the
// trainable classifiers. Tagging toggles the appendix-B.5 character-tagging
// feature, which the paper shows improves F1 for both GPT- and CANINE-based
// models.
type Featurizer struct {
	Dict    *ident.Dictionary
	Tagging bool
}

// Features returns the identifier's feature vector.
func (f *Featurizer) Features(identifier string) []float64 {
	d := f.Dict
	if d == nil {
		d = ident.DefaultDictionary()
	}
	v := make([]float64, FeatureDim)

	// Dense engineered features.
	words := ident.Words(identifier)
	v[0] = ident.MeanTokenInDictionary(identifier, d)
	v[1] = ident.IdentifierSeverity(identifier, d)
	v[2] = ident.VowelRatio(identifier)
	v[3] = clamp01(float64(len(identifier)) / 24.0)
	v[4] = clamp01(float64(len(words)) / 5.0)
	v[5] = avgWordLen(words) / 12.0
	v[6] = shortTokenFraction(words)
	v[7] = ident.HeuristicScore(identifier, d)

	// Hashed character n-grams (2- and 3-grams) over the lower-cased
	// identifier, optionally augmented with the character tag sequence.
	text := strings.ToLower(identifier)
	if f.Tagging {
		text = text + "\x00" + ident.CharTag(identifier)
	}
	addNGrams(v, text, 2)
	addNGrams(v, text, 3)
	return v
}

func addNGrams(v []float64, text string, n int) {
	runes := []rune(text)
	if len(runes) < n {
		return
	}
	for i := 0; i+n <= len(runes); i++ {
		h := fnv.New32a()
		h.Write([]byte(string(runes[i : i+n])))
		idx := denseFeatures + int(h.Sum32()%uint32(hashedDim))
		v[idx] += 1
	}
	// L1-normalize the hashed block so long identifiers don't dominate.
	var sum float64
	for i := denseFeatures; i < len(v); i++ {
		sum += v[i]
	}
	if sum > 0 {
		for i := denseFeatures; i < len(v); i++ {
			v[i] /= sum
		}
	}
}

func avgWordLen(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	total := 0
	for _, w := range words {
		total += len(w)
	}
	return float64(total) / float64(len(words))
}

func shortTokenFraction(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	short := 0
	for _, w := range words {
		if len(w) <= 3 && !ident.IsCommonAcronym(w) {
			short++
		}
	}
	return float64(short) / float64(len(words))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
