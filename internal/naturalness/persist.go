package naturalness

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence: the paper releases its trained classifier artifacts for
// practitioners; Save and LoadSoftmax serialize a trained softmax classifier
// so it can ship alongside a schema-assessment tool without retraining.

// softmaxState is the serialized form of a SoftmaxClassifier.
type softmaxState struct {
	Name    string
	Tagging bool
	Weights [3][]float64
}

// Save writes the trained model to w in gob encoding.
func (c *SoftmaxClassifier) Save(w io.Writer) error {
	state := softmaxState{
		Name:    c.name,
		Tagging: c.feats.Tagging,
		Weights: c.weights,
	}
	if err := gob.NewEncoder(w).Encode(state); err != nil {
		return fmt.Errorf("naturalness: saving classifier: %w", err)
	}
	return nil
}

// LoadSoftmax reads a model previously written by Save.
func LoadSoftmax(r io.Reader) (*SoftmaxClassifier, error) {
	var state softmaxState
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("naturalness: loading classifier: %w", err)
	}
	for i := range state.Weights {
		if len(state.Weights[i]) != FeatureDim+1 {
			return nil, fmt.Errorf("naturalness: classifier was trained with feature dim %d, this build uses %d",
				len(state.Weights[i])-1, FeatureDim)
		}
	}
	return &SoftmaxClassifier{
		name:    state.Name,
		feats:   &Featurizer{Tagging: state.Tagging},
		weights: state.Weights,
	}, nil
}
