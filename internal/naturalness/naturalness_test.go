package naturalness

import (
	"bytes"
	"testing"
	"testing/quick"
)

// A small hand-labeled sample in the spirit of the paper's Table 1.
var sample = []Labeled{
	{"airbag", Regular}, {"AdaptiveCruiseControl", Regular}, {"ModelYear", Regular},
	{"service_name", Regular}, {"Research_Staff", Regular}, {"species", Regular},
	{"vegetation_height", Regular}, {"water_temperature", Regular}, {"first_name", Regular},
	{"TotalAmount", Regular}, {"SchoolDistrict", Regular}, {"teacher_count", Regular},
	{"location_id", Regular}, {"CommonName", Regular}, {"observation_date", Regular},
	{"InvoiceNumber", Regular}, {"employee_salary", Regular}, {"vehicle_model", Regular},
	{"crash_severity", Regular}, {"enrollment_total", Regular},

	{"VegHeight", Low}, {"WaterTemp", Low}, {"SpecCode", Low}, {"LocID", Low},
	{"ObsDate", Low}, {"InvNum", Low}, {"EmpSalary", Low}, {"VehMdl", Low},
	{"tbl_MicroHabitat", Low}, {"Coord_Syst", Low}, {"RecvAsst", Low},
	{"IsueFrDate", Low}, {"AccountChk", Low}, {"UsrQuery", Low}, {"TeachCnt", Low},
	{"EnrollTot", Low}, {"SchDistrict", Low}, {"CrashSev", Low}, {"ObsrvrName", Low},
	{"ProtclNm", Low},

	{"VgHt", Least}, {"WtTp", Least}, {"SpCd", Least}, {"LcId", Least},
	{"ObDt", Least}, {"InNm", Least}, {"EmSl", Least}, {"VhMd", Least},
	{"AdCtTxIRWT", Least}, {"COGM_Act", Least}, {"DfltSlp", Least},
	{"FNDAbs", Least}, {"CSI22", Least}, {"JKWGT12", Least}, {"TcCt", Least},
	{"EnTt", Least}, {"ScDt", Least}, {"CrSv", Least}, {"EMSGCSEYE", Least},
	{"MT_RIVPACS_2011_OTU", Least},
}

func TestLevelString(t *testing.T) {
	if Regular.String() != "Regular" || Low.String() != "Low" || Least.String() != "Least" {
		t.Error("String names wrong")
	}
	if Regular.Label() != "N1" || Low.Label() != "N2" || Least.Label() != "N3" {
		t.Error("short labels wrong")
	}
}

func TestParseLevel(t *testing.T) {
	for _, l := range Levels {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
		got, err = ParseLevel(l.Label())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.Label(), got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestCombined(t *testing.T) {
	if got := Combined(10, 0, 0); got != 1.0 {
		t.Errorf("all Regular should be 1.0, got %v", got)
	}
	if got := Combined(0, 0, 10); got != 0.0 {
		t.Errorf("all Least should be 0.0, got %v", got)
	}
	if got := Combined(0, 10, 0); got != 0.5 {
		t.Errorf("all Low should be 0.5, got %v", got)
	}
	if got := Combined(0, 0, 0); got != 0 {
		t.Errorf("empty should be 0, got %v", got)
	}
}

func TestCombinedBounds(t *testing.T) {
	f := func(r, lo, le uint8) bool {
		v := Combined(int(r), int(lo), int(le))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportionsSumToOne(t *testing.T) {
	levels := []Level{Regular, Regular, Low, Least, Least, Least}
	r, lo, le := Proportions(levels)
	if s := r + lo + le; s < 0.999 || s > 1.001 {
		t.Errorf("proportions sum %v", s)
	}
	if r != 2.0/6 || lo != 1.0/6 || le != 3.0/6 {
		t.Errorf("wrong proportions: %v %v %v", r, lo, le)
	}
}

func TestHeuristicClassifierOrdering(t *testing.T) {
	h := NewHeuristicClassifier()
	if got := h.Classify("vegetation_height"); got != Regular {
		t.Errorf("vegetation_height -> %v, want Regular", got)
	}
	if got := h.Classify("ZZQXK"); got != Least {
		t.Errorf("ZZQXK -> %v, want Least", got)
	}
}

func TestSoftmaxTrainsAboveChance(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 20
	c := TrainSoftmax("test-softmax", sample, true, cfg)
	rep := Score(c, sample)
	// On its own (small) training set the model should fit well above the
	// 1/3 chance level.
	if rep.Accuracy < 0.8 {
		t.Errorf("training accuracy too low: %+v", rep)
	}
}

func TestSoftmaxDeterministic(t *testing.T) {
	a := TrainSoftmax("a", sample, true, DefaultTrainConfig())
	b := TrainSoftmax("b", sample, true, DefaultTrainConfig())
	for _, ex := range sample {
		if a.Classify(ex.Identifier) != b.Classify(ex.Identifier) {
			t.Fatalf("training is not deterministic for %q", ex.Identifier)
		}
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	c := TrainSoftmax("p", sample, false, DefaultTrainConfig())
	for _, ex := range sample[:10] {
		p := c.Probabilities(ex.Identifier)
		sum := p[Regular] + p[Low] + p[Least]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("probabilities for %q sum to %v", ex.Identifier, sum)
		}
	}
}

func TestFewShotClassifier(t *testing.T) {
	c := NewFewShotClassifier("fewshot", sample)
	correct := 0
	for _, ex := range sample {
		if c.Classify(ex.Identifier) == ex.Level {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(sample)); frac < 0.5 {
		t.Errorf("few-shot accuracy %v below sanity threshold", frac)
	}
}

func TestConfusionMetrics(t *testing.T) {
	var m Confusion
	// Perfect predictions on 3 examples per class.
	for _, l := range Levels {
		m[l][l] = 3
	}
	if m.Accuracy() != 1 || m.MacroF1() != 1 || m.MacroPrecision() != 1 || m.MacroRecall() != 1 {
		t.Errorf("perfect confusion should yield all 1s: %+v", m)
	}
	// All-wrong matrix.
	var w Confusion
	w[Regular][Least] = 5
	w[Low][Regular] = 5
	w[Least][Low] = 5
	if w.Accuracy() != 0 {
		t.Errorf("all-wrong accuracy = %v", w.Accuracy())
	}
	if w.Total() != 15 {
		t.Errorf("total = %d", w.Total())
	}
}

func TestMetricBounds(t *testing.T) {
	f := func(vals [9]uint8) bool {
		var m Confusion
		k := 0
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] = int(vals[k])
				k++
			}
		}
		for _, v := range []float64{m.Accuracy(), m.MacroPrecision(), m.MacroRecall(), m.MacroF1()} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPartitions(t *testing.T) {
	train, val, test := Split(sample, 0.6, 0.2, 7)
	if len(train)+len(val)+len(test) != len(sample) {
		t.Fatalf("split lost examples: %d+%d+%d != %d", len(train), len(val), len(test), len(sample))
	}
	// Determinism.
	train2, _, _ := Split(sample, 0.6, 0.2, 7)
	if len(train2) != len(train) || train2[0] != train[0] {
		t.Error("split not deterministic")
	}
	// No overlap.
	seen := map[string]int{}
	for _, e := range train {
		seen[e.Identifier]++
	}
	for _, e := range val {
		seen[e.Identifier]++
	}
	for _, e := range test {
		seen[e.Identifier]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("identifier %q appears %d times across splits", id, n)
		}
	}
}

func TestEvaluateCountsEverything(t *testing.T) {
	c := NewHeuristicClassifier()
	m := Evaluate(c, sample)
	if m.Total() != len(sample) {
		t.Errorf("confusion total %d != %d", m.Total(), len(sample))
	}
}

func TestWeakSupervise(t *testing.T) {
	seed := TrainSoftmax("seed", sample[:30], true, DefaultTrainConfig())
	res := WeakSupervise(seed, sample)
	if len(res.Labeled) != len(sample) {
		t.Fatalf("labeled = %d, want %d", len(res.Labeled), len(sample))
	}
	if res.Agreement <= 0.5 || res.Agreement > 1 {
		t.Errorf("agreement implausible: %v", res.Agreement)
	}
	if len(res.Disagreements) != len(sample)-int(res.Agreement*float64(len(sample))+0.5) {
		t.Errorf("disagreement count inconsistent: %d vs agreement %.3f over %d",
			len(res.Disagreements), res.Agreement, len(sample))
	}
	// After curation every label matches the reference.
	refByID := map[string]Level{}
	for _, ex := range sample {
		refByID[ex.Identifier] = ex.Level
	}
	for _, ex := range res.Labeled {
		if ex.Level != refByID[ex.Identifier] {
			t.Errorf("curated label wrong for %q: %v", ex.Identifier, ex.Level)
		}
	}
	empty := WeakSupervise(seed, nil)
	if empty.Agreement != 0 || len(empty.Labeled) != 0 {
		t.Errorf("empty reference mishandled: %+v", empty)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := TrainSoftmax("persisted", sample, true, DefaultTrainConfig())
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSoftmax(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != "persisted" {
		t.Errorf("name = %q", loaded.Name())
	}
	for _, ex := range sample {
		if got, want := loaded.Classify(ex.Identifier), c.Classify(ex.Identifier); got != want {
			t.Fatalf("loaded model diverges on %q: %v vs %v", ex.Identifier, got, want)
		}
	}
	if _, err := LoadSoftmax(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk input should fail to load")
	}
}
