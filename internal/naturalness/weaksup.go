package naturalness

// Weak supervision (appendix B.3): the paper bootstraps its large labeled
// collection by training a first classifier on the small hand-labeled
// Collection 1, pre-labeling the full identifier set with it, and having the
// authors curate the disagreements (90.1% of the Davinci pre-labels were
// already correct). WeakSupervise reproduces that workflow.

// WeakSupervisionResult summarizes a pre-labeling pass.
type WeakSupervisionResult struct {
	// Labeled is the machine-pre-labeled collection.
	Labeled []Labeled
	// Agreement is the fraction of pre-labels that matched the reference
	// labels (the paper reports 0.901 for its Davinci pass).
	Agreement float64
	// Disagreements holds the identifiers whose pre-label differed — the
	// set a human curator reviews.
	Disagreements []Labeled
}

// WeakSupervise pre-labels the identifiers of the reference collection with
// the seed classifier and reports agreement against the reference labels.
// The returned Labeled set carries the classifier's labels for the
// identifiers it got right and the reference (curated) labels for the
// disagreements, mirroring the paper's review-and-correct procedure.
func WeakSupervise(seed Classifier, reference []Labeled) WeakSupervisionResult {
	var res WeakSupervisionResult
	agree := 0
	for _, ref := range reference {
		pred := seed.Classify(ref.Identifier)
		if pred == ref.Level {
			agree++
			res.Labeled = append(res.Labeled, Labeled{Identifier: ref.Identifier, Level: pred})
			continue
		}
		res.Disagreements = append(res.Disagreements, Labeled{Identifier: ref.Identifier, Level: pred})
		// Curation restores the reference label.
		res.Labeled = append(res.Labeled, ref)
	}
	if len(reference) > 0 {
		res.Agreement = float64(agree) / float64(len(reference))
	}
	return res
}
