// Package naturalness implements the SNAILS 3-class schema identifier
// naturalness taxonomy (Regular / Low / Least), the heuristic and trainable
// machine-learning classifiers of Artifact 3, and the combined naturalness
// score used throughout the paper's evaluation.
package naturalness

import "fmt"

// Level is a discrete naturalness category for a schema identifier.
type Level int

const (
	// Regular (N1): complete English words with no abbreviations, or only
	// acronyms in common usage (e.g. ID, GPS).
	Regular Level = iota
	// Low (N2): abbreviated English words and less common acronyms that are
	// usually recognizable by non-domain experts; the meaning can be
	// inferred without consulting external documentation.
	Low
	// Least (N3): the identifier's meaning cannot be inferred by non-experts
	// due to indecipherable acronyms or abbreviations; external metadata
	// must be consulted.
	Least
)

// Levels lists all categories in decreasing naturalness order.
var Levels = []Level{Regular, Low, Least}

// String returns the category name used in the paper's figures.
func (l Level) String() string {
	switch l {
	case Regular:
		return "Regular"
	case Low:
		return "Low"
	case Least:
		return "Least"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Label returns the N1/N2/N3 label used in the paper's training data.
func (l Level) Label() string {
	switch l {
	case Regular:
		return "N1"
	case Low:
		return "N2"
	case Least:
		return "N3"
	default:
		return "N?"
	}
}

// ParseLevel parses either the long ("Regular") or short ("N1") label.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "Regular", "regular", "N1", "n1":
		return Regular, nil
	case "Low", "low", "N2", "n2":
		return Low, nil
	case "Least", "least", "N3", "n3":
		return Least, nil
	}
	return Regular, fmt.Errorf("naturalness: unknown level %q", s)
}

// Weight returns the combined-naturalness weight of the category
// (equation 5 of the paper): Regular 1.0, Low 0.5, Least 0.0.
func (l Level) Weight() float64 {
	switch l {
	case Regular:
		return 1.0
	case Low:
		return 0.5
	default:
		return 0.0
	}
}

// Combined computes the combined naturalness score of a set of category
// counts: the weighted average of category proportions, ranging from 0.0
// (all Least) to 1.0 (all Regular).
func Combined(regular, low, least int) float64 {
	total := regular + low + least
	if total == 0 {
		return 0
	}
	return (1.0*float64(regular) + 0.5*float64(low)) / float64(total)
}

// CombinedOf computes the combined naturalness of a slice of levels.
func CombinedOf(levels []Level) float64 {
	var r, lo, le int
	for _, l := range levels {
		switch l {
		case Regular:
			r++
		case Low:
			lo++
		default:
			le++
		}
	}
	return Combined(r, lo, le)
}

// Proportions returns the fraction of identifiers at each level.
func Proportions(levels []Level) (regular, low, least float64) {
	if len(levels) == 0 {
		return 0, 0, 0
	}
	var r, lo, le int
	for _, l := range levels {
		switch l {
		case Regular:
			r++
		case Low:
			lo++
		default:
			le++
		}
	}
	n := float64(len(levels))
	return float64(r) / n, float64(lo) / n, float64(le) / n
}
