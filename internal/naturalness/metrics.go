package naturalness

// Confusion is a 3x3 confusion matrix indexed [gold][predicted].
type Confusion [3][3]int

// Evaluate runs the classifier over the labeled test set and returns the
// confusion matrix.
func Evaluate(c Classifier, test []Labeled) Confusion {
	var m Confusion
	for _, ex := range test {
		m[ex.Level][c.Classify(ex.Identifier)]++
	}
	return m
}

// Total returns the number of evaluated examples.
func (m Confusion) Total() int {
	n := 0
	for i := range m {
		for j := range m[i] {
			n += m[i][j]
		}
	}
	return n
}

// Accuracy is the fraction of correctly classified examples.
func (m Confusion) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := range m {
		correct += m[i][i]
	}
	return float64(correct) / float64(total)
}

// ClassPrecision returns precision for one class.
func (m Confusion) ClassPrecision(l Level) float64 {
	tp := m[l][l]
	predicted := 0
	for i := range m {
		predicted += m[i][l]
	}
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// ClassRecall returns recall for one class.
func (m Confusion) ClassRecall(l Level) float64 {
	tp := m[l][l]
	actual := 0
	for j := range m[l] {
		actual += m[l][j]
	}
	if actual == 0 {
		return 0
	}
	return float64(tp) / float64(actual)
}

// MacroPrecision averages per-class precision, matching the Table 5 style.
func (m Confusion) MacroPrecision() float64 {
	var s float64
	for _, l := range Levels {
		s += m.ClassPrecision(l)
	}
	return s / float64(len(Levels))
}

// MacroRecall averages per-class recall.
func (m Confusion) MacroRecall() float64 {
	var s float64
	for _, l := range Levels {
		s += m.ClassRecall(l)
	}
	return s / float64(len(Levels))
}

// MacroF1 is the harmonic mean of per-class precision and recall averaged
// across classes.
func (m Confusion) MacroF1() float64 {
	var s float64
	for _, l := range Levels {
		p, r := m.ClassPrecision(l), m.ClassRecall(l)
		if p+r > 0 {
			s += 2 * p * r / (p + r)
		}
	}
	return s / float64(len(Levels))
}

// Report bundles the Table 5 row for a classifier.
type Report struct {
	Model     string
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
}

// Score evaluates the classifier and returns its Table 5 row.
func Score(c Classifier, test []Labeled) Report {
	m := Evaluate(c, test)
	return Report{
		Model:     c.Name(),
		Accuracy:  m.Accuracy(),
		Precision: m.MacroPrecision(),
		Recall:    m.MacroRecall(),
		F1:        m.MacroF1(),
	}
}
