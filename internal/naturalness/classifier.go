package naturalness

import (
	"math"
	"sort"

	"github.com/snails-bench/snails/internal/ident"
)

// Classifier assigns a naturalness level to a schema identifier.
type Classifier interface {
	// Name returns a display name for reports (Table 5 rows).
	Name() string
	// Classify returns the predicted naturalness level.
	Classify(identifier string) Level
}

// Labeled is one labeled training/evaluation example (Artifact 2 entry).
type Labeled struct {
	Identifier string
	Level      Level
}

// --- Heuristic classifier (appendix B.1) -----------------------------------

// HeuristicClassifier thresholds the appendix-B.1 heuristic naturalness
// score into the 3-class taxonomy. The paper reports ML superior to this
// approach; it is kept for the comparison.
type HeuristicClassifier struct {
	Dict *ident.Dictionary
	// Thresholds: score >= RegularMin -> Regular; score >= LowMin -> Low.
	RegularMin, LowMin float64
}

// NewHeuristicClassifier returns a heuristic classifier with the default
// thresholds.
func NewHeuristicClassifier() *HeuristicClassifier {
	return &HeuristicClassifier{RegularMin: 0.92, LowMin: 0.45}
}

func (h *HeuristicClassifier) Name() string { return "Heuristic" }

func (h *HeuristicClassifier) Classify(identifier string) Level {
	d := h.Dict
	if d == nil {
		d = ident.DefaultDictionary()
	}
	s := ident.HeuristicScore(identifier, d)
	switch {
	case s >= h.RegularMin:
		return Regular
	case s >= h.LowMin:
		return Low
	default:
		return Least
	}
}

// --- Few-shot (nearest-prototype) classifier --------------------------------

// FewShotClassifier simulates few-shot LLM prompting: a handful of labeled
// examples define per-class prototypes in the dense feature space and a new
// identifier is assigned to the nearest prototype. Like the paper's GPT
// few-shot classifiers, it is cheaper to set up but less accurate than the
// finetuned models.
type FewShotClassifier struct {
	name       string
	feats      *Featurizer
	prototypes [3][]float64
}

// fewShotFeatures selects the shallow surface features available to an
// in-context learner: lengths, vowel balance and token shape, but not the
// dictionary machinery the finetuned models implicitly learn.
var fewShotFeatures = []int{1, 2, 3, 4, 5, 6}

// NewFewShotClassifier builds prototypes from the example set. Only shallow
// surface features participate, mirroring the pattern matching available to
// an in-context learner (and reproducing the Table 5 gap between few-shot
// prompting and finetuning).
func NewFewShotClassifier(name string, examples []Labeled) *FewShotClassifier {
	f := &FewShotClassifier{name: name, feats: &Featurizer{}}
	counts := [3]int{}
	for i := range f.prototypes {
		f.prototypes[i] = make([]float64, len(fewShotFeatures))
	}
	for _, ex := range examples {
		full := f.feats.Features(ex.Identifier)
		for j, fi := range fewShotFeatures {
			f.prototypes[ex.Level][j] += full[fi]
		}
		counts[ex.Level]++
	}
	for i := range f.prototypes {
		if counts[i] > 0 {
			for j := range f.prototypes[i] {
				f.prototypes[i][j] /= float64(counts[i])
			}
		}
	}
	return f
}

func (f *FewShotClassifier) Name() string { return f.name }

func (f *FewShotClassifier) Classify(identifier string) Level {
	full := f.feats.Features(identifier)
	best := Regular
	bestDist := math.Inf(1)
	for _, l := range Levels {
		d := 0.0
		for j, fi := range fewShotFeatures {
			diff := full[fi] - f.prototypes[l][j]
			d += diff * diff
		}
		if d < bestDist {
			bestDist, best = d, l
		}
	}
	return best
}

// --- Softmax (finetuned) classifier -----------------------------------------

// SoftmaxClassifier is a multinomial logistic-regression classifier over
// hashed character n-grams and engineered features. It stands in for the
// paper's finetuned GPT-3.5 and CANINE models: trained on Collection 2 it
// reaches the high-80s/low-90s accuracy band of Table 5.
type SoftmaxClassifier struct {
	name  string
	feats *Featurizer
	// weights[class][feature]; bias folded in at index FeatureDim.
	weights [3][]float64
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         uint64
}

// DefaultTrainConfig returns the configuration used for the Table 5 runs.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 14, LearningRate: 0.25, L2: 1e-5, Seed: 17}
}

// TrainSoftmax trains a classifier on the labeled examples.
func TrainSoftmax(name string, examples []Labeled, tagging bool, cfg TrainConfig) *SoftmaxClassifier {
	c := &SoftmaxClassifier{
		name:  name,
		feats: &Featurizer{Tagging: tagging},
	}
	for i := range c.weights {
		c.weights[i] = make([]float64, FeatureDim+1)
	}
	// Pre-featurize once.
	X := make([][]float64, len(examples))
	y := make([]Level, len(examples))
	for i, ex := range examples {
		X[i] = c.feats.Features(ex.Identifier)
		y[i] = ex.Level
	}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	rng := splitMix64(cfg.Seed)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffle(order, &rng)
		lr := cfg.LearningRate / (1 + 0.3*float64(epoch))
		for _, i := range order {
			p := c.probs(X[i])
			for cls := range c.weights {
				grad := p[cls]
				if Level(cls) == y[i] {
					grad -= 1
				}
				w := c.weights[cls]
				for j, x := range X[i] {
					if x != 0 {
						w[j] -= lr * (grad*x + cfg.L2*w[j])
					}
				}
				w[FeatureDim] -= lr * grad // bias
			}
		}
	}
	return c
}

func (c *SoftmaxClassifier) probs(x []float64) [3]float64 {
	var z [3]float64
	for cls := range c.weights {
		w := c.weights[cls]
		s := w[FeatureDim]
		for j, v := range x {
			if v != 0 {
				s += w[j] * v
			}
		}
		z[cls] = s
	}
	maxZ := math.Max(z[0], math.Max(z[1], z[2]))
	var sum float64
	for i := range z {
		z[i] = math.Exp(z[i] - maxZ)
		sum += z[i]
	}
	for i := range z {
		z[i] /= sum
	}
	return z
}

func (c *SoftmaxClassifier) Name() string { return c.name }

// Classify returns the argmax class for the identifier.
func (c *SoftmaxClassifier) Classify(identifier string) Level {
	p := c.probs(c.feats.Features(identifier))
	best, bestP := Regular, p[0]
	for _, l := range []Level{Low, Least} {
		if p[l] > bestP {
			best, bestP = l, p[l]
		}
	}
	return best
}

// Probabilities returns the class probability distribution, useful for
// weak-supervision curation (Collection 2 generation).
func (c *SoftmaxClassifier) Probabilities(identifier string) map[Level]float64 {
	p := c.probs(c.feats.Features(identifier))
	return map[Level]float64{Regular: p[0], Low: p[1], Least: p[2]}
}

// --- deterministic shuffling -------------------------------------------------

type rngState uint64

func splitMix64(seed uint64) rngState { return rngState(seed) }

func (s *rngState) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func shuffle(order []int, rng *rngState) {
	for i := len(order) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
}

// SortLabeled orders examples deterministically by identifier then level;
// useful before seeding splits.
func SortLabeled(examples []Labeled) {
	sort.Slice(examples, func(i, j int) bool {
		if examples[i].Identifier != examples[j].Identifier {
			return examples[i].Identifier < examples[j].Identifier
		}
		return examples[i].Level < examples[j].Level
	})
}

// Split divides examples into train/validation/test partitions with the
// given fractions using a deterministic shuffle. Fractions must sum to <= 1;
// the remainder goes to test.
func Split(examples []Labeled, trainFrac, valFrac float64, seed uint64) (train, val, test []Labeled) {
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	rng := splitMix64(seed)
	shuffle(order, &rng)
	nTrain := int(float64(len(examples)) * trainFrac)
	nVal := int(float64(len(examples)) * valFrac)
	for i, idx := range order {
		switch {
		case i < nTrain:
			train = append(train, examples[idx])
		case i < nTrain+nVal:
			val = append(val, examples[idx])
		default:
			test = append(test, examples[idx])
		}
	}
	return train, val, test
}
