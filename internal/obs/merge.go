package obs

import (
	"bufio"
	"io"
	"sort"
	"strings"
)

// Exposition is one source scrape for MergeExpositions: the text exposition
// plus the label value identifying where it came from.
type Exposition struct {
	Value string // label value, e.g. the shard name
	Text  []byte // a Prometheus text-format v0.0.4 scrape
}

// MergeExpositions folds several Prometheus text expositions into one,
// prefixing every sample with `label="<value>"` so same-named series from
// different sources stay distinguishable. The cluster router uses it to
// aggregate shard scrapes under shard="<name>".
//
// Families (a # HELP/# TYPE comment pair and its samples) are merged by
// name: the first source's comments win, samples from every source follow
// in source order, and families are emitted in sorted name order — the same
// diffable discipline as Registry.WriteText. Sample lines are rewritten
// textually (the label block either starts after the metric name or is
// created), so histograms, counters, and gauges all pass through unchanged
// apart from the added label.
func MergeExpositions(w io.Writer, label string, sources []Exposition) error {
	type mergedFamily struct {
		help, typ string
		samples   []string
	}
	families := map[string]*mergedFamily{}
	var order []string

	for _, src := range sources {
		prefix := label + `="` + escapeLabelValue(src.Value) + `"`
		var cur *mergedFamily
		for _, line := range strings.Split(string(src.Text), "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				rest := line[len("# HELP "):]
				name := rest
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					name = rest[:i]
				}
				f, ok := families[name]
				if !ok {
					f = &mergedFamily{}
					families[name] = f
					order = append(order, name)
				}
				cur = f
				if strings.HasPrefix(line, "# HELP ") && f.help == "" {
					f.help = line
				}
				if strings.HasPrefix(line, "# TYPE ") && f.typ == "" {
					f.typ = line
				}
				continue
			}
			if strings.HasPrefix(line, "#") || cur == nil {
				continue
			}
			cur.samples = append(cur.samples, relabelSample(line, prefix))
		}
	}

	sort.Strings(order)
	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := families[name]
		if f.help != "" {
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		if f.typ != "" {
			bw.WriteString(f.typ)
			bw.WriteByte('\n')
		}
		for _, s := range f.samples {
			bw.WriteString(s)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// relabelSample injects a label pair into one sample line. The metric name
// ends at '{' (labeled sample) or at the first space (bare sample).
func relabelSample(line, labelPair string) string {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		// name{...} value — existing labels follow ours.
		rest := line[i+1:]
		if strings.HasPrefix(rest, "}") {
			return line[:i] + "{" + labelPair + rest
		}
		return line[:i] + "{" + labelPair + "," + rest
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + "{" + labelPair + "}" + line[i:]
	}
	return line
}
