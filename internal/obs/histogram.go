package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets fixes the log-spaced bucket count: bucket i covers durations in
// [2^i, 2^(i+1)) microseconds, so the histogram spans 1µs up to 2^27µs ≈
// 134s — beyond any request deadline. Sub-microsecond observations land in
// bucket 0.
//
// The type started life in internal/trace as the per-stage latency histogram;
// it was promoted here so every subsystem (server request latency, stage
// spans, sweep cells) shares one histogram implementation and one Prometheus
// exposition.
const NumBuckets = 28

// bucketIndex maps a duration to its log-spaced bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// bucketLower returns the inclusive lower bound of bucket i in microseconds.
func bucketLower(i int) float64 { return float64(uint64(1) << uint(i)) }

// BucketUpperSeconds returns the exclusive upper bound of bucket i in
// seconds, as rendered in the Prometheus `le` label. The top bucket absorbs
// every larger observation, so its bound is +Inf.
func BucketUpperSeconds(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return bucketLower(i+1) / 1e6
}

// Histogram is a fixed-bucket log-spaced latency histogram safe for
// concurrent observation: one atomic add per observation, no locks, no
// allocation. It replaces sort-based sample rings for per-stage data — the
// memory is constant and a snapshot never needs to copy samples.
type Histogram struct {
	counts   [NumBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// TotalNanos returns the summed observed duration in nanoseconds.
func (h *Histogram) TotalNanos() int64 { return h.sumNanos.Load() }

// Snapshot reads the per-bucket counts and the duration sum once. The bucket
// counts are mutually consistent enough for exposition (each is one atomic
// load); exposition derives _count from their sum so the cumulative series
// always ends exactly at the reported count, even while observations land
// concurrently.
func (h *Histogram) Snapshot() (buckets [NumBuckets]uint64, sumSeconds float64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, float64(h.sumNanos.Load()) / float64(time.Second)
}

// Quantile estimates the q-th quantile (0..1) in milliseconds by locating
// the bucket holding the target rank and interpolating linearly inside it.
// Resolution is bounded by the bucket width (a factor of two), which is
// adequate for the p50/p99 shape /metricsz reports.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if rank < cum+c {
			// Interpolate within [lower, 2*lower) by rank position.
			frac := (rank - cum) / c
			lower := bucketLower(i)
			return lower * (1 + frac) / 1000 // µs -> ms
		}
		cum += c
	}
	// Numerical fallthrough: report the top occupied bucket's upper bound.
	for i := NumBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return bucketLower(i) * 2 / 1000
		}
	}
	return 0
}

// MeanMillis returns the mean observed duration in milliseconds.
func (h *Histogram) MeanMillis() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNanos.Load()) / float64(n) / float64(time.Millisecond)
}
