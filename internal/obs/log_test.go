package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "INFO": slog.LevelInfo, "": slog.LevelInfo,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should error")
	}
}

func TestNewLoggerRejectsBadFormat(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "yaml", "info"); err == nil {
		t.Error("format yaml should be rejected")
	}
	if _, err := NewLogger(&strings.Builder{}, "json", "loud"); err == nil {
		t.Error("level loud should be rejected")
	}
}

// TestLoggerContextAttrs asserts request-scoped context attributes reach the
// emitted record in both formats, and that level filtering works.
func TestLoggerContextAttrs(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextAttrs(context.Background(),
		slog.Uint64("request_id", 42), slog.String("db", "CWO"))
	ctx = ContextAttrs(ctx, slog.String("variant", "least"))

	log.DebugContext(ctx, "hidden")
	log.InfoContext(ctx, "served", slog.Int("status", 200))

	line := strings.TrimSpace(sb.String())
	if strings.Contains(line, "hidden") {
		t.Fatal("debug record passed an info-level logger")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", line, err)
	}
	if rec["msg"] != "served" || rec["status"] != float64(200) {
		t.Errorf("record lost its own attrs: %v", rec)
	}
	if rec["request_id"] != float64(42) || rec["db"] != "CWO" || rec["variant"] != "least" {
		t.Errorf("record lost context attrs: %v", rec)
	}

	sb.Reset()
	text, err := NewLogger(&sb, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	text.DebugContext(ctx, "visible")
	if out := sb.String(); !strings.Contains(out, "request_id=42") || !strings.Contains(out, "db=CWO") {
		t.Errorf("text format lost context attrs: %q", out)
	}
}

// Histogram tests promoted from internal/trace alongside the type itself.

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9},  // 1000µs -> 2^9=512..1024
		{time.Second, 19},      // 1e6µs -> 2^19=524288..2^20
		{10 * time.Minute, 27}, // clamped to the top bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if !strings.Contains(formatFloat(BucketUpperSeconds(NumBuckets-1)), "Inf") {
		t.Error("top bucket upper bound must render as +Inf")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations spread over two well-separated buckets.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket [2µs,4µs)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond) // bucket [2048µs,4096µs)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.002 || p50 > 0.004 {
		t.Errorf("p50 = %vms, want within [2µs,4µs)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 2.0 || p99 > 4.096 {
		t.Errorf("p99 = %vms, want within [2.048ms,4.096ms]", p99)
	}
	if h.Quantile(0) > h.Quantile(0.5) || h.Quantile(0.5) > h.Quantile(1) {
		t.Error("quantiles are not monotone")
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	wantMean := (90*0.003 + 10*3.0) / 100
	if m := h.MeanMillis(); m < wantMean*0.99 || m > wantMean*1.01 {
		t.Errorf("mean = %vms, want ≈%vms", m, wantMean)
	}
	buckets, sum := h.Snapshot()
	var n uint64
	for _, b := range buckets {
		n += b
	}
	if n != 100 {
		t.Errorf("snapshot bucket sum = %d, want 100", n)
	}
	wantSum := 90*3e-6 + 10*3e-3
	if sum < wantSum*0.99 || sum > wantSum*1.01 {
		t.Errorf("snapshot sum = %v, want ≈%v", sum, wantSum)
	}
}
