package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTestRegistry assembles a registry exercising every metric kind.
func buildTestRegistry() (*Registry, *Counter, *CounterVec, *Gauge, *Histogram) {
	r := NewRegistry()
	c := r.Counter("snails_test_events_total", "Test events.")
	vec := r.CounterVec("snails_test_requests_total", "Test requests by path.", "path")
	g := r.Gauge("snails_test_inflight", "Test in-flight requests.")
	h := r.Histogram("snails_test_duration_seconds", "Test latencies.")
	r.GaugeFunc("snails_test_uptime_seconds", "Test uptime.", func() float64 { return 12.5 })
	r.CounterSeries("snails_test_cache_hits_total", "Test cache hits by cache.",
		Series{Labels: []Label{{"cache", "gold"}}, F: func() float64 { return 3 }},
		Series{Labels: []Label{{"cache", "pred"}}, F: func() float64 { return 0 }},
	)
	r.RegisterRuntime()
	return r, c, vec, g, h
}

// sampleLine matches one exposition sample: name, optional labels, value.
var sampleLine = regexp.MustCompile(`^([a-z0-9_]+)(\{[^}]*\})? (-?[0-9].*|\+Inf|-Inf|NaN)$`)

// parseExposition splits a text-format document into per-line samples,
// failing the test on any malformed line. It returns family names seen in
// HELP/TYPE headers and the full set of samples keyed by name+labels.
func parseExposition(t *testing.T, text string) (families map[string]string, samples map[string]float64) {
	t.Helper()
	families = map[string]string{} // name -> type
	samples = map[string]float64{}
	var lastFamily string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown TYPE %q in %q", typ, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("family %q declared twice", name)
			}
			families[name] = typ
			lastFamily = name
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line: %q", line)
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if base != lastFamily && name != lastFamily {
				t.Fatalf("sample %q not under its family's TYPE header (last family %q)", name, lastFamily)
			}
			var v float64
			if m[3] == "+Inf" {
				v = math.Inf(1)
			} else {
				var err error
				if v, err = strconv.ParseFloat(m[3], 64); err != nil {
					t.Fatalf("bad value in %q: %v", line, err)
				}
			}
			if _, dup := samples[name+m[2]]; dup {
				t.Fatalf("duplicate sample %q", name+m[2])
			}
			samples[name+m[2]] = v
		}
	}
	return families, samples
}

// TestExpositionFormat is the text-format golden test: every line parses,
// every family name is snails_-prefixed snake_case and unique, counters end
// in _total, and histogram families emit the full _bucket/_sum/_count shape.
func TestExpositionFormat(t *testing.T) {
	r, c, vec, g, h := buildTestRegistry()
	c.Add(7)
	vec.With("/v1/infer").Inc()
	vec.With("/healthz").Add(2)
	g.Set(3)
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	families, samples := parseExposition(t, text)

	nameRe := regexp.MustCompile(`^snails_[a-z0-9]+(_[a-z0-9]+)*$`)
	for name, typ := range families {
		if !nameRe.MatchString(name) {
			t.Errorf("family %q is not snails_-prefixed snake_case", name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %q does not end in _total", name)
		}
	}

	if v := samples["snails_test_events_total"]; v != 7 {
		t.Errorf("events_total = %v, want 7", v)
	}
	if v := samples[`snails_test_requests_total{path="/v1/infer"}`]; v != 1 {
		t.Errorf("requests_total{/v1/infer} = %v, want 1", v)
	}
	if v := samples[`snails_test_cache_hits_total{cache="pred"}`]; v != 0 {
		t.Errorf("zero-valued series must still render, got %v", v)
	}
	if v := samples["snails_test_uptime_seconds"]; v != 12.5 {
		t.Errorf("uptime = %v, want 12.5", v)
	}

	// Histogram shape: cumulative buckets ending at +Inf == _count, and the
	// 3ms observation lands at every le >= 4096µs.
	inf := `snails_test_duration_seconds_bucket{le="+Inf"}`
	if samples[inf] != 1 || samples["snails_test_duration_seconds_count"] != 1 {
		t.Errorf("histogram count: +Inf bucket %v, _count %v, want 1",
			samples[inf], samples["snails_test_duration_seconds_count"])
	}
	if v := samples[`snails_test_duration_seconds_bucket{le="0.002048"}`]; v != 0 {
		t.Errorf("bucket below 3ms observation = %v, want 0", v)
	}
	if v := samples[`snails_test_duration_seconds_bucket{le="0.004096"}`]; v != 1 {
		t.Errorf("bucket above 3ms observation = %v, want 1", v)
	}
	sum := samples["snails_test_duration_seconds_sum"]
	if sum < 0.0029 || sum > 0.0031 {
		t.Errorf("_sum = %v, want ≈0.003", sum)
	}

	// Cumulative buckets must be monotone.
	var prev float64 = -1
	for i := 0; i < NumBuckets; i++ {
		key := `snails_test_duration_seconds_bucket{le="` + formatFloat(BucketUpperSeconds(i)) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %s: %v < %v", key, v, prev)
		}
		prev = v
	}
}

// TestExpositionDeterministic asserts two scrapes of a quiet registry are
// byte-identical and family order is sorted.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("snails_zeta_total", "z")
	r.Counter("snails_alpha_total", "a")
	r.Gauge("snails_mid_gauge", "m")
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("consecutive scrapes differ on a quiet registry")
	}
	za := strings.Index(a.String(), "snails_zeta_total")
	aa := strings.Index(a.String(), "snails_alpha_total")
	if aa > za {
		t.Error("families are not emitted in sorted order")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, name := range []string{
		"requests_total",         // missing prefix
		"snails_CamelCase_total", // upper case
		"snails_bad-name_total",  // dash
		"snails__double_total",   // empty segment
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q was accepted", name)
				}
			}()
			NewRegistry().Counter(name, "x")
		}()
	}
	// Counter without _total suffix.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("counter without _total suffix was accepted")
			}
		}()
		NewRegistry().Counter("snails_events", "x")
	}()
	// Duplicate registration.
	func() {
		r := NewRegistry()
		r.Counter("snails_dup_total", "x")
		defer func() {
			if recover() == nil {
				t.Error("duplicate family name was accepted")
			}
		}()
		r.Gauge("snails_dup_total", "x")
	}()
}

// TestConcurrentScrape hammers every metric kind from many goroutines while
// scraping, under -race in the tier-1 pass.
func TestConcurrentScrape(t *testing.T) {
	r, c, vec, g, h := buildTestRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				vec.With("/v1/infer").Inc()
				vec.With("/p" + strconv.Itoa(i%3)).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		parseExposition(t, sb.String())
	}
	close(stop)
	wg.Wait()

	// Counters observed after the load finishes must be exact.
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	_, samples := parseExposition(t, sb.String())
	if v := samples["snails_test_events_total"]; v != float64(c.Value()) {
		t.Errorf("final counter = %v, want %v", v, c.Value())
	}
	if samples["snails_test_inflight"] != 0 {
		t.Errorf("inflight gauge should settle at 0, got %v", samples["snails_test_inflight"])
	}
}
