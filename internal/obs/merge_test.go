package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestMergeExpositionsRelabelsAndMerges(t *testing.T) {
	shard0 := []byte(`# HELP snails_http_requests_total Requests received, by path.
# TYPE snails_http_requests_total counter
snails_http_requests_total{path="/v1/infer"} 10
snails_http_requests_total{path="/v1/link"} 2
# HELP snails_uptime_seconds Seconds since the server was constructed.
# TYPE snails_uptime_seconds gauge
snails_uptime_seconds 5.5
`)
	shard1 := []byte(`# HELP snails_http_requests_total Requests received, by path.
# TYPE snails_http_requests_total counter
snails_http_requests_total{path="/v1/infer"} 7
# HELP snails_cache_hits_total Cache lookups that found their key.
# TYPE snails_cache_hits_total counter
snails_cache_hits_total{cache="response"} 3
`)

	var buf bytes.Buffer
	err := MergeExpositions(&buf, "shard", []Exposition{
		{Value: "shard-0", Text: shard0},
		{Value: "shard-1", Text: shard1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`snails_http_requests_total{shard="shard-0",path="/v1/infer"} 10`,
		`snails_http_requests_total{shard="shard-0",path="/v1/link"} 2`,
		`snails_http_requests_total{shard="shard-1",path="/v1/infer"} 7`,
		// Bare samples gain a label block.
		`snails_uptime_seconds{shard="shard-0"} 5.5`,
		`snails_cache_hits_total{shard="shard-1",cache="response"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q\n%s", want, out)
		}
	}

	// Same-named families merge under ONE comment pair — Prometheus rejects
	// duplicate # TYPE lines.
	if n := strings.Count(out, "# TYPE snails_http_requests_total"); n != 1 {
		t.Errorf("family comments duplicated: %d TYPE lines\n%s", n, out)
	}

	// Families are emitted in sorted name order for diffable scrapes.
	var familyOrder []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			familyOrder = append(familyOrder, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(familyOrder); i++ {
		if familyOrder[i-1] > familyOrder[i] {
			t.Errorf("families not sorted: %v", familyOrder)
		}
	}
}

func TestMergeExpositionsEscapesLabelValue(t *testing.T) {
	var buf bytes.Buffer
	err := MergeExpositions(&buf, "shard", []Exposition{
		{Value: `weird"name\`, Text: []byte("# HELP m x\n# TYPE m counter\nm 1\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `m{shard="weird\"name\\"} 1`) {
		t.Errorf("label value not escaped: %s", buf.String())
	}
}

func TestRelabelSampleEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m{} 1`, `m{shard="s"} 1`},
		{`m{a="b"} 1`, `m{shard="s",a="b"} 1`},
		{`m 1`, `m{shard="s"} 1`},
		// Histogram bucket lines pass through with the label prepended.
		{`m_bucket{le="0.5"} 4`, `m_bucket{shard="s",le="0.5"} 4`},
	}
	for _, c := range cases {
		if got := relabelSample(c.in, `shard="s"`); got != c.want {
			t.Errorf("relabelSample(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
