// Package obs is the process observability layer: a metrics registry with
// Prometheus text-format exposition, the shared log-spaced latency histogram,
// and structured logging built on log/slog with request-scoped attributes.
//
// Everything is stdlib-only and allocation-light on the hot path: counters
// and gauges are single atomics, histograms are fixed atomic bucket arrays,
// and scrape-time work (callbacks, sorting, formatting) happens only when a
// scraper actually asks. Metric families follow one naming convention,
// enforced at registration: `snails_`-prefixed snake_case, with base units in
// seconds and bytes and counters suffixed `_total`.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricName is the registration gate for family names: snails_-prefixed
// snake_case, lower-case alphanumerics only.
var metricName = regexp.MustCompile(`^snails_[a-z0-9]+(_[a-z0-9]+)*$`)

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// Series binds a callback-valued series to its labels. The callback is read
// at scrape time, so the registry can expose counters owned by other
// packages (memo caches, sqlexec tallies, sweep outcomes) without those
// packages importing obs.
type Series struct {
	Labels []Label
	F      func() float64
}

// HistogramSeries binds a labeled series to a Histogram read at scrape time.
type HistogramSeries struct {
	Labels []Label
	H      *Histogram
}

// sample is one exposition line of a family: an optional name suffix
// (_bucket/_sum/_count for histograms), the label set, and the value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// family is one registered metric family; collect produces its samples at
// scrape time.
type family struct {
	name, help, typ string
	collect         func() []sample
}

// Registry holds metric families and renders them in Prometheus text format
// v0.0.4. Registration is expected at construction time (it panics on a
// duplicate or malformed name — both are programming errors); collection is
// safe for concurrent scrapes while metrics update.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register installs a family, enforcing the naming convention.
func (r *Registry) register(name, help, typ string, collect func() []sample) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q must match %s", name, metricName))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, collect: collect}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a new counter family with a single
// unlabeled series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func() []sample {
		return []sample{{value: float64(c.v.Load())}}
	})
	return c
}

// Gauge is an integer-valued metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a new gauge family with a single unlabeled
// series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func() []sample {
		return []sample{{value: float64(g.v.Load())}}
	})
	return g
}

// CounterVec is a counter family keyed by one or more label values. Series
// are created on first touch (or pre-declared with With so they render as 0
// before any increment).
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Counter
}

// With returns the counter for the given label values, creating it at zero
// on first use. The number of values must match the vec's label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter vec with labels %v got %d values", v.labels, len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c, ok := v.m[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[key]; ok {
		return c
	}
	c = &Counter{}
	v.m[key] = c
	return c
}

// Each calls f for every series in label-value order.
func (v *CounterVec) Each(f func(values []string, count uint64)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(strings.Split(k, "\x00"), v.m[k].Value())
	}
	v.mu.RUnlock()
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, m: map[string]*Counter{}}
	r.register(name, help, "counter", func() []sample {
		var out []sample
		v.Each(func(values []string, count uint64) {
			ls := make([]Label, len(labels))
			for i := range labels {
				ls[i] = Label{labels[i], values[i]}
			}
			out = append(out, sample{labels: ls, value: float64(count)})
		})
		return out
	})
	return v
}

// CounterFunc registers a counter family whose single series is read from a
// callback at scrape time. The callback's value must be monotone — it
// typically reads an atomic owned by another package.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, "counter", func() []sample {
		return []sample{{value: f()}}
	})
}

// GaugeFunc registers a gauge family whose single series is read from a
// callback at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, "gauge", func() []sample {
		return []sample{{value: f()}}
	})
}

// seriesSamples evaluates fixed callback series into samples.
func seriesSamples(series []Series) []sample {
	out := make([]sample, len(series))
	for i, s := range series {
		out[i] = sample{labels: s.Labels, value: s.F()}
	}
	return out
}

// CounterSeries registers a counter family with a fixed set of labeled
// callback series (e.g. one per named cache). Every series renders on every
// scrape, zero or not, so the family's label space is diffable.
func (r *Registry) CounterSeries(name, help string, series ...Series) {
	r.register(name, help, "counter", func() []sample { return seriesSamples(series) })
}

// GaugeSeries registers a gauge family with a fixed set of labeled callback
// series.
func (r *Registry) GaugeSeries(name, help string, series ...Series) {
	r.register(name, help, "gauge", func() []sample { return seriesSamples(series) })
}

// Histogram registers and returns a new unlabeled latency histogram family.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.HistogramSeriesFamily(name, help, HistogramSeries{H: h})
	return h
}

// HistogramSeriesFamily registers a histogram family over a fixed set of
// labeled Histograms (e.g. one per pipeline stage, owned by the trace
// collector). Exposition renders the standard cumulative _bucket series plus
// _sum and _count; _count is derived from the bucket sum so the cumulative
// series is self-consistent under concurrent observation.
func (r *Registry) HistogramSeriesFamily(name, help string, series ...HistogramSeries) {
	r.register(name, help, "histogram", func() []sample {
		var out []sample
		for _, s := range series {
			buckets, sumSeconds := s.H.Snapshot()
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += buckets[i]
				le := formatFloat(BucketUpperSeconds(i))
				ls := append(append([]Label{}, s.Labels...), Label{"le", le})
				out = append(out, sample{suffix: "_bucket", labels: ls, value: float64(cum)})
			}
			out = append(out, sample{suffix: "_sum", labels: s.Labels, value: sumSeconds})
			out = append(out, sample{suffix: "_count", labels: s.Labels, value: float64(cum)})
		}
		return out
	})
}
