package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime installs the Go runtime gauge families: goroutine count,
// heap occupancy, and GC activity. Memory stats are read once per scrape
// (runtime.ReadMemStats), cached for the duration of one collection pass so
// the four memstats-backed families agree with each other.
func (r *Registry) RegisterRuntime() {
	// One scrape evaluates families in sorted order within a few
	// microseconds; a tiny TTL cache keeps them on one ReadMemStats call
	// without holding stale numbers across scrapes.
	var mu sync.Mutex
	var cached runtime.MemStats
	var readAt time.Time
	mem := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(readAt) > 100*time.Millisecond {
			runtime.ReadMemStats(&cached)
			readAt = time.Now()
		}
		return cached
	}

	r.GaugeFunc("snails_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("snails_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(mem().HeapAlloc) })
	r.GaugeFunc("snails_go_sys_bytes",
		"Bytes of memory obtained from the OS.",
		func() float64 { return float64(mem().Sys) })
	r.CounterFunc("snails_go_gc_runs_total",
		"Completed GC cycles.",
		func() float64 { return float64(mem().NumGC) })
	r.CounterFunc("snails_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mem().PauseTotalNs) / float64(time.Second) })
}
