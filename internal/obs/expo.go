package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in Prometheus text format
// v0.0.4: a # HELP and # TYPE line per family followed by its samples.
// Families are emitted in sorted name order and series in registration
// (or sorted label) order, so consecutive scrapes of a quiet process are
// byte-identical — the output is diffable, not just parseable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.collect() {
			bw.WriteString(f.name)
			bw.WriteString(s.suffix)
			writeLabels(bw, s.labels)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeLabels renders a {name="value",...} block, omitted when empty.
func writeLabels(bw *bufio.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Name)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(l.Value))
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// escapeHelp escapes backslash and newline, the two characters the format
// reserves in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value: integral values (the common case for
// counters) print without an exponent or decimal point, +Inf prints as the
// format's literal, and everything else uses the shortest round-trip form.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
