package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogFormats names the accepted -log-format flag values.
const LogFormats = "text|json"

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the process logger: text (the human default) or JSON
// lines on w, filtered at level, with request-scoped context attributes
// (see ContextAttrs) appended to every record logged through a context.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want %s)", format, LogFormats)
	}
	return slog.New(contextHandler{h}), nil
}

// ContextLogger ensures a logger routes records through the context-attrs
// middleware, so callers handed an arbitrary *slog.Logger (the cluster
// router's Config.Logger, a test logger) can attach request-scoped
// attributes via ContextAttrs and have them appear. Loggers already built by
// NewLogger pass through unchanged; a nil logger returns slog.Default()
// wrapped.
func ContextLogger(l *slog.Logger) *slog.Logger {
	if l == nil {
		l = slog.Default()
	}
	if _, ok := l.Handler().(contextHandler); ok {
		return l
	}
	return slog.New(contextHandler{l.Handler()})
}

// attrsKey carries request-scoped log attributes through a context.
type attrsKey struct{}

// ContextAttrs returns ctx extended with attributes that every record logged
// through this context (via a NewLogger handler) will carry. The serving
// layer seeds request id, endpoint, db, variant, and stage attributes here
// once per request; the pipeline packages below it (workflow, sqlexec,
// experiments) then log plain messages and inherit the request scope.
func ContextAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(attrsKey{}).([]slog.Attr)
	merged := make([]slog.Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, attrsKey{}, merged)
}

// contextHandler is a slog.Handler middleware that appends the context's
// request-scoped attributes to each record.
type contextHandler struct {
	inner slog.Handler
}

func (h contextHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h contextHandler) Handle(ctx context.Context, rec slog.Record) error {
	if attrs, ok := ctx.Value(attrsKey{}).([]slog.Attr); ok {
		rec.AddAttrs(attrs...)
	}
	return h.inner.Handle(ctx, rec)
}

func (h contextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return contextHandler{h.inner.WithAttrs(attrs)}
}

func (h contextHandler) WithGroup(name string) slog.Handler {
	return contextHandler{h.inner.WithGroup(name)}
}
