package trace

import (
	"math"

	"github.com/snails-bench/snails/internal/obs"
)

// Histogram is the fixed-bucket log-spaced latency histogram. The
// implementation was promoted to internal/obs so the metrics registry can
// expose the same buckets in Prometheus text format; the alias keeps the
// collector's per-stage arrays and existing call sites unchanged.
type Histogram = obs.Histogram

// round3 trims a millisecond figure to microsecond precision so JSON
// renderings stay readable.
func round3(ms float64) float64 { return math.Round(ms*1000) / 1000 }
