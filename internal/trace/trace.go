// Package trace provides request-scoped pipeline timing for the serving
// layer and the evaluation sweep. A Trace carries a preallocated slab of
// stage spans and travels with a request through context.Context; each
// pipeline layer (server, workflow, sqlexec, evalx call sites) records the
// stages it owns. Finished traces land in a bounded in-memory Collector that
// serves /debugz/traces and folds per-stage durations into fixed log-spaced
// latency histograms for /metricsz.
//
// The hot path is allocation-light by construction: starting a trace is one
// allocation (the span slab is part of the Trace), recording a span is one
// atomic slot claim plus one atomic publish, and every recording entry point
// is a no-op on a nil *Trace, so untraced requests pay only a pointer check.
package trace

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage identifies one timed pipeline stage. The set mirrors the serving
// pipeline: batch-queue wait, schema-prompt rendering, synthetic-LLM decode,
// SQL parse + denaturalization, query execution, and execution-match
// comparison.
type Stage uint8

const (
	StageQueue  Stage = iota // batch-wait between enqueue and worker pickup
	StagePrompt              // schema-knowledge prompt rendering
	StageDecode              // model inference (synthetic LLM decode)
	StageParse               // prediction parse + denaturalization
	StageExec                // gold/predicted query execution
	StageMatch               // execution-result match comparison

	// Cluster and backend stages are appended after the original pipeline
	// six so existing stage indices (and every [NumStages] array) stay
	// stable across artifacts.
	StageRoute          // router: consistent-hash ring lookup
	StageRelay          // router: one relay attempt against a shard
	StageFailover       // router: wait for a shard to come back before retrying
	StageBackendAttempt // backend: one model inference attempt (HTTP or synthetic)

	NumStages // sentinel: number of stages
)

// String names the stage as it appears in /debugz/traces and /metricsz.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StagePrompt:
		return "prompt_render"
	case StageDecode:
		return "llm_decode"
	case StageParse:
		return "sql_parse"
	case StageExec:
		return "sql_exec"
	case StageMatch:
		return "match"
	case StageRoute:
		return "route"
	case StageRelay:
		return "relay_attempt"
	case StageFailover:
		return "failover_wait"
	case StageBackendAttempt:
		return "backend_attempt"
	}
	return "unknown"
}

// maxSpans bounds the span slab. The deepest pipeline (/v1/infer) records at
// most seven spans; extra slots absorb future stages. Spans past the slab are
// dropped rather than grown: tracing must never allocate mid-request.
const maxSpans = 16

// slabSpan is one slot of the span slab. The stage field doubles as the
// publication flag: it holds Stage+1 and is stored (atomically) only after
// the plain start/duration/tag fields are written, so a reader that observes
// a non-zero stage is guaranteed to see the complete span. Slot claims and
// publishes are the only synchronization on the recording path.
type slabSpan struct {
	stage      atomic.Uint32 // Stage+1; 0 = unpublished
	startNanos int64         // offset from Trace.Begin
	durNanos   int64
	tag        string // free-form qualifier (shard#attempt, attempt index)
}

// Span is one published stage timing, read back out of a finished trace.
type Span struct {
	Stage Stage
	Start time.Duration // offset from the trace's begin time
	Dur   time.Duration
	Tag   string // optional qualifier (e.g. "shard-1#2" on a relay attempt)
}

// droppedSpans tallies spans lost to full slabs, process-wide. Exposed as
// snails_trace_spans_dropped_total so silent span loss is visible.
var droppedSpans atomic.Uint64

// SpansDropped reports how many spans this process has dropped because a
// trace's slab was full.
func SpansDropped() uint64 { return droppedSpans.Load() }

// Trace is the timing record of one request (or one sweep cell). The
// addressing fields (Endpoint, DB, Variant, QuestionID) are written by the
// owning handler before any concurrent span recording starts; spans may be
// appended from other goroutines (batch workers) via the atomic slab.
type Trace struct {
	ID uint64 // per-process sequence number (stable ordering key)
	// TraceID is the globally-unique wire identity. It is propagated across
	// processes in the X-Snails-Trace header: the router mints it, shards
	// adopt it, and /debugz/traces stitches on it.
	TraceID uint64
	// Process names the process that recorded this trace's spans ("router",
	// a shard id, or "server" for a solo daemon).
	Process    string
	Endpoint   string
	DB         string
	Variant    string
	QuestionID int
	Begin      time.Time
	Total      time.Duration // set by Collector.Finish

	n     atomic.Int32
	spans [maxSpans]slabSpan
}

// Now returns the current time when the trace is active and the zero time on
// a nil trace. Call sites use the zero start to skip both the span and the
// closing clock read, so disabled tracing costs one nil check per stage.
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a completed stage that started at start (a Now result).
func (t *Trace) Span(s Stage, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.record(s, start, time.Since(start), "")
}

// SpanTag records a completed stage with a qualifier tag — the relay
// attempt's shard and retry index, a backend attempt number.
func (t *Trace) SpanTag(s Stage, start time.Time, tag string) {
	if t == nil || start.IsZero() {
		return
	}
	t.record(s, start, time.Since(start), tag)
}

// SpanDur records a stage with an explicit duration. It exists for timings
// attributed to several traces at once — a micro-batch's shared prompt
// render is measured once and recorded on every member's trace.
func (t *Trace) SpanDur(s Stage, start time.Time, d time.Duration) {
	if t == nil || start.IsZero() {
		return
	}
	t.record(s, start, d, "")
}

func (t *Trace) record(s Stage, start time.Time, d time.Duration, tag string) {
	i := int(t.n.Add(1)) - 1
	if i >= maxSpans {
		droppedSpans.Add(1) // slab full: drop rather than allocate, but count
		return
	}
	sp := &t.spans[i]
	sp.startNanos = int64(start.Sub(t.Begin))
	sp.durNanos = int64(d)
	sp.tag = tag
	sp.stage.Store(uint32(s) + 1) // publish
}

// SetRequest fills the addressing fields shown in /debugz/traces. It must be
// called by the goroutine that owns the request, before the trace is handed
// to concurrent recorders.
func (t *Trace) SetRequest(db, variant string, questionID int) {
	if t == nil {
		return
	}
	t.DB, t.Variant, t.QuestionID = db, variant, questionID
}

// Spans returns the published spans in recording order. Unpublished slots
// (claimed but not yet stored by a concurrent recorder) are skipped.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		st := t.spans[i].stage.Load()
		if st == 0 {
			continue
		}
		out = append(out, Span{
			Stage: Stage(st - 1),
			Start: time.Duration(t.spans[i].startNanos),
			Dur:   time.Duration(t.spans[i].durNanos),
			Tag:   t.spans[i].tag,
		})
	}
	return out
}

// ctxKey is the private context key for trace propagation.
type ctxKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when the request is
// untraced. All Trace methods are nil-safe, so callers use the result
// unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
