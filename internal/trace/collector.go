package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector owns the finished-trace ring and the per-stage histograms. One
// Collector serves a whole process (the snailsd server keeps one; the sweep
// engine builds a histogram-only one per sweep).
type Collector struct {
	limit int
	seq   atomic.Uint64

	mu    sync.Mutex
	ring  []*Trace // last limit finished traces, oldest first once full
	next  int
	count int

	stages [NumStages]Histogram
}

// NewCollector builds a collector retaining the last limit finished traces.
// limit <= 0 disables the ring (histograms still accumulate), which is what
// the sweep engine uses: it wants the per-stage time budget, not 12k traces.
func NewCollector(limit int) *Collector {
	c := &Collector{limit: limit}
	if limit > 0 {
		c.ring = make([]*Trace, limit)
	}
	return c
}

// Start begins a new trace for the given endpoint. Nil-safe: a nil collector
// returns a nil trace and the whole recording path no-ops.
func (c *Collector) Start(endpoint string) *Trace {
	if c == nil {
		return nil
	}
	return &Trace{
		ID:       c.seq.Add(1),
		Endpoint: endpoint,
		Begin:    time.Now(),
	}
}

// Finish seals a trace: records its total latency, folds the published spans
// into the per-stage histograms, and appends it to the ring. Spans published
// by straggler goroutines after Finish (a batch that outlives an abandoned
// waiter) still appear in /debugz/traces but are not folded into histograms.
func (c *Collector) Finish(t *Trace) {
	if c == nil || t == nil {
		return
	}
	t.Total = time.Since(t.Begin)
	for _, sp := range t.Spans() {
		c.stages[sp.Stage].Observe(sp.Dur)
	}
	if c.limit <= 0 {
		return
	}
	c.mu.Lock()
	c.ring[c.next] = t
	c.next = (c.next + 1) % c.limit
	if c.count < c.limit {
		c.count++
	}
	c.mu.Unlock()
}

// SpanView is the JSON rendering of one span.
type SpanView struct {
	Stage        string  `json:"stage"`
	OffsetMillis float64 `json:"offset_ms"`
	DurMillis    float64 `json:"dur_ms"`
}

// View is the JSON rendering of one finished trace, served by
// /debugz/traces.
type View struct {
	ID         uint64     `json:"id"`
	Endpoint   string     `json:"endpoint"`
	DB         string     `json:"db,omitempty"`
	Variant    string     `json:"variant,omitempty"`
	QuestionID int        `json:"question_id,omitempty"`
	TotalMs    float64    `json:"total_ms"`
	Spans      []SpanView `json:"spans"`
}

// Snapshot returns up to n finished traces. With slowest=false the order is
// oldest-to-newest (completion order, deterministic for a serial workload);
// with slowest=true traces sort by descending total latency, ties broken by
// ID so the ordering stays stable. n <= 0 returns everything buffered.
func (c *Collector) Snapshot(n int, slowest bool) []View {
	if c == nil {
		return nil
	}
	if c.limit <= 0 {
		return []View{}
	}
	c.mu.Lock()
	traces := make([]*Trace, 0, c.count)
	start := c.next - c.count
	for i := 0; i < c.count; i++ {
		traces = append(traces, c.ring[((start+i)%c.limit+c.limit)%c.limit])
	}
	c.mu.Unlock()

	if slowest {
		sort.SliceStable(traces, func(a, b int) bool {
			if traces[a].Total != traces[b].Total {
				return traces[a].Total > traces[b].Total
			}
			return traces[a].ID < traces[b].ID
		})
	}
	if n > 0 && len(traces) > n {
		if slowest {
			traces = traces[:n] // the n slowest
		} else {
			traces = traces[len(traces)-n:] // the n most recent
		}
	}
	out := make([]View, len(traces))
	for i, t := range traces {
		spans := t.Spans()
		sv := make([]SpanView, len(spans))
		for j, sp := range spans {
			sv[j] = SpanView{
				Stage:        sp.Stage.String(),
				OffsetMillis: round3(float64(sp.Start) / float64(time.Millisecond)),
				DurMillis:    round3(float64(sp.Dur) / float64(time.Millisecond)),
			}
		}
		out[i] = View{
			ID:         t.ID,
			Endpoint:   t.Endpoint,
			DB:         t.DB,
			Variant:    t.Variant,
			QuestionID: t.QuestionID,
			TotalMs:    round3(float64(t.Total) / float64(time.Millisecond)),
			Spans:      sv,
		}
	}
	return out
}

// StageSnapshot is one stage's aggregate across every finished trace.
type StageSnapshot struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanMillis   float64 `json:"mean_ms"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
}

// StageHistogram returns the collector's latency histogram for one stage so
// the metrics registry can expose it as a Prometheus histogram series.
// Callers must treat it as observe-only; nil collectors return nil.
func (c *Collector) StageHistogram(s Stage) *Histogram {
	if c == nil || s >= NumStages {
		return nil
	}
	return &c.stages[s]
}

// Stages returns the per-stage aggregates in pipeline order, omitting stages
// never observed.
func (c *Collector) Stages() []StageSnapshot {
	if c == nil {
		return nil
	}
	out := make([]StageSnapshot, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		h := &c.stages[s]
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, StageSnapshot{
			Stage:        s.String(),
			Count:        n,
			TotalSeconds: float64(h.TotalNanos()) / float64(time.Second),
			MeanMillis:   round3(h.MeanMillis()),
			P50Millis:    round3(h.Quantile(0.50)),
			P99Millis:    round3(h.Quantile(0.99)),
		})
	}
	return out
}
