package trace

import (
	"crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector owns the finished-trace ring and the per-stage histograms. One
// Collector serves a whole process (the snailsd server keeps one; the sweep
// engine builds a histogram-only one per sweep).
type Collector struct {
	limit int
	seq   atomic.Uint64
	base  uint64 // random per-collector base mixed into wire trace IDs
	proc  string // process attribution stamped on every started trace

	mu    sync.Mutex
	ring  []*Trace // last limit finished traces, oldest first once full
	next  int
	count int

	stages [NumStages]Histogram
}

// NewCollector builds a collector retaining the last limit finished traces.
// limit <= 0 disables the ring (histograms still accumulate), which is what
// the sweep engine uses: it wants the per-stage time budget, not 12k traces.
func NewCollector(limit int) *Collector {
	c := &Collector{limit: limit}
	if limit > 0 {
		c.ring = make([]*Trace, limit)
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		c.base = binary.LittleEndian.Uint64(b[:])
	}
	return c
}

// SetProcess names the process whose traces this collector holds ("router",
// a shard id). The name is stamped on every subsequently started trace and
// surfaced as the "proc" field in /debugz/traces so stitched cross-process
// trees attribute each span group.
func (c *Collector) SetProcess(name string) {
	if c == nil {
		return
	}
	c.proc = name
}

// newTraceID mints a globally-unique non-zero wire ID for the seq-th trace:
// a splitmix64-style mix of the collector's crypto/rand base and the trace
// sequence number. Within a process IDs are distinct by construction (the
// mix is a bijection of the sequence); across processes the random base
// makes collisions 2^-64-unlikely. The zero ID is reserved as "untraced",
// so the one sequence value that would mix to zero is nudged.
func (c *Collector) newTraceID(seq uint64) uint64 {
	for {
		x := c.base + seq*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
		seq += 1 << 63 // flip the top bit: remix outside the sequence space
	}
}

// Start begins a new trace for the given endpoint with a freshly minted
// wire ID. Nil-safe: a nil collector returns a nil trace and the whole
// recording path no-ops.
func (c *Collector) Start(endpoint string) *Trace {
	return c.StartRemote(endpoint, 0)
}

// StartRemote begins a trace that adopts a propagated wire ID (an Extract
// result), so shard-side spans stitch under the router's trace. A zero ID
// mints a fresh one, making StartRemote(e, 0) identical to Start(e).
func (c *Collector) StartRemote(endpoint string, traceID uint64) *Trace {
	if c == nil {
		return nil
	}
	id := c.seq.Add(1)
	if traceID == 0 {
		traceID = c.newTraceID(id)
	}
	return &Trace{
		ID:       id,
		TraceID:  traceID,
		Process:  c.proc,
		Endpoint: endpoint,
		Begin:    time.Now(),
	}
}

// Finish seals a trace: records its total latency, folds the published spans
// into the per-stage histograms, and appends it to the ring. Spans published
// by straggler goroutines after Finish (a batch that outlives an abandoned
// waiter) still appear in /debugz/traces but are not folded into histograms.
func (c *Collector) Finish(t *Trace) {
	if c == nil || t == nil {
		return
	}
	t.Total = time.Since(t.Begin)
	for _, sp := range t.Spans() {
		c.stages[sp.Stage].Observe(sp.Dur)
	}
	if c.limit <= 0 {
		return
	}
	c.mu.Lock()
	c.ring[c.next] = t
	c.next = (c.next + 1) % c.limit
	if c.count < c.limit {
		c.count++
	}
	c.mu.Unlock()
}

// SpanView is the JSON rendering of one span.
type SpanView struct {
	Stage        string  `json:"stage"`
	Tag          string  `json:"tag,omitempty"`
	OffsetMillis float64 `json:"offset_ms"`
	DurMillis    float64 `json:"dur_ms"`
}

// View is the JSON rendering of one finished trace, served by
// /debugz/traces. TraceID is the wire identity shared across processes;
// Proc attributes the span group to the process that recorded it, so a
// stitched response groups router-side and shard-side Views under one
// trace_id. (Span offsets are relative to each process's own trace begin —
// there is no cross-process clock alignment.)
type View struct {
	ID         uint64     `json:"id"`
	TraceID    string     `json:"trace_id,omitempty"`
	Proc       string     `json:"proc,omitempty"`
	Endpoint   string     `json:"endpoint"`
	DB         string     `json:"db,omitempty"`
	Variant    string     `json:"variant,omitempty"`
	QuestionID int        `json:"question_id,omitempty"`
	TotalMs    float64    `json:"total_ms"`
	Spans      []SpanView `json:"spans"`
}

// viewOf renders one finished trace.
func viewOf(t *Trace) View {
	spans := t.Spans()
	sv := make([]SpanView, len(spans))
	for j, sp := range spans {
		sv[j] = SpanView{
			Stage:        sp.Stage.String(),
			Tag:          sp.Tag,
			OffsetMillis: round3(float64(sp.Start) / float64(time.Millisecond)),
			DurMillis:    round3(float64(sp.Dur) / float64(time.Millisecond)),
		}
	}
	tid := ""
	if t.TraceID != 0 {
		tid = FormatID(t.TraceID)
	}
	return View{
		ID:         t.ID,
		TraceID:    tid,
		Proc:       t.Process,
		Endpoint:   t.Endpoint,
		DB:         t.DB,
		Variant:    t.Variant,
		QuestionID: t.QuestionID,
		TotalMs:    round3(float64(t.Total) / float64(time.Millisecond)),
		Spans:      sv,
	}
}

// Find returns the buffered traces carrying the given wire ID, oldest
// first. Within one process a wire ID normally maps to a single trace, but
// the ring may hold several when an upstream re-sends the same header.
func (c *Collector) Find(traceID uint64) []View {
	if c == nil || c.limit <= 0 || traceID == 0 {
		return nil
	}
	c.mu.Lock()
	var out []View
	start := c.next - c.count
	for i := 0; i < c.count; i++ {
		t := c.ring[((start+i)%c.limit+c.limit)%c.limit]
		if t.TraceID == traceID {
			out = append(out, viewOf(t))
		}
	}
	c.mu.Unlock()
	return out
}

// Snapshot returns up to n finished traces. With slowest=false the order is
// oldest-to-newest (completion order, deterministic for a serial workload);
// with slowest=true traces sort by descending total latency, ties broken by
// ID so the ordering stays stable. n <= 0 returns everything buffered.
func (c *Collector) Snapshot(n int, slowest bool) []View {
	if c == nil {
		return nil
	}
	if c.limit <= 0 {
		return []View{}
	}
	c.mu.Lock()
	traces := make([]*Trace, 0, c.count)
	start := c.next - c.count
	for i := 0; i < c.count; i++ {
		traces = append(traces, c.ring[((start+i)%c.limit+c.limit)%c.limit])
	}
	c.mu.Unlock()

	if slowest {
		sort.SliceStable(traces, func(a, b int) bool {
			if traces[a].Total != traces[b].Total {
				return traces[a].Total > traces[b].Total
			}
			return traces[a].ID < traces[b].ID
		})
	}
	if n > 0 && len(traces) > n {
		if slowest {
			traces = traces[:n] // the n slowest
		} else {
			traces = traces[len(traces)-n:] // the n most recent
		}
	}
	out := make([]View, len(traces))
	for i, t := range traces {
		out[i] = viewOf(t)
	}
	return out
}

// StageSnapshot is one stage's aggregate across every finished trace.
type StageSnapshot struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanMillis   float64 `json:"mean_ms"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
}

// StageHistogram returns the collector's latency histogram for one stage so
// the metrics registry can expose it as a Prometheus histogram series.
// Callers must treat it as observe-only; nil collectors return nil.
func (c *Collector) StageHistogram(s Stage) *Histogram {
	if c == nil || s >= NumStages {
		return nil
	}
	return &c.stages[s]
}

// Stages returns the per-stage aggregates in pipeline order, omitting stages
// never observed.
func (c *Collector) Stages() []StageSnapshot {
	if c == nil {
		return nil
	}
	out := make([]StageSnapshot, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		h := &c.stages[s]
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, StageSnapshot{
			Stage:        s.String(),
			Count:        n,
			TotalSeconds: float64(h.TotalNanos()) / float64(time.Second),
			MeanMillis:   round3(h.MeanMillis()),
			P50Millis:    round3(h.Quantile(0.50)),
			P99Millis:    round3(h.Quantile(0.99)),
		})
	}
	return out
}
