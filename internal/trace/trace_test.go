package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	if !tr.Now().IsZero() {
		t.Fatal("nil trace Now() must return the zero time")
	}
	tr.Span(StageExec, time.Now()) // must not panic
	tr.SpanDur(StagePrompt, time.Now(), time.Millisecond)
	tr.SetRequest("ASIS", "native", 1)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans() = %v, want nil", got)
	}
}

func TestZeroStartSkipsSpan(t *testing.T) {
	c := NewCollector(4)
	tr := c.Start("/v1/infer")
	tr.Span(StageExec, time.Time{}) // a Now() from a nil trace
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("zero start recorded %d spans, want 0", n)
	}
}

func TestSpanRecordingOrderAndOffsets(t *testing.T) {
	c := NewCollector(4)
	tr := c.Start("/v1/infer")
	s1 := tr.Now()
	tr.SpanDur(StagePrompt, s1, 3*time.Millisecond)
	s2 := tr.Now()
	tr.SpanDur(StageDecode, s2, 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != StagePrompt || spans[1].Stage != StageDecode {
		t.Fatalf("span order = %v, %v; want prompt_render, llm_decode", spans[0].Stage, spans[1].Stage)
	}
	if spans[0].Dur != 3*time.Millisecond || spans[1].Dur != 5*time.Millisecond {
		t.Fatalf("durations = %v, %v", spans[0].Dur, spans[1].Dur)
	}
	if spans[1].Start < spans[0].Start {
		t.Fatalf("offsets went backwards: %v then %v", spans[0].Start, spans[1].Start)
	}
}

func TestSlabDropsBeyondCapacity(t *testing.T) {
	c := NewCollector(1)
	tr := c.Start("x")
	for i := 0; i < maxSpans+8; i++ {
		tr.SpanDur(StageExec, tr.Begin, time.Microsecond)
	}
	if n := len(tr.Spans()); n != maxSpans {
		t.Fatalf("slab holds %d spans, want %d", n, maxSpans)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	c := NewCollector(1)
	tr := c.Start("x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Span(StageExec, tr.Now())
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 8 {
		t.Fatalf("concurrent recording published %d spans, want 8", n)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no trace")
	}
	c := NewCollector(1)
	tr := c.Start("x")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context did not round-trip the trace")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace must not wrap the context")
	}
}

func TestCollectorRingBounds(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 5; i++ {
		tr := c.Start("/v1/classify")
		c.Finish(tr)
	}
	views := c.Snapshot(0, false)
	if len(views) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(views))
	}
	// Oldest-first: the two earliest finished traces were evicted.
	if views[0].ID != 3 || views[2].ID != 5 {
		t.Fatalf("ring ids = %d..%d, want 3..5", views[0].ID, views[2].ID)
	}
	if got := c.Snapshot(2, false); len(got) != 2 || got[0].ID != 4 {
		t.Fatalf("Snapshot(2) = %v, want the 2 most recent (ids 4,5)", got)
	}
}

func TestCollectorSlowestOrdering(t *testing.T) {
	c := NewCollector(4)
	durs := []time.Duration{2 * time.Millisecond, 8 * time.Millisecond, 1 * time.Millisecond}
	for _, d := range durs {
		tr := c.Start("x")
		tr.Begin = time.Now().Add(-d) // synthesize a total latency
		c.Finish(tr)
	}
	views := c.Snapshot(0, true)
	if len(views) != 3 {
		t.Fatalf("got %d traces, want 3", len(views))
	}
	if !(views[0].TotalMs >= views[1].TotalMs && views[1].TotalMs >= views[2].TotalMs) {
		t.Fatalf("slowest-first ordering violated: %v", views)
	}
	if views[0].ID != 2 {
		t.Fatalf("slowest trace id = %d, want 2 (the 8ms one)", views[0].ID)
	}
	if got := c.Snapshot(1, true); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("Snapshot(1, slowest) = %v, want just the slowest", got)
	}
}

func TestCollectorDisabledRing(t *testing.T) {
	c := NewCollector(0)
	tr := c.Start("x")
	tr.SpanDur(StageExec, tr.Begin, 2*time.Millisecond)
	c.Finish(tr)
	if got := c.Snapshot(0, false); len(got) != 0 {
		t.Fatalf("ringless collector buffered %d traces", len(got))
	}
	st := c.Stages()
	if len(st) != 1 || st[0].Stage != "sql_exec" || st[0].Count != 1 {
		t.Fatalf("histograms did not accumulate: %+v", st)
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	tr := c.Start("x")
	if tr != nil {
		t.Fatal("nil collector must start nil traces")
	}
	c.Finish(tr) // must not panic
	if c.Snapshot(0, false) != nil || c.Stages() != nil {
		t.Fatal("nil collector snapshots must be nil")
	}
}

// The histogram bucket/quantile tests moved to internal/obs with the
// Histogram implementation; TestStageHistogramExposed pins the collector's
// registry-facing accessor instead.
func TestStageHistogramExposed(t *testing.T) {
	c := NewCollector(4)
	tr := c.Start("/v1/infer")
	tr.SpanDur(StageExec, tr.Begin, 3*time.Millisecond)
	c.Finish(tr)
	h := c.StageHistogram(StageExec)
	if h == nil || h.Count() != 1 {
		t.Fatalf("StageHistogram(exec) should hold the folded span, got %v", h)
	}
	if c.StageHistogram(StageQueue).Count() != 0 {
		t.Error("unobserved stage histogram should be empty")
	}
	var nilC *Collector
	if nilC.StageHistogram(StageExec) != nil || c.StageHistogram(NumStages) != nil {
		t.Error("nil collector / out-of-range stage must return nil")
	}
}
