package trace

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestFormatParseIDRoundTrip(t *testing.T) {
	ids := []uint64{1, 0xdeadbeef, 0x0123456789abcdef, ^uint64(0)}
	for _, id := range ids {
		s := FormatID(id)
		if len(s) != 16 || strings.ToLower(s) != s {
			t.Fatalf("FormatID(%x) = %q, want 16 lowercase hex digits", id, s)
		}
		got, ok := ParseID(s)
		if !ok || got != id {
			t.Fatalf("ParseID(FormatID(%x)) = %x, %v", id, got, ok)
		}
	}
}

func TestParseIDRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                  // empty
		"0000000000000000",  // zero ID reserved as "untraced"
		"DEADBEEFDEADBEEF",  // uppercase
		"deadbeef",          // short
		"deadbeefdeadbeef0", // long
		"deadbeefdeadbeeg",  // non-hex
		"deadbeef deadbee",  // embedded space
		"0xdeadbeefdeadbe",  // prefix
		"déadbeefdeadbee",   // multibyte rune padding to 16 bytes
	}
	for _, s := range bad {
		if id, ok := ParseID(s); ok {
			t.Errorf("ParseID(%q) accepted malformed input as %x", s, id)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	Inject(h, 0)
	if h.Get(Header) != "" {
		t.Fatal("Inject(0) must not set the header")
	}
	Inject(h, 0xabc)
	id, ok := Extract(h)
	if !ok || id != 0xabc {
		t.Fatalf("Extract after Inject(0xabc) = %x, %v", id, ok)
	}
	if id, ok := Extract(http.Header{}); ok || id != 0 {
		t.Fatalf("Extract on empty headers = %x, %v, want 0, false", id, ok)
	}
	h.Set(Header, "not-a-trace-id!!")
	if _, ok := Extract(h); ok {
		t.Fatal("Extract accepted a malformed header")
	}
}

func TestCollectorMintsUniqueNonZeroTraceIDs(t *testing.T) {
	c := NewCollector(4)
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		tr := c.Start("x")
		if tr.TraceID == 0 {
			t.Fatal("minted a zero trace ID")
		}
		if seen[tr.TraceID] {
			t.Fatalf("trace ID %x minted twice", tr.TraceID)
		}
		seen[tr.TraceID] = true
	}
}

func TestStartRemoteAdoptsTraceID(t *testing.T) {
	c := NewCollector(4)
	c.SetProcess("shard-0")
	tr := c.StartRemote("/v1/infer", 0xfeed)
	if tr.TraceID != 0xfeed {
		t.Fatalf("StartRemote did not adopt the ID: %x", tr.TraceID)
	}
	if tr.Process != "shard-0" {
		t.Fatalf("process attribution = %q, want shard-0", tr.Process)
	}
	if fresh := c.StartRemote("/v1/infer", 0); fresh.TraceID == 0 {
		t.Fatal("StartRemote(0) must mint a fresh ID")
	}
	c.Finish(tr)
	views := c.Find(0xfeed)
	if len(views) != 1 || views[0].TraceID != FormatID(0xfeed) || views[0].Proc != "shard-0" {
		t.Fatalf("Find(0xfeed) = %+v", views)
	}
	if c.Find(0xbeef) != nil {
		t.Fatal("Find on an unknown ID must return nothing")
	}
}

func TestSpanTagPublished(t *testing.T) {
	c := NewCollector(4)
	tr := c.Start("/v1/infer")
	tr.SpanTag(StageRelay, tr.Now(), "shard-1#2")
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != StageRelay || spans[0].Tag != "shard-1#2" {
		t.Fatalf("tagged span = %+v", spans)
	}
	c.Finish(tr)
	v := c.Snapshot(0, false)
	if len(v) != 1 || len(v[0].Spans) != 1 || v[0].Spans[0].Tag != "shard-1#2" || v[0].Spans[0].Stage != "relay_attempt" {
		t.Fatalf("tagged span view = %+v", v)
	}
}

// Satellite regression: overflowing the slab must be counted, not silent.
func TestSlabOverflowCountsDrops(t *testing.T) {
	c := NewCollector(1)
	tr := c.Start("x")
	before := SpansDropped()
	const extra = 8
	for i := 0; i < maxSpans+extra; i++ {
		tr.SpanDur(StageExec, tr.Begin, time.Microsecond)
	}
	if n := len(tr.Spans()); n != maxSpans {
		t.Fatalf("slab holds %d spans, want %d", n, maxSpans)
	}
	if got := SpansDropped() - before; got != extra {
		t.Fatalf("SpansDropped grew by %d, want %d", got, extra)
	}
}

// FuzzTraceHeader drives hostile bytes through Extract and round-trips
// Inject/Extract: no input may panic, parse to a zero ID, or parse to an ID
// that Format doesn't reproduce byte-for-byte (which would let two distinct
// header strings collide on one trace).
func FuzzTraceHeader(f *testing.F) {
	f.Add("deadbeefdeadbeef")
	f.Add("0000000000000000")
	f.Add("ffffffffffffffff")
	f.Add("")
	f.Add("X-Snails-Trace: 123")
	f.Add("deadbeefdeadbee\x00")
	f.Add("DEADBEEFDEADBEEF")
	f.Fuzz(func(t *testing.T, s string) {
		h := http.Header{}
		h.Set(Header, s)
		id, ok := Extract(h)
		if !ok {
			if id != 0 {
				t.Fatalf("rejected input %q returned non-zero id %x", s, id)
			}
			return
		}
		if id == 0 {
			t.Fatalf("Extract(%q) produced the reserved zero ID", s)
		}
		// Accepted strings are canonical: formatting the parsed ID must
		// reproduce the input exactly, so distinct headers cannot collide.
		if got := FormatID(id); got != s {
			t.Fatalf("non-canonical accept: %q parsed to %x which formats as %q", s, id, got)
		}
		// And the Inject/Extract round trip is stable.
		h2 := http.Header{}
		Inject(h2, id)
		id2, ok2 := Extract(h2)
		if !ok2 || id2 != id {
			t.Fatalf("round trip broke: %x -> %x, %v", id, id2, ok2)
		}
	})
}
