// Wire propagation of trace identity. One request crossing the cluster
// (client -> router -> shard) stays one trace: the router mints a TraceID,
// Injects it into the relayed request's X-Snails-Trace header, and the shard
// Extracts and adopts it, so /debugz/traces on the router can stitch both
// processes' spans by ID.
//
// The wire format is deliberately rigid — exactly 16 lowercase hex digits,
// nothing else — so Extract is a total function over hostile input: anything
// malformed (wrong length, uppercase, stray bytes, the zero ID) is treated
// as absent and the receiver mints a fresh ID instead.
package trace

import "net/http"

// Header is the trace-propagation header name.
const Header = "X-Snails-Trace"

const hexDigits = "0123456789abcdef"

// FormatID renders a trace ID in the wire format: 16 lowercase hex digits.
func FormatID(id uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses the wire format. It accepts exactly 16 lowercase hex digits
// encoding a non-zero ID and rejects everything else — a zero ID would make
// unrelated traces stitch together, so it is treated as malformed.
func ParseID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var id uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		id = id<<4 | d
	}
	if id == 0 {
		return 0, false
	}
	return id, true
}

// Inject stamps the trace ID onto an outbound request's headers. A zero ID
// (untraced request) leaves the headers untouched.
func Inject(h http.Header, id uint64) {
	if id == 0 {
		return
	}
	h.Set(Header, FormatID(id))
}

// Extract reads a propagated trace ID from inbound request headers. The
// second result is false when the header is absent or malformed; the caller
// then mints a fresh ID.
func Extract(h http.Header) (uint64, bool) {
	v := h.Get(Header)
	if v == "" {
		return 0, false
	}
	return ParseID(v)
}
