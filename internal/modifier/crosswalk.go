package modifier

import (
	"fmt"
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/naturalness"
)

// Entry maps one native identifier to its semantically equivalent forms at
// every naturalness level (Artifact 4). The native identifier maps to itself
// at its own naturalness level.
type Entry struct {
	Native      string
	NativeLevel naturalness.Level
	// Forms holds the identifier rendered at each level. Forms[NativeLevel]
	// equals Native.
	Forms [3]string
	// Words is the Regular-form word decomposition (the underlying concept).
	Words []string
}

// Form returns the identifier at the requested naturalness level.
func (e *Entry) Form(l naturalness.Level) string { return e.Forms[l] }

// Crosswalk is the full identifier mapping for one database schema: the
// "schema crosswalk" used for prompt naturalness modification and generated
// query denaturalization.
type Crosswalk struct {
	// entries maps the upper-cased native identifier to its entry.
	entries map[string]*Entry
	// reverse maps (level, upper-cased modified identifier) back to native.
	reverse [3]map[string]string
	order   []string // native identifiers in insertion order
}

// NewCrosswalk returns an empty crosswalk.
func NewCrosswalk() *Crosswalk {
	cw := &Crosswalk{entries: make(map[string]*Entry)}
	for i := range cw.reverse {
		cw.reverse[i] = make(map[string]string)
	}
	return cw
}

// Add inserts an entry. Collisions between distinct native identifiers
// mapping to the same modified form at a level are disambiguated with a
// numeric suffix, keeping each level's mapping invertible. When the
// collision happens at the entry's own native level (two different concepts
// abbreviating to the same native name), the native identifier itself is
// disambiguated so that Forms[NativeLevel] == Native always holds; callers
// must use the returned entry's Native as the identifier's actual name.
func (cw *Crosswalk) Add(e Entry) *Entry {
	if prev, dup := cw.entries[strings.ToUpper(e.Native)]; dup {
		return prev
	}
	for _, l := range naturalness.Levels {
		if e.Forms[l] == "" {
			e.Forms[l] = e.Native
		}
	}
	// The native-level form defines the entry's identity, so disambiguate
	// it first.
	e.Forms[e.NativeLevel] = cw.disambiguate(e.NativeLevel, e.Forms[e.NativeLevel], "")
	e.Native = e.Forms[e.NativeLevel]
	key := strings.ToUpper(e.Native)
	if prev, dup := cw.entries[key]; dup {
		return prev
	}
	for _, l := range naturalness.Levels {
		if l == e.NativeLevel {
			continue
		}
		e.Forms[l] = cw.disambiguate(l, e.Forms[l], key)
	}
	for _, l := range naturalness.Levels {
		cw.reverse[l][strings.ToUpper(e.Forms[l])] = key
	}
	stored := e
	cw.entries[key] = &stored
	cw.order = append(cw.order, e.Native)
	return &stored
}

// disambiguate returns form unchanged when free at the level, or a
// numerically suffixed variant otherwise. ownKey marks forms already owned
// by the entry being inserted.
func (cw *Crosswalk) disambiguate(l naturalness.Level, form, ownKey string) string {
	fkey := strings.ToUpper(form)
	owner, taken := cw.reverse[l][fkey]
	if !taken || (ownKey != "" && owner == ownKey) {
		return form
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", form, i)
		if _, t := cw.reverse[l][strings.ToUpper(cand)]; !t {
			return cand
		}
	}
}

// Len returns the number of entries.
func (cw *Crosswalk) Len() int { return len(cw.entries) }

// Lookup returns the entry for a native identifier (case-insensitive).
func (cw *Crosswalk) Lookup(native string) (*Entry, bool) {
	e, ok := cw.entries[strings.ToUpper(native)]
	return e, ok
}

// ToLevel maps a native identifier to its form at the given level; the
// identifier itself is returned when unmapped.
func (cw *Crosswalk) ToLevel(native string, l naturalness.Level) string {
	if e, ok := cw.Lookup(native); ok {
		return e.Forms[l]
	}
	return native
}

// ToNative maps a level-modified identifier back to its native form — the
// denaturalization direction. Unmapped identifiers are returned unchanged.
func (cw *Crosswalk) ToNative(modified string, l naturalness.Level) string {
	if nativeKey, ok := cw.reverse[l][strings.ToUpper(modified)]; ok {
		if e, ok2 := cw.entries[nativeKey]; ok2 {
			return e.Native
		}
	}
	return modified
}

// Natives returns native identifiers in insertion order.
func (cw *Crosswalk) Natives() []string {
	out := make([]string, len(cw.order))
	copy(out, cw.order)
	return out
}

// Entries returns all entries sorted by native identifier.
func (cw *Crosswalk) Entries() []*Entry {
	out := make([]*Entry, 0, len(cw.entries))
	for _, nat := range cw.order {
		if e, ok := cw.Lookup(nat); ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Native < out[j].Native })
	return out
}

// Builder assembles crosswalk entries using the modifier artifacts: the
// expander recovers the Regular concept words from a native identifier and
// the abbreviator renders the Low and Least forms. This is the
// classify -> expand -> abbreviate workflow of Figure 4.
type Builder struct {
	Classifier naturalness.Classifier
	Expander   *Expander
	// Style controls how the Regular form is rendered; defaults to snake case.
	Style ident.CaseStyle
}

// Build produces the entry for one native identifier.
func (b *Builder) Build(native string) Entry {
	style := b.Style
	if style == ident.CaseUnknown {
		style = ident.CaseSnake
	}
	level := naturalness.Regular
	if b.Classifier != nil {
		level = b.Classifier.Classify(native)
	}
	exp := b.Expander
	if exp == nil {
		exp = &Expander{}
	}
	words, _ := exp.Expand(native)
	if len(words) == 0 {
		words = []string{strings.ToLower(native)}
	}
	var e Entry
	e.Native = native
	e.NativeLevel = level
	e.Words = words
	for _, l := range naturalness.Levels {
		if l == level {
			// Native maps to itself at its own level (the paper does not
			// generate new identifiers at the native level).
			e.Forms[l] = native
			continue
		}
		e.Forms[l] = Abbreviate(words, l, style)
	}
	return e
}

// BuildAll builds a crosswalk for a list of native identifiers.
func (b *Builder) BuildAll(natives []string) *Crosswalk {
	cw := NewCrosswalk()
	for _, n := range natives {
		cw.Add(b.Build(n))
	}
	return cw
}
