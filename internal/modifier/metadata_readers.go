package modifier

import (
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Metadata document readers (appendix C.2): the paper's expander reads data
// dictionaries in .pdf, .xml and .csv formats, indexes them at the word
// level, and retrieves context windows around identifier occurrences. The
// PDF path is represented here by the plain-text reader (the paper extracts
// text from PDFs before indexing; text extraction itself is out of scope).

// ReadCSVMetadata indexes a CSV data dictionary. The first column is taken
// as the identifier and the remaining columns as its description, matching
// the usual data-dictionary export layout.
func ReadCSVMetadata(idx *MetadataIndex, r io.Reader) error {
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	reader.FieldsPerRecord = -1
	records, err := reader.ReadAll()
	if err != nil {
		return fmt.Errorf("modifier: reading csv metadata: %w", err)
	}
	for i, rec := range records {
		if len(rec) < 2 {
			continue
		}
		id := strings.TrimSpace(rec[0])
		if id == "" || (i == 0 && looksLikeHeader(rec)) {
			continue
		}
		idx.Add(id, strings.Join(rec[1:], " "))
	}
	return nil
}

func looksLikeHeader(rec []string) bool {
	first := strings.ToLower(strings.TrimSpace(rec[0]))
	switch first {
	case "identifier", "column", "field", "name", "column_name", "field_name":
		return true
	}
	return false
}

// xmlField is one <field> element of an XML data dictionary.
type xmlField struct {
	Name        string `xml:"name,attr"`
	NameElem    string `xml:"name"`
	Description string `xml:"description"`
	Text        string `xml:",chardata"`
}

type xmlDict struct {
	Fields []xmlField `xml:"field"`
}

// ReadXMLMetadata indexes an XML data dictionary of the shape
//
//	<dictionary>
//	  <field name="VegHt"><description>Vegetation height in meters</description></field>
//	</dictionary>
//
// Both name attributes and <name> child elements are accepted.
func ReadXMLMetadata(idx *MetadataIndex, r io.Reader) error {
	var dict xmlDict
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&dict); err != nil {
		return fmt.Errorf("modifier: reading xml metadata: %w", err)
	}
	for _, f := range dict.Fields {
		name := f.Name
		if name == "" {
			name = strings.TrimSpace(f.NameElem)
		}
		desc := strings.TrimSpace(f.Description)
		if desc == "" {
			desc = strings.TrimSpace(f.Text)
		}
		if name == "" || desc == "" {
			continue
		}
		idx.Add(name, desc)
	}
	return nil
}

// ReadTextMetadata indexes a free-text data dictionary (the extracted-PDF
// path): any line of the form "IDENTIFIER  description ..." or
// "IDENTIFIER: description" contributes an entry; other lines extend the
// previous entry's description, reproducing the unstructured excerpts the
// paper's context windows retrieve.
func ReadTextMetadata(idx *MetadataIndex, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("modifier: reading text metadata: %w", err)
	}
	var lastID, lastDesc string
	flush := func() {
		if lastID != "" && lastDesc != "" {
			idx.Add(lastID, strings.TrimSpace(lastDesc))
		}
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			flush()
			lastID, lastDesc = "", ""
			continue
		}
		if id, desc, ok := splitDictLine(line); ok {
			flush()
			lastID, lastDesc = id, desc
			continue
		}
		if lastID != "" {
			lastDesc += " " + line
		}
	}
	flush()
	return nil
}

// splitDictLine detects "IDENT description..." lines: the first token must
// look like an identifier (no spaces, starts with a letter or underscore)
// and be followed by at least two description words.
func splitDictLine(line string) (id, desc string, ok bool) {
	if i := strings.IndexByte(line, ':'); i > 0 && !strings.ContainsAny(line[:i], " \t") {
		id = strings.TrimSpace(line[:i])
		desc = strings.TrimSpace(line[i+1:])
		if id != "" && desc != "" {
			return id, desc, true
		}
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", "", false
	}
	first := fields[0]
	if !isIdentLike(first) {
		return "", "", false
	}
	return first, strings.Join(fields[1:], " "), true
}

func isIdentLike(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	// Heuristic: data-dictionary identifiers contain an underscore, a digit,
	// or mixed case — plain English words are description text.
	hasUpper := strings.IndexFunc(s, func(r rune) bool { return r >= 'A' && r <= 'Z' }) >= 0
	hasLower := strings.IndexFunc(s, func(r rune) bool { return r >= 'a' && r <= 'z' }) >= 0
	return strings.ContainsAny(s, "_0123456789") || (hasUpper && hasLower) || !hasLower
}
