// Package modifier implements the SNAILS naturalness modifiers (Artifact 5):
// an abbreviator that lowers identifier naturalness (Regular -> Low -> Least)
// and a metadata-retrieval expander that raises it, plus the crosswalk
// structures (Artifact 4) that map every native identifier to semantically
// equivalent forms at each naturalness level.
package modifier

import (
	"strings"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/naturalness"
)

// fnv1a provides deterministic per-word choice of abbreviation rule, so the
// same word always abbreviates the same way (as a human designer would
// consistently shorten "vegetation" to "veg" across a schema).
func fnv1a(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// vowelStrip removes interior vowels from a word, always keeping the first
// character: "height" -> "hght".
func vowelStrip(w string) string {
	if w == "" {
		return w
	}
	var b strings.Builder
	b.WriteByte(w[0])
	for i := 1; i < len(w); i++ {
		switch w[i] {
		case 'a', 'e', 'i', 'o', 'u':
		default:
			b.WriteByte(w[i])
		}
	}
	return b.String()
}

// consonantSkeleton reduces a word to a 2-3 character consonant skeleton:
// "vegetation" -> "vg", "height" -> "ht".
func consonantSkeleton(w string, n int) string {
	s := vowelStrip(w)
	if len(s) <= n {
		return s
	}
	// First consonant plus the most salient following consonants.
	if n >= len(s) {
		return s
	}
	if n == 2 {
		return string(s[0]) + string(s[len(s)-1])
	}
	return s[:n-1] + string(s[len(s)-1])
}

// AbbreviateWord lowers the naturalness of a single lower-case word to the
// target level. Regular keeps the word intact. The transformation is
// deterministic per (word, level).
func AbbreviateWord(w string, target naturalness.Level) string {
	w = strings.ToLower(w)
	if w == "" || target == naturalness.Regular {
		return w
	}
	if len(w) <= 3 {
		// Already short; Least squeezes out any vowel.
		if target == naturalness.Least {
			return vowelStrip(w)
		}
		return w
	}
	h := fnv1a(w)
	switch target {
	case naturalness.Low:
		// Recognizable abbreviation: truncation prefix or partial vowel
		// strip, >= 3 characters.
		switch h % 3 {
		case 0: // truncate to a recognizable prefix
			n := 4
			if len(w) <= 5 {
				n = 3
			}
			return w[:n]
		case 1: // drop the last vowels only ("protocol" -> "protcl")
			if len(w) >= 6 {
				head := w[:len(w)/2]
				tail := vowelStrip(w[len(w)/2:])
				if len(head+tail) >= 3 && len(head+tail) < len(w) {
					return head + tail
				}
			}
			return w[:4]
		default: // drop vowels but keep length >= 4 ("number" -> "nmbr")
			s := vowelStrip(w)
			if len(s) >= 4 {
				return s
			}
			return w[:4]
		}
	default: // Least: indecipherable 2-3 char skeleton
		n := 2
		if h%3 == 0 {
			n = 3
		}
		return consonantSkeleton(w, n)
	}
}

// Abbreviate lowers the naturalness of a multi-word concept. The words are
// the Regular (full English) form; the result uses the requested case style.
// For Least, concepts of 3+ words may collapse into an acronym (the paper's
// COGM_Act pattern).
func Abbreviate(words []string, target naturalness.Level, style ident.CaseStyle) string {
	if len(words) == 0 {
		return ""
	}
	if target == naturalness.Regular {
		return ident.Join(words, style)
	}
	if target == naturalness.Least && len(words) >= 3 && fnv1a(strings.Join(words, " "))%2 == 0 {
		// Acronym collapse.
		var b strings.Builder
		for _, w := range words {
			if w != "" {
				b.WriteByte(w[0])
			}
		}
		return strings.ToUpper(b.String())
	}
	out := make([]string, len(words))
	if target == naturalness.Low && len(words) > 1 {
		// Low-naturalness identifiers typically mix full words with
		// abbreviations (the paper's VegHeight, IsueFrDate, AccountChk):
		// abbreviate roughly half the words, always at least one.
		abbreviated := 0
		for i, w := range words {
			if fnv1a(w+"|mix")%5 < 2 {
				out[i] = w
				continue
			}
			out[i] = AbbreviateWord(w, target)
			if out[i] != w {
				abbreviated++
			}
		}
		if abbreviated == 0 {
			longest := 0
			for i, w := range words {
				if len(w) > len(words[longest]) {
					longest = i
				}
			}
			out[longest] = AbbreviateWord(words[longest], target)
		}
		return ident.Join(out, style)
	}
	for i, w := range words {
		out[i] = AbbreviateWord(w, target)
	}
	if target == naturalness.Least && style == ident.CaseSnake {
		// Least-natural snake identifiers typically drop separators too.
		return ident.Join(out, ident.CasePascal)
	}
	return ident.Join(out, style)
}
