package modifier

import (
	"fmt"
	"strings"
)

// PromptBuilder reproduces the appendix-C.2 interactive few-shot
// prompt-building subroutine for identifier expansion: a user proposes
// identifiers, the expander suggests an expansion grounded in the metadata
// index, the user validates or rejects it, and validated pairs accumulate
// into a reusable few-shot prompt. Once the target number of examples has
// been collected the prompt is stored for future runs.
type PromptBuilder struct {
	Expander *Expander
	// Target is the number of validated examples to collect (the paper
	// uses five).
	Target int

	examples []PromptExample
}

// PromptExample is one validated identifier-expansion pair.
type PromptExample struct {
	Identifier string
	Expansion  string
}

// NewPromptBuilder returns a builder collecting five examples, the paper's
// configuration.
func NewPromptBuilder(exp *Expander) *PromptBuilder {
	return &PromptBuilder{Expander: exp, Target: 5}
}

// Suggest proposes an expansion for the identifier using the current
// few-shot context (zero-shot when no examples are validated yet).
func (pb *PromptBuilder) Suggest(identifier string) (string, bool) {
	words, ok := pb.Expander.Expand(identifier)
	return strings.Join(words, "_"), ok
}

// Validate records the user's decision for a suggestion. Accepted pairs
// join the example list; rejected ones are dropped (the user "tries again
// with a different identifier" per the appendix procedure). It reports
// whether the builder has reached its target.
func (pb *PromptBuilder) Validate(identifier, expansion string, accept bool) bool {
	if accept {
		pb.examples = append(pb.examples, PromptExample{Identifier: identifier, Expansion: expansion})
	}
	return pb.Done()
}

// Done reports whether enough examples have been validated.
func (pb *PromptBuilder) Done() bool { return len(pb.examples) >= pb.Target }

// Examples returns the validated examples collected so far.
func (pb *PromptBuilder) Examples() []PromptExample {
	return append([]PromptExample(nil), pb.examples...)
}

// Prompt renders the stored few-shot expansion prompt for a new identifier,
// in the appendix-C.2 template: metadata context windows followed by the
// validated examples and the expansion instruction.
func (pb *PromptBuilder) Prompt(identifier string) string {
	var b strings.Builder
	b.WriteString("Using the following text extracted from a data dictionary:\n")
	if pb.Expander.Metadata != nil {
		for _, win := range pb.Expander.Metadata.ContextWindows(identifier, 10) {
			b.WriteString(win)
			b.WriteByte('\n')
		}
	}
	b.WriteString("\nExamples:\n")
	for _, ex := range pb.examples {
		fmt.Fprintf(&b, "%s, %s\n", ex.Identifier, ex.Expansion)
	}
	b.WriteString("\nIn the response, provide only the old identifier and new identifier ")
	b.WriteString("(e.g. \"old_identifier, new_identifier\"). Create a meaningful and ")
	b.WriteString("concise database identifier using SQL compatible complete words to ")
	b.WriteString("represent abbreviations and acronyms for only the identifier ")
	b.WriteString(identifier)
	b.WriteString(":\n")
	return b.String()
}

// BuildInteractive drives the full appendix procedure over a stream of
// candidate identifiers with a validation callback standing in for the
// human: it suggests, validates, and stops at the target. It returns the
// validated examples (possibly fewer than Target if candidates run out).
func (pb *PromptBuilder) BuildInteractive(candidates []string, validate func(identifier, expansion string) bool) []PromptExample {
	for _, id := range candidates {
		if pb.Done() {
			break
		}
		suggestion, ok := pb.Suggest(id)
		if !ok {
			continue
		}
		pb.Validate(id, suggestion, validate(id, suggestion))
	}
	return pb.Examples()
}
