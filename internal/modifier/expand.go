package modifier

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
)

// MetadataIndex is a word-level index over database metadata documents
// (data dictionaries), implementing the appendix-C.2 retrieval design: words
// are indexed to their positions and the expander retrieves context windows
// around occurrences of an identifier to ground its expansion.
type MetadataIndex struct {
	// entries maps a lower-cased identifier to its documented description.
	entries map[string]string
	// index maps each description word to the identifiers whose context
	// contains it.
	index map[string][]string
}

// NewMetadataIndex builds an index from identifier -> description pairs.
func NewMetadataIndex() *MetadataIndex {
	return &MetadataIndex{
		entries: make(map[string]string),
		index:   make(map[string][]string),
	}
}

// Add records a metadata entry: the identifier as it appears in the data
// dictionary and its free-text description.
func (m *MetadataIndex) Add(identifier, description string) {
	key := strings.ToLower(identifier)
	m.entries[key] = description
	for _, w := range strings.Fields(strings.ToLower(description)) {
		w = strings.Trim(w, ".,;:()[]\"'")
		if w == "" {
			continue
		}
		m.index[w] = append(m.index[w], key)
	}
}

// Len returns the number of indexed entries.
func (m *MetadataIndex) Len() int { return len(m.entries) }

// Lookup returns the description for the identifier, if documented.
func (m *MetadataIndex) Lookup(identifier string) (string, bool) {
	d, ok := m.entries[strings.ToLower(identifier)]
	return d, ok
}

// ContextWindows returns up to max description excerpts mentioning any word
// token of the identifier — the retrieval step of the expansion prompt.
func (m *MetadataIndex) ContextWindows(identifier string, max int) []string {
	seen := map[string]struct{}{}
	var out []string
	add := func(key string) {
		if _, dup := seen[key]; dup || len(out) >= max {
			return
		}
		seen[key] = struct{}{}
		out = append(out, m.entries[key])
	}
	if _, ok := m.entries[strings.ToLower(identifier)]; ok {
		add(strings.ToLower(identifier))
	}
	for _, w := range ident.Words(identifier) {
		keys := m.index[w]
		sort.Strings(keys)
		for _, k := range keys {
			add(k)
		}
	}
	return out
}

// Expander raises identifier naturalness using metadata retrieval plus
// dictionary-based expansion-candidate analysis. It substitutes for the
// paper's GPT-with-metadata-lookup program.
type Expander struct {
	Dict     *ident.Dictionary
	Metadata *MetadataIndex
}

// Expand returns the Regular-naturalness form of the identifier as a list of
// lower-case full English words. Resolution order per token:
//
//  1. the token is already a dictionary word or common acronym — keep it;
//  2. a metadata description for the identifier contains a dictionary word
//     the token abbreviates — use the grounded word;
//  3. otherwise the shortest dictionary expansion candidate is used;
//  4. tokens with no candidates are kept as-is (flagged via ok=false).
func (e *Expander) Expand(identifier string) (words []string, ok bool) {
	d := e.Dict
	if d == nil {
		d = ident.DefaultDictionary()
	}
	ok = true
	var contextWords []string
	if e.Metadata != nil {
		for _, win := range e.Metadata.ContextWindows(identifier, 10) {
			for _, w := range strings.Fields(strings.ToLower(win)) {
				w = strings.Trim(w, ".,;:()[]\"'")
				if d.Contains(w) {
					contextWords = append(contextWords, w)
				}
			}
		}
	}
	// Identifiers preserve the word order of the phrases they abbreviate
	// ("DtDs" stands for "detection distance", in that order), so grounding
	// walks the retrieved context left to right before falling back to a
	// global shortest-candidate search.
	ptr := 0
	groundSequential := func(tok string) string {
		for i := ptr; i < len(contextWords); i++ {
			w := contextWords[i]
			if len(w) > len(tok) && ident.IsSubsequence(tok, w) {
				ptr = i + 1
				return w
			}
		}
		return bestGrounded(tok, contextWords)
	}
	for _, tok := range ident.Split(identifier) {
		switch tok.Kind {
		case ident.KindNumber:
			words = append(words, tok.Text)
			continue
		case ident.KindSymbol:
			continue
		}
		w := strings.ToLower(tok.Text)
		if d.Contains(w) || ident.IsCommonAcronym(w) {
			words = append(words, w)
			continue
		}
		if grounded := groundSequential(w); grounded != "" {
			words = append(words, grounded)
			continue
		}
		cands := ident.ExpansionCandidates(w, d)
		if len(cands) == 0 {
			words = append(words, w)
			ok = false
			continue
		}
		words = append(words, shortest(cands))
	}
	return words, ok
}

// bestGrounded picks the shortest context word that the token abbreviates.
func bestGrounded(tok string, contextWords []string) string {
	best := ""
	for _, w := range contextWords {
		if len(w) <= len(tok) {
			continue
		}
		if ident.IsSubsequence(tok, w) {
			if best == "" || len(w) < len(best) {
				best = w
			}
		}
	}
	return best
}

func shortest(words []string) string {
	best := words[0]
	for _, w := range words[1:] {
		if len(w) < len(best) || (len(w) == len(best) && w < best) {
			best = w
		}
	}
	return best
}
