package modifier

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/naturalness"
)

func TestAbbreviateWordLevels(t *testing.T) {
	for _, w := range []string{"vegetation", "height", "temperature", "protocol", "customer"} {
		reg := AbbreviateWord(w, naturalness.Regular)
		low := AbbreviateWord(w, naturalness.Low)
		least := AbbreviateWord(w, naturalness.Least)
		if reg != w {
			t.Errorf("Regular should keep word: %q -> %q", w, reg)
		}
		if len(low) >= len(w) {
			t.Errorf("Low form of %q not shorter: %q", w, low)
		}
		if len(least) >= len(low) && len(least) > 3 {
			t.Errorf("Least form of %q (%q) should be shorter than Low (%q)", w, least, low)
		}
		if least == "" || low == "" {
			t.Errorf("empty abbreviation for %q", w)
		}
		// Abbreviations must start with the same letter (subsequence shape).
		if low[0] != w[0] || least[0] != w[0] {
			t.Errorf("abbreviations of %q must share first letter: %q %q", w, low, least)
		}
	}
}

func TestAbbreviateWordDeterministic(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(s)
		return AbbreviateWord(w, naturalness.Low) == AbbreviateWord(w, naturalness.Low) &&
			AbbreviateWord(w, naturalness.Least) == AbbreviateWord(w, naturalness.Least)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAbbreviateConcept(t *testing.T) {
	words := []string{"vegetation", "height"}
	reg := Abbreviate(words, naturalness.Regular, ident.CaseSnake)
	if reg != "vegetation_height" {
		t.Errorf("Regular snake form = %q", reg)
	}
	low := Abbreviate(words, naturalness.Low, ident.CasePascal)
	least := Abbreviate(words, naturalness.Least, ident.CasePascal)
	if len(least) >= len(low) {
		t.Errorf("least %q should be shorter than low %q", least, low)
	}
	// Severity ordering must hold so downstream linking behaves.
	d := ident.DefaultDictionary()
	if !(ident.IdentifierSeverity(reg, d) < ident.IdentifierSeverity(least, d)) {
		t.Errorf("severity ordering violated: reg %q vs least %q", reg, least)
	}
}

func TestAbbreviateAcronymCollapse(t *testing.T) {
	// Some 3+ word concepts collapse into acronyms at Least level.
	sawAcronym := false
	concepts := [][]string{
		{"cost", "of", "goods", "manufactured"},
		{"average", "daily", "attendance", "rate"},
		{"total", "gross", "vehicle", "weight"},
		{"estimated", "time", "of", "arrival"},
	}
	for _, c := range concepts {
		got := Abbreviate(c, naturalness.Least, ident.CasePascal)
		if got == strings.ToUpper(got) && len(got) == len(c) {
			sawAcronym = true
		}
	}
	if !sawAcronym {
		t.Error("expected at least one acronym collapse among multi-word concepts")
	}
}

func TestExpanderRecoversWords(t *testing.T) {
	e := &Expander{}
	words, ok := e.Expand("VegHeight")
	if !ok {
		t.Fatalf("expand failed: %v", words)
	}
	joined := strings.Join(words, " ")
	if !strings.Contains(joined, "height") {
		t.Errorf("expected 'height' in expansion, got %v", words)
	}
}

func TestExpanderUsesMetadata(t *testing.T) {
	idx := NewMetadataIndex()
	idx.Add("num_teach_inexp", "Number of teachers with fewer than four years of experience in their positions")
	e := &Expander{Metadata: idx}
	words, _ := e.Expand("num_teach_inexp")
	joined := strings.Join(words, " ")
	if !strings.Contains(joined, "teacher") {
		t.Errorf("metadata grounding should recover 'teacher'; got %v", words)
	}
	if !strings.Contains(joined, "number") {
		t.Errorf("metadata grounding should recover 'number'; got %v", words)
	}
}

func TestExpanderKeepsDictionaryWords(t *testing.T) {
	e := &Expander{}
	words, ok := e.Expand("vegetation_height")
	if !ok || strings.Join(words, "_") != "vegetation_height" {
		t.Errorf("dictionary words must be kept: %v ok=%v", words, ok)
	}
}

func TestMetadataIndexContextWindows(t *testing.T) {
	idx := NewMetadataIndex()
	idx.Add("VegHt", "Height of the vegetation measured in meters")
	idx.Add("SpCode", "Species code from the master taxonomy table")
	if idx.Len() != 2 {
		t.Fatalf("index size %d", idx.Len())
	}
	wins := idx.ContextWindows("VegHt", 5)
	if len(wins) == 0 {
		t.Fatal("no context retrieved for documented identifier")
	}
	if !strings.Contains(wins[0], "vegetation") && !strings.Contains(wins[0], "Height") {
		t.Errorf("retrieved context should describe the identifier: %q", wins[0])
	}
}

func TestCrosswalkRoundTrip(t *testing.T) {
	b := &Builder{Classifier: naturalness.NewHeuristicClassifier()}
	natives := []string{"vegetation_height", "WaterTemp", "SpCd", "observation_date", "plot_number"}
	cw := b.BuildAll(natives)
	if cw.Len() != len(natives) {
		t.Fatalf("crosswalk size %d != %d", cw.Len(), len(natives))
	}
	for _, nat := range natives {
		for _, l := range naturalness.Levels {
			mod := cw.ToLevel(nat, l)
			back := cw.ToNative(mod, l)
			if !strings.EqualFold(back, nat) {
				t.Errorf("round trip failed at %v: %q -> %q -> %q", l, nat, mod, back)
			}
		}
	}
}

func TestCrosswalkNativeSelfMap(t *testing.T) {
	b := &Builder{Classifier: naturalness.NewHeuristicClassifier()}
	e := b.Build("vegetation_height")
	if e.Forms[e.NativeLevel] != "vegetation_height" {
		t.Errorf("native must map to itself at its own level: %+v", e)
	}
}

func TestCrosswalkCollisionDisambiguation(t *testing.T) {
	cw := NewCrosswalk()
	e1 := Entry{Native: "ColA", NativeLevel: naturalness.Low,
		Forms: [3]string{"column_alpha", "ColA", "CA"}}
	e2 := Entry{Native: "ColB", NativeLevel: naturalness.Low,
		Forms: [3]string{"column_beta", "ColB", "CA"}} // Least collides
	cw.Add(e1)
	added := cw.Add(e2)
	if added.Forms[naturalness.Least] == "CA" {
		t.Error("collision not disambiguated")
	}
	// Both directions must still invert.
	if cw.ToNative("CA", naturalness.Least) != "ColA" {
		t.Error("original mapping lost")
	}
	if got := cw.ToNative(added.Forms[naturalness.Least], naturalness.Least); got != "ColB" {
		t.Errorf("disambiguated mapping broken: %q", got)
	}
}

func TestCrosswalkUnmappedPassThrough(t *testing.T) {
	cw := NewCrosswalk()
	if cw.ToLevel("unknown_col", naturalness.Least) != "unknown_col" {
		t.Error("unmapped ToLevel should pass through")
	}
	if cw.ToNative("unknown_col", naturalness.Least) != "unknown_col" {
		t.Error("unmapped ToNative should pass through")
	}
}

func TestCrosswalkInvertibleProperty(t *testing.T) {
	// Property: for arbitrary lower-case word sets, building a crosswalk and
	// mapping to any level then back recovers the native identifier.
	b := &Builder{}
	f := func(raw []string) bool {
		var natives []string
		seen := map[string]bool{}
		for _, r := range raw {
			w := strings.Map(func(c rune) rune {
				if c >= 'a' && c <= 'z' {
					return c
				}
				return -1
			}, strings.ToLower(r))
			if len(w) < 3 || seen[strings.ToUpper(w)] {
				continue
			}
			seen[strings.ToUpper(w)] = true
			natives = append(natives, w)
			if len(natives) >= 8 {
				break
			}
		}
		cw := b.BuildAll(natives)
		for _, n := range natives {
			for _, l := range naturalness.Levels {
				if !strings.EqualFold(cw.ToNative(cw.ToLevel(n, l), l), n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEntriesSorted(t *testing.T) {
	b := &Builder{}
	cw := b.BuildAll([]string{"zebra", "apple", "mango"})
	es := cw.Entries()
	if len(es) != 3 || es[0].Native != "apple" || es[2].Native != "zebra" {
		t.Errorf("entries not sorted: %v", es)
	}
}
