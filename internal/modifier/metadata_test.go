package modifier

import (
	"strings"
	"testing"
)

func TestReadCSVMetadata(t *testing.T) {
	idx := NewMetadataIndex()
	csvDoc := `identifier,description,type
NUM_TEACH,Number of teachers as reported in the repository,Number
VegHt,Vegetation height measured in meters,Float
`
	if err := ReadCSVMetadata(idx, strings.NewReader(csvDoc)); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 2 {
		t.Fatalf("index size %d (header should be skipped)", idx.Len())
	}
	desc, ok := idx.Lookup("veght")
	if !ok || !strings.Contains(desc, "Vegetation height") {
		t.Errorf("lookup failed: %q %v", desc, ok)
	}
	e := &Expander{Metadata: idx}
	words, _ := e.Expand("NUM_TEACH")
	if !strings.Contains(strings.Join(words, " "), "teacher") {
		t.Errorf("csv-grounded expansion failed: %v", words)
	}
}

func TestReadXMLMetadata(t *testing.T) {
	idx := NewMetadataIndex()
	xmlDoc := `<dictionary>
  <field name="VegHt"><description>Vegetation height in meters</description></field>
  <field><name>SpCd</name><description>Species code from the taxonomy</description></field>
  <field name="empty"></field>
</dictionary>`
	if err := ReadXMLMetadata(idx, strings.NewReader(xmlDoc)); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 2 {
		t.Fatalf("index size %d", idx.Len())
	}
	if _, ok := idx.Lookup("SpCd"); !ok {
		t.Error("element-style name not indexed")
	}
	if err := ReadXMLMetadata(idx, strings.NewReader("not xml <<<")); err == nil {
		t.Error("malformed xml should error")
	}
}

func TestReadTextMetadata(t *testing.T) {
	idx := NewMetadataIndex()
	txt := `Data dictionary for the landbird survey

DtDs detection distance from the station in meters
continued over multiple lines of the manual

WndSp: wind speed at the start of the count
`
	if err := ReadTextMetadata(idx, strings.NewReader(txt)); err != nil {
		t.Fatal(err)
	}
	desc, ok := idx.Lookup("DtDs")
	if !ok || !strings.Contains(desc, "multiple lines") {
		t.Errorf("continuation lines lost: %q %v", desc, ok)
	}
	if _, ok := idx.Lookup("WndSp"); !ok {
		t.Error("colon-style entry not indexed")
	}
	// Grounded expansion through the text reader.
	e := &Expander{Metadata: idx}
	words, _ := e.Expand("DtDs")
	joined := strings.Join(words, " ")
	if !strings.Contains(joined, "detection") || !strings.Contains(joined, "distance") {
		t.Errorf("text-grounded expansion failed: %v", words)
	}
}

func TestPromptBuilderInteractive(t *testing.T) {
	idx := NewMetadataIndex()
	idx.Add("VegHt", "vegetation height of the plot")
	idx.Add("WtTmp", "water temperature at the gauge")
	idx.Add("SpCd", "species code from the master list")
	pb := NewPromptBuilder(&Expander{Metadata: idx})
	pb.Target = 2

	accepted := 0
	examples := pb.BuildInteractive(
		[]string{"VegHt", "WtTmp", "SpCd"},
		func(id, expansion string) bool {
			accepted++
			return true
		},
	)
	if len(examples) != 2 {
		t.Fatalf("examples = %d, want 2 (target reached)", len(examples))
	}
	if !pb.Done() {
		t.Error("builder should be done")
	}
	prompt := pb.Prompt("DfltSlp")
	for _, want := range []string{"data dictionary", "Examples:", "DfltSlp", examples[0].Identifier} {
		if !strings.Contains(prompt, want) {
			t.Errorf("prompt missing %q:\n%s", want, prompt)
		}
	}
}

func TestPromptBuilderRejection(t *testing.T) {
	pb := NewPromptBuilder(&Expander{})
	pb.Target = 1
	examples := pb.BuildInteractive([]string{"VegHt", "WaterTemp"}, func(id, exp string) bool {
		return id == "WaterTemp" // reject the first suggestion
	})
	if len(examples) != 1 || examples[0].Identifier != "WaterTemp" {
		t.Errorf("rejection handling wrong: %+v", examples)
	}
}
