package workflow

import (
	"fmt"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
)

func TestRegisterNaturalViewsExecutable(t *testing.T) {
	b, _ := datasets.Get("ATBI")
	// Work on a fresh instance so the shared registry stays pristine.
	instance := cloneInstance(b.Instance)
	names := RegisterNaturalViews(b.Schema, instance)
	if len(names) != len(b.Schema.Tables) {
		t.Fatalf("views = %d, tables = %d", len(names), len(b.Schema.Tables))
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "db_nl.") {
			t.Fatalf("view name %q not under db_nl", n)
		}
	}
	// Query a natural view end to end: a saplings table exists in ATBI and
	// its Regular name derives from the crosswalk.
	tbl, ok := b.Schema.Table(b.TableName("saplings"))
	if !ok {
		t.Fatal("saplings table missing")
	}
	viewName := "db_nl." + b.Schema.Rename(tbl.Name, naturalness.Regular)
	res, err := sqlexec.ExecuteSQL(instance, "SELECT COUNT(*) FROM "+viewName)
	if err != nil {
		t.Fatalf("view query failed: %v", err)
	}
	base, _ := instance.Table(tbl.Name)
	if res.Rows[0][0].I != int64(base.NumRows()) {
		t.Errorf("view row count %v != base %d", res.Rows[0][0], base.NumRows())
	}
	// Regular column names are directly selectable through the view.
	var regCol string
	for _, c := range tbl.Columns {
		if c.NativeLevel == naturalness.Least {
			regCol = b.Schema.Rename(c.Name, naturalness.Regular)
			break
		}
	}
	if regCol == "" {
		t.Skip("no least column to project")
	}
	res, err = sqlexec.ExecuteSQL(instance, fmt.Sprintf("SELECT %s FROM %s", regCol, viewName))
	if err != nil {
		t.Fatalf("regular-name projection failed: %v", err)
	}
	if res.NumRows() != base.NumRows() {
		t.Errorf("projection rows %d != %d", res.NumRows(), base.NumRows())
	}
}

func TestViewQualifierDoesNotShadowBaseTables(t *testing.T) {
	b, _ := datasets.Get("CWO")
	instance := cloneInstance(b.Instance)
	RegisterNaturalViews(b.Schema, instance)
	// Base tables remain addressable by bare and dbo-qualified names.
	tbl := b.CoreTables[0]
	for _, q := range []string{
		"SELECT COUNT(*) FROM " + tbl,
		"SELECT COUNT(*) FROM dbo." + tbl,
	} {
		if _, err := sqlexec.ExecuteSQL(instance, q); err != nil {
			t.Errorf("%s: %v", q, err)
		}
	}
	// Unknown schema qualifiers fail loudly.
	if _, err := sqlexec.ExecuteSQL(instance, "SELECT COUNT(*) FROM nope."+tbl); err == nil {
		t.Error("unknown schema qualifier should error")
	}
}

func TestViewJoinsWork(t *testing.T) {
	b, _ := datasets.Get("CWO")
	instance := cloneInstance(b.Instance)
	RegisterNaturalViews(b.Schema, instance)
	// Join two natural views on their Regular key names.
	obs, _ := b.Schema.Table(b.TableName("observations"))
	sp, _ := b.Schema.Table(b.TableName("species"))
	obsView := "db_nl." + b.Schema.Rename(obs.Name, naturalness.Regular)
	spView := "db_nl." + b.Schema.Rename(sp.Name, naturalness.Regular)
	q := fmt.Sprintf("SELECT COUNT(*) FROM %s o JOIN %s s ON o.species_id = s.species_id", obsView, spView)
	res, err := sqlexec.ExecuteSQL(instance, q)
	if err != nil {
		t.Fatalf("view join failed: %v", err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("view join returned no rows")
	}
}

// cloneInstance copies tables (sharing row storage is fine for read-only
// tests; views are per-clone).
func cloneInstance(src *sqldb.DB) *sqldb.DB {
	dst := sqldb.NewDB(src.Name)
	for _, name := range src.TableNames() {
		t, _ := src.Table(name)
		nt := dst.CreateTable(name, t.Columns)
		nt.Rows = t.Rows
	}
	return dst
}
