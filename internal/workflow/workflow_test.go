package workflow

import (
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/sqlparse"
)

func cwoQuestion(t *testing.T) (*datasets.Built, nlq.Question) {
	t.Helper()
	b, ok := datasets.Get("CWO")
	if !ok {
		t.Fatal("CWO missing")
	}
	qs := nlq.Generate(b)
	if len(qs) == 0 {
		t.Fatal("no questions")
	}
	return b, qs[0]
}

func TestRunProducesExecutableNativeSQL(t *testing.T) {
	b, q := cwoQuestion(t)
	m := llm.New(llm.Profiles()[1]) // gpt-4o
	for _, v := range schema.Variants {
		out := Run(RunInput{B: b, Q: q, Variant: v, Model: m})
		if !out.ParseOK {
			continue // invalid generations are legitimate outcomes
		}
		if _, err := sqlparse.Parse(out.NativeSQL); err != nil {
			t.Errorf("variant %v: denaturalized SQL does not parse: %v\n%s", v, err, out.NativeSQL)
			continue
		}
		// Execution may fail (wrong identifiers) but must not fail because
		// of leftover variant identifiers when the model linked correctly.
		_, _ = sqlexec.ExecuteSQL(b.Instance, out.NativeSQL)
	}
}

func TestRunDeterministic(t *testing.T) {
	b, q := cwoQuestion(t)
	m := llm.New(llm.Profiles()[0])
	a := Run(RunInput{B: b, Q: q, Variant: schema.VariantLeast, Model: m})
	c := Run(RunInput{B: b, Q: q, Variant: schema.VariantLeast, Model: m})
	if a.Prediction.SQL != c.Prediction.SQL || a.NativeSQL != c.NativeSQL {
		t.Error("pipeline not deterministic")
	}
}

func TestVariantChangesPrompt(t *testing.T) {
	b, q := cwoQuestion(t)
	m := llm.New(llm.Profiles()[1])
	nat := Run(RunInput{B: b, Q: q, Variant: schema.VariantNative, Model: m})
	least := Run(RunInput{B: b, Q: q, Variant: schema.VariantLeast, Model: m})
	if nat.Prompt == least.Prompt {
		t.Error("variant should change the prompt's schema rendering")
	}
}

func TestDenaturalizeRoundTrip(t *testing.T) {
	b, _ := datasets.Get("ATBI")
	for _, q := range nlq.Generate(b)[:10] {
		sel, err := sqlparse.Parse(q.Gold)
		if err != nil {
			t.Fatalf("gold parse: %v", err)
		}
		for _, v := range []schema.Variant{schema.VariantRegular, schema.VariantLow, schema.VariantLeast} {
			naturalized := Naturalize(b.Schema, sel, v)
			sel2, err := sqlparse.Parse(naturalized)
			if err != nil {
				t.Fatalf("naturalized gold does not parse: %v\n%s", err, naturalized)
			}
			back := Denaturalize(b.Schema, sel2, v)
			selBack, err := sqlparse.Parse(back)
			if err != nil {
				t.Fatalf("denaturalized round trip does not parse: %v", err)
			}
			// Identifier sets must be identical to the original gold query's.
			orig := sqlparse.Analyze(sel).All()
			round := sqlparse.Analyze(selBack).All()
			if len(orig) != len(round) || orig.Intersect(round) != len(orig) {
				t.Errorf("variant %v round trip changed identifiers:\n got %v\nwant %v",
					v, round.Sorted(), orig.Sorted())
			}
		}
	}
}

func TestSBODPromptsAreModuleScoped(t *testing.T) {
	b, _ := datasets.Get("SBOD")
	qs := nlq.Generate(b)
	m := llm.New(llm.Profiles()[1])
	out := Run(RunInput{B: b, Q: qs[0], Variant: schema.VariantNative, Model: m})
	if len(out.PromptTables) == 0 {
		t.Fatal("SBOD prompt should be module-scoped")
	}
	whole := len(b.Schema.Tables)
	if len(out.PromptTables) >= whole/2 {
		t.Errorf("module scope too large: %d of %d tables", len(out.PromptTables), whole)
	}
	// Gold tables must always be inside the prompt scope.
	scope := map[string]bool{}
	for _, tn := range out.PromptTables {
		scope[strings.ToUpper(tn)] = true
	}
	for _, tn := range qs[0].Tables {
		if !scope[strings.ToUpper(tn)] {
			t.Errorf("gold table %q outside prompt scope", tn)
		}
	}
}

func TestMiddleware(t *testing.T) {
	b, _ := datasets.Get("ATBI")
	mw := &Middleware{DB: b.Schema}
	prompt := mw.NaturalizePrompt(nil)
	if !strings.Contains(prompt, "vegetation_height") {
		t.Errorf("naturalized prompt should contain full words:\n%s", prompt[:200])
	}
	// Build a Regular-naturalness query and denaturalize it.
	q := nlq.Generate(b)[0]
	sel, _ := sqlparse.Parse(q.Gold)
	regular := Naturalize(b.Schema, sel, schema.VariantRegular)
	native, err := mw.DenaturalizeQuery(regular)
	if err != nil {
		t.Fatalf("middleware denaturalize: %v", err)
	}
	res, err := sqlexec.ExecuteSQL(b.Instance, native)
	if err != nil {
		t.Fatalf("denaturalized query does not execute: %v\n%s", err, native)
	}
	if res.Empty() {
		t.Error("middleware round trip should return the gold result")
	}
	if _, err := mw.DenaturalizeQuery("NOT SQL"); err == nil {
		t.Error("unparseable query must error")
	}
}

func TestNaturalViews(t *testing.T) {
	b, _ := datasets.Get("SBOD")
	views := NaturalViews(b.Schema)
	if len(views) != len(b.Schema.Tables) {
		t.Fatalf("views = %d, tables = %d", len(views), len(b.Schema.Tables))
	}
	v := ViewNameFor(b.Schema, b.TableName("employees"))
	if !strings.HasPrefix(v, "db_nl.") {
		t.Errorf("view name %q should live in db_nl schema", v)
	}
}

func TestSeedVariesByCell(t *testing.T) {
	a := Seed("m", "db", 1, schema.VariantNative)
	if a == Seed("m", "db", 2, schema.VariantNative) {
		t.Error("seed should vary by question")
	}
	if a == Seed("m", "db", 1, schema.VariantLeast) {
		t.Error("seed should vary by variant")
	}
	if a == Seed("m2", "db", 1, schema.VariantNative) {
		t.Error("seed should vary by model")
	}
}

func TestDescribeWorkflow(t *testing.T) {
	names := map[string]string{}
	for _, p := range llm.Profiles() {
		names[p.Name] = DescribeWorkflow(llm.New(p))
	}
	if !strings.Contains(names["DINSQL"], "DIN") {
		t.Error("DIN workflow description wrong")
	}
	if !strings.Contains(names["CodeS"], "filtering") {
		t.Error("CodeS workflow description wrong")
	}
	if !strings.Contains(names["gpt-4o"], "zero-shot") {
		t.Error("ZS workflow description wrong")
	}
}
