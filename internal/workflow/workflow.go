// Package workflow wires the SNAILS pipeline end to end (Figure 6): prompt
// generation with schema-identifier modification, synthetic-LLM inference,
// generated-query denaturalization, and execution against the native
// database. It also provides the section-6 practical applications: the
// prompt/query middleware and the natural-view workflow.
package workflow

import (
	"context"
	"log/slog"
	"sort"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/trace"
)

// RunInput is one (database, question, schema variant, model) cell of the
// benchmark grid. Exactly one of Backend and Model drives the decode:
// Backend when set, else Model through the synthetic fast path (the two are
// bit-identical for synthetic backends — the adapter calls the same
// InferOn).
type RunInput struct {
	B       *datasets.Built
	Q       nlq.Question
	Variant schema.Variant
	Backend backend.Backend
	Model   *llm.Model
}

// ModelName returns the decode identity used for seeding and logs.
func (in *RunInput) ModelName() string {
	if in.Backend != nil {
		return in.Backend.Name()
	}
	return in.Model.Profile.Name
}

// RunOutput is the pipeline's result for one cell.
type RunOutput struct {
	// Prompt is the schema-knowledge block shown to the model.
	Prompt string
	// PromptTables lists the native tables included in the prompt.
	PromptTables []string
	// Prediction is the raw model output (identifiers at the prompt's
	// naturalness variant).
	Prediction llm.Prediction
	// NativeSQL is the denaturalized prediction, executable on the native
	// schema; empty when the prediction does not parse.
	NativeSQL string
	// ParseOK reports whether the prediction parsed (unparseable
	// predictions are excluded from linking analysis, per the paper).
	ParseOK bool
	// FilteredNative is the schema-filtering selection mapped back to
	// native table names.
	FilteredNative []string
	// InferErr is set when a backend could not answer (wire failure,
	// exhausted retries). The cell counts as failed; the sweep goes on.
	InferErr error
}

// promptTables picks the schema subset shown in the prompt. Single-module
// databases show everything; SBOD prompts the union of the modules its gold
// tables belong to, mirroring the paper's module segmentation (performed by
// the authors when constructing prompts, not by the model).
func promptTables(b *datasets.Built, q nlq.Question) []string {
	if len(b.Modules) <= 1 {
		return nil // all tables
	}
	mods := map[string]struct{}{}
	for _, t := range q.Tables {
		mods[b.ModuleOf(t)] = struct{}{}
	}
	var out []string
	for m := range mods {
		out = append(out, b.Modules[m]...)
	}
	sort.Strings(out)
	return out
}

// Seed derives the deterministic noise seed for a cell.
func Seed(model, db string, questionID int, v schema.Variant) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, s := range []string{model, db, v.String()} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
	}
	h ^= uint64(questionID)
	h *= 0x100000001b3
	return h
}

// PromptFor renders the schema-knowledge prompt for one cell and returns it
// with the native tables it covers. Cells of a single-module database share
// one prompt per variant (tables == nil), which is what lets the serving
// layer's micro-batcher render the prompt once for a whole batch.
func PromptFor(b *datasets.Built, q nlq.Question, v schema.Variant) (prompt string, tables []string) {
	tables = promptTables(b, q)
	opts := schema.PromptOptions{Variant: v, Tables: tables, IncludeTypes: true}
	return b.Schema.SchemaKnowledge(opts), tables
}

// SharedPrompt reports whether every question of the database sees the same
// prompt at a given variant (true for single-module databases; SBOD scopes
// prompts to the gold tables' modules, so its prompts are per-question).
func SharedPrompt(b *datasets.Built) bool { return len(b.Modules) <= 1 }

// Run executes the full pipeline for one cell.
func Run(in RunInput) RunOutput {
	return RunCtx(context.Background(), in)
}

// RunCtx is Run with trace propagation: when the context carries a
// trace.Trace, the prompt render, model decode, and parse/denaturalize
// stages are recorded as spans. Untraced contexts pay one nil check per
// stage.
func RunCtx(ctx context.Context, in RunInput) RunOutput {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	prompt, tables := PromptFor(in.B, in.Q, in.Variant)
	tr.Span(trace.StagePrompt, t0)
	return runWithPrompt(ctx, in, prompt, tables)
}

// RunWithPrompt executes the pipeline for one cell against a pre-rendered
// schema prompt (which must be PromptFor's output for the same cell, or the
// shared per-variant prompt of a single-module database).
func RunWithPrompt(in RunInput, prompt string, tables []string) RunOutput {
	return runWithPrompt(context.Background(), in, prompt, tables)
}

// RunWithPromptCtx is RunWithPrompt with trace propagation. The prompt span
// is the caller's responsibility (a micro-batch records its shared render on
// every member trace); decode and parse are recorded here.
func RunWithPromptCtx(ctx context.Context, in RunInput, prompt string, tables []string) RunOutput {
	return runWithPrompt(ctx, in, prompt, tables)
}

// RunWithSchemaCtx is RunWithPromptCtx with a pre-parsed prompt-schema
// handle (which must be llm.PromptSchemaOf(prompt)). Batch-level callers —
// the sweep's per-question jobs and the serving micro-batcher — resolve the
// handle once per (db, variant) batch so member cells skip the per-cell
// prompt-text hash entirely.
func RunWithSchemaCtx(ctx context.Context, in RunInput, prompt string, tables []string, ps *llm.PromptSchema) RunOutput {
	return runWithSchema(ctx, in, prompt, tables, ps)
}

func runWithPrompt(ctx context.Context, in RunInput, prompt string, tables []string) RunOutput {
	return runWithSchema(ctx, in, prompt, tables, nil)
}

func runWithSchema(ctx context.Context, in RunInput, prompt string, tables []string, ps *llm.PromptSchema) RunOutput {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	if ps == nil {
		ps = llm.PromptSchemaOf(prompt)
	}
	seed := Seed(in.ModelName(), in.B.Name, in.Q.ID, in.Variant)
	var pred llm.Prediction
	var inferErr error
	if in.Backend != nil {
		res, err := in.Backend.Infer(ctx, backend.Request{
			SchemaKnowledge: prompt,
			Question:        in.Q.Text,
			Intent:          in.Q.Intent,
			Seed:            seed,
			PromptSchema:    ps,
		})
		if err != nil {
			inferErr = err
			pred = llm.Prediction{Invalid: true}
		} else {
			pred = llm.Prediction{SQL: res.SQL, FilteredTables: res.FilteredTables, Invalid: res.Invalid}
		}
	} else {
		pred = in.Model.InferOn(ps, llm.Task{
			SchemaKnowledge: prompt,
			Question:        in.Q.Text,
			Intent:          in.Q.Intent,
			Seed:            seed,
		})
	}
	tr.Span(trace.StageDecode, t0)

	out := RunOutput{
		Prompt:       prompt,
		PromptTables: tables,
		Prediction:   pred,
		InferErr:     inferErr,
	}
	if inferErr != nil {
		slog.DebugContext(ctx, "backend inference failed",
			slog.String("backend", in.ModelName()),
			slog.String("db", in.B.Name),
			slog.String("variant", in.Variant.String()),
			slog.Int("question_id", in.Q.ID),
			slog.String("err", inferErr.Error()))
		return out
	}
	for _, ft := range pred.FilteredTables {
		out.FilteredNative = append(out.FilteredNative, in.B.Schema.ToNativeVariant(ft, in.Variant))
	}
	if pred.Invalid {
		return out
	}
	t1 := tr.Now()
	sel, err := sqlparse.Parse(pred.SQL)
	if err != nil {
		tr.Span(trace.StageParse, t1)
		slog.DebugContext(ctx, "prediction did not parse",
			slog.String("model", in.ModelName()),
			slog.String("db", in.B.Name),
			slog.String("variant", in.Variant.String()),
			slog.Int("question_id", in.Q.ID),
			slog.String("err", err.Error()))
		return out
	}
	out.ParseOK = true
	out.NativeSQL = Denaturalize(in.B.Schema, sel, in.Variant)
	tr.Span(trace.StageParse, t1)
	return out
}

// Denaturalize maps a parsed query's identifiers from a schema variant back
// to native names (appendix D.4); aliases and literals are untouched because
// replacement happens on the AST, not by string substitution.
func Denaturalize(db *schema.Database, sel *sqlparse.Select, v schema.Variant) string {
	return sqlparse.RenameIdentifiers(sel, func(kind, name string) string {
		return db.ToNativeVariant(name, v)
	})
}

// Naturalize maps a parsed query's identifiers from native names to a
// variant — the reverse direction, used by tests and tooling.
func Naturalize(db *schema.Database, sel *sqlparse.Select, v schema.Variant) string {
	return sqlparse.RenameIdentifiers(sel, func(kind, name string) string {
		return db.RenameVariant(name, v)
	})
}

// Middleware is the section-H.2 schema-modification middleware: it rewrites
// prompt schema knowledge so the LLM sees a Regular-naturalness view and
// rewrites generated queries back to the native schema before execution,
// leaving the database untouched.
type Middleware struct {
	DB *schema.Database
}

// NaturalizePrompt renders Regular-naturalness schema knowledge for the
// given native tables (nil = all).
func (mw *Middleware) NaturalizePrompt(tables []string) string {
	return mw.DB.SchemaKnowledge(schema.PromptOptions{
		Variant: schema.VariantRegular, Tables: tables, IncludeTypes: true,
	})
}

// DenaturalizeQuery rewrites a generated query's Regular-naturalness
// identifiers to native ones. It returns an error when the query does not
// parse.
func (mw *Middleware) DenaturalizeQuery(sql string) (string, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	return Denaturalize(mw.DB, sel, schema.VariantRegular), nil
}

// NaturalViews generates the CREATE VIEW DDL of the section-6 natural-view
// proof of concept for every table of the database.
func NaturalViews(db *schema.Database) []string { return db.NaturalViewDDL() }

// ViewNameFor returns the db_nl view name that exposes a native table at
// Regular naturalness.
func ViewNameFor(db *schema.Database, nativeTable string) string {
	return "db_nl." + db.Rename(nativeTable, 0)
}

// DescribeWorkflow names the method family for reporting (the paper's ZS /
// DIN SQL / CodeS labels).
func DescribeWorkflow(m *llm.Model) string {
	switch m.Profile.Workflow {
	case llm.WorkflowDIN:
		return "DIN SQL prompt chaining"
	case llm.WorkflowCodeS:
		return "CodeS schema filtering + finetuned inference"
	default:
		return "zero-shot prompting with schema knowledge (ZS)"
	}
}

// VariantLabel renders the schema variant exactly as the paper's figures do.
func VariantLabel(v schema.Variant) string { return v.String() }
