package workflow

import (
	"fmt"
	"strings"

	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqldb"
)

// RegisterNaturalViews installs the section-6 natural views into a database
// instance: for every table, a db_nl.<regular_table> view projecting each
// native column under its Regular-naturalness name. Afterwards queries
// written entirely against Regular identifiers execute directly:
//
//	SELECT vegetation_height FROM db_nl.table_saplings
//
// The base tables are untouched, exactly as the paper's proof of concept
// leaves the dbo schema as-is for existing integrations. It returns the
// qualified view names in table order.
func RegisterNaturalViews(db *schema.Database, instance *sqldb.DB) []string {
	names := make([]string, 0, len(db.Tables))
	for _, t := range db.Tables {
		var sel strings.Builder
		sel.WriteString("SELECT ")
		for i, c := range t.Columns {
			if i > 0 {
				sel.WriteString(", ")
			}
			fmt.Fprintf(&sel, "%s AS %s", c.Name, db.Rename(c.Name, 0))
		}
		fmt.Fprintf(&sel, " FROM %s", t.Name)
		name := "db_nl." + db.Rename(t.Name, 0)
		instance.CreateView(name, sel.String())
		names = append(names, name)
	}
	return names
}
