package llm

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/memo"
)

// This file implements the interned, columnar decode engine: the fast path
// behind Model.Infer. The original per-identifier plan path (linking.go)
// is retained verbatim as the reference implementation — NewReference
// builds a model that decodes through it, and the differential tests assert
// bit-identical predictions between the two, mirroring the planner/naive
// pattern in internal/sqlexec.
//
// Three layers remove all per-cell string work from the scoring loops:
//
//  1. schemaIntern — built once per parsed PromptSchema: every identifier's
//     word split is interned into a dense uint32 word table, and the
//     seed-independent noise hash keys are flattened into per-table /
//     per-column slabs. No strings.ToLower, strings.Fields or string-concat
//     hashing survives into the candidate loops. Subset schemas (the
//     filtering stage's keep-lists) intern as index views onto their parent:
//     they carry only a table-index map, so every subset combination reuses
//     the parent's slabs instead of compiling its own.
//  2. phraseInfo — built once per mention phrase (bounded global memo):
//     lower-cased word split, initials, concatenation, and every hashSeed
//     the resolver needs (hallucination, mutation, tmut keys).
//  3. colSlab — built once per (model, schema, phrase) in the model's
//     linkMemo: the compiled decode of the phrase against every table name
//     (kind 'T') or every column (kind 'C'), stored as flat float64/uint64
//     columns indexed by position. The grids are cached separately because
//     table mentions never score columns and column mentions never score
//     table names. Candidate enumeration walks index ranges; evalSlab is
//     allocation-free and touches only slab memory plus the per-cell seed.

// idInfo is one interned identifier: its raw rendering plus the dense word
// ids of its alphabetic sub-tokens (ident.Words output, already lower-case).
type idInfo struct {
	name   string
	toks   []string
	tokIDs []uint32
}

// internSeq hands out process-unique intern ids; the 8-byte rendering
// prefixes slab cache keys so evicted-and-reparsed schemas never collide.
var internSeq atomic.Uint64

// schemaIntern is the seed- and model-independent interning of one
// PromptSchema. It is built once (ParsePrompt / subsetSchema), shared by
// every model and goroutine, and immutable afterward.
//
// A subset intern holds only root and tabMap; all slab-space fields (key,
// words, tabs, cols, colOff, noise keys) live on the root it views into.
type schemaIntern struct {
	// root is the intern owning the flat identifier space; self for a
	// schema interned from scratch, the parent's root for a subset view.
	root *schemaIntern
	// tabMap maps this schema's table index to the root's table index
	// (identity for roots).
	tabMap []int32

	key   string   // unique cache-key prefix (8 bytes)
	words []string // dense word table: id -> lower-cased word
	tabs  []idInfo // per table
	cols  []idInfo // all columns, flattened in table order
	// colOff[i]..colOff[i+1] is table i's range in cols / nkColumn.
	colOff []int32
	// Flattened noise hash keys (see linker.noiseKeyed).
	nkTable, nkTable2, nkFilter []uint64
	nkColumn                    []uint64
	// subsets memoizes the filtering stage's schema subsetting so the same
	// keep-list yields a stable *PromptSchema pointer. It is model-
	// independent (subsetting is pure), so it lives here rather than in the
	// per-model linkMemo, and its lifetime is bounded by the parse memo that
	// owns this intern. Only roots carry it (subsets are never re-subset).
	subsets *memo.Cache[*PromptSchema]
}

// internSchema builds a root intern for a prompt schema.
func internSchema(ps *PromptSchema) *schemaIntern {
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], internSeq.Add(1))
	nT := len(ps.Tables)
	in := &schemaIntern{
		key:      string(kb[:]),
		tabMap:   make([]int32, nT),
		tabs:     make([]idInfo, nT),
		colOff:   make([]int32, nT+1),
		nkTable:  make([]uint64, nT),
		nkTable2: make([]uint64, nT),
		nkFilter: make([]uint64, nT),
		subsets:  memo.NewBounded[*PromptSchema](1 << 10),
	}
	in.root = in
	ids := make(map[string]uint32)
	intern := func(name string) idInfo {
		toks := ident.Words(name)
		info := idInfo{name: name, toks: toks, tokIDs: make([]uint32, len(toks))}
		for i, t := range toks {
			id, ok := ids[t]
			if !ok {
				id = uint32(len(in.words))
				ids[t] = id
				in.words = append(in.words, t)
			}
			info.tokIDs[i] = id
		}
		return info
	}
	for i := range ps.Tables {
		t := &ps.Tables[i]
		in.tabMap[i] = int32(i)
		in.tabs[i] = intern(t.Name)
		in.nkTable[i] = tableNoiseKey(t, "table")
		in.nkTable2[i] = tableNoiseKey(t, "table2")
		in.nkFilter[i] = tableNoiseKey(t, "filter")
		for ci := range t.Columns {
			in.cols = append(in.cols, intern(t.Columns[ci].Name))
			in.nkColumn = append(in.nkColumn, columnNoiseKey(t, ci))
		}
		in.colOff[i+1] = int32(len(in.cols))
	}
	return in
}

// internSubset builds the index-view intern of a subset schema: tabMap
// carries the parent indices of the kept tables, in subset order.
func internSubset(parent *schemaIntern, keptParentIdx []int32) *schemaIntern {
	return &schemaIntern{root: parent.root, tabMap: keptParentIdx}
}

// phraseInfo is the interned form of one mention phrase: everything the
// resolver would otherwise recompute per cell with string operations.
type phraseInfo struct {
	words    []string // lowerFields(phrase); shared, do not modify
	initials string
	concat   string
	// Precomputed hash keys for the resolver's seed mixes.
	kHalluc   uint64 // hashSeed("halluc", phrase)
	kMut      uint64 // hashSeed("mut", phrase)
	kPhrase   uint64 // hashSeed(phrase)
	kTbl      uint64 // hashSeed("tbl:" + phrase)
	kTmutTbl  uint64 // hashSeed("tmut", "tbl:"+phrase)
	kJtbl     uint64 // hashSeed("jtbl:" + phrase)
	kTmutJtbl uint64 // hashSeed("tmut", "jtbl:"+phrase)
}

// phraseMemo caches phrase interns across models (seed-independent).
var phraseMemo = memo.NewBounded[*phraseInfo](1 << 14)

func phraseInfoFor(phrase string) *phraseInfo {
	if pi, ok := phraseMemo.Get(phrase); ok {
		return pi
	}
	words := lowerFields(phrase)
	pi := &phraseInfo{
		words:     words,
		initials:  initials(words),
		kHalluc:   hashSeed("halluc", phrase),
		kMut:      hashSeed("mut", phrase),
		kPhrase:   hashSeed(phrase),
		kTbl:      hashSeed("tbl:" + phrase),
		kTmutTbl:  hashSeed("tmut", "tbl:"+phrase),
		kJtbl:     hashSeed("jtbl:" + phrase),
		kTmutJtbl: hashSeed("tmut", "jtbl:"+phrase),
	}
	if len(words) > 1 {
		n := 0
		for _, w := range words {
			n += len(w)
		}
		b := make([]byte, 0, n)
		for _, w := range words {
			b = append(b, w...)
		}
		pi.concat = string(b)
	} else if len(words) == 1 {
		pi.concat = words[0]
	}
	phraseMemo.Put(phrase, pi)
	return pi
}

// Columnar score slabs. Entry i of a colSlab is the compiled simPlan of the
// phrase against identifier i of the root intern's table or column space,
// laid out column-wise: per-entry scalars in parallel slices and the
// per-word decode scores in one shared slab indexed through wOff.
// flags/fixed/whole/penalty/nW mirror the simPlan fields exactly; evalSlab
// replays evalPlan's float operations in the same order, so results are
// bit-identical.
const (
	slabFixed = 1 << 0 // short-circuit to fixed score
	slabWhole = 1 << 1 // concatenated-rendering max(whole, coverage)
)

type colSlab struct {
	flags   []uint8
	fixed   []float64
	whole   []float64
	penalty []float64 // extra-token dilution; exactly 1 when absent
	nW      []float64 // float64(word count): the coverage divisor
	wOff    []int32   // entry i's word range is wOff[i]..wOff[i+1]
	best    []float64
	gateKey []uint64
	gateOK  []bool
}

// slabBuilder compiles one phrase against a slice of a root intern's
// identifiers. The decode-dedup scratch lives on the linker and is stamped
// with a generation per (root, phrase): decode(tok, word) depends only on
// the interned token id and the phrase word index, and schema tokens repeat
// heavily ("id", "name", "date"), so each pair is decoded once per phrase —
// shared across the table grid and all per-table column grids — with no
// scratch clearing between builds.
type slabBuilder struct {
	p   *Profile
	pi  *phraseInfo
	l   *linker
	nID int
}

// decPrep points the linker's decode scratch at (root, phrase), bumping the
// generation stamp only when the target changes so successive builds for the
// same phrase keep their memoized decodes.
func (l *linker) decPrep(root *schemaIntern, phrase string, nWords int) {
	if l.decRoot == root && l.decPhrase == phrase {
		return
	}
	l.decRoot, l.decPhrase = root, phrase
	if n := nWords * len(root.words); n > len(l.decScore) {
		l.decScore = make([]float64, n)
		l.decEpoch = make([]uint32, n)
		l.decGen = 0
	}
	if l.decGen == ^uint32(0) {
		for i := range l.decEpoch {
			l.decEpoch[i] = 0
		}
		l.decGen = 0
	}
	l.decGen++
}

func buildSlab(l *linker, root *schemaIntern, phrase string, ids []idInfo) *colSlab {
	pi := phraseInfoFor(phrase)
	l.decPrep(root, phrase, len(pi.words))
	b := slabBuilder{p: l.p, pi: pi, l: l, nID: len(root.words)}
	n := len(ids)
	wcap := len(pi.words) * n
	cs := &colSlab{
		flags:   make([]uint8, n),
		fixed:   make([]float64, n),
		whole:   make([]float64, n),
		penalty: make([]float64, n),
		nW:      make([]float64, n),
		wOff:    make([]int32, n+1),
		best:    make([]float64, 0, wcap),
		gateKey: make([]uint64, 0, wcap),
		gateOK:  make([]bool, 0, wcap),
	}
	for i := range ids {
		b.add(cs, i, &ids[i])
		cs.wOff[i+1] = int32(len(cs.best))
	}
	return cs
}

// add compiles one (phrase, identifier) pair into entry i. The branch
// structure mirrors linker.buildPlan exactly; the only differences are that
// the lower-casing, word splitting, and initials/concat derivations were
// hoisted into the interns.
func (b *slabBuilder) add(cs *colSlab, i int, id *idInfo) {
	cs.penalty[i] = 1
	words := b.pi.words
	if len(words) == 0 || id.name == "" {
		cs.flags[i] = slabFixed
		return
	}
	toks := id.toks
	if len(toks) == 0 {
		cs.flags[i] = slabFixed
		return
	}
	if len(toks) == 1 && len(words) >= 3 && toks[0] == b.pi.initials {
		cs.flags[i] = slabFixed
		cs.fixed[i] = b.p.LexSkill * math.Exp(-b.p.Sensitivity*0.85)
		return
	}
	if len(toks) == 1 && len(words) > 1 {
		if toks[0] == b.pi.concat {
			cs.flags[i] = slabFixed
			cs.fixed[i] = 1
			return
		}
		if whole := decodeLower(b.p, toks[0], b.pi.concat); whole > 0 {
			cs.flags[i] |= slabWhole
			cs.whole[i] = whole
		}
	}
	cs.nW[i] = float64(len(words))
	l := b.l
	for wi, w := range words {
		best := 0.0
		for ti, t := range toks {
			idx := wi*b.nID + int(id.tokIDs[ti])
			var s float64
			if l.decEpoch[idx] == l.decGen {
				s = l.decScore[idx]
			} else {
				s = decodeLower(b.p, t, w)
				l.decScore[idx] = s
				l.decEpoch[idx] = l.decGen
			}
			if s > best {
				best = s
			}
		}
		cs.best = append(cs.best, best)
		if best > 0 && best < 0.999 {
			cs.gateOK = append(cs.gateOK, true)
			cs.gateKey = append(cs.gateKey, hashSeed("gate", w, id.name))
		} else {
			cs.gateOK = append(cs.gateOK, false)
			cs.gateKey = append(cs.gateKey, 0)
		}
	}
	if extra := len(toks) - len(words); extra > 1 {
		cs.penalty[i] = 1 / (1 + 0.08*float64(extra-1))
	}
}

// evalSlab applies the per-cell seed to slab entry i. It is the columnar
// twin of evalPlan: same float operations in the same order (the coverage
// divisor is stored as float64(nWords) and divided, never inverted, and the
// no-penalty multiplier is exactly 1.0), so scores are bit-identical to the
// reference path. Allocation-free.
func (l *linker) evalSlab(cs *colSlab, i int) float64 {
	if cs.flags[i]&slabFixed != 0 {
		return cs.fixed[i]
	}
	var total float64
	for j, je := cs.wOff[i], cs.wOff[i+1]; j < je; j++ {
		best := cs.best[j]
		if cs.gateOK[j] && !l.p.DisableGate {
			uncertain := 1 - best
			gateP := 0.6 * uncertain * uncertain
			if hash01(l.seed^cs.gateKey[j]) < gateP {
				best *= 0.15
			}
		}
		total += best
	}
	cov := total / cs.nW[i]
	cov *= cs.penalty[i]
	if cs.flags[i]&slabWhole != 0 && cs.whole[i] > cov {
		return cs.whole[i]
	}
	return cov
}

// colGroup is the lazily-materialized column grid of one (root, phrase):
// one sub-slab per table, built on first touch and published atomically.
// Zero-shot models only ever score the two candidate tables of each column
// mention, so building the whole-schema grid eagerly (as the filtering
// models need) would waste most of the work. Concurrent first touches may
// build the same sub-slab twice; the build is deterministic, so whichever
// CAS wins is bit-identical to the loser.
type colGroup struct {
	tabs []atomic.Pointer[colSlab]
}

// tabSlabFor returns the phrase's table-name grid for the schema's root,
// building on first use and replaying from the model's bounded slab cache
// afterward. The linker keeps a single-entry cache so candidate loops — which
// score one phrase against many identifiers — pay the shared-cache lookup
// once per phrase change, and the loops themselves read slab memory without
// locks.
func (l *linker) tabSlabFor(root *schemaIntern, phrase string) *colSlab {
	if l.curTabSlab != nil && l.curTabRoot == root && l.curTabPhrase == phrase {
		return l.curTabSlab
	}
	key := root.key + phrase
	sl, ok := l.memo.slabs.Get(key)
	if !ok {
		sl = buildSlab(l, root, phrase, root.tabs)
		l.memo.slabs.Put(key, sl)
	}
	l.curTabRoot, l.curTabPhrase, l.curTabSlab = root, phrase, sl
	return sl
}

// colGroupFor returns the phrase's column-grid group (single-entry linker
// cache over the model's bounded group cache).
func (l *linker) colGroupFor(root *schemaIntern, phrase string) *colGroup {
	if l.curGrp != nil && l.curGrpRoot == root && l.curGrpPhrase == phrase {
		return l.curGrp
	}
	key := root.key + phrase
	g, ok := l.memo.groups.Get(key)
	if !ok {
		g = &colGroup{tabs: make([]atomic.Pointer[colSlab], len(root.tabs))}
		l.memo.groups.Put(key, g)
	}
	l.curGrpRoot, l.curGrpPhrase, l.curGrp = root, phrase, g
	return g
}

// colTabIn returns the group's sub-slab for root table ri, building it on
// first touch.
func (l *linker) colTabIn(g *colGroup, root *schemaIntern, phrase string, ri int) *colSlab {
	if sub := g.tabs[ri].Load(); sub != nil {
		return sub
	}
	sub := buildSlab(l, root, phrase, root.cols[root.colOff[ri]:root.colOff[ri+1]])
	if !g.tabs[ri].CompareAndSwap(nil, sub) {
		sub = g.tabs[ri].Load()
	}
	return sub
}

// fastOn reports whether the columnar path serves this schema: the model
// must not be a reference model, and the schema must carry an intern
// (hand-assembled PromptSchema literals fall back to the reference path,
// the same convention the primed noise keys use).
func (l *linker) fastOn(ps *PromptSchema) bool {
	return l.fast && l.memo != nil && ps.intern != nil
}

// fastLinkTable is linkTable on the columnar path.
func (l *linker) fastLinkTable(ps *PromptSchema, phrase string) (int, float64, bool) {
	in := ps.intern
	root := in.root
	sl := l.tabSlabFor(root, phrase)
	bestIdx, bestScore := -1, math.Inf(-1)
	for i := range in.tabMap {
		ri := int(in.tabMap[i])
		s := l.evalSlab(sl, ri) + l.noiseKeyed(root.nkTable[ri])
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 || bestScore < l.p.MinConfidence {
		return bestIdx, bestScore, false
	}
	return bestIdx, bestScore, true
}

// fastSecondTable is secondBestTable on the columnar path.
func (l *linker) fastSecondTable(ps *PromptSchema, phrase string, exclude int) int {
	in := ps.intern
	root := in.root
	sl := l.tabSlabFor(root, phrase)
	best, bestScore := -1, -1e9
	for i := range in.tabMap {
		if i == exclude {
			continue
		}
		ri := int(in.tabMap[i])
		s := l.evalSlab(sl, ri) + l.noiseKeyed(root.nkTable2[ri])
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if bestScore < l.p.MinConfidence {
		return -1
	}
	return best
}

// fastLinkColumn is linkColumn on the columnar path: it walks the two
// candidate tables' lazily-built column sub-slabs in the root's index space.
func (l *linker) fastLinkColumn(ps *PromptSchema, phrase string, pri0, pri1 int) (tableIdx int, column string, score float64, ok bool) {
	in := ps.intern
	root := in.root
	g := l.colGroupFor(root, phrase)
	bestScore := math.Inf(-1)
	for pri := 0; pri < 2; pri++ {
		ti := pri0
		if pri == 1 {
			ti = pri1
		}
		if ti < 0 || ti >= len(in.tabMap) {
			continue
		}
		bonus := 0.0
		if pri == 0 {
			bonus = 0.05
		}
		ri := int(in.tabMap[ti])
		sub := l.colTabIn(g, root, phrase, ri)
		base := root.colOff[ri]
		for k := 0; k < len(sub.flags); k++ {
			s := l.evalSlab(sub, k) + l.noiseKeyed(root.nkColumn[base+int32(k)]) + bonus
			if s > bestScore {
				bestScore, tableIdx, column = s, ti, root.cols[base+int32(k)].name
			}
		}
	}
	if column == "" || bestScore < l.p.MinConfidence {
		return tableIdx, column, bestScore, false
	}
	return tableIdx, column, bestScore, true
}

// fastTableSim is sim(phrase, table name) on the columnar path.
func (l *linker) fastTableSim(ps *PromptSchema, phrase string, ti int) float64 {
	in := ps.intern
	return l.evalSlab(l.tabSlabFor(in.root, phrase), int(in.tabMap[ti]))
}
