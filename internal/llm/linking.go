package llm

import (
	"math"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/memo"
)

// linkMemo caches the seed-independent parts of linking for one model. Raw
// decode scores depend only on the profile's lexical parameters, so each
// (phrase, identifier) pair compiles once and is replayed for all 12k grid
// cells. Seed-dependent noise and gating stay per-call, keeping results
// bit-identical to the unmemoized linker.
//
// Three stores back the two decode paths: plans holds per-identifier
// simPlans (phrase -> identifier -> plan; the reference path and the bare
// sim API), slabs holds the columnar table-name grids, and groups holds the
// lazily-materialized per-table column grids the fast path walks (see
// intern.go). All are entry-capped with clock-hand eviction, so a
// long-lived server's memory stays bounded no matter how adversarial the
// prompt/phrase variety is; an evicted entry is simply recomputed.
type linkMemo struct {
	plans  *memo.Cache[*memo.Cache[*simPlan]]
	slabs  *memo.Cache[*colSlab]  // intern key + phrase -> table-name grid
	groups *memo.Cache[*colGroup] // intern key + phrase -> column grids
}

func newLinkMemo() *linkMemo {
	return &linkMemo{
		plans:  memo.NewBounded[*memo.Cache[*simPlan]](1 << 12),
		slabs:  memo.NewBounded[*colSlab](1 << 13),
		groups: memo.NewBounded[*colGroup](1 << 13),
	}
}

// fieldsMemo caches phrase tokenizations (seed- and model-independent).
var fieldsMemo = memo.NewBounded[[]string](1 << 14) // phrase -> lower-cased fields

// lowerFields returns strings.Fields(strings.ToLower(phrase)), memoized.
// The returned slice is shared and must not be modified.
func lowerFields(phrase string) []string {
	if v, ok := fieldsMemo.Get(phrase); ok {
		return v
	}
	v := strings.Fields(strings.ToLower(phrase))
	fieldsMemo.Put(phrase, v)
	return v
}

// linker scores candidate identifiers against natural-language mention
// phrases for one model profile. A linker serves a single Infer call on a
// single goroutine; only its memo is shared. Infer pools linkers so the
// scratch buffers below survive across calls.
type linker struct {
	p    *Profile
	seed uint64 // per-(model, question, variant) base seed
	memo *linkMemo
	// fast selects the columnar decode path (intern.go); reference models
	// clear it to exercise the original per-identifier plan path.
	fast bool

	// Single-entry cache of the plan set for the phrase currently being
	// linked: candidate loops score one phrase against many identifiers, so
	// this collapses the outer memo lookup to one per phrase change.
	curPhrase string
	curPlans  *memo.Cache[*simPlan]

	// Single-entry caches of the columnar table grid and column-grid group
	// for the (schema, phrase) currently being linked (fast path analogue of
	// curPlans; the two grid kinds are cached independently, see intern.go).
	curTabPhrase string
	curTabRoot   *schemaIntern
	curTabSlab   *colSlab
	curGrpPhrase string
	curGrpRoot   *schemaIntern
	curGrp       *colGroup

	// Decode-dedup scratch for slab builds, generation-stamped per
	// (root, phrase) so it is never cleared (see linker.decPrep).
	decScore  []float64
	decEpoch  []uint32
	decGen    uint32
	decRoot   *schemaIntern
	decPhrase string

	// Reusable scratch for the schema-filtering stage.
	scoreScratch []scoredName
	slabScratch  []*colSlab
	groupScratch []*colGroup
}

// scoredName is one (identifier, score) row of the filtering stage.
type scoredName struct {
	name  string
	score float64
}

// reset prepares a pooled linker for a new Infer call. Every cross-call
// pointer is cleared: stale plan/slab caches would otherwise leak state
// between models.
func (l *linker) reset(p *Profile, seed uint64, m *linkMemo, fast bool) {
	l.p, l.seed, l.memo, l.fast = p, seed, m, fast
	l.curPhrase, l.curPlans = "", nil
	l.curTabPhrase, l.curTabRoot, l.curTabSlab = "", nil, nil
	l.curGrpPhrase, l.curGrpRoot, l.curGrp = "", nil, nil
	// The decode scratch stamps are cleared (not the arrays: the generation
	// counter invalidates them) because decode scores depend on the profile.
	l.decRoot, l.decPhrase = nil, ""
}

// simPlan is the compiled, seed-independent evaluation of sim for one
// (phrase, identifier) pair: everything except the recognition-gate draws,
// which mix in the per-cell seed at eval time.
type simPlan struct {
	// isFixed short-circuits eval to the fixed score (empty inputs, acronym
	// collapse, exact concatenation).
	isFixed bool
	fixed   float64
	// hasWhole marks the concatenated-rendering path: eval returns
	// max(whole, per-word coverage), as the serial linker did.
	hasWhole bool
	whole    float64
	// Per-word best decode scores, their gate eligibility, and the
	// seed-independent gate hash keys.
	best     []float64
	gateable []bool
	gateKey  []uint64
	nWords   int
	// Extra-token dilution multiplier (1 when not applicable).
	hasPenalty bool
	penalty    float64
}

// decode returns the model's ability to recognize identifier sub-token tok
// as standing for the natural word w. Exact matches score 1; abbreviations
// decay exponentially with the fraction of removed characters, scaled by
// the profile's lexical skill and sensitivity. This is the reproduction's
// core mechanism: the same identifier is easy at Regular naturalness and
// nearly opaque at Least, with weaker profiles decaying faster.
func (l *linker) decode(tok, w string) float64 {
	return decodeLower(l.p, strings.ToLower(tok), strings.ToLower(w))
}

// decodeLower is decode for already-lower-cased inputs — the interned fast
// path stores every token and phrase word pre-lowered, so the per-build
// loops skip the case folding entirely.
func decodeLower(p *Profile, tok, w string) float64 {
	if tok == w {
		return 1
	}
	if ident.IsCommonAcronymLower(tok) && strings.HasPrefix(w, tok[:1]) {
		return 0.9 * p.LexSkill
	}
	if !ident.IsSubsequenceLower(tok, w) {
		return 0
	}
	removed := float64(len(w)-len(tok)) / float64(len(w))
	if ident.IsPrefixAbbrevLower(tok, w) && !p.DisablePrefixEase {
		// Prefix truncations ("temp" for "temperature", "veg" for
		// "vegetation") read far more easily than interior abbreviations.
		removed *= 0.45
	}
	if len(tok) <= 2 {
		// One/two-letter consonant skeletons are near-opaque regardless of
		// the original word length.
		removed = math.Max(removed, 0.8)
	} else if len(tok) == 3 && !ident.IsPrefixAbbrevLower(tok, w) {
		// Three-letter interior skeletons ("cnt", "sgr") are little better.
		removed = math.Max(removed, 0.68)
	}
	return p.LexSkill * math.Exp(-p.Sensitivity*removed)
}

// initials returns the first letters of the phrase words ("cost of goods
// manufactured" -> "cogm") for acronym-collapse identifiers.
func initials(words []string) string {
	var b strings.Builder
	for _, w := range words {
		if w != "" {
			b.WriteByte(w[0])
		}
	}
	return strings.ToLower(b.String())
}

// buildPlan compiles the seed-independent evaluation of sim(phrase,
// identifier). The branch structure mirrors the direct computation exactly;
// see evalPlan for the seed-dependent remainder.
func (l *linker) buildPlan(phrase, identifier string) *simPlan {
	p := &simPlan{}
	words := lowerFields(phrase)
	if len(words) == 0 || identifier == "" {
		p.isFixed = true
		return p
	}
	toks := ident.Words(identifier)
	if len(toks) == 0 {
		p.isFixed = true
		return p
	}
	// Acronym collapse: a single identifier token matching the phrase
	// initials ("COGM" for "cost of goods manufactured").
	if len(toks) == 1 && len(words) >= 3 && strings.ToLower(toks[0]) == initials(words) {
		p.isFixed = true
		p.fixed = l.p.LexSkill * math.Exp(-l.p.Sensitivity*0.85)
		return p
	}
	// Concatenated rendering: all-caps or lower styles fuse the phrase into
	// one token ("CASENUMBER" for "case number"). Match the token against
	// the concatenated phrase; exact concatenations read as natural text.
	if len(toks) == 1 && len(words) > 1 {
		concat := strings.Join(words, "")
		t := strings.ToLower(toks[0])
		if t == concat {
			p.isFixed = true
			p.fixed = 1
			return p
		}
		if whole := l.decode(t, concat); whole > 0 {
			p.hasWhole = true
			p.whole = whole
		}
	}
	p.nWords = len(words)
	p.best = make([]float64, len(words))
	p.gateable = make([]bool, len(words))
	p.gateKey = make([]uint64, len(words))
	for i, w := range words {
		best := 0.0
		for _, t := range toks {
			if s := l.decode(t, w); s > best {
				best = s
			}
		}
		p.best[i] = best
		if best > 0 && best < 0.999 {
			p.gateable[i] = true
			p.gateKey[i] = hashSeed("gate", w, identifier)
		}
	}
	// Mild penalty for identifiers with many unrelated extra tokens, which
	// dilute the lexical signal real embeddings rely on.
	if extra := len(toks) - len(words); extra > 1 {
		p.hasPenalty = true
		p.penalty = 1 / (1 + 0.08*float64(extra-1))
	}
	return p
}

// evalPlan applies the per-cell seed to a compiled plan. Allocation-free.
func (l *linker) evalPlan(p *simPlan) float64 {
	if p.isFixed {
		return p.fixed
	}
	var total float64
	for i, best := range p.best {
		// Recognition gate: an abbreviation the model cannot confidently
		// decode is sometimes simply unreadable — the mapping from "VgHt"
		// back to "vegetation height" either clicks or it doesn't. The gate
		// fires with probability growing quadratically in the decode
		// uncertainty, so confidently-read identifiers are unaffected while
		// Least-naturalness skeletons frequently drop most of their signal.
		if p.gateable[i] && !l.p.DisableGate {
			uncertain := 1 - best
			gateP := 0.6 * uncertain * uncertain
			if hash01(l.seed^p.gateKey[i]) < gateP {
				best *= 0.15
			}
		}
		total += best
	}
	cov := total / float64(p.nWords)
	if p.hasPenalty {
		cov *= p.penalty
	}
	if p.hasWhole && p.whole > cov {
		return p.whole
	}
	return cov
}

// planFor returns the compiled plan for one (phrase, identifier) pair,
// memoized per phrase when the linker has a memo.
func (l *linker) planFor(phrase, identifier string) *simPlan {
	if l.memo == nil {
		return l.buildPlan(phrase, identifier)
	}
	if phrase != l.curPhrase || l.curPlans == nil {
		l.curPlans = l.memo.plans.GetOrCompute(phrase, func() *memo.Cache[*simPlan] {
			return memo.NewBounded[*simPlan](1 << 13)
		})
		l.curPhrase = phrase
	}
	if p, ok := l.curPlans.Get(identifier); ok {
		return p
	}
	p := l.buildPlan(phrase, identifier)
	l.curPlans.Put(identifier, p)
	return p
}

// sim scores how well an identifier matches a mention phrase in [0, ~1].
func (l *linker) sim(phrase, identifier string) float64 {
	return l.evalPlan(l.planFor(phrase, identifier))
}

// tablePlansFor returns the phrase's compiled plans against every table
// name of the schema. The plans come from the same planFor cache sim uses,
// so the paths can never diverge. This is reference-path machinery: the
// fast path replays the columnar slabs instead (intern.go).
func (l *linker) tablePlansFor(ps *PromptSchema, phrase string) []*simPlan {
	out := make([]*simPlan, len(ps.Tables))
	for i := range ps.Tables {
		out[i] = l.planFor(phrase, ps.Tables[i].Name)
	}
	return out
}

// colPlansFor returns the phrase's compiled plans against every column of
// every table — the filterTables column-evidence scan, which is the one
// consumer that genuinely touches the full cross product.
func (l *linker) colPlansFor(ps *PromptSchema, phrase string) [][]*simPlan {
	out := make([][]*simPlan, len(ps.Tables))
	for i := range ps.Tables {
		t := &ps.Tables[i]
		cp := make([]*simPlan, len(t.Columns))
		for ci := range t.Columns {
			cp[ci] = l.planFor(phrase, t.Columns[ci].Name)
		}
		out[i] = cp
	}
	return out
}

// noise returns the deterministic per-candidate score perturbation.
func (l *linker) noise(kind, candidate string) float64 {
	return l.noiseKeyed(hashSeed(kind, strings.ToUpper(candidate)))
}

// noiseKeyed draws noise from a precomputed hash key (see PromptTable's
// primed noise keys: the key material is schema-static, only the seed mix
// is per-cell).
func (l *linker) noiseKeyed(k uint64) float64 {
	return (hash01(l.seed^k) - 0.5) * 2 * l.p.NoiseAmp
}

// tableNoiseKey returns the noise hash key for a table-name candidate under
// the given kind, preferring the primed key.
func tableNoiseKey(t *PromptTable, kind string) uint64 {
	if t.primed {
		switch kind {
		case "table":
			return t.nkTable
		case "table2":
			return t.nkTable2
		case "filter":
			return t.nkFilter
		}
	}
	return hashSeed(kind, strings.ToUpper(t.Name))
}

// columnNoiseKey returns the noise hash key for table.column qualified names.
func columnNoiseKey(t *PromptTable, ci int) uint64 {
	if t.primed {
		return t.nkColumns[ci]
	}
	return hashSeed("column", strings.ToUpper(t.Name+"."+t.Columns[ci].Name))
}

// linkTable picks the best table for a mention phrase. ok is false when no
// candidate clears the model's confidence floor (the model will hallucinate
// a table name instead).
func (l *linker) linkTable(phrase string, ps *PromptSchema) (int, float64, bool) {
	plans := l.tablePlansFor(ps, phrase)
	bestIdx, bestScore := -1, math.Inf(-1)
	for i := range ps.Tables {
		t := &ps.Tables[i]
		s := l.evalPlan(plans[i]) + l.noiseKeyed(tableNoiseKey(t, "table"))
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 || bestScore < l.p.MinConfidence {
		return bestIdx, bestScore, false
	}
	return bestIdx, bestScore, true
}

// linkColumn picks the best column for a mention phrase among two candidate
// tables (in priority order: the first table gets a locality bonus, the way
// attention concentrates on the table already chosen for the FROM clause).
func (l *linker) linkColumn(phrase string, ps *PromptSchema, pri0, pri1 int) (tableIdx int, column string, score float64, ok bool) {
	bestScore := math.Inf(-1)
	for pri := 0; pri < 2; pri++ {
		ti := pri0
		if pri == 1 {
			ti = pri1
		}
		if ti < 0 || ti >= len(ps.Tables) {
			continue
		}
		bonus := 0.0
		if pri == 0 {
			bonus = 0.05
		}
		t := &ps.Tables[ti]
		for ci := range t.Columns {
			c := &t.Columns[ci]
			s := l.sim(phrase, c.Name) + l.noiseKeyed(columnNoiseKey(t, ci)) + bonus
			if s > bestScore {
				bestScore, tableIdx, column = s, ti, c.Name
			}
		}
	}
	if column == "" || bestScore < l.p.MinConfidence {
		return tableIdx, column, bestScore, false
	}
	return tableIdx, column, bestScore, true
}

// bestTable, secondTable, bestColumn and tableSim dispatch between the
// columnar fast path and the retained reference path; the two are asserted
// bit-identical by TestFastMatchesReference.

func (l *linker) bestTable(ps *PromptSchema, phrase string) (int, float64, bool) {
	if l.fastOn(ps) {
		return l.fastLinkTable(ps, phrase)
	}
	return l.linkTable(phrase, ps)
}

func (l *linker) secondTable(ps *PromptSchema, phrase string, exclude int) int {
	if l.fastOn(ps) {
		return l.fastSecondTable(ps, phrase, exclude)
	}
	return l.refSecondTable(ps, phrase, exclude)
}

func (l *linker) bestColumn(ps *PromptSchema, phrase string, pri0, pri1 int) (int, string, float64, bool) {
	if l.fastOn(ps) {
		return l.fastLinkColumn(ps, phrase, pri0, pri1)
	}
	return l.linkColumn(phrase, ps, pri0, pri1)
}

func (l *linker) tableSim(ps *PromptSchema, phrase string, ti int) float64 {
	if l.fastOn(ps) {
		return l.fastTableSim(ps, phrase, ti)
	}
	return l.sim(phrase, ps.Tables[ti].Name)
}

// refSecondTable re-links a phrase while excluding one index (reference
// path; moved here from Model so both paths live side by side).
func (l *linker) refSecondTable(ps *PromptSchema, phrase string, exclude int) int {
	plans := l.tablePlansFor(ps, phrase)
	best, bestScore := -1, -1e9
	for i := range ps.Tables {
		if i == exclude {
			continue
		}
		t := &ps.Tables[i]
		s := l.evalPlan(plans[i]) + l.noiseKeyed(tableNoiseKey(t, "table2"))
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if bestScore < l.p.MinConfidence {
		return -1
	}
	return best
}

// hallucinateIdentifier invents an identifier for a phrase the model failed
// to link: it renders the phrase the way the model "expects" schemas to be
// named. The result rarely exists in the schema, producing the typo-like
// failures the paper reports.
func (l *linker) hallucinateIdentifier(phrase string) string {
	if l.fast {
		pi := phraseInfoFor(phrase)
		return l.hallucinateFrom(pi.words, pi.kHalluc)
	}
	return l.hallucinateFrom(lowerFields(phrase), hashSeed("halluc", phrase))
}

// hallucinateFrom renders the hallucination from a pre-split phrase and its
// precomputed hash key.
func (l *linker) hallucinateFrom(words []string, kHalluc uint64) string {
	// words is a shared slice: copy before any mutation.
	if len(words) == 0 {
		return "unknown"
	}
	// Hallucinations are near-misses, not faithful reconstructions: models
	// toggle plurality, add spurious suffixes, or drop qualifying words.
	switch h := hash01(l.seed ^ kHalluc); {
	case h < 0.2:
		words = append([]string{}, words...)
		words[len(words)-1] = togglePlural(words[len(words)-1])
		return strings.Join(words, "_")
	case h < 0.4:
		return strings.Join(words, "_") + "_id"
	case h < 0.6:
		return ident.Join(words, ident.CasePascal)
	case h < 0.8:
		return words[len(words)-1]
	default:
		return ident.Join(words, ident.CaseCamel)
	}
}

func togglePlural(w string) string {
	if strings.HasSuffix(w, "s") {
		return strings.TrimSuffix(w, "s")
	}
	return w + "s"
}

// mutateIdentifier applies a typo-like hallucination to a linked identifier:
// dropping a tbl_/table prefix token or snake-casing a camel identifier —
// the specific mutation behaviours observed in section 6.
func (l *linker) mutateIdentifier(name string, seed uint64) string {
	toks := ident.Split(name)
	if len(toks) == 0 {
		return name
	}
	first := strings.ToLower(toks[0].Text)
	if first == "tbl" || first == "tlu" || first == "table" {
		// Drop the prefix token (table_employee -> employee).
		var words []string
		for _, t := range toks[1:] {
			words = append(words, strings.ToLower(t.Text))
		}
		if len(words) > 0 {
			style := ident.DetectCase(name)
			if style == ident.CaseUnknown {
				style = ident.CasePascal
			}
			return ident.Join(words, style)
		}
	}
	// Otherwise re-case into snake (the whitespace/camel mutation); when the
	// identifier is already snake-cased this would be a no-op, so fall
	// through to the character drop instead.
	var words []string
	for _, t := range toks {
		words = append(words, strings.ToLower(t.Text))
	}
	if seed%2 == 0 && len(words) > 1 {
		if snake := strings.Join(words, "_"); !strings.EqualFold(snake, name) {
			return snake
		}
	}
	// Drop a low-salience interior character.
	r := []rune(name)
	if len(r) > 2 {
		pos := 1 + int(seed%uint64(len(r)-1))
		return string(r[:pos]) + string(r[pos+1:])
	}
	return name
}
