package llm

import (
	"math"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
)

// linker scores candidate identifiers against natural-language mention
// phrases for one model profile.
type linker struct {
	p    *Profile
	seed uint64 // per-(model, question, variant) base seed
}

// decode returns the model's ability to recognize identifier sub-token tok
// as standing for the natural word w. Exact matches score 1; abbreviations
// decay exponentially with the fraction of removed characters, scaled by
// the profile's lexical skill and sensitivity. This is the reproduction's
// core mechanism: the same identifier is easy at Regular naturalness and
// nearly opaque at Least, with weaker profiles decaying faster.
func (l *linker) decode(tok, w string) float64 {
	tok = strings.ToLower(tok)
	w = strings.ToLower(w)
	if tok == w {
		return 1
	}
	if ident.IsCommonAcronym(tok) && strings.HasPrefix(w, tok[:1]) {
		return 0.9 * l.p.LexSkill
	}
	if !ident.IsSubsequence(tok, w) {
		return 0
	}
	removed := float64(len(w)-len(tok)) / float64(len(w))
	if ident.IsPrefixAbbrev(tok, w) && !l.p.DisablePrefixEase {
		// Prefix truncations ("temp" for "temperature", "veg" for
		// "vegetation") read far more easily than interior abbreviations.
		removed *= 0.45
	}
	if len(tok) <= 2 {
		// One/two-letter consonant skeletons are near-opaque regardless of
		// the original word length.
		removed = math.Max(removed, 0.8)
	} else if len(tok) == 3 && !ident.IsPrefixAbbrev(tok, w) {
		// Three-letter interior skeletons ("cnt", "sgr") are little better.
		removed = math.Max(removed, 0.68)
	}
	return l.p.LexSkill * math.Exp(-l.p.Sensitivity*removed)
}

// initials returns the first letters of the phrase words ("cost of goods
// manufactured" -> "cogm") for acronym-collapse identifiers.
func initials(words []string) string {
	var b strings.Builder
	for _, w := range words {
		if w != "" {
			b.WriteByte(w[0])
		}
	}
	return strings.ToLower(b.String())
}

// sim scores how well an identifier matches a mention phrase in [0, ~1].
func (l *linker) sim(phrase, identifier string) float64 {
	words := strings.Fields(strings.ToLower(phrase))
	if len(words) == 0 || identifier == "" {
		return 0
	}
	toks := ident.Words(identifier)
	if len(toks) == 0 {
		return 0
	}
	// Acronym collapse: a single identifier token matching the phrase
	// initials ("COGM" for "cost of goods manufactured").
	if len(toks) == 1 && len(words) >= 3 && strings.ToLower(toks[0]) == initials(words) {
		return l.p.LexSkill * math.Exp(-l.p.Sensitivity*0.85)
	}
	// Concatenated rendering: all-caps or lower styles fuse the phrase into
	// one token ("CASENUMBER" for "case number"). Match the token against
	// the concatenated phrase; exact concatenations read as natural text.
	if len(toks) == 1 && len(words) > 1 {
		concat := strings.Join(words, "")
		t := strings.ToLower(toks[0])
		if t == concat {
			return 1
		}
		if whole := l.decode(t, concat); whole > 0 {
			perWord := l.simPerWord(words, toks, identifier)
			if whole > perWord {
				return whole
			}
			return perWord
		}
	}
	return l.simPerWord(words, toks, identifier)
}

// simPerWord is the word-by-word coverage component of sim.
func (l *linker) simPerWord(words, toks []string, identifier string) float64 {
	var total float64
	for _, w := range words {
		best := 0.0
		for _, t := range toks {
			if s := l.decode(t, w); s > best {
				best = s
			}
		}
		// Recognition gate: an abbreviation the model cannot confidently
		// decode is sometimes simply unreadable — the mapping from "VgHt"
		// back to "vegetation height" either clicks or it doesn't. The gate
		// fires with probability growing quadratically in the decode
		// uncertainty, so confidently-read identifiers are unaffected while
		// Least-naturalness skeletons frequently drop most of their signal.
		if best > 0 && best < 0.999 && !l.p.DisableGate {
			uncertain := 1 - best
			gateP := 0.6 * uncertain * uncertain
			if hash01(l.seed^hashSeed("gate", w, identifier)) < gateP {
				best *= 0.15
			}
		}
		total += best
	}
	cov := total / float64(len(words))
	// Mild penalty for identifiers with many unrelated extra tokens, which
	// dilute the lexical signal real embeddings rely on.
	if extra := len(toks) - len(words); extra > 1 {
		cov *= 1 / (1 + 0.08*float64(extra-1))
	}
	return cov
}

// noise returns the deterministic per-candidate score perturbation.
func (l *linker) noise(kind, candidate string) float64 {
	return (hash01(l.seed^hashSeed(kind, strings.ToUpper(candidate))) - 0.5) * 2 * l.p.NoiseAmp
}

// linkTable picks the best table for a mention phrase. ok is false when no
// candidate clears the model's confidence floor (the model will hallucinate
// a table name instead).
func (l *linker) linkTable(phrase string, ps *PromptSchema) (int, float64, bool) {
	bestIdx, bestScore := -1, math.Inf(-1)
	for i := range ps.Tables {
		s := l.sim(phrase, ps.Tables[i].Name) + l.noise("table", ps.Tables[i].Name)
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 || bestScore < l.p.MinConfidence {
		return bestIdx, bestScore, false
	}
	return bestIdx, bestScore, true
}

// linkColumn picks the best column for a mention phrase among the given
// tables (in priority order: earlier tables get a locality bonus, the way
// attention concentrates on the table already chosen for the FROM clause).
func (l *linker) linkColumn(phrase string, ps *PromptSchema, tableIdxs []int) (tableIdx int, column string, score float64, ok bool) {
	bestScore := math.Inf(-1)
	for pri, ti := range tableIdxs {
		if ti < 0 || ti >= len(ps.Tables) {
			continue
		}
		bonus := 0.0
		if pri == 0 {
			bonus = 0.05
		}
		for _, c := range ps.Tables[ti].Columns {
			s := l.sim(phrase, c.Name) + l.noise("column", ps.Tables[ti].Name+"."+c.Name) + bonus
			if s > bestScore {
				bestScore, tableIdx, column = s, ti, c.Name
			}
		}
	}
	if column == "" || bestScore < l.p.MinConfidence {
		return tableIdx, column, bestScore, false
	}
	return tableIdx, column, bestScore, true
}

// hallucinateIdentifier invents an identifier for a phrase the model failed
// to link: it renders the phrase the way the model "expects" schemas to be
// named. The result rarely exists in the schema, producing the typo-like
// failures the paper reports.
func (l *linker) hallucinateIdentifier(phrase string) string {
	words := strings.Fields(strings.ToLower(phrase))
	if len(words) == 0 {
		return "unknown"
	}
	// Hallucinations are near-misses, not faithful reconstructions: models
	// toggle plurality, add spurious suffixes, or drop qualifying words.
	switch h := hash01(l.seed ^ hashSeed("halluc", phrase)); {
	case h < 0.2:
		words = append([]string{}, words...)
		words[len(words)-1] = togglePlural(words[len(words)-1])
		return strings.Join(words, "_")
	case h < 0.4:
		return strings.Join(words, "_") + "_id"
	case h < 0.6:
		return ident.Join(words, ident.CasePascal)
	case h < 0.8:
		return words[len(words)-1]
	default:
		return ident.Join(words, ident.CaseCamel)
	}
}

func togglePlural(w string) string {
	if strings.HasSuffix(w, "s") {
		return strings.TrimSuffix(w, "s")
	}
	return w + "s"
}

// mutateIdentifier applies a typo-like hallucination to a linked identifier:
// dropping a tbl_/table prefix token or snake-casing a camel identifier —
// the specific mutation behaviours observed in section 6.
func (l *linker) mutateIdentifier(name string, seed uint64) string {
	toks := ident.Split(name)
	if len(toks) == 0 {
		return name
	}
	first := strings.ToLower(toks[0].Text)
	if first == "tbl" || first == "tlu" || first == "table" {
		// Drop the prefix token (table_employee -> employee).
		var words []string
		for _, t := range toks[1:] {
			words = append(words, strings.ToLower(t.Text))
		}
		if len(words) > 0 {
			style := ident.DetectCase(name)
			if style == ident.CaseUnknown {
				style = ident.CasePascal
			}
			return ident.Join(words, style)
		}
	}
	// Otherwise re-case into snake (the whitespace/camel mutation); when the
	// identifier is already snake-cased this would be a no-op, so fall
	// through to the character drop instead.
	var words []string
	for _, t := range toks {
		words = append(words, strings.ToLower(t.Text))
	}
	if seed%2 == 0 && len(words) > 1 {
		if snake := strings.Join(words, "_"); !strings.EqualFold(snake, name) {
			return snake
		}
	}
	// Drop a low-salience interior character.
	r := []rune(name)
	if len(r) > 2 {
		pos := 1 + int(seed%uint64(len(r)-1))
		return string(r[:pos]) + string(r[pos+1:])
	}
	return name
}
