package llm

import (
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/sqlparse"
)

const sampleSchema = `#observations(observation_id int, species_id int, vegetation_height float, observation_date date, animal_count int)
#species(species_id int, common_name nvarchar, scientific_name nvarchar, animal_class nvarchar)
#locations(location_id int, location_name nvarchar, county nvarchar)
`

const abbrevSchema = `#Obs(ObId int, SpId int, VgHt float, ObDt date, AnCt int)
#Sp(SpId int, CmNm nvarchar, ScNm nvarchar, AnCl nvarchar)
#Lc(LcId int, LcNm nvarchar, Cty nvarchar)
`

func TestParsePrompt(t *testing.T) {
	ps := ParsePrompt(sampleSchema)
	if len(ps.Tables) != 3 {
		t.Fatalf("tables = %d", len(ps.Tables))
	}
	if ps.Tables[0].Name != "observations" || len(ps.Tables[0].Columns) != 5 {
		t.Fatalf("first table mis-parsed: %+v", ps.Tables[0])
	}
	if ps.Tables[0].Columns[2].Name != "vegetation_height" || ps.Tables[0].Columns[2].Type != "float" {
		t.Errorf("column mis-parsed: %+v", ps.Tables[0].Columns[2])
	}
	if ps.Table("SPECIES") != 1 {
		t.Error("case-insensitive table lookup broken")
	}
	if ps.Table("nope") != -1 {
		t.Error("unknown table should be -1")
	}
}

func TestParsePromptSkipsGarbage(t *testing.T) {
	ps := ParsePrompt("garbage\n#Database: X\n#broken(noclose\n" + sampleSchema)
	if len(ps.Tables) != 3 {
		t.Fatalf("garbage lines should be skipped: %d", len(ps.Tables))
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("want 6 profiles, got %d", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.LexSkill <= 0 || p.LexSkill > 1 || p.StructSkill <= 0 || p.StructSkill > 1 {
			t.Errorf("implausible profile %+v", p)
		}
	}
	if _, ok := ProfileByName("gpt-4o"); !ok {
		t.Error("gpt-4o missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestSimNaturalBeatsAbbreviated(t *testing.T) {
	for _, p := range Profiles() {
		l := &linker{p: p, seed: 1}
		natural := l.sim("vegetation height", "vegetation_height")
		low := l.sim("vegetation height", "VegHeight")
		least := l.sim("vegetation height", "VgHt")
		if !(natural > low && low > least) {
			t.Errorf("%s: sim ordering violated: nat=%.3f low=%.3f least=%.3f",
				p.Name, natural, low, least)
		}
		if natural < 0.9 {
			t.Errorf("%s: exact match should score near 1: %v", p.Name, natural)
		}
	}
}

func TestStrongerModelsDecodeBetter(t *testing.T) {
	strong, _ := ProfileByName("gpt-4o")
	weak, _ := ProfileByName("Phind-CodeLlama-34B-v2")
	ls := &linker{p: strong, seed: 1}
	lw := &linker{p: weak, seed: 1}
	s := ls.sim("vegetation height", "VgHt")
	w := lw.sim("vegetation height", "VgHt")
	if s <= w {
		t.Errorf("strong model should decode abbreviations better: strong=%.3f weak=%.3f", s, w)
	}
}

func TestSimAcronymCollapse(t *testing.T) {
	p, _ := ProfileByName("gpt-4o")
	l := &linker{p: p, seed: 1}
	got := l.sim("cost of goods manufactured", "COGM")
	if got <= 0 {
		t.Errorf("acronym collapse should retain some signal: %v", got)
	}
	unrelated := l.sim("cost of goods manufactured", "XQZV")
	if unrelated >= got {
		t.Errorf("unrelated code should score below the true acronym: %v vs %v", unrelated, got)
	}
}

func countTask(schema string) Task {
	return Task{
		SchemaKnowledge: schema,
		Question:        "How many observations are there?",
		Intent:          nlq.Intent{Kind: nlq.KindCountAll, TableMention: "field observations", Agg: "COUNT"},
		Seed:            42,
	}
}

func TestInferProducesParseableSQL(t *testing.T) {
	for _, p := range Profiles() {
		m := New(p)
		pred := m.Infer(countTask(sampleSchema))
		if pred.Invalid {
			continue
		}
		if _, err := sqlparse.Parse(pred.SQL); err != nil {
			t.Errorf("%s: unparseable output %q: %v", p.Name, pred.SQL, err)
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	m := New(Profiles()[0])
	a := m.Infer(countTask(sampleSchema))
	b := m.Infer(countTask(sampleSchema))
	if a.SQL != b.SQL {
		t.Errorf("inference not deterministic: %q vs %q", a.SQL, b.SQL)
	}
}

func TestInferLinksNaturalSchema(t *testing.T) {
	m := mustProfile(t, "gpt-4o")
	task := Task{
		SchemaKnowledge: sampleSchema,
		Question:        "Show the vegetation height of the observations whose county is 'Butte'.",
		Intent: nlq.Intent{
			Kind: nlq.KindListFilter, TableMention: "observations",
			Columns: []nlq.ColMention{
				{Phrase: "vegetation height", Role: nlq.RoleProjection},
				{Phrase: "animal count", Role: nlq.RoleFilter},
			},
			FilterOp: "=", FilterValue: "3",
		},
		Seed: 7,
	}
	pred := m.Infer(task)
	if !strings.Contains(pred.SQL, "vegetation_height") {
		t.Errorf("strong model should link the natural column: %s", pred.SQL)
	}
	if !strings.Contains(pred.SQL, "observations") {
		t.Errorf("strong model should link the table: %s", pred.SQL)
	}
}

func mustProfile(t *testing.T, name string) *Model {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return New(p)
}

// linkRate measures how often a model recalls the correct column across many
// seeds for a given schema rendering.
func linkRate(p *Profile, schemaBlock, table, phrase, want string) float64 {
	m := New(p)
	hits := 0
	const n = 400
	for seed := uint64(0); seed < n; seed++ {
		task := Task{
			SchemaKnowledge: schemaBlock,
			Question:        "Show the " + phrase + " of the observations.",
			Intent: nlq.Intent{
				Kind: nlq.KindListFilter, TableMention: table,
				Columns: []nlq.ColMention{
					{Phrase: phrase, Role: nlq.RoleProjection},
					{Phrase: "animal count", Role: nlq.RoleFilter},
				},
				FilterOp: "=", FilterValue: "3",
			},
			Seed: seed,
		}
		pred := m.Infer(task)
		if strings.Contains(strings.ToUpper(pred.SQL), strings.ToUpper(want)) {
			hits++
		}
	}
	return float64(hits) / n
}

func TestLinkingDegradesWithNaturalness(t *testing.T) {
	// The core reproduction property: for every profile, recall of the
	// correct column is higher on the natural schema rendering than on the
	// heavily abbreviated one.
	for _, p := range Profiles() {
		nat := linkRate(p, sampleSchema, "observations", "vegetation height", "vegetation_height")
		least := linkRate(p, abbrevSchema, "observations", "vegetation height", "VgHt")
		if nat <= least {
			t.Errorf("%s: natural linking (%.2f) should beat abbreviated (%.2f)", p.Name, nat, least)
		}
	}
}

func TestWeakModelsMoreSensitive(t *testing.T) {
	strong, _ := ProfileByName("gpt-4o")
	weak, _ := ProfileByName("Phind-CodeLlama-34B-v2")
	dropStrong := linkRate(strong, sampleSchema, "observations", "vegetation height", "vegetation_height") -
		linkRate(strong, abbrevSchema, "observations", "vegetation height", "VgHt")
	dropWeak := linkRate(weak, sampleSchema, "observations", "vegetation height", "vegetation_height") -
		linkRate(weak, abbrevSchema, "observations", "vegetation height", "VgHt")
	if dropWeak <= dropStrong {
		t.Errorf("weak model should be more sensitive: strong drop %.2f, weak drop %.2f",
			dropStrong, dropWeak)
	}
}

func TestFilterStageKeepsBudget(t *testing.T) {
	p, _ := ProfileByName("CodeS")
	m := New(p)
	task := countTask(sampleSchema)
	pred := m.Infer(task)
	if len(pred.FilteredTables) == 0 || len(pred.FilteredTables) > p.FilterKeep {
		t.Errorf("filter stage returned %d tables, budget %d", len(pred.FilteredTables), p.FilterKeep)
	}
}

func TestZeroShotHasNoFilterStage(t *testing.T) {
	p, _ := ProfileByName("gpt-4o")
	pred := New(p).Infer(countTask(sampleSchema))
	if pred.FilteredTables != nil {
		t.Error("zero-shot prediction should have no filter stage output")
	}
}

func TestMutateIdentifierDropsTablePrefix(t *testing.T) {
	p, _ := ProfileByName("gpt-3.5")
	l := &linker{p: p, seed: 3}
	got := l.mutateIdentifier("tbl_Overstory", 4)
	if strings.Contains(strings.ToLower(got), "tbl") {
		t.Errorf("mutation should drop the tbl prefix: %q", got)
	}
}

func TestHallucinatedIdentifierIsPlausible(t *testing.T) {
	p, _ := ProfileByName("gpt-3.5")
	l := &linker{p: p, seed: 9}
	got := l.hallucinateIdentifier("vegetation height")
	if got == "" || strings.Contains(got, " ") {
		t.Errorf("hallucinated identifier should be identifier-shaped: %q", got)
	}
}

func TestEmptySchemaYieldsInvalid(t *testing.T) {
	pred := New(Profiles()[0]).Infer(Task{SchemaKnowledge: "", Question: "?"})
	if !pred.Invalid {
		t.Error("empty schema should be an invalid generation")
	}
}

func TestFilterStageRanksGoldTablesHighOnNaturalSchema(t *testing.T) {
	p, _ := ProfileByName("CodeS")
	m := New(p)
	task := Task{
		SchemaKnowledge: sampleSchema,
		Question:        "How many observations are there?",
		Intent:          nlq.Intent{Kind: nlq.KindCountAll, TableMention: "observations", Agg: "COUNT"},
		Seed:            3,
	}
	pred := m.Infer(task)
	found := false
	for _, ft := range pred.FilteredTables {
		if strings.EqualFold(ft, "observations") {
			found = true
		}
	}
	if !found {
		t.Errorf("gold table missing from natural-schema filter output: %v", pred.FilteredTables)
	}
}

func TestInvalidRateDeterministic(t *testing.T) {
	p, _ := ProfileByName("Phind-CodeLlama-34B-v2")
	m := New(p)
	invalid := 0
	const n = 400
	for seed := uint64(0); seed < n; seed++ {
		task := countTask(sampleSchema)
		task.Seed = seed
		if m.Infer(task).Invalid {
			invalid++
		}
	}
	frac := float64(invalid) / n
	if frac < 0.005 || frac > 0.12 {
		t.Errorf("invalid-generation rate %.3f outside the expected band", frac)
	}
	// Determinism: the same seeds give the same count.
	invalid2 := 0
	for seed := uint64(0); seed < n; seed++ {
		task := countTask(sampleSchema)
		task.Seed = seed
		if m.Infer(task).Invalid {
			invalid2++
		}
	}
	if invalid != invalid2 {
		t.Error("invalid rate not deterministic")
	}
}

func TestCloneIsolatesAblation(t *testing.T) {
	p, _ := ProfileByName("gpt-4o")
	c := p.Clone()
	c.DisableGate = true
	if p.DisableGate {
		t.Error("Clone should not alias the original profile")
	}
}
