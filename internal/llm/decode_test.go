package llm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/snails-bench/snails/internal/nlq"
)

// mixedSchema exercises the interner on a schema that mixes naturalness
// levels and shares column names across tables (join-key shaped).
const mixedSchema = `#observations(observation_id int, species_id int, VgHt float, obs_date date, AnCt int)
#species(species_id int, common_name nvarchar, SciNm nvarchar, animal_class nvarchar)
#site_locations(location_id int, observation_id int, LocNm nvarchar, county nvarchar)
`

// decodeTasks is a task mix covering the decode paths: table linking, column
// linking across roles, joins (second-table linking), aggregates, and the
// filtering workflows' whole-schema scoring.
func decodeTasks(schema string) []Task {
	return []Task{
		{
			SchemaKnowledge: schema,
			Question:        "How many observations are there?",
			Intent:          nlq.Intent{Kind: nlq.KindCountAll, TableMention: "field observations", Agg: "COUNT"},
		},
		{
			SchemaKnowledge: schema,
			Question:        "Show the vegetation height of the observations whose animal count is 3.",
			Intent: nlq.Intent{
				Kind: nlq.KindListFilter, TableMention: "observations",
				Columns: []nlq.ColMention{
					{Phrase: "vegetation height", Role: nlq.RoleProjection},
					{Phrase: "animal count", Role: nlq.RoleFilter},
				},
				FilterOp: "=", FilterValue: "3",
			},
		},
		{
			SchemaKnowledge: schema,
			Question:        "Show the common name of each observation.",
			Intent: nlq.Intent{
				Kind: nlq.KindJoinList, TableMention: "observations", JoinTableMention: "species",
				Columns: []nlq.ColMention{
					{Phrase: "common name", Role: nlq.RoleProjection, OnJoined: true},
					{Phrase: "species id", Role: nlq.RoleJoinChild},
					{Phrase: "species id", Role: nlq.RoleJoinParent, OnJoined: true},
				},
			},
		},
		{
			SchemaKnowledge: schema,
			Question:        "What is the average vegetation height of the observations?",
			Intent: nlq.Intent{
				Kind: nlq.KindAggMeasure, TableMention: "observations", Agg: "AVG",
				Columns: []nlq.ColMention{{Phrase: "vegetation height", Role: nlq.RoleAggArg}},
			},
		},
	}
}

// TestFastMatchesReference is the decode engine's equivalence oracle: for
// every profile (all workflows), schema, seed, and task shape, the columnar
// fast path must produce bit-identical predictions to the retained reference
// path (per-identifier plans, no interning).
func TestFastMatchesReference(t *testing.T) {
	schemas := []string{sampleSchema, abbrevSchema, mixedSchema}
	for _, p := range Profiles() {
		fast, ref := New(p), NewReference(p)
		for si, schema := range schemas {
			for _, task := range decodeTasks(schema) {
				for seed := uint64(0); seed < 16; seed++ {
					task.Seed = seed
					got, want := fast.Infer(task), ref.Infer(task)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s schema#%d kind=%d seed=%d:\n fast %+v\n ref  %+v",
							p.Name, si, task.Intent.Kind, seed, got, want)
					}
				}
			}
		}
	}
}

// TestConcurrentDecodeStress hammers one shared Model (shared linking memo,
// interned schemas, CAS-published column slabs) from many goroutines and
// checks every prediction against a serially computed golden. Run under
// -race this covers the lock-free slab publication and the pooled linkers'
// scratch reuse.
func TestConcurrentDecodeStress(t *testing.T) {
	p, _ := ProfileByName("gpt-4o")
	fp, _ := ProfileByName("CodeS") // filtering workflow: whole-schema scoring
	if fp == nil {
		fp = p
	}
	schemas := []string{sampleSchema, abbrevSchema, mixedSchema}
	iters := 400
	if testing.Short() {
		iters = 120
	}

	for _, prof := range []*Profile{p, fp} {
		golden := map[string]Prediction{}
		gm := New(prof)
		for si, schema := range schemas {
			for ti, task := range decodeTasks(schema) {
				for seed := uint64(0); seed < 4; seed++ {
					task.Seed = seed
					golden[fmt.Sprintf("%d/%d/%d", si, ti, seed)] = gm.Infer(task)
				}
			}
		}

		m := New(prof) // fresh memo: goroutines race to build every slab
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					si := (g + i) % len(schemas)
					tasks := decodeTasks(schemas[si])
					ti := i % len(tasks)
					task := tasks[ti]
					seed := uint64(i % 4)
					task.Seed = seed
					got := m.Infer(task)
					want := golden[fmt.Sprintf("%d/%d/%d", si, ti, seed)]
					if !reflect.DeepEqual(got, want) {
						select {
						case errs <- fmt.Sprintf("g%d i%d: got %+v want %+v", g, i, got, want):
						default:
						}
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatalf("%s: concurrent decode diverged: %s", prof.Name, e)
		}
	}
}

// TestBoundedMemosEvict drives more distinct keys through the package-level
// decode memos than they can hold and checks the clock hand keeps them
// bounded instead of growing without limit (the sync.Map these replaced
// retained every schema ever seen).
func TestBoundedMemosEvict(t *testing.T) {
	t.Run("fieldsMemo", func(t *testing.T) {
		ev0 := fieldsMemo.Evictions()
		n := (1 << 14) + 2048
		for i := 0; i < n; i++ {
			lowerFields(fmt.Sprintf("synthetic phrase number %d", i))
		}
		if got, cap := fieldsMemo.Len(), 1<<14; got > cap {
			t.Errorf("fieldsMemo.Len() = %d, want <= %d", got, cap)
		}
		if fieldsMemo.Evictions() == ev0 {
			t.Error("fieldsMemo never evicted under sustained distinct keys")
		}
	})
	t.Run("phraseMemo", func(t *testing.T) {
		ev0 := phraseMemo.Evictions()
		n := (1 << 14) + 2048
		for i := 0; i < n; i++ {
			phraseInfoFor(fmt.Sprintf("interned phrase number %d", i))
		}
		if got, cap := phraseMemo.Len(), 1<<14; got > cap {
			t.Errorf("phraseMemo.Len() = %d, want <= %d", got, cap)
		}
		if phraseMemo.Evictions() == ev0 {
			t.Error("phraseMemo never evicted under sustained distinct keys")
		}
	})
	t.Run("promptMemo", func(t *testing.T) {
		ev0 := promptMemo.Evictions()
		n := (1 << 12) + 512
		for i := 0; i < n; i++ {
			parsePromptCached(fmt.Sprintf("#t%d(c%d int, name_%d nvarchar)\n", i, i, i))
		}
		if got, cap := promptMemo.Len(), 1<<12; got > cap {
			t.Errorf("promptMemo.Len() = %d, want <= %d", got, cap)
		}
		if promptMemo.Evictions() == ev0 {
			t.Error("promptMemo never evicted under sustained distinct keys")
		}
	})
	t.Run("linkMemoBounded", func(t *testing.T) {
		// The model-level memo's slab/group caches are bounded too; feed many
		// distinct (schema, phrase) pairs and verify Len never exceeds cap.
		m := New(Profiles()[0])
		for i := 0; i < 64; i++ {
			task := countTask(fmt.Sprintf("#table_%d(id_%d int, value_%d float)\n", i, i, i))
			task.Intent.TableMention = fmt.Sprintf("table %d", i)
			m.Infer(task)
		}
		if got, cap := m.memo.slabs.Len(), 1<<13; got > cap {
			t.Errorf("slab cache Len() = %d, want <= %d", got, cap)
		}
		if got, cap := m.memo.groups.Len(), 1<<13; got > cap {
			t.Errorf("group cache Len() = %d, want <= %d", got, cap)
		}
	})
}

// TestScoringLoopAllocs pins the columnar fast path's core scoring loops at
// zero allocations once the slabs are warm: evalSlab reads flat slabs, the
// scratch buffers are pooled, and candidate iteration is index-based.
func TestScoringLoopAllocs(t *testing.T) {
	p, _ := ProfileByName("gpt-4o")
	m := New(p)
	ps := PromptSchemaOf(sampleSchema)
	l := linkerPool.Get().(*linker)
	l.reset(p, 42, m.memo, true)

	// One op per measurement: the linker's single-entry (schema, phrase) slab
	// caches hold across repeats of the same lookup, which is the shape of
	// the real decode loop (one phrase scored against all candidates before
	// moving on).
	ops := []struct {
		name string
		fn   func()
	}{
		{"bestTable", func() { l.bestTable(ps, "vegetation height") }},
		{"secondTable", func() { l.secondTable(ps, "species", 0) }},
		{"bestColumn", func() { l.bestColumn(ps, "vegetation height", 0, 1) }},
		{"tableSim", func() { l.tableSim(ps, "observations", 0) }},
	}
	for _, op := range ops {
		op.fn() // warm: build slabs, settle the single-entry caches
		if got := testing.AllocsPerRun(200, op.fn); got != 0 {
			t.Errorf("%s: warm scoring loop allocates %.2f allocs/op, want 0", op.name, got)
		}
	}
	linkerPool.Put(l)
}

// BenchmarkInferDecode measures end-to-end inference on the columnar fast
// path and the retained reference path over the same task mix; the
// allocs/op column is the decode engine's allocation budget (gated by
// scripts/check.sh next to the throughput gate).
func BenchmarkInferDecode(b *testing.B) {
	p, ok := ProfileByName("gpt-4o")
	if !ok {
		b.Fatal("profile gpt-4o missing")
	}
	for _, v := range []struct {
		name  string
		model *Model
	}{
		{"fast", New(p)},
		{"reference", NewReference(p)},
	} {
		b.Run(v.name, func(b *testing.B) {
			tasks := append(decodeTasks(sampleSchema), decodeTasks(abbrevSchema)...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := tasks[i%len(tasks)]
				task.Seed = uint64(i)
				_ = v.model.Infer(task)
			}
		})
	}
}
