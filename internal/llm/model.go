package llm

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/snails-bench/snails/internal/nlq"
)

// Task is one NL-to-SQL inference request. The model sees only the prompt's
// schema rendering and the question; the structured intent carries the
// template-level meaning of the (shared, templated) English with schema
// elements referenced by natural-language phrases.
type Task struct {
	SchemaKnowledge string
	Question        string
	Intent          nlq.Intent
	// Seed individualizes deterministic noise; derive it from
	// (model, database, question, variant).
	Seed uint64
}

// Prediction is the inference output.
type Prediction struct {
	SQL string
	// FilteredTables records the schema-subsetting stage's selection for
	// workflows that have one (DIN-SQL, CodeS); nil for zero-shot.
	FilteredTables []string
	// Invalid marks generations that are not parseable SQL (the paper
	// excludes these from linking analysis).
	Invalid bool
}

// Model is a runnable synthetic LLM. A Model is safe for concurrent use: the
// profile is read-only and the linking memo is a concurrency-safe cache of
// seed-independent decode scores.
type Model struct {
	Profile  *Profile
	memo     *linkMemo
	nameSeed uint64 // hashSeed(Profile.Name), mixed into every task seed
	// ref forces the original per-identifier plan path instead of the
	// columnar fast path; used by the differential tests (NewReference).
	ref bool
}

// New returns a model for the profile.
func New(p *Profile) *Model {
	return &Model{Profile: p, memo: newLinkMemo(), nameSeed: hashSeed(p.Name)}
}

// NewReference returns a model that decodes through the original
// per-identifier plan path rather than the interned columnar engine. Its
// predictions are bit-identical to New's by contract; differential tests
// (here and in the workflow/experiments layers) enforce that, mirroring the
// planner-vs-naive pattern in internal/sqlexec.
func NewReference(p *Profile) *Model {
	m := New(p)
	m.ref = true
	return m
}

// linkerPool recycles linkers (and their filtering-stage scratch buffers)
// across Infer calls; a linker is only ever owned by one goroutine at a
// time.
var linkerPool = sync.Pool{New: func() any { return &linker{} }}

// Infer produces a SQL prediction for the task.
func (m *Model) Infer(task Task) Prediction {
	return m.InferOn(parsePromptCached(task.SchemaKnowledge), task)
}

// PromptSchemaOf parses a schema-knowledge block into the shared, memoized
// prompt-schema handle Infer uses internally. The serving layer's
// micro-batcher parses once per (db, variant) batch and feeds the same
// handle to every task via InferOn.
func PromptSchemaOf(block string) *PromptSchema { return parsePromptCached(block) }

// InferOn is Infer against a pre-parsed prompt schema (which must be the
// parse of task.SchemaKnowledge).
func (m *Model) InferOn(ps *PromptSchema, task Task) Prediction {
	p := m.Profile
	l := linkerPool.Get().(*linker)
	l.reset(p, task.Seed^m.nameSeed, m.memo, !m.ref)
	defer linkerPool.Put(l)
	if len(ps.Tables) == 0 {
		return Prediction{SQL: "SELECT 1", Invalid: true}
	}

	// Occasional entirely-invalid generations (weaker models in the paper
	// produced ~137 unparseable queries across the benchmark).
	if hash01(l.seed^0xbad) < p.invalidRate() {
		return Prediction{SQL: "SELECT FROM WHERE", Invalid: true}
	}

	var pred Prediction

	// Schema filtering stage (DIN-SQL / CodeS).
	working := ps
	if p.FilterKeep > 0 {
		kept := m.filterTables(l, ps, task.Intent)
		pred.FilteredTables = kept
		working = m.subsetSchema(ps, kept)
	}

	res := m.resolve(l, working, task.Intent)
	sql := compose(task.Intent, res)

	// Structural slips scale with template complexity; the DIN-SQL
	// self-correction pass repairs them.
	complexity := templateComplexity(task.Intent.Kind)
	okProb := pow(p.StructSkill, complexity)
	if hash01(l.seed^0x57) > okProb && !p.SelfCorrect {
		sql = injectStructuralSlip(task.Intent, res, l.seed)
	}

	pred.SQL = sql
	return pred
}

func (p *Profile) invalidRate() float64 {
	switch {
	case p.StructSkill >= 0.95:
		return 0.004
	case p.StructSkill >= 0.9:
		return 0.015
	default:
		return 0.04
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

func templateComplexity(k nlq.Kind) int {
	switch k {
	case nlq.KindCountAll:
		return 1
	case nlq.KindListFilter, nlq.KindAggMeasure, nlq.KindCountGroup, nlq.KindNegationFilter, nlq.KindYearCount:
		return 2
	case nlq.KindGroupHaving, nlq.KindTopOrder, nlq.KindScalarMax:
		return 3
	default: // joins, subqueries
		return 4
	}
}

// numRoles sizes the per-role arrays of resolved; nlq.Role is a dense iota.
const numRoles = int(nlq.RoleJoinShared) + 1

// resolved holds the model's schema-linking decisions for one query. The
// per-role maps of earlier versions are fixed arrays (nlq.Role is dense), so
// resolve costs one allocation for the struct and none per mention.
type resolved struct {
	table     string // FROM table (as named in the prompt)
	joinTable string
	cols      [numRoles]string // resolved column per role
	colJoined [numRoles]bool   // whether the resolved column sits on the joined table
	sharedCol string           // composite-key second column
	hasJoin   bool
}

// resolve links every mention of the intent against the prompt schema.
func (m *Model) resolve(l *linker, ps *PromptSchema, in nlq.Intent) *resolved {
	r := &resolved{}

	ti, tscore, ok := l.bestTable(ps, in.TableMention)
	if !ok {
		r.table = l.hallucinateIdentifier(in.TableMention)
		ti = -1
	} else {
		kTmut, kKey := l.tmutKeys(in.TableMention, false)
		r.table = m.maybeMutate(l, ps.Tables[ti].Name, tscore, kTmut, kKey)
	}
	ji := -1
	if in.JoinTableMention != "" {
		r.hasJoin = true
		var jok bool
		ji, _, jok = l.bestTable(ps, in.JoinTableMention)
		if !jok || ji == ti {
			// Re-link excluding the primary table.
			ji = l.secondTable(ps, in.JoinTableMention, ti)
		}
		if ji >= 0 {
			kTmut, kKey := l.tmutKeys(in.JoinTableMention, true)
			r.joinTable = m.maybeMutate(l, ps.Tables[ji].Name, l.tableSim(ps, in.JoinTableMention, ji), kTmut, kKey)
		} else {
			r.joinTable = l.hallucinateIdentifier(in.JoinTableMention)
		}
	}

	for ci := range in.Columns {
		cm := &in.Columns[ci]
		pri0, pri1 := ti, ji
		if cm.OnJoined {
			pri0, pri1 = ji, ti
		}
		cti, col, score, ok := l.bestColumn(ps, cm.Phrase, pri0, pri1)
		if !ok {
			col = l.hallucinateIdentifier(cm.Phrase)
			cti = pri0
		} else {
			// Typo-like hallucination grows with linking uncertainty: a
			// confidently linked natural identifier is copied verbatim while
			// an opaque abbreviation is frequently mis-rendered. This is
			// what produces the paper's consistent recall drop at Least
			// naturalness even for the strongest models.
			uncertain := 1 - score
			if uncertain < 0 {
				uncertain = 0
			}
			mutP := m.Profile.HallucinationRate + 0.30*uncertain*uncertain
			kMut, kPhrase := l.mutKeys(cm.Phrase)
			if hash01(l.seed^kMut) < mutP {
				col = l.mutateIdentifier(col, l.seed^kPhrase)
			}
		}
		r.cols[cm.Role] = col
		r.colJoined[cm.Role] = cti >= 0 && cti == ji && r.hasJoin
		if cm.Role == nlq.RoleJoinShared {
			r.sharedCol = col
		}
	}

	// Join-column fallback: a real model defaults to same-named or id-like
	// columns when the mention fails to link.
	if r.hasJoin && (r.cols[nlq.RoleJoinChild] == "" || r.cols[nlq.RoleJoinParent] == "") {
		child, parent := idLikeColumn(ps, ti), idLikeColumn(ps, ji)
		if r.cols[nlq.RoleJoinChild] == "" {
			r.cols[nlq.RoleJoinChild] = child
		}
		if r.cols[nlq.RoleJoinParent] == "" {
			r.cols[nlq.RoleJoinParent] = parent
		}
	}
	return r
}

// maybeMutate applies the uncertainty-scaled typo hallucination to a linked
// identifier. Table names are as vulnerable as columns: the paper observes
// models dropping tbl_ prefixes and re-casing opaque table names. The hash
// keys are hashSeed("tmut", key) and hashSeed(key) for the historical
// "tbl:"/"jtbl:" mention keys, precomputed by the phrase intern on the fast
// path (linker.tmutKeys).
func (m *Model) maybeMutate(l *linker, name string, score float64, kTmut, kKey uint64) string {
	uncertain := 1 - score
	if uncertain < 0 {
		uncertain = 0
	}
	mutP := m.Profile.HallucinationRate*0.5 + 0.22*uncertain*uncertain
	if hash01(l.seed^kTmut) < mutP {
		return l.mutateIdentifier(name, l.seed^kKey)
	}
	return name
}

// tmutKeys returns (hashSeed("tmut", key), hashSeed(key)) for the table-
// mutation key "tbl:"+phrase (or "jtbl:"+phrase when joined), from the
// phrase intern on the fast path and by direct hashing on the reference
// path.
func (l *linker) tmutKeys(phrase string, joined bool) (kTmut, kKey uint64) {
	if l.fast {
		pi := phraseInfoFor(phrase)
		if joined {
			return pi.kTmutJtbl, pi.kJtbl
		}
		return pi.kTmutTbl, pi.kTbl
	}
	key := "tbl:" + phrase
	if joined {
		key = "jtbl:" + phrase
	}
	return hashSeed("tmut", key), hashSeed(key)
}

// mutKeys returns (hashSeed("mut", phrase), hashSeed(phrase)) for the
// column-mutation draws.
func (l *linker) mutKeys(phrase string) (kMut, kPhrase uint64) {
	if l.fast {
		pi := phraseInfoFor(phrase)
		return pi.kMut, pi.kPhrase
	}
	return hashSeed("mut", phrase), hashSeed(phrase)
}

func idLikeColumn(ps *PromptSchema, ti int) string {
	if ti < 0 || ti >= len(ps.Tables) {
		return "id"
	}
	for _, c := range ps.Tables[ti].Columns {
		if strings.HasSuffix(strings.ToLower(c.Name), "id") {
			return c.Name
		}
	}
	return ps.Tables[ti].Columns[0].Name
}

// filterTables implements the schema-subsetting stage: tables are ranked by
// their link score against the question's mentions and the top-K kept. Less
// natural table names rank lower, reproducing the Figure 12 recall drop.
func (m *Model) filterTables(l *linker, ps *PromptSchema, in nlq.Intent) []string {
	if l.fastOn(ps) {
		return m.fastFilterTables(l, ps, in)
	}
	type scored struct {
		name  string
		score float64
	}
	var all []scored
	mentions := []string{in.TableMention}
	if in.JoinTableMention != "" {
		mentions = append(mentions, in.JoinTableMention)
	}
	// Fetch each phrase's precompiled scoring table once; the per-table
	// maxima below are order-insensitive, so hoisting the phrase loop out of
	// the table loop changes nothing but the lookup count.
	mplans := make([][]*simPlan, len(mentions))
	for mi, mn := range mentions {
		mplans[mi] = l.tablePlansFor(ps, mn)
	}
	cplans := make([][][]*simPlan, len(in.Columns))
	for ci := range in.Columns {
		cplans[ci] = l.colPlansFor(ps, in.Columns[ci].Phrase)
	}
	for i := range ps.Tables {
		t := &ps.Tables[i]
		best := 0.0
		for mi := range mentions {
			if s := l.evalPlan(mplans[mi][i]); s > best {
				best = s
			}
		}
		// Column evidence: a table whose columns match the question's column
		// mentions is likely relevant even if its own name is opaque.
		for ci := range in.Columns {
			for _, cp := range cplans[ci][i] {
				if s := 0.6 * l.evalPlan(cp); s > best {
					best = s
				}
			}
		}
		best += l.noiseKeyed(tableNoiseKey(t, "filter"))
		all = append(all, scored{t.Name, best})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score > all[b].score })
	keep := m.Profile.FilterKeep
	if keep > len(all) {
		keep = len(all)
	}
	out := make([]string, 0, keep)
	for _, s := range all[:keep] {
		out = append(out, s.name)
	}
	return out
}

// fastFilterTables is filterTables on the columnar path: the per-phrase
// slabs are fetched once, the evidence maxima walk flat index ranges in the
// same comparison order as the reference loop, and the ranking runs a
// stable insertion sort over a pooled scratch slice (a stable sort's output
// is unique, so it matches sort.SliceStable exactly). Only the returned
// keep-list is allocated.
func (m *Model) fastFilterTables(l *linker, ps *PromptSchema, in nlq.Intent) []string {
	in2 := ps.intern
	root := in2.root
	mslabs := l.slabScratch[:0]
	mslabs = append(mslabs, l.tabSlabFor(root, in.TableMention))
	if in.JoinTableMention != "" {
		mslabs = append(mslabs, l.tabSlabFor(root, in.JoinTableMention))
	}
	groups := l.groupScratch[:0]
	for ci := range in.Columns {
		g := l.colGroupFor(root, in.Columns[ci].Phrase)
		groups = append(groups, g)
		// Materialize phrase-major: every table's sub-slab for one phrase in
		// a row, so the builds share the phrase's decode-dedup scratch.
		for ri := range root.tabs {
			l.colTabIn(g, root, in.Columns[ci].Phrase, ri)
		}
	}
	l.slabScratch = mslabs[:0]
	l.groupScratch = groups[:0]

	all := l.scoreScratch[:0]
	for i := range ps.Tables {
		ri := int(in2.tabMap[i])
		best := 0.0
		for mi := range mslabs {
			if s := l.evalSlab(mslabs[mi], ri); s > best {
				best = s
			}
		}
		// Column evidence: a table whose columns match the question's column
		// mentions is likely relevant even if its own name is opaque.
		for ci := range groups {
			cs := l.colTabIn(groups[ci], root, in.Columns[ci].Phrase, ri)
			for k := 0; k < len(cs.flags); k++ {
				if s := 0.6 * l.evalSlab(cs, k); s > best {
					best = s
				}
			}
		}
		best += l.noiseKeyed(root.nkFilter[ri])
		all = append(all, scoredName{ps.Tables[i].Name, best})
	}
	l.scoreScratch = all[:0]
	// Stable insertion sort, descending: elements move left only past
	// strictly smaller scores, so equal scores keep their original order.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].score > all[j-1].score; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	keep := m.Profile.FilterKeep
	if keep > len(all) {
		keep = len(all)
	}
	out := make([]string, 0, keep)
	for _, s := range all[:keep] {
		out = append(out, s.name)
	}
	return out
}

// subsetSchema memoizes subsetting per (schema, keep list): the filtering
// stage selects from a small set of table combinations per schema, and a
// stable *PromptSchema pointer per combination lets the downstream linking
// calls hit the slab memo instead of rebuilding it every cell. The memo
// lives on the schema intern (subsetting is model-independent), so its
// lifetime is bounded by the parse cache that owns the intern.
func (m *Model) subsetSchema(ps *PromptSchema, keep []string) *PromptSchema {
	if ps.intern == nil {
		return subsetSchema(ps, keep)
	}
	key := strings.Join(keep, "\x1f")
	return ps.intern.subsets.GetOrCompute(key, func() *PromptSchema {
		return subsetSchema(ps, keep)
	})
}

func subsetSchema(ps *PromptSchema, keep []string) *PromptSchema {
	kept := map[string]struct{}{}
	for _, k := range keep {
		kept[strings.ToUpper(k)] = struct{}{}
	}
	out := &PromptSchema{}
	var idx []int32
	for i, t := range ps.Tables {
		if _, ok := kept[strings.ToUpper(t.Name)]; ok {
			out.Tables = append(out.Tables, t)
			idx = append(idx, int32(i))
		}
	}
	if ps.intern != nil {
		// Subsets intern as index views onto the parent: every keep-list
		// combination replays the parent's columnar slabs instead of
		// compiling its own grids (the filtering models otherwise produce
		// thousands of distinct subset schemas per sweep).
		out.intern = internSubset(ps.intern, idx)
	} else {
		out.intern = internSchema(out)
	}
	return out
}

// --- composition ---------------------------------------------------------------

// compose renders the SQL for the intent using the model's resolved
// identifiers. Composition mirrors the template grammar: the paper observes
// that modern LLMs almost always emit structurally valid SQL, with errors
// concentrated in identifier selection.
func compose(in nlq.Intent, r *resolved) string {
	q := func(role nlq.Role) string { return r.cols[role] }
	qual := func(role nlq.Role) string {
		if !r.hasJoin {
			return q(role)
		}
		if r.colJoined[role] {
			return "p." + q(role)
		}
		return "c." + q(role)
	}
	switch in.Kind {
	case nlq.KindCountAll:
		return fmt.Sprintf("SELECT COUNT(*) FROM %s", r.table)
	case nlq.KindListFilter:
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s = '%s'",
			q(nlq.RoleProjection), r.table, q(nlq.RoleFilter), esc(in.FilterValue))
	case nlq.KindNegationFilter:
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s <> '%s'",
			q(nlq.RoleProjection), r.table, q(nlq.RoleFilter), esc(in.FilterValue))
	case nlq.KindCountGroup:
		g := q(nlq.RoleGroup)
		return fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s", g, r.table, g)
	case nlq.KindAggMeasure:
		return fmt.Sprintf("SELECT %s(%s) FROM %s", in.Agg, q(nlq.RoleAggArg), r.table)
	case nlq.KindGroupHaving:
		g := q(nlq.RoleGroup)
		return fmt.Sprintf("SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) > %d",
			g, r.table, g, in.HavingK)
	case nlq.KindTopOrder:
		return fmt.Sprintf("SELECT TOP %d %s FROM %s ORDER BY %s DESC",
			in.TopK, q(nlq.RoleProjection), r.table, q(nlq.RoleOrder))
	case nlq.KindScalarMax:
		mcol := q(nlq.RoleAggArg)
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s = (SELECT MAX(%s) FROM %s)",
			q(nlq.RoleProjection), r.table, mcol, mcol, r.table)
	case nlq.KindYearCount:
		return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE YEAR(%s) = %d",
			r.table, q(nlq.RoleFilter), in.Year)
	case nlq.KindJoinList:
		return fmt.Sprintf("SELECT p.%s FROM %s c JOIN %s p ON c.%s = p.%s WHERE %s = '%s'",
			q(nlq.RoleProjection), r.table, r.joinTable,
			q(nlq.RoleJoinChild), q(nlq.RoleJoinParent),
			qual(nlq.RoleFilter), esc(in.FilterValue))
	case nlq.KindJoinGroup:
		g := q(nlq.RoleGroup)
		return fmt.Sprintf("SELECT p.%s, COUNT(*) FROM %s c JOIN %s p ON c.%s = p.%s GROUP BY p.%s",
			g, r.table, r.joinTable, q(nlq.RoleJoinChild), q(nlq.RoleJoinParent), g)
	case nlq.KindCKJoin:
		g := q(nlq.RoleGroup)
		return fmt.Sprintf("SELECT p.%s, COUNT(*) FROM %s c JOIN %s p ON c.%s = p.%s AND c.%s = p.%s GROUP BY p.%s",
			g, r.table, r.joinTable, q(nlq.RoleJoinChild), q(nlq.RoleJoinParent),
			r.sharedCol, r.sharedCol, g)
	case nlq.KindNotExists:
		// Primary mention is the parent here (mirrors the template).
		return fmt.Sprintf("SELECT %s FROM %s p WHERE NOT EXISTS (SELECT %s FROM %s WHERE %s = p.%s)",
			q(nlq.RoleProjection), r.table, q(nlq.RoleJoinChild), r.joinTable,
			q(nlq.RoleJoinChild), q(nlq.RoleJoinParent))
	case nlq.KindInSubquery:
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s IN (SELECT %s FROM %s WHERE %s = '%s')",
			q(nlq.RoleProjection), r.table, q(nlq.RoleJoinParent),
			q(nlq.RoleJoinChild), r.joinTable, q(nlq.RoleFilter), esc(in.FilterValue))
	default:
		return fmt.Sprintf("SELECT * FROM %s", r.table)
	}
}

// injectStructuralSlip degrades the composed query with one of the
// skeleton-level mistakes weaker models make.
func injectStructuralSlip(in nlq.Intent, r *resolved, seed uint64) string {
	switch seed % 4 {
	case 0:
		// Drop the WHERE clause / threshold.
		stripped := in
		stripped.FilterValue = ""
		switch in.Kind {
		case nlq.KindListFilter, nlq.KindNegationFilter:
			return fmt.Sprintf("SELECT %s FROM %s", r.cols[nlq.RoleProjection], r.table)
		case nlq.KindYearCount:
			return fmt.Sprintf("SELECT COUNT(*) FROM %s", r.table)
		}
		return compose(stripped, r)
	case 1:
		// Wrong aggregate.
		wrong := in
		switch in.Agg {
		case "AVG":
			wrong.Agg = "SUM"
		case "SUM":
			wrong.Agg = "AVG"
		case "MAX":
			wrong.Agg = "MIN"
		default:
			wrong.Agg = "MAX"
		}
		if in.Kind == nlq.KindAggMeasure {
			return compose(wrong, r)
		}
		return fmt.Sprintf("SELECT * FROM %s", r.table)
	case 2:
		// Forget the ordering direction / grouping column.
		if in.Kind == nlq.KindTopOrder {
			return fmt.Sprintf("SELECT TOP %d %s FROM %s ORDER BY %s",
				in.TopK, r.cols[nlq.RoleProjection], r.table, r.cols[nlq.RoleOrder])
		}
		return fmt.Sprintf("SELECT * FROM %s", r.table)
	default:
		// Bare scan of the linked table.
		return fmt.Sprintf("SELECT * FROM %s", r.table)
	}
}

func esc(s string) string { return strings.ReplaceAll(s, "'", "''") }
