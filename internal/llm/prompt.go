package llm

import (
	"strings"

	"github.com/snails-bench/snails/internal/memo"
)

// PromptColumn is one column as seen in the schema-knowledge prompt.
type PromptColumn struct {
	Name string
	Type string
}

// PromptTable is one table line of the schema-knowledge prompt.
type PromptTable struct {
	Name    string
	Columns []PromptColumn

	// Precomputed seed-independent noise hash keys (linker.noiseKeyed): the
	// candidate loops draw per-candidate noise thousands of times per cell
	// and the UPPER+hash key material is schema-static. primed is false for
	// hand-assembled literals, which fall back to hashing on the fly.
	primed                      bool
	nkTable, nkTable2, nkFilter uint64
	nkColumns                   []uint64
}

// prime precomputes the noise hash keys.
func (t *PromptTable) prime() {
	up := strings.ToUpper(t.Name)
	t.nkTable = hashSeed("table", up)
	t.nkTable2 = hashSeed("table2", up)
	t.nkFilter = hashSeed("filter", up)
	t.nkColumns = make([]uint64, len(t.Columns))
	for i := range t.Columns {
		t.nkColumns[i] = hashSeed("column", strings.ToUpper(t.Name+"."+t.Columns[i].Name))
	}
	t.primed = true
}

// PromptSchema is the model's view of the database: exactly what the prompt
// text conveys, nothing more. Models never see gold identifiers or native
// names — only the (possibly naturalness-modified) prompt rendering.
type PromptSchema struct {
	Tables []PromptTable

	// intern is the dense-id interning of the schema's identifiers and the
	// anchor for its columnar score slabs (see intern.go). ParsePrompt and
	// subsetSchema populate it; hand-assembled literals leave it nil and the
	// linker falls back to the reference path, the same convention the
	// primed noise keys follow.
	intern *schemaIntern
}

// ParsePrompt recovers the schema graph from a schema-knowledge block in the
// paper's "#Table(Col Type, ...)" format. Unparseable lines are skipped (a
// real LLM degrades gracefully on malformed prompt content).
func ParsePrompt(block string) *PromptSchema {
	ps := &PromptSchema{}
	for _, line := range strings.Split(block, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimPrefix(line, "#")
		open := strings.IndexByte(line, '(')
		if open < 0 || !strings.HasSuffix(line, ")") {
			continue
		}
		t := PromptTable{Name: strings.TrimSpace(line[:open])}
		if t.Name == "" || strings.HasPrefix(t.Name, "Database:") {
			continue
		}
		body := line[open+1 : len(line)-1]
		for _, colDef := range strings.Split(body, ",") {
			fields := strings.Fields(strings.TrimSpace(colDef))
			if len(fields) == 0 {
				continue
			}
			pc := PromptColumn{Name: fields[0]}
			if len(fields) > 1 {
				pc.Type = fields[1]
			}
			t.Columns = append(t.Columns, pc)
		}
		if len(t.Columns) > 0 {
			t.prime()
			ps.Tables = append(ps.Tables, t)
		}
	}
	ps.intern = internSchema(ps)
	return ps
}

// promptMemo caches parsed schema-knowledge blocks. The sweep renders only
// (database, variant, subset) distinct prompts but parses one per grid cell;
// caching collapses ~12k parses into a few hundred. Cached PromptSchemas are
// shared across models and goroutines and must be treated as immutable.
var promptMemo = memo.NewBounded[*PromptSchema](1 << 12)

// parsePromptCached is ParsePrompt behind a global memo keyed on the raw
// block text.
func parsePromptCached(block string) *PromptSchema {
	if ps, ok := promptMemo.Get(block); ok {
		return ps
	}
	ps := ParsePrompt(block)
	promptMemo.Put(block, ps)
	return ps
}

// Table returns the index of the named table, or -1.
func (ps *PromptSchema) Table(name string) int {
	for i := range ps.Tables {
		if strings.EqualFold(ps.Tables[i].Name, name) {
			return i
		}
	}
	return -1
}
