package llm

import (
	"testing"

	"github.com/snails-bench/snails/internal/nlq"
)

// BenchmarkLinkerResolve measures end-to-end inference over one schema with
// varying seeds and mentions — the sweep's steady-state access pattern, where
// the per-(schema, phrase) scoring-plan tables amortize across questions.
func BenchmarkLinkerResolve(b *testing.B) {
	p, ok := ProfileByName("gpt-4o")
	if !ok {
		b.Fatal("profile gpt-4o missing")
	}
	m := New(p)
	tasks := []Task{
		{
			SchemaKnowledge: sampleSchema,
			Question:        "Show the vegetation height of the observations whose county is 'Butte'.",
			Intent: nlq.Intent{
				Kind: nlq.KindListFilter, TableMention: "observations",
				Columns: []nlq.ColMention{
					{Phrase: "vegetation height", Role: nlq.RoleProjection},
					{Phrase: "animal count", Role: nlq.RoleFilter},
				},
				FilterOp: "=", FilterValue: "3",
			},
		},
		{
			SchemaKnowledge: sampleSchema,
			Question:        "How many observations are there?",
			Intent:          nlq.Intent{Kind: nlq.KindCountAll, TableMention: "field observations", Agg: "COUNT"},
		},
		{
			SchemaKnowledge: abbrevSchema,
			Question:        "Show the vegetation height of the observations.",
			Intent: nlq.Intent{
				Kind: nlq.KindListFilter, TableMention: "observations",
				Columns: []nlq.ColMention{
					{Phrase: "vegetation height", Role: nlq.RoleProjection},
					{Phrase: "animal count", Role: nlq.RoleFilter},
				},
				FilterOp: ">", FilterValue: "1",
			},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := tasks[i%len(tasks)]
		task.Seed = uint64(i)
		_ = m.Infer(task)
	}
}
