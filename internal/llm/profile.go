// Package llm implements the deterministic synthetic NL-to-SQL model family
// that substitutes for the paper's public LLM APIs (GPT-3.5, GPT-4o,
// Gemini 1.5 Pro, Phind-CodeLlama-34B, and the DIN-SQL / CodeS workflows).
//
// Each profile performs schema linking by lexical/sub-token matching between
// the question's natural-language mention phrases and the (possibly
// abbreviated) identifiers in the schema-knowledge prompt. Linking degrades
// with abbreviation severity at a model-dependent rate — exactly the
// mechanism the paper identifies — so the Regular > Low >> Least shape and
// the model ordering emerge from the mechanics rather than being hard-coded
// per experiment. All randomness is seeded from (model, question, variant)
// hashes, so every experiment is reproducible bit-for-bit.
package llm

// Workflow tags the NL-to-SQL method family a profile implements.
type Workflow int

const (
	// WorkflowZeroShot is the paper's primary setting: one prompt with full
	// schema knowledge.
	WorkflowZeroShot Workflow = iota
	// WorkflowDIN is DIN-SQL-style prompt chaining with a schema-filtering
	// stage and a self-correction pass.
	WorkflowDIN
	// WorkflowCodeS is the CodeS pipeline: a finetuned schema-filtering
	// classifier followed by a smaller finetuned generator.
	WorkflowCodeS
)

// Profile parameterizes one synthetic model.
type Profile struct {
	// Name is the key used in results tables (matching the paper's rows).
	Name string
	// Display is the chart label ("GPT-4o-ZS").
	Display  string
	Workflow Workflow

	// LexSkill is the model's ceiling for decoding an abbreviated identifier
	// back to the natural word it stands for (0..1).
	LexSkill float64
	// Sensitivity is the exponential decay rate of decode ability with
	// abbreviation severity; larger values make the model more sensitive to
	// naturalness (the paper's open-source models).
	Sensitivity float64
	// StructSkill is the probability of composing the correct query
	// skeleton for a template of unit complexity.
	StructSkill float64
	// HallucinationRate scales typo-like identifier mutations on
	// low-confidence links (the paper's observed tbl_-dropping behaviour).
	HallucinationRate float64
	// NoiseAmp is the amplitude of deterministic per-candidate score noise;
	// larger values make weak models choose distractors more often.
	NoiseAmp float64
	// MinConfidence is the linking score below which the model invents an
	// identifier instead of picking a schema element.
	MinConfidence float64
	// FilterKeep is the table budget of the schema-filtering stage
	// (0 = no filtering stage).
	FilterKeep int
	// SelfCorrect enables the DIN-SQL self-correction pass, which repairs
	// one structural slip per query.
	SelfCorrect bool

	// Ablation switches (used by the ablation experiments; zero values give
	// the full model).
	//
	// DisableGate turns off the recognition gate: abbreviation decoding
	// becomes purely score-based with no chance of total unreadability.
	DisableGate bool
	// DisablePrefixEase removes the prefix-truncation advantage: "veg" is
	// treated as no easier to read than "vg".
	DisablePrefixEase bool
}

// Clone returns a copy of the profile for ablation tweaking.
func (p *Profile) Clone() *Profile {
	c := *p
	return &c
}

// Profiles returns the six evaluated systems in the paper's reporting order.
func Profiles() []*Profile {
	return []*Profile{
		{
			Name: "gemini-1.5-pro", Display: "Gemini-1.5-ZS", Workflow: WorkflowZeroShot,
			LexSkill: 0.94, Sensitivity: 1.15, StructSkill: 0.965,
			HallucinationRate: 0.03, NoiseAmp: 0.10, MinConfidence: 0.16,
		},
		{
			Name: "gpt-4o", Display: "GPT-4o-ZS", Workflow: WorkflowZeroShot,
			LexSkill: 0.96, Sensitivity: 1.05, StructSkill: 0.975,
			HallucinationRate: 0.025, NoiseAmp: 0.09, MinConfidence: 0.15,
		},
		{
			// DIN-SQL chains several GPT-4o prompts; each stage re-reads the
			// schema, so linking noise compounds and the filtering stage can
			// drop a needed table — the paper finds the chain slightly
			// *worse* than plain GPT-4o zero-shot.
			Name: "DINSQL", Display: "DIN-SQL (GPT-4o)", Workflow: WorkflowDIN,
			LexSkill: 0.90, Sensitivity: 1.25, StructSkill: 0.94,
			HallucinationRate: 0.04, NoiseAmp: 0.13, MinConfidence: 0.16,
			FilterKeep: 3, SelfCorrect: true,
		},
		{
			Name: "gpt-3.5", Display: "GPT-3.5-ZS", Workflow: WorkflowZeroShot,
			LexSkill: 0.82, Sensitivity: 1.9, StructSkill: 0.91,
			HallucinationRate: 0.07, NoiseAmp: 0.15, MinConfidence: 0.20,
		},
		{
			Name: "Phind-CodeLlama-34B-v2", Display: "Ph-CdLlm2-ZS", Workflow: WorkflowZeroShot,
			LexSkill: 0.70, Sensitivity: 2.6, StructSkill: 0.87,
			HallucinationRate: 0.11, NoiseAmp: 0.19, MinConfidence: 0.24,
		},
		{
			Name: "CodeS", Display: "CodeS", Workflow: WorkflowCodeS,
			LexSkill: 0.72, Sensitivity: 2.5, StructSkill: 0.89,
			HallucinationRate: 0.09, NoiseAmp: 0.17, MinConfidence: 0.22,
			FilterKeep: 4,
		},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (*Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// hash01 maps a seed to a deterministic value in [0, 1).
func hash01(seed uint64) float64 {
	seed += 0x9E3779B97F4A7C15
	z := seed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// hashSeed combines string parts into a seed.
func hashSeed(parts ...string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 0x100000001b3
		}
		h ^= 0x2d
		h *= 0x100000001b3
	}
	return h
}
