package ident

import (
	"strings"
	"unicode"
)

// CharTag generates the character-tagging sequence described in appendix B.5
// of the paper: a string of special characters corresponding to each input
// character's class. Models trained with this feature concatenate the tag
// sequence to the identifier (e.g. "AuthorID_5" -> "AuthorID_5 ^^+++^+$#").
//
//	^  vowels
//	+  consonants
//	#  numbers
//	$  special characters (underscore, hyphen, ...)
//	*  anything else
func CharTag(identifier string) string {
	var b strings.Builder
	b.Grow(len(identifier))
	for _, r := range identifier {
		switch {
		case isVowel(r):
			b.WriteByte('^')
		case unicode.IsLetter(r):
			b.WriteByte('+')
		case unicode.IsDigit(r):
			b.WriteByte('#')
		case r == '_' || r == '-' || r == '$' || r == '#' || r == '.' || r == ' ':
			b.WriteByte('$')
		default:
			b.WriteByte('*')
		}
	}
	return b.String()
}

// TagAugment returns the identifier with its character tag appended,
// matching the training-data format used by the tagged (TG) models.
func TagAugment(identifier string) string {
	return identifier + " " + CharTag(identifier)
}

func isVowel(r rune) bool {
	switch unicode.ToLower(r) {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
