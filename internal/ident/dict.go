package ident

import (
	"sort"
	"strings"
	"sync"
)

// Dictionary is an English word list used for naturalness analysis. The
// SNAILS paper derives a "mean token-in-dictionary" measurement (Figure 2)
// from a comprehensive English word list; this embedded list covers common
// English plus the domain vocabulary of the SNAILS database collection
// (wildlife observation, vehicle safety, education reporting, and business
// resource planning).
type Dictionary struct {
	words map[string]struct{}
	// byFirst groups words by first letter for abbreviation-candidate
	// lookups (appendix B.1 heuristic scoring).
	byFirst map[byte][]string
}

var (
	defaultDict     *Dictionary
	defaultDictOnce sync.Once
)

// DefaultDictionary returns the shared embedded dictionary. The returned
// value is read-only and safe for concurrent use.
func DefaultDictionary() *Dictionary {
	defaultDictOnce.Do(func() {
		defaultDict = NewDictionary(strings.Fields(embeddedWords))
	})
	return defaultDict
}

// NewDictionary builds a dictionary from the given word list. Words are
// lower-cased; duplicates are ignored.
func NewDictionary(words []string) *Dictionary {
	d := &Dictionary{
		words:   make(map[string]struct{}, len(words)),
		byFirst: make(map[byte][]string),
	}
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" {
			continue
		}
		if _, dup := d.words[w]; dup {
			continue
		}
		d.words[w] = struct{}{}
		d.byFirst[w[0]] = append(d.byFirst[w[0]], w)
	}
	for _, list := range d.byFirst {
		sort.Strings(list)
	}
	return d
}

// Contains reports whether the word (case-insensitive) is in the dictionary.
func (d *Dictionary) Contains(word string) bool {
	_, ok := d.words[strings.ToLower(word)]
	return ok
}

// Len returns the number of words in the dictionary.
func (d *Dictionary) Len() int { return len(d.words) }

// WordsWithPrefixLetter returns all dictionary words starting with the given
// letter (lower-case). The returned slice must not be modified.
func (d *Dictionary) WordsWithPrefixLetter(c byte) []string {
	if c >= 'A' && c <= 'Z' {
		c += 'a' - 'A'
	}
	return d.byFirst[c]
}

// CommonAcronyms are acronyms in common usage. Per the paper's Regular
// category definition, identifiers containing only acronyms in common usage
// (e.g. ID or GPS) still count as Regular naturalness.
var CommonAcronyms = map[string]struct{}{
	"id": {}, "gps": {}, "url": {}, "usa": {}, "api": {}, "sql": {},
	"utc": {}, "iso": {}, "pdf": {}, "csv": {}, "xml": {}, "html": {},
	"http": {}, "ssn": {}, "zip": {}, "fax": {}, "atm": {}, "dna": {},
	"fbi": {}, "irs": {}, "ok": {}, "am": {}, "pm": {}, "tv": {},
	"vin": {}, "mpg": {}, "mph": {}, "cpu": {}, "ram": {}, "faq": {},
	"ceo": {}, "vip": {}, "rsvp": {}, "diy": {}, "eta": {},
}

// IsCommonAcronym reports whether the token is a widely-understood acronym.
func IsCommonAcronym(tok string) bool {
	_, ok := CommonAcronyms[strings.ToLower(tok)]
	return ok
}

// IsCommonAcronymLower is IsCommonAcronym for an already-lower-cased token.
func IsCommonAcronymLower(tok string) bool {
	_, ok := CommonAcronyms[tok]
	return ok
}

// Segment splits a concatenated token into dictionary words when the whole
// token parses as 2-4 English words ("casenumber" -> ["case", "number"]).
// It returns nil when no full segmentation exists. Real-world identifiers
// such as the NTSB's CASENO-style names concatenate full words without
// separators; the paper's few-shot examples label these Regular (N1), so
// every naturalness measurement must be able to read them.
func (d *Dictionary) Segment(token string) []string {
	s := strings.ToLower(token)
	n := len(s)
	if n < 6 || d.Contains(s) {
		return nil
	}
	const maxParts = 4
	// best[i] = minimal number of words covering s[:i]; -1 = unreachable.
	best := make([]int, n+1)
	prev := make([]int, n+1)
	for i := 1; i <= n; i++ {
		best[i] = -1
	}
	for i := 1; i <= n; i++ {
		for j := 0; j < i; j++ {
			if best[j] < 0 || best[j] >= maxParts {
				continue
			}
			w := s[j:i]
			if len(w) < 3 && !IsCommonAcronym(w) {
				continue
			}
			if !d.Contains(w) && !IsCommonAcronym(w) {
				continue
			}
			if best[i] < 0 || best[j]+1 < best[i] {
				best[i] = best[j] + 1
				prev[i] = j
			}
		}
	}
	if best[n] < 2 || best[n] > maxParts {
		return nil
	}
	var parts []string
	for i := n; i > 0; i = prev[i] {
		parts = append([]string{s[prev[i]:i]}, parts...)
	}
	return parts
}

// SegmentedWords returns the identifier's word tokens with concatenated
// dictionary words split apart.
func SegmentedWords(identifier string, d *Dictionary) []string {
	var out []string
	for _, t := range Split(identifier) {
		if t.Kind != KindWord {
			continue
		}
		w := strings.ToLower(t.Text)
		if parts := d.Segment(w); parts != nil {
			out = append(out, parts...)
			continue
		}
		out = append(out, w)
	}
	return out
}

// MeanTokenInDictionary computes, for an identifier, the proportion of its
// tokens that exactly match a dictionary word or a common acronym. This is
// the Figure 2 measurement from the paper. Concatenated full words
// ("CASENUMBER") count as in-dictionary via segmentation.
func MeanTokenInDictionary(identifier string, d *Dictionary) float64 {
	words := SegmentedWords(identifier, d)
	if len(words) == 0 {
		return 0
	}
	hits := 0
	for _, w := range words {
		if d.Contains(w) || IsCommonAcronym(w) {
			hits++
		}
	}
	return float64(hits) / float64(len(words))
}
