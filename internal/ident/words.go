package ident

// embeddedWords is the built-in English word list. It combines a core
// common-English vocabulary with the domain vocabulary of the SNAILS
// database collection (scientific nature observation, vehicle safety,
// school performance reporting, and business resource planning), so that
// every Regular-naturalness identifier rendered by the dataset generators
// decomposes into in-dictionary tokens.
const embeddedWords = `
a ability able about above absence abstract academic accept access account
accuracy acre across act action active activity actual add address adjust
adjusted administration adult advance advisory affect age agency agent ago
agreement air airbag alert alias all allocation allow alpha also alternate
altitude amount amphibian analysis and angle animal annual answer any
apparatus application applied apply approach approval approved april area
argument arrival arrive article as assessment asset assign assigned
assistance associate association at atlas attempt attendance attribute audit
august author authority auto automatic available average avian avoid awake
award axis baby back background bag balance band bank banking bar barcode
base baseline basin basis batch battery bay beach bear become bed begin
behavior being belt benefit best between bicycle big bill billing bin binary
biodiversity bird birth block blood board boat body bonus book border both
bottom boundary box branch brand breed bridge brief broad brood browser
budget buffer build building bulk bureau bus business but buyer by cache
calculation calendar call camera campaign campus can canopy capacity capital
caption capture car card care cargo carrier case cash catalog category cause
ceiling cell census center central certificate chain chair change channel
chapter character charge chart chassis check chemical chick child choice
circle citation city claim class classification clause clear clerk client
climate clinic clock close closure cloud cluster coast code cognitive
cohort collection collector college collision color column combined comment
commercial commission committee common community comp company comparison
compensation complete completion complex component composite compound
computer concentration concept concession condition conduct confidence
configuration confirm conflict conservation console constant constraint
consumer contact container content contents context continent contract
contrast control conversion coordinate coordinator copy core corner
corporate correct correction cost count counter country county course court
cover coverage covered crash create created creation credit creek crew
criteria critical crop cross crown cruise cube cubic culture cumulative
currency current curriculum curve custom customer cycle daily damage dash
data database date day dead deadwood dealer death debit december decay
decimal decision deck decline default defect definition degree delay
delete delivery delta demand demographic denominator density department
departure dependency deploy deposit depth description design designation
detail detection developer development device diameter dictionary
difference digit digital dimension direct direction directory disability
disabled discount discovery display distance distribution district division
document dollar domain dominant door dosage double down draft drainage draw
driver drop drought dry due duplicate duration duty each early earning east
ecology economic edge edit edition education effect effective efficiency
effort egg eight election electric element elementary elevation eligible
else emergency employee employer employment empty enabled encounter end
endangered ending energy engine english enrollment enter entity entrance
entry environment equal equipment equity error escape estimate ethnic
evaluation even evening event every exam examination example except exchange
exclusion excuse executive exempt exit exotic expansion expected expense
experience expert expiration export exposure expression extension extent
exterior external extra extract eye facility factor faculty fail failure
fall family fare farm fatal fault feature february federal fee feed feeder
feet female fence field figure file fill filter final finance financial
find finding fine finish fire first fiscal fish five fixed flag flat fleet
flight flood floor flora flow flower fog folder foliage follow food foot
for force forecast foreign forest form format formula four fraction frame
framework free freight frequency fresh friday from front frost fruit fuel
full function fund fungus fur future gain gallon game gap garden gas gate
gateway gauge gender general generation genus geography geometry girl give
glass global goal gold good government grade graduate graduation grain
grand grant graph grass gravel gray grazing great green grid gross ground
group grove growth guard guest guide habitat hair half hand handle harness
hatch have hazard head header headquarters health hearing heat heavy hedge
height help herb here high highway hire hispanic history hit hold holding
holiday home horizontal hospital host hour house household housing human
humidity hundred hunting ice identification identifier identity image
impact import improvement in inactive incident include income increase
independent index indicator individual industry infant inexperienced info
information initial injury inland input insect inspection installation
instance institution instruction instrument insurance intake integer
intensity interaction interest interior internal international internet
interval interview into introduced inventory invoice is island issue item
january job join journal july junction june junior jurisdiction juvenile
keeper key kind kingdom kit knowledge lab label labor lake land landbird
lane language large larva last late latitude launch layer lead leader leaf
league leak lease least leave ledger left leg legal legend length less
lesson letter level liability license life light like limit line link list
liter litter live lizard load loan local location lock lodge log logic
login long longitude lookup loss lost lot low lower machine magnitude mail
main maintenance major make male mammal management manager mandatory manual
manufacturer many map march margin marine mark market marsh mass master
match material math matrix mature maximum may meadow meal mean measure
measurement mechanic media median medical medium meeting member membership
memo mention menu merchandise merge mesh message metadata metal meter
method metric middle midpoint migration mile milestone military milk mill
minimum minnow minor minute mission mobile mode model moderate modified
module moisture monday money monitor monitoring month monument moon more
morning mortality most moth mother motion motor motorcycle mountain mouse
mouth move movement much multiple municipal museum music must name narrow
national native nature nest net network new next night nine no node noise
nominal none noon normal north not note notice november number numerator
nurse nursery oak object observation observer occupancy occupant occurrence
ocean october odometer of off offer office officer offset often oil old on
once one online only open operating operation operator opportunity option
or orange order ordinal organization origin original other out outcome
outlet output outstanding over overstory owl owner ownership pack package
page paid pair pan panel paper parcel parent park parking part partial
participant participation partner party pass passenger password past patch
path patient pattern pay payment payroll peak pedestrian pending pension
people per percent percentage performance perimeter period permanent permit
person personal personnel pest petal phase phone photo physical pick pickup
picture piece pilot pine pipeline place plain plan planning plant plat
plate platform plot plus point poison pole policy pond pool population port
portal portion position post postal posting prairie precipitation precision
predator preferred prefix premium preparation presence present preserve
pressure previous prey price primary principal print prior priority private
probability problem procedure proceeds process processing producer product
production professional proficiency profile profit program progress project
projection promotion proof property proportion protected protection
protocol provider province public publication purchase purchasing purpose
quadrant quality quantity quarter query question queue quick quota quote
race radio radius rail rain raise range rank raptor rate rating ratio raw
reach read reading reason rebate recall receipt receive received receiver
recent reception recipient record recovery recreation reference referral
refund region register registration regular rejection relation relative
release remainder remark removal renewal rent repair replacement report
reporting representative reptile request required requirement research
reserve reservoir reset resident residual resolution resource response
responsibility rest restraint restricted result retail retention return
revenue reverse review revision reward ridge right ring riparian risk river
road rock rodent role roll roof room root roster rotation round route
routine row rule run rural safety salamander salary sale sales salt sample
sampling sand saturday saving scale scan scenario schedule schema school
science scientific scope score scrub season seat second secondary section
sector security sediment seed seedling segment selection seller semester
senior sensitive sensor sequence serial series service session set setting
settlement setup seven severity shade shape share shelf shell shift ship
shipment shipping shore short show shrub side sign signal signature silver
simple single site six size skill slope small snake snow social sodium
software soil solution sort source south space span spatial spawn special
species specification specimen speed spend spring square stack staff stage
stand standard standing start state statement station statistic status
steering stem step stock stop storage store storm story strategy stratum
stream street strength stress strike string strip structure student study
subgenus subject submission subplot subscriber subsection subsidy subspecies
substrate subtotal suburb success suffix sum summary summer sunday supervisor
supplier supply support surcharge surface surname survey survival suspect
swamp system table tag tail target task tax taxon taxonomy teacher team
technical technician temperature template temporary ten tenure term terminal
termination terrain territory tertiary test text that the theme thing third
thirty this thousand thread three threshold through thursday ticket tide
tier time timestamp tire title to toad today token toll tool top topic
topography total touch tour town township toxic track tract trade traffic
trail trailer training transaction transcript transfer transit translation
transmission transport trap travel treatment tree trend trial tributary
trigger trim trip truck trunk trust tuesday tuition turn turtle two type
under understory union unique unit universe university unknown up update
upland upper urban usage use used user utility vacancy vacation valid
validation value valve van variable variance variant variety vegetation
vehicle vendor verification version vertical veteran viability video view
village vine vintage visibility visit visitor visual vital volume voucher
wage walk wall warehouse warning warranty watch water waterfowl watershed
wave way weather wednesday week weekly weight well west wet wetland wheel
when where which white whole wholesale width wild wildlife willow wind
window wing winter wire with withdrawal within without witness wolf wood
woodland woody word work worker workshop world wound wrap year yearly yes
yield young zero zone
airline airport alcohol appearance avoidance barrier basal brake breast burn
burrow certification closed coded committed concert counts crews deformation
deployment derived detections diploma distraction districts ejection estimated
events fires has historic intersection intrusion invasion invasive islands
lateral learner library lighting lines loads locale locations lunch maneuver
marker means members monthly observations observers payments pet planned plots
police posted posture potential prescribed profession quotation rear records
regents reported results roadside roadway sapling saplings scene schools
seedlings shop shoulder singer stations surveyor surveys suspension teachers
technology tested tow transect treatments units venue visits weighted lookup
arena career charter coach games goals magnet penalty played player players
playoff rookie scored scores takers teams transactions sat
`
