// Package ident provides low-level analysis of database schema identifiers:
// sub-token splitting, dictionary lookups, character tagging, and
// abbreviation analysis. It is the foundation for the SNAILS naturalness
// taxonomy (Regular / Low / Least) implemented in package naturalness.
package ident

import (
	"strings"
	"unicode"

	"github.com/snails-bench/snails/internal/memo"
)

// TokenKind classifies a sub-token of an identifier.
type TokenKind int

const (
	// KindWord is an alphabetic sub-token (e.g. "Veg" in "VegHeight").
	KindWord TokenKind = iota
	// KindNumber is a numeric sub-token (e.g. "22" in "CSI22").
	KindNumber
	// KindSymbol is a run of other characters (e.g. "$" or "#").
	KindSymbol
)

// Token is one sub-token of a split identifier.
type Token struct {
	Text string
	Kind TokenKind
}

// Split decomposes an identifier into sub-tokens on underscores, hyphens,
// whitespace, digit boundaries, and camel-case humps. Acronym runs followed
// by a capitalized word are split per the usual camel-case convention
// ("NTSBCrash" -> "NTSB", "Crash").
func Split(identifier string) []Token {
	var toks []Token
	runes := []rune(identifier)
	n := len(runes)
	i := 0
	flush := func(start, end int, kind TokenKind) {
		if end > start {
			toks = append(toks, Token{Text: string(runes[start:end]), Kind: kind})
		}
	}
	for i < n {
		r := runes[i]
		switch {
		case r == '_' || r == '-' || r == ' ' || r == '.' || r == '\t':
			i++
		case unicode.IsDigit(r):
			start := i
			for i < n && unicode.IsDigit(runes[i]) {
				i++
			}
			flush(start, i, KindNumber)
		case unicode.IsLetter(r):
			start := i
			// Consume an uppercase run first.
			j := i
			for j < n && unicode.IsUpper(runes[j]) {
				j++
			}
			switch {
			case j-i >= 2:
				// Acronym run. If followed by a lowercase letter the last
				// capital starts the next word ("DBName" -> "DB","Name").
				if j < n && unicode.IsLower(runes[j]) {
					j--
				}
				flush(start, j, KindWord)
				i = j
			default:
				// Single capital or lowercase start: consume one hump.
				j = i + 1
				for j < n && unicode.IsLower(runes[j]) {
					j++
				}
				flush(start, j, KindWord)
				i = j
			}
		default:
			start := i
			for i < n && !unicode.IsLetter(runes[i]) && !unicode.IsDigit(runes[i]) &&
				runes[i] != '_' && runes[i] != '-' && runes[i] != ' ' && runes[i] != '.' && runes[i] != '\t' {
				i++
			}
			flush(start, i, KindSymbol)
		}
	}
	return toks
}

// wordsMemo caches Words decompositions. Identifiers come from a bounded
// universe (schema crosswalks and question phrases), but the bound guards
// against pathological callers feeding unbounded strings.
var wordsMemo = memo.NewBounded[[]string](1 << 16)

// Words returns only the alphabetic sub-tokens of the identifier,
// lower-cased. The returned slice is shared across callers and must not be
// modified.
func Words(identifier string) []string {
	if v, ok := wordsMemo.Get(identifier); ok {
		return v
	}
	toks := Split(identifier)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == KindWord {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	wordsMemo.Put(identifier, out)
	return out
}

// CaseStyle describes the dominant casing convention of an identifier.
type CaseStyle int

const (
	CaseUnknown CaseStyle = iota
	CaseSnake             // vegetation_height
	CaseCamel             // vegetationHeight
	CasePascal            // VegetationHeight
	CaseUpper             // VEGETATION_HEIGHT or VEGHT
	CaseLower             // vegetationheight
)

// DetectCase reports the identifier's dominant casing convention.
func DetectCase(identifier string) CaseStyle {
	hasUnderscore := strings.ContainsRune(identifier, '_')
	hasUpper := strings.IndexFunc(identifier, unicode.IsUpper) >= 0
	hasLower := strings.IndexFunc(identifier, unicode.IsLower) >= 0
	switch {
	case hasUnderscore && hasUpper && !hasLower:
		return CaseUpper
	case hasUnderscore:
		return CaseSnake
	case hasUpper && !hasLower:
		return CaseUpper
	case hasUpper && hasLower:
		first, _ := firstLetter(identifier)
		if unicode.IsUpper(first) {
			return CasePascal
		}
		return CaseCamel
	case hasLower:
		return CaseLower
	default:
		return CaseUnknown
	}
}

func firstLetter(s string) (rune, bool) {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return r, true
		}
	}
	return 0, false
}

// Join renders words into an identifier using the given case style. Words
// should be lower-case inputs.
func Join(words []string, style CaseStyle) string {
	switch style {
	case CaseSnake:
		return strings.Join(words, "_")
	case CaseUpper:
		return strings.ToUpper(strings.Join(words, ""))
	case CaseLower:
		return strings.Join(words, "")
	case CaseCamel:
		var b strings.Builder
		for i, w := range words {
			if i == 0 {
				b.WriteString(w)
				continue
			}
			b.WriteString(titleWord(w))
		}
		return b.String()
	default: // CasePascal, CaseUnknown
		var b strings.Builder
		for _, w := range words {
			b.WriteString(titleWord(w))
		}
		return b.String()
	}
}

func titleWord(w string) string {
	if w == "" {
		return w
	}
	r := []rune(w)
	return string(unicode.ToUpper(r[0])) + string(r[1:])
}

// VowelRatio returns the proportion of letters in s that are vowels. Word
// abbreviations generally contain more consonants than vowels because vowels
// are the first characters removed during abbreviation.
func VowelRatio(s string) float64 {
	letters, vowels := 0, 0
	for _, r := range strings.ToLower(s) {
		if !unicode.IsLetter(r) {
			continue
		}
		letters++
		switch r {
		case 'a', 'e', 'i', 'o', 'u':
			vowels++
		}
	}
	if letters == 0 {
		return 0
	}
	return float64(vowels) / float64(letters)
}

// HasWhitespace reports whether the identifier contains whitespace. The
// paper replaces whitespace with underscores to avoid confounding inference
// failures.
func HasWhitespace(identifier string) bool {
	return strings.IndexFunc(identifier, unicode.IsSpace) >= 0
}

// ReplaceWhitespace replaces each whitespace run with a single underscore.
func ReplaceWhitespace(identifier string) string {
	return strings.Join(strings.Fields(identifier), "_")
}
