package ident

import (
	"math"
	"strings"
)

// IsSubsequence reports whether abbr appears as a subsequence of word,
// sharing the same first letter — the shape of most abbreviations ("vg" in
// "vegetation", "ht" in "height"). Both inputs are compared case-insensitively.
func IsSubsequence(abbr, word string) bool {
	return IsSubsequenceLower(strings.ToLower(abbr), strings.ToLower(word))
}

// IsSubsequenceLower is IsSubsequence for already-lower-cased inputs; the
// decode hot loops intern every token pre-lowered and skip the case folding.
func IsSubsequenceLower(a, w string) bool {
	if a == "" || w == "" || a[0] != w[0] {
		return false
	}
	i := 0
	for j := 0; j < len(w) && i < len(a); j++ {
		if w[j] == a[i] {
			i++
		}
	}
	return i == len(a)
}

// IsPrefixAbbrev reports whether abbr is a truncation prefix of word
// ("temp" for "temperature").
func IsPrefixAbbrev(abbr, word string) bool {
	return IsPrefixAbbrevLower(strings.ToLower(abbr), strings.ToLower(word))
}

// IsPrefixAbbrevLower is IsPrefixAbbrev for already-lower-cased inputs.
func IsPrefixAbbrevLower(a, w string) bool {
	return a != "" && len(a) < len(w) && strings.HasPrefix(w, a)
}

// Levenshtein computes the edit distance between two strings
// (case-sensitive). It is used by the appendix-B.1 heuristic scorer.
func Levenshtein(a, b string) int {
	ar, br := []rune(a), []rune(b)
	if len(ar) == 0 {
		return len(br)
	}
	if len(br) == 0 {
		return len(ar)
	}
	prev := make([]int, len(br)+1)
	cur := make([]int, len(br)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ar); i++ {
		cur[0] = i
		for j := 1; j <= len(br); j++ {
			cost := 1
			if ar[i-1] == br[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(br)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ExpansionCandidates returns the dictionary words that the token could
// abbreviate: words sharing the first letter of which the token is a
// subsequence. The token itself is excluded when it is a full word.
func ExpansionCandidates(token string, d *Dictionary) []string {
	t := strings.ToLower(token)
	if t == "" {
		return nil
	}
	var out []string
	for _, w := range d.WordsWithPrefixLetter(t[0]) {
		if w == t {
			continue
		}
		if IsSubsequence(t, w) {
			out = append(out, w)
		}
	}
	return out
}

// AbbrevSeverity measures how "damaged" a token is relative to the
// dictionary word it most plausibly abbreviates: 0 means the token is a
// dictionary word (no abbreviation); 1 means no plausible expansion exists
// (an indecipherable code). In between, severity grows with the fraction of
// characters removed and with the ambiguity of the candidate set.
//
// This is the central quantity of the reproduction: the synthetic LLMs'
// ability to link a natural-language mention to a schema identifier decays
// with the severity of the identifier's abbreviations, which is the lexical
// mismatch mechanism the paper identifies.
func AbbrevSeverity(token string, d *Dictionary) float64 {
	t := strings.ToLower(token)
	if t == "" {
		return 1
	}
	if d.Contains(t) || IsCommonAcronym(t) {
		return 0
	}
	cands := ExpansionCandidates(t, d)
	if len(cands) == 0 {
		return 1
	}
	// Best (shortest-distance) candidate: the more characters removed and
	// the more ambiguous the candidate set, the higher the severity.
	best := math.Inf(1)
	for _, c := range cands {
		removed := float64(len(c)-len(t)) / float64(len(c))
		if removed < best {
			best = removed
		}
	}
	ambiguity := math.Log(float64(len(cands)) + 1)
	sev := 0.25 + 0.6*best + 0.05*ambiguity
	if len(t) <= 2 {
		sev += 0.2 // one/two-letter codes are barely decipherable
	}
	if sev > 1 {
		sev = 1
	}
	return sev
}

// IdentifierSeverity averages AbbrevSeverity over the word tokens of an
// identifier (concatenated full words are segmented first). Numbers and
// symbols contribute a fixed mild penalty.
func IdentifierSeverity(identifier string, d *Dictionary) float64 {
	toks := Split(identifier)
	if len(toks) == 0 {
		return 1
	}
	var sum float64
	var n int
	for _, t := range toks {
		switch t.Kind {
		case KindWord:
			if parts := d.Segment(strings.ToLower(t.Text)); parts != nil {
				// A fully segmentable concatenation reads as natural words.
				for range parts {
					n++
				}
				continue
			}
			sum += AbbrevSeverity(t.Text, d)
			n++
		case KindNumber, KindSymbol:
			sum += 0.3
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// HeuristicScore implements the appendix-B.1 heuristic naturalness score:
// the weighted mean of the inverse edit distance to the closest candidate
// word and the inverse log candidate ambiguity, yielding values in [0, 1]
// where 1 is most natural. It predates the ML classifiers in the paper and
// is retained for the Table 5 comparison.
func HeuristicScore(identifier string, d *Dictionary) float64 {
	words := SegmentedWords(identifier, d)
	if len(words) == 0 {
		return 0
	}
	var total float64
	for _, w := range words {
		if d.Contains(w) || IsCommonAcronym(w) {
			total += 1
			continue
		}
		cands := ExpansionCandidates(w, d)
		if len(cands) == 0 {
			continue // contributes 0: least natural
		}
		minDist := math.MaxInt32
		near := 0 // candidates within edit distance 1..2
		for _, c := range cands {
			dist := Levenshtein(w, c)
			if dist < minDist {
				minDist = dist
			}
			if dist <= 2 {
				near++
			}
		}
		invDist := 1.0 / float64(1+minDist)
		invAmb := 1.0 / (1.0 + math.Log(float64(near)+1))
		total += 0.6*invDist + 0.4*invAmb
	}
	return total / float64(len(words))
}
