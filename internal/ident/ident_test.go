package ident

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func words(toks []Token) []string {
	var out []string
	for _, t := range toks {
		out = append(out, t.Text)
	}
	return out
}

func TestSplitCamelCase(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"VegHeight", []string{"Veg", "Height"}},
		{"vegetation_height", []string{"vegetation", "height"}},
		{"AdaptiveCruiseControl", []string{"Adaptive", "Cruise", "Control"}},
		{"ModelYear", []string{"Model", "Year"}},
		{"service_name", []string{"service", "name"}},
		{"Research Staff", []string{"Research", "Staff"}},
		{"NTSBCrash", []string{"NTSB", "Crash"}},
		{"AuthorID_5", []string{"Author", "ID", "5"}},
		{"COGM_Act", []string{"COGM", "Act"}},
		{"CSI22", []string{"CSI", "22"}},
		{"tbl_MicroHabitat", []string{"tbl", "Micro", "Habitat"}},
		{"x", []string{"x"}},
		{"", nil},
		{"__", nil},
		{"a1b2", []string{"a", "1", "b", "2"}},
	}
	for _, c := range cases {
		got := words(Split(c.in))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Split(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitKinds(t *testing.T) {
	toks := Split("Veg_Height22$")
	wantKinds := []TokenKind{KindWord, KindWord, KindNumber, KindSymbol}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(wantKinds), toks)
	}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestSplitNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Split(s) {
			if tok.Text == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPreservesLetters(t *testing.T) {
	// Property: concatenating all tokens preserves every letter and digit of
	// the input in order.
	f := func(s string) bool {
		keep := func(r rune) bool {
			return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		}
		var in, out strings.Builder
		for _, r := range s {
			if keep(r) {
				in.WriteRune(r)
			}
		}
		for _, tok := range Split(s) {
			for _, r := range tok.Text {
				if keep(r) {
					out.WriteRune(r)
				}
			}
		}
		return in.String() == out.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectCase(t *testing.T) {
	cases := []struct {
		in   string
		want CaseStyle
	}{
		{"vegetation_height", CaseSnake},
		{"vegetationHeight", CaseCamel},
		{"VegetationHeight", CasePascal},
		{"VEGHT", CaseUpper},
		{"VEG_HT", CaseUpper},
		{"veght", CaseLower},
		{"123", CaseUnknown},
	}
	for _, c := range cases {
		if got := DetectCase(c.in); got != c.want {
			t.Errorf("DetectCase(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJoinRoundTrip(t *testing.T) {
	ws := []string{"vegetation", "height"}
	cases := []struct {
		style CaseStyle
		want  string
	}{
		{CaseSnake, "vegetation_height"},
		{CaseCamel, "vegetationHeight"},
		{CasePascal, "VegetationHeight"},
		{CaseUpper, "VEGETATIONHEIGHT"},
		{CaseLower, "vegetationheight"},
	}
	for _, c := range cases {
		if got := Join(ws, c.style); got != c.want {
			t.Errorf("Join(%v, %v) = %q, want %q", ws, c.style, got, c.want)
		}
	}
}

func TestDictionary(t *testing.T) {
	d := DefaultDictionary()
	if d.Len() < 1000 {
		t.Fatalf("embedded dictionary too small: %d", d.Len())
	}
	for _, w := range []string{"vegetation", "height", "species", "vehicle", "teacher", "invoice"} {
		if !d.Contains(w) {
			t.Errorf("dictionary missing %q", w)
		}
	}
	if d.Contains("xqzzyk") {
		t.Error("dictionary should not contain nonsense word")
	}
	if !d.Contains("Vegetation") {
		t.Error("Contains should be case-insensitive")
	}
}

func TestMeanTokenInDictionary(t *testing.T) {
	d := DefaultDictionary()
	cases := []struct {
		in       string
		min, max float64
	}{
		{"vegetation_height", 1, 1},
		{"VegHeight", 0.49, 0.51}, // Veg is out, Height is in
		{"VgHt", 0, 0},
		{"ModelYear", 1, 1},
		{"airbag", 1, 1},
	}
	for _, c := range cases {
		got := MeanTokenInDictionary(c.in, d)
		if got < c.min || got > c.max {
			t.Errorf("MeanTokenInDictionary(%q) = %v, want in [%v,%v]", c.in, got, c.min, c.max)
		}
	}
}

func TestCharTag(t *testing.T) {
	got := CharTag("AuthorID_5")
	want := "^^+++^+$#"
	// A u t h o r I D _ 5 => ^ ^ + + ^ + ^ + $ #? Let's compute: A vowel ^,
	// u vowel ^, t +, h +, o ^, r +, I vowel ^, D +, _ $, 5 #.
	want = "^^++^+^+$#"
	if got != want {
		t.Errorf("CharTag(AuthorID_5) = %q, want %q", got, want)
	}
	if CharTag("") != "" {
		t.Error("CharTag empty should be empty")
	}
}

func TestTagAugment(t *testing.T) {
	if got := TagAugment("ab"); got != "ab ^+" {
		t.Errorf("TagAugment(ab) = %q", got)
	}
}

func TestCharTagLength(t *testing.T) {
	f := func(s string) bool {
		// tag length equals rune count of input
		return len([]rune(CharTag(s))) == len([]rune(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSubsequence(t *testing.T) {
	cases := []struct {
		abbr, word string
		want       bool
	}{
		{"vg", "vegetation", true},
		{"ht", "height", true},
		{"veg", "vegetation", true},
		{"temp", "temperature", true},
		{"xyz", "vegetation", false},
		{"gv", "vegetation", false}, // must share first letter
		{"", "vegetation", false},
		{"vegetationx", "vegetation", false},
	}
	for _, c := range cases {
		if got := IsSubsequence(c.abbr, c.word); got != c.want {
			t.Errorf("IsSubsequence(%q, %q) = %v, want %v", c.abbr, c.word, got, c.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"veg", "vegetation", 7},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, &quick.Config{MaxCount: 50}); err != nil {
		t.Error("identity:", err)
	}
}

func TestAbbrevSeverity(t *testing.T) {
	d := DefaultDictionary()
	if s := AbbrevSeverity("height", d); s != 0 {
		t.Errorf("severity of full word = %v, want 0", s)
	}
	if s := AbbrevSeverity("id", d); s != 0 {
		t.Errorf("severity of common acronym = %v, want 0", s)
	}
	ht := AbbrevSeverity("ht", d)
	veg := AbbrevSeverity("veg", d)
	if ht <= veg {
		t.Errorf("severity(ht)=%v should exceed severity(veg)=%v", ht, veg)
	}
	if s := AbbrevSeverity("zzqx", d); s != 1 {
		t.Errorf("severity of undecipherable token = %v, want 1", s)
	}
}

func TestAbbrevSeverityBounds(t *testing.T) {
	d := DefaultDictionary()
	f := func(s string) bool {
		v := AbbrevSeverity(s, d)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIdentifierSeverityOrdering(t *testing.T) {
	d := DefaultDictionary()
	reg := IdentifierSeverity("vegetation_height", d)
	low := IdentifierSeverity("VegHeight", d)
	least := IdentifierSeverity("VgHt", d)
	if !(reg < low && low < least) {
		t.Errorf("severity ordering violated: regular=%v low=%v least=%v", reg, low, least)
	}
}

func TestHeuristicScoreOrdering(t *testing.T) {
	d := DefaultDictionary()
	reg := HeuristicScore("vegetation_height", d)
	least := HeuristicScore("VgHt", d)
	if reg <= least {
		t.Errorf("heuristic score ordering violated: regular=%v least=%v", reg, least)
	}
	if reg < 0.9 {
		t.Errorf("full-word identifier should score near 1, got %v", reg)
	}
}

func TestHeuristicScoreBounds(t *testing.T) {
	d := DefaultDictionary()
	f := func(s string) bool {
		v := HeuristicScore(s, d)
		return v >= 0 && v <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVowelRatio(t *testing.T) {
	if got := VowelRatio("aeiou"); got != 1 {
		t.Errorf("VowelRatio(aeiou) = %v", got)
	}
	if got := VowelRatio("xyz"); got != 0 {
		t.Errorf("VowelRatio(xyz) = %v", got)
	}
	if got := VowelRatio("VgHt"); got != 0 {
		t.Errorf("abbreviations drop vowels: VowelRatio(VgHt) = %v", got)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	if !HasWhitespace("Research Staff") {
		t.Error("HasWhitespace failed")
	}
	if HasWhitespace("Research_Staff") {
		t.Error("underscore is not whitespace")
	}
	if got := ReplaceWhitespace("Research  Staff"); got != "Research_Staff" {
		t.Errorf("ReplaceWhitespace = %q", got)
	}
}

func TestExpansionCandidates(t *testing.T) {
	d := DefaultDictionary()
	cands := ExpansionCandidates("vg", d)
	found := false
	for _, c := range cands {
		if c == "vegetation" {
			found = true
		}
	}
	if !found {
		t.Errorf("vegetation should be an expansion candidate for vg; got %v", cands)
	}
}

func TestSegment(t *testing.T) {
	d := DefaultDictionary()
	cases := []struct {
		in   string
		want string // "-" means no segmentation
	}{
		{"casenumber", "case number"},
		{"CASENUMBER", "case number"},
		{"vehiclecount", "vehicle count"},
		{"modelyear", "model year"},
		{"height", "-"}, // single dictionary word: nothing to split
		{"vg", "-"},     // too short
		{"zzqxkk", "-"}, // no parse
		{"alcoholcrashcargo", "alcohol crash cargo"},
	}
	for _, c := range cases {
		got := d.Segment(c.in)
		if c.want == "-" {
			if got != nil {
				t.Errorf("Segment(%q) = %v, want none", c.in, got)
			}
			continue
		}
		if strings.Join(got, " ") != c.want {
			t.Errorf("Segment(%q) = %v, want %q", c.in, got, c.want)
		}
	}
}

func TestSegmentedWords(t *testing.T) {
	d := DefaultDictionary()
	got := SegmentedWords("CASENUMBER_2021", d)
	if strings.Join(got, " ") != "case number" {
		t.Errorf("SegmentedWords = %v", got)
	}
	got = SegmentedWords("VgHt", d)
	if strings.Join(got, " ") != "vg ht" {
		t.Errorf("unsegmentable tokens pass through: %v", got)
	}
}

func TestSegmentNeverPanics(t *testing.T) {
	d := DefaultDictionary()
	f := func(s string) bool {
		_ = d.Segment(s)
		_ = SegmentedWords(s, d)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
