// Package etl loads external data into the in-memory engine. It reproduces
// the paper's NTSB migration path (appendix A.1.7): the crash-sampling data
// arrived as one CSV per table and was ingested into the target schema with
// typed columns. LoadCSV infers column types from the data the same way the
// authors' ETL scripting did.
package etl

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
)

// Options configures CSV ingestion.
type Options struct {
	// HasHeader treats the first record as column names (default when zero
	// value is used via LoadCSV: true).
	HasHeader bool
	// Columns overrides/declares column names when HasHeader is false.
	Columns []string
	// NullTokens are treated as SQL NULL in addition to the empty string.
	NullTokens []string
}

// LoadCSV reads CSV content into a new table of the database, inferring a
// type for each column: int64 if every non-null value parses as an integer,
// float64 if every non-null value parses as a number, ISO dates and
// everything else as strings. It returns the created table.
func LoadCSV(db *sqldb.DB, tableName string, r io.Reader) (*sqldb.TableData, error) {
	return LoadCSVWith(db, tableName, r, Options{HasHeader: true})
}

// LoadCSVWith is LoadCSV with explicit options.
func LoadCSVWith(db *sqldb.DB, tableName string, r io.Reader, opts Options) (*sqldb.TableData, error) {
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	records, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("etl: reading %s: %w", tableName, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("etl: %s: empty input", tableName)
	}
	var header []string
	rows := records
	if opts.HasHeader {
		header = records[0]
		rows = records[1:]
	} else {
		header = opts.Columns
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("etl: %s: no column names (set HasHeader or Columns)", tableName)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			return nil, fmt.Errorf("etl: %s: empty column name at position %d", tableName, i)
		}
	}
	nulls := map[string]struct{}{"": {}}
	for _, t := range opts.NullTokens {
		nulls[strings.ToUpper(t)] = struct{}{}
	}
	isNull := func(s string) bool {
		_, ok := nulls[strings.ToUpper(strings.TrimSpace(s))]
		return ok
	}

	// Pass 1: infer a type per column.
	kinds := make([]sqldb.Kind, len(header))
	for i := range kinds {
		kinds[i] = inferColumn(rows, i, isNull)
	}

	// Pass 2: convert and insert.
	table := db.CreateTable(tableName, header)
	for ri, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("etl: %s row %d: %d fields, want %d", tableName, ri+1, len(rec), len(header))
		}
		vals := make([]sqldb.Value, len(header))
		for ci, raw := range rec {
			vals[ci] = convert(raw, kinds[ci], isNull)
		}
		if err := table.Insert(vals); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// inferColumn picks the narrowest type every non-null value fits.
func inferColumn(rows [][]string, col int, isNull func(string) bool) sqldb.Kind {
	kind := sqldb.KindInt
	seen := false
	for _, rec := range rows {
		if col >= len(rec) || isNull(rec[col]) {
			continue
		}
		seen = true
		v := strings.TrimSpace(rec[col])
		switch kind {
		case sqldb.KindInt:
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				continue
			}
			kind = sqldb.KindFloat
			fallthrough
		case sqldb.KindFloat:
			if _, err := strconv.ParseFloat(v, 64); err == nil {
				continue
			}
			kind = sqldb.KindString
		}
		if kind == sqldb.KindString {
			return sqldb.KindString
		}
	}
	if !seen {
		return sqldb.KindString
	}
	return kind
}

func convert(raw string, kind sqldb.Kind, isNull func(string) bool) sqldb.Value {
	if isNull(raw) {
		return sqldb.Null()
	}
	v := strings.TrimSpace(raw)
	switch kind {
	case sqldb.KindInt:
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return sqldb.Int(n)
		}
	case sqldb.KindFloat:
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return sqldb.Float(f)
		}
	}
	return sqldb.String(v)
}

// DumpCSV writes a table back out as CSV (header + rows), the inverse of
// LoadCSV; useful for exporting benchmark instances.
func DumpCSV(w io.Writer, table *sqldb.TableData) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(table.Columns); err != nil {
		return err
	}
	rec := make([]string, len(table.Columns))
	for _, row := range table.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
				continue
			}
			rec[i] = v.String()
		}
		// A single-column NULL row would serialize as a blank line, which
		// CSV readers skip — quote it explicitly so the row survives a
		// round trip.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return err
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
