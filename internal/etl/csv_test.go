package etl

import (
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
)

const crashCSV = `CASENO,PSU,SEVERITY,SPEED,CRASHDATE
1,11,minor,42.5,2021-03-01
2,11,serious,,2021-04-12
3,24,fatal,88,2021-05-30
`

func TestLoadCSVBasic(t *testing.T) {
	db := sqldb.NewDB("ntsb")
	table, err := LoadCSV(db, "crash", strings.NewReader(crashCSV))
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 3 || len(table.Columns) != 5 {
		t.Fatalf("shape = %dx%d", table.NumRows(), len(table.Columns))
	}
	// Type inference: CASENO int, SPEED float (mixed 42.5/88), SEVERITY string.
	if table.Rows[0][0].Kind != sqldb.KindInt {
		t.Errorf("CASENO kind = %v", table.Rows[0][0].Kind)
	}
	if table.Rows[0][3].Kind != sqldb.KindFloat {
		t.Errorf("SPEED kind = %v", table.Rows[0][3].Kind)
	}
	if table.Rows[0][2].Kind != sqldb.KindString {
		t.Errorf("SEVERITY kind = %v", table.Rows[0][2].Kind)
	}
	// Empty field becomes NULL.
	if !table.Rows[1][3].IsNull() {
		t.Errorf("empty speed should be NULL: %v", table.Rows[1][3])
	}
}

func TestLoadedTableIsQueryable(t *testing.T) {
	db := sqldb.NewDB("ntsb")
	if _, err := LoadCSV(db, "crash", strings.NewReader(crashCSV)); err != nil {
		t.Fatal(err)
	}
	res, err := sqlexec.ExecuteSQL(db, "SELECT COUNT(*) FROM crash WHERE SPEED > 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	res, err = sqlexec.ExecuteSQL(db, "SELECT SEVERITY FROM crash WHERE YEAR(CRASHDATE) = 2021 ORDER BY CASENO")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 || res.Rows[0][0].S != "minor" {
		t.Errorf("date query wrong: %v", res.Rows)
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	db := sqldb.NewDB("x")
	table, err := LoadCSVWith(db, "t", strings.NewReader("1,a\n2,b\n"),
		Options{Columns: []string{"id", "name"}})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != 2 || table.Columns[1] != "name" {
		t.Fatalf("no-header load wrong: %+v", table)
	}
}

func TestLoadCSVNullTokens(t *testing.T) {
	db := sqldb.NewDB("x")
	table, err := LoadCSVWith(db, "t", strings.NewReader("v\nNA\n7\n"),
		Options{HasHeader: true, NullTokens: []string{"NA"}})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Rows[0][0].IsNull() {
		t.Errorf("NA should be NULL: %v", table.Rows[0][0])
	}
	if table.Rows[1][0].I != 7 {
		t.Errorf("int inference should survive null tokens: %v", table.Rows[1][0])
	}
}

func TestLoadCSVQuotedFields(t *testing.T) {
	db := sqldb.NewDB("x")
	table, err := LoadCSV(db, "t", strings.NewReader("name,notes\n\"Smith, Jr\",\"said \"\"hi\"\"\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if table.Rows[0][0].S != "Smith, Jr" || table.Rows[0][1].S != `said "hi"` {
		t.Errorf("quoted parsing wrong: %v", table.Rows[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := sqldb.NewDB("x")
	if _, err := LoadCSV(db, "t", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := LoadCSVWith(db, "t", strings.NewReader("1,2\n"), Options{}); err == nil {
		t.Error("missing column names should error")
	}
	if _, err := LoadCSV(db, "t", strings.NewReader("a,\n1,2\n")); err == nil {
		t.Error("empty header cell should error")
	}
}

func TestDumpCSVRoundTrip(t *testing.T) {
	db := sqldb.NewDB("x")
	table, err := LoadCSV(db, "crash", strings.NewReader(crashCSV))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := DumpCSV(&sb, table); err != nil {
		t.Fatal(err)
	}
	db2 := sqldb.NewDB("y")
	table2, err := LoadCSV(db2, "crash", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-load failed: %v\n%s", err, sb.String())
	}
	if table2.NumRows() != table.NumRows() {
		t.Errorf("round trip rows %d != %d", table2.NumRows(), table.NumRows())
	}
	for ri := range table.Rows {
		for ci := range table.Rows[ri] {
			a, b := table.Rows[ri][ci], table2.Rows[ri][ci]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.String() != b.String()) {
				t.Errorf("round trip cell (%d,%d): %v vs %v", ri, ci, a, b)
			}
		}
	}
}
