package etl

import (
	"bytes"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
)

// FuzzLoadCSV feeds arbitrary bytes through CSV ingestion. Properties:
//
//  1. LoadCSV never panics — it returns a table or an error;
//  2. a successful load has non-empty, trimmed column names and every row
//     matches the column count;
//  3. DumpCSV of a loaded table re-loads with the same shape (column names
//     and row count), i.e. export is an inverse of ingestion at the schema
//     level.
func FuzzLoadCSV(f *testing.F) {
	seeds := []string{
		"id,name\n1,abies\n2,acer\n",
		"id,height\n1,2.5\n2,\n3,10\n",
		"a,b,c\n1,2\n", // ragged row: must error, not panic
		"\"quoted,col\",plain\n\"x,y\",z\n",
		"col\n\"multi\nline\"\n",
		"id,code\n1,NA\n2,NULL\n",
		"only_header\n",
		"",
		"\n\n\n",
		"a,a\n1,2\n", // duplicate column names
		"spécies,été\nabies,1\n",
		"a;b\n1;2\n",
		" padded , names \n 1 , 2 \n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		db := sqldb.NewDB("fuzz")
		table, err := LoadCSV(db, "t", strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		for i, col := range table.Columns {
			if col == "" || col != strings.TrimSpace(col) {
				t.Fatalf("LoadCSV(%q) column %d = %q, want trimmed non-empty", input, i, col)
			}
		}
		for ri, row := range table.Rows {
			if len(row) != len(table.Columns) {
				t.Fatalf("LoadCSV(%q) row %d has %d values, want %d", input, ri, len(row), len(table.Columns))
			}
		}

		var buf bytes.Buffer
		if err := DumpCSV(&buf, table); err != nil {
			t.Fatalf("DumpCSV after LoadCSV(%q): %v", input, err)
		}
		again, err := LoadCSV(sqldb.NewDB("fuzz2"), "t", &buf)
		if err != nil {
			t.Fatalf("reload of dumped CSV from %q: %v", input, err)
		}
		if len(again.Columns) != len(table.Columns) || len(again.Rows) != len(table.Rows) {
			t.Fatalf("dump/reload of %q changed shape: %dx%d -> %dx%d", input,
				len(table.Columns), len(table.Rows), len(again.Columns), len(again.Rows))
		}
		for i := range table.Columns {
			if again.Columns[i] != table.Columns[i] {
				t.Fatalf("dump/reload of %q changed column %d: %q -> %q", input, i, table.Columns[i], again.Columns[i])
			}
		}
	})
}
