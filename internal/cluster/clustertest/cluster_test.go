package clustertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/cluster"
	"github.com/snails-bench/snails/internal/server"
	"github.com/snails-bench/snails/internal/trace"
)

// reqSpec is one request in a replayable stream.
type reqSpec struct {
	path string
	body string
}

// testStream is a deterministic request mix across databases, variants, and
// endpoints — enough spread to land on every shard of a small cluster.
func testStream() []reqSpec {
	var out []reqSpec
	for _, db := range []string{"ASIS", "NTSB", "CWO", "PILB"} {
		for _, variant := range []string{"native", "regular", "low"} {
			for qid := 1; qid <= 2; qid++ {
				out = append(out, reqSpec{"/v1/infer", fmt.Sprintf(
					`{"db":%q,"model":"gpt-4o","variant":%q,"question_id":%d}`, db, variant, qid)})
			}
		}
	}
	out = append(out,
		reqSpec{"/v1/classify", `{"identifiers":["vegetation_height","tbl_emp","xqz"]}`},
		reqSpec{"/v1/modify", `{"op":"expand","identifier":"veg_hght"}`},
		reqSpec{"/v1/link", `{"gold_sql":"SELECT a FROM t","pred_sql":"SELECT a FROM t"}`},
	)
	return out
}

// soloResponses replays the stream against a fresh single-process server and
// returns status + body per request — the reference a cluster must match
// byte-for-byte.
func soloResponses(cfg server.Config, stream []reqSpec) []*httptest.ResponseRecorder {
	s := server.New(cfg)
	defer s.Drain()
	out := make([]*httptest.ResponseRecorder, len(stream))
	for i, spec := range stream {
		req := httptest.NewRequest(http.MethodPost, spec.path, strings.NewReader(spec.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		out[i] = rec
	}
	return out
}

// post sends one stream request through the cluster router.
func post(t *testing.T, client *http.Client, base string, spec reqSpec) (int, []byte, string) {
	t.Helper()
	resp, err := client.Post(base+spec.path, "application/json", strings.NewReader(spec.body))
	if err != nil {
		t.Fatalf("POST %s: %v", spec.path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", spec.path, err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Snails-Shard")
}

// clusterMetricsz pulls and decodes the router's aggregated /metricsz.
func clusterMetricsz(t *testing.T, client *http.Client, base string) cluster.ClusterMetricsz {
	t.Helper()
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer resp.Body.Close()
	var doc cluster.ClusterMetricsz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode /metricsz: %v", err)
	}
	return doc
}

func startCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := Start(opts)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestClusterByteIdentity: the same request stream against one process and
// a 2-shard cluster yields identical status codes and byte-identical bodies;
// the only cluster-visible difference is the X-Snails-Shard header.
func TestClusterByteIdentity(t *testing.T) {
	stream := testStream()
	solo := soloResponses(server.Config{}, stream)
	c := startCluster(t, Options{Shards: 2, Preload: true})
	client := &http.Client{Timeout: 30 * time.Second}

	shardsSeen := map[string]bool{}
	for i, spec := range stream {
		status, body, shard := post(t, client, c.RouterURL, spec)
		if status != solo[i].Code {
			t.Fatalf("request %d (%s %s): cluster status %d, solo %d",
				i, spec.path, spec.body, status, solo[i].Code)
		}
		if !bytes.Equal(body, solo[i].Body.Bytes()) {
			t.Fatalf("request %d (%s %s): cluster body differs from solo\ncluster: %s\nsolo:    %s",
				i, spec.path, spec.body, body, solo[i].Body.Bytes())
		}
		if shard == "" {
			t.Fatalf("request %d: cluster response missing X-Snails-Shard header", i)
		}
		shardsSeen[shard] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("stream touched shards %v, want both shards of the cluster", shardsSeen)
	}
}

// TestKillShardUnderLoad: SIGKILL-ing a shard mid-load produces zero wrong
// answers and zero client-visible errors — the router re-hashes every
// affected request onto the surviving shard within the retry budget.
func TestKillShardUnderLoad(t *testing.T) {
	stream := testStream()
	solo := soloResponses(server.Config{}, stream)
	c := startCluster(t, Options{Shards: 2, Preload: true})

	const clients = 4
	const perClient = 40
	killAt := int64(clients * perClient / 4)

	var sent atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perClient; i++ {
				n := sent.Add(1)
				if n == killAt {
					killOnce.Do(func() { c.KillShard(0) })
				}
				idx := (w*perClient + i) % len(stream)
				spec := stream[idx]
				resp, err := client.Post(c.RouterURL+spec.path, "application/json", strings.NewReader(spec.body))
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %v", w, i, err)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != solo[idx].Code {
					errs <- fmt.Errorf("client %d request %d (%s): status %d, want %d (body %s)",
						w, i, spec.path, resp.StatusCode, solo[idx].Code, body)
					continue
				}
				if !bytes.Equal(body, solo[idx].Body.Bytes()) {
					errs <- fmt.Errorf("client %d request %d (%s): wrong answer\ngot:  %s\nwant: %s",
						w, i, spec.path, body, solo[idx].Body.Bytes())
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := clusterMetricsz(t, &http.Client{Timeout: 10 * time.Second}, c.RouterURL)
	if snap.Router.AliveShards != 1 {
		t.Errorf("alive shards after kill = %d, want 1", snap.Router.AliveShards)
	}
	if snap.Router.RetriesTotal == 0 {
		t.Errorf("router reports zero retries despite a shard dying under load")
	}
}

// TestDrainFinishesInflight: draining a shard lets its in-flight micro-
// batches finish — every request issued before the drain completes with the
// correct body — and the router routes around it afterwards.
func TestDrainFinishesInflight(t *testing.T) {
	stream := testStream()
	cfg := server.Config{BatchWindow: 40 * time.Millisecond}
	solo := soloResponses(cfg, stream)
	c := startCluster(t, Options{Shards: 2, Preload: true, ShardConfig: cfg})

	// Fire a wave of requests; with the widened batch window they sit in
	// shard queues when the drain starts.
	var wg sync.WaitGroup
	type result struct {
		idx    int
		status int
		body   []byte
	}
	results := make(chan result, len(stream))
	for i, spec := range stream {
		wg.Add(1)
		go func(i int, spec reqSpec) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			resp, err := client.Post(c.RouterURL+spec.path, "application/json", strings.NewReader(spec.body))
			if err != nil {
				results <- result{idx: i, status: -1}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{i, resp.StatusCode, body}
		}(i, spec)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.DrainShard(0, 10*time.Second); err != nil {
		t.Errorf("drain did not finish in-flight work within grace: %v", err)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != solo[r.idx].Code {
			t.Errorf("request %d: status %d, want %d (body %s)", r.idx, r.status, solo[r.idx].Code, r.body)
			continue
		}
		if !bytes.Equal(r.body, solo[r.idx].Body.Bytes()) {
			t.Errorf("request %d: wrong answer after drain\ngot:  %s\nwant: %s", r.idx, r.body, solo[r.idx].Body.Bytes())
		}
	}

	// The drained shard is out of rotation; traffic keeps flowing.
	if err := c.WaitAlive(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, spec := range stream[:6] {
		status, _, shard := post(t, client, c.RouterURL, spec)
		if status != http.StatusOK {
			t.Errorf("post-drain request to %s: status %d, want 200", spec.path, status)
		}
		if shard == "shard-0" {
			t.Errorf("post-drain request routed to drained shard 0")
		}
	}
}

// TestRestartRejoinsAndRewarms: a killed shard restarted on the same address
// rejoins the ring and re-warms its memo caches — the aggregated /metricsz
// hit counters recover once the stream replays.
func TestRestartRejoinsAndRewarms(t *testing.T) {
	stream := testStream()
	c := startCluster(t, Options{Shards: 2, Preload: true})
	client := &http.Client{Timeout: 30 * time.Second}

	replay := func() {
		for _, spec := range stream {
			status, _, _ := post(t, client, c.RouterURL, spec)
			if status != http.StatusOK {
				t.Fatalf("replay request %s: status %d", spec.path, status)
			}
		}
	}

	// Warm both shards, then verify the stream is fully cached.
	replay()
	before := clusterMetricsz(t, client, c.RouterURL)
	replay()
	warm := clusterMetricsz(t, client, c.RouterURL)
	if got := warm.CacheHits - before.CacheHits; got < uint64(len(stream)) {
		t.Fatalf("warm replay hit cache %d times, want >= %d", got, len(stream))
	}

	c.KillShard(0)
	if err := c.WaitAlive(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAlive(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// First replay re-warms the restarted shard's empty caches (its share of
	// the stream misses); the next replay must be fully hot again.
	replay()
	rewarmed := clusterMetricsz(t, client, c.RouterURL)
	replay()
	hot := clusterMetricsz(t, client, c.RouterURL)
	if got := hot.CacheHits - rewarmed.CacheHits; got < uint64(len(stream)) {
		t.Fatalf("post-restart replay hit cache %d times, want >= %d — restarted shard did not re-warm", got, len(stream))
	}

	// Both shards are serving again.
	shardsSeen := map[string]bool{}
	for _, spec := range stream {
		_, _, shard := post(t, client, c.RouterURL, spec)
		shardsSeen[shard] = true
	}
	if !shardsSeen["shard-0"] {
		t.Errorf("restarted shard 0 receives no traffic after rejoin (saw %v)", shardsSeen)
	}
}

// TestProbeFaults: dropped probes take a healthy shard out of rotation
// without dropping client traffic; probes slower than the timeout read as
// down; recovery is automatic when the fault clears.
func TestProbeFaults(t *testing.T) {
	stream := testStream()
	c := startCluster(t, Options{Shards: 2, Preload: true})
	client := &http.Client{Timeout: 30 * time.Second}

	c.DropProbes(1, true)
	if err := c.WaitAlive(1, 5*time.Second); err != nil {
		t.Fatalf("dropped probes did not mark the shard down: %v", err)
	}
	for _, spec := range stream[:8] {
		status, _, shard := post(t, client, c.RouterURL, spec)
		if status != http.StatusOK {
			t.Errorf("request during probe outage: status %d, want 200", status)
		}
		if shard == "shard-1" {
			t.Errorf("request routed to shard with failing probes")
		}
	}
	c.DropProbes(1, false)
	if err := c.WaitAlive(2, 10*time.Second); err != nil {
		t.Fatalf("shard did not recover after probes resumed: %v", err)
	}

	// Probes slower than the probe timeout are failures too.
	c.SlowProbes(1, 2*time.Second)
	if err := c.WaitAlive(1, 10*time.Second); err != nil {
		t.Fatalf("slow probes did not mark the shard down: %v", err)
	}
	c.SlowProbes(1, 0)
	if err := c.WaitAlive(2, 10*time.Second); err != nil {
		t.Fatalf("shard did not recover after slow probes cleared: %v", err)
	}
}

// TestAggregatedMetrics: the router's /metrics merges shard expositions
// under shard="<name>" labels alongside its own families, and /metricsz
// sums shard counters so the cluster reads like one process.
func TestAggregatedMetrics(t *testing.T) {
	stream := testStream()
	c := startCluster(t, Options{Shards: 2, Preload: true})
	client := &http.Client{Timeout: 30 * time.Second}
	for _, spec := range stream {
		post(t, client, c.RouterURL, spec)
	}

	snap := clusterMetricsz(t, client, c.RouterURL)
	if snap.RequestsTotal != uint64(len(stream)) {
		t.Errorf("aggregated requests_total = %d, want %d", snap.RequestsTotal, len(stream))
	}
	if snap.Router.RequestsTotal != uint64(len(stream)) {
		t.Errorf("router requests_total = %d, want %d", snap.Router.RequestsTotal, len(stream))
	}
	if len(snap.ShardHealth) != 2 {
		t.Fatalf("shard_health has %d entries, want 2", len(snap.ShardHealth))
	}
	var shardReqs uint64
	for _, sh := range snap.ShardHealth {
		if !sh.Alive {
			t.Errorf("shard %s not alive in healthy cluster", sh.Name)
		}
		shardReqs += sh.Requests
	}
	if shardReqs != uint64(len(stream)) {
		t.Errorf("per-shard routed requests sum to %d, want %d", shardReqs, len(stream))
	}

	resp, err := client.Get(c.RouterURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"snails_router_requests_total",
		`shard="shard-0"`,
		`shard="shard-1"`,
		"snails_http_requests_total{",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("aggregated /metrics missing %q", want)
		}
	}
}

// slowTransport delays every forwarded round trip, honoring cancellation —
// the stand-in for a shard that answers, but slower than the client can wait.
type slowTransport struct {
	base  http.RoundTripper
	delay time.Duration
}

func (s slowTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	select {
	case <-time.After(s.delay):
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
	return s.base.RoundTrip(r)
}

// TestRelayDeadlinePropagation is the regression test for the hardcoded 5s
// relay timeout: the aggregation endpoints used to fan out under their own
// fixed 5s context no matter what the client could wait, so a client with a
// 150ms budget hung for the full shard latency. With the deadline header the
// router must answer 504 within the client's budget — well before the slow
// shard would have answered and far before the relay cap — while a generous
// budget still rides the slowness out to a 200.
func TestRelayDeadlinePropagation(t *testing.T) {
	const shardDelay = time.Second
	c := startCluster(t, Options{
		Shards: 1,
		Router: cluster.Config{Transport: slowTransport{base: http.DefaultTransport, delay: shardDelay}},
	})
	client := &http.Client{Timeout: 30 * time.Second}

	get := func(path, budgetMs string) (int, []byte, time.Duration) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, c.RouterURL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if budgetMs != "" {
			req.Header.Set(cluster.DeadlineHeader, budgetMs)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, time.Since(start)
	}

	// 150ms budget against a 1s shard: 504 before the shard answers.
	status, body, elapsed := get("/metricsz", "150")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("/metricsz under short deadline = %d, want 504: %s", status, body)
	}
	if !strings.Contains(string(body), "timeout") {
		t.Errorf("504 body should carry the timeout code: %s", body)
	}
	if elapsed >= shardDelay {
		t.Errorf("504 arrived after %v — the router waited out the slow shard instead of honoring the 150ms budget", elapsed)
	}

	// Same budget on the trace fan-out: 504, not the misleading
	// "tracing_disabled" 404 an empty timed-out sweep used to imply.
	if status, body, _ := get("/debugz/traces", "150"); status != http.StatusGatewayTimeout {
		t.Fatalf("/debugz/traces under short deadline = %d, want 504: %s", status, body)
	}

	// A budget beyond the shard latency behaves as before.
	if status, body, _ := get("/metricsz", "10000"); status != http.StatusOK {
		t.Fatalf("/metricsz under generous deadline = %d, want 200: %s", status, body)
	}
}

// postTraced sends one request and returns the response plus its wire trace
// ID (the X-Snails-Trace header the shard echoes through the router).
func postTraced(t *testing.T, client *http.Client, base string, spec reqSpec) (*http.Response, []byte, string) {
	t.Helper()
	resp, err := client.Post(base+spec.path, "application/json", strings.NewReader(spec.body))
	if err != nil {
		t.Fatalf("POST %s: %v", spec.path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", spec.path, err)
	}
	return resp, body, resp.Header.Get(trace.Header)
}

// stitchedTrace polls the router's /debugz/traces?id= until the stitched
// document holds views from both a router and at least one shard (the
// router's deferred Finish races the client's read of the response), or the
// timeout expires — returning whatever was last fetched either way.
func stitchedTrace(t *testing.T, client *http.Client, base, tid string, timeout time.Duration) server.TracesResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var doc server.TracesResponse
	for {
		resp, err := client.Get(base + "/debugz/traces?id=" + tid)
		if err != nil {
			t.Fatalf("GET /debugz/traces?id=%s: %v", tid, err)
		}
		doc = server.TracesResponse{}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /debugz/traces?id=%s: %v", tid, err)
		}
		procs := map[string]bool{}
		for _, v := range doc.Traces {
			procs[v.Proc] = true
		}
		if procs["router"] && len(procs) >= 2 {
			return doc
		}
		if time.Now().After(deadline) {
			return doc
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStitchedTraceAcrossProcesses: one /v1/infer through a 2-shard cluster
// yields exactly one stitched trace — the router's root view (route span plus
// a relay attempt) and the serving shard's view (the six pipeline stages) —
// grouped under the single wire trace ID the response header reports.
func TestStitchedTraceAcrossProcesses(t *testing.T) {
	c := startCluster(t, Options{Shards: 2, Preload: true})
	client := &http.Client{Timeout: 30 * time.Second}

	spec := reqSpec{"/v1/infer", `{"db":"ASIS","model":"gpt-4o","variant":"native","question_id":1}`}
	resp, body, tid := postTraced(t, client, c.RouterURL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}
	if tid == "" {
		t.Fatal("response carries no X-Snails-Trace header")
	}

	doc := stitchedTrace(t, client, c.RouterURL, tid, 5*time.Second)
	if doc.TraceID != tid {
		t.Errorf("stitched doc echoes trace_id %q, want %q", doc.TraceID, tid)
	}
	var routerView, shardView *trace.View
	for i := range doc.Traces {
		v := &doc.Traces[i]
		if v.TraceID != tid {
			t.Errorf("view proc=%q carries trace_id %q, want %q", v.Proc, v.TraceID, tid)
		}
		switch {
		case v.Proc == "router":
			routerView = v
		case strings.HasPrefix(v.Proc, "shard-"):
			shardView = v
		}
	}
	if routerView == nil || shardView == nil {
		t.Fatalf("stitched trace must span router and shard processes, got %d views: %+v", len(doc.Traces), doc.Traces)
	}

	routerStages := map[string]int{}
	for _, sp := range routerView.Spans {
		routerStages[sp.Stage]++
	}
	if routerStages["route"] != 1 {
		t.Errorf("router view route spans = %d, want 1 (spans: %+v)", routerStages["route"], routerView.Spans)
	}
	if routerStages["relay_attempt"] != 1 {
		t.Errorf("router view relay_attempt spans = %d, want 1 (spans: %+v)", routerStages["relay_attempt"], routerView.Spans)
	}

	shardStages := map[string]bool{}
	for _, sp := range shardView.Spans {
		shardStages[sp.Stage] = true
	}
	for _, want := range []string{"queue", "prompt_render", "llm_decode", "sql_parse", "sql_exec", "match"} {
		if !shardStages[want] {
			t.Errorf("shard view missing pipeline stage %q (spans: %+v)", want, shardView.Spans)
		}
	}
	if !shardStages["backend_attempt"] {
		t.Errorf("shard view missing backend_attempt span (spans: %+v)", shardView.Spans)
	}
}

// TestFailoverRelayAttemptsShareOneTrace: a request whose first shard dies
// mid-flight records BOTH relay attempts — the failed one against the dead
// shard and the succeeding one against the survivor — in the same router
// trace, tagged shard#attempt in order. The health interval is set far above
// the test's duration so the router genuinely discovers the death on the
// request path, not from a probe.
func TestFailoverRelayAttemptsShareOneTrace(t *testing.T) {
	c := startCluster(t, Options{
		Shards:  2,
		Preload: true,
		Router:  cluster.Config{HealthInterval: 10 * time.Second},
	})
	client := &http.Client{Timeout: 30 * time.Second}

	// Find a request that shard-0 owns while both shards are up.
	var spec reqSpec
	found := false
	for _, s := range testStream() {
		if _, _, shard := post(t, client, c.RouterURL, s); shard == "shard-0" {
			spec, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no stream request routed to shard-0")
	}

	c.KillShard(0)
	resp, body, tid := postTraced(t, client, c.RouterURL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Snails-Shard"); got != "shard-1" {
		t.Fatalf("failover request served by %q, want shard-1", got)
	}
	if tid == "" {
		t.Fatal("failover response carries no X-Snails-Trace header")
	}

	doc := stitchedTrace(t, client, c.RouterURL, tid, 5*time.Second)
	var routerView *trace.View
	for i := range doc.Traces {
		if doc.Traces[i].Proc == "router" {
			routerView = &doc.Traces[i]
		}
	}
	if routerView == nil {
		t.Fatalf("no router view in stitched trace: %+v", doc.Traces)
	}
	var relays []string
	for _, sp := range routerView.Spans {
		if sp.Stage == "relay_attempt" {
			relays = append(relays, sp.Tag)
		}
	}
	if len(relays) != 2 {
		t.Fatalf("router trace has %d relay attempts %v, want 2 (dead shard, then survivor)", len(relays), relays)
	}
	if relays[0] != "shard-0#0" || relays[1] != "shard-1#1" {
		t.Errorf("relay attempt tags = %v, want [shard-0#0 shard-1#1]", relays)
	}
	shardSeen := false
	for _, v := range doc.Traces {
		if v.Proc == "shard-1" && v.TraceID == tid {
			shardSeen = true
		}
	}
	if !shardSeen {
		t.Errorf("surviving shard's view missing from stitched trace: %+v", doc.Traces)
	}
}
