// Package clustertest is the in-process cluster rig: a real cluster.Router
// and N real server.Server shards on loopback listeners, with fault
// injection hooks — abrupt shard kill, same-port restart, graceful drain,
// slow and dropped health probes. The fault-injection test suite runs on it
// under -race, and snailsbench -loadgen uses it to measure the per-shard-
// count throughput table without spawning child processes.
//
// It is a normal (non-test) package on purpose: everything it builds is
// production code wired together on loopback, so exercising it from a
// benchmark driver is as legitimate as from a test.
package clustertest

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/cluster"
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/server"
)

// Universe is the benchmark placement-key universe over the built-in
// databases.
func Universe() []string { return cluster.DefaultUniverse() }

// Options parameterizes Start.
type Options struct {
	// Shards is the worker count (default 2).
	Shards int
	// ShardConfig templates every shard's server.Config; the rig overrides
	// ShardID per shard. The zero value is the production default.
	ShardConfig server.Config
	// Router carries router overrides; the rig fills Shards, Universe, and
	// the probe-fault transport, and lowers the health/retry timings to
	// test speed where unset.
	Router cluster.Config
	// Preload eagerly builds every database and trains the classifier
	// before the cluster is declared ready, so measurements and fault
	// schedules see no cold-start noise.
	Preload bool
}

// Cluster is a running in-process cluster.
type Cluster struct {
	Router    *cluster.Router
	RouterURL string

	opts      Options
	routerLn  net.Listener
	routerSrv *http.Server
	shards    []*shardSlot
	faults    *probeFaults
}

// shardSlot tracks one shard's listener and server across kill/restart
// cycles; the address is fixed at first bind so a restart rejoins the ring
// at the same identity.
type shardSlot struct {
	idx  int
	addr string

	mu      sync.Mutex
	srv     *server.Server
	httpSrv *http.Server
	ln      net.Listener
	running bool
}

// probeFaults is the injectable health-probe transport: per-shard-address
// modes applied before delegating to the real transport.
type probeFaults struct {
	base  http.RoundTripper
	mu    sync.Mutex
	modes map[string]*probeMode // keyed by shard host:port
}

type probeMode struct {
	drop  atomic.Bool
	delay atomic.Int64 // nanoseconds
}

func (p *probeFaults) modeFor(addr string) *probeMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.modes[addr]
	if !ok {
		m = &probeMode{}
		p.modes[addr] = m
	}
	return m
}

func (p *probeFaults) RoundTrip(r *http.Request) (*http.Response, error) {
	m := p.modeFor(r.URL.Host)
	if d := m.delay.Load(); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if m.drop.Load() {
		return nil, fmt.Errorf("clustertest: probe to %s dropped by fault injection", r.URL.Host)
	}
	return p.base.RoundTrip(r)
}

// Start builds and starts the cluster, blocking until every shard has been
// probed alive.
func Start(opts Options) (*Cluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	c := &Cluster{opts: opts}
	c.faults = &probeFaults{base: http.DefaultTransport, modes: map[string]*probeMode{}}

	if opts.Preload {
		datasets.All()
	}

	shardRefs := make([]cluster.Shard, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		slot := &shardSlot{idx: i}
		if err := slot.start(opts.ShardConfig, ""); err != nil {
			c.Stop()
			return nil, err
		}
		if opts.Preload {
			slot.srv.Preload()
		}
		c.shards = append(c.shards, slot)
		shardRefs[i] = cluster.Shard{Name: "shard-" + strconv.Itoa(i), Base: "http://" + slot.addr}
	}

	rcfg := opts.Router
	rcfg.Shards = shardRefs
	rcfg.Universe = Universe()
	if rcfg.HealthInterval <= 0 {
		rcfg.HealthInterval = 25 * time.Millisecond
	}
	if rcfg.ProbeTimeout <= 0 {
		rcfg.ProbeTimeout = 500 * time.Millisecond
	}
	if rcfg.RetryWait <= 0 {
		rcfg.RetryWait = 25 * time.Millisecond
	}
	if rcfg.RetryBudget <= 0 {
		rcfg.RetryBudget = 10
	}
	rcfg.ProbeTransport = c.faults
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.Router = rt

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.routerLn = ln
	c.routerSrv = &http.Server{Handler: rt}
	go c.routerSrv.Serve(ln)
	c.RouterURL = "http://" + ln.Addr().String()

	deadline := time.Now().Add(10 * time.Second)
	for rt.AliveShards() < opts.Shards {
		if time.Now().After(deadline) {
			c.Stop()
			return nil, fmt.Errorf("clustertest: %d/%d shards alive after 10s", rt.AliveShards(), opts.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c, nil
}

// start binds the slot's listener (a fixed addr on restart, any port on
// first bind) and begins serving a fresh server.Server.
func (s *shardSlot) start(cfg server.Config, addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// A restart re-binds the port the killed listener just released; retry
	// briefly to ride out the OS-level release.
	for tries := 0; ; tries++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if tries >= 100 {
			return fmt.Errorf("clustertest: shard %d could not bind %s: %w", s.idx, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cfg.ShardID = "shard-" + strconv.Itoa(s.idx)
	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)

	s.mu.Lock()
	s.srv, s.httpSrv, s.ln = srv, httpSrv, ln
	s.addr = ln.Addr().String()
	s.running = true
	s.mu.Unlock()
	return nil
}

// ShardURL returns shard i's base URL (stable across restarts).
func (c *Cluster) ShardURL(i int) string { return "http://" + c.shards[i].addr }

// KillShard abruptly terminates shard i: the listener and every open
// connection close immediately, with no drain — the in-process equivalent
// of SIGKILL. In-flight requests on that shard surface as transport errors
// to the router, which retries them elsewhere.
func (c *Cluster) KillShard(i int) {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.httpSrv.Close()
	s.running = false
}

// RestartShard brings a killed shard back on the same address with a fresh
// server (empty caches — a restarted process remembers nothing), then kicks
// the router's probe so rejoin is immediate.
func (c *Cluster) RestartShard(i int) error {
	s := c.shards[i]
	s.mu.Lock()
	running := s.running
	addr := s.addr
	s.mu.Unlock()
	if running {
		return fmt.Errorf("clustertest: shard %d is already running", i)
	}
	if err := s.start(c.opts.ShardConfig, addr); err != nil {
		return err
	}
	if c.opts.Preload {
		s.srv.Preload()
	}
	c.Router.KickProbe(i)
	return nil
}

// DrainShard gracefully drains shard i: health flips to draining (the
// router routes around it), in-flight requests and queued micro-batches
// finish, then the listener closes. Returns once the drain completes.
func (c *Cluster) DrainShard(i int, grace time.Duration) error {
	s := c.shards[i]
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return nil
	}
	srv, httpSrv := s.srv, s.httpSrv
	s.running = false
	s.mu.Unlock()

	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := httpSrv.Shutdown(ctx)
	srv.Drain()
	return err
}

// DropProbes makes shard i's health probes fail at the transport (a dead
// health port on an otherwise-serving shard).
func (c *Cluster) DropProbes(i int, drop bool) {
	c.faults.modeFor(c.shards[i].addr).drop.Store(drop)
}

// SlowProbes delays shard i's health probes by d (0 restores normal
// probing). Delays beyond the router's probe timeout read as failures.
func (c *Cluster) SlowProbes(i int, d time.Duration) {
	c.faults.modeFor(c.shards[i].addr).delay.Store(int64(d))
}

// WaitAlive blocks until exactly n shards are routable or the timeout
// expires.
func (c *Cluster) WaitAlive(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.Router.AliveShards() == n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("clustertest: %d shards alive, want %d", c.Router.AliveShards(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Stop tears the whole cluster down: router first (drains in-flight
// proxies), then every still-running shard, gracefully.
func (c *Cluster) Stop() {
	if c.Router != nil {
		c.Router.BeginShutdown()
	}
	if c.routerSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		c.routerSrv.Shutdown(ctx)
		cancel()
	}
	if c.Router != nil {
		c.Router.Drain()
	}
	for _, s := range c.shards {
		s.mu.Lock()
		running := s.running
		srv, httpSrv := s.srv, s.httpSrv
		s.running = false
		s.mu.Unlock()
		if running {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			httpSrv.Shutdown(ctx)
			cancel()
			srv.Drain()
		}
	}
}
