package cluster

import (
	"reflect"
	"testing"

	"github.com/snails-bench/snails/internal/datasets"
)

func testUniverse() []string {
	return Universe(datasets.Names, WireVariants)
}

func shardNames(n int) []string {
	names := []string{"shard-0", "shard-1", "shard-2", "shard-3", "shard-4", "shard-5", "shard-6", "shard-7"}
	return names[:n]
}

func ringLoads(r *Ring, universe []string) []int {
	loads := make([]int, r.Shards())
	for _, k := range universe {
		loads[r.Shard(k)]++
	}
	return loads
}

// TestRingBalance: over the full benchmark (db, variant) universe, no shard
// may hold more than 15% above the even share — at any shard count the
// cluster benchmark uses.
func TestRingBalance(t *testing.T) {
	u := testUniverse()
	for _, n := range []int{1, 2, 3, 4} {
		r := NewRing(shardNames(n), u)
		even := float64(len(u)) / float64(n)
		for i, load := range ringLoads(r, u) {
			if float64(load) > even*1.15 {
				t.Errorf("%d shards: shard %d holds %d keys, > 15%% over even share %.1f", n, i, load, even)
			}
		}
	}
}

// TestRingFailoverMovement: when a shard dies, the router does not rebuild
// the ring — it walks Ranking(key) past the dead shard. So exactly the dead
// shard's keys move (at most ceil(|universe|/N) ≤ "1/N of keys"), and every
// key owned by a surviving shard stays put.
func TestRingFailoverMovement(t *testing.T) {
	u := testUniverse()
	const n = 4
	r := NewRing(shardNames(n), u)
	bound := (len(u) + n - 1) / n

	for dead := 0; dead < n; dead++ {
		moved := 0
		for _, k := range u {
			owner := r.Shard(k)
			failover := ownerAvoiding(r, k, dead)
			if owner != dead {
				if failover != owner {
					t.Fatalf("key %q owned by live shard %d moved to %d when shard %d died", k, owner, failover, dead)
				}
				continue
			}
			if failover == dead {
				t.Fatalf("key %q still routed to dead shard %d", k, dead)
			}
			moved++
		}
		if moved > bound {
			t.Errorf("shard %d leaving moved %d keys, want <= ceil(%d/%d) = %d", dead, moved, len(u), n, bound)
		}
	}
}

// ownerAvoiding is the router's failover rule: the first shard in the key's
// ranking that is not down.
func ownerAvoiding(r *Ring, key string, dead int) int {
	for _, s := range r.Ranking(key) {
		if s != dead {
			return s
		}
	}
	return dead
}

// TestRingDeterministicPlacement: two rings built from the same topology —
// a router before and after a restart — place every key identically, even
// when the universe arrives in a different order.
func TestRingDeterministicPlacement(t *testing.T) {
	u := testUniverse()
	reversed := make([]string, len(u))
	for i, k := range u {
		reversed[len(u)-1-i] = k
	}
	a := NewRing(shardNames(4), u)
	b := NewRing(shardNames(4), u)
	c := NewRing(shardNames(4), reversed)
	probe := append(append([]string(nil), u...), Key("ADHOC", "native"), Key("", ""), Key("NOPE", "x"))
	for _, k := range probe {
		if a.Shard(k) != b.Shard(k) || a.Shard(k) != c.Shard(k) {
			t.Fatalf("key %q placement differs across identical topologies: %d / %d / %d",
				k, a.Shard(k), b.Shard(k), c.Shard(k))
		}
		if !reflect.DeepEqual(a.Ranking(k), b.Ranking(k)) {
			t.Fatalf("key %q ranking differs across identical topologies", k)
		}
	}
}

// TestRingRankingShape: a ranking is a permutation of all shards with the
// owner first, so walking it visits every possible failover target exactly
// once.
func TestRingRankingShape(t *testing.T) {
	u := testUniverse()
	r := NewRing(shardNames(4), u)
	probe := append(append([]string(nil), u...), Key("ADHOC", "regular"))
	for _, k := range probe {
		rank := r.Ranking(k)
		if len(rank) != r.Shards() {
			t.Fatalf("key %q ranking has %d entries, want %d", k, len(rank), r.Shards())
		}
		if rank[0] != r.Shard(k) {
			t.Fatalf("key %q ranking starts at %d, owner is %d", k, rank[0], r.Shard(k))
		}
		seen := make([]bool, r.Shards())
		for _, s := range rank {
			if s < 0 || s >= r.Shards() || seen[s] {
				t.Fatalf("key %q ranking %v is not a permutation", k, rank)
			}
			seen[s] = true
		}
	}
}

// TestUniverseShape: the universe enumerates every (db, variant) pair plus
// the empty-db key per variant, so db-less traffic is pre-balanced too.
func TestUniverseShape(t *testing.T) {
	u := testUniverse()
	want := (len(datasets.Names) + 1) * len(WireVariants)
	if len(u) != want {
		t.Fatalf("universe has %d keys, want %d", len(u), want)
	}
	seen := map[string]bool{}
	for _, k := range u {
		if seen[k] {
			t.Fatalf("universe has duplicate key %q", k)
		}
		seen[k] = true
	}
	for _, v := range WireVariants {
		if !seen[Key("", v)] {
			t.Errorf("universe missing empty-db key for variant %q", v)
		}
		for _, db := range datasets.Names {
			if !seen[Key(db, v)] {
				t.Errorf("universe missing key for (%s, %q)", db, v)
			}
		}
	}
}

// TestRingUnknownKeyFallback: keys outside the universe still place
// deterministically via pure rendezvous hashing.
func TestRingUnknownKeyFallback(t *testing.T) {
	r := NewRing(shardNames(4), testUniverse())
	for _, k := range []string{Key("ADHOC", "native"), Key("ZZZ", ""), "free-form"} {
		s := r.Shard(k)
		if s < 0 || s >= r.Shards() {
			t.Fatalf("unknown key %q placed on invalid shard %d", k, s)
		}
		if again := r.Shard(k); again != s {
			t.Fatalf("unknown key %q placement unstable: %d then %d", k, s, again)
		}
	}
}
