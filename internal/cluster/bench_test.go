package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchWriter is a minimal ResponseWriter so the benchmark measures the
// router's relay path, not recorder machinery.
type benchWriter struct {
	h http.Header
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(int)             {}

type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// BenchmarkRelay measures one proxied request end to end against a stub
// shard on loopback: pooled body read, ring lookup, forward, and the pooled
// streaming relay back. Its allocs/op budget is gated in scripts/check.sh,
// so a regression that re-buffers request or response bodies fails CI.
func BenchmarkRelay(b *testing.B) {
	shardResp := []byte(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":1,"sql":"SELECT 1"}` + "\n")
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		w.Header().Set("Content-Type", "application/json")
		w.Write(shardResp)
	}))
	defer stub.Close()

	rt, err := NewRouter(Config{
		Shards:      []Shard{{Name: "s1", Base: stub.URL}},
		Universe:    DefaultUniverse(),
		TraceBuffer: -1, // isolate the relay path from trace-collector allocations
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	deadline := time.Now().Add(10 * time.Second)
	for rt.AliveShards() < 1 {
		if time.Now().After(deadline) {
			b.Fatal("stub shard never came alive")
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := []byte(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":1}`)
	br := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", nil)
	w := &benchWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(body)
		req.Body = replayBody{br}
		for k := range w.h {
			delete(w.h, k)
		}
		rt.ServeHTTP(w, req)
	}
}
