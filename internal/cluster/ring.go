// Package cluster is the shard-per-database serving topology: a stateless
// router consistent-hashes (db, variant) request keys onto N snailsd worker
// shards, each owning its databases, memo caches, and gold-result caches.
// Shards are shared-nothing — no cross-process locks appear on the request
// hot path — and every shard computes the same deterministic answers, so a
// cluster's responses are byte-identical to a single process serving the
// same stream (the determinism guarantee every benchmark gate depends on).
//
// The package splits into the placement ring (ring.go), the proxying router
// with retry-on-shard-restart (router.go), and per-shard health probing with
// backoff (health.go). The in-process test rig lives in the clustertest
// subpackage.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/snails-bench/snails/internal/datasets"
)

// WireVariants are the schema-variant spellings the API accepts on the
// wire; the placement universe enumerates them (plus the empty default) so
// every well-formed request maps to a pre-balanced ring slot.
var WireVariants = []string{"", "native", "regular", "low", "least"}

// DefaultUniverse is the placement-key universe over the built-in benchmark
// databases — what snailsd -cluster and the test rig hand to NewRing.
func DefaultUniverse() []string {
	return Universe(datasets.Names, WireVariants)
}

// Key canonicalizes a request's addressing fields into a placement key.
// Every request with the same (db, variant) lands on the same shard, so that
// shard's response cache, gold-result cache, and interned schema slabs stay
// hot for exactly its key subset.
func Key(db, variant string) string { return db + "\x00" + variant }

// capacityFor is the per-shard key budget: the ceiling of the even share.
// Tight capacity bounds skew at ceil(avg)/avg — a few percent over the
// benchmark universe, well inside the 15% budget the placement tests
// enforce — and caps how many keys a dying shard can strand on failover at
// ceil(|universe|/N), which is what keeps movement within the 1/N bound.
func capacityFor(keys, shards int) int {
	if shards <= 0 {
		return keys
	}
	c := (keys + shards - 1) / shards
	if c < 1 {
		c = 1
	}
	return c
}

// Ring places keys on shards. Placement is two-tier:
//
//   - the known key universe (every benchmark (db, variant) pair) is
//     assigned up front by rendezvous hashing with bounded loads: keys are
//     processed in sorted order and each takes its highest-scoring shard
//     that still has capacity, so distribution is balanced by construction;
//   - unknown keys (ad-hoc databases, empty addressing fields) fall back to
//     pure rendezvous hashing, which needs no coordination and is stable
//     under shard-set changes.
//
// Both tiers are deterministic functions of (shard names, universe), so two
// routers built from the same topology — or one router before and after a
// restart — place every key identically.
type Ring struct {
	shards   []string
	assigned map[string]int
}

// NewRing builds the placement for the given shard names over the known key
// universe. Shard order is significant only for index numbering; placement
// depends on the names themselves.
func NewRing(shards []string, universe []string) *Ring {
	if len(shards) == 0 {
		panic("cluster: NewRing needs at least one shard")
	}
	r := &Ring{shards: append([]string(nil), shards...), assigned: make(map[string]int, len(universe))}
	keys := append([]string(nil), universe...)
	sort.Strings(keys)
	cap := capacityFor(len(keys), len(shards))
	load := make([]int, len(shards))
	for _, k := range keys {
		if _, dup := r.assigned[k]; dup {
			continue
		}
		placed := -1
		for _, s := range r.ranking(k) {
			if load[s] < cap {
				placed = s
				break
			}
		}
		if placed < 0 {
			// Every shard is at capacity (only possible when the universe has
			// duplicates slipped past dedup); fall back to the top choice.
			placed = r.ranking(k)[0]
		}
		load[placed]++
		r.assigned[k] = placed
	}
	return r
}

// Shards reports the shard count.
func (r *Ring) Shards() int { return len(r.shards) }

// Shard returns the owning shard index for a key: the balanced assignment
// for universe keys, the rendezvous winner otherwise.
func (r *Ring) Shard(key string) int {
	if s, ok := r.assigned[key]; ok {
		return s
	}
	return r.ranking(key)[0]
}

// Ranking returns every shard ordered by preference for the key: the owner
// first, then the remaining shards in rendezvous-score order. The router
// walks this order when the owner is unhealthy (request re-hash) — the
// failover target is as deterministic as the primary placement.
func (r *Ring) Ranking(key string) []int {
	rank := r.ranking(key)
	owner := r.Shard(key)
	if rank[0] == owner {
		return rank
	}
	out := make([]int, 0, len(rank))
	out = append(out, owner)
	for _, s := range rank {
		if s != owner {
			out = append(out, s)
		}
	}
	return out
}

// ranking orders shards by descending rendezvous score for the key, with
// the shard name as a deterministic tiebreak.
func (r *Ring) ranking(key string) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ss := make([]scored, len(r.shards))
	for i, name := range r.shards {
		ss[i] = scored{idx: i, score: rendezvousScore(name, key)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return r.shards[ss[a].idx] < r.shards[ss[b].idx]
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// rendezvousScore is the highest-random-weight hash of (shard, key).
func rendezvousScore(shard, key string) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, shard)
	h.Write([]byte{0})
	fmt.Fprint(h, key)
	return h.Sum64()
}

// Universe enumerates the benchmark key universe for a database list: every
// (db, variant) pair across the four schema naturalness variants, plus the
// empty-db key each variant's db-less traffic (ad-hoc classify/modify/link)
// hashes to.
func Universe(dbs []string, variants []string) []string {
	out := make([]string, 0, (len(dbs)+1)*len(variants))
	for _, v := range variants {
		out = append(out, Key("", v))
		for _, db := range dbs {
			out = append(out, Key(db, v))
		}
	}
	return out
}
