package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// shardState is the router's view of one worker shard: its address, its
// probed liveness, and the counters the aggregated metrics expose. The
// router reads alive on every request; only the health loop (and the
// fast-path mark-down on a transport error) writes it.
type shardState struct {
	name string
	base string // http://host:port, no trailing slash

	alive    atomic.Bool
	draining atomic.Bool // shard answered healthz 503/"draining"
	pid      atomic.Int64

	probes   atomic.Uint64
	failures atomic.Uint64
	requests atomic.Uint64 // proxied requests answered by this shard
	retries  atomic.Uint64 // attempts moved off this shard mid-request

	// kick wakes the health loop for an immediate re-probe (a transport
	// error is stronger evidence than waiting out the probe interval).
	kick chan struct{}

	lastErrMu sync.Mutex
	lastErr   string
}

func newShardState(name, base string) *shardState {
	return &shardState{name: name, base: base, kick: make(chan struct{}, 1)}
}

func (s *shardState) setErr(err error) {
	s.lastErrMu.Lock()
	if err == nil {
		s.lastErr = ""
	} else {
		s.lastErr = err.Error()
	}
	s.lastErrMu.Unlock()
}

func (s *shardState) lastError() string {
	s.lastErrMu.Lock()
	defer s.lastErrMu.Unlock()
	return s.lastErr
}

// markDown records a request-path transport failure: the shard is routed
// around immediately and the health loop re-probes without waiting out its
// interval.
func (s *shardState) markDown(err error) {
	s.alive.Store(false)
	s.setErr(err)
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// ShardHealth is one shard's row in the router's /healthz and /metricsz
// documents.
type ShardHealth struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining,omitempty"`
	Pid      int    `json:"pid,omitempty"`
	Probes   uint64 `json:"probes"`
	Failures uint64 `json:"probe_failures"`
	Requests uint64 `json:"requests"`
	Retries  uint64 `json:"retries"`
	LastErr  string `json:"last_error,omitempty"`
}

func (s *shardState) health() ShardHealth {
	return ShardHealth{
		Name:     s.name,
		Addr:     s.base,
		Alive:    s.alive.Load(),
		Draining: s.draining.Load(),
		Pid:      int(s.pid.Load()),
		Probes:   s.probes.Load(),
		Failures: s.failures.Load(),
		Requests: s.requests.Load(),
		Retries:  s.retries.Load(),
		LastErr:  s.lastError(),
	}
}

// healthLoop probes one shard's /healthz until stop closes. A healthy shard
// is probed every interval; failures back off exponentially (capped at
// 8×interval) so a dead shard is not hammered, and a kick — sent when the
// request path sees a transport error, or right after a supervised restart —
// short-circuits the wait for fast rejoin.
func (rt *Router) healthLoop(s *shardState, stop <-chan struct{}) {
	defer rt.loops.Done()
	interval := rt.cfg.HealthInterval
	backoff := interval
	timer := time.NewTimer(0) // first probe immediately
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		case <-s.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		wasAlive := s.alive.Load()
		err := rt.probe(s)
		if err == nil {
			s.alive.Store(true)
			s.setErr(nil)
			backoff = interval
			if !wasAlive {
				rt.logger.Info("shard rejoined", slog.String("shard", s.name), slog.String("addr", s.base))
			}
			timer.Reset(interval)
			continue
		}
		s.failures.Add(1)
		s.alive.Store(false)
		s.setErr(err)
		if wasAlive {
			rt.logger.Warn("shard unhealthy", slog.String("shard", s.name),
				slog.String("addr", s.base), slog.String("err", err.Error()))
		}
		timer.Reset(backoff)
		if backoff < 8*interval {
			backoff *= 2
		}
	}
}

// probe performs one /healthz round trip under the probe timeout. A shard
// that answers anything but 200 (a draining shard answers 503) counts as
// not routable; draining is recorded separately so operators can tell a
// clean drain from a crash.
func (rt *Router) probe(s *shardState) error {
	s.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		s.draining.Store(false)
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		s.draining.Store(resp.StatusCode == http.StatusServiceUnavailable)
		return fmt.Errorf("healthz answered HTTP %d", resp.StatusCode)
	}
	s.draining.Store(false)
	return nil
}
