package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/obs"
	"github.com/snails-bench/snails/internal/server"
	"github.com/snails-bench/snails/internal/trace"
)

// Shard names one worker process the router can forward to.
type Shard struct {
	Name string // stable identity (ring placement hashes this)
	Base string // base URL, e.g. http://127.0.0.1:9001
}

// Config parameterizes a Router. The zero value of every optional field is
// production-ready.
type Config struct {
	// Shards is the worker set; at least one is required.
	Shards []Shard
	// Universe is the known placement-key set (cluster.Universe of the
	// benchmark databases); it seeds the balanced ring assignment.
	Universe []string
	// HealthInterval spaces /healthz probes per shard (default 250ms);
	// probe failures back off exponentially to 8× this.
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe round trip (default 1s).
	ProbeTimeout time.Duration
	// RetryBudget caps forwarding attempts per request (default 8). A
	// transport failure marks the shard down and re-hashes the request to
	// the next shard in the key's ranking; when no shard is routable the
	// router waits RetryWait between attempts, so the budget also bounds
	// how long a request rides out a full restart.
	RetryBudget int
	// RetryWait is the pause before re-attempting when no shard is
	// routable (default 250ms).
	RetryWait time.Duration
	// MaxBodyBytes caps proxied request bodies (default 1 MiB, matching the
	// shard servers).
	MaxBodyBytes int64
	// RelayMax caps the shard fan-out of the aggregation endpoints
	// (/metricsz, /metrics, /debugz/traces) when the inbound request carries
	// no tighter bound of its own (default 5s). A client deadline — the
	// request context's, or an explicit DeadlineHeader budget — below the
	// cap wins, so a client that can only wait 150ms gets its 504 in 150ms,
	// not after the relay cap.
	RelayMax time.Duration
	// Transport overrides the forwarding transport (tests inject faults).
	Transport http.RoundTripper
	// ProbeTransport overrides the health-probe transport independently of
	// the request path, so probe faults (slow, dropped) can be injected
	// without touching live traffic.
	ProbeTransport http.RoundTripper
	// TraceBuffer bounds the router's own ring of finished request traces
	// (route/relay/failover spans), mirroring the shard servers' semantics:
	// 0 means the default (256), negative disables router-side tracing.
	// Requests still propagate any inbound X-Snails-Trace header to shards
	// when disabled; the router just records no spans of its own.
	TraceBuffer int
	// Logger receives router logs; defaults to slog.Default(). It is wrapped
	// in the obs context middleware, so relay warnings and shard health
	// transitions carry request-scoped attributes (trace_id, shard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.RetryWait <= 0 {
		c.RetryWait = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RelayMax <= 0 {
		c.RelayMax = 5 * time.Second
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	return c
}

// DeadlineHeader carries a client's remaining time budget, in integer
// milliseconds, into the router's aggregation endpoints. net/http does not
// propagate a client's own timeout across the wire — the server-side request
// context only cancels on disconnect — so without the header the router
// would fan out under the full RelayMax even when the client gave up long
// ago. Absent, unparsable, or non-positive values fall back to RelayMax.
const DeadlineHeader = "X-Snails-Deadline-Ms"

// relayContext bounds an aggregation handler's shard fan-out: the inbound
// request context (which may already carry a deadline), tightened by the
// DeadlineHeader budget when present, capped at RelayMax either way.
func (rt *Router) relayContext(r *http.Request) (context.Context, context.CancelFunc) {
	bound := rt.cfg.RelayMax
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < bound {
				bound = d
			}
		}
	}
	// WithTimeout keeps any earlier parent deadline, so a short client
	// deadline on the request context wins over the cap automatically.
	return context.WithTimeout(r.Context(), bound)
}

// Router is the cluster front end: an http.Handler that owns no benchmark
// state at all — every answer is computed by a shard — so it can be
// restarted, scaled, or replicated freely. Placement is the deterministic
// ring; liveness is the probed shard set; the proxy path buffers each
// request body once and replays it across retries.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shardState
	logger *slog.Logger

	client      *http.Client
	probeClient *http.Client

	reg    *obs.Registry
	traces *trace.Collector // nil when router-side tracing is disabled

	requests   atomic.Uint64 // proxied API requests
	retried    atomic.Uint64 // forwarding attempts beyond each request's first
	unroutable atomic.Uint64 // requests that exhausted the retry budget

	mux      *http.ServeMux
	draining chan struct{}
	drainOne sync.Once
	inflight sync.WaitGroup

	stop    chan struct{}
	stopOne sync.Once
	loops   sync.WaitGroup
}

// NewRouter builds a Router and starts its health loops. Call Close (or
// Drain) to stop them.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	names := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		names[i] = s.Name
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(names, cfg.Universe),
		logger:   cfg.Logger,
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	rt.logger = obs.ContextLogger(cfg.Logger)
	if cfg.TraceBuffer > 0 {
		rt.traces = trace.NewCollector(cfg.TraceBuffer)
		rt.traces.SetProcess("router")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = defaultTransport()
	}
	probeTransport := cfg.ProbeTransport
	if probeTransport == nil {
		probeTransport = transport
	}
	rt.client = &http.Client{Transport: transport}
	rt.probeClient = &http.Client{Transport: probeTransport}

	for _, s := range cfg.Shards {
		rt.shards = append(rt.shards, newShardState(s.Name, strings.TrimRight(s.Base, "/")))
	}
	rt.registerMetrics()

	rt.mux.HandleFunc("/v1/", rt.handleProxy)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metricsz", rt.handleMetricsz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/debugz/traces", rt.handleTraces)

	for _, s := range rt.shards {
		rt.loops.Add(1)
		go rt.healthLoop(s, rt.stop)
	}
	return rt, nil
}

// defaultTransport is tuned for many small loopback round trips: connection
// reuse matters more than per-host idle caps.
func defaultTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 128
	t.IdleConnTimeout = 30 * time.Second
	return t
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// SetPID records a locally-spawned shard's process id; it surfaces in
// /healthz and /metricsz so tooling (the check.sh kill smoke) can target a
// specific worker process.
func (rt *Router) SetPID(i, pid int) {
	if i >= 0 && i < len(rt.shards) {
		rt.shards[i].pid.Store(int64(pid))
	}
}

// KickProbe short-circuits a shard's probe wait (the supervisor calls this
// right after respawning a worker, so rejoin is bounded by probe latency,
// not the backed-off interval).
func (rt *Router) KickProbe(i int) {
	if i >= 0 && i < len(rt.shards) {
		select {
		case rt.shards[i].kick <- struct{}{}:
		default:
		}
	}
}

// ShardHealths snapshots every shard's router-side state.
func (rt *Router) ShardHealths() []ShardHealth {
	out := make([]ShardHealth, len(rt.shards))
	for i, s := range rt.shards {
		out[i] = s.health()
	}
	return out
}

// AliveShards counts currently-routable shards.
func (rt *Router) AliveShards() int {
	n := 0
	for _, s := range rt.shards {
		if s.alive.Load() && !s.draining.Load() {
			n++
		}
	}
	return n
}

// BeginShutdown flips /healthz to draining and rejects new proxied requests
// with 503, so load balancers rotate the router out while in-flight
// requests finish.
func (rt *Router) BeginShutdown() {
	rt.drainOne.Do(func() { close(rt.draining) })
}

// Drain waits for in-flight proxied requests, then stops the health loops.
// The shards themselves are drained by whoever owns their processes.
func (rt *Router) Drain() {
	rt.BeginShutdown()
	rt.inflight.Wait()
	rt.Close()
}

// Close stops the health loops without touching in-flight requests.
func (rt *Router) Close() {
	rt.stopOne.Do(func() { close(rt.stop) })
	rt.loops.Wait()
}

func (rt *Router) isDraining() bool {
	select {
	case <-rt.draining:
		return true
	default:
		return false
	}
}

// routeKey extracts the placement key from a request body. Bodies that do
// not parse still route (deterministically, on the empty key); the shard
// owns rejecting them, so the router stays byte-identical to a single
// process on every input.
func routeKey(body []byte) string {
	var probe struct {
		DB      string `json:"db"`
		Variant string `json:"variant"`
	}
	_ = json.Unmarshal(body, &probe)
	return Key(probe.DB, probe.Variant)
}

// pickShard returns the first routable shard in the key's ranking, or -1.
func (rt *Router) pickShard(ranking []int, tried []bool) int {
	for _, i := range ranking {
		if tried != nil && tried[i] {
			continue
		}
		s := rt.shards[i]
		if s.alive.Load() && !s.draining.Load() {
			return i
		}
	}
	return -1
}

// handleProxy forwards one API request to its shard, re-hashing to the next
// shard in the ranking on transport failure and riding out full outages
// (every shard down, e.g. mid-restart) with bounded waits. Responses are
// streamed back unmodified except for the X-Snails-Shard header, so cluster
// bodies stay byte-identical to single-process ones.
//
// Each relayed request runs under a root trace: a route span around the ring
// lookup, one relay_attempt span per forward (tagged shard#attempt), and a
// failover_wait span per no-shard-routable pause. The trace's wire ID — the
// inbound X-Snails-Trace header when present, freshly minted otherwise — is
// injected into every shard attempt, so the shard's own trace adopts it and
// /debugz/traces?id= on the router stitches both sides into one tree.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	if rt.isDraining() {
		rt.writeError(w, http.StatusServiceUnavailable, "draining", "router is shutting down")
		return
	}
	rt.inflight.Add(1)
	defer rt.inflight.Done()

	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "%s requires POST", r.URL.Path)
		return
	}
	// The body lives in a pooled buffer for the whole relay (routeKey reads
	// it, each forward attempt replays it); no per-request ReadAll allocation.
	// The buffer returns to the pool when the handler exits, after the last
	// replay is done with its bytes.
	bb := bodyBufPool.Get().(*bytes.Buffer)
	bb.Reset()
	defer bodyBufPool.Put(bb)
	_, err := bb.ReadFrom(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		rt.writeError(w, http.StatusBadRequest, "bad_body", "reading request body: %v", err)
		return
	}
	body := bb.Bytes()

	// Adopt a propagated wire ID or mint a fresh one; either way the ID is
	// injected into every shard attempt so both sides stitch. With router
	// tracing disabled (nil collector) tr is nil and the recording calls
	// no-op, but an inbound header still propagates.
	wireID, _ := trace.Extract(r.Header)
	tr := rt.traces.StartRemote(r.URL.Path, wireID)
	tid := wireID
	if tr != nil {
		tid = tr.TraceID
	}
	defer rt.traces.Finish(tr)
	logCtx := r.Context()
	if tid != 0 {
		logCtx = obs.ContextAttrs(logCtx, slog.String("trace_id", trace.FormatID(tid)))
	}

	routeStart := tr.Now()
	ranking := rt.ring.Ranking(routeKey(body))
	tr.Span(trace.StageRoute, routeStart)
	// tried marks shards that failed THIS request at transport level; the
	// set resets each wait round so a restarted shard is retried.
	tried := make([]bool, len(rt.shards))
	attempts := 0
	relayAttempt := 0
	var lastErr error
	for attempts < rt.cfg.RetryBudget {
		if err := r.Context().Err(); err != nil {
			rt.writeCtxError(w, err)
			return
		}
		idx := rt.pickShard(ranking, tried)
		if idx < 0 {
			// Nothing routable right now. Wait out a restart (bounded by the
			// remaining budget) rather than failing instantly.
			attempts++
			for i := range tried {
				tried[i] = false
			}
			waitStart := tr.Now()
			select {
			case <-r.Context().Done():
				rt.writeCtxError(w, r.Context().Err())
				return
			case <-time.After(rt.cfg.RetryWait):
			}
			tr.Span(trace.StageFailover, waitStart)
			continue
		}
		attempts++
		if attempts > 1 {
			rt.retried.Add(1)
			rt.shards[idx].retries.Add(1)
		}
		attemptStart := tr.Now()
		resp, err := rt.forward(r, idx, body, tid)
		tr.SpanTag(trace.StageRelay, attemptStart, rt.shards[idx].name+"#"+strconv.Itoa(relayAttempt))
		relayAttempt++
		if err != nil {
			if r.Context().Err() != nil {
				rt.writeCtxError(w, r.Context().Err())
				return
			}
			tried[idx] = true
			rt.shards[idx].markDown(err)
			rt.logger.WarnContext(logCtx, "relay attempt failed",
				slog.String("shard", rt.shards[idx].name),
				slog.Int("attempt", relayAttempt-1),
				slog.String("err", err.Error()))
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The shard is draining or saturated; both are transient, so the
			// budget retries elsewhere (or later) instead of surfacing 503.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			tried[idx] = true
			lastErr = fmt.Errorf("shard %s answered 503", rt.shards[idx].name)
			continue
		}
		rt.relay(w, resp, idx)
		return
	}
	rt.unroutable.Add(1)
	msg := "no shard available within the retry budget"
	if lastErr != nil {
		msg = fmt.Sprintf("%s (last error: %v)", msg, lastErr)
	}
	rt.logger.WarnContext(logCtx, "request unroutable",
		slog.String("path", r.URL.Path), slog.Int("attempts", attempts))
	rt.writeError(w, http.StatusBadGateway, "no_shard", "%s", msg)
}

// forward performs one attempt against one shard, carrying the request's
// wire trace ID so the shard's trace adopts it.
func (rt *Router) forward(r *http.Request, idx int, body []byte, traceID uint64) (*http.Response, error) {
	s := rt.shards[idx]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, s.base+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	trace.Inject(req.Header, traceID)
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	s.requests.Add(1)
	return resp, nil
}

// bodyBufPool holds proxied request bodies; they are read once and replayed
// per forward attempt, so one pooled buffer serves the request end to end.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// copyBufPool holds the 32 KiB scratch buffers relay streams shard bodies
// through, replacing io.Copy's per-call allocation.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// writerOnly hides http.ResponseWriter's optional ReadFrom so io.CopyBuffer
// actually uses the pooled buffer instead of delegating to the writer (which
// would allocate its own).
type writerOnly struct{ io.Writer }

// relay streams a shard response to the client, tagging which shard served
// it. The shard's Content-Length (when known) passes through so the client
// connection avoids chunked framing, and the body is copied through a pooled
// buffer — the shard's bytes are never re-buffered in the router. A body
// read error mid-copy cannot be retried (the status line is already out), so
// it just truncates — the client sees a short read.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, idx int) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Snails-Shard", rt.shards[idx].name)
	if w.Header().Get("Content-Length") == "" && resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	bp := copyBufPool.Get().(*[]byte)
	io.CopyBuffer(writerOnly{w}, resp.Body, *bp)
	copyBufPool.Put(bp)
}

// ClusterHealth is the router's /healthz document.
type ClusterHealth struct {
	Status string        `json:"status"` // "ok" | "degraded" | "down" | "draining"
	Shards []ShardHealth `json:"shards"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	alive := rt.AliveShards()
	doc := ClusterHealth{Shards: rt.ShardHealths()}
	status := http.StatusOK
	switch {
	case rt.isDraining():
		doc.Status = "draining"
		status = http.StatusServiceUnavailable
	case alive == len(rt.shards):
		doc.Status = "ok"
	case alive > 0:
		doc.Status = "degraded"
	default:
		doc.Status = "down"
		status = http.StatusServiceUnavailable
	}
	rt.writeDoc(w, status, doc)
}

// RouterStats is the router's own counter block inside /metricsz.
type RouterStats struct {
	RequestsTotal   uint64 `json:"requests_total"`
	RetriesTotal    uint64 `json:"retries_total"`
	UnroutableTotal uint64 `json:"unroutable_total"`
	AliveShards     int    `json:"alive_shards"`
	Shards          int    `json:"shards"`
}

// ClusterMetricsz aggregates shard /metricsz snapshots. The embedded
// MetricsSnapshot sums counters across shards (so existing consumers — the
// loadgen, dashboards — read a cluster exactly like a single process), and
// the shard and router blocks carry the per-shard breakdown.
type ClusterMetricsz struct {
	server.MetricsSnapshot
	Router      RouterStats   `json:"router"`
	ShardHealth []ShardHealth `json:"shard_health"`
}

// shardSnapshots fetches /metricsz from every alive shard concurrently.
func (rt *Router) shardSnapshots(ctx context.Context) []server.MetricsSnapshot {
	out := make([]*server.MetricsSnapshot, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		if !s.alive.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, s *shardState) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/metricsz", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return
			}
			var snap server.MetricsSnapshot
			if json.NewDecoder(resp.Body).Decode(&snap) == nil {
				out[i] = &snap
			}
		}(i, s)
	}
	wg.Wait()
	snaps := make([]server.MetricsSnapshot, 0, len(out))
	for _, s := range out {
		if s != nil {
			snaps = append(snaps, *s)
		}
	}
	return snaps
}

func (rt *Router) routerStats() RouterStats {
	return RouterStats{
		RequestsTotal:   rt.requests.Load(),
		RetriesTotal:    rt.retried.Load(),
		UnroutableTotal: rt.unroutable.Load(),
		AliveShards:     rt.AliveShards(),
		Shards:          len(rt.shards),
	}
}

func (rt *Router) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := rt.relayContext(r)
	defer cancel()
	snaps := rt.shardSnapshots(ctx)
	// A fan-out cut short by the deadline has incomplete sums; a timeout is
	// honest where a silently partial aggregate is not.
	if err := ctx.Err(); err != nil {
		rt.writeCtxError(w, err)
		return
	}
	doc := ClusterMetricsz{
		MetricsSnapshot: server.MergeSnapshots(snaps),
		Router:          rt.routerStats(),
		ShardHealth:     rt.ShardHealths(),
	}
	rt.writeDoc(w, http.StatusOK, doc)
}

// handleMetrics serves the aggregated Prometheus exposition: the router's
// own families first, then every alive shard's scrape re-labeled with
// shard="<name>" so per-shard series stay distinguishable.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		rt.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "/metrics requires GET")
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if r.Method == http.MethodHead {
		return
	}
	var buf bytes.Buffer
	rt.reg.WriteText(&buf)

	ctx, cancel := rt.relayContext(r)
	defer cancel()
	sources := make([]obs.Exposition, 0, len(rt.shards))
	for _, s := range rt.shards {
		if !s.alive.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		text, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		sources = append(sources, obs.Exposition{Value: s.name, Text: text})
	}
	if err := ctx.Err(); err != nil {
		rt.writeCtxError(w, err)
		return
	}
	w.Write(buf.Bytes())
	obs.MergeExpositions(w, "shard", sources)
}

// handleTraces fans /debugz/traces out to every alive shard and
// concatenates the buffered traces in shard order. 404 means tracing is off
// everywhere (every shard AND the router).
//
// With ?id=<16 hex digits> the response is one stitched trace: the router's
// own views for that wire ID first (root spans — route, relay attempts,
// failover waits), then each shard's views carrying the same ID (the six
// pipeline stages), merged purely by trace ID. Span offsets stay relative to
// each process's own clock; grouping, not clock alignment, is the contract.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	var lookupID uint64
	lookupRaw := r.URL.Query().Get("id")
	if lookupRaw != "" {
		id, ok := trace.ParseID(lookupRaw)
		if !ok {
			rt.writeError(w, http.StatusBadRequest, "bad_id",
				"id must be 16 lowercase hex digits (a wire trace id)")
			return
		}
		lookupID = id
	}
	ctx, cancel := rt.relayContext(r)
	defer cancel()
	merged := server.TracesResponse{}
	found := rt.traces != nil
	var shardViews []trace.View
	for _, s := range rt.shards {
		if !s.alive.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/debugz/traces?"+r.URL.RawQuery, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var tr server.TracesResponse
			if json.NewDecoder(resp.Body).Decode(&tr) == nil {
				shardViews = append(shardViews, tr.Traces...)
				merged.Slowest = tr.Slowest
				found = true
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
	}
	// Distinguish "ran out of time" from "no process has tracing on": a
	// deadline cut means the 404 below would lie.
	if err := ctx.Err(); err != nil {
		rt.writeCtxError(w, err)
		return
	}
	if !found {
		rt.writeError(w, http.StatusNotFound, "tracing_disabled", "tracing is disabled cluster-wide")
		return
	}
	if lookupID != 0 {
		// Stitch: router root views first, then shard views (already filtered
		// by the shards' own ?id= handling).
		merged.Traces = append(rt.traces.Find(lookupID), shardViews...)
		merged.TraceID = lookupRaw
	} else {
		// The browse stream carries the router's own views too (leniently
		// honoring the same n/slowest knobs the shards validate), so a single
		// pull sees both sides of every recent request — the loadgen's
		// router-overhead attribution groups them by trace_id.
		q := r.URL.Query()
		n := 0
		if parsed, err := strconv.Atoi(q.Get("n")); err == nil && parsed > 0 {
			n = parsed
		}
		slowest := q.Get("slowest") == "1" || q.Get("slowest") == "true"
		merged.Traces = append(rt.traces.Snapshot(n, slowest), shardViews...)
	}
	if merged.Traces == nil {
		merged.Traces = []trace.View{}
	}
	rt.writeDoc(w, http.StatusOK, merged)
}

// registerMetrics builds the router's own Prometheus families.
func (rt *Router) registerMetrics() {
	r := obs.NewRegistry()
	rt.reg = r
	r.CounterFunc("snails_router_requests_total", "API requests received by the cluster router.",
		func() float64 { return float64(rt.requests.Load()) })
	r.CounterFunc("snails_router_retries_total", "Forwarding attempts beyond each request's first.",
		func() float64 { return float64(rt.retried.Load()) })
	r.CounterFunc("snails_router_unroutable_total", "Requests that exhausted the retry budget.",
		func() float64 { return float64(rt.unroutable.Load()) })
	shardUp := make([]obs.Series, len(rt.shards))
	shardReq := make([]obs.Series, len(rt.shards))
	for i, s := range rt.shards {
		s := s
		label := []obs.Label{{Name: "shard", Value: s.name}}
		shardUp[i] = obs.Series{Labels: label, F: func() float64 {
			if s.alive.Load() {
				return 1
			}
			return 0
		}}
		shardReq[i] = obs.Series{Labels: label, F: func() float64 { return float64(s.requests.Load()) }}
	}
	r.GaugeSeries("snails_router_shard_up", "Shard routability as probed (1 alive, 0 down).", shardUp...)
	r.CounterSeries("snails_router_shard_requests_total", "Requests answered per shard.", shardReq...)
	r.CounterFunc("snails_trace_spans_dropped_total",
		"Spans dropped process-wide because a trace's span slab was full.",
		func() float64 { return float64(trace.SpansDropped()) })
	r.RegisterRuntime()
}

func (rt *Router) writeDoc(w http.ResponseWriter, status int, doc any) {
	body, err := json.Marshal(doc)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encode_failed", "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError mirrors the shard servers' uniform error body shape.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	body, _ := json.Marshal(struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{code, fmt.Sprintf(format, args...)}})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func (rt *Router) writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		rt.writeError(w, http.StatusGatewayTimeout, "timeout", "request deadline exceeded")
		return
	}
	rt.writeError(w, 499, "canceled", "client canceled the request")
}
