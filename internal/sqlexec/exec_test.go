package sqlexec

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/snails-bench/snails/internal/sqldb"
)

// testDB builds a small wildlife-observation database.
func testDB() *sqldb.DB {
	db := sqldb.NewDB("test")
	sp := db.CreateTable("species", []string{"species_id", "name", "kind"})
	sp.MustInsert(sqldb.Int(1), sqldb.String("gray wolf"), sqldb.String("mammal"))
	sp.MustInsert(sqldb.Int(2), sqldb.String("bald eagle"), sqldb.String("bird"))
	sp.MustInsert(sqldb.Int(3), sqldb.String("gopher snake"), sqldb.String("reptile"))
	sp.MustInsert(sqldb.Int(4), sqldb.String("great owl"), sqldb.String("bird"))

	obs := db.CreateTable("observations", []string{"obs_id", "species_id", "obs_date", "count", "location"})
	obs.MustInsert(sqldb.Int(1), sqldb.Int(1), sqldb.String("2020-05-01"), sqldb.Int(2), sqldb.String("north"))
	obs.MustInsert(sqldb.Int(2), sqldb.Int(1), sqldb.String("2021-06-11"), sqldb.Int(1), sqldb.String("south"))
	obs.MustInsert(sqldb.Int(3), sqldb.Int(2), sqldb.String("2021-07-04"), sqldb.Int(5), sqldb.String("north"))
	obs.MustInsert(sqldb.Int(4), sqldb.Int(3), sqldb.String("2019-04-20"), sqldb.Int(1), sqldb.String("east"))
	obs.MustInsert(sqldb.Int(5), sqldb.Int(1), sqldb.String("2021-08-15"), sqldb.Int(4), sqldb.String("north"))
	return db
}

func mustExec(t *testing.T, db *sqldb.DB, sql string) *sqldb.Result {
	t.Helper()
	res, err := ExecuteSQL(db, sql)
	if err != nil {
		t.Fatalf("ExecuteSQL(%q): %v", sql, err)
	}
	return res
}

func TestSimpleScan(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT name FROM species")
	if res.NumRows() != 4 || res.NumCols() != 1 {
		t.Fatalf("got %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestSelectStar(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT * FROM species WHERE kind = 'bird'")
	if res.NumRows() != 2 || res.NumCols() != 3 {
		t.Fatalf("got %dx%d", res.NumRows(), res.NumCols())
	}
	if res.Columns[0] != "species_id" {
		t.Errorf("star should expand column names: %v", res.Columns)
	}
}

func TestWhereComparisons(t *testing.T) {
	db := testDB()
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT obs_id FROM observations WHERE count > 1", 3},
		{"SELECT obs_id FROM observations WHERE count >= 1", 5},
		{"SELECT obs_id FROM observations WHERE count = 1", 2},
		{"SELECT obs_id FROM observations WHERE count <> 1", 3},
		{"SELECT obs_id FROM observations WHERE count BETWEEN 2 AND 4", 2},
		{"SELECT obs_id FROM observations WHERE location IN ('north', 'east')", 4},
		{"SELECT obs_id FROM observations WHERE location NOT IN ('north')", 2},
		{"SELECT obs_id FROM observations WHERE NOT location = 'north'", 2},
		{"SELECT name FROM species WHERE name LIKE 'g%'", 3},
		{"SELECT name FROM species WHERE name LIKE '%owl%'", 1},
		{"SELECT name FROM species WHERE name LIKE '_ray wolf'", 1},
	}
	for _, c := range cases {
		res := mustExec(t, db, c.sql)
		if res.NumRows() != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, res.NumRows(), c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT s.name, o.count FROM observations o JOIN species s ON o.species_id = s.species_id WHERE s.kind = 'mammal'`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	for _, r := range res.Rows {
		if r[0].S != "gray wolf" {
			t.Errorf("unexpected joined name: %v", r)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	// great owl (id 4) has no observations -> null side preserved.
	res := mustExec(t, testDB(), `SELECT s.name, o.obs_id FROM species s LEFT JOIN observations o ON s.species_id = o.species_id WHERE o.obs_id IS NULL`)
	if res.NumRows() != 1 || res.Rows[0][0].S != "great owl" {
		t.Fatalf("left join anti pattern failed: %+v", res.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT location, COUNT(*) AS n, SUM(count) AS total FROM observations GROUP BY location ORDER BY n DESC`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	// north: 3 observations totalling 11.
	if res.Rows[0][0].S != "north" || res.Rows[0][1].I != 3 || res.Rows[0][2].I != 11 {
		t.Errorf("north group wrong: %v", res.Rows[0])
	}
}

func TestHaving(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT species_id, COUNT(*) AS n FROM observations GROUP BY species_id HAVING COUNT(*) > 1`)
	if res.NumRows() != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("having failed: %+v", res.Rows)
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT COUNT(*), MAX(count), MIN(count), AVG(count) FROM observations")
	if res.NumRows() != 1 {
		t.Fatalf("global agg rows = %d", res.NumRows())
	}
	r := res.Rows[0]
	if r[0].I != 5 || r[1].I != 5 || r[2].I != 1 {
		t.Errorf("agg values wrong: %v", r)
	}
	if avg, _ := r[3].AsFloat(); avg != 2.6 {
		t.Errorf("avg = %v", avg)
	}
}

func TestCountDistinct(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT COUNT(DISTINCT location) FROM observations")
	if res.Rows[0][0].I != 3 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT DISTINCT location FROM observations")
	if res.NumRows() != 3 {
		t.Errorf("distinct rows = %d", res.NumRows())
	}
}

func TestTopAndOrder(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT TOP 2 obs_id FROM observations ORDER BY count DESC")
	if res.NumRows() != 2 {
		t.Fatalf("top rows = %d", res.NumRows())
	}
	if res.Rows[0][0].I != 3 || res.Rows[1][0].I != 5 {
		t.Errorf("order/top wrong: %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT location, SUM(count) AS total FROM observations GROUP BY location ORDER BY total")
	// totals: south 1, east 1, north 11 — north must sort last.
	if res.Rows[2][0].S != "north" {
		t.Errorf("order by alias wrong: %v", res.Rows)
	}
	if res.Rows[0][1].I != 1 || res.Rows[1][1].I != 1 {
		t.Errorf("ascending order violated: %v", res.Rows)
	}
}

func TestExistsCorrelated(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT name FROM species sp WHERE EXISTS (SELECT obs_id FROM observations WHERE species_id = sp.species_id)`)
	if res.NumRows() != 3 {
		t.Fatalf("exists rows = %d: %v", res.NumRows(), res.Rows)
	}
	res = mustExec(t, testDB(), `SELECT name FROM species sp WHERE NOT EXISTS (SELECT obs_id FROM observations WHERE species_id = sp.species_id)`)
	if res.NumRows() != 1 || res.Rows[0][0].S != "great owl" {
		t.Fatalf("not exists wrong: %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT name FROM species WHERE species_id IN (SELECT species_id FROM observations WHERE location = 'north')`)
	if res.NumRows() != 2 {
		t.Fatalf("in-subquery rows = %d", res.NumRows())
	}
}

func TestScalarSubquery(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT name FROM species WHERE species_id = (SELECT MAX(species_id) FROM species)`)
	if res.NumRows() != 1 || res.Rows[0][0].S != "great owl" {
		t.Fatalf("scalar subquery wrong: %v", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT AVG(total) FROM (SELECT species_id, SUM(count) AS total FROM observations GROUP BY species_id) sub`)
	if res.NumRows() != 1 {
		t.Fatalf("derived table failed: %v", res.Rows)
	}
	// totals: wolf 7, eagle 5, snake 1 -> avg 13/3
	if avg, _ := res.Rows[0][0].AsFloat(); avg < 4.3 || avg > 4.4 {
		t.Errorf("avg = %v", avg)
	}
}

func TestYearFunction(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT obs_id FROM observations WHERE YEAR(obs_date) = 2021")
	if res.NumRows() != 3 {
		t.Errorf("year filter rows = %d", res.NumRows())
	}
	res = mustExec(t, testDB(), "SELECT MONTH(obs_date) FROM observations WHERE obs_id = 3")
	if res.Rows[0][0].I != 7 {
		t.Errorf("month = %v", res.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB()
	if r := mustExec(t, db, "SELECT UPPER(name) FROM species WHERE species_id = 1"); r.Rows[0][0].S != "GRAY WOLF" {
		t.Errorf("upper = %v", r.Rows[0][0])
	}
	if r := mustExec(t, db, "SELECT LEN(name) FROM species WHERE species_id = 1"); r.Rows[0][0].I != 9 {
		t.Errorf("len = %v", r.Rows[0][0])
	}
	if r := mustExec(t, db, "SELECT ROUND(AVG(count), 1) FROM observations"); r.Rows[0][0].F != 2.6 {
		t.Errorf("round(avg) = %v", r.Rows[0][0])
	}
	if r := mustExec(t, db, "SELECT ABS(0 - 3) FROM species WHERE species_id = 1"); r.Rows[0][0].I != 3 {
		t.Errorf("abs = %v", r.Rows[0][0])
	}
}

func TestCaseExpression(t *testing.T) {
	res := mustExec(t, testDB(), `SELECT name, CASE WHEN kind = 'bird' THEN 'flies' ELSE 'walks' END AS mode FROM species ORDER BY name`)
	for _, r := range res.Rows {
		want := "walks"
		if strings.Contains(r[0].S, "eagle") || strings.Contains(r[0].S, "owl") {
			want = "flies"
		}
		if r[1].S != want {
			t.Errorf("case wrong for %v: %v", r[0], r[1])
		}
	}
}

func TestArithmetic(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT count * 2 + 1 FROM observations WHERE obs_id = 1")
	if res.Rows[0][0].I != 5 {
		t.Errorf("arithmetic = %v", res.Rows[0][0])
	}
	res = mustExec(t, testDB(), "SELECT 7 / 2 FROM species WHERE species_id = 1")
	if res.Rows[0][0].I != 3 {
		t.Errorf("int division = %v", res.Rows[0][0])
	}
	res = mustExec(t, testDB(), "SELECT 7.0 / 2 FROM species WHERE species_id = 1")
	if res.Rows[0][0].F != 3.5 {
		t.Errorf("float division = %v", res.Rows[0][0])
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT 1 / 0 FROM species WHERE species_id = 1")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("division by zero should be NULL, got %v", res.Rows[0][0])
	}
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	db := testDB()
	if _, err := ExecuteSQL(db, "SELECT x FROM nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := ExecuteSQL(db, "SELECT bogus_col FROM species"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := ExecuteSQL(db, "not sql at all"); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestCompositeKeyJoin(t *testing.T) {
	db := sqldb.NewDB("ck")
	a := db.CreateTable("crash", []string{"caseno", "psu", "severity"})
	a.MustInsert(sqldb.Int(1), sqldb.Int(10), sqldb.String("minor"))
	a.MustInsert(sqldb.Int(1), sqldb.Int(20), sqldb.String("major"))
	b := db.CreateTable("vehicle", []string{"caseno", "psu", "make"})
	b.MustInsert(sqldb.Int(1), sqldb.Int(10), sqldb.String("ford"))
	b.MustInsert(sqldb.Int(1), sqldb.Int(20), sqldb.String("kia"))
	res := mustExec(t, db, `SELECT c.severity, v.make FROM crash c JOIN vehicle v ON c.caseno = v.caseno AND c.psu = v.psu`)
	if res.NumRows() != 2 {
		t.Fatalf("composite join rows = %d", res.NumRows())
	}
}

func TestCountStarEqualsRowCountProperty(t *testing.T) {
	// Property: COUNT(*) with a threshold filter equals the number of rows
	// the same filter returns.
	db := testDB()
	f := func(threshold int8) bool {
		where := " WHERE count >= " + sqldb.Int(int64(threshold)).String()
		if threshold < 0 {
			where = ""
		}
		cnt, err := ExecuteSQL(db, "SELECT COUNT(*) FROM observations"+where)
		if err != nil {
			return false
		}
		rows, err := ExecuteSQL(db, "SELECT obs_id FROM observations"+where)
		if err != nil {
			return false
		}
		return cnt.Rows[0][0].I == int64(rows.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrderByPositional(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT name FROM species ORDER BY 1")
	if res.Rows[0][0].S != "bald eagle" {
		t.Errorf("positional order by wrong: %v", res.Rows)
	}
}

func TestAggregateWithoutGroupOnEmptyFilter(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT COUNT(*) FROM observations WHERE count > 100")
	if res.NumRows() != 1 || res.Rows[0][0].I != 0 {
		t.Errorf("empty aggregate should return single zero row: %v", res.Rows)
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	db := testDB()
	res := mustExec(t, db, "SELECT SUM(count) + 1 FROM observations")
	if res.Rows[0][0].I != 14 {
		t.Errorf("SUM+1 = %v, want 14", res.Rows[0][0])
	}
	res = mustExec(t, db, "SELECT location FROM observations GROUP BY location HAVING SUM(count) > 10")
	if res.NumRows() != 1 || res.Rows[0][0].S != "north" {
		t.Errorf("HAVING SUM wrong: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT MAX(count) - MIN(count) FROM observations")
	if res.Rows[0][0].I != 4 {
		t.Errorf("MAX-MIN = %v", res.Rows[0][0])
	}
}

func TestAggregateOutsideGroupErrors(t *testing.T) {
	if _, err := ExecuteSQL(testDB(), "SELECT obs_id FROM observations WHERE SUM(count) > 3"); err == nil {
		t.Error("aggregate in WHERE should error")
	}
}

func TestStringConcatenation(t *testing.T) {
	res := mustExec(t, testDB(), "SELECT name + '!' FROM species WHERE species_id = 1")
	if res.Rows[0][0].S != "gray wolf!" {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}
