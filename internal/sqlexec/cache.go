package sqlexec

import (
	"fmt"
	"strings"
	"sync"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// dbCache holds per-database derived state: parsed view ASTs, materialized
// view results, correlation verdicts, and uncorrelated-subquery results.
// A cache is valid for exactly one database generation (sqldb.DB.Generation);
// any catalog or data mutation strands the old cache and the next execution
// starts a fresh one. Benchmark databases are immutable after load, so in
// steady state every view/subquery executes once per database.
//
// Subquery maps are keyed by *sqlparse.Select pointer: the prediction
// pipeline parses each (db, sql) pair once and re-executes the same AST, so
// pointer identity is a stable, collision-free key.
type dbCache struct {
	gen uint64
	mu  sync.RWMutex

	viewAST map[string]*viewASTEntry
	viewRes map[string]*viewResEntry
	corr    map[*sqlparse.Select]bool
	subq    map[*sqlparse.Select]*subqEntry
}

type viewASTEntry struct {
	sel *sqlparse.Select
	err error
}

type viewResEntry struct {
	res *sqldb.Result
	err error
}

// subqEntry caches one uncorrelated subquery's result. The IN-probe hash
// set over the first output column is built lazily on first IN use.
type subqEntry struct {
	res   *sqldb.Result
	once  sync.Once
	set   map[string]struct{}
	setOK bool
}

// inSet returns the equality-key set of the first column's non-null values.
// usable is false when a member is NaN, whose equality class (equal to every
// numeric under sqldb.Compare) no key can encode; callers then scan linearly.
func (e *subqEntry) inSet() (map[string]struct{}, bool) {
	e.once.Do(func() {
		set := make(map[string]struct{}, len(e.res.Rows))
		var kb []byte
		for _, row := range e.res.Rows {
			if len(row) == 0 || row[0].IsNull() {
				continue
			}
			var ok bool
			kb, ok = sqldb.AppendEqKey(kb[:0], row[0])
			if !ok {
				return // NaN member: leave setOK false
			}
			set[string(kb)] = struct{}{}
		}
		e.set, e.setOK = set, true
	})
	return e.set, e.setOK
}

// dbCaches maps *sqldb.DB to its current *dbCache. Entries are replaced
// (not mutated) when the database generation moves; a losing racer merely
// duplicates work into a cache that is then dropped.
var dbCaches sync.Map

func cacheFor(db *sqldb.DB) *dbCache {
	gen := db.Generation()
	if v, ok := dbCaches.Load(db); ok {
		if c := v.(*dbCache); c.gen == gen {
			return c
		}
	}
	c := &dbCache{
		gen:     gen,
		viewAST: make(map[string]*viewASTEntry),
		viewRes: make(map[string]*viewResEntry),
		corr:    make(map[*sqlparse.Select]bool),
		subq:    make(map[*sqlparse.Select]*subqEntry),
	}
	dbCaches.Store(db, c)
	return c
}

// viewSelect parses a view definition once per cache lifetime, caching the
// wrapped error alongside so failures are as cheap as successes.
func (c *dbCache) viewSelect(v sqldb.View) (*sqlparse.Select, error) {
	key := strings.ToUpper(v.Name)
	c.mu.RLock()
	a, ok := c.viewAST[key]
	c.mu.RUnlock()
	if ok {
		return a.sel, a.err
	}
	sel, err := sqlparse.Parse(v.SelectSQL)
	if err != nil {
		sel = nil
		err = fmt.Errorf("sqlexec: view %s has an invalid definition: %w", v.Name, err)
	}
	a = &viewASTEntry{sel: sel, err: err}
	c.mu.Lock()
	if exist, ok := c.viewAST[key]; ok {
		a = exist
	} else {
		c.viewAST[key] = a
	}
	c.mu.Unlock()
	return a.sel, a.err
}

// viewResult materializes a view once per cache lifetime.
func (c *dbCache) viewResult(v sqldb.View, ex *executor) (*sqldb.Result, error) {
	key := strings.ToUpper(v.Name)
	c.mu.RLock()
	r, ok := c.viewRes[key]
	c.mu.RUnlock()
	if ok {
		viewCacheHits.Add(1)
		return r.res, r.err
	}
	sel, err := c.viewSelect(v)
	if err != nil {
		r = &viewResEntry{err: err}
	} else {
		viewExecs.Add(1)
		res, err := ex.exec(sel, nil)
		if err != nil {
			r = &viewResEntry{err: fmt.Errorf("sqlexec: executing view %s: %w", v.Name, err)}
		} else {
			r = &viewResEntry{res: res}
		}
	}
	c.mu.Lock()
	if exist, ok := c.viewRes[key]; ok {
		r = exist // first writer wins; identical content either way
	} else {
		c.viewRes[key] = r
	}
	c.mu.Unlock()
	return r.res, r.err
}

func (c *dbCache) subqGet(sel *sqlparse.Select) *subqEntry {
	c.mu.RLock()
	e := c.subq[sel]
	c.mu.RUnlock()
	return e
}

// subqPut caches a successful subquery result (errors are never cached: the
// naive path re-executes and so must we, and failures are rare anyway).
func (c *dbCache) subqPut(sel *sqlparse.Select, res *sqldb.Result) *subqEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.subq[sel]; ok {
		return e
	}
	e := &subqEntry{res: res}
	c.subq[sel] = e
	return e
}

// uncorrelated reports whether sel's result is a function of the database
// alone — no reference anywhere inside it escapes its own scopes. Verdicts
// are cached by AST pointer; the analysis is purely static, so the verdict
// depends only on (sel, catalog), both fixed for a cache generation.
func (c *dbCache) uncorrelated(sel *sqlparse.Select, ex *executor) bool {
	c.mu.RLock()
	v, ok := c.corr[sel]
	c.mu.RUnlock()
	if ok {
		return v
	}
	u := ex.selfContained(sel, nil, 0)
	c.mu.Lock()
	c.corr[sel] = u
	c.mu.Unlock()
	return u
}

// --- static correlation analysis ---------------------------------------------

// The analysis mirrors env.lookup conservatively: a subquery is
// self-contained when every column reference it (transitively) contains
// statically resolves within the subquery's own source scopes. Anything
// uncertain — unknown tables, unresolvable columns, un-derivable column
// sets, excessive nesting — classifies as correlated, which only costs the
// cache, never correctness. Soundness direction: env.lookup searches inner
// scopes before outer ones, so a reference that statically resolves inside
// the subquery can never dynamically bind to an outer row.

// maxAnalysisDepth bounds recursion through nested subqueries and view
// definitions (views may reference views, or pathologically themselves).
const maxAnalysisDepth = 32

// sscope is one static scope level: the FROM sources of one SELECT.
type sscope struct {
	srcs []*ssrc
}

// ssrc is a statically known source: its qualifier names and column set
// (upper-cased, matching colIdx semantics).
type ssrc struct {
	name  string
	alias string
	cols  map[string]struct{}
}

func (s *ssrc) matches(q string) bool {
	if q == "" {
		return true
	}
	return strings.EqualFold(q, s.alias) || strings.EqualFold(q, s.name)
}

func resolveStatic(stack []*sscope, cr *sqlparse.ColRef) bool {
	up := strings.ToUpper(cr.Column)
	for _, sc := range stack {
		for _, s := range sc.srcs {
			if !s.matches(cr.Table) {
				continue
			}
			if _, ok := s.cols[up]; ok {
				return true
			}
		}
	}
	return false
}

// selfContained reports whether every reference inside sel resolves within
// sel's own scopes (own = enclosing scopes that still belong to the
// subquery under analysis, for nested levels).
func (ex *executor) selfContained(sel *sqlparse.Select, own []*sscope, depth int) bool {
	if sel == nil || depth > maxAnalysisDepth {
		return false
	}
	sc := &sscope{}
	stack := append([]*sscope{sc}, own...)
	if sel.From != nil {
		s, ok := ex.staticSource(sel.From, own, depth)
		if !ok {
			return false
		}
		sc.srcs = append(sc.srcs, s)
		for ji := range sel.Joins {
			s, ok := ex.staticSource(&sel.Joins[ji].Right, own, depth)
			if !ok {
				return false
			}
			sc.srcs = append(sc.srcs, s)
			// ON of join k sees sources 0..k: sc grows as we walk, matching
			// the runtime env.
			if !ex.exprSelfContained(sel.Joins[ji].On, stack, depth) {
				return false
			}
		}
	}
	for i := range sel.Items {
		if !ex.exprSelfContained(sel.Items[i].Expr, stack, depth) {
			return false
		}
	}
	if !ex.exprSelfContained(sel.Where, stack, depth) {
		return false
	}
	for _, g := range sel.GroupBy {
		if !ex.exprSelfContained(g, stack, depth) {
			return false
		}
	}
	if !ex.exprSelfContained(sel.Having, stack, depth) {
		return false
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may also target projection aliases; those references
		// fail static resolution and conservatively classify as correlated.
		if !ex.exprSelfContained(o.Expr, stack, depth) {
			return false
		}
	}
	return true
}

// staticSource derives the scope entry for one FROM/JOIN input.
func (ex *executor) staticSource(ref *sqlparse.TableRef, own []*sscope, depth int) (*ssrc, bool) {
	if ref.Subquery != nil {
		// A derived table must itself be self-contained: its outer scopes at
		// runtime are the analysis root's outer scopes (bindRef passes the
		// root's outer env, not the enclosing SELECT's sources).
		if !ex.selfContained(ref.Subquery, own, depth+1) {
			return nil, false
		}
		cols, ok := ex.staticColumns(ref.Subquery, depth+1)
		if !ok {
			return nil, false
		}
		return &ssrc{alias: ref.Alias, cols: cols}, true
	}
	if v, ok := ex.db.ViewLookup(ref.Schema, ref.Table); ok {
		// Views execute against a nil outer env, so their content is a
		// function of the database regardless of the referencing query;
		// only their column set matters here.
		cols, ok := ex.viewColumns(v, depth+1)
		if !ok {
			return nil, false
		}
		return &ssrc{name: ref.Table, alias: ref.Alias, cols: cols}, true
	}
	if ref.Schema != "" && !strings.EqualFold(ref.Schema, "dbo") {
		return nil, false
	}
	t, ok := ex.db.Table(ref.Table)
	if !ok {
		return nil, false
	}
	cols := make(map[string]struct{}, len(t.Columns))
	for _, c := range t.Columns {
		cols[strings.ToUpper(c)] = struct{}{}
	}
	return &ssrc{name: t.Name, alias: ref.Alias, cols: cols}, true
}

func (ex *executor) viewColumns(v sqldb.View, depth int) (map[string]struct{}, bool) {
	if ex.cache == nil {
		return nil, false
	}
	sel, err := ex.cache.viewSelect(v)
	if err != nil {
		return nil, false
	}
	return ex.staticColumns(sel, depth)
}

// staticColumns derives the output column-name set of a SELECT, mirroring
// projectionColumns. ok is false when the set cannot be derived (unknown
// sources under a *, nesting too deep).
func (ex *executor) staticColumns(sel *sqlparse.Select, depth int) (map[string]struct{}, bool) {
	if sel == nil || depth > maxAnalysisDepth {
		return nil, false
	}
	var srcs []*ssrc
	addRef := func(ref *sqlparse.TableRef) {
		if ref.Subquery != nil {
			if cols, ok := ex.staticColumns(ref.Subquery, depth+1); ok {
				srcs = append(srcs, &ssrc{alias: ref.Alias, cols: cols})
			} else {
				srcs = append(srcs, nil)
			}
			return
		}
		if v, ok := ex.db.ViewLookup(ref.Schema, ref.Table); ok {
			if cols, ok := ex.viewColumns(v, depth+1); ok {
				srcs = append(srcs, &ssrc{name: ref.Table, alias: ref.Alias, cols: cols})
			} else {
				srcs = append(srcs, nil)
			}
			return
		}
		if t, ok := ex.db.Table(ref.Table); ok && (ref.Schema == "" || strings.EqualFold(ref.Schema, "dbo")) {
			cols := make(map[string]struct{}, len(t.Columns))
			for _, c := range t.Columns {
				cols[strings.ToUpper(c)] = struct{}{}
			}
			srcs = append(srcs, &ssrc{name: t.Name, alias: ref.Alias, cols: cols})
			return
		}
		srcs = append(srcs, nil) // unknown source: only fatal under a *
	}
	if sel.From != nil {
		addRef(sel.From)
		for ji := range sel.Joins {
			addRef(&sel.Joins[ji].Right)
		}
	}
	out := make(map[string]struct{})
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Alias != "" {
			out[strings.ToUpper(item.Alias)] = struct{}{}
			continue
		}
		switch it := item.Expr.(type) {
		case *sqlparse.Star:
			for _, s := range srcs {
				if s == nil {
					if it.Table == "" {
						return nil, false
					}
					continue
				}
				if it.Table != "" && !s.matches(it.Table) {
					continue
				}
				for c := range s.cols {
					out[c] = struct{}{}
				}
			}
			// A qualified star over an unknown source expands to unknown
			// columns; reject to stay conservative.
			for _, s := range srcs {
				if s == nil && it.Table != "" {
					return nil, false
				}
			}
		case *sqlparse.ColRef:
			out[strings.ToUpper(it.Column)] = struct{}{}
		case *sqlparse.FuncCall:
			out[strings.ToUpper(it.Name)] = struct{}{}
		default:
			out[strings.ToUpper(fmt.Sprintf("expr%d", i+1))] = struct{}{}
		}
	}
	return out, true
}

// exprSelfContained walks an expression; nested subqueries extend the scope
// stack (anything inside the analysis root resolving to any root scope is
// still self-contained).
func (ex *executor) exprSelfContained(e sqlparse.Expr, stack []*sscope, depth int) bool {
	if e == nil {
		return true
	}
	ok := true
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *sqlparse.NumberLit, *sqlparse.StringLit, sqlparse.NullLit, *sqlparse.Star:
		case *sqlparse.ColRef:
			if !resolveStatic(stack, x) {
				ok = false
			}
		case *sqlparse.Paren:
			walk(x.Inner)
		case *sqlparse.Not:
			walk(x.Inner)
		case *sqlparse.IsNull:
			walk(x.Inner)
		case *sqlparse.Binary:
			walk(x.Left)
			walk(x.Right)
		case *sqlparse.Between:
			walk(x.Inner)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparse.InExpr:
			walk(x.Inner)
			for _, item := range x.List {
				walk(item)
			}
			if x.Subquery != nil && !ex.selfContained(x.Subquery, stack, depth+1) {
				ok = false
			}
		case *sqlparse.Exists:
			if !ex.selfContained(x.Subquery, stack, depth+1) {
				ok = false
			}
		case *sqlparse.SubqueryExpr:
			if !ex.selfContained(x.Subquery, stack, depth+1) {
				ok = false
			}
		case *sqlparse.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(x.Else)
		case *sqlparse.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		default:
			ok = false // unknown node: conservative
		}
	}
	walk(e)
	return ok
}
