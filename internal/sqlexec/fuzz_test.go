package sqlexec

import (
	"math"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// fuzzDB is the wildlife test database plus a view and a table holding the
// planner's hash-key edge values (NaN, NULL, -0.0, numeric strings).
func fuzzDB() *sqldb.DB {
	db := testDB()
	db.CreateView("bird_species", "SELECT species_id, name FROM species WHERE kind = 'bird'")
	e := db.CreateTable("edge", []string{"k", "tag"})
	e.MustInsert(sqldb.Float(1), sqldb.String("one"))
	e.MustInsert(sqldb.Float(math.NaN()), sqldb.String("nan"))
	e.MustInsert(sqldb.Null(), sqldb.String("null"))
	e.MustInsert(sqldb.Float(math.Copysign(0, -1)), sqldb.String("negzero"))
	e.MustInsert(sqldb.String("1"), sqldb.String("strone"))
	return db
}

// FuzzPlanExec differentially fuzzes the planner against the retained naive
// reference path: any parsed query must either fail on both engines or
// produce byte-identical results (columns, values, and value kinds).
func FuzzPlanExec(f *testing.F) {
	seeds := []string{
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id",
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id WHERE o.location = 'north'",
		"SELECT s.name, o.obs_id FROM observations o JOIN species s ON o.species_id = s.species_id AND o.count > 1 WHERE s.kind = 'bird'",
		"SELECT a.name FROM species a JOIN species b ON a.kind = b.kind WHERE a.species_id < b.species_id",
		"SELECT * FROM edge JOIN observations o ON edge.k = o.count",
		"SELECT * FROM edge a LEFT JOIN edge b ON a.k = b.k",
		"SELECT name FROM species WHERE species_id IN (SELECT species_id FROM observations WHERE count > 1)",
		"SELECT name FROM species s WHERE EXISTS (SELECT obs_id FROM observations o WHERE o.species_id = s.species_id)",
		"SELECT b.name, o.count FROM bird_species b JOIN observations o ON b.species_id = o.species_id",
		"SELECT s.kind, COUNT(*) FROM observations o JOIN species s ON o.species_id = s.species_id GROUP BY s.kind ORDER BY s.kind",
		"SELECT * FROM observations WHERE species_id = NULL",
		"SELECT TOP 3 * FROM (SELECT species_id, kind FROM species) d JOIN observations o ON d.species_id = o.species_id",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 200 {
			t.Skip()
		}
		// Bound the work per input: each SELECT keyword is one (sub)query,
		// and join fan-out is capped so the naive nested loops stay small.
		if strings.Count(strings.ToUpper(sql), "SELECT") > 3 {
			t.Skip()
		}
		sel, err := sqlparse.Parse(sql)
		if err != nil {
			t.Skip()
		}
		if len(sel.Joins) > 3 {
			t.Skip()
		}
		pres, perr := execSelect(db, sel, nil)
		nres, nerr := execSelectNaive(db, sel, nil)
		if (perr != nil) != (nerr != nil) {
			t.Fatalf("error mismatch for %q:\n  planner: %v\n  naive:   %v", sql, perr, nerr)
		}
		if perr != nil {
			return
		}
		if dp, dn := resultDigest(pres), resultDigest(nres); dp != dn {
			t.Fatalf("result mismatch for %q:\n  planner: %q\n  naive:   %q", sql, dp, dn)
		}
	})
}
