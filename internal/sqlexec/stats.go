package sqlexec

import "sync/atomic"

// Package-level execution counters. sqlexec sits below every caller (sweep
// workers, the serving batcher, CLI one-offs), so a process-wide tally is the
// natural grain; the metrics registry reads these through Stats() at scrape
// time rather than importing a metrics package here.
var (
	queries       atomic.Uint64 // top-level statements executed (incl. failures)
	parseFailures atomic.Uint64 // ExecuteSQL* calls whose SQL did not parse
	execFailures  atomic.Uint64 // parsed statements that failed during execution
	rowsReturned  atomic.Uint64 // result rows produced by successful statements
	viewExecs     atomic.Uint64 // view definitions actually executed
	viewCacheHits atomic.Uint64 // view references served from the per-DB cache
)

// ExecStats is a point-in-time snapshot of the package counters.
type ExecStats struct {
	Queries       uint64
	ParseFailures uint64
	ExecFailures  uint64
	RowsReturned  uint64
	ViewExecs     uint64
	ViewCacheHits uint64
}

// Stats returns the current counter values. The fields are read independently,
// so under concurrent load the snapshot is only approximately consistent —
// fine for monitoring, which is its only consumer.
func Stats() ExecStats {
	return ExecStats{
		Queries:       queries.Load(),
		ParseFailures: parseFailures.Load(),
		ExecFailures:  execFailures.Load(),
		RowsReturned:  rowsReturned.Load(),
		ViewExecs:     viewExecs.Load(),
		ViewCacheHits: viewCacheHits.Load(),
	}
}

// record tallies one top-level execution outcome given the produced row count
// (0 when the execution failed).
func record(rows int, err error) {
	queries.Add(1)
	if err != nil {
		execFailures.Add(1)
		return
	}
	rowsReturned.Add(uint64(rows))
}
