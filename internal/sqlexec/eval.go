package sqlexec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// aggContext provides aggregate evaluation over a group's rows.
type aggContext struct {
	ex    *executor
	rows  [][]sqldb.Value
	srcs  []*source
	outer *env
}

// eval evaluates a scalar (non-aggregate) expression in the row environment.
func (ex *executor) eval(e sqlparse.Expr, env *env) (sqldb.Value, error) {
	return ex.evalWith(e, env, nil)
}

// evalAgg evaluates an expression that may contain aggregate functions.
func (ex *executor) evalAgg(e sqlparse.Expr, env *env, agg *aggContext) (sqldb.Value, error) {
	return ex.evalWith(e, env, agg)
}

func (ex *executor) evalWith(e sqlparse.Expr, en *env, agg *aggContext) (sqldb.Value, error) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if strings.Contains(x.Text, ".") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return sqldb.Null(), fmt.Errorf("sqlexec: bad number %q", x.Text)
			}
			return sqldb.Float(f), nil
		}
		i, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("sqlexec: bad number %q", x.Text)
		}
		return sqldb.Int(i), nil
	case *sqlparse.StringLit:
		return sqldb.String(x.Value), nil
	case sqlparse.NullLit:
		return sqldb.Null(), nil
	case *sqlparse.ColRef:
		if v, ok := en.lookup(x.Table, x.Column); ok {
			return v, nil
		}
		return sqldb.Null(), fmt.Errorf("sqlexec: unknown column %q", colRefName(x))
	case *sqlparse.Paren:
		return ex.evalWith(x.Inner, en, agg)
	case *sqlparse.Binary:
		return ex.evalBinary(x, en, agg)
	case *sqlparse.Not:
		b, err := ex.evalBoolWith(x.Inner, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool(!b), nil
	case *sqlparse.IsNull:
		v, err := ex.evalWith(x.Inner, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return sqldb.Bool(res), nil
	case *sqlparse.Between:
		v, err := ex.evalWith(x.Inner, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		lo, err := ex.evalWith(x.Lo, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		hi, err := ex.evalWith(x.Hi, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqldb.Bool(false), nil
		}
		in := sqldb.Compare(v, lo) >= 0 && sqldb.Compare(v, hi) <= 0
		if x.Negate {
			in = !in
		}
		return sqldb.Bool(in), nil
	case *sqlparse.InExpr:
		return ex.evalIn(x, en, agg)
	case *sqlparse.Exists:
		res, _, err := ex.subquery(x.Subquery, en)
		if err != nil {
			return sqldb.Null(), err
		}
		found := !res.Empty()
		if x.Negate {
			found = !found
		}
		return sqldb.Bool(found), nil
	case *sqlparse.SubqueryExpr:
		res, _, err := ex.subquery(x.Subquery, en)
		if err != nil {
			return sqldb.Null(), err
		}
		if res.Empty() || res.NumCols() == 0 {
			return sqldb.Null(), nil
		}
		return res.Rows[0][0], nil
	case *sqlparse.CaseExpr:
		for _, w := range x.Whens {
			ok, err := ex.evalBoolWith(w.Cond, en, agg)
			if err != nil {
				return sqldb.Null(), err
			}
			if ok {
				return ex.evalWith(w.Then, en, agg)
			}
		}
		if x.Else != nil {
			return ex.evalWith(x.Else, en, agg)
		}
		return sqldb.Null(), nil
	case *sqlparse.FuncCall:
		if isAggregateFunc(x.Name) {
			if agg == nil {
				return sqldb.Null(), fmt.Errorf("sqlexec: aggregate %s outside grouped context", x.Name)
			}
			return ex.evalAggregate(x, agg)
		}
		return ex.evalScalarFunc(x, en, agg)
	case *sqlparse.Star:
		return sqldb.Null(), fmt.Errorf("sqlexec: * is not a scalar expression")
	default:
		return sqldb.Null(), fmt.Errorf("sqlexec: unsupported expression %T", e)
	}
}

func colRefName(x *sqlparse.ColRef) string {
	if x.Table != "" {
		return x.Table + "." + x.Column
	}
	return x.Column
}

func (ex *executor) evalBinary(x *sqlparse.Binary, en *env, agg *aggContext) (sqldb.Value, error) {
	switch x.Op {
	case "AND":
		l, err := ex.evalBoolWith(x.Left, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		if !l {
			return sqldb.Bool(false), nil
		}
		r, err := ex.evalBoolWith(x.Right, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool(r), nil
	case "OR":
		l, err := ex.evalBoolWith(x.Left, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		if l {
			return sqldb.Bool(true), nil
		}
		r, err := ex.evalBoolWith(x.Right, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool(r), nil
	}
	l, err := ex.evalWith(x.Left, en, agg)
	if err != nil {
		return sqldb.Null(), err
	}
	r, err := ex.evalWith(x.Right, en, agg)
	if err != nil {
		return sqldb.Null(), err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqldb.Bool(false), nil
		}
		cmp := sqldb.Compare(l, r)
		var res bool
		switch x.Op {
		case "=":
			res = cmp == 0
		case "<>":
			res = cmp != 0
		case "<":
			res = cmp < 0
		case "<=":
			res = cmp <= 0
		case ">":
			res = cmp > 0
		case ">=":
			res = cmp >= 0
		}
		return sqldb.Bool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqldb.Bool(false), nil
		}
		return sqldb.Bool(likeMatch(l.String(), r.String())), nil
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			if x.Op == "+" {
				// string concatenation fallback (T-SQL + on strings)
				return sqldb.String(l.String() + r.String()), nil
			}
			return sqldb.Null(), fmt.Errorf("sqlexec: non-numeric operands for %s", x.Op)
		}
		switch x.Op {
		case "+":
			return numeric(l, r, lf+rf), nil
		case "-":
			return numeric(l, r, lf-rf), nil
		case "*":
			return numeric(l, r, lf*rf), nil
		case "/":
			if rf == 0 {
				return sqldb.Null(), nil
			}
			if l.Kind == sqldb.KindInt && r.Kind == sqldb.KindInt {
				return sqldb.Int(l.I / r.I), nil
			}
			return sqldb.Float(lf / rf), nil
		default: // %
			if rf == 0 {
				return sqldb.Null(), nil
			}
			return sqldb.Int(int64(lf) % int64(rf)), nil
		}
	default:
		return sqldb.Null(), fmt.Errorf("sqlexec: unsupported operator %q", x.Op)
	}
}

// numeric keeps integer typing when both operands are integers.
func numeric(l, r sqldb.Value, f float64) sqldb.Value {
	if l.Kind == sqldb.KindInt && r.Kind == sqldb.KindInt {
		return sqldb.Int(int64(f))
	}
	return sqldb.Float(f)
}

func (ex *executor) evalIn(x *sqlparse.InExpr, en *env, agg *aggContext) (sqldb.Value, error) {
	v, err := ex.evalWith(x.Inner, en, agg)
	if err != nil {
		return sqldb.Null(), err
	}
	if v.IsNull() {
		return sqldb.Bool(false), nil
	}
	found := false
	if x.Subquery != nil {
		res, entry, err := ex.subquery(x.Subquery, en)
		if err != nil {
			return sqldb.Null(), err
		}
		probed := false
		if entry != nil {
			// Cached uncorrelated subquery: probe its hash set. Falls back
			// to the linear scan when the probe value or a member is NaN
			// (whose equality class no key can encode).
			if set, usable := entry.inSet(); usable {
				if kb, ok := sqldb.AppendEqKey(nil, v); ok {
					_, found = set[string(kb)]
					probed = true
				}
			}
		}
		if !probed {
			for _, row := range res.Rows {
				if len(row) > 0 && sqldb.Equal(v, row[0]) {
					found = true
					break
				}
			}
		}
	} else {
		for _, item := range x.List {
			iv, err := ex.evalWith(item, en, agg)
			if err != nil {
				return sqldb.Null(), err
			}
			if sqldb.Equal(v, iv) {
				found = true
				break
			}
		}
	}
	if x.Negate {
		found = !found
	}
	return sqldb.Bool(found), nil
}

func (ex *executor) evalBool(e sqlparse.Expr, en *env) (bool, error) {
	return ex.evalBoolWith(e, en, nil)
}

func (ex *executor) evalBoolAgg(e sqlparse.Expr, en *env, agg *aggContext) (bool, error) {
	return ex.evalBoolWith(e, en, agg)
}

func (ex *executor) evalBoolWith(e sqlparse.Expr, en *env, agg *aggContext) (bool, error) {
	v, err := ex.evalWith(e, en, agg)
	if err != nil {
		return false, err
	}
	switch v.Kind {
	case sqldb.KindBool:
		return v.B, nil
	case sqldb.KindNull:
		return false, nil
	default:
		f, ok := v.AsFloat()
		return ok && f != 0, nil
	}
}

// evalAggregate computes COUNT/SUM/AVG/MIN/MAX over the group rows.
func (ex *executor) evalAggregate(f *sqlparse.FuncCall, agg *aggContext) (sqldb.Value, error) {
	if f.Name == "COUNT" && f.Star {
		return sqldb.Int(int64(len(agg.rows))), nil
	}
	if len(f.Args) != 1 {
		return sqldb.Null(), fmt.Errorf("sqlexec: %s expects one argument", f.Name)
	}
	var vals []sqldb.Value
	seen := map[string]struct{}{}
	e := &env{sources: agg.srcs, outer: agg.outer}
	for _, r := range agg.rows {
		e.row = r
		v, err := agg.ex.eval(f.Args[0], e)
		if err != nil {
			return sqldb.Null(), err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := strings.ToUpper(v.String())
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return sqldb.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqldb.Null(), nil
		}
		var sum float64
		allInt := true
		for _, v := range vals {
			fv, ok := v.AsFloat()
			if !ok {
				return sqldb.Null(), fmt.Errorf("sqlexec: %s over non-numeric values", f.Name)
			}
			if v.Kind != sqldb.KindInt {
				allInt = false
			}
			sum += fv
		}
		if f.Name == "SUM" {
			if allInt {
				return sqldb.Int(int64(sum)), nil
			}
			return sqldb.Float(sum), nil
		}
		return sqldb.Float(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqldb.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := sqldb.Compare(v, best)
			if (f.Name == "MIN" && cmp < 0) || (f.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return sqldb.Null(), fmt.Errorf("sqlexec: unknown aggregate %s", f.Name)
	}
}

// evalScalarFunc computes non-aggregate functions.
func (ex *executor) evalScalarFunc(f *sqlparse.FuncCall, en *env, agg *aggContext) (sqldb.Value, error) {
	args := make([]sqldb.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ex.evalWith(a, en, agg)
		if err != nil {
			return sqldb.Null(), err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlexec: %s expects %d argument(s)", f.Name, n)
		}
		return nil
	}
	switch f.Name {
	case "YEAR", "MONTH", "DAY":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return datePart(f.Name, args[0].String())
	case "LEN":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Int(int64(len(args[0].String()))), nil
	case "ABS":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		fv, ok := args[0].AsFloat()
		if !ok {
			return sqldb.Null(), fmt.Errorf("sqlexec: ABS over non-numeric value")
		}
		if args[0].Kind == sqldb.KindInt {
			return sqldb.Int(int64(math.Abs(fv))), nil
		}
		return sqldb.Float(math.Abs(fv)), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return sqldb.Null(), fmt.Errorf("sqlexec: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		fv, ok := args[0].AsFloat()
		if !ok {
			return sqldb.Null(), fmt.Errorf("sqlexec: ROUND over non-numeric value")
		}
		places := 0.0
		if len(args) == 2 {
			places, _ = args[1].AsFloat()
		}
		scale := math.Pow(10, places)
		return sqldb.Float(math.Round(fv*scale) / scale), nil
	case "UPPER":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		return sqldb.String(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		return sqldb.String(strings.ToLower(args[0].String())), nil
	default:
		return sqldb.Null(), fmt.Errorf("sqlexec: unknown function %s", f.Name)
	}
}

// datePart extracts YEAR/MONTH/DAY from an ISO-8601 date string.
func datePart(part, s string) (sqldb.Value, error) {
	fields := strings.SplitN(strings.TrimSpace(s), "-", 3)
	idx := map[string]int{"YEAR": 0, "MONTH": 1, "DAY": 2}[part]
	if idx >= len(fields) {
		return sqldb.Null(), nil
	}
	digits := fields[idx]
	if i := strings.IndexAny(digits, " T"); i >= 0 {
		digits = digits[:i]
	}
	n, err := strconv.Atoi(digits)
	if err != nil {
		return sqldb.Null(), nil
	}
	return sqldb.Int(int64(n)), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToUpper(s), strings.ToUpper(pattern))
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}
