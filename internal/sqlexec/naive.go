package sqlexec

import (
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// naiveRows is the retained reference pipeline: bind each source as its
// join is reached, nested-loop every join evaluating the full ON expression
// per candidate pair, and apply WHERE only after full materialization. The
// planner's output must be byte-identical to this path (see property and
// fuzz tests); keep it dumb.
func (ex *executor) naiveRows(sel *sqlparse.Select, outer *env) ([][]sqldb.Value, []*source, error) {
	if sel.From == nil {
		// SELECT without FROM: a single empty row.
		return [][]sqldb.Value{{}}, nil, nil
	}
	base, rows, err := ex.bindRef(sel.From, outer)
	if err != nil {
		return nil, nil, err
	}
	srcs := []*source{base}
	width := base.width()
	for ji := range sel.Joins {
		j := &sel.Joins[ji]
		right, rightRows, err := ex.bindRef(&j.Right, outer)
		if err != nil {
			return nil, nil, err
		}
		right.off = width
		srcs = append(srcs, right)
		w := width + right.width()
		scratch := make([]sqldb.Value, w)
		e := &env{sources: srcs, row: scratch, outer: outer}
		var next [][]sqldb.Value
		for _, left := range rows {
			copy(scratch, left)
			matched := false
			for _, rr := range rightRows {
				copy(scratch[width:], rr)
				ok, err := ex.evalBool(j.On, e)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					matched = true
					nr := make([]sqldb.Value, w)
					copy(nr, scratch)
					next = append(next, nr)
				}
			}
			if !matched && j.Kind == sqlparse.JoinLeft {
				next = append(next, padRight(left, width, w))
			}
		}
		rows = next
		width = w
	}
	if sel.Where != nil {
		e := &env{sources: srcs, outer: outer}
		var kept [][]sqldb.Value
		for _, r := range rows {
			e.row = r
			ok, err := ex.evalBool(sel.Where, e)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	return rows, srcs, nil
}
