// Package sqlexec executes parsed SELECT statements against the in-memory
// sqldb engine. Together with sqlparse and sqldb it substitutes for the
// paper's MS SQL Server instances: gold and predicted queries are executed
// here and their result sets compared for execution accuracy.
package sqlexec

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/trace"
)

// Execute runs the statement against the database.
func Execute(db *sqldb.DB, sel *sqlparse.Select) (*sqldb.Result, error) {
	res, err := execSelect(db, sel, nil)
	record(rowCount(res), err)
	return res, err
}

// ExecuteCtx is Execute with trace propagation: when the context carries a
// trace.Trace the execution is recorded as a sql_exec span. Memoizing
// callers route through this so cache hits (which skip execution entirely)
// record no span.
func ExecuteCtx(ctx context.Context, db *sqldb.DB, sel *sqlparse.Select) (*sqldb.Result, error) {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	res, err := execSelect(db, sel, nil)
	tr.Span(trace.StageExec, t0)
	record(rowCount(res), err)
	return res, err
}

// ExecuteSQL parses and runs a SQL string.
func ExecuteSQL(db *sqldb.DB, query string) (*sqldb.Result, error) {
	return ExecuteSQLCtx(context.Background(), db, query)
}

// ExecuteSQLCtx parses and runs a SQL string, recording the execution (parse
// included — gold queries are parsed here, not in the prediction pipeline)
// as one sql_exec span when the context carries a trace.
func ExecuteSQLCtx(ctx context.Context, db *sqldb.DB, query string) (*sqldb.Result, error) {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	sel, err := sqlparse.Parse(query)
	if err != nil {
		tr.Span(trace.StageExec, t0)
		queries.Add(1)
		parseFailures.Add(1)
		return nil, err
	}
	res, err := execSelect(db, sel, nil)
	tr.Span(trace.StageExec, t0)
	record(rowCount(res), err)
	return res, err
}

func rowCount(res *sqldb.Result) int {
	if res == nil {
		return 0
	}
	return len(res.Rows)
}

// --- row environments ---------------------------------------------------------

// source is one bound FROM/JOIN input: a table or derived subquery with its
// current row.
type source struct {
	name    string // base table name ("" for derived)
	alias   string
	columns []string
	colIdx  map[string]int
	row     []sqldb.Value
}

func newSource(name, alias string, columns []string) *source {
	s := &source{name: name, alias: alias, columns: columns}
	s.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		s.colIdx[strings.ToUpper(c)] = i
	}
	return s
}

func (s *source) matchesQualifier(q string) bool {
	if q == "" {
		return true
	}
	return strings.EqualFold(q, s.alias) || strings.EqualFold(q, s.name)
}

// env is a chain of row environments; outer links support correlated
// subqueries.
type env struct {
	sources []*source
	outer   *env
}

func (e *env) lookup(qualifier, column string) (sqldb.Value, bool) {
	for cur := e; cur != nil; cur = cur.outer {
		for _, s := range cur.sources {
			if !s.matchesQualifier(qualifier) {
				continue
			}
			if i, ok := s.colIdx[strings.ToUpper(column)]; ok {
				return s.row[i], true
			}
		}
	}
	return sqldb.Null(), false
}

// --- execution ------------------------------------------------------------------

type executor struct {
	db *sqldb.DB
}

func execSelect(db *sqldb.DB, sel *sqlparse.Select, outer *env) (*sqldb.Result, error) {
	ex := &executor{db: db}
	rows, sources, err := ex.buildRows(sel, outer)
	if err != nil {
		return nil, err
	}
	// WHERE
	if sel.Where != nil {
		var kept [][]*source
		for _, r := range rows {
			e := &env{sources: r, outer: outer}
			ok, err := ex.evalBool(sel.Where, e)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if len(sel.GroupBy) > 0 || hasAggregate(sel) {
		return ex.execGrouped(sel, rows, sources, outer)
	}
	return ex.execPlain(sel, rows, sources, outer)
}

// buildRows materializes the FROM/JOIN row combinations. Each row is a slice
// of bound sources (one per table ref) whose row fields are set.
func (ex *executor) buildRows(sel *sqlparse.Select, outer *env) ([][]*source, []*source, error) {
	if sel.From == nil {
		// SELECT without FROM: a single empty row.
		return [][]*source{{}}, nil, nil
	}
	base, baseRows, err := ex.bindRef(sel.From, outer)
	if err != nil {
		return nil, nil, err
	}
	sources := []*source{base}
	rows := make([][]*source, 0, len(baseRows))
	for _, r := range baseRows {
		b := *base
		b.row = r
		rows = append(rows, []*source{&b})
	}
	for ji := range sel.Joins {
		j := &sel.Joins[ji]
		right, rightRows, err := ex.bindRef(&j.Right, outer)
		if err != nil {
			return nil, nil, err
		}
		sources = append(sources, right)
		var next [][]*source
		for _, left := range rows {
			matched := false
			for _, rr := range rightRows {
				rb := *right
				rb.row = rr
				combined := append(append([]*source{}, left...), &rb)
				e := &env{sources: combined, outer: outer}
				ok, err := ex.evalBool(j.On, e)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					matched = true
					next = append(next, combined)
				}
			}
			if !matched && j.Kind == sqlparse.JoinLeft {
				nullRight := *right
				nullRight.row = make([]sqldb.Value, len(right.columns))
				for i := range nullRight.row {
					nullRight.row[i] = sqldb.Null()
				}
				next = append(next, append(append([]*source{}, left...), &nullRight))
			}
		}
		rows = next
	}
	return rows, sources, nil
}

// bindRef resolves a table ref to a source template plus its rows. Views
// (qualified like db_nl.X or bare) resolve by executing their definition;
// the view name remains addressable as a qualifier inside the query.
func (ex *executor) bindRef(ref *sqlparse.TableRef, outer *env) (*source, [][]sqldb.Value, error) {
	if ref.Subquery != nil {
		res, err := execSelect(ex.db, ref.Subquery, outer)
		if err != nil {
			return nil, nil, err
		}
		s := newSource("", ref.Alias, res.Columns)
		return s, res.Rows, nil
	}
	if v, ok := ex.db.ViewLookup(ref.Schema, ref.Table); ok {
		sel, err := sqlparse.Parse(v.SelectSQL)
		if err != nil {
			return nil, nil, fmt.Errorf("sqlexec: view %s has an invalid definition: %w", v.Name, err)
		}
		res, err := execSelect(ex.db, sel, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("sqlexec: executing view %s: %w", v.Name, err)
		}
		s := newSource(ref.Table, ref.Alias, res.Columns)
		return s, res.Rows, nil
	}
	if ref.Schema != "" && !strings.EqualFold(ref.Schema, "dbo") {
		return nil, nil, fmt.Errorf("sqlexec: unknown relation %s.%s", ref.Schema, ref.Table)
	}
	t, ok := ex.db.Table(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sqlexec: unknown table %q", ref.Table)
	}
	s := newSource(t.Name, ref.Alias, t.Columns)
	return s, t.Rows, nil
}

// --- plain (ungrouped) projection ------------------------------------------------

func (ex *executor) execPlain(sel *sqlparse.Select, rows [][]*source, sources []*source, outer *env) (*sqldb.Result, error) {
	cols, err := projectionColumns(sel, sources)
	if err != nil {
		return nil, err
	}
	res := &sqldb.Result{Columns: cols}
	var ordered []projRow
	for _, r := range rows {
		e := &env{sources: r, outer: outer}
		out, err := ex.projectRow(sel, e, r)
		if err != nil {
			return nil, err
		}
		keys, err := ex.orderKeys(sel, e, cols, out, nil)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, projRow{out: out, keys: keys})
	}
	sortOrdered(sel, ordered)
	for _, r := range ordered {
		res.Rows = append(res.Rows, r.out)
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	applyTop(sel, res)
	return res, nil
}

func (ex *executor) projectRow(sel *sqlparse.Select, e *env, r []*source) ([]sqldb.Value, error) {
	var out []sqldb.Value
	for i := range sel.Items {
		switch it := sel.Items[i].Expr.(type) {
		case *sqlparse.Star:
			for _, s := range r {
				if it.Table != "" && !s.matchesQualifier(it.Table) {
					continue
				}
				out = append(out, s.row...)
			}
		default:
			v, err := ex.eval(sel.Items[i].Expr, e)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// --- grouped execution --------------------------------------------------------

type group struct {
	key  string
	rows [][]*source
}

func (ex *executor) execGrouped(sel *sqlparse.Select, rows [][]*source, sources []*source, outer *env) (*sqldb.Result, error) {
	cols, err := projectionColumns(sel, sources)
	if err != nil {
		return nil, err
	}
	var groups []*group
	if len(sel.GroupBy) == 0 {
		// Global aggregation: one group containing everything (even empty).
		groups = []*group{{rows: rows}}
	} else {
		byKey := map[string]*group{}
		var order []string
		for _, r := range rows {
			e := &env{sources: r, outer: outer}
			var kb strings.Builder
			for _, ge := range sel.GroupBy {
				v, err := ex.eval(ge, e)
				if err != nil {
					return nil, err
				}
				kb.WriteString(strings.ToUpper(v.String()))
				kb.WriteByte('\x1f')
			}
			k := kb.String()
			g, ok := byKey[k]
			if !ok {
				g = &group{key: k}
				byKey[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, r)
		}
		for _, k := range order {
			groups = append(groups, byKey[k])
		}
	}

	res := &sqldb.Result{Columns: cols}
	var ordered []projRow
	for _, g := range groups {
		var e *env
		if len(g.rows) > 0 {
			e = &env{sources: g.rows[0], outer: outer}
		} else {
			e = &env{outer: outer}
		}
		agg := &aggContext{ex: ex, rows: g.rows, outer: outer}
		if sel.Having != nil {
			ok, err := ex.evalBoolAgg(sel.Having, e, agg)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		var out []sqldb.Value
		for i := range sel.Items {
			v, err := ex.evalAgg(sel.Items[i].Expr, e, agg)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		keys, err := ex.orderKeys(sel, e, cols, out, agg)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, projRow{out: out, keys: keys})
	}
	sortOrdered(sel, ordered)
	for _, r := range ordered {
		res.Rows = append(res.Rows, r.out)
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	applyTop(sel, res)
	return res, nil
}

// projRow is a projected output row with its precomputed ORDER BY keys.
type projRow struct {
	out  []sqldb.Value
	keys []sqldb.Value
}

// sortOrdered sorts projected rows by their precomputed keys.
func sortOrdered(sel *sqlparse.Select, rows []projRow) {
	if len(sel.OrderBy) == 0 {
		return
	}
	stableSort(len(rows), func(a, b int) bool {
		return keyLess(sel, rows[a].keys, rows[b].keys)
	}, func(a, b int) {
		rows[a], rows[b] = rows[b], rows[a]
	})
}

func keyLess(sel *sqlparse.Select, a, b []sqldb.Value) bool {
	for i := range sel.OrderBy {
		cmp := sqldb.Compare(a[i], b[i])
		if sel.OrderBy[i].Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// stableSort is an insertion sort (stable, no reflect) adequate for result
// sizes in this benchmark.
func stableSort(n int, less func(a, b int) bool, swap func(a, b int)) {
	for i := 1; i < n; i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			swap(j, j-1)
		}
	}
}

// orderKeys computes the ORDER BY sort keys for one output row. Aliases and
// positional matches against select items resolve to the projected values.
func (ex *executor) orderKeys(sel *sqlparse.Select, e *env, cols []string, out []sqldb.Value, agg *aggContext) ([]sqldb.Value, error) {
	if len(sel.OrderBy) == 0 {
		return nil, nil
	}
	keys := make([]sqldb.Value, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		// Alias or projected column reference?
		if cr, ok := o.Expr.(*sqlparse.ColRef); ok && cr.Table == "" {
			if idx := columnIndexByName(cols, cr.Column); idx >= 0 && idx < len(out) {
				keys[i] = out[idx]
				continue
			}
		}
		// Positional ORDER BY (ORDER BY 1).
		if num, ok := o.Expr.(*sqlparse.NumberLit); ok {
			if pos, err := strconv.Atoi(num.Text); err == nil && pos >= 1 && pos <= len(out) {
				keys[i] = out[pos-1]
				continue
			}
		}
		var v sqldb.Value
		var err error
		if agg != nil {
			v, err = ex.evalAgg(o.Expr, e, agg)
		} else {
			v, err = ex.eval(o.Expr, e)
		}
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func columnIndexByName(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// projectionColumns derives output column names.
func projectionColumns(sel *sqlparse.Select, sources []*source) ([]string, error) {
	var cols []string
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Alias != "" {
			cols = append(cols, item.Alias)
			continue
		}
		switch it := item.Expr.(type) {
		case *sqlparse.Star:
			for _, s := range sources {
				if it.Table != "" && !s.matchesQualifier(it.Table) {
					continue
				}
				cols = append(cols, s.columns...)
			}
		case *sqlparse.ColRef:
			cols = append(cols, it.Column)
		case *sqlparse.FuncCall:
			cols = append(cols, strings.ToLower(it.Name))
		default:
			cols = append(cols, fmt.Sprintf("expr%d", i+1))
		}
	}
	return cols, nil
}

func distinctRows(rows [][]sqldb.Value) [][]sqldb.Value {
	seen := map[string]struct{}{}
	var out [][]sqldb.Value
	for _, r := range rows {
		var kb strings.Builder
		for _, v := range r {
			kb.WriteString(strings.ToUpper(v.String()))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

func applyTop(sel *sqlparse.Select, res *sqldb.Result) {
	if sel.Top > 0 && len(res.Rows) > sel.Top {
		res.Rows = res.Rows[:sel.Top]
	}
}

func hasAggregate(sel *sqlparse.Select) bool {
	agg := false
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch x := e.(type) {
		case *sqlparse.FuncCall:
			if isAggregateFunc(x.Name) {
				agg = true
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparse.Binary:
			walk(x.Left)
			walk(x.Right)
		case *sqlparse.Not:
			walk(x.Inner)
		case *sqlparse.Paren:
			walk(x.Inner)
		case *sqlparse.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	for i := range sel.Items {
		walk(sel.Items[i].Expr)
	}
	walk(sel.Having)
	return agg
}

func isAggregateFunc(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
