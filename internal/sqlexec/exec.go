// Package sqlexec executes parsed SELECT statements against the in-memory
// sqldb engine. Together with sqlparse and sqldb it substitutes for the
// paper's MS SQL Server instances: gold and predicted queries are executed
// here and their result sets compared for execution accuracy.
//
// Execution is planned: single-source WHERE/ON conjuncts are pushed into
// the scans, equi-join conjuncts drive hash joins, rows are flat value
// slices with per-source offsets, and view/subquery results are cached per
// database generation (see plan.go and cache.go). A reference nested-loop
// path (naive.go) is retained for differential testing; planner results
// are byte-identical to it by construction.
package sqlexec

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/trace"
)

// Execute runs the statement against the database.
func Execute(db *sqldb.DB, sel *sqlparse.Select) (*sqldb.Result, error) {
	res, err := execSelect(db, sel, nil)
	record(rowCount(res), err)
	return res, err
}

// ExecuteCtx is Execute with trace propagation: when the context carries a
// trace.Trace the execution is recorded as a sql_exec span. Memoizing
// callers route through this so cache hits (which skip execution entirely)
// record no span.
func ExecuteCtx(ctx context.Context, db *sqldb.DB, sel *sqlparse.Select) (*sqldb.Result, error) {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	res, err := execSelect(db, sel, nil)
	tr.Span(trace.StageExec, t0)
	record(rowCount(res), err)
	return res, err
}

// ExecuteSQL parses and runs a SQL string.
func ExecuteSQL(db *sqldb.DB, query string) (*sqldb.Result, error) {
	return ExecuteSQLCtx(context.Background(), db, query)
}

// ExecuteSQLCtx parses and runs a SQL string, recording the execution (parse
// included — gold queries are parsed here, not in the prediction pipeline)
// as one sql_exec span when the context carries a trace.
func ExecuteSQLCtx(ctx context.Context, db *sqldb.DB, query string) (*sqldb.Result, error) {
	tr := trace.FromContext(ctx)
	t0 := tr.Now()
	sel, err := sqlparse.Parse(query)
	if err != nil {
		tr.Span(trace.StageExec, t0)
		queries.Add(1)
		parseFailures.Add(1)
		return nil, err
	}
	res, err := execSelect(db, sel, nil)
	tr.Span(trace.StageExec, t0)
	record(rowCount(res), err)
	return res, err
}

func rowCount(res *sqldb.Result) int {
	if res == nil {
		return 0
	}
	return len(res.Rows)
}

// --- row environments ---------------------------------------------------------

// source is one bound FROM/JOIN input: a table or derived subquery. Rows
// are flat value slices shared by all sources of a query; off locates this
// source's columns within them.
type source struct {
	name    string // base table name ("" for derived)
	alias   string
	columns []string
	colIdx  map[string]int
	off     int // column offset within the flat row
	// table backlinks the base table when the source is one (nil for views
	// and derived tables); the planner uses it for equality-index reuse.
	table *sqldb.TableData
}

func newSource(name, alias string, columns []string) *source {
	s := &source{name: name, alias: alias, columns: columns}
	s.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		s.colIdx[strings.ToUpper(c)] = i
	}
	return s
}

func (s *source) width() int { return len(s.columns) }

func (s *source) matchesQualifier(q string) bool {
	if q == "" {
		return true
	}
	return strings.EqualFold(q, s.alias) || strings.EqualFold(q, s.name)
}

// env is a chain of row environments; outer links support correlated
// subqueries. One flat row serves every source in the frame.
type env struct {
	sources []*source
	row     []sqldb.Value
	outer   *env
}

func (e *env) lookup(qualifier, column string) (sqldb.Value, bool) {
	for cur := e; cur != nil; cur = cur.outer {
		for _, s := range cur.sources {
			if !s.matchesQualifier(qualifier) {
				continue
			}
			if i, ok := s.colIdx[strings.ToUpper(column)]; ok {
				return cur.row[s.off+i], true
			}
		}
	}
	return sqldb.Null(), false
}

// --- execution ------------------------------------------------------------------

type executor struct {
	db    *sqldb.DB
	cache *dbCache // per-DB view/subquery caches; nil on the naive path
	naive bool     // reference nested-loop path (differential tests)
}

func execSelect(db *sqldb.DB, sel *sqlparse.Select, outer *env) (*sqldb.Result, error) {
	ex := &executor{db: db, cache: cacheFor(db)}
	return ex.exec(sel, outer)
}

// execSelectNaive runs the retained reference path: nested-loop joins with
// the full ON evaluated per candidate pair, WHERE applied after
// materialization, no pushdown and no result caching.
func execSelectNaive(db *sqldb.DB, sel *sqlparse.Select, outer *env) (*sqldb.Result, error) {
	ex := &executor{db: db, naive: true}
	return ex.exec(sel, outer)
}

// exec dispatches one SELECT (top-level or nested) to the active engine.
func (ex *executor) exec(sel *sqlparse.Select, outer *env) (*sqldb.Result, error) {
	var rows [][]sqldb.Value
	var srcs []*source
	var err error
	if ex.naive {
		rows, srcs, err = ex.naiveRows(sel, outer)
	} else {
		rows, srcs, err = ex.plannedRows(sel, outer)
	}
	if err != nil {
		return nil, err
	}
	if len(sel.GroupBy) > 0 || hasAggregate(sel) {
		return ex.execGrouped(sel, rows, srcs, outer)
	}
	return ex.execPlain(sel, rows, srcs, outer)
}

// subquery executes a nested SELECT appearing in an expression. On the
// planner path, subqueries that reference nothing outside themselves are
// served from the per-DB cache; the returned entry (nil when uncached)
// carries the lazily built IN-probe hash set.
func (ex *executor) subquery(sel *sqlparse.Select, en *env) (*sqldb.Result, *subqEntry, error) {
	if !ex.naive && ex.cache != nil && ex.cache.uncorrelated(sel, ex) {
		if e := ex.cache.subqGet(sel); e != nil {
			return e.res, e, nil
		}
		res, err := ex.exec(sel, en)
		if err != nil {
			return nil, nil, err
		}
		e := ex.cache.subqPut(sel, res)
		return e.res, e, nil
	}
	res, err := ex.exec(sel, en)
	return res, nil, err
}

// bindRef resolves a table ref to a source template plus its rows. Views
// (qualified like db_nl.X or bare) resolve by executing their definition;
// the view name remains addressable as a qualifier inside the query. On the
// planner path view ASTs and results are cached per database generation.
func (ex *executor) bindRef(ref *sqlparse.TableRef, outer *env) (*source, [][]sqldb.Value, error) {
	if ref.Subquery != nil {
		res, _, err := ex.subquery(ref.Subquery, outer)
		if err != nil {
			return nil, nil, err
		}
		s := newSource("", ref.Alias, res.Columns)
		return s, res.Rows, nil
	}
	if v, ok := ex.db.ViewLookup(ref.Schema, ref.Table); ok {
		res, err := ex.execView(v)
		if err != nil {
			return nil, nil, err
		}
		s := newSource(ref.Table, ref.Alias, res.Columns)
		return s, res.Rows, nil
	}
	if ref.Schema != "" && !strings.EqualFold(ref.Schema, "dbo") {
		return nil, nil, fmt.Errorf("sqlexec: unknown relation %s.%s", ref.Schema, ref.Table)
	}
	t, ok := ex.db.Table(ref.Table)
	if !ok {
		return nil, nil, fmt.Errorf("sqlexec: unknown table %q", ref.Table)
	}
	s := newSource(t.Name, ref.Alias, t.Columns)
	s.table = t
	return s, t.Rows, nil
}

// execView materializes a view definition. The naive path re-parses and
// re-executes per reference (the original behaviour the differential tests
// pin down); the planner path parses once and executes once per database
// generation.
func (ex *executor) execView(v sqldb.View) (*sqldb.Result, error) {
	if ex.naive || ex.cache == nil {
		sel, err := sqlparse.Parse(v.SelectSQL)
		if err != nil {
			return nil, fmt.Errorf("sqlexec: view %s has an invalid definition: %w", v.Name, err)
		}
		viewExecs.Add(1)
		res, err := ex.exec(sel, nil)
		if err != nil {
			return nil, fmt.Errorf("sqlexec: executing view %s: %w", v.Name, err)
		}
		return res, nil
	}
	return ex.cache.viewResult(v, ex)
}

// --- plain (ungrouped) projection ------------------------------------------------

func (ex *executor) execPlain(sel *sqlparse.Select, rows [][]sqldb.Value, srcs []*source, outer *env) (*sqldb.Result, error) {
	cols, err := projectionColumns(sel, srcs)
	if err != nil {
		return nil, err
	}
	res := &sqldb.Result{Columns: cols}
	var ordered []projRow
	e := &env{sources: srcs, outer: outer}
	for _, r := range rows {
		e.row = r
		out, err := ex.projectRow(sel, e, srcs)
		if err != nil {
			return nil, err
		}
		keys, err := ex.orderKeys(sel, e, cols, out, nil)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, projRow{out: out, keys: keys})
	}
	sortOrdered(sel, ordered)
	for _, r := range ordered {
		res.Rows = append(res.Rows, r.out)
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	applyTop(sel, res)
	return res, nil
}

func (ex *executor) projectRow(sel *sqlparse.Select, e *env, srcs []*source) ([]sqldb.Value, error) {
	var out []sqldb.Value
	for i := range sel.Items {
		switch it := sel.Items[i].Expr.(type) {
		case *sqlparse.Star:
			for _, s := range srcs {
				if it.Table != "" && !s.matchesQualifier(it.Table) {
					continue
				}
				out = append(out, e.row[s.off:s.off+s.width()]...)
			}
		default:
			v, err := ex.eval(sel.Items[i].Expr, e)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// --- grouped execution --------------------------------------------------------

type group struct {
	key  string
	rows [][]sqldb.Value
}

func (ex *executor) execGrouped(sel *sqlparse.Select, rows [][]sqldb.Value, srcs []*source, outer *env) (*sqldb.Result, error) {
	cols, err := projectionColumns(sel, srcs)
	if err != nil {
		return nil, err
	}
	var groups []*group
	if len(sel.GroupBy) == 0 {
		// Global aggregation: one group containing everything (even empty).
		groups = []*group{{rows: rows}}
	} else {
		byKey := map[string]*group{}
		var order []string
		ge := &env{sources: srcs, outer: outer}
		for _, r := range rows {
			ge.row = r
			var kb strings.Builder
			for _, gx := range sel.GroupBy {
				v, err := ex.eval(gx, ge)
				if err != nil {
					return nil, err
				}
				kb.WriteString(strings.ToUpper(v.String()))
				kb.WriteByte('\x1f')
			}
			k := kb.String()
			g, ok := byKey[k]
			if !ok {
				g = &group{key: k}
				byKey[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, r)
		}
		for _, k := range order {
			groups = append(groups, byKey[k])
		}
	}

	res := &sqldb.Result{Columns: cols}
	var ordered []projRow
	for _, g := range groups {
		var e *env
		if len(g.rows) > 0 {
			e = &env{sources: srcs, row: g.rows[0], outer: outer}
		} else {
			e = &env{outer: outer}
		}
		agg := &aggContext{ex: ex, rows: g.rows, srcs: srcs, outer: outer}
		if sel.Having != nil {
			ok, err := ex.evalBoolAgg(sel.Having, e, agg)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		var out []sqldb.Value
		for i := range sel.Items {
			v, err := ex.evalAgg(sel.Items[i].Expr, e, agg)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		keys, err := ex.orderKeys(sel, e, cols, out, agg)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, projRow{out: out, keys: keys})
	}
	sortOrdered(sel, ordered)
	for _, r := range ordered {
		res.Rows = append(res.Rows, r.out)
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	applyTop(sel, res)
	return res, nil
}

// projRow is a projected output row with its precomputed ORDER BY keys.
type projRow struct {
	out  []sqldb.Value
	keys []sqldb.Value
}

// sortOrdered sorts projected rows by their precomputed keys.
func sortOrdered(sel *sqlparse.Select, rows []projRow) {
	if len(sel.OrderBy) == 0 {
		return
	}
	stableSort(len(rows), func(a, b int) bool {
		return keyLess(sel, rows[a].keys, rows[b].keys)
	}, func(a, b int) {
		rows[a], rows[b] = rows[b], rows[a]
	})
}

func keyLess(sel *sqlparse.Select, a, b []sqldb.Value) bool {
	for i := range sel.OrderBy {
		cmp := sqldb.Compare(a[i], b[i])
		if sel.OrderBy[i].Desc {
			cmp = -cmp
		}
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// stableSort is an insertion sort (stable, no reflect) adequate for result
// sizes in this benchmark.
func stableSort(n int, less func(a, b int) bool, swap func(a, b int)) {
	for i := 1; i < n; i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			swap(j, j-1)
		}
	}
}

// orderKeys computes the ORDER BY sort keys for one output row. Aliases and
// positional matches against select items resolve to the projected values.
func (ex *executor) orderKeys(sel *sqlparse.Select, e *env, cols []string, out []sqldb.Value, agg *aggContext) ([]sqldb.Value, error) {
	if len(sel.OrderBy) == 0 {
		return nil, nil
	}
	keys := make([]sqldb.Value, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		// Alias or projected column reference?
		if cr, ok := o.Expr.(*sqlparse.ColRef); ok && cr.Table == "" {
			if idx := columnIndexByName(cols, cr.Column); idx >= 0 && idx < len(out) {
				keys[i] = out[idx]
				continue
			}
		}
		// Positional ORDER BY (ORDER BY 1).
		if num, ok := o.Expr.(*sqlparse.NumberLit); ok {
			if pos, err := strconv.Atoi(num.Text); err == nil && pos >= 1 && pos <= len(out) {
				keys[i] = out[pos-1]
				continue
			}
		}
		var v sqldb.Value
		var err error
		if agg != nil {
			v, err = ex.evalAgg(o.Expr, e, agg)
		} else {
			v, err = ex.eval(o.Expr, e)
		}
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func columnIndexByName(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// projectionColumns derives output column names.
func projectionColumns(sel *sqlparse.Select, sources []*source) ([]string, error) {
	var cols []string
	for i := range sel.Items {
		item := &sel.Items[i]
		if item.Alias != "" {
			cols = append(cols, item.Alias)
			continue
		}
		switch it := item.Expr.(type) {
		case *sqlparse.Star:
			for _, s := range sources {
				if it.Table != "" && !s.matchesQualifier(it.Table) {
					continue
				}
				cols = append(cols, s.columns...)
			}
		case *sqlparse.ColRef:
			cols = append(cols, it.Column)
		case *sqlparse.FuncCall:
			cols = append(cols, strings.ToLower(it.Name))
		default:
			cols = append(cols, fmt.Sprintf("expr%d", i+1))
		}
	}
	return cols, nil
}

func distinctRows(rows [][]sqldb.Value) [][]sqldb.Value {
	seen := map[string]struct{}{}
	var out [][]sqldb.Value
	for _, r := range rows {
		var kb strings.Builder
		for _, v := range r {
			kb.WriteString(strings.ToUpper(v.String()))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

func applyTop(sel *sqlparse.Select, res *sqldb.Result) {
	if sel.Top > 0 && len(res.Rows) > sel.Top {
		res.Rows = res.Rows[:sel.Top]
	}
}

func hasAggregate(sel *sqlparse.Select) bool {
	agg := false
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch x := e.(type) {
		case *sqlparse.FuncCall:
			if isAggregateFunc(x.Name) {
				agg = true
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparse.Binary:
			walk(x.Left)
			walk(x.Right)
		case *sqlparse.Not:
			walk(x.Inner)
		case *sqlparse.Paren:
			walk(x.Inner)
		case *sqlparse.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		}
	}
	for i := range sel.Items {
		walk(sel.Items[i].Expr)
	}
	walk(sel.Having)
	return agg
}

func isAggregateFunc(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
