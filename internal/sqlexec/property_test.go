package sqlexec

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// propertyDB builds a deterministic two-table database for algebraic
// property checks.
func propertyDB() *sqldb.DB {
	db := sqldb.NewDB("prop")
	a := db.CreateTable("items", []string{"id", "grp", "val", "tag"})
	seed := uint64(99)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 1; i <= 60; i++ {
		a.MustInsert(
			sqldb.Int(int64(i)),
			sqldb.String(fmt.Sprintf("g%d", next(5))),
			sqldb.Int(int64(next(100))),
			sqldb.String(fmt.Sprintf("t%d", next(3))),
		)
	}
	b := db.CreateTable("groups", []string{"grp", "label"})
	for g := 0; g < 5; g++ {
		b.MustInsert(sqldb.String(fmt.Sprintf("g%d", g)), sqldb.String(fmt.Sprintf("label %d", g)))
	}
	return db
}

// randQuery builds a random-but-valid SELECT over the property DB.
func randQuery(pick func(n int) int) string {
	cols := []string{"id", "grp", "val", "tag"}
	proj := cols[pick(len(cols))]
	q := "SELECT " + proj + " FROM items"
	switch pick(4) {
	case 0:
		q += fmt.Sprintf(" WHERE val > %d", pick(100))
	case 1:
		q += fmt.Sprintf(" WHERE grp = 'g%d'", pick(5))
	case 2:
		q += fmt.Sprintf(" WHERE val BETWEEN %d AND %d", pick(50), 50+pick(50))
	}
	if pick(3) == 0 {
		q += " ORDER BY " + proj
	}
	if pick(4) == 0 {
		q = fmt.Sprintf("SELECT TOP %d %s", 1+pick(10), q[len("SELECT "):])
	}
	return q
}

func mkPick(seed uint64) func(int) int {
	return func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		if n <= 0 {
			return 0
		}
		return int(seed>>33) % n
	}
}

func TestRandomQueriesNeverPanicAndParseRoundTrip(t *testing.T) {
	db := propertyDB()
	f := func(seed uint64) bool {
		q := randQuery(mkPick(seed))
		sel, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q, err)
		}
		// Rendering must be stable and executable.
		rendered := sel.SQL()
		res1, err := ExecuteSQL(db, q)
		if err != nil {
			t.Fatalf("execute %q: %v", q, err)
		}
		res2, err := ExecuteSQL(db, rendered)
		if err != nil {
			t.Fatalf("execute rendered %q: %v", rendered, err)
		}
		return res1.NumRows() == res2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDistinctNeverIncreasesRows(t *testing.T) {
	db := propertyDB()
	f := func(seed uint64) bool {
		pick := mkPick(seed)
		base := randQuery(pick)
		sel, _ := sqlparse.Parse(base)
		if sel.Top > 0 {
			return true // TOP interacts with DISTINCT ordering; skip
		}
		plain, err := ExecuteSQL(db, base)
		if err != nil {
			return false
		}
		distinct, err := ExecuteSQL(db, "SELECT DISTINCT"+base[len("SELECT"):])
		if err != nil {
			return false
		}
		return distinct.NumRows() <= plain.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConjunctionNarrowsResults(t *testing.T) {
	db := propertyDB()
	f := func(threshold uint8, grp uint8) bool {
		tv := int(threshold) % 100
		g := int(grp) % 5
		one, err := ExecuteSQL(db, fmt.Sprintf("SELECT id FROM items WHERE val > %d", tv))
		if err != nil {
			return false
		}
		both, err := ExecuteSQL(db, fmt.Sprintf("SELECT id FROM items WHERE val > %d AND grp = 'g%d'", tv, g))
		if err != nil {
			return false
		}
		return both.NumRows() <= one.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopBoundsRows(t *testing.T) {
	db := propertyDB()
	f := func(seed uint64, k uint8) bool {
		n := 1 + int(k)%15
		res, err := ExecuteSQL(db, fmt.Sprintf("SELECT TOP %d id FROM items ORDER BY val DESC", n))
		if err != nil {
			return false
		}
		return res.NumRows() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesRowCount(t *testing.T) {
	db := propertyDB()
	f := func(seed uint64) bool {
		pick := mkPick(seed)
		base := randQuery(pick)
		sel, _ := sqlparse.Parse(base)
		if sel.Top > 0 || len(sel.OrderBy) > 0 {
			return true
		}
		rows, err := ExecuteSQL(db, base)
		if err != nil {
			return false
		}
		where := ""
		if i := indexOfWhere(base); i >= 0 {
			where = base[i:]
		}
		cnt, err := ExecuteSQL(db, "SELECT COUNT(*) FROM items "+where)
		if err != nil {
			return false
		}
		return cnt.Rows[0][0].I == int64(rows.NumRows())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func indexOfWhere(q string) int {
	for i := 0; i+5 <= len(q); i++ {
		if q[i:i+5] == "WHERE" {
			return i
		}
	}
	return -1
}

func TestGroupCountsSumToTotal(t *testing.T) {
	db := propertyDB()
	grouped, err := ExecuteSQL(db, "SELECT grp, COUNT(*) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range grouped.Rows {
		sum += r[1].I
	}
	total, _ := ExecuteSQL(db, "SELECT COUNT(*) FROM items")
	if sum != total.Rows[0][0].I {
		t.Errorf("group counts sum %d != total %d", sum, total.Rows[0][0].I)
	}
}

func TestJoinSubsetOfCrossProduct(t *testing.T) {
	db := propertyDB()
	join, err := ExecuteSQL(db, "SELECT i.id FROM items i JOIN groups g ON i.grp = g.grp")
	if err != nil {
		t.Fatal(err)
	}
	items, _ := ExecuteSQL(db, "SELECT id FROM items")
	groups, _ := ExecuteSQL(db, "SELECT grp FROM groups")
	if join.NumRows() > items.NumRows()*groups.NumRows() {
		t.Error("join exceeds cross product")
	}
	// Every item's group exists, so the equi-join preserves all items.
	if join.NumRows() != items.NumRows() {
		t.Errorf("FK join should preserve items: %d vs %d", join.NumRows(), items.NumRows())
	}
}

func TestLeftJoinSupersetOfInnerJoin(t *testing.T) {
	db := propertyDB()
	// Add a group-less item.
	items, _ := db.Table("items")
	items.MustInsert(sqldb.Int(999), sqldb.String("gX"), sqldb.Int(1), sqldb.String("t0"))
	inner, err := ExecuteSQL(db, "SELECT i.id FROM items i JOIN groups g ON i.grp = g.grp")
	if err != nil {
		t.Fatal(err)
	}
	left, err := ExecuteSQL(db, "SELECT i.id FROM items i LEFT JOIN groups g ON i.grp = g.grp")
	if err != nil {
		t.Fatal(err)
	}
	if left.NumRows() != inner.NumRows()+1 {
		t.Errorf("left join should keep the unmatched row: inner=%d left=%d", inner.NumRows(), left.NumRows())
	}
}

// randJoinQuery builds a random-but-valid join query over the property DB:
// INNER/LEFT joins with equi and non-equi ON conjuncts, an optional self
// join, pushdown-shaped WHEREs, subquery membership, grouping, and ordering.
// It deliberately produces every plan shape the planner distinguishes.
func randJoinQuery(pick func(n int) int) string {
	var sb strings.Builder
	proj := []string{"i.id", "i.val", "g.label", "i.tag", "g.grp"}[pick(5)]
	agg := pick(5) == 0
	if agg {
		sb.WriteString("SELECT g.label, COUNT(*) FROM items i")
	} else {
		sb.WriteString("SELECT " + proj + " FROM items i")
	}
	kind := " JOIN "
	if pick(3) == 0 {
		kind = " LEFT JOIN "
	}
	sb.WriteString(kind + "groups g ON ")
	switch pick(4) {
	case 0:
		sb.WriteString("i.grp = g.grp")
	case 1:
		sb.WriteString("g.grp = i.grp") // swapped sides, still equi
	case 2:
		fmt.Fprintf(&sb, "i.grp = g.grp AND i.val > %d", pick(100)) // left-only extra conjunct
	default:
		fmt.Fprintf(&sb, "i.grp = g.grp AND g.label LIKE 'label%%'") // right-only extra conjunct
	}
	selfJoin := !agg && pick(4) == 0
	if selfJoin {
		sb.WriteString(" JOIN items j ON j.grp = i.grp AND j.id < i.id")
	}
	switch pick(5) {
	case 0:
		fmt.Fprintf(&sb, " WHERE i.val > %d", pick(100))
	case 1:
		fmt.Fprintf(&sb, " WHERE g.label = 'label %d'", pick(6))
	case 2:
		fmt.Fprintf(&sb, " WHERE i.val BETWEEN %d AND %d AND g.grp = 'g%d'", pick(50), 50+pick(50), pick(5))
	case 3:
		fmt.Fprintf(&sb, " WHERE i.grp IN (SELECT grp FROM groups WHERE label LIKE 'label%%') AND i.val > %d", pick(100))
	}
	if agg {
		sb.WriteString(" GROUP BY g.label ORDER BY g.label")
	} else if pick(3) == 0 {
		sb.WriteString(" ORDER BY " + proj)
	}
	q := sb.String()
	if !agg && pick(5) == 0 {
		q = fmt.Sprintf("SELECT TOP %d %s", 1+pick(10), q[len("SELECT "):])
	}
	return q
}

// TestPlannerMatchesNaiveOnRandomJoins is the differential harness: every
// generated query must produce byte-identical results (columns, values, and
// value kinds) on the planner and the retained naive reference path, or fail
// on both.
func TestPlannerMatchesNaiveOnRandomJoins(t *testing.T) {
	db := propertyDB()
	// An orphan row exercises LEFT JOIN null padding on every query.
	items, _ := db.Table("items")
	items.MustInsert(sqldb.Int(998), sqldb.String("gZ"), sqldb.Int(42), sqldb.String("t1"))
	count := 250
	if testing.Short() {
		count = 80
	}
	f := func(seed uint64) bool {
		q := randJoinQuery(mkPick(seed))
		sel, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("generated join query does not parse: %q: %v", q, err)
		}
		pres, perr := execSelect(db, sel, nil)
		nres, nerr := execSelectNaive(db, sel, nil)
		if (perr != nil) != (nerr != nil) {
			t.Fatalf("error mismatch for %q:\n  planner: %v\n  naive:   %v", q, perr, nerr)
		}
		if perr != nil {
			return true
		}
		if dp, dn := resultDigest(pres), resultDigest(nres); dp != dn {
			t.Fatalf("result mismatch for %q:\n  planner: %q\n  naive:   %q", q, dp, dn)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}
