package sqlexec

import (
	"math/bits"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// The planner rewrites a SELECT's FROM/JOIN/WHERE into scans with pushed
// filters, hash or nested-loop joins, and a residual WHERE — while keeping
// results (and error outcomes) indistinguishable from the naive reference
// path. The safety argument rests on totality: an expression is *total*
// when its evaluation can never return an error (all column refs statically
// resolve, literals parse, and every operator/function involved is
// error-free). The planner only ever skips or re-orders evaluations of
// total expressions; every non-total expression is still evaluated on
// exactly the rows where the naive path would evaluate it without a
// preceding short-circuit. Hoisting therefore stops at the first non-total
// conjunct of each AND chain, and WHERE pushdown additionally requires
// every ON conjunct of every join to be total (pushdown removes rows
// before the joins run).

// scanPlan filters one FROM/JOIN input before join materialization.
type scanPlan struct {
	filters []sqlparse.Expr // pushed single-source conjuncts (all total)
	// Equality-index probe: column idxCol = idxExpr, where idxExpr
	// references no scan-local source. idxConj retains the original
	// conjunct for the linear fallback (NaN keys, detached tables).
	idxCol  int
	idxExpr sqlparse.Expr
	idxConj sqlparse.Expr
}

// joinStep is the execution strategy for one JOIN.
type joinStep struct {
	kind sqlparse.JoinKind
	// all is the full flattened ON conjunct list in evaluation order; the
	// nested-loop path (no equi keys, or NaN hash keys) evaluates it as-is.
	all []sqlparse.Expr
	// equiL/equiR are aligned hash-key expressions: equiL over the
	// accumulated left sources, equiR over the new right source.
	equiL, equiR []sqlparse.Expr
	// residual conjuncts run per matched pair, in original order.
	residual []sqlparse.Expr
	// leftFilters run against the accumulated rows before pairing
	// (INNER only: LEFT joins null-pad unmatched left rows instead).
	leftFilters []sqlparse.Expr
	// rightIdxCol enables reusing the table's equality index as the hash
	// build side: single bare-ColRef key over an unfiltered base table.
	rightIdxCol int
}

type queryPlan struct {
	scans []scanPlan
	joins []joinStep
	where []sqlparse.Expr // residual WHERE conjuncts, original order
}

// conjInfo is the classification of one conjunct (or key expression).
type conjInfo struct {
	total bool   // evaluation can never error
	mask  uint64 // bit i set when the expr reads source i; outer refs set no bit
}

// splitAnd flattens an AND chain (through parentheses) into conjuncts in
// evaluation order.
func splitAnd(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	switch x := e.(type) {
	case *sqlparse.Paren:
		return splitAnd(x.Inner, out)
	case *sqlparse.Binary:
		if x.Op == "AND" {
			return splitAnd(x.Right, splitAnd(x.Left, out))
		}
	}
	return append(out, e)
}

func numberParses(text string) bool {
	if strings.Contains(text, ".") {
		_, err := strconv.ParseFloat(text, 64)
		return err == nil
	}
	_, err := strconv.ParseInt(text, 10, 64)
	return err == nil
}

// classify computes totality and the source mask of e as evaluated against
// the given sources (in env.lookup order) with the outer chain behind them.
func (ex *executor) classify(e sqlparse.Expr, srcs []*source, outer *env) conjInfo {
	c := conjInfo{total: true}
	ex.classifyWalk(e, srcs, outer, &c)
	return c
}

func (ex *executor) classifyWalk(e sqlparse.Expr, srcs []*source, outer *env, out *conjInfo) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		if !numberParses(x.Text) {
			out.total = false
		}
	case *sqlparse.StringLit:
	case sqlparse.NullLit:
	case *sqlparse.ColRef:
		up := strings.ToUpper(x.Column)
		for i, s := range srcs {
			if !s.matchesQualifier(x.Table) {
				continue
			}
			if _, ok := s.colIdx[up]; ok {
				out.mask |= uint64(1) << i
				return
			}
		}
		for cur := outer; cur != nil; cur = cur.outer {
			for _, s := range cur.sources {
				if !s.matchesQualifier(x.Table) {
					continue
				}
				if _, ok := s.colIdx[up]; ok {
					return // outer-resolved: constant for this execution
				}
			}
		}
		out.total = false // unresolvable: evaluation errors
	case *sqlparse.Paren:
		ex.classifyWalk(x.Inner, srcs, outer, out)
	case *sqlparse.Not:
		ex.classifyWalk(x.Inner, srcs, outer, out)
	case *sqlparse.IsNull:
		ex.classifyWalk(x.Inner, srcs, outer, out)
	case *sqlparse.Binary:
		ex.classifyWalk(x.Left, srcs, outer, out)
		ex.classifyWalk(x.Right, srcs, outer, out)
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE", "+":
			// "+" never errors: non-numeric operands concatenate.
		default:
			// -,*,/,% error on non-numeric operands; unknown ops error.
			out.total = false
		}
	case *sqlparse.Between:
		ex.classifyWalk(x.Inner, srcs, outer, out)
		ex.classifyWalk(x.Lo, srcs, outer, out)
		ex.classifyWalk(x.Hi, srcs, outer, out)
	case *sqlparse.InExpr:
		ex.classifyWalk(x.Inner, srcs, outer, out)
		for _, item := range x.List {
			ex.classifyWalk(item, srcs, outer, out)
		}
		if x.Subquery != nil {
			out.total = false
		}
	case *sqlparse.Exists:
		out.total = false
	case *sqlparse.SubqueryExpr:
		out.total = false
	case *sqlparse.CaseExpr:
		for _, w := range x.Whens {
			ex.classifyWalk(w.Cond, srcs, outer, out)
			ex.classifyWalk(w.Then, srcs, outer, out)
		}
		if x.Else != nil {
			ex.classifyWalk(x.Else, srcs, outer, out)
		}
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			ex.classifyWalk(a, srcs, outer, out)
		}
		if isAggregateFunc(x.Name) {
			out.total = false // errors outside grouped context
			return
		}
		switch x.Name {
		case "YEAR", "MONTH", "DAY", "LEN", "UPPER", "LOWER":
			if len(x.Args) != 1 {
				out.total = false
			}
		default:
			// ABS/ROUND error on non-numeric args; unknown functions error.
			out.total = false
		}
	case *sqlparse.Star:
		out.total = false
	default:
		out.total = false
	}
}

// makePlan classifies the WHERE and ON conjuncts of sel against the bound
// sources and decides pushdown, hash keys, and residuals.
func (ex *executor) makePlan(sel *sqlparse.Select, srcs []*source, outer *env) *queryPlan {
	p := &queryPlan{scans: make([]scanPlan, len(srcs)), joins: make([]joinStep, len(sel.Joins))}
	for i := range p.scans {
		p.scans[i].idxCol = -1
	}
	hoist := len(srcs) <= 64 // masks are uint64; wider FROMs run unplanned

	allONTotal := true
	for ji := range sel.Joins {
		j := &sel.Joins[ji]
		st := &p.joins[ji]
		st.kind = j.Kind
		st.rightIdxCol = -1
		st.all = splitAnd(j.On, nil)
		k := ji + 1
		vis := srcs[:k+1] // ON of join k sees sources 0..k, like the naive env

		firstNonTotal := len(st.all)
		infos := make([]conjInfo, len(st.all))
		for idx, c := range st.all {
			infos[idx] = ex.classify(c, vis, outer)
			if !infos[idx].total {
				allONTotal = false
				if firstNonTotal == len(st.all) {
					firstNonTotal = idx
				}
			}
		}

		rightBit := uint64(1) << k
		for idx, c := range st.all {
			if !hoist || idx >= firstNonTotal {
				st.residual = append(st.residual, c)
				continue
			}
			if b, isEq := c.(*sqlparse.Binary); isEq && b.Op == "=" {
				li := ex.classify(b.Left, vis, outer)
				ri := ex.classify(b.Right, vis, outer)
				if li.mask != 0 && li.mask&rightBit == 0 && ri.mask == rightBit {
					st.equiL = append(st.equiL, b.Left)
					st.equiR = append(st.equiR, b.Right)
					continue
				}
				if ri.mask != 0 && ri.mask&rightBit == 0 && li.mask == rightBit {
					st.equiL = append(st.equiL, b.Right)
					st.equiR = append(st.equiR, b.Left)
					continue
				}
			}
			switch {
			case infos[idx].mask == rightBit:
				p.scans[k].filters = append(p.scans[k].filters, c)
			case infos[idx].mask&rightBit == 0 && j.Kind == sqlparse.JoinInner:
				st.leftFilters = append(st.leftFilters, c)
			default:
				st.residual = append(st.residual, c)
			}
		}
	}

	if sel.Where != nil {
		conjs := splitAnd(sel.Where, nil)
		firstNonTotal := len(conjs)
		infos := make([]conjInfo, len(conjs))
		for idx, c := range conjs {
			infos[idx] = ex.classify(c, srcs, outer)
			if !infos[idx].total && firstNonTotal == len(conjs) {
				firstNonTotal = idx
			}
		}
		for idx, c := range conjs {
			pushable := hoist && allONTotal && idx < firstNonTotal
			if pushable {
				m := infos[idx].mask
				if m != 0 && m&(m-1) == 0 {
					i := bits.TrailingZeros64(m)
					// Never filter the nullable side of a LEFT JOIN: the
					// conjunct must also see the null-padded rows.
					if i == 0 || sel.Joins[i-1].Kind != sqlparse.JoinLeft {
						p.scans[i].filters = append(p.scans[i].filters, c)
						continue
					}
				} else if m == 0 {
					// Row-independent conjunct: cheapest to fold into the
					// base scan, where it filters everything or nothing.
					p.scans[0].filters = append(p.scans[0].filters, c)
					continue
				}
			}
			p.where = append(p.where, c)
		}
	}

	// Equality-index selection: a pushed `col = const` filter over a base
	// table probes the table's lazy hash index instead of scanning.
	for i := range p.scans {
		sp := &p.scans[i]
		if srcs[i].table == nil || len(sp.filters) == 0 {
			continue
		}
		for fi, c := range sp.filters {
			if col, val, ok := ex.indexableEq(c, srcs, i, outer); ok {
				sp.idxCol, sp.idxExpr, sp.idxConj = col, val, c
				sp.filters = append(sp.filters[:fi:fi], sp.filters[fi+1:]...)
				break
			}
		}
	}

	// Hash-build index reuse: single bare-ColRef equi key over an
	// unfiltered base table shares the table's equality index.
	for ji := range p.joins {
		st := &p.joins[ji]
		k := ji + 1
		if len(st.equiR) != 1 || srcs[k].table == nil {
			continue
		}
		if p.scans[k].idxExpr != nil || len(p.scans[k].filters) > 0 {
			continue
		}
		if cr, ok := st.equiR[0].(*sqlparse.ColRef); ok {
			ci := ex.classify(cr, srcs[:k+1], outer)
			if ci.mask == uint64(1)<<k {
				if idx, ok := srcs[k].colIdx[strings.ToUpper(cr.Column)]; ok {
					st.rightIdxCol = idx
				}
			}
		}
	}
	return p
}

// indexableEq reports whether conjunct c (pushed to source i) is
// `col = const` (or swapped) with const free of scan-local references.
func (ex *executor) indexableEq(c sqlparse.Expr, srcs []*source, i int, outer *env) (int, sqlparse.Expr, bool) {
	b, ok := c.(*sqlparse.Binary)
	if !ok || b.Op != "=" {
		return 0, nil, false
	}
	try := func(colSide, valSide sqlparse.Expr) (int, sqlparse.Expr, bool) {
		cr, ok := colSide.(*sqlparse.ColRef)
		if !ok {
			return 0, nil, false
		}
		if ci := ex.classify(cr, srcs, outer); ci.mask != uint64(1)<<i {
			return 0, nil, false
		}
		if vi := ex.classify(valSide, srcs, outer); vi.mask != 0 {
			return 0, nil, false
		}
		idx, ok := srcs[i].colIdx[strings.ToUpper(cr.Column)]
		if !ok {
			return 0, nil, false
		}
		return idx, valSide, true
	}
	if col, val, ok := try(b.Left, b.Right); ok {
		return col, val, true
	}
	return try(b.Right, b.Left)
}

// --- planned row building -----------------------------------------------------

// plannedRows materializes the FROM/JOIN/WHERE pipeline under the plan.
func (ex *executor) plannedRows(sel *sqlparse.Select, outer *env) ([][]sqldb.Value, []*source, error) {
	if sel.From == nil {
		// SELECT without FROM: a single empty row.
		return [][]sqldb.Value{{}}, nil, nil
	}
	srcs := make([]*source, 0, 1+len(sel.Joins))
	rels := make([][][]sqldb.Value, 0, 1+len(sel.Joins))
	base, baseRows, err := ex.bindRef(sel.From, outer)
	if err != nil {
		return nil, nil, err
	}
	srcs = append(srcs, base)
	rels = append(rels, baseRows)
	off := base.width()
	for ji := range sel.Joins {
		right, rightRows, err := ex.bindRef(&sel.Joins[ji].Right, outer)
		if err != nil {
			return nil, nil, err
		}
		right.off = off
		off += right.width()
		srcs = append(srcs, right)
		rels = append(rels, rightRows)
	}

	plan := ex.makePlan(sel, srcs, outer)

	rows, err := ex.scanRows(&plan.scans[0], srcs[0], rels[0], outer)
	if err != nil {
		return nil, nil, err
	}
	for k := 1; k < len(srcs); k++ {
		st := &plan.joins[k-1]
		if len(st.leftFilters) > 0 {
			rows, err = ex.filterRows(rows, st.leftFilters, &env{sources: srcs[:k], outer: outer})
			if err != nil {
				return nil, nil, err
			}
		}
		right, err := ex.scanRows(&plan.scans[k], srcs[k], rels[k], outer)
		if err != nil {
			return nil, nil, err
		}
		if len(st.equiL) > 0 {
			out, ok, err := ex.joinHash(st, rows, right, srcs, k, outer)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				rows = out
				continue
			}
			// NaN hash key: equality classes are unrepresentable, redo the
			// whole join pairwise.
		}
		rows, err = ex.joinNested(st, rows, right, srcs, k, outer)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(plan.where) > 0 {
		rows, err = ex.filterRows(rows, plan.where, &env{sources: srcs, outer: outer})
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, srcs, nil
}

// filterRows keeps the rows on which every conjunct evaluates true. The env
// is reused across rows; e.row is set per row.
func (ex *executor) filterRows(rows [][]sqldb.Value, conjs []sqlparse.Expr, e *env) ([][]sqldb.Value, error) {
	var out [][]sqldb.Value
	for _, r := range rows {
		e.row = r
		keep := true
		for _, c := range conjs {
			b, err := ex.evalBool(c, e)
			if err != nil {
				return nil, err
			}
			if !b {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// scanRows applies a scan's pushed filters (and equality-index probe) to
// one input relation. Rows pass through untouched — and unallocated — when
// nothing was pushed.
func (ex *executor) scanRows(sp *scanPlan, src *source, rows [][]sqldb.Value, outer *env) ([][]sqldb.Value, error) {
	if sp.idxExpr == nil && len(sp.filters) == 0 {
		return rows, nil
	}
	local := *src
	local.off = 0
	e := &env{sources: []*source{&local}, outer: outer}

	filters := sp.filters
	if sp.idxExpr != nil {
		v, err := ex.eval(sp.idxExpr, &env{outer: outer})
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			// `col = NULL` is false on every row.
			return nil, nil
		}
		indexed := false
		if src.table != nil && len(src.table.Rows) == len(rows) {
			if kb, ok := sqldb.AppendEqKey(nil, v); ok {
				if buckets, usable := src.table.EqIndex(sp.idxCol); usable {
					idxs := buckets[string(kb)]
					sub := make([][]sqldb.Value, 0, len(idxs))
					for _, ri := range idxs {
						sub = append(sub, rows[ri])
					}
					rows = sub
					indexed = true
				}
			}
		}
		if !indexed {
			// NaN probe value or unusable index: evaluate the original
			// conjunct linearly.
			filters = append([]sqlparse.Expr{sp.idxConj}, filters...)
		}
	}
	return ex.filterRows(rows, filters, e)
}

// joinNested pairs every left row with every right row, evaluating the full
// ON conjunct list — the reference strategy, also the fallback when hash
// keys cannot represent a value's equality class.
func (ex *executor) joinNested(st *joinStep, left, right [][]sqldb.Value, srcs []*source, k int, outer *env) ([][]sqldb.Value, error) {
	lw := srcs[k].off
	w := lw + srcs[k].width()
	scratch := make([]sqldb.Value, w)
	e := &env{sources: srcs[:k+1], row: scratch, outer: outer}
	var out [][]sqldb.Value
	for _, lr := range left {
		copy(scratch, lr)
		matched := false
		for _, rr := range right {
			copy(scratch[lw:], rr)
			ok := true
			for _, c := range st.all {
				b, err := ex.evalBool(c, e)
				if err != nil {
					return nil, err
				}
				if !b {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				nr := make([]sqldb.Value, w)
				copy(nr, scratch)
				out = append(out, nr)
			}
		}
		if !matched && st.kind == sqlparse.JoinLeft {
			out = append(out, padRight(lr, lw, w))
		}
	}
	return out, nil
}

// padRight extends a left row to width w with NULLs (LEFT JOIN no-match).
func padRight(lr []sqldb.Value, lw, w int) []sqldb.Value {
	nr := make([]sqldb.Value, w)
	copy(nr, lr)
	for i := lw; i < w; i++ {
		nr[i] = sqldb.Null()
	}
	return nr
}

// joinHash executes one join via a hash build over the right rows keyed on
// the equi conjuncts, probing with the left rows in order (preserving the
// nested loop's output order: right matches ascend within each left row).
// ok is false when a NaN key value is encountered — NaN equals every
// numeric under sqldb.Compare, which no key can encode — in which case the
// caller redoes the join pairwise.
func (ex *executor) joinHash(st *joinStep, left, right [][]sqldb.Value, srcs []*source, k int, outer *env) ([][]sqldb.Value, bool, error) {
	lw := srcs[k].off
	w := lw + srcs[k].width()

	var buckets map[string][]int
	if st.rightIdxCol >= 0 && srcs[k].table != nil && len(srcs[k].table.Rows) == len(right) {
		if b, usable := srcs[k].table.EqIndex(st.rightIdxCol); usable {
			buckets = b
		}
	}
	if buckets == nil {
		buckets = make(map[string][]int, len(right))
		local := *srcs[k]
		local.off = 0
		re := &env{sources: []*source{&local}, outer: outer}
		var kb []byte
		for ri, rr := range right {
			re.row = rr
			kb = kb[:0]
			skip := false
			for _, ke := range st.equiR {
				v, err := ex.eval(ke, re)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() {
					skip = true // NULL joins nothing
					break
				}
				var ok bool
				kb, ok = sqldb.AppendEqKey(kb, v)
				if !ok {
					return nil, false, nil // NaN: fall back to nested loop
				}
			}
			if skip {
				continue
			}
			buckets[string(kb)] = append(buckets[string(kb)], ri)
		}
	}

	le := &env{sources: srcs[:k], outer: outer}
	scratch := make([]sqldb.Value, w)
	pe := &env{sources: srcs[:k+1], row: scratch, outer: outer}
	var out [][]sqldb.Value
	var kb []byte
	for _, lr := range left {
		le.row = lr
		kb = kb[:0]
		skip := false
		for _, ke := range st.equiL {
			v, err := ex.eval(ke, le)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				skip = true
				break
			}
			var ok bool
			kb, ok = sqldb.AppendEqKey(kb, v)
			if !ok {
				return nil, false, nil // NaN probe: fall back, discard partial
			}
		}
		matched := false
		if !skip {
			for _, ri := range buckets[string(kb)] {
				copy(scratch, lr)
				copy(scratch[lw:], right[ri])
				ok := true
				for _, c := range st.residual {
					b, err := ex.evalBool(c, pe)
					if err != nil {
						return nil, false, err
					}
					if !b {
						ok = false
						break
					}
				}
				if ok {
					matched = true
					nr := make([]sqldb.Value, w)
					copy(nr, scratch)
					out = append(out, nr)
				}
			}
		}
		if !matched && st.kind == sqlparse.JoinLeft {
			out = append(out, padRight(lr, lw, w))
		}
	}
	return out, true, nil
}
