package sqlexec

import (
	"fmt"
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// benchDB builds a join-heavy database large enough for plan choice to
// dominate: 2000 orders against 200 customers.
func benchDB() *sqldb.DB {
	db := sqldb.NewDB("bench")
	cust := db.CreateTable("customers", []string{"cust_id", "region", "name"})
	for i := 0; i < 200; i++ {
		cust.MustInsert(sqldb.Int(int64(i)), sqldb.String(fmt.Sprintf("r%d", i%8)), sqldb.String(fmt.Sprintf("cust %d", i)))
	}
	ord := db.CreateTable("orders", []string{"order_id", "cust_id", "amount"})
	seed := uint64(7)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for i := 0; i < 2000; i++ {
		ord.MustInsert(sqldb.Int(int64(i)), sqldb.Int(int64(next(200))), sqldb.Int(int64(next(1000))))
	}
	return db
}

func benchQuery(b *testing.B, db *sqldb.DB, sql string, naive bool) {
	b.Helper()
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatalf("parse %q: %v", sql, err)
	}
	run := execSelect
	if naive {
		run = execSelectNaive
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(db, sel, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecJoin measures an equi join with a residual WHERE — hash join
// on the planner, a 2000x200 nested loop on the reference path.
func BenchmarkExecJoin(b *testing.B) {
	db := benchDB()
	sql := "SELECT c.name, o.amount FROM orders o JOIN customers c ON o.cust_id = c.cust_id WHERE o.amount > 900"
	b.Run("planner", func(b *testing.B) { benchQuery(b, db, sql, false) })
	b.Run("naive", func(b *testing.B) { benchQuery(b, db, sql, true) })
}

// BenchmarkExecPushdown measures a selective conjunction — an equality-index
// probe plus pushed filter on the planner, a full scan with post-hoc WHERE
// on the reference path.
func BenchmarkExecPushdown(b *testing.B) {
	db := benchDB()
	sql := "SELECT order_id FROM orders WHERE cust_id = 17 AND amount > 100"
	b.Run("planner", func(b *testing.B) { benchQuery(b, db, sql, false) })
	b.Run("naive", func(b *testing.B) { benchQuery(b, db, sql, true) })
}
