package sqlexec

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// buildPlan parses sql, binds its sources exactly as plannedRows does, and
// returns the resulting plan for shape assertions.
func buildPlan(t *testing.T, db *sqldb.DB, sql string) (*queryPlan, []*source) {
	t.Helper()
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex := &executor{db: db, cache: cacheFor(db)}
	base, _, err := ex.bindRef(sel.From, nil)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	srcs := []*source{base}
	off := base.width()
	for ji := range sel.Joins {
		right, _, err := ex.bindRef(&sel.Joins[ji].Right, nil)
		if err != nil {
			t.Fatalf("bind join %d of %q: %v", ji, sql, err)
		}
		right.off = off
		off += right.width()
		srcs = append(srcs, right)
	}
	return ex.makePlan(sel, srcs, nil), srcs
}

func TestPlanEquiJoinAndPushdown(t *testing.T) {
	p, _ := buildPlan(t, testDB(),
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id WHERE s.kind = 'bird' AND o.count > 1")
	st := &p.joins[0]
	if len(st.equiL) != 1 || len(st.equiR) != 1 {
		t.Fatalf("expected one equi key pair, got L=%d R=%d", len(st.equiL), len(st.equiR))
	}
	if len(st.residual) != 0 || len(st.leftFilters) != 0 {
		t.Errorf("pure equi ON should leave no residual/leftFilters: %d/%d",
			len(st.residual), len(st.leftFilters))
	}
	// s.kind = 'bird' becomes the right scan's index probe; o.count > 1 is a
	// pushed filter on the base scan. Nothing remains in the residual WHERE.
	if p.scans[1].idxExpr == nil {
		t.Error("s.kind = 'bird' should select the equality-index probe")
	}
	if len(p.scans[0].filters) != 1 {
		t.Errorf("o.count > 1 should push to the base scan: %d filters", len(p.scans[0].filters))
	}
	if len(p.where) != 0 {
		t.Errorf("no conjunct should remain in WHERE: %d left", len(p.where))
	}
}

func TestPlanLeftJoinNullableSideNotPushed(t *testing.T) {
	p, _ := buildPlan(t, testDB(),
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id WHERE o.location = 'north'")
	// The conjunct reads the nullable right side, so it must stay in the
	// residual WHERE where it also sees the null-padded rows.
	if len(p.scans[1].filters) != 0 || p.scans[1].idxExpr != nil {
		t.Error("nullable-side conjunct must not be pushed into the scan")
	}
	if len(p.where) != 1 {
		t.Errorf("conjunct should remain in WHERE: %d", len(p.where))
	}
}

func TestPlanInnerJoinLeftFilters(t *testing.T) {
	p, _ := buildPlan(t, testDB(),
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id AND o.count > 1")
	st := &p.joins[0]
	if len(st.leftFilters) != 1 {
		t.Errorf("left-only ON conjunct of an INNER join should pre-filter: %d", len(st.leftFilters))
	}
	if len(st.equiL) != 1 {
		t.Errorf("equi key should still be detected: %d", len(st.equiL))
	}
}

func TestPlanLeftJoinOnConjunctStaysResidual(t *testing.T) {
	p, _ := buildPlan(t, testDB(),
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id AND s.kind = 'bird'")
	st := &p.joins[0]
	// A LEFT join must not drop left rows before pairing: the left-only
	// conjunct controls matching, not row survival.
	if len(st.leftFilters) != 0 {
		t.Error("LEFT join must not pre-filter the left side")
	}
	if len(st.residual) != 1 {
		t.Errorf("left-only conjunct should run as a residual: %d", len(st.residual))
	}
}

func TestPlanHoistingStopsAtNonTotalConjunct(t *testing.T) {
	p, _ := buildPlan(t, testDB(),
		"SELECT * FROM species WHERE species_id IN (SELECT species_id FROM observations) AND kind = 'bird'")
	// The subquery conjunct can error, so neither it nor anything after it
	// may be hoisted past the point the naive path would short-circuit.
	if len(p.scans[0].filters) != 0 || p.scans[0].idxExpr != nil {
		t.Error("no conjunct may be pushed past a non-total prefix")
	}
	if len(p.where) != 2 {
		t.Errorf("both conjuncts should remain in WHERE order: %d", len(p.where))
	}

	// Reversed order: the total conjunct precedes the subquery and is safe
	// to hoist.
	p2, _ := buildPlan(t, testDB(),
		"SELECT * FROM species WHERE kind = 'bird' AND species_id IN (SELECT species_id FROM observations)")
	if len(p2.scans[0].filters)+btoi(p2.scans[0].idxExpr != nil) != 1 {
		t.Error("total prefix conjunct should be pushed")
	}
	if len(p2.where) != 1 {
		t.Errorf("only the subquery conjunct should remain: %d", len(p2.where))
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPlanConstantConjunctFoldsIntoBaseScan(t *testing.T) {
	p, _ := buildPlan(t, testDB(), "SELECT * FROM species WHERE 1 = 0 AND kind = 'bird'")
	if len(p.scans[0].filters) == 0 {
		t.Error("row-independent conjunct should fold into the base scan")
	}
	if len(p.where) != 0 {
		t.Errorf("nothing should remain in WHERE: %d", len(p.where))
	}
}

func TestPlanRightIndexReuse(t *testing.T) {
	p, srcs := buildPlan(t, testDB(),
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id")
	st := &p.joins[0]
	want, _ := srcs[1].colIdx["SPECIES_ID"]
	if st.rightIdxCol != want {
		t.Errorf("bare-column equi key over a base table should reuse its index: got %d, want %d",
			st.rightIdxCol, want)
	}

	// A filtered right scan must not reuse the whole-table index.
	p2, _ := buildPlan(t, testDB(),
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id AND s.kind = 'bird'")
	if p2.joins[0].rightIdxCol != -1 {
		t.Error("filtered right side must build its own hash table")
	}
}

// --- differential: planner vs retained naive path -----------------------------

// resultDigest folds a result (column names, then every value with its kind)
// into a comparison string. Two digests match iff the results are
// byte-identical, including type distinctions String() alone would collapse.
func resultDigest(res *sqldb.Result) string {
	var sb strings.Builder
	for _, c := range res.Columns {
		sb.WriteString(c)
		sb.WriteByte(1)
	}
	sb.WriteByte(2)
	for _, r := range res.Rows {
		for _, v := range r {
			fmt.Fprintf(&sb, "%d:%s", int(v.Kind), v.String())
			sb.WriteByte(1)
		}
		sb.WriteByte(2)
	}
	return sb.String()
}

// checkPlanVsNaive asserts the planner and the reference nested-loop path
// agree: both error, or both succeed with byte-identical results.
func checkPlanVsNaive(t *testing.T, db *sqldb.DB, sql string) {
	t.Helper()
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	pres, perr := execSelect(db, sel, nil)
	nres, nerr := execSelectNaive(db, sel, nil)
	if (perr != nil) != (nerr != nil) {
		t.Fatalf("error mismatch for %q:\n  planner: %v\n  naive:   %v", sql, perr, nerr)
	}
	if perr != nil {
		return
	}
	if dp, dn := resultDigest(pres), resultDigest(nres); dp != dn {
		t.Fatalf("result mismatch for %q:\n  planner: %q\n  naive:   %q", sql, dp, dn)
	}
}

func TestPlannerMatchesNaiveOnFixedQueries(t *testing.T) {
	db := testDB()
	db.CreateView("bird_species", "SELECT species_id, name FROM species WHERE kind = 'bird'")
	queries := []string{
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id",
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id",
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id WHERE o.location = 'north'",
		"SELECT * FROM species s LEFT JOIN observations o ON s.species_id = o.species_id AND o.count > 1",
		"SELECT s.name, o.obs_id FROM observations o JOIN species s ON o.species_id = s.species_id AND o.count > 1 WHERE s.kind = 'bird'",
		"SELECT a.name, b.name FROM species a JOIN species b ON a.kind = b.kind WHERE a.species_id < b.species_id",
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id JOIN species s2 ON s.kind = s2.kind",
		"SELECT * FROM observations WHERE species_id = NULL",
		"SELECT * FROM observations WHERE 1 = 0 AND count > 0",
		"SELECT * FROM observations WHERE 1 = 1 AND count > 0",
		"SELECT name FROM species WHERE species_id IN (SELECT species_id FROM observations WHERE count > 1)",
		"SELECT name FROM species s WHERE EXISTS (SELECT obs_id FROM observations o WHERE o.species_id = s.species_id)",
		"SELECT s.kind, COUNT(*) FROM observations o JOIN species s ON o.species_id = s.species_id GROUP BY s.kind ORDER BY s.kind",
		"SELECT DISTINCT s.kind FROM observations o JOIN species s ON o.species_id = s.species_id ORDER BY s.kind",
		"SELECT TOP 2 o.obs_id FROM observations o JOIN species s ON o.species_id = s.species_id ORDER BY o.count DESC",
		"SELECT b.name, o.count FROM bird_species b JOIN observations o ON b.species_id = o.species_id",
		"SELECT * FROM (SELECT species_id, kind FROM species) d JOIN observations o ON d.species_id = o.species_id",
		"SELECT * FROM observations o JOIN species s ON o.species_id = s.species_id WHERE o.count > ABS(-1)",
		"SELECT * FROM observations o JOIN missing m ON o.obs_id = m.id",
	}
	for _, q := range queries {
		checkPlanVsNaive(t, db, q)
	}
}

func TestPlannerNaNJoinFallsBackToNestedLoop(t *testing.T) {
	db := sqldb.NewDB("nan")
	l := db.CreateTable("l", []string{"k", "tag"})
	l.MustInsert(sqldb.Float(1), sqldb.String("a"))
	l.MustInsert(sqldb.Float(math.NaN()), sqldb.String("b"))
	l.MustInsert(sqldb.Null(), sqldb.String("c"))
	r := db.CreateTable("r", []string{"k", "lbl"})
	r.MustInsert(sqldb.Float(1), sqldb.String("x"))
	r.MustInsert(sqldb.Float(2), sqldb.String("y"))

	// NaN on the probe side: hash keys cannot encode its equality class
	// (NaN compares equal to every numeric), so the planner must redo the
	// join pairwise and still match the reference exactly.
	checkPlanVsNaive(t, db, "SELECT * FROM l JOIN r ON l.k = r.k")
	checkPlanVsNaive(t, db, "SELECT * FROM l LEFT JOIN r ON l.k = r.k")
	checkPlanVsNaive(t, db, "SELECT * FROM r JOIN l ON r.k = l.k")
	checkPlanVsNaive(t, db, "SELECT * FROM l WHERE k = 1")
}

// --- view caching regression ---------------------------------------------------

func TestViewExecutedOncePerGeneration(t *testing.T) {
	db := testDB()
	db.CreateView("north_obs", "SELECT obs_id, species_id, count FROM observations WHERE location = 'north'")
	before := Stats()
	for i := 0; i < 3; i++ {
		if _, err := ExecuteSQL(db, "SELECT obs_id FROM north_obs"); err != nil {
			t.Fatal(err)
		}
	}
	after := Stats()
	if got := after.ViewExecs - before.ViewExecs; got != 1 {
		t.Errorf("view should execute once across 3 planner queries, executed %d times", got)
	}
	if got := after.ViewCacheHits - before.ViewCacheHits; got != 2 {
		t.Errorf("expected 2 view cache hits, got %d", got)
	}

	// Any database mutation strands the cache: the next query re-executes
	// the view against the new generation.
	obs, _ := db.Table("observations")
	obs.MustInsert(sqldb.Int(6), sqldb.Int(2), sqldb.String("2022-01-01"), sqldb.Int(3), sqldb.String("north"))
	mid := Stats()
	res, err := ExecuteSQL(db, "SELECT obs_id FROM north_obs")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("post-insert view should see the new row: %d rows", res.NumRows())
	}
	if got := Stats().ViewExecs - mid.ViewExecs; got != 1 {
		t.Errorf("mutation should force exactly one re-execution, got %d", got)
	}
}

func TestNaivePathReexecutesViews(t *testing.T) {
	db := testDB()
	db.CreateView("v_obs", "SELECT obs_id, species_id FROM observations")
	sql := "SELECT a.obs_id FROM v_obs a JOIN v_obs b ON a.obs_id = b.obs_id"
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}

	before := Stats()
	if _, err := execSelectNaive(db, sel, nil); err != nil {
		t.Fatal(err)
	}
	if got := Stats().ViewExecs - before.ViewExecs; got != 2 {
		t.Errorf("naive path should re-execute the view per reference: %d execs, want 2", got)
	}

	// The planner executes it once and serves the second reference from the
	// per-generation cache — the bindRef re-parse/re-execute fix.
	mid := Stats()
	if _, err := execSelect(db, sel, nil); err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if got := after.ViewExecs - mid.ViewExecs; got != 1 {
		t.Errorf("planner should execute the view once, got %d", got)
	}
	if got := after.ViewCacheHits - mid.ViewCacheHits; got != 1 {
		t.Errorf("second reference should hit the cache, got %d hits", got)
	}
}

func TestPlannerConcurrentExecutionDeterministic(t *testing.T) {
	db := testDB()
	db.CreateView("north_obs2", "SELECT obs_id, species_id, count FROM observations WHERE location = 'north'")
	sql := "SELECT s.name, n.count FROM north_obs2 n JOIN species s ON n.species_id = s.species_id ORDER BY n.obs_id"
	ref, err := ExecuteSQL(db, sql)
	if err != nil {
		t.Fatal(err)
	}
	want := resultDigest(ref)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ExecuteSQL(db, sql)
			if err != nil {
				errs <- err
				return
			}
			if got := resultDigest(res); got != want {
				errs <- fmt.Errorf("digest mismatch:\n  got  %q\n  want %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
