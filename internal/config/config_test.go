package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/schema"
)

func TestParseFullConfig(t *testing.T) {
	exp, err := Parse([]byte(`{
		"name": "smoke",
		"backends": [
			{"type": "synthetic", "model": "gpt-4o"},
			{"id": "wire", "type": "http", "base_url": "http://127.0.0.1:9", "model": "m", "max_retries": 2, "timeout_ms": 500, "backoff_ms": 5},
			{"id": "mock", "type": "mock-http", "model": "mock-model"}
		],
		"databases": ["KIS"],
		"variants": ["native", "least"],
		"workers": 2,
		"budget": {"max_questions_per_db": 5, "max_cells": 100}
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if exp.Name != "smoke" || len(exp.Backends) != 3 || exp.Workers != 2 {
		t.Fatalf("unexpected experiment: %+v", exp)
	}
	if exp.Backends[0].Name() != "gpt-4o" || exp.Backends[1].Name() != "wire" {
		t.Fatalf("backend names: %q %q", exp.Backends[0].Name(), exp.Backends[1].Name())
	}
	vs, err := exp.ResolveVariants()
	if err != nil {
		t.Fatalf("ResolveVariants: %v", err)
	}
	if want := []schema.Variant{schema.VariantNative, schema.VariantLeast}; !reflect.DeepEqual(vs, want) {
		t.Fatalf("variants = %v, want %v", vs, want)
	}
	if exp.Budget.MaxQuestionsPerDB != 5 || exp.Budget.MaxCells != 100 {
		t.Fatalf("budget = %+v", exp.Budget)
	}
}

func TestParseDefaults(t *testing.T) {
	exp, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	vs, err := exp.ResolveVariants()
	if err != nil {
		t.Fatalf("ResolveVariants: %v", err)
	}
	if !reflect.DeepEqual(vs, schema.Variants) {
		t.Fatalf("empty variants must mean the full axis, got %v", vs)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"bakends": []}`, "bakends"},
		{"unknown backend type", `{"backends": [{"type": "grpc", "model": "m"}]}`, "unknown type"},
		{"synthetic without model", `{"backends": [{"type": "synthetic"}]}`, "needs a model"},
		{"http without url", `{"backends": [{"type": "http", "model": "m"}]}`, "base_url"},
		{"duplicate ids", `{"backends": [{"model": "a"}, {"id": "a", "type": "mock-http"}]}`, "duplicate"},
		{"bad variant", `{"variants": ["natural"]}`, "unknown variant"},
		{"negative workers", `{"workers": -1}`, "non-negative"},
		{"negative budget", `{"budget": {"max_cells": -5}}`, "non-negative"},
		{"trailing data", `{} {}`, "trailing"},
		{"not json", `nope`, "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp.json")
	if err := os.WriteFile(path, []byte(`{"name": "from-disk"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	exp, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if exp.Name != "from-disk" {
		t.Fatalf("Name = %q", exp.Name)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load succeeded on a missing file")
	}
}

func TestParseVariantAliases(t *testing.T) {
	for in, want := range map[string]schema.Variant{
		"Native": schema.VariantNative, "n1": schema.VariantRegular,
		"N2": schema.VariantLow, "LEAST": schema.VariantLeast,
	} {
		v, err := ParseVariant(in)
		if err != nil || v != want {
			t.Fatalf("ParseVariant(%q) = %v, %v; want %v", in, v, err, want)
		}
	}
	if _, err := ParseVariant(""); err == nil {
		t.Fatal("ParseVariant accepted the empty string")
	}
}
