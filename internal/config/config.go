// Package config defines the declarative JSON experiment configuration the
// binaries load instead of flag soup: which backends to evaluate, over
// which databases and schema variants, with what parallelism and budget.
// The package is pure data — internal/backend builds Backend values from
// the specs, and internal/experiments resolves databases and budgets — so
// it can be imported from every layer without cycles.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/snails-bench/snails/internal/schema"
)

// Backend types a BackendSpec can name.
const (
	// TypeSynthetic is the deterministic synthetic family (internal/llm);
	// Model selects the profile.
	TypeSynthetic = "synthetic"
	// TypeHTTP is an OpenAI-style /v1/chat/completions endpoint at
	// BaseURL.
	TypeHTTP = "http"
	// TypeMockHTTP spins up the hermetic in-process mock endpoint and
	// points an HTTP backend at it — the config-driven smoke path.
	TypeMockHTTP = "mock-http"
)

// BackendSpec declares one backend of an experiment.
type BackendSpec struct {
	// ID names the backend in cells and reports; defaults to Model.
	ID string `json:"id,omitempty"`
	// Type is one of the Type* constants; empty means synthetic.
	Type string `json:"type,omitempty"`
	// Model is the synthetic profile name, or the model field of the
	// chat request for wire backends.
	Model string `json:"model,omitempty"`
	// BaseURL roots an http backend's endpoint (ignored for the others).
	BaseURL string `json:"base_url,omitempty"`
	// MaxRetries / TimeoutMs / BackoffMs tune wire backends; zero means
	// the backend defaults.
	MaxRetries int `json:"max_retries,omitempty"`
	TimeoutMs  int `json:"timeout_ms,omitempty"`
	BackoffMs  int `json:"backoff_ms,omitempty"`
}

// Name returns the spec's reporting id.
func (s *BackendSpec) Name() string {
	if s.ID != "" {
		return s.ID
	}
	return s.Model
}

// Budget bounds an experiment. Zero fields mean unbounded.
type Budget struct {
	// MaxQuestionsPerDB keeps only the first N questions of each
	// database (grid order is deterministic, so this is a stable prefix).
	MaxQuestionsPerDB int `json:"max_questions_per_db,omitempty"`
	// MaxCells caps the total grid size; enumeration stops once the
	// next question's stride would exceed it.
	MaxCells int `json:"max_cells,omitempty"`
}

// Experiment is the root of a config file.
type Experiment struct {
	// Name labels the run in logs and reports.
	Name string `json:"name,omitempty"`
	// Backends to evaluate. Empty means the full synthetic family.
	Backends []BackendSpec `json:"backends,omitempty"`
	// Databases restricts the collection (by dataset name). Empty means
	// every SNAILS database.
	Databases []string `json:"databases,omitempty"`
	// Variants restricts the schema-naturalness axis ("native",
	// "regular", "low", "least"). Empty means all four.
	Variants []string `json:"variants,omitempty"`
	// Workers is the sweep worker count; 0 means the process default.
	Workers int `json:"workers,omitempty"`
	// Budget bounds the grid.
	Budget Budget `json:"budget,omitempty"`
}

// Load reads and validates an experiment config file.
func Load(path string) (*Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	exp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	return exp, nil
}

// Parse decodes and validates an experiment config. Unknown fields are
// rejected so a typo'd axis fails loudly instead of silently running the
// default grid.
func Parse(data []byte) (*Experiment, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	exp := &Experiment{}
	if err := dec.Decode(exp); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data after config object")
	}
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	return exp, nil
}

// Validate checks the experiment's internal consistency (backend specs,
// variant names, budget signs). Database names are resolved by the
// experiments layer, which owns the collection.
func (e *Experiment) Validate() error {
	seen := map[string]bool{}
	for i := range e.Backends {
		b := &e.Backends[i]
		switch b.Type {
		case "", TypeSynthetic:
			if b.Model == "" {
				return fmt.Errorf("backends[%d]: synthetic backend needs a model (profile name)", i)
			}
		case TypeHTTP:
			if b.BaseURL == "" {
				return fmt.Errorf("backends[%d]: http backend needs a base_url", i)
			}
		case TypeMockHTTP:
			// The mock endpoint is spun up in-process; no URL needed.
		default:
			return fmt.Errorf("backends[%d]: unknown type %q (want %s, %s, or %s)",
				i, b.Type, TypeSynthetic, TypeHTTP, TypeMockHTTP)
		}
		name := b.Name()
		if name == "" {
			return fmt.Errorf("backends[%d]: needs an id or model", i)
		}
		if seen[name] {
			return fmt.Errorf("backends[%d]: duplicate backend id %q", i, name)
		}
		seen[name] = true
		if b.MaxRetries < 0 || b.TimeoutMs < 0 || b.BackoffMs < 0 {
			return fmt.Errorf("backends[%d]: retries/timeout/backoff must be non-negative", i)
		}
	}
	for _, v := range e.Variants {
		if _, err := ParseVariant(v); err != nil {
			return err
		}
	}
	if e.Workers < 0 {
		return fmt.Errorf("workers must be non-negative")
	}
	if e.Budget.MaxQuestionsPerDB < 0 || e.Budget.MaxCells < 0 {
		return fmt.Errorf("budget bounds must be non-negative")
	}
	return nil
}

// ResolveVariants maps the config's variant names to schema variants, in
// config order. Empty means the full axis.
func (e *Experiment) ResolveVariants() ([]schema.Variant, error) {
	if len(e.Variants) == 0 {
		return schema.Variants, nil
	}
	out := make([]schema.Variant, 0, len(e.Variants))
	for _, s := range e.Variants {
		v, err := ParseVariant(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseVariant maps a config/wire variant name ("native", "regular",
// "low", "least", case-insensitive, with the paper's n1/n2/n3 aliases) to
// a schema variant.
func ParseVariant(s string) (schema.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "native":
		return schema.VariantNative, nil
	case "regular", "n1":
		return schema.VariantRegular, nil
	case "low", "n2":
		return schema.VariantLow, nil
	case "least", "n3":
		return schema.VariantLeast, nil
	}
	return schema.VariantNative, fmt.Errorf("unknown variant %q (want native, regular, low, or least)", s)
}
