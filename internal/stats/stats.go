// Package stats provides the statistical machinery of the paper's analysis:
// Kendall tau-b rank correlation with significance testing, means,
// confidence intervals, and distribution summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// TauResult holds a Kendall tau-b correlation and its significance.
type TauResult struct {
	Tau    float64
	P      float64 // two-sided p-value, normal approximation
	N      int
	ZScore float64
}

// ErrTooFewObservations is returned when fewer than two pairs are supplied.
var ErrTooFewObservations = errors.New("stats: need at least 2 observations")

// KendallTau computes the tau-b rank correlation between x and y (handling
// ties), with a two-sided p-value from the normal approximation — the same
// statistic the paper reports in Figures 31-47.
func KendallTau(x, y []float64) (TauResult, error) {
	if len(x) != len(y) {
		return TauResult{}, errors.New("stats: mismatched lengths")
	}
	n := len(x)
	if n < 2 {
		return TauResult{}, ErrTooFewObservations
	}
	var concordant, discordant int64
	// tie counts per distinct value
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[j] - x[i])
			dy := sign(y[j] - y[i])
			s := dx * dy
			if s > 0 {
				concordant++
			} else if s < 0 {
				discordant++
			}
		}
	}
	n0 := int64(n) * int64(n-1) / 2
	n1 := tiePairs(x)
	n2 := tiePairs(y)
	denom := math.Sqrt(float64(n0-n1)) * math.Sqrt(float64(n0-n2))
	if denom == 0 {
		// One of the variables is constant: correlation undefined; report 0
		// with p=1 as scipy does for degenerate inputs.
		return TauResult{Tau: 0, P: 1, N: n}, nil
	}
	tau := float64(concordant-discordant) / denom

	// Normal approximation of the null distribution of S = C - D with tie
	// correction (the standard tau-b significance test). The v1/v2 terms are
	// computed only for n > 2: the v2 divisor 9n(n-1)(n-2) is zero at n == 2,
	// and evaluating it there yields NaN (0/0). At n == 2 both terms are
	// identically zero anyway — a non-degenerate pair has no ties — so
	// skipping them matches scipy's tau-b variance at small n.
	v0 := float64(n) * float64(n-1) * float64(2*n+5)
	vt := tieVariance(x)
	vu := tieVariance(y)
	variance := (v0 - vt - vu) / 18
	if n > 2 {
		v1 := float64(tieSum1(x)) * float64(tieSum1(y)) / (2 * float64(n) * float64(n-1))
		v2 := float64(tieSum2(x)) * float64(tieSum2(y)) /
			(9 * float64(n) * float64(n-1) * float64(n-2))
		variance += v1 + v2
	}
	if variance <= 0 {
		return TauResult{Tau: tau, P: 1, N: n}, nil
	}
	z := float64(concordant-discordant) / math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TauResult{Tau: tau, P: p, N: n, ZScore: z}, nil
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// tieGroups returns the sizes of groups of tied values.
func tieGroups(v []float64) []int64 {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	var groups []int64
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if j-i > 1 {
			groups = append(groups, int64(j-i))
		}
		i = j
	}
	return groups
}

func tiePairs(v []float64) int64 {
	var n int64
	for _, t := range tieGroups(v) {
		n += t * (t - 1) / 2
	}
	return n
}

func tieVariance(v []float64) float64 {
	var s float64
	for _, t := range tieGroups(v) {
		s += float64(t) * float64(t-1) * float64(2*t+5)
	}
	return s
}

func tieSum1(v []float64) int64 {
	var s int64
	for _, t := range tieGroups(v) {
		s += t * (t - 1)
	}
	return s
}

func tieSum2(v []float64) int64 {
	var s int64
	for _, t := range tieGroups(v) {
		s += t * (t - 1) * (t - 2)
	}
	return s
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the sample standard deviation.
func StdDev(v []float64) float64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	m := Mean(v)
	var ss float64
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MeanCI returns the mean and its half-width confidence interval at the
// given confidence level (e.g. 0.95), using the normal approximation — the
// error bars of Figure 9.
func MeanCI(v []float64, confidence float64) (mean, halfWidth float64) {
	mean = Mean(v)
	if len(v) < 2 {
		return mean, 0
	}
	z := NormalQuantile(0.5 + confidence/2)
	halfWidth = z * StdDev(v) / math.Sqrt(float64(len(v)))
	return mean, halfWidth
}

// NormalQuantile is the inverse standard normal CDF (Acklam's rational
// approximation; max relative error ~1e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Percentile returns the q-th percentile (0..1) using linear interpolation.
func Percentile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF returns, for each threshold, the fraction of values <= threshold —
// used by the cumulative-distribution figures (Figure 26/27).
func CDF(values []float64, thresholds []float64) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(sorted, t+1e-12)
		if len(sorted) == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(idx) / float64(len(sorted))
	}
	return out
}

// BoxStats summarizes a distribution for box-and-whisker reporting.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box computes box-plot statistics.
func Box(v []float64) BoxStats {
	if len(v) == 0 {
		return BoxStats{}
	}
	return BoxStats{
		Min:    Percentile(v, 0),
		Q1:     Percentile(v, 0.25),
		Median: Percentile(v, 0.5),
		Q3:     Percentile(v, 0.75),
		Max:    Percentile(v, 1),
		Mean:   Mean(v),
		N:      len(v),
	}
}
