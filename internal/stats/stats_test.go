package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKendallTauPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	r, err := KendallTau(x, up)
	if err != nil || math.Abs(r.Tau-1) > 1e-9 {
		t.Errorf("perfect concordance: tau=%v err=%v", r.Tau, err)
	}
	r, err = KendallTau(x, down)
	if err != nil || math.Abs(r.Tau+1) > 1e-9 {
		t.Errorf("perfect discordance: tau=%v err=%v", r.Tau, err)
	}
}

func TestKendallTauIndependent(t *testing.T) {
	// Deterministic pseudo-random independent sequences.
	var x, y []float64
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>33) / float64(1<<31)
	}
	for i := 0; i < 400; i++ {
		x = append(x, next())
		y = append(y, next())
	}
	r, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Tau) > 0.08 {
		t.Errorf("independent data should have tau near 0: %v", r.Tau)
	}
	if r.P < 0.05 {
		t.Errorf("independent data should not be significant: p=%v", r.P)
	}
}

func TestKendallTauSignificance(t *testing.T) {
	// Strongly correlated data with noise must be significant.
	var x, y []float64
	for i := 0; i < 200; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+float64(i%7))
	}
	r, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tau < 0.8 || r.P > 1e-10 {
		t.Errorf("expected strong significant correlation: tau=%v p=%v", r.Tau, r.P)
	}
}

func TestKendallTauTies(t *testing.T) {
	// Binary outcome vs 3-level predictor — the shape of the paper's
	// naturalness/accuracy correlations. Ties must not panic or skew out of
	// bounds.
	x := []float64{0, 0, 0.5, 0.5, 1, 1, 1, 0, 0.5, 1}
	y := []float64{0, 0, 0, 1, 1, 1, 1, 0, 1, 0}
	r, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tau < -1 || r.Tau > 1 {
		t.Errorf("tau out of bounds with ties: %v", r.Tau)
	}
	if r.Tau <= 0 {
		t.Errorf("expected positive correlation: %v", r.Tau)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{1, 2, 3, 4}
	r, err := KendallTau(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tau != 0 || r.P != 1 {
		t.Errorf("constant input should yield tau=0 p=1, got %+v", r)
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("single observation should error")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestKendallTauBounds(t *testing.T) {
	f := func(pairs [12]struct{ X, Y int8 }) bool {
		var x, y []float64
		for _, p := range pairs {
			x = append(x, float64(p.X))
			y = append(y, float64(p.Y))
		}
		r, err := KendallTau(x, y)
		if err != nil {
			return false
		}
		return r.Tau >= -1.0001 && r.Tau <= 1.0001 && r.P >= 0 && r.P <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKendallTauSymmetry(t *testing.T) {
	x := []float64{1, 3, 2, 5, 4, 6, 8, 7}
	y := []float64{2, 1, 4, 3, 6, 5, 8, 7}
	a, _ := KendallTau(x, y)
	b, _ := KendallTau(y, x)
	if math.Abs(a.Tau-b.Tau) > 1e-12 {
		t.Errorf("tau should be symmetric: %v vs %v", a.Tau, b.Tau)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.99} {
		z := NormalQuantile(p)
		if back := NormalCDF(z); math.Abs(back-p) > 1e-6 {
			t.Errorf("quantile/CDF round trip at %v: z=%v back=%v", p, z, back)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(v); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("stddev = %v", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs should return 0")
	}
}

func TestMeanCI(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i % 10)
	}
	mean, hw := MeanCI(v, 0.95)
	if mean != 4.5 {
		t.Errorf("mean = %v", mean)
	}
	if hw <= 0 || hw > 1 {
		t.Errorf("95%% CI half width implausible: %v", hw)
	}
}

func TestPercentileAndBox(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(v, 0.5); p != 5.5 {
		t.Errorf("median = %v", p)
	}
	if p := Percentile(v, 0); p != 1 {
		t.Errorf("min = %v", p)
	}
	if p := Percentile(v, 1); p != 10 {
		t.Errorf("max = %v", p)
	}
	b := Box(v)
	if b.Min != 1 || b.Max != 10 || b.Median != 5.5 || b.N != 10 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Errorf("quartile ordering broken: %+v", b)
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{1, 2, 2, 3, 4}
	got := CDF(vals, []float64{0, 2, 4, 10})
	want := []float64{0, 0.6, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw [10]float64, thresholds [5]float64) bool {
		vals := raw[:]
		ths := thresholds[:]
		// sort thresholds ascending
		for i := 0; i < len(ths); i++ {
			for j := i + 1; j < len(ths); j++ {
				if ths[j] < ths[i] {
					ths[i], ths[j] = ths[j], ths[i]
				}
			}
		}
		cdf := CDF(vals, ths)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression: at n == 2 the v2 tie-correction divisor 9n(n-1)(n-2) is zero.
// The term must not be evaluated there — every field of the result has to
// come out finite, matching scipy's tau-b for a two-observation sample.
func TestKendallTauTwoObservations(t *testing.T) {
	cases := []struct {
		name    string
		x, y    []float64
		wantTau float64
	}{
		{"concordant", []float64{1, 2}, []float64{10, 20}, 1},
		{"discordant", []float64{1, 2}, []float64{20, 10}, -1},
	}
	for _, tc := range cases {
		r, err := KendallTau(tc.x, tc.y)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(r.Tau-tc.wantTau) > 1e-9 {
			t.Errorf("%s: tau=%v want %v", tc.name, r.Tau, tc.wantTau)
		}
		for _, v := range []float64{r.Tau, r.P, r.ZScore} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite field in %+v", tc.name, r)
			}
		}
		if r.P < 0 || r.P > 1 {
			t.Errorf("%s: p out of range: %v", tc.name, r.P)
		}
	}

	// A constant variable at n == 2 keeps the degenerate convention.
	r, err := KendallTau([]float64{3, 3}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tau != 0 || r.P != 1 {
		t.Errorf("constant x: want tau=0 p=1, got %+v", r)
	}
}
