package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTrainAndEncodeBasic(t *testing.T) {
	tok := Train("test", "height height height vegetation vegetation", 50)
	if tok.VocabSize() == 0 {
		t.Fatal("no merges learned")
	}
	enc := tok.EncodeWord("height")
	if len(enc) == 0 {
		t.Fatal("empty encoding")
	}
	if got := strings.Join(enc, ""); got != "height" {
		t.Errorf("encoding does not reassemble word: %v -> %q", enc, got)
	}
	// A trained frequent word should compress to very few tokens.
	if len(enc) > 2 {
		t.Errorf("frequent word should compress, got %d tokens: %v", len(enc), enc)
	}
}

func TestEncodeReassembles(t *testing.T) {
	tok := ForModel(ModelGPT)
	f := func(s string) bool {
		// Lower-cased alphanumeric content must be preserved in order.
		var want strings.Builder
		for _, r := range strings.ToLower(s) {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				want.WriteRune(r)
			}
		}
		var got strings.Builder
		for _, tk := range tok.Encode(s) {
			for _, r := range strings.ToLower(tk) {
				if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
					got.WriteRune(r)
				}
			}
		}
		return want.String() == got.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNaturalWordsFewerTokens(t *testing.T) {
	tok := ForModel(ModelGPT)
	// In-vocabulary natural identifiers should have lower TCR than
	// abbreviated ones: this is the Figure 28 relationship.
	natural := tok.TCR("vegetation_height")
	abbrev := tok.TCR("VgHt")
	if natural >= abbrev {
		t.Errorf("TCR(natural)=%v should be below TCR(abbrev)=%v", natural, abbrev)
	}
}

func TestTCRBounds(t *testing.T) {
	tok := ForModel(ModelGPT)
	f := func(s string) bool {
		v := tok.TCR(s)
		return v >= 0 && (len(s) == 0 || v <= float64(len([]rune(s))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVocabularySizeOrdering(t *testing.T) {
	gpt := ForModel(ModelGPT)
	llama := ForModel(ModelCodeLlama)
	bison := ForModel(ModelCodeBison)
	if !(gpt.VocabSize() > llama.VocabSize() && llama.VocabSize() > bison.VocabSize()) {
		t.Errorf("vocab sizes should be ordered gpt > codellama > codebison: %d %d %d",
			gpt.VocabSize(), llama.VocabSize(), bison.VocabSize())
	}
	// A smaller vocabulary should yield equal-or-more tokens for the same word.
	w := "transportation"
	if gpt.Count(w) > bison.Count(w) {
		t.Errorf("larger vocab should not produce more tokens: gpt=%d bison=%d",
			gpt.Count(w), bison.Count(w))
	}
}

func TestForModelFallback(t *testing.T) {
	if ForModel("nonexistent") != ForModel(ModelGPT) {
		t.Error("unknown model should fall back to GPT tokenizer")
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 3 {
		t.Fatalf("want 3 model names, got %v", names)
	}
	for _, n := range names {
		if ForModel(n) == nil {
			t.Errorf("no tokenizer for %q", n)
		}
	}
}

func TestEncodeDigitsAndSymbols(t *testing.T) {
	tok := ForModel(ModelGPT)
	enc := tok.Encode("CSI22")
	// digits are individual tokens
	found2 := 0
	for _, e := range enc {
		if e == "2" {
			found2++
		}
	}
	if found2 != 2 {
		t.Errorf("expected two digit tokens in %v", enc)
	}
	if tok.Count("") != 0 {
		t.Error("empty identifier should have 0 tokens")
	}
}

func TestEncodeWordDeterministic(t *testing.T) {
	tok := ForModel(ModelCodeLlama)
	a := tok.Encode("WaterTemperature")
	b := tok.Encode("WaterTemperature")
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("encoding must be deterministic")
	}
}

// sameTokenizer asserts two trainers learned identical merge tables.
func sameTokenizer(t *testing.T, got, want *Tokenizer) {
	t.Helper()
	if len(got.ranks) != len(want.ranks) {
		t.Fatalf("merge count differs: got %d want %d", len(got.ranks), len(want.ranks))
	}
	for p, r := range want.ranks {
		if gr, ok := got.ranks[p]; !ok || gr != r {
			t.Fatalf("merge %q+%q: got rank %d (present=%v), want %d", p.left, p.right, gr, ok, r)
		}
	}
	if len(got.vocab) != len(want.vocab) {
		t.Fatalf("vocab size differs: got %d want %d", len(got.vocab), len(want.vocab))
	}
	for v := range want.vocab {
		if _, ok := got.vocab[v]; !ok {
			t.Fatalf("vocab missing %q", v)
		}
	}
}

// TestTrainMatchesReference pins the incremental trainer to the original
// full-recount trainer: identical merge tables (and hence identical
// encodings) on the real training corpus and on exhaustion-terminating
// corpora where the merge budget outlives the mergeable pairs.
func TestTrainMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		corpus string
		merges int
	}{
		{"tiny", "height height height vegetation vegetation width", 50},
		{"exhaustion", "aa ab ba bb aa ab", 1000},
		{"corpus300", trainingCorpus(), 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sameTokenizer(t, Train("x", tc.corpus, tc.merges), trainReference("x", tc.corpus, tc.merges))
		})
	}
}

func BenchmarkTrain(b *testing.B) {
	corpus := trainingCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train("bench", corpus, 2600)
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := ForModel(ModelGPT)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok.Encode("AdaptiveCruiseControlStatus_2021")
	}
}
