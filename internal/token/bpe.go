// Package token implements a byte-pair-encoding (BPE) subword tokenizer
// trained offline on the embedded English corpus. It substitutes for the
// model tokenizers (tiktoken, CodeLlama SentencePiece) the paper uses in its
// appendix-B.9 token analyses: natural identifiers decompose into few
// in-vocabulary tokens while abbreviated identifiers shatter into many
// subtokens, raising their token-to-character ratio.
package token

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/memo"
)

// pair is an adjacent symbol pair considered for merging during training.
type pair struct{ left, right string }

// Tokenizer is a trained BPE tokenizer. It is immutable after Train and safe
// for concurrent use.
type Tokenizer struct {
	name   string
	ranks  map[pair]int // merge priority: lower rank merges first
	vocab  map[string]struct{}
	merges int
	// counts memoizes per-identifier token counts: the sweep asks for the
	// same few hundred schema identifiers tens of thousands of times, from
	// many goroutines at once. nil (zero-value Tokenizer) disables the memo.
	counts *memo.Cache[int]
}

// Train learns merge rules from the corpus. The corpus is a whitespace
// separated list of words; word frequency is taken as the number of times a
// word appears. numMerges bounds the learned vocabulary size.
func Train(name, corpus string, numMerges int) *Tokenizer {
	freq := make(map[string]int)
	for _, w := range strings.Fields(strings.ToLower(corpus)) {
		freq[w]++
	}
	// Represent each word as a sequence of symbols ending in the word
	// boundary marker.
	type entry struct {
		syms []string
		n    int
	}
	entries := make([]entry, 0, len(freq))
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic training order
	for _, w := range words {
		syms := make([]string, 0, len(w)+1)
		for _, r := range w {
			syms = append(syms, string(r))
		}
		syms = append(syms, "</w>")
		entries = append(entries, entry{syms: syms, n: freq[w]})
	}

	t := &Tokenizer{
		name:   name,
		ranks:  make(map[pair]int, numMerges),
		vocab:  make(map[string]struct{}),
		merges: numMerges,
		counts: memo.NewBounded[int](1 << 16),
	}
	for i := 0; i < numMerges; i++ {
		counts := make(map[pair]int)
		for _, e := range entries {
			for j := 0; j+1 < len(e.syms); j++ {
				counts[pair{e.syms[j], e.syms[j+1]}] += e.n
			}
		}
		if len(counts) == 0 {
			break
		}
		best := pair{}
		bestN := -1
		for p, n := range counts {
			if n > bestN || (n == bestN && lessPair(p, best)) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // nothing left worth merging
		}
		t.ranks[best] = i
		merged := best.left + best.right
		t.vocab[merged] = struct{}{}
		for k := range entries {
			entries[k].syms = applyMerge(entries[k].syms, best, merged)
		}
	}
	return t
}

func lessPair(a, b pair) bool {
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

func applyMerge(syms []string, p pair, merged string) []string {
	out := syms[:0]
	i := 0
	for i < len(syms) {
		if i+1 < len(syms) && syms[i] == p.left && syms[i+1] == p.right {
			out = append(out, merged)
			i += 2
			continue
		}
		out = append(out, syms[i])
		i++
	}
	return out
}

// Name returns the tokenizer's display name.
func (t *Tokenizer) Name() string { return t.name }

// Merges returns the number of merge rules requested at training time.
func (t *Tokenizer) Merges() int { return t.merges }

// VocabSize returns the number of learned multi-character symbols.
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// EncodeWord tokenizes a single lower-case word into BPE subtokens.
func (t *Tokenizer) EncodeWord(word string) []string {
	if word == "" {
		return nil
	}
	syms := make([]string, 0, len(word)+1)
	for _, r := range strings.ToLower(word) {
		syms = append(syms, string(r))
	}
	syms = append(syms, "</w>")
	for {
		bestRank := int(^uint(0) >> 1)
		bestIdx := -1
		for j := 0; j+1 < len(syms); j++ {
			if r, ok := t.ranks[pair{syms[j], syms[j+1]}]; ok && r < bestRank {
				bestRank, bestIdx = r, j
			}
		}
		if bestIdx < 0 {
			break
		}
		merged := syms[bestIdx] + syms[bestIdx+1]
		syms = append(syms[:bestIdx], append([]string{merged}, syms[bestIdx+2:]...)...)
	}
	// Strip the boundary marker from the trailing token for reporting.
	out := make([]string, 0, len(syms))
	for _, s := range syms {
		s = strings.TrimSuffix(s, "</w>")
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Encode tokenizes an identifier: it is first segmented on case and
// punctuation boundaries (mirroring how model tokenizers treat identifiers
// in schema prompts) and each segment is BPE-encoded. Digits and symbols
// each count as single tokens.
func (t *Tokenizer) Encode(identifier string) []string {
	var out []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			out = append(out, t.EncodeWord(string(cur))...)
			cur = cur[:0]
		}
	}
	prevLower := false
	for _, r := range identifier {
		switch {
		case r >= 'a' && r <= 'z':
			cur = append(cur, r)
			prevLower = true
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			cur = append(cur, r+('a'-'A'))
			prevLower = false
		case r >= '0' && r <= '9':
			flush()
			out = append(out, string(r))
			prevLower = false
		default:
			flush()
			out = append(out, string(r))
			prevLower = false
		}
	}
	flush()
	return out
}

// Count returns the number of tokens the identifier encodes to.
func (t *Tokenizer) Count(identifier string) int {
	if t.counts == nil {
		return len(t.Encode(identifier))
	}
	if n, ok := t.counts.Get(identifier); ok {
		return n
	}
	n := len(t.Encode(identifier))
	t.counts.Put(identifier, n)
	return n
}

// TCR returns the token-to-character ratio of the identifier (equation 6 of
// the paper): token count divided by character count. More natural
// identifiers have lower TCR because their words are in-vocabulary.
func (t *Tokenizer) TCR(identifier string) float64 {
	n := len([]rune(identifier))
	if n == 0 {
		return 0
	}
	return float64(t.Count(identifier)) / float64(n)
}
