// Package token implements a byte-pair-encoding (BPE) subword tokenizer
// trained offline on the embedded English corpus. It substitutes for the
// model tokenizers (tiktoken, CodeLlama SentencePiece) the paper uses in its
// appendix-B.9 token analyses: natural identifiers decompose into few
// in-vocabulary tokens while abbreviated identifiers shatter into many
// subtokens, raising their token-to-character ratio.
package token

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/memo"
)

// pair is an adjacent symbol pair considered for merging during training.
type pair struct{ left, right string }

// Tokenizer is a trained BPE tokenizer. It is immutable after Train and safe
// for concurrent use.
type Tokenizer struct {
	name   string
	ranks  map[pair]int // merge priority: lower rank merges first
	vocab  map[string]struct{}
	merges int
	// counts memoizes per-identifier token counts: the sweep asks for the
	// same few hundred schema identifiers tens of thousands of times, from
	// many goroutines at once. nil (zero-value Tokenizer) disables the memo.
	counts *memo.Cache[int]
}

// Train learns merge rules from the corpus. The corpus is a whitespace
// separated list of words; word frequency is taken as the number of times a
// word appears. numMerges bounds the learned vocabulary size.
//
// The trainer keeps pair counts incrementally: symbols are interned to dense
// int32 ids, each merge re-counts only the entries that actually contain the
// merged pair (tracked by an occurrence index), and the arg-max is a lazy
// max-heap of (count, pair) snapshots validated against the live counts on
// pop. That replaces the original full-corpus recount per merge — O(merges ×
// corpus) — with work proportional to the symbols actually rewritten. The
// original trainer survives as trainReference; TestTrainMatchesReference
// asserts identical merge tables, so the learned tokenizer is bit-identical.
func Train(name, corpus string, numMerges int) *Tokenizer {
	freq := make(map[string]int)
	for _, w := range strings.Fields(strings.ToLower(corpus)) {
		freq[w]++
	}
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic training order

	// Symbol interning: pair keys pack two dense ids into a uint64, so the
	// hot maps hash integers instead of composite string keys.
	var symtab []string
	symID := make(map[string]int32)
	intern := func(s string) int32 {
		id, ok := symID[s]
		if !ok {
			id = int32(len(symtab))
			symID[s] = id
			symtab = append(symtab, s)
		}
		return id
	}
	pk := func(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

	type entry struct {
		syms []int32
		n    int
	}
	entries := make([]entry, 0, len(words))
	counts := make(map[uint64]int)
	// occ maps a pair to the entries it has appeared in. Entries are appended
	// on every recount and never removed, so a list may hold stale or
	// duplicate indices; the per-merge stamp below deduplicates and a stale
	// entry merely recounts to an unchanged multiset.
	occ := make(map[uint64][]int32)
	for ei, w := range words {
		syms := make([]int32, 0, len(w)+1)
		for _, r := range w {
			syms = append(syms, intern(string(r)))
		}
		syms = append(syms, intern("</w>"))
		entries = append(entries, entry{syms: syms, n: freq[w]})
		for j := 0; j+1 < len(syms); j++ {
			k := pk(syms[j], syms[j+1])
			counts[k] += freq[w]
			occ[k] = append(occ[k], int32(ei))
		}
	}

	t := &Tokenizer{
		name:   name,
		ranks:  make(map[pair]int, numMerges),
		vocab:  make(map[string]struct{}),
		merges: numMerges,
		counts: memo.NewBounded[int](1 << 16),
	}

	// Lazy max-heap ordered like the reference arg-max scan: count
	// descending, then lessPair ascending. Snapshots go stale when counts
	// change; a popped snapshot is only trusted if it matches the live count
	// (and is re-pushed with the live count otherwise), which maintains the
	// invariant that every pair with live count >= 2 stays findable.
	var h pairHeap
	for k, n := range counts {
		if n >= 2 {
			h.push(heapItem{n, symtab[uint32(k>>32)], symtab[uint32(k)], k})
		}
	}

	stamp := make([]int, len(entries))
	for i := range stamp {
		stamp[i] = -1
	}
	seen := make(map[uint64]int) // dirty-key dedup stamp, by merge index + 1
	var dirty []uint64
	for i := 0; i < numMerges; i++ {
		var best heapItem
		found := false
		for len(h) > 0 {
			it := h.pop()
			cur := counts[it.key]
			if cur != it.cnt {
				if cur >= 2 {
					h.push(heapItem{cur, it.l, it.r, it.key})
				}
				continue
			}
			if cur < 2 {
				continue
			}
			best = it
			found = true
			break
		}
		if !found {
			break // nothing left worth merging
		}
		t.ranks[pair{best.l, best.r}] = i
		merged := best.l + best.r
		t.vocab[merged] = struct{}{}
		lid, rid, mid := symID[best.l], symID[best.r], intern(merged)

		// Recount only the entries containing the merged pair: subtract each
		// entry's full pair multiset, rewrite it, add the new multiset back.
		// Whole-entry recounting keeps the counts identical to a from-scratch
		// recount without per-position neighbour bookkeeping.
		dirty = dirty[:0]
		for _, ei := range occ[best.key] {
			if stamp[ei] == i {
				continue
			}
			stamp[ei] = i
			e := &entries[ei]
			for j := 0; j+1 < len(e.syms); j++ {
				k := pk(e.syms[j], e.syms[j+1])
				counts[k] -= e.n
				dirty = append(dirty, k)
			}
			e.syms = applyMergeID(e.syms, lid, rid, mid)
			for j := 0; j+1 < len(e.syms); j++ {
				k := pk(e.syms[j], e.syms[j+1])
				counts[k] += e.n
				occ[k] = append(occ[k], ei)
				dirty = append(dirty, k)
			}
		}
		delete(occ, best.key)
		delete(counts, best.key) // fully consumed; adjacency cannot re-form
		for _, k := range dirty {
			if seen[k] == i+1 {
				continue
			}
			seen[k] = i + 1
			if n := counts[k]; n >= 2 {
				h.push(heapItem{n, symtab[uint32(k>>32)], symtab[uint32(k)], k})
			}
		}
	}
	return t
}

// trainReference is the original trainer: a full pair recount and arg-max
// scan per merge. It is retained as the equality oracle for Train.
func trainReference(name, corpus string, numMerges int) *Tokenizer {
	freq := make(map[string]int)
	for _, w := range strings.Fields(strings.ToLower(corpus)) {
		freq[w]++
	}
	// Represent each word as a sequence of symbols ending in the word
	// boundary marker.
	type entry struct {
		syms []string
		n    int
	}
	entries := make([]entry, 0, len(freq))
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Strings(words) // deterministic training order
	for _, w := range words {
		syms := make([]string, 0, len(w)+1)
		for _, r := range w {
			syms = append(syms, string(r))
		}
		syms = append(syms, "</w>")
		entries = append(entries, entry{syms: syms, n: freq[w]})
	}

	t := &Tokenizer{
		name:   name,
		ranks:  make(map[pair]int, numMerges),
		vocab:  make(map[string]struct{}),
		merges: numMerges,
		counts: memo.NewBounded[int](1 << 16),
	}
	for i := 0; i < numMerges; i++ {
		counts := make(map[pair]int)
		for _, e := range entries {
			for j := 0; j+1 < len(e.syms); j++ {
				counts[pair{e.syms[j], e.syms[j+1]}] += e.n
			}
		}
		if len(counts) == 0 {
			break
		}
		best := pair{}
		bestN := -1
		for p, n := range counts {
			if n > bestN || (n == bestN && lessPair(p, best)) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // nothing left worth merging
		}
		t.ranks[best] = i
		merged := best.left + best.right
		t.vocab[merged] = struct{}{}
		for k := range entries {
			entries[k].syms = applyMerge(entries[k].syms, best, merged)
		}
	}
	return t
}

// heapItem is one (count, pair) snapshot in the training heap. l and r are
// the pair's symbol renderings, carried so tie-breaking never re-resolves
// the symbol table.
type heapItem struct {
	cnt  int
	l, r string
	key  uint64
}

// pairHeap is a binary max-heap under the reference selection order:
// higher count first, lessPair as the tie-break.
type pairHeap []heapItem

func heapLess(a, b heapItem) bool {
	if a.cnt != b.cnt {
		return a.cnt > b.cnt
	}
	if a.l != b.l {
		return a.l < b.l
	}
	return a.r < b.r
}

func (h *pairHeap) push(it heapItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *pairHeap) pop() heapItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && heapLess(s[c+1], s[c]) {
			c++
		}
		if !heapLess(s[c], s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// applyMergeID is applyMerge over interned symbol ids.
func applyMergeID(syms []int32, left, right, merged int32) []int32 {
	out := syms[:0]
	i := 0
	for i < len(syms) {
		if i+1 < len(syms) && syms[i] == left && syms[i+1] == right {
			out = append(out, merged)
			i += 2
			continue
		}
		out = append(out, syms[i])
		i++
	}
	return out
}

func lessPair(a, b pair) bool {
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

func applyMerge(syms []string, p pair, merged string) []string {
	out := syms[:0]
	i := 0
	for i < len(syms) {
		if i+1 < len(syms) && syms[i] == p.left && syms[i+1] == p.right {
			out = append(out, merged)
			i += 2
			continue
		}
		out = append(out, syms[i])
		i++
	}
	return out
}

// Name returns the tokenizer's display name.
func (t *Tokenizer) Name() string { return t.name }

// Merges returns the number of merge rules requested at training time.
func (t *Tokenizer) Merges() int { return t.merges }

// VocabSize returns the number of learned multi-character symbols.
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// EncodeWord tokenizes a single lower-case word into BPE subtokens.
func (t *Tokenizer) EncodeWord(word string) []string {
	if word == "" {
		return nil
	}
	syms := make([]string, 0, len(word)+1)
	for _, r := range strings.ToLower(word) {
		syms = append(syms, string(r))
	}
	syms = append(syms, "</w>")
	for {
		bestRank := int(^uint(0) >> 1)
		bestIdx := -1
		for j := 0; j+1 < len(syms); j++ {
			if r, ok := t.ranks[pair{syms[j], syms[j+1]}]; ok && r < bestRank {
				bestRank, bestIdx = r, j
			}
		}
		if bestIdx < 0 {
			break
		}
		merged := syms[bestIdx] + syms[bestIdx+1]
		syms = append(syms[:bestIdx], append([]string{merged}, syms[bestIdx+2:]...)...)
	}
	// Strip the boundary marker from the trailing token for reporting.
	out := make([]string, 0, len(syms))
	for _, s := range syms {
		s = strings.TrimSuffix(s, "</w>")
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Encode tokenizes an identifier: it is first segmented on case and
// punctuation boundaries (mirroring how model tokenizers treat identifiers
// in schema prompts) and each segment is BPE-encoded. Digits and symbols
// each count as single tokens.
func (t *Tokenizer) Encode(identifier string) []string {
	var out []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			out = append(out, t.EncodeWord(string(cur))...)
			cur = cur[:0]
		}
	}
	prevLower := false
	for _, r := range identifier {
		switch {
		case r >= 'a' && r <= 'z':
			cur = append(cur, r)
			prevLower = true
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			cur = append(cur, r+('a'-'A'))
			prevLower = false
		case r >= '0' && r <= '9':
			flush()
			out = append(out, string(r))
			prevLower = false
		default:
			flush()
			out = append(out, string(r))
			prevLower = false
		}
	}
	flush()
	return out
}

// Count returns the number of tokens the identifier encodes to.
func (t *Tokenizer) Count(identifier string) int {
	if t.counts == nil {
		return len(t.Encode(identifier))
	}
	if n, ok := t.counts.Get(identifier); ok {
		return n
	}
	n := len(t.Encode(identifier))
	t.counts.Put(identifier, n)
	return n
}

// TCR returns the token-to-character ratio of the identifier (equation 6 of
// the paper): token count divided by character count. More natural
// identifiers have lower TCR because their words are in-vocabulary.
func (t *Tokenizer) TCR(identifier string) float64 {
	n := len([]rune(identifier))
	if n == 0 {
		return 0
	}
	return float64(t.Count(identifier)) / float64(n)
}
