package token

import (
	"strings"
	"sync"

	"github.com/snails-bench/snails/internal/ident"
)

// Model tokenizer profiles. The paper compares token statistics under the
// GPT (tiktoken BPE), Code Llama (SentencePiece), and Code Bison tokenizers;
// we train three BPE tokenizers of decreasing vocabulary size on the same
// embedded corpus to reproduce the comparison.
const (
	ModelGPT       = "gpt-bpe"
	ModelCodeLlama = "codellama-bpe"
	ModelCodeBison = "codebison-bpe"
)

var (
	modelOnce sync.Once
	models    map[string]*Tokenizer
)

// trainingCorpus builds the training text: the embedded dictionary with
// common words repeated so frequent merges favour them, mimicking the
// frequency skew of natural-language training corpora.
func trainingCorpus() string {
	var b strings.Builder
	words := ident.DefaultDictionary()
	// Re-derive the word list through the letter index to keep package
	// coupling minimal and ordering deterministic.
	for c := byte('a'); c <= 'z'; c++ {
		for _, w := range words.WordsWithPrefixLetter(c) {
			// Short words are more frequent in English; weight inversely
			// by length so merges learn common stems first.
			reps := 1
			if len(w) <= 4 {
				reps = 4
			} else if len(w) <= 7 {
				reps = 2
			}
			for i := 0; i < reps; i++ {
				b.WriteString(w)
				b.WriteByte(' ')
			}
		}
	}
	return b.String()
}

// ForModel returns the shared tokenizer for a model profile name. Unknown
// names fall back to the GPT profile.
func ForModel(name string) *Tokenizer {
	modelOnce.Do(func() {
		corpus := trainingCorpus()
		models = map[string]*Tokenizer{
			ModelGPT:       Train(ModelGPT, corpus, 2600),
			ModelCodeLlama: Train(ModelCodeLlama, corpus, 1600),
			ModelCodeBison: Train(ModelCodeBison, corpus, 900),
		}
	})
	if t, ok := models[name]; ok {
		return t
	}
	return models[ModelGPT]
}

// ModelNames lists the available tokenizer profiles in report order.
func ModelNames() []string {
	return []string{ModelGPT, ModelCodeLlama, ModelCodeBison}
}
