package sqldb

import (
	"encoding/binary"
	"math"
	"strings"
)

// AppendEqKey appends a canonical equality key for v to dst. Two non-null
// values produce the same key bytes iff Compare reports them equal, which
// makes the keys usable for hash-join build sides and equality indexes.
//
// Compare's equality classes split on AsFloat: any two parseable-as-number
// values compare numerically (Int(5), Float(5.0), String("5"), and Bool
// cross-match), everything else compares as upper-cased strings. A numeric
// value can never collide with a non-numeric one: numeric renderings always
// re-parse, so a case-folded string equal to one would itself be numeric.
//
// ok is false for NULL (which equals nothing) and for NaN: Compare treats
// NaN as equal to every numeric value, a non-transitive relation no key
// encoding can represent. Callers must fall back to pairwise comparison
// when a NaN key appears.
//
// Multi-column keys are built by appending fields in sequence; the numeric
// form is fixed-width and the string form length-prefixed, so concatenation
// stays injective.
func AppendEqKey(dst []byte, v Value) ([]byte, bool) {
	if v.IsNull() {
		return dst, false
	}
	if f, numeric := v.AsFloat(); numeric {
		if math.IsNaN(f) {
			return dst, false
		}
		if f == 0 {
			f = 0 // collapse -0.0 and +0.0, which Compare treats as equal
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
		dst = append(dst, 'N')
		return append(dst, b[:]...), true
	}
	s := strings.ToUpper(v.String())
	dst = append(dst, 'S')
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...), true
}
