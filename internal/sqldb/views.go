package sqldb

import (
	"fmt"
	"strings"
)

// View is a named stored query. Views are stored as SQL text so the storage
// layer stays independent of the parser; the executor parses the definition
// at resolution time.
type View struct {
	// Name may be schema-qualified ("db_nl.table_deadwood").
	Name string
	// SelectSQL is the view's defining SELECT statement.
	SelectSQL string
}

// CreateView registers (or replaces) a view definition.
func (d *DB) CreateView(name, selectSQL string) {
	if d.views == nil {
		d.views = make(map[string]View)
	}
	key := strings.ToUpper(name)
	if _, exists := d.views[key]; !exists {
		d.viewOrder = append(d.viewOrder, name)
	}
	d.views[key] = View{Name: name, SelectSQL: selectSQL}
	d.gen.Add(1)
}

// ViewLookup resolves a view by qualified or bare name. When schema is
// non-empty, only "schema.table" is tried; otherwise the bare table name.
func (d *DB) ViewLookup(schema, table string) (View, bool) {
	if d.views == nil {
		return View{}, false
	}
	name := table
	if schema != "" {
		name = schema + "." + table
	}
	v, ok := d.views[strings.ToUpper(name)]
	return v, ok
}

// ViewNames returns registered view names in creation order.
func (d *DB) ViewNames() []string {
	out := make([]string, len(d.viewOrder))
	copy(out, d.viewOrder)
	return out
}

// DropView removes a view; it reports whether the view existed.
func (d *DB) DropView(name string) bool {
	key := strings.ToUpper(name)
	if _, ok := d.views[key]; !ok {
		return false
	}
	delete(d.views, key)
	for i, n := range d.viewOrder {
		if strings.EqualFold(n, name) {
			d.viewOrder = append(d.viewOrder[:i], d.viewOrder[i+1:]...)
			break
		}
	}
	d.gen.Add(1)
	return true
}

// String implements a compact debug rendering of the catalog.
func (d *DB) String() string {
	return fmt.Sprintf("DB(%s: %d tables, %d views)", d.Name, len(d.tables), len(d.views))
}
