package sqldb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// keyCorpus spans the equality classes AppendEqKey must separate: numerics
// across kinds, numeric strings, plain strings differing only by case, and
// near-miss pairs (numeric vs non-numeric renderings).
func keyCorpus() []Value {
	return []Value{
		Int(0), Int(5), Int(-5), Int(1 << 40),
		Float(0), Float(math.Copysign(0, -1)), Float(5), Float(5.5), Float(-5),
		String("5"), String(" 5 "), String("5.5"), String("-5"),
		String("abc"), String("ABC"), String("abd"), String(""),
		String("5x"), String("0"), Bool(true), Bool(false),
	}
}

func TestAppendEqKeyMatchesCompare(t *testing.T) {
	vals := keyCorpus()
	for _, a := range vals {
		ka, aok := AppendEqKey(nil, a)
		if !aok {
			t.Fatalf("AppendEqKey(%v) unexpectedly unusable", a)
		}
		for _, b := range vals {
			kb, bok := AppendEqKey(nil, b)
			if !bok {
				t.Fatalf("AppendEqKey(%v) unexpectedly unusable", b)
			}
			keyEq := bytes.Equal(ka, kb)
			cmpEq := Compare(a, b) == 0
			if keyEq != cmpEq {
				t.Errorf("key/Compare disagree for %v vs %v: keys equal=%v, Compare equal=%v",
					a, b, keyEq, cmpEq)
			}
		}
	}
}

func TestAppendEqKeyQuickNumeric(t *testing.T) {
	f := func(a, b int64) bool {
		ka, _ := AppendEqKey(nil, Int(a))
		kb, _ := AppendEqKey(nil, Int(b))
		return bytes.Equal(ka, kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		ka, ok := AppendEqKey(nil, Float(a))
		if !ok {
			return false
		}
		// The numeric rendering must agree with the int key when integral.
		if a == math.Trunc(a) && math.Abs(a) < 1<<53 {
			ki, _ := AppendEqKey(nil, Int(int64(a)))
			return bytes.Equal(ka, ki)
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendEqKeyUnusableValues(t *testing.T) {
	if _, ok := AppendEqKey(nil, Null()); ok {
		t.Error("NULL must not produce an equality key")
	}
	if _, ok := AppendEqKey(nil, Float(math.NaN())); ok {
		t.Error("NaN must not produce an equality key")
	}
	// Appending to a non-empty prefix keeps the prefix intact either way.
	prefix := []byte("pfx")
	out, ok := AppendEqKey(prefix, Null())
	if ok || !bytes.Equal(out, prefix) {
		t.Errorf("NULL key append altered prefix: %q ok=%v", out, ok)
	}
}

func TestAppendEqKeyNegativeZero(t *testing.T) {
	kp, _ := AppendEqKey(nil, Float(0))
	kn, _ := AppendEqKey(nil, Float(math.Copysign(0, -1)))
	if !bytes.Equal(kp, kn) {
		t.Error("+0.0 and -0.0 must share an equality key (Compare treats them equal)")
	}
}

func TestAppendEqKeyConcatenationInjective(t *testing.T) {
	// Length prefixes must keep multi-field keys unambiguous: ("ab","c")
	// vs ("a","bc") and string-vs-number boundary cases.
	pairs := [][2]Value{
		{String("ab"), String("c")},
		{String("a"), String("bc")},
		{String("a"), Int(1)},
		{Int(1), String("a")},
	}
	seen := map[string][2]Value{}
	for _, p := range pairs {
		k, _ := AppendEqKey(nil, p[0])
		k, _ = AppendEqKey(k, p[1])
		if prev, dup := seen[string(k)]; dup {
			t.Errorf("composite key collision: %v and %v", prev, p)
		}
		seen[string(k)] = p
	}
}

func TestEqIndexBucketsAndNulls(t *testing.T) {
	tab := NewTableData("t", []string{"a", "b"})
	tab.MustInsert(Int(1), String("x"))
	tab.MustInsert(Int(2), String("y"))
	tab.MustInsert(Int(1), Null())
	tab.MustInsert(Null(), String("x"))

	idx, ok := tab.EqIndex(0)
	if !ok {
		t.Fatal("EqIndex(0) should be usable")
	}
	k1, _ := AppendEqKey(nil, Int(1))
	if got := idx[string(k1)]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("bucket for 1: got %v, want [0 2]", got)
	}
	total := 0
	for _, rows := range idx {
		total += len(rows)
	}
	if total != 3 {
		t.Errorf("NULL rows must be absent from buckets: %d indexed, want 3", total)
	}
	// A numerically equal float probes the same bucket as the int key.
	kf, _ := AppendEqKey(nil, Float(1.0))
	if got := idx[string(kf)]; len(got) != 2 {
		t.Errorf("Float(1.0) probe found %v, want the Int(1) bucket", got)
	}
	if _, ok := tab.EqIndex(5); ok {
		t.Error("out-of-range column must report unusable")
	}
}

func TestEqIndexNaNUnusable(t *testing.T) {
	tab := NewTableData("t", []string{"a"})
	tab.MustInsert(Float(1))
	tab.MustInsert(Float(math.NaN()))
	if _, ok := tab.EqIndex(0); ok {
		t.Error("a NaN in the column must make the whole index unusable")
	}
}

func TestEqIndexRebuildOnInsert(t *testing.T) {
	tab := NewTableData("t", []string{"a"})
	tab.MustInsert(Int(7))
	idx1, ok := tab.EqIndex(0)
	if !ok {
		t.Fatal("first build should succeed")
	}
	k, _ := AppendEqKey(nil, Int(7))
	if len(idx1[string(k)]) != 1 {
		t.Fatalf("bucket for 7: %v", idx1[string(k)])
	}
	tab.MustInsert(Int(7))
	idx2, ok := tab.EqIndex(0)
	if !ok {
		t.Fatal("rebuild should succeed")
	}
	if len(idx2[string(k)]) != 2 {
		t.Errorf("index stale after insert: bucket %v, want 2 rows", idx2[string(k)])
	}
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	db := NewDB("g")
	g0 := db.Generation()
	tab := db.CreateTable("t", []string{"a"})
	g1 := db.Generation()
	if g1 <= g0 {
		t.Error("CreateTable must advance the generation")
	}
	tab.MustInsert(Int(1))
	g2 := db.Generation()
	if g2 <= g1 {
		t.Error("Insert must advance the generation")
	}
	db.CreateView("v", "SELECT a FROM t")
	g3 := db.Generation()
	if g3 <= g2 {
		t.Error("CreateView must advance the generation")
	}
	db.DropView("v")
	if db.Generation() <= g3 {
		t.Error("DropView must advance the generation")
	}
	if db.DropView("absent") {
		t.Error("dropping an absent view should report false")
	}
	// A detached table (no db backlink) never panics on insert.
	free := NewTableData("free", []string{"x"})
	free.MustInsert(Int(1))
}
