package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// TableData holds one table's column names and row storage.
type TableData struct {
	Name    string
	Columns []string
	colIdx  map[string]int
	Rows    [][]Value
}

// NewTableData creates an empty table with the given columns.
func NewTableData(name string, columns []string) *TableData {
	t := &TableData{Name: name, Columns: append([]string(nil), columns...)}
	t.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		t.colIdx[strings.ToUpper(c)] = i
	}
	return t
}

// ColumnIndex returns the position of a column (case-insensitive).
func (t *TableData) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToUpper(name)]
	return i, ok
}

// Insert appends a row; the row length must match the column count.
func (t *TableData) Insert(row []Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	t.Rows = append(t.Rows, append([]Value(nil), row...))
	return nil
}

// MustInsert panics on arity mismatch; used by the deterministic dataset
// generators where a mismatch is a programming error.
func (t *TableData) MustInsert(row ...Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *TableData) NumRows() int { return len(t.Rows) }

// DistinctValues returns the sorted distinct non-null values of a column.
func (t *TableData) DistinctValues(col string) []Value {
	i, ok := t.ColumnIndex(col)
	if !ok {
		return nil
	}
	seen := map[string]Value{}
	for _, r := range t.Rows {
		v := r[i]
		if v.IsNull() {
			continue
		}
		seen[v.String()] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// DB is an in-memory database instance: a set of named tables and views.
type DB struct {
	Name      string
	tables    map[string]*TableData
	order     []string
	views     map[string]View
	viewOrder []string
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: make(map[string]*TableData)}
}

// CreateTable registers a new table; re-creating an existing table replaces it.
func (d *DB) CreateTable(name string, columns []string) *TableData {
	t := NewTableData(name, columns)
	key := strings.ToUpper(name)
	if _, exists := d.tables[key]; !exists {
		d.order = append(d.order, name)
	}
	d.tables[key] = t
	return t
}

// Table returns the named table (case-insensitive).
func (d *DB) Table(name string) (*TableData, bool) {
	t, ok := d.tables[strings.ToUpper(name)]
	return t, ok
}

// TableNames returns table names in creation order.
func (d *DB) TableNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// NumTables returns the number of tables.
func (d *DB) NumTables() int { return len(d.tables) }

// TotalRows returns the sum of row counts across tables.
func (d *DB) TotalRows() int {
	n := 0
	for _, t := range d.tables {
		n += len(t.Rows)
	}
	return n
}
