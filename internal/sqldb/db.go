package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// TableData holds one table's column names and row storage.
type TableData struct {
	Name    string
	Columns []string
	colIdx  map[string]int
	Rows    [][]Value

	// db backlinks the owning database so Insert can advance its
	// generation counter; nil for detached tables.
	db *DB

	// Lazily built per-column equality indexes (see EqIndex).
	idxMu   sync.Mutex
	eqIdxes map[int]*colEqIndex
}

// colEqIndex maps canonical equality keys to ascending row indices. rows
// records the table length at build time: appends invalidate the index.
// usable is false when the column holds a NaN, whose equality Compare
// cannot be represented by keys.
type colEqIndex struct {
	rows    int
	usable  bool
	buckets map[string][]int
}

// NewTableData creates an empty table with the given columns.
func NewTableData(name string, columns []string) *TableData {
	t := &TableData{Name: name, Columns: append([]string(nil), columns...)}
	t.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		t.colIdx[strings.ToUpper(c)] = i
	}
	return t
}

// ColumnIndex returns the position of a column (case-insensitive).
func (t *TableData) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToUpper(name)]
	return i, ok
}

// Insert appends a row; the row length must match the column count.
func (t *TableData) Insert(row []Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	t.Rows = append(t.Rows, append([]Value(nil), row...))
	if t.db != nil {
		t.db.gen.Add(1)
	}
	return nil
}

// EqIndex returns a map from canonical equality key (see AppendEqKey) to
// the ascending row indices holding that key in column col, building the
// index on first use. NULL rows are absent from every bucket. ok is false
// when col is out of range or the column holds a NaN; callers must then
// fall back to a linear scan. The index is keyed to the current row count,
// so rows appended after a build trigger a rebuild on the next call.
func (t *TableData) EqIndex(col int) (map[string][]int, bool) {
	if col < 0 || col >= len(t.Columns) {
		return nil, false
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if idx, ok := t.eqIdxes[col]; ok && idx.rows == len(t.Rows) {
		return idx.buckets, idx.usable
	}
	idx := &colEqIndex{rows: len(t.Rows), usable: true, buckets: make(map[string][]int)}
	var kb []byte
	for ri, r := range t.Rows {
		v := r[col]
		if v.IsNull() {
			continue
		}
		var ok bool
		kb, ok = AppendEqKey(kb[:0], v)
		if !ok { // NaN: unrepresentable equality, whole index unusable
			idx.usable = false
			idx.buckets = nil
			break
		}
		idx.buckets[string(kb)] = append(idx.buckets[string(kb)], ri)
	}
	if t.eqIdxes == nil {
		t.eqIdxes = make(map[int]*colEqIndex)
	}
	t.eqIdxes[col] = idx
	return idx.buckets, idx.usable
}

// MustInsert panics on arity mismatch; used by the deterministic dataset
// generators where a mismatch is a programming error.
func (t *TableData) MustInsert(row ...Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *TableData) NumRows() int { return len(t.Rows) }

// DistinctValues returns the sorted distinct non-null values of a column.
func (t *TableData) DistinctValues(col string) []Value {
	i, ok := t.ColumnIndex(col)
	if !ok {
		return nil
	}
	seen := map[string]Value{}
	for _, r := range t.Rows {
		v := r[i]
		if v.IsNull() {
			continue
		}
		seen[v.String()] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// DB is an in-memory database instance: a set of named tables and views.
type DB struct {
	Name      string
	tables    map[string]*TableData
	order     []string
	views     map[string]View
	viewOrder []string

	// gen counts catalog and data mutations (CreateTable, Insert,
	// CreateView, DropView). Executor-side caches key their validity on it:
	// benchmark databases are immutable after load, so in steady state the
	// generation never moves and caches live forever.
	gen atomic.Uint64
}

// Generation returns the mutation counter. Any table create, row insert, or
// view create/drop advances it.
func (d *DB) Generation() uint64 { return d.gen.Load() }

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: make(map[string]*TableData)}
}

// CreateTable registers a new table; re-creating an existing table replaces it.
func (d *DB) CreateTable(name string, columns []string) *TableData {
	t := NewTableData(name, columns)
	t.db = d
	key := strings.ToUpper(name)
	if _, exists := d.tables[key]; !exists {
		d.order = append(d.order, name)
	}
	d.tables[key] = t
	d.gen.Add(1)
	return t
}

// Table returns the named table (case-insensitive).
func (d *DB) Table(name string) (*TableData, bool) {
	t, ok := d.tables[strings.ToUpper(name)]
	return t, ok
}

// TableNames returns table names in creation order.
func (d *DB) TableNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// NumTables returns the number of tables.
func (d *DB) NumTables() int { return len(d.tables) }

// TotalRows returns the sum of row counts across tables.
func (d *DB) TotalRows() int {
	n := 0
	for _, t := range d.tables {
		n += len(t.Rows)
	}
	return n
}
