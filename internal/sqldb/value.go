// Package sqldb provides the in-memory relational storage engine that
// substitutes for the paper's MS SQL Server instances: typed values, table
// storage, and a database catalog that queries execute against.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates value types.
type Kind int

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Value is a dynamically typed SQL value. Dates are represented as ISO-8601
// strings, which order correctly under string comparison.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// Convenience constructors.
func Null() Value           { return Value{Kind: KindNull} }
func Int(i int64) Value     { return Value{Kind: KindInt, I: i} }
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }
func String(s string) Value { return Value{Kind: KindString, S: s} }
func Bool(b bool) Value     { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numeric values to float64; ok is false otherwise.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KindString:
		if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
			return f, true
		}
	}
	return 0, false
}

// String renders the value for result display and comparison keys.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Render integral floats without the decimal point so numerically
		// equal results compare equal across int/float columns.
		if v.F == float64(int64(v.F)) {
			return strconv.FormatInt(int64(v.F), 10)
		}
		return strconv.FormatFloat(v.F, 'g', 12, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "1"
		}
		return "0"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// Compare orders two values: -1, 0, or +1. NULL sorts before everything.
// Numeric kinds compare numerically; everything else compares as
// case-insensitive strings (matching SQL Server's default collation
// behaviour closely enough for the benchmark's workloads).
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok && a.Kind != KindString && b.Kind != KindString {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/number: try numeric comparison when both parse.
	if aok && bok && (a.Kind == KindString || b.Kind == KindString) {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as := strings.ToUpper(a.String())
	bs := strings.ToUpper(b.String())
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL equals nothing, including NULL).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}
