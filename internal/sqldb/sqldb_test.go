package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Float(3.5), "3.5"},
		{Float(4.0), "4"}, // integral floats render without decimal
		{String("abc"), "abc"},
		{Bool(true), "1"},
		{Bool(false), "0"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareNumeric(t *testing.T) {
	if Compare(Int(1), Int(2)) != -1 || Compare(Int(2), Int(1)) != 1 || Compare(Int(2), Int(2)) != 0 {
		t.Error("int comparison broken")
	}
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("int/float equality broken")
	}
	if Compare(Float(1.5), Int(2)) != -1 {
		t.Error("float/int ordering broken")
	}
}

func TestCompareStringsCaseInsensitive(t *testing.T) {
	if Compare(String("abc"), String("ABC")) != 0 {
		t.Error("string comparison should be case-insensitive")
	}
	if Compare(String("a"), String("b")) != -1 {
		t.Error("string ordering broken")
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null(), Null()) != 0 {
		t.Error("null/null should compare 0 for sorting")
	}
	if Compare(Null(), Int(0)) != -1 || Compare(Int(0), Null()) != 1 {
		t.Error("null should sort first")
	}
	if Equal(Null(), Null()) {
		t.Error("SQL NULL equals nothing")
	}
}

func TestCompareNumericStrings(t *testing.T) {
	// A numeric string compares numerically against a number (type-coerced
	// results from different query formulations must match).
	if Compare(String("10"), Int(10)) != 0 {
		t.Error("numeric string should equal number")
	}
	if Compare(String("9"), Int(10)) != -1 {
		t.Error("numeric string ordering broken")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	gen := func(k uint8, i int64, s string) Value {
		switch k % 4 {
		case 0:
			return Null()
		case 1:
			return Int(i)
		case 2:
			return Float(float64(i) / 2)
		default:
			return String(s)
		}
	}
	f := func(k1, k2 uint8, i1, i2 int64, s1, s2 string) bool {
		a, b := gen(k1, i1, s1), gen(k2, i2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableDataInsertAndLookup(t *testing.T) {
	tab := NewTableData("obs", []string{"id", "species", "count"})
	tab.MustInsert(Int(1), String("wolf"), Int(3))
	tab.MustInsert(Int(2), String("bear"), Int(1))
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if i, ok := tab.ColumnIndex("SPECIES"); !ok || i != 1 {
		t.Errorf("ColumnIndex case-insensitive lookup failed: %d %v", i, ok)
	}
	if err := tab.Insert([]Value{Int(3)}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestDistinctValues(t *testing.T) {
	tab := NewTableData("obs", []string{"species"})
	for _, s := range []string{"wolf", "bear", "wolf", "owl"} {
		tab.MustInsert(String(s))
	}
	tab.MustInsert(Null())
	got := tab.DistinctValues("species")
	if len(got) != 3 {
		t.Fatalf("distinct = %v", got)
	}
	if got[0].S != "bear" || got[2].S != "wolf" {
		t.Errorf("distinct values not sorted: %v", got)
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB("test")
	db.CreateTable("a", []string{"x"})
	db.CreateTable("b", []string{"y"})
	if db.NumTables() != 2 {
		t.Fatalf("tables = %d", db.NumTables())
	}
	if _, ok := db.Table("A"); !ok {
		t.Error("catalog lookup should be case-insensitive")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("creation order lost: %v", names)
	}
	ta, _ := db.Table("a")
	ta.MustInsert(Int(1))
	if db.TotalRows() != 1 {
		t.Errorf("total rows = %d", db.TotalRows())
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Columns: []string{"name", "n"},
		Rows: [][]Value{
			{String("wolf"), Int(3)},
			{String("bear"), Int(1)},
		},
	}
	if r.NumRows() != 2 || r.NumCols() != 2 || r.Empty() {
		t.Error("basic result accessors broken")
	}
	col := r.Column(0)
	if col[0].S != "wolf" {
		t.Errorf("Column extraction broken: %v", col)
	}
	// ColumnKey is order-insensitive.
	r2 := &Result{Columns: r.Columns, Rows: [][]Value{r.Rows[1], r.Rows[0]}}
	if r.ColumnKey(0) != r2.ColumnKey(0) {
		t.Error("ColumnKey should be row-order-insensitive")
	}
	r.SortBy([]int{1})
	if r.Rows[0][1].I != 1 {
		t.Errorf("SortBy broken: %v", r.Rows)
	}
	c := r.Clone()
	c.Rows[0][0] = String("changed")
	if r.Rows[0][0].S == "changed" {
		t.Error("Clone should deep copy")
	}
}

func TestViewRegistry(t *testing.T) {
	db := NewDB("v")
	db.CreateTable("base", []string{"x"})
	db.CreateView("db_nl.natural_base", "SELECT x AS value FROM base")
	db.CreateView("plain_view", "SELECT x FROM base")
	if len(db.ViewNames()) != 2 {
		t.Fatalf("views = %v", db.ViewNames())
	}
	if v, ok := db.ViewLookup("db_nl", "natural_base"); !ok || v.SelectSQL == "" {
		t.Error("qualified lookup failed")
	}
	if _, ok := db.ViewLookup("", "plain_view"); !ok {
		t.Error("bare lookup failed")
	}
	if _, ok := db.ViewLookup("dbo", "plain_view"); ok {
		t.Error("wrong qualifier should not resolve")
	}
	// Replacement keeps a single registry entry.
	db.CreateView("plain_view", "SELECT x AS renamed FROM base")
	if len(db.ViewNames()) != 2 {
		t.Errorf("replacement duplicated the view: %v", db.ViewNames())
	}
	if !db.DropView("plain_view") {
		t.Error("drop failed")
	}
	if db.DropView("plain_view") {
		t.Error("double drop should report false")
	}
	if len(db.ViewNames()) != 1 {
		t.Errorf("views after drop = %v", db.ViewNames())
	}
	if s := db.String(); !strings.Contains(s, "1 views") {
		t.Errorf("String() = %q", s)
	}
}
