package sqldb

import (
	"sort"
	"strings"
)

// Result is a query result set: named columns and rows of values. It is the
// unit of the paper's execution-accuracy comparison.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// NumRows returns the result cardinality.
func (r *Result) NumRows() int { return len(r.Rows) }

// NumCols returns the number of projected columns.
func (r *Result) NumCols() int { return len(r.Columns) }

// Empty reports whether the result has no rows.
func (r *Result) Empty() bool { return len(r.Rows) == 0 }

// Column returns the values of the i-th column.
func (r *Result) Column(i int) []Value {
	out := make([]Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out
}

// ColumnKey returns a canonical sorted key of the i-th column's rendered
// values, used for column-match candidate detection during set-superset
// comparison (appendix E.2).
func (r *Result) ColumnKey(i int) string {
	vals := make([]string, len(r.Rows))
	for j, row := range r.Rows {
		vals[j] = strings.ToUpper(row[i].String())
	}
	sort.Strings(vals)
	return strings.Join(vals, "\x1f")
}

// SortBy sorts rows by the given column indexes (ascending) for canonical
// row-wise comparison.
func (r *Result) SortBy(cols []int) {
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for _, c := range cols {
			if cmp := Compare(r.Rows[a][c], r.Rows[b][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// Clone deep-copies the result.
func (r *Result) Clone() *Result {
	out := &Result{Columns: append([]string(nil), r.Columns...)}
	out.Rows = make([][]Value, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = append([]Value(nil), row...)
	}
	return out
}
