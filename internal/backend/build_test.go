package backend

import (
	"context"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/config"
)

func TestBuildSynthetic(t *testing.T) {
	be, closer, err := Build(config.BackendSpec{Type: config.TypeSynthetic, Model: "gpt-4o"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer closer()
	if be.Name() != "gpt-4o" || !be.Capabilities().Deterministic {
		t.Fatalf("unexpected backend %q %+v", be.Name(), be.Capabilities())
	}
	if _, _, err := Build(config.BackendSpec{Model: "gpt-99"}); err == nil ||
		!strings.Contains(err.Error(), "unknown synthetic profile") {
		t.Fatalf("Build accepted an unknown profile: %v", err)
	}
}

func TestBuildSyntheticRenamed(t *testing.T) {
	be, closer, err := Build(config.BackendSpec{ID: "baseline", Model: "gpt-4o"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer closer()
	if be.Name() != "baseline" {
		t.Fatalf("Name = %q, want the spec id", be.Name())
	}
	if !be.Capabilities().Deterministic {
		t.Fatal("rename must not change capabilities")
	}
}

func TestBuildMockHTTPEndToEnd(t *testing.T) {
	be, closer, err := Build(config.BackendSpec{ID: "mock", Type: config.TypeMockHTTP, Model: "mock-model"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer closer()
	res, err := be.Infer(context.Background(), testReq)
	if err != nil {
		t.Fatalf("Infer through built mock backend: %v", err)
	}
	if res.SQL != "SELECT COUNT(*) FROM Observations" {
		t.Fatalf("SQL = %q", res.SQL)
	}
}

func TestBuildAllDefaultsToSyntheticFamily(t *testing.T) {
	backends, closer, err := BuildAll(&config.Experiment{})
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	defer closer()
	if len(backends) != 6 {
		t.Fatalf("got %d backends, want the 6 synthetic profiles", len(backends))
	}
	for _, be := range backends {
		if !be.Capabilities().Deterministic {
			t.Fatalf("%s: default family must be synthetic", be.Name())
		}
	}
}

func TestBuildAllClosesOnError(t *testing.T) {
	_, _, err := BuildAll(&config.Experiment{Backends: []config.BackendSpec{
		{Type: config.TypeMockHTTP, Model: "mock"},
		{Type: config.TypeSynthetic, Model: "not-a-profile"},
	}})
	if err == nil {
		t.Fatal("BuildAll succeeded with a bad spec")
	}
}
