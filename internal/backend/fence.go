package backend

import "strings"

// ExtractSQL pulls the SQL out of a chat-completion message. Models wrap
// queries in markdown fences; the contract mirrors the common eval-harness
// idiom:
//
//   - the first ```sql fence wins (later fences are commentary),
//   - a malformed fence (opener, no closer) yields everything after the
//     opener — truncated generations still surface their partial SQL,
//   - a bare ``` fence is accepted, with a lone language tag on the opener
//     line stripped,
//   - no fence at all returns the whole message trimmed (and counts as a
//     fence-extraction failure in snails_backend_fence_failures_total —
//     the model ignored the fencing instruction).
func ExtractSQL(content string) string {
	lower := strings.ToLower(content)
	if i := strings.Index(lower, "```sql"); i >= 0 && !isWordByte(lower, i+len("```sql")) {
		return trimFenceBody(content[i+len("```sql"):])
	}
	if i := strings.Index(content, "```"); i >= 0 {
		body := content[i+3:]
		// A generic fence may carry a language tag on the opener line
		// (```SQLite and friends); drop it when the first line is a
		// single word.
		if nl := strings.IndexByte(body, '\n'); nl >= 0 {
			tag := strings.TrimSpace(body[:nl])
			if tag != "" && !strings.ContainsAny(tag, " \t") && len(tag) <= 16 {
				body = body[nl+1:]
			}
		}
		return trimFenceBody(body)
	}
	fenceFailures.Add(1)
	return strings.TrimSpace(content)
}

// isWordByte reports whether s[i] exists and continues an identifier —
// used to keep "```sql" from matching the prefix of "```sqlite".
func isWordByte(s string, i int) bool {
	if i >= len(s) {
		return false
	}
	c := s[i]
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// trimFenceBody cuts the body at the closing fence (if any) and trims.
func trimFenceBody(body string) string {
	if end := strings.Index(body, "```"); end >= 0 {
		body = body[:end]
	}
	return strings.TrimSpace(body)
}
