package backend

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// MockOptions scripts the failure behavior of a MockServer. The zero value
// is a well-behaved server.
type MockOptions struct {
	// FailStatus (with FailCount > 0) makes the first FailCount requests
	// return this HTTP status before the server recovers.
	FailStatus int
	FailCount  int
	// NonJSON makes every response a 200 with a non-JSON body.
	NonJSON bool
	// TruncateBody makes the server declare a full Content-Length but
	// close the connection after half the body (mid-stream disconnect).
	TruncateBody bool
	// Respond overrides the assistant content for a (prompt, question)
	// pair. The default generates a fenced SELECT COUNT(*) over the first
	// table of the prompt's schema block.
	Respond func(prompt, question string) string
}

// MockServer is a hermetic in-process OpenAI-style endpoint. It listens on
// a real loopback socket (not an httptest server) so both the test suite
// and the binaries' config-driven smoke can point an HTTP backend at it.
type MockServer struct {
	// URL is the server root, e.g. "http://127.0.0.1:41234".
	URL string

	opts     MockOptions
	srv      *http.Server
	ln       net.Listener
	requests atomic.Int64
	failures atomic.Int64
	wg       sync.WaitGroup
}

// NewMockServer starts a mock endpoint on a free loopback port.
func NewMockServer(opts MockOptions) (*MockServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("backend: mock listen: %w", err)
	}
	m := &MockServer{URL: "http://" + ln.Addr().String(), opts: opts, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", m.handle)
	m.srv = &http.Server{Handler: mux}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.srv.Serve(ln)
	}()
	return m, nil
}

// Close shuts the server down.
func (m *MockServer) Close() error {
	err := m.srv.Close()
	m.wg.Wait()
	return err
}

// Requests reports how many chat requests the server has seen.
func (m *MockServer) Requests() int64 { return m.requests.Load() }

func (m *MockServer) handle(w http.ResponseWriter, r *http.Request) {
	m.requests.Add(1)
	var req chatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request", http.StatusBadRequest)
		return
	}
	if m.opts.FailCount > 0 && int(m.failures.Add(1)) <= m.opts.FailCount {
		http.Error(w, "scripted failure", m.opts.FailStatus)
		return
	}
	if m.opts.NonJSON {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>502 Bad Gateway (but with a 200)</body></html>")
		return
	}

	prompt, question := splitUserMessage(&req)
	content := mockContent(prompt, question)
	if m.opts.Respond != nil {
		content = m.opts.Respond(prompt, question)
	}
	body, _ := json.Marshal(chatResponse{Choices: []struct {
		Message chatMessage `json:"message"`
	}{{Message: chatMessage{Role: "assistant", Content: content}}}})

	if m.opts.TruncateBody {
		// Promise the full body, deliver half, then kill the connection:
		// the client sees an unexpected EOF mid-stream.
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// splitUserMessage recovers the schema prompt and question from the last
// user message (the client joins them with a blank line).
func splitUserMessage(req *chatRequest) (prompt, question string) {
	for i := len(req.Messages) - 1; i >= 0; i-- {
		if req.Messages[i].Role == "user" {
			content := req.Messages[i].Content
			if i := strings.LastIndex(content, "\n\n"); i >= 0 {
				return content[:i], content[i+2:]
			}
			return content, ""
		}
	}
	return "", ""
}

// mockContent is the default generation: a fenced COUNT over the first
// table of the schema block. The prompt renders one "#Table(Col Type, ...)"
// line per table, so the first table name is the text between '#' and '('.
func mockContent(prompt, _ string) string {
	table := ""
	for _, line := range strings.Split(prompt, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if open := strings.IndexByte(line, '('); open > 1 {
			table = strings.TrimSpace(line[1:open])
			break
		}
	}
	if table == "" {
		return "I could not find a schema in the prompt."
	}
	if strings.ContainsAny(table, " \t") {
		table = "[" + table + "]"
	}
	return fmt.Sprintf("Here is the query:\n```sql\nSELECT COUNT(*) FROM %s\n```\n", table)
}
