package backend

import (
	"fmt"
	"strings"
	"time"

	"github.com/snails-bench/snails/internal/config"
	"github.com/snails-bench/snails/internal/llm"
)

// Build materializes one backend from its config spec. The returned closer
// releases resources the spec caused to be allocated (the mock-http type
// starts an in-process endpoint); it is non-nil and idempotent-safe to call
// exactly once even for backends without resources.
func Build(spec config.BackendSpec) (Backend, func() error, error) {
	noop := func() error { return nil }
	switch spec.Type {
	case "", config.TypeSynthetic:
		p, ok := llm.ProfileByName(spec.Model)
		if !ok {
			return nil, nil, fmt.Errorf("backend %q: unknown synthetic profile %q (known: %s)",
				spec.Name(), spec.Model, strings.Join(profileNames(), ", "))
		}
		be := NewSynthetic(p)
		if spec.ID != "" && spec.ID != p.Name {
			return named{Backend: be, name: spec.ID}, noop, nil
		}
		return be, noop, nil

	case config.TypeHTTP:
		be, err := NewHTTP(httpOptions(spec, spec.BaseURL))
		if err != nil {
			return nil, nil, fmt.Errorf("backend %q: %w", spec.Name(), err)
		}
		return be, noop, nil

	case config.TypeMockHTTP:
		mock, err := NewMockServer(MockOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("backend %q: %w", spec.Name(), err)
		}
		be, err := NewHTTP(httpOptions(spec, mock.URL))
		if err != nil {
			mock.Close()
			return nil, nil, fmt.Errorf("backend %q: %w", spec.Name(), err)
		}
		return be, mock.Close, nil
	}
	return nil, nil, fmt.Errorf("backend %q: unknown type %q", spec.Name(), spec.Type)
}

// BuildAll materializes every backend of an experiment (the full synthetic
// family when the config names none) plus one closer for the lot.
func BuildAll(exp *config.Experiment) ([]Backend, func() error, error) {
	specs := exp.Backends
	if len(specs) == 0 {
		for _, p := range llm.Profiles() {
			specs = append(specs, config.BackendSpec{Type: config.TypeSynthetic, Model: p.Name})
		}
	}
	backends := make([]Backend, 0, len(specs))
	closers := make([]func() error, 0, len(specs))
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	for _, spec := range specs {
		be, closer, err := Build(spec)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		backends = append(backends, be)
		closers = append(closers, closer)
	}
	return backends, closeAll, nil
}

// httpOptions maps a wire-backend spec to client options.
func httpOptions(spec config.BackendSpec, baseURL string) HTTPOptions {
	return HTTPOptions{
		Name:       spec.Name(),
		BaseURL:    baseURL,
		Model:      spec.Model,
		MaxRetries: spec.MaxRetries,
		Backoff:    time.Duration(spec.BackoffMs) * time.Millisecond,
		Timeout:    time.Duration(spec.TimeoutMs) * time.Millisecond,
	}
}

// named renames a backend to the spec's id without changing behavior.
type named struct {
	Backend
	name string
}

func (n named) Name() string { return n.name }

func profileNames() []string {
	out := make([]string, 0, 6)
	for _, p := range llm.Profiles() {
		out = append(out, p.Name)
	}
	return out
}
