package backend

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/trace"
)

// statsDelta runs f and returns how much each tally moved. Tests in this
// package run serially, so deltas are attributable to f.
func statsDelta(f func()) Stats {
	before := ReadStats()
	f()
	after := ReadStats()
	return Stats{
		RequestsOK:     after.RequestsOK - before.RequestsOK,
		RequestsError:  after.RequestsError - before.RequestsError,
		Retries:        after.Retries - before.Retries,
		FenceFailures:  after.FenceFailures - before.FenceFailures,
		BackoffSleeps:  after.BackoffSleeps - before.BackoffSleeps,
		BackoffSeconds: after.BackoffSeconds - before.BackoffSeconds,
	}
}

// A retried-then-successful HTTP inference must surface in every tally:
// one ok request, two retries, two backoff sleeps, and one backend_attempt
// span per wire attempt on the request's trace.
func TestHTTPBackendTalliesAndSpans(t *testing.T) {
	m, err := NewMockServer(MockOptions{FailStatus: 500, FailCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := NewHTTP(HTTPOptions{BaseURL: m.URL, Model: "mock", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	c := trace.NewCollector(4)
	tr := c.Start("/v1/infer")
	ctx := trace.NewContext(context.Background(), tr)

	var res Result
	d := statsDelta(func() {
		var ierr error
		res, ierr = h.Infer(ctx, Request{SchemaKnowledge: "#Flights(Id INTEGER)", Question: "how many?"})
		if ierr != nil {
			t.Fatalf("Infer: %v", ierr)
		}
	})
	if !strings.Contains(res.SQL, "SELECT COUNT(*)") {
		t.Fatalf("unexpected SQL %q", res.SQL)
	}
	if d.RequestsOK != 1 || d.RequestsError != 0 {
		t.Errorf("outcome tallies = %+v, want 1 ok / 0 error", d)
	}
	if d.Retries != 2 || d.BackoffSleeps != 2 {
		t.Errorf("retry tallies = %+v, want 2 retries / 2 backoff sleeps", d)
	}
	if d.BackoffSeconds <= 0 {
		t.Errorf("backoff histogram recorded no time: %+v", d)
	}

	var attempts []string
	for _, sp := range tr.Spans() {
		if sp.Stage == trace.StageBackendAttempt {
			attempts = append(attempts, sp.Tag)
		}
	}
	want := []string{"mock#0", "mock#1", "mock#2"}
	if len(attempts) != len(want) {
		t.Fatalf("backend_attempt spans = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Fatalf("backend_attempt spans = %v, want %v", attempts, want)
		}
	}
}

// A terminal (non-retryable) failure counts one error with no retries.
func TestHTTPBackendErrorTally(t *testing.T) {
	m, err := NewMockServer(MockOptions{NonJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := NewHTTP(HTTPOptions{BaseURL: m.URL, Model: "mock", Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d := statsDelta(func() {
		if _, ierr := h.Infer(context.Background(), Request{Question: "q"}); ierr == nil {
			t.Fatal("want an error from a non-JSON response")
		}
	})
	if d.RequestsOK != 0 || d.RequestsError != 1 || d.Retries != 0 {
		t.Errorf("tallies after terminal failure = %+v, want 0 ok / 1 error / 0 retries", d)
	}
}

// The synthetic backend feeds the same families: one ok request and one
// backend_attempt span, even though it never retries.
func TestSyntheticBackendTalliesAndSpan(t *testing.T) {
	p, ok := llm.ProfileByName("gpt-4o")
	if !ok {
		t.Fatal("no gpt-4o profile")
	}
	be := NewSynthetic(p)
	c := trace.NewCollector(4)
	tr := c.Start("/v1/infer")
	ctx := trace.NewContext(context.Background(), tr)
	d := statsDelta(func() {
		if _, err := be.Infer(ctx, Request{SchemaKnowledge: "#Flights(Id INTEGER)", Question: "how many flights are there?"}); err != nil {
			t.Fatalf("Infer: %v", err)
		}
	})
	if d.RequestsOK != 1 || d.RequestsError != 0 || d.Retries != 0 {
		t.Errorf("synthetic tallies = %+v, want 1 ok", d)
	}
	var tags []string
	for _, sp := range tr.Spans() {
		if sp.Stage == trace.StageBackendAttempt {
			tags = append(tags, sp.Tag)
		}
	}
	if len(tags) != 1 || tags[0] != "gpt-4o#0" {
		t.Errorf("synthetic backend_attempt spans = %v, want [gpt-4o#0]", tags)
	}
}

// No fence in the content counts a fence-extraction failure; fenced content
// does not.
func TestFenceFailureTally(t *testing.T) {
	d := statsDelta(func() {
		if got := ExtractSQL("SELECT 1"); got != "SELECT 1" {
			t.Fatalf("ExtractSQL = %q", got)
		}
	})
	if d.FenceFailures != 1 {
		t.Errorf("unfenced content counted %d failures, want 1", d.FenceFailures)
	}
	d = statsDelta(func() {
		if got := ExtractSQL("```sql\nSELECT 1\n```"); got != "SELECT 1" {
			t.Fatalf("ExtractSQL = %q", got)
		}
	})
	if d.FenceFailures != 0 {
		t.Errorf("fenced content counted %d failures, want 0", d.FenceFailures)
	}
}
