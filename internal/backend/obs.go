package backend

import (
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/obs"
)

// Process-wide backend tallies, the seventh pipeline concern surfaced by the
// observability layer. Like sqlexec's execution stats they are package
// atomics read by scrape-time callbacks (snails_backend_* families) and by
// /metricsz snapshots, so both the synthetic and HTTP backends feed the same
// counters without carrying registry handles.
var (
	requestsOK    atomic.Uint64 // Infer calls that returned a result
	requestsError atomic.Uint64 // Infer calls that returned an error
	retriesTotal  atomic.Uint64 // HTTP re-sends after a retryable failure
	fenceFailures atomic.Uint64 // ExtractSQL fell through to "no fence"
	backoffHist   obs.Histogram // retry backoff sleep durations
)

// Stats is a snapshot of the process-wide backend tallies, embedded in
// /metricsz (and therefore BENCH_serve.json) and summed across shards by
// the router's aggregated view.
type Stats struct {
	RequestsOK     uint64  `json:"requests_ok"`
	RequestsError  uint64  `json:"requests_error"`
	Retries        uint64  `json:"retries"`
	FenceFailures  uint64  `json:"fence_failures"`
	BackoffSleeps  uint64  `json:"backoff_sleeps"`
	BackoffSeconds float64 `json:"backoff_seconds"`
}

// ReadStats snapshots the tallies.
func ReadStats() Stats {
	return Stats{
		RequestsOK:     requestsOK.Load(),
		RequestsError:  requestsError.Load(),
		Retries:        retriesTotal.Load(),
		FenceFailures:  fenceFailures.Load(),
		BackoffSleeps:  backoffHist.Count(),
		BackoffSeconds: float64(backoffHist.TotalNanos()) / float64(time.Second),
	}
}

// BackoffHistogram exposes the backoff-sleep histogram for registry
// exposition (snails_backend_backoff_seconds). Observe-only for callers.
func BackoffHistogram() *obs.Histogram { return &backoffHist }

// countOutcome tallies one finished Infer.
func countOutcome(err error) {
	if err != nil {
		requestsError.Add(1)
	} else {
		requestsOK.Add(1)
	}
}
