package backend

import (
	"context"
	"reflect"
	"testing"

	"github.com/snails-bench/snails/internal/llm"
)

// TestSyntheticMatchesModel pins the adapter to the raw model call path: a
// Synthetic backend must be a zero-cost rename of llm.Model.InferOn, which
// is what makes config-driven synthetic sweeps byte-identical to the
// pre-interface pipeline.
func TestSyntheticMatchesModel(t *testing.T) {
	prompt := "#Observations(Id INTEGER, Species TEXT, SiteId INTEGER)\n#Sites(Id INTEGER, Name TEXT)"
	for _, p := range llm.Profiles() {
		be := NewSynthetic(p)
		if be.Name() != p.Name {
			t.Fatalf("Name = %q, want %q", be.Name(), p.Name)
		}
		caps := be.Capabilities()
		if !caps.Deterministic || !caps.Batchable {
			t.Fatalf("%s: synthetic capabilities = %+v, want deterministic+batchable", p.Name, caps)
		}
		if caps.SchemaLinking != (p.FilterKeep > 0) {
			t.Fatalf("%s: SchemaLinking = %v, want %v", p.Name, caps.SchemaLinking, p.FilterKeep > 0)
		}

		task := llm.Task{SchemaKnowledge: prompt, Question: "How many observations are there?", Seed: 12345}
		want := llm.New(p).Infer(task)
		got, err := be.Infer(context.Background(), Request{
			SchemaKnowledge: task.SchemaKnowledge,
			Question:        task.Question,
			Intent:          task.Intent,
			Seed:            task.Seed,
		})
		if err != nil {
			t.Fatalf("%s: Infer: %v", p.Name, err)
		}
		if got.SQL != want.SQL || got.Invalid != want.Invalid ||
			!reflect.DeepEqual(got.FilteredTables, want.FilteredTables) {
			t.Fatalf("%s: backend %+v != model %+v", p.Name, got, want)
		}

		// With a pre-interned prompt handle the result is identical.
		got2, err := be.Infer(context.Background(), Request{
			SchemaKnowledge: task.SchemaKnowledge,
			Question:        task.Question,
			Seed:            task.Seed,
			PromptSchema:    llm.PromptSchemaOf(prompt),
		})
		if err != nil {
			t.Fatalf("%s: Infer with handle: %v", p.Name, err)
		}
		if got2.SQL != got.SQL {
			t.Fatalf("%s: handle path diverged: %q != %q", p.Name, got2.SQL, got.SQL)
		}
	}
}
