package backend

import "testing"

func TestExtractSQL(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			name: "well-formed sql fence",
			in:   "Here you go:\n```sql\nSELECT * FROM t\n```\nHope that helps!",
			want: "SELECT * FROM t",
		},
		{
			name: "multi-fence takes the first",
			in:   "```sql\nSELECT a FROM t\n```\nor maybe\n```sql\nSELECT b FROM t\n```",
			want: "SELECT a FROM t",
		},
		{
			name: "malformed fence without closer",
			in:   "```sql\nSELECT a FROM t WHERE x =",
			want: "SELECT a FROM t WHERE x =",
		},
		{
			name: "uppercase language tag",
			in:   "```SQL\nSELECT 1\n```",
			want: "SELECT 1",
		},
		{
			name: "bare fence with language tag line",
			in:   "```sqlite\nSELECT x FROM y\n```",
			want: "SELECT x FROM y",
		},
		{
			name: "bare fence without tag",
			in:   "```\nSELECT x FROM y\n```",
			want: "SELECT x FROM y",
		},
		{
			name: "no fence returns trimmed text",
			in:   "  SELECT x FROM y  \n",
			want: "SELECT x FROM y",
		},
		{
			name: "prose before sql fence is dropped",
			in:   "The answer uses a ```sql fence:\n```sql\nSELECT 1\n```",
			// The first occurrence wins by contract, even inline prose;
			// models that mention fences in prose are out of scope.
			want: "fence:",
		},
		{
			name: "empty content",
			in:   "",
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ExtractSQL(tc.in); got != tc.want {
				t.Fatalf("ExtractSQL(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}
