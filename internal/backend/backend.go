// Package backend abstracts the model behind the SNAILS pipeline: a Backend
// turns a rendered schema-knowledge prompt plus a question into a SQL string.
// The synthetic family (internal/llm) is the reference implementation; the
// HTTP backend speaks an OpenAI-style /v1/chat/completions endpoint so the
// same harness can evaluate real models. Capability hints tell the callers
// which optimizations hold per backend: the sweep only asserts bit-identical
// determinism for deterministic backends, and the serving micro-batcher only
// coalesces requests for batchable ones.
package backend

import (
	"context"

	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/nlq"
)

// Request is one NL-to-SQL inference request as the pipeline hands it to a
// backend: the prompt is already rendered at the cell's schema variant.
type Request struct {
	// SchemaKnowledge is the rendered schema prompt block
	// (#Table(Col Type, ...) lines).
	SchemaKnowledge string
	// Question is the natural-language question text.
	Question string
	// Intent carries the template-level meaning of the question. Only the
	// synthetic family consumes it; wire backends see just the text.
	Intent nlq.Intent
	// Seed individualizes deterministic noise. Meaningful only to
	// deterministic backends; wire backends ignore it.
	Seed uint64
	// PromptSchema is an optional pre-interned handle for SchemaKnowledge
	// (llm.PromptSchemaOf). Batch-level callers resolve it once per
	// (db, variant) batch; backends that don't need it ignore it.
	PromptSchema *llm.PromptSchema
}

// Result is a backend's answer for one request.
type Result struct {
	// SQL is the generated query, identifiers at the prompt's variant.
	SQL string
	// FilteredTables records the schema-subsetting selection for backends
	// with a linking stage (DIN-SQL, CodeS); nil otherwise.
	FilteredTables []string
	// Invalid marks generations the backend itself knows are not SQL.
	Invalid bool
}

// Capabilities are per-backend hints the harness layers key behavior off.
type Capabilities struct {
	// Deterministic backends produce bit-identical results for identical
	// (request, seed) pairs; the sweep's determinism guarantees (parallel
	// output == serial output) are scoped to these.
	Deterministic bool
	// Batchable backends benefit from the serving micro-batcher's shared
	// prompt render; non-batchable ones are dispatched immediately as
	// singleton batches.
	Batchable bool
	// SchemaLinking backends emit FilteredTables (a schema-subsetting
	// stage precedes generation).
	SchemaLinking bool
}

// Backend is a model implementation the pipeline can decode through.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Name identifies the backend in cells, batch keys, and reports.
	Name() string
	// Capabilities reports the hints above; they are static per backend.
	Capabilities() Capabilities
	// Infer produces SQL for the request. An error means the backend could
	// not answer (wire failure, exhausted retries); the pipeline records
	// the cell as failed rather than aborting the sweep.
	Infer(ctx context.Context, req Request) (Result, error)
}
