package backend

import (
	"context"

	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/trace"
)

// Synthetic adapts a synthetic model (internal/llm) to the Backend
// interface. It is the reference implementation: deterministic, batchable,
// and — for profiles with a filtering stage — schema-linking. The adapter
// preserves the exact InferOn call path, so a synthetic-backend sweep is
// bit-identical to the pre-interface pipeline.
type Synthetic struct {
	m *llm.Model
}

// NewSynthetic returns a backend over a fresh model for the profile.
func NewSynthetic(p *llm.Profile) *Synthetic { return &Synthetic{m: llm.New(p)} }

// WrapModel adapts an existing model (sharing its linking memo).
func WrapModel(m *llm.Model) *Synthetic { return &Synthetic{m: m} }

// Model exposes the underlying synthetic model for callers that need
// profile details (reporting labels, tokenizer family).
func (s *Synthetic) Model() *llm.Model { return s.m }

// Name is the synthetic profile's name (e.g. "gpt-4o").
func (s *Synthetic) Name() string { return s.m.Profile.Name }

// Capabilities: synthetic models are deterministic and batchable; filter
// workflows additionally link.
func (s *Synthetic) Capabilities() Capabilities {
	return Capabilities{
		Deterministic: true,
		Batchable:     true,
		SchemaLinking: s.m.Profile.FilterKeep > 0,
	}
}

// Infer decodes through the synthetic model. It never returns an error, and
// the context is consulted only for the request trace (synthetic decode is
// pure compute, so there is exactly one attempt): a traced request gets a
// backend_attempt span, and the call feeds the shared outcome tallies so
// synthetic and wire backends surface in the same snails_backend_* families.
func (s *Synthetic) Infer(ctx context.Context, req Request) (Result, error) {
	ps := req.PromptSchema
	if ps == nil {
		ps = llm.PromptSchemaOf(req.SchemaKnowledge)
	}
	tr := trace.FromContext(ctx)
	start := tr.Now()
	pred := s.m.InferOn(ps, llm.Task{
		SchemaKnowledge: req.SchemaKnowledge,
		Question:        req.Question,
		Intent:          req.Intent,
		Seed:            req.Seed,
	})
	tr.SpanTag(trace.StageBackendAttempt, start, s.Name()+"#0")
	countOutcome(nil)
	return Result{SQL: pred.SQL, FilteredTables: pred.FilteredTables, Invalid: pred.Invalid}, nil
}
