package backend

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// newTestHTTP points a fast-retry HTTP backend at a scripted mock server.
func newTestHTTP(t *testing.T, opts MockOptions) (*HTTP, *MockServer) {
	t.Helper()
	m, err := NewMockServer(opts)
	if err != nil {
		t.Fatalf("mock server: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	h, err := NewHTTP(HTTPOptions{
		Name:       "mock",
		BaseURL:    m.URL,
		Model:      "mock-model",
		MaxRetries: 3,
		Backoff:    time.Millisecond,
		Timeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	return h, m
}

var testReq = Request{
	SchemaKnowledge: "#Observations(Id INTEGER, Species TEXT)\n#Sites(Id INTEGER)",
	Question:        "How many observations are there?",
}

func TestHTTPInferExtractsFencedSQL(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{})
	res, err := h.Infer(context.Background(), testReq)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if want := "SELECT COUNT(*) FROM Observations"; res.SQL != want {
		t.Fatalf("SQL = %q, want %q", res.SQL, want)
	}
	if got := m.Requests(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestHTTPInferRetries429(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{FailStatus: 429, FailCount: 2})
	res, err := h.Infer(context.Background(), testReq)
	if err != nil {
		t.Fatalf("Infer after retries: %v", err)
	}
	if !strings.Contains(res.SQL, "SELECT COUNT(*)") {
		t.Fatalf("unexpected SQL %q", res.SQL)
	}
	if got := m.Requests(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

func TestHTTPInferRetries500ThenExhausts(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{FailStatus: 503, FailCount: 100})
	_, err := h.Infer(context.Background(), testReq)
	if err == nil {
		t.Fatal("Infer succeeded against a permanently failing server")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error does not mention the status: %v", err)
	}
	// Initial attempt + MaxRetries re-sends, then give up.
	if got := m.Requests(); got != 4 {
		t.Fatalf("server saw %d requests, want 4", got)
	}
}

func TestHTTPInferBackoffHonorsDeadline(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{FailStatus: 500, FailCount: 100})
	h.opts.Backoff = 10 * time.Second // the deadline must cut the sleep short
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := h.Infer(ctx, testReq)
	if err == nil {
		t.Fatal("Infer succeeded unexpectedly")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Infer held the request %v past a 50ms deadline", elapsed)
	}
	if got := m.Requests(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (deadline expired during backoff)", got)
	}
}

func TestHTTPInferNonJSONBodyIsTerminal(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{NonJSON: true})
	_, err := h.Infer(context.Background(), testReq)
	if err == nil {
		t.Fatal("Infer succeeded on a non-JSON body")
	}
	// Broken-not-busy: no retries.
	if got := m.Requests(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (non-JSON must not retry)", got)
	}
}

func TestHTTPInferRetriesMidStreamDisconnect(t *testing.T) {
	h, m := newTestHTTP(t, MockOptions{TruncateBody: true})
	_, err := h.Infer(context.Background(), testReq)
	if err == nil {
		t.Fatal("Infer succeeded on a permanently truncating server")
	}
	// Truncation is transient by classification: every attempt is spent.
	if got := m.Requests(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (truncated stream retries)", got)
	}
}

func TestHTTPInferConnectionRefusedRetriesThenFails(t *testing.T) {
	m, err := NewMockServer(MockOptions{})
	if err != nil {
		t.Fatalf("mock server: %v", err)
	}
	url := m.URL
	m.Close() // free the port: every dial now fails
	h, err := NewHTTP(HTTPOptions{BaseURL: url, MaxRetries: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	if _, err := h.Infer(context.Background(), testReq); err == nil {
		t.Fatal("Infer succeeded against a closed port")
	}
}

func TestHTTPInferConcurrent(t *testing.T) {
	h, _ := newTestHTTP(t, MockOptions{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := h.Infer(context.Background(), testReq)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Infer: %v", err)
		}
	}
}

func TestHTTPCustomRespond(t *testing.T) {
	h, _ := newTestHTTP(t, MockOptions{Respond: func(prompt, question string) string {
		if !strings.Contains(prompt, "#Observations") {
			return "missing schema"
		}
		if !strings.Contains(question, "How many") {
			return "missing question"
		}
		return "```sql\nSELECT 42\n```"
	}})
	res, err := h.Infer(context.Background(), testReq)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if res.SQL != "SELECT 42" {
		t.Fatalf("SQL = %q (prompt/question did not round-trip)", res.SQL)
	}
}

func TestNewHTTPValidation(t *testing.T) {
	if _, err := NewHTTP(HTTPOptions{}); err == nil {
		t.Fatal("NewHTTP accepted an empty base URL")
	}
	h, err := NewHTTP(HTTPOptions{BaseURL: "http://example.invalid/", Model: "m"})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	if h.Name() != "m" {
		t.Fatalf("Name = %q, want model fallback", h.Name())
	}
	if h.Capabilities().Deterministic {
		t.Fatal("HTTP backend must not claim determinism")
	}
}

// TestHTTPResponseTooLarge bounds the success-path body read: a response
// larger than MaxResponseBytes fails with ResponseTooLargeError on the first
// attempt — terminal, so the retry loop never re-downloads the flood.
func TestHTTPResponseTooLarge(t *testing.T) {
	m, err := NewMockServer(MockOptions{Respond: func(prompt, question string) string {
		return strings.Repeat("x", 8192)
	}})
	if err != nil {
		t.Fatalf("mock server: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	h, err := NewHTTP(HTTPOptions{
		Name:             "mock",
		BaseURL:          m.URL,
		Model:            "mock-model",
		MaxRetries:       3,
		Backoff:          time.Millisecond,
		MaxResponseBytes: 1024,
	})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	_, err = h.Infer(context.Background(), testReq)
	var tooBig *ResponseTooLargeError
	if !errors.As(err, &tooBig) {
		t.Fatalf("Infer err = %v, want ResponseTooLargeError", err)
	}
	if tooBig.Limit != 1024 {
		t.Fatalf("Limit = %d, want 1024", tooBig.Limit)
	}
	if got := m.Requests(); got != 1 {
		t.Fatalf("backend sent %d requests, want 1 (too-large must not retry)", got)
	}
}
