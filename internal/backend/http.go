package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/snails-bench/snails/internal/trace"
)

// HTTPOptions configures an OpenAI-style chat-completions backend.
type HTTPOptions struct {
	// Name identifies the backend in cells and batch keys. Defaults to
	// Model, else "http".
	Name string
	// BaseURL is the server root; the client POSTs to
	// BaseURL + "/v1/chat/completions".
	BaseURL string
	// Model is the model field of the chat request.
	Model string
	// MaxRetries bounds re-sends after a retryable failure (429, 5xx,
	// transport error, truncated body). 0 means the default (3).
	MaxRetries int
	// Backoff is the base delay before the first retry; it doubles per
	// attempt. 0 means the default (100ms).
	Backoff time.Duration
	// Timeout caps each attempt. The caller's context deadline always
	// wins when sooner. 0 means the default (30s).
	Timeout time.Duration
	// MaxResponseBytes caps how much of a success response body is read
	// (default 1 MiB). A larger body fails the attempt with
	// ResponseTooLargeError — terminal, not retried: a server that
	// over-produces once will over-produce again, and an unbounded ReadAll
	// would let one misbehaving backend exhaust the process.
	MaxResponseBytes int64
	// Client overrides the HTTP client (tests inject failure transports).
	Client *http.Client
}

// HTTP is a Backend speaking the OpenAI chat-completions wire protocol.
// Generations are extracted from the response with ExtractSQL.
type HTTP struct {
	opts HTTPOptions
}

// NewHTTP returns a chat-completions backend. BaseURL must be non-empty.
func NewHTTP(opts HTTPOptions) (*HTTP, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("backend: http backend needs a base URL")
	}
	opts.BaseURL = strings.TrimRight(opts.BaseURL, "/")
	if opts.Name == "" {
		opts.Name = opts.Model
	}
	if opts.Name == "" {
		opts.Name = "http"
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxResponseBytes <= 0 {
		opts.MaxResponseBytes = 1 << 20
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	return &HTTP{opts: opts}, nil
}

// Name identifies the backend.
func (h *HTTP) Name() string { return h.opts.Name }

// Capabilities: a wire model is neither deterministic nor batchable (each
// request is an independent network call), and exposes no linking stage.
func (h *HTTP) Capabilities() Capabilities { return Capabilities{} }

// chatMessage / chatRequest / chatResponse are the OpenAI wire types (the
// subset this client uses).
type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

type chatRequest struct {
	Model       string        `json:"model"`
	Messages    []chatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
}

type chatResponse struct {
	Choices []struct {
		Message chatMessage `json:"message"`
	} `json:"choices"`
}

// systemPrompt frames the task for wire models; the schema and question ride
// in the user message.
const systemPrompt = "You translate natural-language questions into a single SQL query. " +
	"Answer with the query in a ```sql fence and nothing else."

// Infer POSTs the chat request, retrying retryable failures with
// exponential backoff. Each attempt runs under the sooner of the per-attempt
// timeout and the caller's deadline; the backoff sleep itself respects the
// caller's context, so a short client deadline is honored mid-retry. Every
// attempt records a backend_attempt span on the request's trace, and the
// retry/backoff/outcome tallies feed the snails_backend_* families.
func (h *HTTP) Infer(ctx context.Context, req Request) (Result, error) {
	body, err := json.Marshal(chatRequest{
		Model: h.opts.Model,
		Messages: []chatMessage{
			{Role: "system", Content: systemPrompt},
			{Role: "user", Content: req.SchemaKnowledge + "\n\n" + req.Question},
		},
	})
	if err != nil {
		countOutcome(err)
		return Result{}, fmt.Errorf("backend %s: marshal: %w", h.opts.Name, err)
	}

	tr := trace.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt <= h.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			retriesTotal.Add(1)
			d := h.opts.Backoff << (attempt - 1)
			if err := sleepCtx(ctx, d); err != nil {
				countOutcome(err)
				return Result{}, fmt.Errorf("backend %s: %w (last attempt: %v)", h.opts.Name, err, lastErr)
			}
			backoffHist.Observe(d)
		}
		start := tr.Now()
		content, err := h.attempt(ctx, body)
		tr.SpanTag(trace.StageBackendAttempt, start, h.opts.Name+"#"+strconv.Itoa(attempt))
		if err == nil {
			countOutcome(nil)
			return Result{SQL: ExtractSQL(content)}, nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			break
		}
	}
	countOutcome(lastErr)
	return Result{}, fmt.Errorf("backend %s: %w", h.opts.Name, lastErr)
}

// retryStatusError marks HTTP statuses worth re-sending (the server may
// recover): 429 and the 5xx family.
type retryStatusError struct{ status int }

func (e *retryStatusError) Error() string { return fmt.Sprintf("server returned %d", e.status) }

// retryable reports whether an attempt error is transient: retry statuses,
// truncated bodies, and transport-level failures (including a per-attempt
// timeout — the caller's own deadline breaks the retry loop separately).
// Malformed-but-complete responses are terminal: the server is broken, not
// busy.
func retryable(err error) bool {
	var rs *retryStatusError
	if errors.As(err, &rs) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// attempt is one request/response cycle, returning the first choice's
// content.
func (h *HTTP) attempt(ctx context.Context, body []byte) (string, error) {
	actx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost,
		h.opts.BaseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := h.opts.Client.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return "", &retryStatusError{status: resp.StatusCode}
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	limit := h.opts.MaxResponseBytes
	raw, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		// A disconnect mid-body surfaces here as unexpected EOF.
		return "", fmt.Errorf("read body: %w", err)
	}
	// The size check must precede decoding: a capped read truncates the JSON
	// mid-document, and looksTruncated would misread that as a retryable
	// stream death instead of a terminal oversized response.
	if int64(len(raw)) > limit {
		return "", &ResponseTooLargeError{Limit: limit}
	}
	var cr chatResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 && !json.Valid(trimmed) && looksTruncated(trimmed) {
			return "", fmt.Errorf("decode response: %w", io.ErrUnexpectedEOF)
		}
		return "", fmt.Errorf("decode response: %w", err)
	}
	if len(cr.Choices) == 0 {
		return "", errors.New("response has no choices")
	}
	return cr.Choices[0].Message.Content, nil
}

// ResponseTooLargeError reports a success response whose body exceeded
// HTTPOptions.MaxResponseBytes. It is terminal — retryable() does not match
// it, so the attempt loop fails fast instead of re-downloading the flood.
type ResponseTooLargeError struct{ Limit int64 }

func (e *ResponseTooLargeError) Error() string {
	return fmt.Sprintf("response body exceeds %d bytes", e.Limit)
}

// looksTruncated distinguishes a cut-off JSON document (retryable — the
// stream died) from a body that was never JSON (terminal).
func looksTruncated(b []byte) bool {
	return b[0] == '{' || b[0] == '['
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
