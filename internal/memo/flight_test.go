package memo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGroupSoloCall(t *testing.T) {
	var g Group[int]
	calls := 0
	v, ok, shared, err := g.Do(context.Background(), "k", func() (int, bool) {
		calls++
		return 42, true
	})
	if err != nil || !ok || shared || v != 42 || calls != 1 {
		t.Fatalf("Do = (%d, %v, %v, %v), calls %d; want (42, true, false, nil), 1", v, ok, shared, err, calls)
	}
	if g.Waiters("k") != 0 {
		t.Fatalf("Waiters = %d after the flight finished, want 0", g.Waiters("k"))
	}
}

// TestGroupCoalescesConcurrentCallers parks followers behind a blocked
// leader and asserts the computation ran once, every follower saw the
// leader's value, and exactly one caller reports shared=false.
func TestGroupCoalescesConcurrentCallers(t *testing.T) {
	var g Group[string]
	const followers = 8
	gate := make(chan struct{})
	entered := make(chan struct{})
	var calls atomic.Int64

	type res struct {
		v      string
		shared bool
		err    error
	}
	out := make(chan res, followers+1)
	run := func() {
		v, _, shared, err := g.Do(context.Background(), "k", func() (string, bool) {
			if calls.Add(1) == 1 {
				close(entered)
				<-gate
			}
			return "value", true
		})
		out <- res{v, shared, err}
	}

	go run()
	<-entered
	for i := 0; i < followers; i++ {
		go run()
	}
	waitFor(t, "followers to park", func() bool { return g.Waiters("k") == followers })
	close(gate)

	leaders := 0
	for i := 0; i < followers+1; i++ {
		r := <-out
		if r.err != nil || r.v != "value" {
			t.Fatalf("caller got (%q, %v), want (\"value\", nil)", r.v, r.err)
		}
		if !r.shared {
			leaders++
		}
	}
	if calls.Load() != 1 || leaders != 1 {
		t.Fatalf("compute ran %d times with %d leaders, want 1 and 1", calls.Load(), leaders)
	}
}

// TestGroupFollowerContextCancel frees a follower whose context ends while
// the leader is still computing; the leader is unaffected.
func TestGroupFollowerContextCancel(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	entered := make(chan struct{})
	leaderDone := make(chan int, 1)
	go func() {
		v, _, _, _ := g.Do(context.Background(), "k", func() (int, bool) {
			close(entered)
			<-gate
			return 7, true
		})
		leaderDone <- v
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, _, _, err := g.Do(ctx, "k", func() (int, bool) { return 0, true })
		followerErr <- err
	}()
	waitFor(t, "follower to park", func() bool { return g.Waiters("k") == 1 })
	cancel()
	if err := <-followerErr; err != context.Canceled {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(gate)
	if v := <-leaderDone; v != 7 {
		t.Fatalf("leader value = %d, want 7", v)
	}
}

// TestGroupLeaderHandoff is the leader-cancellation contract: a leader whose
// compute returns ok=false (its request died) wakes its followers, and one
// of them re-runs the computation as the new leader instead of inheriting
// the failure.
func TestGroupLeaderHandoff(t *testing.T) {
	var g Group[string]
	gate := make(chan struct{})
	entered := make(chan struct{})
	var calls atomic.Int64

	leaderOut := make(chan bool, 1)
	go func() {
		_, ok, _, _ := g.Do(context.Background(), "k", func() (string, bool) {
			calls.Add(1)
			close(entered)
			<-gate
			return "", false // not shareable: the leader's request was canceled
		})
		leaderOut <- ok
	}()
	<-entered

	followerOut := make(chan string, 1)
	go func() {
		v, ok, _, err := g.Do(context.Background(), "k", func() (string, bool) {
			calls.Add(1)
			return "retried", true
		})
		if err != nil || !ok {
			t.Errorf("follower Do = (%v, %v), want success", ok, err)
		}
		followerOut <- v
	}()
	waitFor(t, "follower to park", func() bool { return g.Waiters("k") == 1 })
	close(gate)

	if ok := <-leaderOut; ok {
		t.Fatal("failed leader reported ok=true")
	}
	if v := <-followerOut; v != "retried" {
		t.Fatalf("follower value = %q, want %q (recomputed as the new leader)", v, "retried")
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2 (failed leader + handoff)", calls.Load())
	}
}

// TestGroupSurvivesCacheEvictionDuringCoalesce is the eviction-during-
// coalesce regression test: the serving pattern stores the leader's result
// in a bounded Cache AND returns it through the flight. Flooding the cache
// while followers are parked evicts the leader's entry before they wake —
// the followers must still receive the value (from the flight), never a
// zero value re-read from the evicted cache slot.
func TestGroupSurvivesCacheEvictionDuringCoalesce(t *testing.T) {
	cache := NewBounded[string](shardCount) // one entry per shard: trivially floodable
	var g Group[string]
	const followers = 4
	gate := make(chan struct{})
	entered := make(chan struct{})

	do := func() (string, error) {
		v, _, _, err := g.Do(context.Background(), "hot", func() (string, bool) {
			close(entered)
			<-gate
			cache.Put("hot", "computed")
			return "computed", true
		})
		return v, err
	}

	leaderOut := make(chan string, 1)
	go func() {
		v, _ := do()
		leaderOut <- v
	}()
	<-entered
	followerOut := make(chan string, followers)
	for i := 0; i < followers; i++ {
		go func() {
			v, err := do()
			if err != nil {
				t.Errorf("follower: %v", err)
			}
			followerOut <- v
		}()
	}
	waitFor(t, "followers to park", func() bool { return g.Waiters("hot") == followers })
	close(gate)

	// Evict the hot entry while followers are waking: every shard holds one
	// entry, so one insert per shard displaces everything resident.
	for i := 0; i < 4*shardCount; i++ {
		cache.Put(fmt.Sprintf("flood-%d", i), "x")
	}

	if v := <-leaderOut; v != "computed" {
		t.Fatalf("leader value = %q", v)
	}
	for i := 0; i < followers; i++ {
		if v := <-followerOut; v != "computed" {
			t.Fatalf("follower %d got %q after eviction, want %q from the flight", i, v, "computed")
		}
	}
}

// TestGroupConcurrentKeys hammers many goroutines over a small key space
// under -race: every caller must observe its key's deterministic value.
func TestGroupConcurrentKeys(t *testing.T) {
	var g Group[int]
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 50; j++ {
				v, ok, _, err := g.Do(context.Background(), key, func() (int, bool) {
					return i % 4, true
				})
				if err != nil || !ok || v != i%4 {
					t.Errorf("Do(%s) = (%d, %v, %v)", key, v, ok, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
