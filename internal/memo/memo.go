// Package memo provides small sharded, mutex-protected memoization caches
// for deterministic computations. The sweep engine runs grid cells on a
// bounded worker pool, so every cache feeding it (gold query results, prompt
// renderings, identifier decompositions, tokenizer ratios, linker decode
// scores) must be safe for concurrent use without becoming a contention
// point; sharding by key hash keeps lock traffic spread across independent
// mutexes.
package memo

import "sync"

// shardCount is a power of two so shard selection is a mask, not a modulo.
const shardCount = 32

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// Cache is a string-keyed sharded cache. The zero value is not usable; use
// New or NewBounded. Values stored must be treated as immutable by every
// reader: the cache hands out the same value to all callers.
type Cache[V any] struct {
	shards      [shardCount]shard[V]
	maxPerShard int // 0 = unbounded
}

// New returns an unbounded cache.
func New[V any]() *Cache[V] { return NewBounded[V](0) }

// NewBounded returns a cache that stops accepting new entries once it holds
// roughly maxEntries (existing entries keep being served). A bound turns the
// cache into a best-effort memo for workloads with unbounded key spaces —
// correctness never depends on a hit. maxEntries <= 0 means unbounded.
func NewBounded[V any](maxEntries int) *Cache[V] {
	c := &Cache[V]{}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + shardCount - 1) / shardCount
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep Get allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached value for key.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put stores the value for key unless the cache is at its bound.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]V)
	}
	if c.maxPerShard == 0 || len(s.m) < c.maxPerShard {
		s.m[key] = v
	}
	s.mu.Unlock()
}

// GetOrCompute returns the cached value for key, computing and storing it on
// a miss. compute runs outside the shard lock, so concurrent callers may
// compute the same key more than once; that is only correct because memoized
// computations are deterministic — every racer produces the same value.
func (c *Cache[V]) GetOrCompute(key string, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Put(key, v)
	return v
}

// Len returns the current entry count across shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
