// Package memo provides small sharded, mutex-protected memoization caches
// for deterministic computations. The sweep engine runs grid cells on a
// bounded worker pool, so every cache feeding it (gold query results, prompt
// renderings, identifier decompositions, tokenizer ratios, linker decode
// scores) must be safe for concurrent use without becoming a contention
// point; sharding by key hash keeps lock traffic spread across independent
// mutexes. Bounded caches evict with a per-shard clock hand so long-running
// processes (the snailsd serving daemon) hold memory steady while keeping
// recently-touched entries hot.
package memo

import (
	"sync"
	"sync/atomic"
)

// shardCount is a power of two so shard selection is a mask, not a modulo.
const shardCount = 32

// entry boxes a cached value with its clock-hand reference bit. The ref bit
// is atomic so Get can mark recency under the shard's read lock.
type entry[V any] struct {
	key string
	v   V
	ref atomic.Bool
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]*entry[V]
	// ring holds the shard's entries in insertion slots for the clock hand.
	// len(ring) never exceeds the shard bound; eviction reuses slots.
	ring []*entry[V]
	hand int
}

// Cache is a string-keyed sharded cache. The zero value is not usable; use
// New or NewBounded. Values stored must be treated as immutable by every
// reader: the cache hands out the same value to all callers.
type Cache[V any] struct {
	shards      [shardCount]shard[V]
	maxPerShard int // 0 = unbounded
	evictions   atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
}

// New returns an unbounded cache.
func New[V any]() *Cache[V] { return NewBounded[V](0) }

// NewBounded returns a cache that holds at most roughly maxEntries. Once a
// shard reaches its bound, inserting a new key evicts an existing entry
// chosen by a clock hand (second-chance): entries touched by Get since the
// hand last passed survive one sweep. A bound turns the cache into a
// best-effort memo for workloads with unbounded key spaces — correctness
// never depends on a hit — while capping resident memory for long-running
// servers. maxEntries <= 0 means unbounded.
func NewBounded[V any](maxEntries int) *Cache[V] {
	c := &Cache[V]{}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + shardCount - 1) / shardCount
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep Get allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached value for key and marks the entry recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	e, ok := s.m[key]
	var v V
	if ok {
		v = e.v
		e.ref.Store(true)
	}
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores the value for key, evicting a clock-hand victim when the shard
// is at its bound.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*entry[V])
	}
	if e, ok := s.m[key]; ok {
		e.v = v
		e.ref.Store(true)
		s.mu.Unlock()
		return
	}
	e := &entry[V]{key: key, v: v}
	if c.maxPerShard > 0 && len(s.ring) >= c.maxPerShard {
		// Clock hand: clear ref bits until an unreferenced victim is found.
		// Bounded: after one full sweep every bit is clear, so the loop
		// terminates at most 2*len(ring) steps in.
		for {
			victim := s.ring[s.hand]
			if !victim.ref.Swap(false) {
				delete(s.m, victim.key)
				s.ring[s.hand] = e
				s.hand = (s.hand + 1) % len(s.ring)
				c.evictions.Add(1)
				break
			}
			s.hand = (s.hand + 1) % len(s.ring)
		}
	} else {
		s.ring = append(s.ring, e)
	}
	s.m[key] = e
	s.mu.Unlock()
}

// GetOrCompute returns the cached value for key, computing and storing it on
// a miss. compute runs outside the shard lock, so concurrent callers may
// compute the same key more than once; that is only correct because memoized
// computations are deterministic — every racer produces the same value.
func (c *Cache[V]) GetOrCompute(key string, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Put(key, v)
	return v
}

// Len returns the current entry count across shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Evictions returns the number of entries displaced by the clock hand since
// the cache was created (always 0 for unbounded caches).
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }

// Hits returns the number of Get calls that found their key. GetOrCompute
// lookups count through the same path.
func (c *Cache[V]) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of Get calls that missed.
func (c *Cache[V]) Misses() uint64 { return c.misses.Load() }
