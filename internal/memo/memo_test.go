package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int]()
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[string]()
	calls := 0
	f := func() string { calls++; return "v" }
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("GetOrCompute = %q", got)
	}
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("GetOrCompute (cached) = %q", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestBound(t *testing.T) {
	// With maxEntries = shardCount, each shard accepts exactly one entry:
	// inserts beyond the first per shard are dropped, not evicted.
	c := NewBounded[int](shardCount)
	for i := 0; i < 10*shardCount; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > shardCount {
		t.Fatalf("bounded cache grew to %d entries, bound %d", n, shardCount)
	}
	// Entries that made it in keep being served.
	served := 0
	for i := 0; i < 10*shardCount; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			served++
		}
	}
	if served == 0 {
		t.Fatal("bounded cache should retain early entries")
	}
}

// TestConcurrent exercises the cache from many goroutines; run under -race
// this is the shard-locking regression test.
func TestConcurrent(t *testing.T) {
	c := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%97)
				want := (i % 97) * 3
				got := c.GetOrCompute(key, func() int { return want })
				if got != want {
					t.Errorf("GetOrCompute(%s) = %d, want %d", key, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n != 97 {
		t.Fatalf("Len = %d, want 97", n)
	}
}
