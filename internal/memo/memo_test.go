package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int]()
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[string]()
	calls := 0
	f := func() string { calls++; return "v" }
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("GetOrCompute = %q", got)
	}
	if got := c.GetOrCompute("k", f); got != "v" {
		t.Fatalf("GetOrCompute (cached) = %q", got)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestBound(t *testing.T) {
	// With maxEntries = shardCount, each shard holds exactly one entry:
	// inserts beyond the first per shard evict, so Len never exceeds the
	// bound no matter how many distinct keys flow through.
	c := NewBounded[int](shardCount)
	for i := 0; i < 10*shardCount; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > shardCount {
		t.Fatalf("bounded cache grew to %d entries, bound %d", n, shardCount)
	}
	// New keys displace old ones rather than being dropped: the most
	// recently inserted key is always resident.
	last := fmt.Sprintf("key-%d", 10*shardCount-1)
	if _, ok := c.Get(last); !ok {
		t.Fatalf("most recent insert %s was not retained", last)
	}
	if c.Evictions() == 0 {
		t.Fatal("overfilling a bounded cache should record evictions")
	}
}

func TestClockHandEviction(t *testing.T) {
	// All keys land in one shard by construction is hard to arrange with
	// FNV, so use a bound of shardCount (one slot per shard) and find two
	// keys that collide on a shard: the second insert must evict the first
	// unless the first was touched.
	c := NewBounded[int](shardCount)
	target := fnv1a("a0") & (shardCount - 1)
	collider := ""
	for i := 1; i < 10000; i++ {
		k := fmt.Sprintf("a%d", i)
		if fnv1a(k)&(shardCount-1) == target {
			collider = k
			break
		}
	}
	if collider == "" {
		t.Fatal("no shard collider found")
	}

	// Untouched entry: evicted by the next colliding insert.
	c.Put("a0", 1)
	c.Put(collider, 2)
	if _, ok := c.Get("a0"); ok {
		t.Fatal("untouched entry should have been evicted by the clock hand")
	}
	if v, ok := c.Get(collider); !ok || v != 2 {
		t.Fatalf("collider = %d, %v; want 2, true", v, ok)
	}

	// Referenced entry: Get sets the ref bit, so with two slots per shard a
	// hot entry survives the sweep and the hand evicts the cold one.
	c3 := NewBounded[int](2 * shardCount)
	second := ""
	for i := 1; i < 20000; i++ {
		k := fmt.Sprintf("a%d", i)
		if k != collider && fnv1a(k)&(shardCount-1) == target {
			second = k
			break
		}
	}
	if second == "" {
		t.Fatal("no second collider found")
	}
	c3.Put("a0", 1)
	c3.Put(collider, 2)
	c3.Get("a0") // hot
	c3.Put(second, 3)
	if _, ok := c3.Get("a0"); !ok {
		t.Fatal("recently-used entry should survive the sweep")
	}
	if _, ok := c3.Get(collider); ok {
		t.Fatal("cold entry should have been evicted")
	}
	if v, ok := c3.Get(second); !ok || v != 3 {
		t.Fatalf("new entry = %d, %v; want 3, true", v, ok)
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	c := NewBounded[int](shardCount)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("updated value = %d, want 2", v)
	}
	if c.Evictions() != 0 {
		t.Fatal("overwriting a key must not evict")
	}
}

// TestConcurrent exercises the cache from many goroutines; run under -race
// this is the shard-locking regression test.
func TestConcurrent(t *testing.T) {
	c := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%97)
				want := (i % 97) * 3
				got := c.GetOrCompute(key, func() int { return want })
				if got != want {
					t.Errorf("GetOrCompute(%s) = %d, want %d", key, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n != 97 {
		t.Fatalf("Len = %d, want 97", n)
	}
}
