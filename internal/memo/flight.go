package memo

import (
	"context"
	"sync"
	"sync/atomic"
)

// Group coalesces concurrent computations of the same key: the first caller
// (the leader) runs compute while later callers (followers) park until the
// leader publishes its result. It is the in-flight companion to Cache — a
// cache dedups repeats of finished work, a Group dedups repeats of work that
// has not finished yet. The serving layer stacks one over the other so N
// identical concurrent cache misses run the pipeline once.
//
// Results are handed to followers through the flight itself, never through a
// cache, so a bounded cache evicting the entry between the leader's Put and a
// follower's wake-up cannot lose the value.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

// flightCall is one in-flight computation. done is closed after v and ok are
// written, so waiters reading them after <-done never race the leader.
type flightCall[V any] struct {
	done    chan struct{}
	waiters atomic.Int64
	v       V
	ok      bool
}

// Do returns compute's value for key, running it at most once across
// concurrent callers.
//
// compute returns (value, ok). ok=false means the result must not be shared —
// the leader failed in a way that is private to its own request (a canceled
// context, a per-request error). The leader still receives its own (v, false)
// back; each follower waiting on that flight retries from the top, and the
// first retrier becomes the new leader. A follower therefore computes at most
// once — exactly what it would have done without the Group — so a failing
// leader never amplifies work, it only stops sharing it.
//
// The returned shared flag reports whether the value came from another
// caller's flight. err is non-nil only when ctx ended while waiting on a
// leader; the leader itself never returns an error from Do (its compute's
// failure shape rides inside V or ok).
func (g *Group[V]) Do(ctx context.Context, key string, compute func() (V, bool)) (v V, ok bool, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall[V])
		}
		if c, inFlight := g.m[key]; inFlight {
			c.waiters.Add(1)
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.ok {
					return c.v, true, true, nil
				}
				// The leader declined to share (canceled, errored). Loop:
				// whoever re-enters first becomes the new leader.
				continue
			case <-ctx.Done():
				var zero V
				return zero, false, true, ctx.Err()
			}
		}
		c := &flightCall[V]{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.v, c.ok = compute()
		g.mu.Lock()
		// Remove before close: a caller arriving after the flight finished
		// must start fresh, not wait on a completed call.
		if g.m[key] == c {
			delete(g.m, key)
		}
		g.mu.Unlock()
		close(c.done)
		return c.v, c.ok, false, nil
	}
}

// Waiters reports how many callers are currently parked on key's flight
// (0 when no flight is in progress). Tests use it to sequence leaders and
// followers deterministically; it is also a useful saturation gauge.
func (g *Group[V]) Waiters(key string) int {
	g.mu.Lock()
	c := g.m[key]
	g.mu.Unlock()
	if c == nil {
		return 0
	}
	return int(c.waiters.Load())
}
