package experiments

import (
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/trace"
)

// ScalingPoint is one row of the sweep worker-scaling curve: throughput of
// the full evaluation grid at a fixed worker count.
type ScalingPoint struct {
	Workers          int     `json:"workers"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	CellsPerSec      float64 `json:"cells_per_sec"`
	// Efficiency is parallel efficiency relative to the curve's first point:
	// per-worker throughput divided by the first point's per-worker
	// throughput (1.0 = perfect linear scaling). On a machine with fewer
	// cores than workers the curve flattens and efficiency decays toward
	// cores/workers — the committed baseline records what its machine did.
	Efficiency float64 `json:"efficiency"`
	// Stages is the per-stage latency breakdown of this point's sweep.
	Stages []trace.StageSnapshot `json:"stages,omitempty"`
}

// ScalingCurve measures sweep throughput at each worker count and returns
// one point per count, in the given order.
//
// A full warmup sweep runs first, untimed: it fills the process-global gold
// and predicted-query execution memos and trains the tokenizers, so every
// measured point runs the same decode-dominated workload instead of the
// first point also paying one-time SQL and training costs. Model-level
// linking memos are rebuilt per point (RunSweep constructs fresh models), so
// the decode engine — the part worker scaling is meant to characterize — is
// exercised in full at every count. Sweep results are bit-identical at every
// worker count; only the Stats differ.
func ScalingCurve(workerCounts []int) []ScalingPoint {
	if len(workerCounts) == 0 {
		return nil
	}
	Run() // warmup: global memos + tokenizers

	out := make([]ScalingPoint, 0, len(workerCounts))
	var basePerWorker float64
	for _, w := range workerCounts {
		if w < 1 {
			w = 1
		}
		sw := RunSweep(datasets.All(), Options{Workers: w})
		pt := ScalingPoint{
			Workers:          w,
			WallClockSeconds: sw.Stats.WallClock.Seconds(),
			CellsPerSec:      sw.Stats.CellsPerSec,
			Stages:           sw.Stats.Stages,
		}
		perWorker := pt.CellsPerSec / float64(w)
		if basePerWorker == 0 {
			basePerWorker = perWorker
		}
		if basePerWorker > 0 {
			pt.Efficiency = perWorker / basePerWorker
		}
		out = append(out, pt)
	}
	return out
}
