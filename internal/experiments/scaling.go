package experiments

import (
	"runtime"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/trace"
)

// ScalingPoint is one row of the sweep worker-scaling curve: throughput of
// the full evaluation grid at a fixed worker count.
type ScalingPoint struct {
	Workers int `json:"workers"`
	// GOMAXPROCS records the scheduler parallelism this row actually ran
	// under. Efficiency at Workers > GOMAXPROCS measures oversubscription,
	// not the engine, so the compare gate annotates (rather than gates)
	// such rows.
	GOMAXPROCS       int     `json:"gomaxprocs,omitempty"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	CellsPerSec      float64 `json:"cells_per_sec"`
	// Efficiency is parallel efficiency relative to the curve's first point:
	// per-worker throughput divided by the first point's per-worker
	// throughput (1.0 = perfect linear scaling). On a machine with fewer
	// cores than workers the curve flattens and efficiency decays toward
	// cores/workers — the committed baseline records what its machine did.
	Efficiency float64 `json:"efficiency"`
	// Stages is the per-stage latency breakdown of this point's sweep,
	// padded to every pipeline stage: stages whose work was memoized away
	// (the warmup sweep warms the gold/pred execution caches, so timed
	// runs hit the memo and record no sql_exec span) appear with
	// Count == 0 instead of silently vanishing from the row.
	Stages []trace.StageSnapshot `json:"stages,omitempty"`
}

// ScalingCurve measures sweep throughput at each worker count and returns
// one point per count, in the given order.
//
// A full warmup sweep runs first, untimed: it fills the process-global gold
// and predicted-query execution memos and trains the tokenizers, so every
// measured point runs the same decode-dominated workload instead of the
// first point also paying one-time SQL and training costs. Model-level
// linking memos are rebuilt per point (RunSweep constructs fresh models), so
// the decode engine — the part worker scaling is meant to characterize — is
// exercised in full at every count. Sweep results are bit-identical at every
// worker count; only the Stats differ.
func ScalingCurve(workerCounts []int) []ScalingPoint {
	if len(workerCounts) == 0 {
		return nil
	}
	Run() // warmup: global memos + tokenizers

	out := make([]ScalingPoint, 0, len(workerCounts))
	var basePerWorker float64
	for _, w := range workerCounts {
		if w < 1 {
			w = 1
		}
		sw := RunSweep(datasets.All(), Options{Workers: w})
		pt := ScalingPoint{
			Workers:          w,
			GOMAXPROCS:       runtime.GOMAXPROCS(0),
			WallClockSeconds: sw.Stats.WallClock.Seconds(),
			CellsPerSec:      sw.Stats.CellsPerSec,
			Stages:           padStages(sw.Stats.Stages),
		}
		perWorker := pt.CellsPerSec / float64(w)
		if basePerWorker == 0 {
			basePerWorker = perWorker
		}
		if basePerWorker > 0 {
			pt.Efficiency = perWorker / basePerWorker
		}
		out = append(out, pt)
	}
	return out
}

// padStages expands a stage breakdown to every pipeline stage in canonical
// order, inserting explicit zero-count rows for stages that recorded no
// span. Collector.Stages omits unobserved stages, which is right for "what
// did this run compute" but wrong for a baseline artifact: a stage whose
// work disappeared into a memo (or regressed into never running) must show
// up as zero, where the compare gate can see it, not vanish.
func padStages(in []trace.StageSnapshot) []trace.StageSnapshot {
	out := make([]trace.StageSnapshot, trace.NumStages)
	for i := range out {
		out[i] = trace.StageSnapshot{Stage: trace.Stage(i).String()}
	}
	for _, s := range in {
		for i := range out {
			if out[i].Stage == s.Stage {
				out[i] = s
				break
			}
		}
	}
	return out
}
