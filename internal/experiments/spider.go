package experiments

import (
	"sync"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/schema"
)

var (
	spiderOnce  sync.Once
	spiderSweep *Sweep
)

// SpiderSweep runs the grid over the Spider-like dev collection renamed with
// the SNAILS crosswalk artifacts (Figure 13).
func SpiderSweep() *Sweep {
	spiderOnce.Do(func() { spiderSweep = RunSweep(datasets.SpiderDev(), Options{}) })
	return spiderSweep
}

// SpiderRow is one (model, variant) Figure 13 summary over the modified
// Spider collection: QueryRecall and Execution Accuracy side by side.
type SpiderRow struct {
	Model    string
	Variant  schema.Variant
	Recall   float64
	Accuracy float64
	N        int
}

// Figure13 summarizes the Spider-modified experiment.
func Figure13() []SpiderRow {
	s := SpiderSweep()
	var rows []SpiderRow
	for _, m := range ModelNames() {
		for _, v := range schema.Variants {
			row := SpiderRow{Model: m, Variant: v}
			var recall float64
			valid, correct, n := 0, 0, 0
			for i := range s.Cells {
				c := &s.Cells[i]
				if c.Model != m || c.Variant != v {
					continue
				}
				n++
				if c.ExecCorrect {
					correct++
				}
				if c.ParseOK {
					valid++
					recall += c.Link.Recall
				}
			}
			row.N = n
			row.Accuracy = ratio(correct, n)
			if valid > 0 {
				row.Recall = recall / float64(valid)
			}
			rows = append(rows, row)
		}
	}
	return rows
}
