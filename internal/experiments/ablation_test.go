package experiments

import (
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/schema"
)

func recallOf(rows []AblationRow, config string, v schema.Variant) float64 {
	for _, r := range rows {
		if r.Config == config && r.Variant == v {
			return r.Recall
		}
	}
	return -1
}

func TestAblationGate(t *testing.T) {
	rows := AblationGate("ATBI", "gpt-4o")
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Without the gate, Least-naturalness linking improves (the mechanism
	// carries the Least degradation); Regular is essentially unaffected.
	fullLeast := recallOf(rows, "full", schema.VariantLeast)
	offLeast := recallOf(rows, "no-gate", schema.VariantLeast)
	if offLeast <= fullLeast {
		t.Errorf("disabling the gate should raise Least recall: full=%.3f off=%.3f", fullLeast, offLeast)
	}
	fullReg := recallOf(rows, "full", schema.VariantRegular)
	offReg := recallOf(rows, "no-gate", schema.VariantRegular)
	if offReg-fullReg > 0.05 {
		t.Errorf("the gate should barely touch Regular: full=%.3f off=%.3f", fullReg, offReg)
	}
}

func TestAblationPrefixEase(t *testing.T) {
	rows := AblationPrefixEase("ATBI", "gpt-3.5")
	// Without prefix ease, Low-naturalness identifiers (mostly truncations)
	// become harder to read, dropping Low recall.
	fullLow := recallOf(rows, "full", schema.VariantLow)
	offLow := recallOf(rows, "no-prefix-ease", schema.VariantLow)
	if offLow >= fullLow {
		t.Errorf("removing prefix ease should lower Low recall: full=%.3f off=%.3f", fullLow, offLow)
	}
}

func TestAblationExpander(t *testing.T) {
	r := AblationExpander("ATBI")
	if r.Entries == 0 {
		t.Fatal("no Low/Least entries")
	}
	if r.GroundedExact < r.DictOnlyExact {
		t.Errorf("metadata grounding should not hurt exact recovery: grounded=%d dict=%d",
			r.GroundedExact, r.DictOnlyExact)
	}
	if r.GroundedExact == 0 {
		t.Error("grounded expansion should recover some concepts exactly")
	}
	if r.GroundedOK < r.DictOnlyOK {
		t.Errorf("grounding should not reduce resolution coverage: %d vs %d", r.GroundedOK, r.DictOnlyOK)
	}
}

func TestAblationMatching(t *testing.T) {
	r := AblationMatching("CWO", "gpt-4o")
	if r.N == 0 || r.Relaxed == 0 {
		t.Fatalf("implausible matching ablation: %+v", r)
	}
	if r.Strict > r.Relaxed {
		t.Errorf("strict cannot exceed relaxed: %+v", r)
	}
}

func TestWriteAblationsRenders(t *testing.T) {
	var sb strings.Builder
	WriteAblations(&sb)
	out := sb.String()
	for _, want := range []string{"recognition gate", "prefix-truncation", "metadata grounding", "relaxed vs strict"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
