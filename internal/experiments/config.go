package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/config"
	"github.com/snails-bench/snails/internal/datasets"
)

// RunConfig executes the grid a declarative experiment config describes,
// over pre-built backends (backend.BuildAll(exp) — the caller owns their
// closer so wire backends outlive the sweep only as long as needed).
func RunConfig(exp *config.Experiment, backends []backend.Backend) (*Sweep, error) {
	dbs, err := ResolveDatabases(exp.Databases)
	if err != nil {
		return nil, err
	}
	variants, err := exp.ResolveVariants()
	if err != nil {
		return nil, err
	}
	return RunSweep(dbs, Options{
		Workers:           exp.Workers,
		Backends:          backends,
		Variants:          variants,
		MaxQuestionsPerDB: exp.Budget.MaxQuestionsPerDB,
		MaxCells:          exp.Budget.MaxCells,
	}), nil
}

// ResolveDatabases maps config database names to built datasets, in config
// order. Empty means the full collection.
func ResolveDatabases(names []string) ([]*datasets.Built, error) {
	if len(names) == 0 {
		return datasets.All(), nil
	}
	out := make([]*datasets.Built, 0, len(names))
	for _, n := range names {
		b, ok := datasets.Get(n)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown database %q (known: %s)",
				n, strings.Join(datasets.Names, ", "))
		}
		out = append(out, b)
	}
	return out, nil
}

// WriteCells dumps the sweep's cells in canonical grid order, one line per
// cell, with only run-independent fields — no wall-clock anywhere. Two
// sweeps over the same deterministic grid produce byte-identical dumps, so
// the config-driven path can be diffed against the flag path with cmp(1).
func (s *Sweep) WriteCells(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.Cells {
		c := &s.Cells[i]
		exec, parse := 0, 0
		if c.ExecCorrect {
			exec = 1
		}
		if c.ParseOK {
			parse = 1
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%d\tparse=%d\texec=%d\tR=%.4f\tP=%.4f\tF1=%.4f\n",
			c.Backend, c.DB, c.Variant, c.QuestionID, parse, exec,
			c.Link.Recall, c.Link.Precision, c.Link.F1)
	}
	return bw.Flush()
}
