package experiments

import (
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/stats"
)

// TauRow is one Kendall-Tau correlation table row (Figures 31-47).
type TauRow struct {
	Model string
	Tau   float64
	P     float64
	N     int
}

// Feature selects the x-variable of a correlation.
type Feature int

const (
	FeatCombined Feature = iota
	FeatRegular
	FeatLow
	FeatLeast
	FeatTCR
)

// Outcome selects the y-variable of a correlation.
type Outcome int

const (
	OutRecall Outcome = iota
	OutPrecision
	OutF1
	OutExecAccuracy
)

// Scope selects which schema variants feed the correlation (the paper
// reports each table for native-only and for native+modified).
type Scope int

const (
	ScopeNative Scope = iota
	ScopeAll
)

func featureOf(c *Cell, f Feature) float64 {
	switch f {
	case FeatCombined:
		return c.Combined
	case FeatRegular:
		return c.RegFrac
	case FeatLow:
		return c.LowFrac
	case FeatLeast:
		return c.LeastFrac
	default:
		return c.TCR
	}
}

func outcomeOf(c *Cell, o Outcome) (float64, bool) {
	switch o {
	case OutExecAccuracy:
		if c.ExecCorrect {
			return 1, true
		}
		return 0, true
	case OutRecall:
		return c.Link.Recall, c.ParseOK
	case OutPrecision:
		return c.Link.Precision, c.ParseOK
	default:
		return c.Link.F1, c.ParseOK
	}
}

// Correlate computes the Kendall-Tau table for one (feature, outcome, scope)
// combination, one row per model — the layout of Figures 31-47.
func Correlate(f Feature, o Outcome, scope Scope) []TauRow { return CorrelateOf(Run(), f, o, scope) }

// CorrelateOf computes the same table over an explicit sweep.
func CorrelateOf(s *Sweep, f Feature, o Outcome, scope Scope) []TauRow {
	var rows []TauRow
	for _, m := range ModelNames() {
		var xs, ys []float64
		for i := range s.Cells {
			c := &s.Cells[i]
			if c.Model != m {
				continue
			}
			if scope == ScopeNative && c.Variant != schema.VariantNative {
				continue
			}
			y, ok := outcomeOf(c, o)
			if !ok {
				continue // linking analysis excludes unparseable predictions
			}
			xs = append(xs, featureOf(c, f))
			ys = append(ys, y)
		}
		res, err := stats.KendallTau(xs, ys)
		if err != nil {
			continue
		}
		rows = append(rows, TauRow{Model: m, Tau: res.Tau, P: res.P, N: res.N})
	}
	return rows
}

// CorrelationCatalog enumerates every Kendall-Tau table of the appendix with
// its figure number, so the bench harness can regenerate them all.
type CorrelationSpec struct {
	Figure  string
	F       Feature
	O       Outcome
	Scope   Scope
	Caption string
}

// Catalog returns the full list of appendix correlation tables.
func Catalog() []CorrelationSpec {
	return []CorrelationSpec{
		{"31a", FeatTCR, OutRecall, ScopeNative, "TCR vs QueryRecall (native)"},
		{"31b", FeatTCR, OutRecall, ScopeAll, "TCR vs QueryRecall (all schemas)"},
		{"32a", FeatCombined, OutRecall, ScopeNative, "Combined naturalness vs QueryRecall (native)"},
		{"32b", FeatCombined, OutRecall, ScopeAll, "Combined naturalness vs QueryRecall (all)"},
		{"33a", FeatCombined, OutF1, ScopeNative, "Combined naturalness vs QueryF1 (native)"},
		{"33b", FeatCombined, OutF1, ScopeAll, "Combined naturalness vs QueryF1 (all)"},
		{"34a", FeatCombined, OutPrecision, ScopeNative, "Combined naturalness vs QueryPrecision (native)"},
		{"34b", FeatCombined, OutPrecision, ScopeAll, "Combined naturalness vs QueryPrecision (all)"},
		{"35a", FeatRegular, OutRecall, ScopeNative, "Regular proportion vs QueryRecall (native)"},
		{"35b", FeatRegular, OutRecall, ScopeAll, "Regular proportion vs QueryRecall (all)"},
		{"36a", FeatLow, OutRecall, ScopeNative, "Low proportion vs QueryRecall (native)"},
		{"36b", FeatLow, OutRecall, ScopeAll, "Low proportion vs QueryRecall (all)"},
		{"37a", FeatLeast, OutRecall, ScopeNative, "Least proportion vs QueryRecall (native)"},
		{"37b", FeatLeast, OutRecall, ScopeAll, "Least proportion vs QueryRecall (all)"},
		{"38a", FeatRegular, OutF1, ScopeNative, "Regular proportion vs QueryF1 (native)"},
		{"38b", FeatRegular, OutF1, ScopeAll, "Regular proportion vs QueryF1 (all)"},
		{"39a", FeatLow, OutF1, ScopeNative, "Low proportion vs QueryF1 (native)"},
		{"39b", FeatLow, OutF1, ScopeAll, "Low proportion vs QueryF1 (all)"},
		{"40a", FeatLeast, OutF1, ScopeNative, "Least proportion vs QueryF1 (native)"},
		{"40b", FeatLeast, OutF1, ScopeAll, "Least proportion vs QueryF1 (all)"},
		{"41a", FeatRegular, OutPrecision, ScopeNative, "Regular proportion vs QueryPrecision (native)"},
		{"41b", FeatRegular, OutPrecision, ScopeAll, "Regular proportion vs QueryPrecision (all)"},
		{"42a", FeatLow, OutPrecision, ScopeNative, "Low proportion vs QueryPrecision (native)"},
		{"42b", FeatLow, OutPrecision, ScopeAll, "Low proportion vs QueryPrecision (all)"},
		{"43a", FeatLeast, OutPrecision, ScopeNative, "Least proportion vs QueryPrecision (native)"},
		{"43b", FeatLeast, OutPrecision, ScopeAll, "Least proportion vs QueryPrecision (all)"},
		{"44a", FeatRegular, OutExecAccuracy, ScopeNative, "Regular proportion vs Execution Accuracy (native)"},
		{"44b", FeatRegular, OutExecAccuracy, ScopeAll, "Regular proportion vs Execution Accuracy (all)"},
		{"45a", FeatLow, OutExecAccuracy, ScopeNative, "Low proportion vs Execution Accuracy (native)"},
		{"45b", FeatLow, OutExecAccuracy, ScopeAll, "Low proportion vs Execution Accuracy (all)"},
		{"46a", FeatLeast, OutExecAccuracy, ScopeNative, "Least proportion vs Execution Accuracy (native)"},
		{"46b", FeatLeast, OutExecAccuracy, ScopeAll, "Least proportion vs Execution Accuracy (all)"},
		{"47a", FeatCombined, OutExecAccuracy, ScopeNative, "Combined naturalness vs Execution Accuracy (native)"},
		{"47b", FeatCombined, OutExecAccuracy, ScopeAll, "Combined naturalness vs Execution Accuracy (all)"},
	}
}
