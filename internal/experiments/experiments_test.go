package experiments

import (
	"math"
	"testing"

	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/schema"
)

func rowsByVariant(rows []AccuracyRow, model string) map[schema.Variant]float64 {
	out := map[schema.Variant]float64{}
	for _, r := range rows {
		if r.Model == model {
			out[r.Variant] = r.Accuracy
		}
	}
	return out
}

func TestSweepCoversFullGrid(t *testing.T) {
	s := Run()
	want := 6 * 4 * 503
	if len(s.Cells) != want {
		t.Fatalf("sweep cells = %d, want %d", len(s.Cells), want)
	}
}

func TestSweepDeterministic(t *testing.T) {
	s := Run()
	a := s.Cells[100]
	b := Run().Cells[100]
	if a.Model != b.Model || a.ExecCorrect != b.ExecCorrect || a.Link != b.Link {
		t.Error("sweep should be cached and stable")
	}
}

// Figure 8 key takeaway: Regular >= Low > Least execution accuracy for every
// model, and Least is substantially worse.
func TestFigure8Shape(t *testing.T) {
	rows := Figure8()
	for _, m := range ModelNames() {
		acc := rowsByVariant(rows, m)
		if acc[schema.VariantRegular] < acc[schema.VariantLow] {
			t.Errorf("%s: Regular (%.3f) should be >= Low (%.3f)", m,
				acc[schema.VariantRegular], acc[schema.VariantLow])
		}
		if acc[schema.VariantLow] <= acc[schema.VariantLeast] {
			t.Errorf("%s: Low (%.3f) should beat Least (%.3f)", m,
				acc[schema.VariantLow], acc[schema.VariantLeast])
		}
		if acc[schema.VariantRegular]-acc[schema.VariantLeast] < 0.15 {
			t.Errorf("%s: Least should be substantially worse than Regular (%.3f vs %.3f)",
				m, acc[schema.VariantLeast], acc[schema.VariantRegular])
		}
	}
}

// Model ordering: the strong closed models beat the open-source models, and
// DIN-SQL does not beat plain GPT-4o zero-shot (the paper's
// complex-workflows-counterproductive observation).
func TestModelOrdering(t *testing.T) {
	rows := Figure8()
	overall := map[string]float64{}
	for _, m := range ModelNames() {
		acc := rowsByVariant(rows, m)
		overall[m] = (acc[schema.VariantNative] + acc[schema.VariantRegular] +
			acc[schema.VariantLow] + acc[schema.VariantLeast]) / 4
	}
	for _, weak := range []string{"gpt-3.5", "Phind-CodeLlama-34B-v2", "CodeS"} {
		if overall[weak] >= overall["gpt-4o"] {
			t.Errorf("%s (%.3f) should be below gpt-4o (%.3f)", weak, overall[weak], overall["gpt-4o"])
		}
	}
	if overall["DINSQL"] > overall["gpt-4o"]+0.01 {
		t.Errorf("DIN-SQL (%.3f) should not beat GPT-4o zero-shot (%.3f)",
			overall["DINSQL"], overall["gpt-4o"])
	}
}

// Figure 9: IdentifierRecall decreases with lower identifier naturalness for
// every model.
func TestFigure9Shape(t *testing.T) {
	rows := Figure9()
	byModel := map[string]map[naturalness.Level]float64{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[naturalness.Level]float64{}
		}
		byModel[r.Model][r.Level] = r.Recall
		if r.N == 0 {
			t.Errorf("%s/%v: no identifiers measured", r.Model, r.Level)
		}
	}
	for m, rec := range byModel {
		if rec[naturalness.Regular] < rec[naturalness.Least] {
			t.Errorf("%s: Regular identifier recall (%.3f) below Least (%.3f)",
				m, rec[naturalness.Regular], rec[naturalness.Least])
		}
		if rec[naturalness.Low] < rec[naturalness.Least] {
			t.Errorf("%s: Low identifier recall (%.3f) below Least (%.3f)",
				m, rec[naturalness.Low], rec[naturalness.Least])
		}
	}
}

// Figure 10: QueryRecall ordering and higher sensitivity for the open-source
// models.
func TestFigure10Shape(t *testing.T) {
	rows := Figure10()
	recall := map[string]map[schema.Variant]float64{}
	for _, r := range rows {
		if recall[r.Model] == nil {
			recall[r.Model] = map[schema.Variant]float64{}
		}
		recall[r.Model][r.Variant] = r.Recall
	}
	for m, rec := range recall {
		if !(rec[schema.VariantRegular] >= rec[schema.VariantLow] &&
			rec[schema.VariantLow] > rec[schema.VariantLeast]) {
			t.Errorf("%s: recall ordering violated: %v", m, rec)
		}
	}
	dropStrong := recall["gpt-4o"][schema.VariantRegular] - recall["gpt-4o"][schema.VariantLeast]
	dropWeak := recall["Phind-CodeLlama-34B-v2"][schema.VariantRegular] - recall["Phind-CodeLlama-34B-v2"][schema.VariantLeast]
	if dropWeak <= dropStrong {
		t.Errorf("open-source model should be more naturalness-sensitive: weak drop %.3f vs strong drop %.3f",
			dropWeak, dropStrong)
	}
}

// Figure 11: SBOD (a Least-natural schema) improves dramatically when
// renamed to Regular, for every model; PILB (already natural) does not need
// renaming.
func TestFigure11Shape(t *testing.T) {
	rows := Figure11("PILB", "SBOD")
	get := func(db, m string, v schema.Variant) float64 {
		for _, r := range rows {
			if r.DB == db && r.Model == m && r.Variant == v {
				return r.Recall
			}
		}
		t.Fatalf("missing row %s/%s/%v", db, m, v)
		return 0
	}
	for _, m := range ModelNames() {
		if gain := get("SBOD", m, schema.VariantRegular) - get("SBOD", m, schema.VariantNative); gain < 0.15 {
			t.Errorf("%s: SBOD Native->Regular gain %.3f should be large", m, gain)
		}
		if gain := get("PILB", m, schema.VariantRegular) - get("PILB", m, schema.VariantNative); gain > 0.15 {
			t.Errorf("%s: PILB should not need renaming (gain %.3f)", m, gain)
		}
		if drop := get("PILB", m, schema.VariantNative) - get("PILB", m, schema.VariantLeast); drop < 0.03 {
			t.Errorf("%s: reducing PILB to Least should degrade recall (drop %.3f)", m, drop)
		}
	}
}

// Figure 12: subsetting stages exist only for DIN-SQL and CodeS, and Least
// schemas hurt filter recall.
func TestFigure12Shape(t *testing.T) {
	rows := Figure12()
	models := map[string]bool{}
	f1 := map[string]map[schema.Variant]float64{}
	recall := map[string]map[schema.Variant]float64{}
	for _, r := range rows {
		models[r.Model] = true
		if f1[r.Model] == nil {
			f1[r.Model] = map[schema.Variant]float64{}
			recall[r.Model] = map[schema.Variant]float64{}
		}
		f1[r.Model][r.Variant] = r.F1
		recall[r.Model][r.Variant] = r.Recall
	}
	if len(models) != 2 || !models["DINSQL"] || !models["CodeS"] {
		t.Fatalf("subsetting models = %v, want DINSQL and CodeS", models)
	}
	for m := range models {
		if recall[m][schema.VariantRegular] <= recall[m][schema.VariantLeast] {
			t.Errorf("%s: filter recall should degrade at Least: %v", m, recall[m])
		}
	}
}

// Figure 13: the Spider-like collection is natural, so Native performs like
// Regular and the damage concentrates between Low and Least.
func TestFigure13Shape(t *testing.T) {
	rows := Figure13()
	rec := map[string]map[schema.Variant]float64{}
	for _, r := range rows {
		if rec[r.Model] == nil {
			rec[r.Model] = map[schema.Variant]float64{}
		}
		rec[r.Model][r.Variant] = r.Recall
		if r.N == 0 {
			t.Fatalf("no spider cells for %s/%v", r.Model, r.Variant)
		}
	}
	var meanDrop float64
	for m, v := range rec {
		if math.Abs(v[schema.VariantNative]-v[schema.VariantRegular]) > 0.12 {
			t.Errorf("%s: spider Native (%.3f) should track Regular (%.3f)",
				m, v[schema.VariantNative], v[schema.VariantRegular])
		}
		drop := v[schema.VariantLow] - v[schema.VariantLeast]
		meanDrop += drop
		if drop < -0.03 {
			t.Errorf("%s: spider Least should not beat Low: low=%.3f least=%.3f",
				m, v[schema.VariantLow], v[schema.VariantLeast])
		}
	}
	meanDrop /= float64(len(rec))
	if meanDrop < 0.05 {
		t.Errorf("spider Low->Least drop should be the dominant effect: mean drop %.3f", meanDrop)
	}
}

// The statistical headline: combined query naturalness correlates positively
// and significantly with QueryRecall and execution accuracy for every model,
// and the Least-identifier proportion correlates negatively.
func TestKendallTauHeadlines(t *testing.T) {
	for _, spec := range []struct {
		f       Feature
		o       Outcome
		scope   Scope
		signPos bool
	}{
		{FeatCombined, OutRecall, ScopeAll, true},
		{FeatCombined, OutExecAccuracy, ScopeAll, true},
		{FeatLeast, OutRecall, ScopeAll, false},
		{FeatLeast, OutExecAccuracy, ScopeAll, false},
	} {
		rows := Correlate(spec.f, spec.o, spec.scope)
		if len(rows) != 6 {
			t.Fatalf("expected 6 model rows, got %d", len(rows))
		}
		for _, r := range rows {
			if spec.signPos && r.Tau <= 0 {
				t.Errorf("feature %d outcome %d: %s tau=%.3f should be positive", spec.f, spec.o, r.Model, r.Tau)
			}
			if !spec.signPos && r.Tau >= 0 {
				t.Errorf("feature %d outcome %d: %s tau=%.3f should be negative", spec.f, spec.o, r.Model, r.Tau)
			}
			if r.P > 0.01 {
				t.Errorf("feature %d outcome %d: %s correlation not significant (p=%.4f)", spec.f, spec.o, r.Model, r.P)
			}
		}
	}
}

// Open-source models exhibit the strongest naturalness correlations
// (section 5's key takeaway about model-dependent sensitivity).
func TestCorrelationMagnitudeOrdering(t *testing.T) {
	rows := Correlate(FeatCombined, OutRecall, ScopeAll)
	tau := map[string]float64{}
	for _, r := range rows {
		tau[r.Model] = r.Tau
	}
	if tau["Phind-CodeLlama-34B-v2"] <= tau["gemini-1.5-pro"] {
		t.Errorf("Phind tau (%.3f) should exceed Gemini tau (%.3f)",
			tau["Phind-CodeLlama-34B-v2"], tau["gemini-1.5-pro"])
	}
	if tau["CodeS"] <= tau["gpt-4o"] {
		t.Errorf("CodeS tau (%.3f) should exceed GPT-4o tau (%.3f)", tau["CodeS"], tau["gpt-4o"])
	}
}

func TestCatalogComplete(t *testing.T) {
	specs := Catalog()
	if len(specs) != 34 {
		t.Fatalf("catalog should list the 34 appendix tau tables, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Figure] {
			t.Errorf("duplicate figure id %s", s.Figure)
		}
		seen[s.Figure] = true
		if s.Caption == "" {
			t.Errorf("figure %s has no caption", s.Figure)
		}
	}
}

// Table 5: finetuned classifiers beat few-shot which beat the heuristic, and
// the best model lands in the high-accuracy band the paper reports (~0.89).
func TestTable5Shape(t *testing.T) {
	rows := Table5()
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Model] = r.Accuracy
		if r.F1 < 0 || r.F1 > 1 {
			t.Errorf("%s: f1 out of range: %v", r.Model, r.F1)
		}
	}
	if byName["Softmax+TG C2"] < 0.8 {
		t.Errorf("best classifier accuracy %.3f below the Table 5 band", byName["Softmax+TG C2"])
	}
	if byName["Softmax+TG C2"] < byName["FewShot-25"] {
		t.Error("finetuned should beat few-shot")
	}
	if byName["Softmax+TG C2"] < byName["Heuristic"] {
		t.Error("finetuned should beat the heuristic")
	}
	if byName["Softmax+TG C2"] < byName["Softmax C2"]-0.02 {
		t.Error("character tagging should not hurt")
	}
	if byName["Softmax C2"] < byName["Softmax C1"]-0.02 {
		t.Error("training on the larger Collection 2 should not hurt")
	}
}

// Figure 2: mean token-in-dictionary decreases monotonically with lower
// naturalness.
func TestFigure2Shape(t *testing.T) {
	rows := Figure2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].Mean > rows[1].Mean && rows[1].Mean > rows[2].Mean) {
		t.Errorf("token-in-dictionary should decrease with naturalness: %+v", rows)
	}
	if rows[0].Mean < 0.9 {
		t.Errorf("Regular identifiers should be nearly all in-dictionary: %.3f", rows[0].Mean)
	}
}

// Figure 3: the SNAILS collection is less natural than the Spider-like
// benchmark and closer to the SchemaPile-like real-world corpus.
func TestFigure3Shape(t *testing.T) {
	rows := Figure3()
	byName := map[string]CollectionRow{}
	for _, r := range rows {
		byName[r.Collection] = r
	}
	snails, spider, pile := byName["SNAILS"], byName["Spider-like"], byName["SchemaPile-like"]
	if snails.Combined >= spider.Combined {
		t.Errorf("SNAILS (%.3f) should be less natural than Spider (%.3f)", snails.Combined, spider.Combined)
	}
	// Alignment in the full proportion space (the Figure 3 comparison):
	// SNAILS must sit closer to the real-world corpus than Spider does.
	dist := func(a, b CollectionRow) float64 {
		dr, dl, de := a.Regular-b.Regular, a.Low-b.Low, a.Least-b.Least
		return math.Sqrt(dr*dr + dl*dl + de*de)
	}
	if dist(snails, pile) >= dist(spider, pile) {
		t.Errorf("SNAILS should align closer to SchemaPile: d(snails,pile)=%.3f d(spider,pile)=%.3f",
			dist(snails, pile), dist(spider, pile))
	}
}

// Section 2.2 scan statistics fall in the published bands.
func TestSection22Scan(t *testing.T) {
	scan := Section22Scan()
	if scan.Schemas == 0 {
		t.Fatal("empty scan")
	}
	if scan.LeastHeavyFraction < 0.15 || scan.LeastHeavyFraction > 0.5 {
		t.Errorf("least-heavy fraction %.3f outside band", scan.LeastHeavyFraction)
	}
	if scan.LowCombined == 0 || scan.LowCombinedMinor == 0 {
		t.Errorf("scan should find low-combined schemas: %+v", scan)
	}
	if scan.LowCombinedMinor > scan.LowCombined {
		t.Errorf("subset count exceeds superset: %+v", scan)
	}
}

// Figures 26-28: character counts increase with naturalness, TCR decreases.
func TestTokenFiguresShape(t *testing.T) {
	f26 := Figure26()
	// At threshold ~8 chars, Least should have much more mass than Regular.
	idx := 7
	if !(f26[2].CDF[idx] > f26[0].CDF[idx]) {
		t.Errorf("Least identifiers should be shorter: reg=%.3f least=%.3f",
			f26[0].CDF[idx], f26[2].CDF[idx])
	}
	f28 := Figure28()
	for i := 0; i < len(f28); i += 3 {
		reg, least := f28[i], f28[i+2]
		if reg.Box.Median >= least.Box.Median {
			t.Errorf("%s: TCR median should rise as naturalness falls: reg=%.3f least=%.3f",
				reg.Tokenizer, reg.Box.Median, least.Box.Median)
		}
	}
	if len(Figure27("gpt-bpe")) != 3 {
		t.Error("figure 27 should have one series per level")
	}
}

func TestTables(t *testing.T) {
	t2 := Table2()
	if len(t2) != 9 {
		t.Fatalf("table 2 rows = %d", len(t2))
	}
	totalQ := 0
	for _, r := range t2 {
		totalQ += r.Questions
	}
	if totalQ != 503 {
		t.Errorf("questions total %d, want 503", totalQ)
	}
	t3 := Table3()
	for _, r := range t3 {
		if r.Qs == 0 || r.Function == 0 || r.Where == 0 {
			t.Errorf("table 3 row %s implausible: %+v", r.DB, r)
		}
	}
	t4 := Table4()
	if len(t4) != 9 {
		t.Fatalf("table 4 modules = %d", len(t4))
	}
	for _, r := range t4 {
		if r.Tables == 0 || r.Columns == 0 {
			t.Errorf("module %s empty: %+v", r.Module, r)
		}
	}
}

func TestTable1Examples(t *testing.T) {
	ex := Table1(5)
	for _, l := range naturalness.Levels {
		if len(ex[l]) != 5 {
			t.Errorf("level %v examples = %d", l, len(ex[l]))
		}
	}
}

func TestFigure5MatchesPaperBand(t *testing.T) {
	want := map[string]float64{
		"ASIS": 0.77, "ATBI": 0.70, "CWO": 0.84, "KIS": 0.79, "NPFM": 0.70,
		"NTSB": 0.59, "NYSED": 0.68, "PILB": 0.75, "SBOD": 0.49,
	}
	for _, r := range Figure5() {
		if math.Abs(r.Combined-want[r.DB]) > 0.06 {
			t.Errorf("%s combined %.3f vs paper %.2f", r.DB, r.Combined, want[r.DB])
		}
		if s := r.Regular + r.Low + r.Least; math.Abs(s-1) > 1e-9 {
			t.Errorf("%s proportions sum to %v", r.DB, s)
		}
	}
}

func TestWeakSupervisionAgreementBand(t *testing.T) {
	res := WeakSupervisionAgreement()
	// Paper: 90.1% of pre-labels were accurate before curation.
	if res.Agreement < 0.82 || res.Agreement > 0.99 {
		t.Errorf("weak-supervision agreement %.3f outside the appendix band", res.Agreement)
	}
	if len(res.Disagreements) == 0 {
		t.Error("some identifiers should need curation")
	}
}

func TestSection6NamingPatterns(t *testing.T) {
	scan := Section6NamingPatterns()
	if scan.Identifiers == 0 {
		t.Fatal("empty scan")
	}
	wsFrac := float64(scan.Whitespace) / float64(scan.Identifiers)
	twFrac := float64(scan.TableWord) / float64(scan.Identifiers)
	// The paper: both patterns are uncommon (<1%) but present.
	if scan.Whitespace == 0 || wsFrac > 0.02 {
		t.Errorf("whitespace identifiers out of band: %d (%.3f%%)", scan.Whitespace, 100*wsFrac)
	}
	if scan.TableWord == 0 || twFrac > 0.02 {
		t.Errorf("table-word identifiers out of band: %d (%.3f%%)", scan.TableWord, 100*twFrac)
	}
}
