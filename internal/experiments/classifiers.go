package experiments

import (
	"sync"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/naturalness"
)

var (
	clfOnce sync.Once
	clfVal  *naturalness.SoftmaxClassifier
)

// TrainedClassifier returns the production naturalness classifier: the
// character-tagged softmax model trained on Collection 2 (the analogue of
// the paper's best CANINE-Seq+TG C2 / finetuned GPT-3.5 models).
func TrainedClassifier() *naturalness.SoftmaxClassifier {
	clfOnce.Do(func() {
		train, _, _ := naturalness.Split(datasets.Collection2(), 0.6, 0.2, 11)
		clfVal = naturalness.TrainSoftmax("Softmax+TG C2", train, true, naturalness.DefaultTrainConfig())
	})
	return clfVal
}

// Table5 reproduces the classifier comparison: heuristic scoring, few-shot
// prototypes, and finetuned (softmax) models trained on Collection 1 and
// Collection 2, with and without the character-tagging feature. All models
// are evaluated on the same held-out Collection 2 test split.
func Table5() []naturalness.Report {
	c1 := datasets.Collection1()
	c2 := datasets.Collection2()
	trainC1, _, _ := naturalness.Split(c1, 0.58, 0.21, 7)
	trainC2, _, testC2 := naturalness.Split(c2, 0.6, 0.2, 11)

	cfg := naturalness.DefaultTrainConfig()

	// Few-shot models see only a handful of examples, like the paper's
	// GPT-3.5/GPT-4 few-shot prompts (25 examples).
	fewShotSmall := trainC1
	if len(fewShotSmall) > 25 {
		fewShotSmall = fewShotSmall[:25]
	}
	fewShotLarge := trainC1
	if len(fewShotLarge) > 80 {
		fewShotLarge = fewShotLarge[:80]
	}

	models := []naturalness.Classifier{
		naturalness.NewHeuristicClassifier(),
		naturalness.NewFewShotClassifier("FewShot-25", fewShotSmall),
		naturalness.NewFewShotClassifier("FewShot-80", fewShotLarge),
		naturalness.TrainSoftmax("Softmax C1", trainC1, false, cfg),
		naturalness.TrainSoftmax("Softmax+TG C1", trainC1, true, cfg),
		naturalness.TrainSoftmax("Softmax C2", trainC2, false, cfg),
		naturalness.TrainSoftmax("Softmax+TG C2", trainC2, true, cfg),
	}
	var rows []naturalness.Report
	for _, m := range models {
		rows = append(rows, naturalness.Score(m, testC2))
	}
	return rows
}

// WeakSupervisionAgreement reproduces the appendix-B.3 statistic: a seed
// classifier trained on Collection 1 pre-labels Collection 2; the paper's
// Davinci pass agreed with the curated labels on 90.1% of identifiers.
func WeakSupervisionAgreement() naturalness.WeakSupervisionResult {
	trainC1, _, _ := naturalness.Split(datasets.Collection1(), 0.58, 0.21, 7)
	seed := naturalness.TrainSoftmax("seed C1", trainC1, true, naturalness.DefaultTrainConfig())
	return naturalness.WeakSupervise(seed, datasets.Collection2())
}
