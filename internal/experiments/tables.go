package experiments

import (
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/sqlparse"
)

// Table2Row is one database's schema statistics.
type Table2Row struct {
	DB        string
	Tables    int
	Columns   int
	Questions int
	Combined  float64
}

// Table2 reports the SNAILS schema statistics.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, b := range datasets.All() {
		rows = append(rows, Table2Row{
			DB:        b.Name,
			Tables:    len(b.Schema.Tables),
			Columns:   b.Schema.NumColumns(),
			Questions: len(Questions(b.Name)),
			Combined:  b.Schema.CombinedNaturalness(),
		})
	}
	return rows
}

// Table3Row is one database's gold-query clause-count row.
type Table3Row struct {
	DB       string
	Qs       int
	Top      int
	Function int
	Join     int
	CKJoin   int
	Exists   int
	Subquery int
	Where    int
	Negation int
	GroupBy  int
	OrderBy  int
	Having   int
}

// Table3 counts, per database, the gold queries containing each clause type.
func Table3() []Table3Row {
	var rows []Table3Row
	for _, b := range datasets.All() {
		row := Table3Row{DB: b.Name}
		for _, q := range Questions(b.Name) {
			sel, err := sqlparse.Parse(q.Gold)
			if err != nil {
				continue
			}
			f := sqlparse.CountClauses(sel)
			row.Qs++
			if f.Top {
				row.Top++
			}
			if f.Function {
				row.Function++
			}
			if f.Join {
				row.Join++
			}
			if f.CKJoin {
				row.CKJoin++
			}
			if f.Exists {
				row.Exists++
			}
			if f.Subquery {
				row.Subquery++
			}
			if f.Where {
				row.Where++
			}
			if f.Negation {
				row.Negation++
			}
			if f.GroupBy {
				row.GroupBy++
			}
			if f.OrderBy {
				row.OrderBy++
			}
			if f.Having {
				row.Having++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4Row is one SBOD module's statistics.
type Table4Row struct {
	Module    string
	Tables    int
	Columns   int
	Questions int
}

// Table4 reports the SBOD module segmentation.
func Table4() []Table4Row {
	b, ok := datasets.Get("SBOD")
	if !ok {
		return nil
	}
	qCount := map[string]int{}
	for _, q := range Questions("SBOD") {
		mods := map[string]struct{}{}
		for _, t := range q.Tables {
			mods[b.ModuleOf(t)] = struct{}{}
		}
		for m := range mods {
			qCount[m]++
		}
	}
	var rows []Table4Row
	for _, m := range b.ModuleNames() {
		row := Table4Row{Module: m, Questions: qCount[m]}
		for _, tn := range b.Modules[m] {
			st, _ := b.Schema.Table(tn)
			row.Tables++
			row.Columns += len(st.Columns)
		}
		rows = append(rows, row)
	}
	return rows
}
