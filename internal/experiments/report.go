package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/token"
)

// Report renders every reproduced table and figure as plain text in paper
// order. It is what `snailsbench` prints and what the bench harness samples.
func Report(w io.Writer) {
	WriteTable1(w)
	WriteFigure2(w)
	WriteFigure3(w)
	WriteSection22(w)
	WriteTable2(w)
	WriteTable3(w)
	WriteTable4(w)
	WriteFigure5(w)
	WriteTable5(w)
	WriteFigure8(w)
	WriteFigure9(w)
	WriteFigure10(w)
	WriteFigure11(w)
	WriteFigure12(w)
	WriteFigure13(w)
	WriteFigure26(w)
	WriteFigure27(w)
	WriteFigure28(w)
	WriteFigure30(w)
	WriteCorrelations(w)
	WriteFigures48to51(w)
	WriteAblations(w)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// WriteTable1 prints example identifiers per naturalness class.
func WriteTable1(w io.Writer) {
	header(w, "Table 1: example identifiers per naturalness level")
	ex := Table1(5)
	fmt.Fprintf(w, "%-28s %-28s %-28s\n", "Regular", "Low", "Least")
	for i := 0; i < 5; i++ {
		fmt.Fprintf(w, "%-28s %-28s %-28s\n",
			ex[naturalness.Regular][i], ex[naturalness.Low][i], ex[naturalness.Least][i])
	}
}

// WriteFigure2 prints mean token-in-dictionary by class.
func WriteFigure2(w io.Writer) {
	header(w, "Figure 2: mean token-in-dictionary by naturalness level")
	for _, r := range Figure2() {
		fmt.Fprintf(w, "%-8s %.3f (n=%d)\n", r.Level, r.Mean, r.N)
	}
}

// WriteFigure3 prints the collection naturalness comparison.
func WriteFigure3(w io.Writer) {
	header(w, "Figure 3: collection naturalness comparison")
	fmt.Fprintf(w, "%-16s %8s %8s %8s %9s %8s\n", "collection", "Regular", "Low", "Least", "combined", "n")
	for _, r := range Figure3() {
		fmt.Fprintf(w, "%-16s %8.3f %8.3f %8.3f %9.3f %8d\n",
			r.Collection, r.Regular, r.Low, r.Least, r.Combined, r.N)
	}
}

// WriteSection22 prints the SchemaPile scan statistics.
func WriteSection22(w io.Writer) {
	header(w, "Section 2.2: SchemaPile-like corpus scan")
	s := Section22Scan()
	fmt.Fprintf(w, "schemas scanned:                    %d\n", s.Schemas)
	fmt.Fprintf(w, "schemas with >=10%% Least:           %d (%.1f%%)\n", s.LeastHeavySchemas, 100*s.LeastHeavyFraction)
	fmt.Fprintf(w, "schemas with combined <= 0.7:       %d\n", s.LowCombined)
	fmt.Fprintf(w, "  of which Low+Least outnumber Reg: %d\n", s.LowCombinedMinor)
	np := Section6NamingPatterns()
	fmt.Fprintf(w, "section 6 naming patterns: %d of %d identifiers contain whitespace (%.2f%%), %d embed the word table (%.2f%%)\n",
		np.Whitespace, np.Identifiers, 100*float64(np.Whitespace)/float64(np.Identifiers),
		np.TableWord, 100*float64(np.TableWord)/float64(np.Identifiers))
}

// WriteTable2 prints schema statistics.
func WriteTable2(w io.Writer) {
	header(w, "Table 2: SNAILS real-world database schemas")
	fmt.Fprintf(w, "%-8s %8s %9s %10s %9s\n", "db", "tables", "columns", "questions", "combined")
	for _, r := range Table2() {
		fmt.Fprintf(w, "%-8s %8d %9d %10d %9.2f\n", r.DB, r.Tables, r.Columns, r.Questions, r.Combined)
	}
}

// WriteTable3 prints gold-query clause counts.
func WriteTable3(w io.Writer) {
	header(w, "Table 3: gold query clause counts")
	fmt.Fprintf(w, "%-8s %4s %4s %5s %5s %7s %7s %9s %6s %9s %8s %8s %7s\n",
		"db", "qs", "top", "func", "join", "ckjoin", "exists", "subquery", "where", "negation", "groupby", "orderby", "having")
	for _, r := range Table3() {
		fmt.Fprintf(w, "%-8s %4d %4d %5d %5d %7d %7d %9d %6d %9d %8d %8d %7d\n",
			r.DB, r.Qs, r.Top, r.Function, r.Join, r.CKJoin, r.Exists, r.Subquery,
			r.Where, r.Negation, r.GroupBy, r.OrderBy, r.Having)
	}
}

// WriteTable4 prints SBOD module statistics.
func WriteTable4(w io.Writer) {
	header(w, "Table 4: SBOD module schemas")
	fmt.Fprintf(w, "%-22s %8s %9s %10s\n", "module", "tables", "columns", "questions")
	for _, r := range Table4() {
		fmt.Fprintf(w, "%-22s %8d %9d %10d\n", r.Module, r.Tables, r.Columns, r.Questions)
	}
}

// WriteFigure5 prints native schema naturalness proportions.
func WriteFigure5(w io.Writer) {
	header(w, "Figure 5: native schema naturalness proportions")
	fmt.Fprintf(w, "%-8s %8s %8s %8s %9s\n", "db", "Regular", "Low", "Least", "combined")
	for _, r := range Figure5() {
		fmt.Fprintf(w, "%-8s %8.2f %8.2f %8.2f %9.2f\n", r.DB, r.Regular, r.Low, r.Least, r.Combined)
	}
}

// WriteTable5 prints the classifier comparison.
func WriteTable5(w io.Writer) {
	header(w, "Table 5: naturalness classifier comparison")
	fmt.Fprintf(w, "%-16s %9s %10s %8s %8s\n", "model", "accuracy", "precision", "recall", "f1")
	for _, r := range Table5() {
		fmt.Fprintf(w, "%-16s %9.3f %10.3f %8.3f %8.3f\n", r.Model, r.Accuracy, r.Precision, r.Recall, r.F1)
	}
	ws := WeakSupervisionAgreement()
	fmt.Fprintf(w, "weak supervision (appendix B.3): seed pre-label agreement %.1f%% over %d identifiers (%d curated)\n",
		100*ws.Agreement, len(ws.Labeled), len(ws.Disagreements))
}

// WriteFigure8 prints execution accuracy by model and level.
func WriteFigure8(w io.Writer) {
	header(w, "Figure 8: execution accuracy by model and naturalness level")
	writeModelVariantGrid(w, "accuracy", func(m string, v schema.Variant) float64 {
		for _, r := range Figure8() {
			if r.Model == m && r.Variant == v {
				return r.Accuracy
			}
		}
		return 0
	})
}

func writeModelVariantGrid(w io.Writer, metric string, get func(string, schema.Variant) float64) {
	fmt.Fprintf(w, "%-24s", "model \\ "+metric)
	for _, v := range schema.Variants {
		fmt.Fprintf(w, " %8s", v)
	}
	fmt.Fprintln(w)
	for _, m := range ModelNames() {
		fmt.Fprintf(w, "%-24s", m)
		for _, v := range schema.Variants {
			fmt.Fprintf(w, " %8.3f", get(m, v))
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure9 prints identifier recall by model and identifier level.
func WriteFigure9(w io.Writer) {
	header(w, "Figure 9: native IdentifierRecall by model and identifier level (±95% CI)")
	rows := Figure9()
	fmt.Fprintf(w, "%-24s %-8s %8s %8s %6s\n", "model", "level", "recall", "ci", "n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-8s %8.3f %8.3f %6d\n", r.Model, r.Level, r.Recall, r.CI, r.N)
	}
}

// WriteFigure10 prints query-level linking scores, using the paper's chart
// labels (zero-shot methods are suffixed ZS, e.g. "Ph-CdLlm2-ZS").
func WriteFigure10(w io.Writer) {
	header(w, "Figure 10 (+appendix F): QueryRecall / Precision / F1 by model and level")
	display := map[string]string{}
	for _, p := range llm.Profiles() {
		display[p.Name] = p.Display
	}
	fmt.Fprintf(w, "%-24s %-8s %8s %10s %8s %6s %5s\n", "model", "variant", "recall", "precision", "f1", "n", "excl")
	for _, r := range Figure10() {
		label := display[r.Model]
		if label == "" {
			label = r.Model
		}
		fmt.Fprintf(w, "%-24s %-8s %8.3f %10.3f %8.3f %6d %5d\n",
			label, r.Variant, r.Recall, r.Precision, r.F1, r.N, r.Excluded)
	}
}

// WriteFigure11 prints the drill-down view for the paper's three showcase
// databases.
func WriteFigure11(w io.Writer) {
	header(w, "Figure 11: QueryRecall drill-down (NTSB / PILB / SBOD)")
	fmt.Fprintf(w, "%-6s %-24s %-8s %8s %8s\n", "db", "model", "variant", "recall", "median")
	for _, r := range Figure11("NTSB", "PILB", "SBOD") {
		fmt.Fprintf(w, "%-6s %-24s %-8s %8.3f %8.3f\n", r.DB, r.Model, r.Variant, r.Recall, r.Box.Median)
	}
}

// WriteFigure12 prints schema-subsetting metrics.
func WriteFigure12(w io.Writer) {
	header(w, "Figure 12: schema subsetting (recall / precision / f1)")
	fmt.Fprintf(w, "%-24s %-8s %8s %10s %8s %6s\n", "model", "variant", "recall", "precision", "f1", "n")
	for _, r := range Figure12() {
		fmt.Fprintf(w, "%-24s %-8s %8.3f %10.3f %8.3f %6d\n",
			r.Model, r.Variant, r.Recall, r.Precision, r.F1, r.N)
	}
}

// WriteFigure13 prints the Spider-modified experiment.
func WriteFigure13(w io.Writer) {
	header(w, "Figure 13: Spider-like dev set renamed with SNAILS artifacts")
	fmt.Fprintf(w, "%-24s %-8s %8s %9s %6s\n", "model", "variant", "recall", "accuracy", "n")
	for _, r := range Figure13() {
		fmt.Fprintf(w, "%-24s %-8s %8.3f %9.3f %6d\n", r.Model, r.Variant, r.Recall, r.Accuracy, r.N)
	}
}

func writeCDF(w io.Writer, series []CDFSeries, pick []float64) {
	fmt.Fprintf(w, "%-8s", "level")
	for _, t := range pick {
		fmt.Fprintf(w, " %7.0f", t)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-8s", s.Level)
		for _, t := range pick {
			// find threshold index
			idx := 0
			for i, th := range s.Thresholds {
				if th <= t {
					idx = i
				}
			}
			fmt.Fprintf(w, " %7.2f", s.CDF[idx])
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure26 prints the character-count CDF.
func WriteFigure26(w io.Writer) {
	header(w, "Figure 26: identifier character-count CDF by level (chars <= t)")
	writeCDF(w, Figure26(), []float64{4, 8, 12, 16, 20, 28, 40})
}

// WriteFigure27 prints the token-count CDF per tokenizer.
func WriteFigure27(w io.Writer) {
	for _, model := range token.ModelNames() {
		header(w, "Figure 27: token-count CDF by level — "+model)
		writeCDF(w, Figure27(model), []float64{1, 2, 3, 4, 6, 8, 12})
	}
}

// WriteFigure28 prints the TCR distribution summary.
func WriteFigure28(w io.Writer) {
	header(w, "Figure 28: token-to-character ratio by level and tokenizer")
	fmt.Fprintf(w, "%-16s %-8s %8s %8s %8s\n", "tokenizer", "level", "q1", "median", "q3")
	for _, r := range Figure28() {
		fmt.Fprintf(w, "%-16s %-8s %8.3f %8.3f %8.3f\n",
			r.Tokenizer, r.Level, r.Box.Q1, r.Box.Median, r.Box.Q3)
	}
}

// WriteFigure30 prints the per-database accuracy grid.
func WriteFigure30(w io.Writer) {
	header(w, "Figure 30: execution accuracy by database, model and level")
	rows := Figure30()
	fmt.Fprintf(w, "%-24s %-8s", "model", "variant")
	for _, db := range datasets.Names {
		fmt.Fprintf(w, " %6s", db)
	}
	fmt.Fprintln(w)
	for _, m := range ModelNames() {
		for _, v := range schema.Variants {
			fmt.Fprintf(w, "%-24s %-8s", m, v)
			for _, db := range datasets.Names {
				for _, r := range rows {
					if r.DB == db && r.Model == m && r.Variant == v {
						fmt.Fprintf(w, " %6.2f", r.Accuracy)
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteFigures48to51 prints the appendix database-level box-and-whisker
// summaries of schema-linking performance (F1 in Figures 48-49, Recall in
// Figures 50-51) for every database, model and naturalness level.
func WriteFigures48to51(w io.Writer) {
	header(w, "Figures 48-51: database-level linking distributions (F1 and Recall box stats)")
	fmt.Fprintf(w, "%-6s %-24s %-8s %23s %23s\n", "db", "model", "variant", "f1 (q1/med/q3)", "recall (q1/med/q3)")
	for _, r := range Figure11() {
		fmt.Fprintf(w, "%-6s %-24s %-8s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
			r.DB, r.Model, r.Variant,
			r.BoxF1.Q1, r.BoxF1.Median, r.BoxF1.Q3,
			r.Box.Q1, r.Box.Median, r.Box.Q3)
	}
}

// WriteCorrelations prints every appendix Kendall-Tau table.
func WriteCorrelations(w io.Writer) {
	for _, spec := range Catalog() {
		header(w, fmt.Sprintf("Figure %s: Kendall-Tau — %s", spec.Figure, spec.Caption))
		fmt.Fprintf(w, "%-24s %12s %12s %6s\n", "model", "kendall-tau", "p-value", "n")
		for _, r := range Correlate(spec.F, spec.O, spec.Scope) {
			fmt.Fprintf(w, "%-24s %12.4f %12.2e %6d\n", r.Model, r.Tau, r.P, r.N)
		}
	}
}

// Summary returns a compact one-page digest of the headline results, used by
// the quickstart example and the CLI.
func Summary() string {
	var b strings.Builder
	b.WriteString("SNAILS reproduction — headline results\n")
	b.WriteString("execution accuracy (all 503 questions):\n")
	acc := Figure8()
	for _, m := range ModelNames() {
		fmt.Fprintf(&b, "  %-24s", m)
		for _, v := range schema.Variants {
			for _, r := range acc {
				if r.Model == m && r.Variant == v {
					fmt.Fprintf(&b, " %s=%.2f", v, r.Accuracy)
				}
			}
		}
		b.WriteByte('\n')
	}
	taus := Correlate(FeatCombined, OutExecAccuracy, ScopeAll)
	sort.Slice(taus, func(i, j int) bool { return taus[i].Tau > taus[j].Tau })
	b.WriteString("combined naturalness vs execution accuracy (Kendall tau):\n")
	for _, r := range taus {
		fmt.Fprintf(&b, "  %-24s tau=%.3f p=%.1e\n", r.Model, r.Tau, r.P)
	}
	return b.String()
}
