// Package experiments runs the SNAILS evaluation grid — 6 models x 4 schema
// variants x 503 questions — and aggregates every table and figure of the
// paper's evaluation section. The full sweep is deterministic and cached per
// process; grid cells fan out across a bounded worker pool with output
// ordering identical to the serial evaluation.
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/evalx"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/memo"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/token"
	"github.com/snails-bench/snails/internal/trace"
	"github.com/snails-bench/snails/internal/workflow"
)

// Cell is one observation of the benchmark grid.
type Cell struct {
	// Model and Backend both carry the decode identity. They are equal —
	// Backend is the interface-era name; Model remains because every
	// report aggregation keys off it.
	Model      string
	Backend    string
	DB         string
	Variant    schema.Variant
	QuestionID int

	// Execution accuracy.
	ExecCorrect bool
	// Linking (valid only when ParseOK).
	ParseOK bool
	Link    evalx.LinkScores
	// GoldIDs / PredIDs are native identifier sets.
	GoldIDs, PredIDs sqlparse.IdentifierSet
	// Subset holds schema-subsetting scores for filter workflows.
	Subset *evalx.SubsetScores

	// Query naturalness features (of the gold identifiers as rendered in
	// the prompt variant).
	Combined  float64
	RegFrac   float64
	LowFrac   float64
	LeastFrac float64
	// TCR is the mean token-to-character ratio of those identifiers under
	// the model's tokenizer.
	TCR float64
}

// Stats records how a sweep executed. It describes the run, not the results:
// two sweeps with different Stats but equal Cells are the same experiment.
type Stats struct {
	Cells       int
	Workers     int
	WallClock   time.Duration
	CellsPerSec float64

	// Stages is the per-stage latency breakdown over every cell, recorded
	// through the same trace spans the serving daemon uses. Cache hits in the
	// gold/pred memos do no work and record no span, so the histograms
	// describe compute actually performed, not logical stage counts.
	Stages []trace.StageSnapshot
}

// Sweep is the full grid plus lookup indexes.
type Sweep struct {
	Cells []Cell
	// Tally maps (model) -> identifier-level recall accumulator over the
	// Native-variant runs (Figure 9).
	Tally map[string]*evalx.IdentifierTally
	// Stats describes the execution (worker count, wall clock).
	Stats Stats
}

// Options configures sweep execution. The zero value runs the full
// synthetic family over every variant with the process-default worker
// count.
type Options struct {
	// Workers is the number of concurrent grid workers. 0 means the
	// process default (SetDefaultWorkers, else GOMAXPROCS); 1 runs the
	// classic serial loop. Results are identical at every setting for
	// deterministic backends.
	Workers int

	// Backends is the decode axis. Empty means one synthetic backend per
	// llm profile — the classic grid. Determinism guarantees (parallel
	// output bit-identical to serial) hold per backend only when its
	// capabilities claim it.
	Backends []backend.Backend

	// Variants is the schema-naturalness axis. Empty means all four.
	Variants []schema.Variant

	// MaxQuestionsPerDB keeps only the first N questions per database
	// (0 = all). The grid enumeration is deterministic, so this is a
	// stable prefix.
	MaxQuestionsPerDB int

	// MaxCells caps the total grid size (0 = unbounded); enumeration
	// stops before the job that would exceed it.
	MaxCells int
}

// defaultWorkers holds the process-wide worker override; 0 defers to
// GOMAXPROCS. Set from the -parallel CLI flags.
var defaultWorkers atomic.Int64

// SetDefaultWorkers overrides the worker count used by sweeps that do not
// specify one. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the worker count a zero-Options sweep will use.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

var (
	sweepOnce sync.Once
	sweepVal  *Sweep

	questionsOnce sync.Once
	questionsByDB map[string][]nlq.Question

	// goldCache memoizes gold query results across the whole process: the
	// same gold runs for every (model, variant) pair and for overlapping
	// experiment sweeps.
	goldCache = memo.New[*sqldb.Result]()

	// predCache memoizes predicted-query parse/analyze/execute outcomes per
	// (database, native SQL). Different models and variants frequently emit
	// the same SQL for a question — most cells on natural schemas produce
	// the correct query verbatim — so the grid re-executes each distinct
	// query once instead of once per cell. Cached results and identifier
	// sets are shared read-only across cells.
	predCache = memo.NewBounded[*predExec](1 << 16)
)

// predExec is the memoized outcome of handling one predicted SQL string
// against one database. Fields mirror the stage gates of runCell: parse,
// identifier analysis, then execution.
type predExec struct {
	parseOK bool
	ids     sqlparse.IdentifierSet
	execOK  bool
	res     *sqldb.Result
}

// predExecution parses, analyzes, and executes a predicted query, memoized.
// The execution span is recorded only on first compute; cache hits do no SQL
// work and leave no trace (matching the serving daemon's convention).
func predExecution(ctx context.Context, b *datasets.Built, sql string) *predExec {
	return predCache.GetOrCompute(b.Name+"\x00"+sql, func() *predExec {
		pe := &predExec{}
		sel, err := sqlparse.Parse(sql)
		if err != nil {
			return pe
		}
		pe.parseOK = true
		pe.ids = sqlparse.Analyze(sel).All()
		if res, execErr := sqlexec.ExecuteCtx(ctx, b.Instance, sel); execErr == nil {
			pe.execOK = true
			pe.res = res
		}
		return pe
	})
}

// Questions returns the cached Artifact 6 question set for a database.
func Questions(db string) []nlq.Question {
	questionsOnce.Do(func() {
		questionsByDB = map[string][]nlq.Question{}
		for _, b := range datasets.All() {
			questionsByDB[b.Name] = nlq.Generate(b)
		}
	})
	return questionsByDB[db]
}

func goldKey(db string, qid int) string { return fmt.Sprintf("%s#%d", db, qid) }

// goldResult executes (once) and caches a gold query's result. Concurrent
// callers may race to execute the same gold; both executions produce the
// identical deterministic result, so either may be cached.
func goldResult(b *datasets.Built, q nlq.Question) *sqldb.Result {
	return goldCache.GetOrCompute(goldKey(b.Name, q.ID), func() *sqldb.Result {
		res, err := sqlexec.ExecuteSQL(b.Instance, q.Gold)
		if err != nil {
			panic(fmt.Sprintf("experiments: gold query failed (%s q%d): %v", b.Name, q.ID, err))
		}
		return res
	})
}

// Run returns the full cached sweep over the SNAILS collection.
func Run() *Sweep {
	sweepOnce.Do(func() { sweepVal = RunSweep(datasets.All(), Options{}) })
	return sweepVal
}

// job is one unit of parallel work: a (database, question) pair owning a
// contiguous stride of len(models)*len(variants) cells starting at base.
type job struct {
	b    *datasets.Built
	q    nlq.Question
	base int
}

// RunSweep executes the grid over the given databases. Cells are laid out in
// the fixed grid order (database, question, model, variant) regardless of the
// worker count: each (db, question) job writes its stride of the preallocated
// cell slice by index, and the identifier tally is accumulated in a serial
// pass afterwards, so parallel output is bit-identical to serial.
func RunSweep(dbs []*datasets.Built, opts Options) *Sweep {
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	start := time.Now()

	backends := opts.Backends
	if len(backends) == 0 {
		backends = make([]backend.Backend, 0, 6)
		for _, p := range llm.Profiles() {
			backends = append(backends, backend.NewSynthetic(p))
		}
	}
	variants := opts.Variants
	if len(variants) == 0 {
		variants = schema.Variants
	}

	s := &Sweep{Tally: map[string]*evalx.IdentifierTally{}}
	for _, be := range backends {
		s.Tally[be.Name()] = evalx.NewIdentifierTally()
	}
	stride := len(backends) * len(variants)

	// Enumerate jobs serially: question generation touches package-level
	// caches and fixes the grid layout.
	var jobs []job
	total := 0
	for _, b := range dbs {
		qs := questionsOf(b)
		if opts.MaxQuestionsPerDB > 0 && len(qs) > opts.MaxQuestionsPerDB {
			qs = qs[:opts.MaxQuestionsPerDB]
		}
		for _, q := range qs {
			if opts.MaxCells > 0 && total+stride > opts.MaxCells {
				break
			}
			jobs = append(jobs, job{b: b, q: q, base: total})
			total += stride
		}
	}
	s.Cells = make([]Cell, total)

	// Histogram-only collector (no ring): the sweep records the same stage
	// spans as the serving path, aggregated into the Stats breakdown.
	coll := trace.NewCollector(0)

	if workers == 1 {
		for _, j := range jobs {
			runJob(s.Cells, j, backends, variants, coll)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					runJob(s.Cells, jobs[i], backends, variants, coll)
				}
			}()
		}
		wg.Wait()
	}

	// Identifier tallies mutate shared maps; accumulate serially in grid
	// order after the fan-out.
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Variant == schema.VariantNative && c.ParseOK {
			s.Tally[c.Backend].Observe(c.GoldIDs, c.PredIDs)
		}
	}

	wall := time.Since(start)
	s.Stats = Stats{Cells: total, Workers: workers, WallClock: wall, Stages: coll.Stages()}
	if secs := wall.Seconds(); secs > 0 {
		s.Stats.CellsPerSec = float64(total) / secs
	}
	return s
}

// runJob evaluates one (database, question) across every backend and
// variant, writing cells into the shared slice at the job's reserved
// stride. Cells in distinct jobs never alias, so no locking is needed.
func runJob(cells []Cell, j job, backends []backend.Backend, variants []schema.Variant, coll *trace.Collector) {
	b, q := j.b, j.q
	goldSel, err := sqlparse.Parse(q.Gold)
	if err != nil {
		panic(fmt.Sprintf("experiments: unparseable gold (%s q%d): %v", b.Name, q.ID, err))
	}
	goldIDs := sqlparse.Analyze(goldSel).All()
	gold := goldResult(b, q)

	// Naturalness features depend only on (variant, tokenizer family), not
	// the model itself: compute each combination once per question instead
	// of once per cell.
	type featKey struct {
		v      schema.Variant
		family string
	}
	feats := make(map[featKey]natFeatures, 8)
	featsOf := func(v schema.Variant, family string) natFeatures {
		k := featKey{v, family}
		if f, ok := feats[k]; ok {
			return f
		}
		f := naturalnessFeatures(b, goldIDs, family, v)
		feats[k] = f
		return f
	}

	// Batch-level prompt sharing: the prompt (and its interned schema
	// handle) depends only on the variant within a job, so render and parse
	// once and let all six models decode against the same handle — the same
	// sharing the serving micro-batcher does per (db, variant) batch.
	type sharedPrompt struct {
		prompt string
		tables []string
		ps     *llm.PromptSchema
	}
	prompts := make([]sharedPrompt, len(variants))
	for vi, v := range variants {
		tr := coll.Start("sweep")
		tr.SetRequest(b.Name, v.String(), q.ID)
		t0 := tr.Now()
		prompt, tables := workflow.PromptFor(b, q, v)
		ps := llm.PromptSchemaOf(prompt)
		tr.Span(trace.StagePrompt, t0)
		coll.Finish(tr)
		prompts[vi] = sharedPrompt{prompt: prompt, tables: tables, ps: ps}
	}

	idx := j.base
	for _, be := range backends {
		family := tokenizerFor(be.Name())
		for vi, v := range variants {
			tr := coll.Start("sweep")
			tr.SetRequest(b.Name, v.String(), q.ID)
			sp := &prompts[vi]
			cell := runCell(trace.NewContext(context.Background(), tr), b, q, goldIDs, gold, be, v, sp.prompt, sp.tables, sp.ps)
			coll.Finish(tr)
			f := featsOf(v, family)
			cell.Combined = f.combined
			cell.RegFrac, cell.LowFrac, cell.LeastFrac = f.regFrac, f.lowFrac, f.leastFrac
			cell.TCR = f.tcr
			cells[idx] = cell
			idx++
		}
	}
}

// questionsOf returns cached questions for SNAILS databases and generates
// fresh ones for foreign collections (Spider).
func questionsOf(b *datasets.Built) []nlq.Question {
	if qs := Questions(b.Name); qs != nil {
		return qs
	}
	return nlq.Generate(b)
}

func runCell(ctx context.Context, b *datasets.Built, q nlq.Question, goldIDs sqlparse.IdentifierSet,
	gold *sqldb.Result, be backend.Backend, v schema.Variant, prompt string, tables []string, ps *llm.PromptSchema) Cell {

	out := workflow.RunWithSchemaCtx(ctx, workflow.RunInput{B: b, Q: q, Variant: v, Backend: be}, prompt, tables, ps)
	cell := Cell{
		Model:      be.Name(),
		Backend:    be.Name(),
		DB:         b.Name,
		Variant:    v,
		QuestionID: q.ID,
		GoldIDs:    goldIDs,
		ParseOK:    out.ParseOK,
	}

	if out.ParseOK {
		pe := predExecution(ctx, b, out.NativeSQL)
		if pe.parseOK {
			cell.PredIDs = pe.ids
			cell.Link = evalx.QueryLinking(goldIDs, cell.PredIDs)
			if pe.execOK {
				tr := trace.FromContext(ctx)
				t0 := tr.Now()
				outcome := evalx.CompareResults(gold, pe.res)
				if outcome == evalx.MatchYes && q.Ordered {
					outcome = evalx.OrderedCompare(gold, pe.res)
				}
				tr.Span(trace.StageMatch, t0)
				cell.ExecCorrect = outcome == evalx.MatchYes
			}
		}
	}

	if outcome := countOutcome(&cell); outcome != outcomeMatch {
		slog.DebugContext(ctx, "sweep cell missed",
			slog.String("model", be.Name()),
			slog.String("db", b.Name),
			slog.String("variant", v.String()),
			slog.Int("question_id", q.ID),
			slog.String("outcome", Outcomes[outcome]))
	}

	if out.FilteredNative != nil {
		goldTables := sqlparse.IdentifierSet{}
		for _, t := range q.Tables {
			goldTables.Add(t)
		}
		selected := sqlparse.IdentifierSet{}
		for _, t := range out.FilteredNative {
			selected.Add(t)
		}
		ss := evalx.SchemaSubsetting(goldTables, selected)
		cell.Subset = &ss
	}
	return cell
}

// natFeatures are the query-level naturalness measures the correlation
// tables use, hoisted out of runCell because they are model-independent (up
// to tokenizer family).
type natFeatures struct {
	combined, regFrac, lowFrac, leastFrac, tcr float64
}

// naturalnessFeatures derives the levels of the gold identifiers as the
// prompt variant renders them, and their tokenizer TCR.
func naturalnessFeatures(b *datasets.Built, goldIDs sqlparse.IdentifierSet, family string, v schema.Variant) natFeatures {
	var levels []naturalness.Level
	tok := token.ForModel(family)
	var tcrSum float64
	n := 0
	for _, id := range goldIDs.Sorted() {
		var lvl naturalness.Level
		if l, ok := v.Level(); ok {
			lvl = l
		} else if nl, ok := b.Schema.IdentifierLevel(id); ok {
			lvl = nl
		} else {
			continue
		}
		levels = append(levels, lvl)
		rendered := b.Schema.RenameVariant(id, v)
		tcrSum += tok.TCR(rendered)
		n++
	}
	var f natFeatures
	f.combined = naturalness.CombinedOf(levels)
	f.regFrac, f.lowFrac, f.leastFrac = naturalness.Proportions(levels)
	if n > 0 {
		f.tcr = tcrSum / float64(n)
	}
	return f
}

// tokenizerFor maps a model profile to its tokenizer family.
func tokenizerFor(model string) string {
	switch model {
	case "Phind-CodeLlama-34B-v2", "CodeS":
		return token.ModelCodeLlama
	default:
		return token.ModelGPT
	}
}

// Filter returns the cells matching the predicate.
func (s *Sweep) Filter(keep func(*Cell) bool) []Cell {
	n := 0
	for i := range s.Cells {
		if keep(&s.Cells[i]) {
			n++
		}
	}
	out := make([]Cell, 0, n)
	for i := range s.Cells {
		if keep(&s.Cells[i]) {
			out = append(out, s.Cells[i])
		}
	}
	return out
}

// ModelNames returns the evaluated model names in reporting order.
func ModelNames() []string {
	out := make([]string, 0, 6)
	for _, p := range llm.Profiles() {
		out = append(out, p.Name)
	}
	return out
}
