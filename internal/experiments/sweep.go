// Package experiments runs the SNAILS evaluation grid — 6 models x 4 schema
// variants x 503 questions — and aggregates every table and figure of the
// paper's evaluation section. The full sweep is deterministic and cached per
// process.
package experiments

import (
	"fmt"
	"sync"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/evalx"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/token"
	"github.com/snails-bench/snails/internal/workflow"
)

// Cell is one observation of the benchmark grid.
type Cell struct {
	Model      string
	DB         string
	Variant    schema.Variant
	QuestionID int

	// Execution accuracy.
	ExecCorrect bool
	// Linking (valid only when ParseOK).
	ParseOK bool
	Link    evalx.LinkScores
	// GoldIDs / PredIDs are native identifier sets.
	GoldIDs, PredIDs sqlparse.IdentifierSet
	// Subset holds schema-subsetting scores for filter workflows.
	Subset *evalx.SubsetScores

	// Query naturalness features (of the gold identifiers as rendered in
	// the prompt variant).
	Combined  float64
	RegFrac   float64
	LowFrac   float64
	LeastFrac float64
	// TCR is the mean token-to-character ratio of those identifiers under
	// the model's tokenizer.
	TCR float64
}

// Sweep is the full grid plus lookup indexes.
type Sweep struct {
	Cells []Cell
	// Tally maps (model) -> identifier-level recall accumulator over the
	// Native-variant runs (Figure 9).
	Tally map[string]*evalx.IdentifierTally
}

var (
	sweepOnce sync.Once
	sweepVal  *Sweep

	questionsOnce sync.Once
	questionsByDB map[string][]nlq.Question

	goldOnce sync.Once
	goldRes  map[string]*sqldb.Result
)

// Questions returns the cached Artifact 6 question set for a database.
func Questions(db string) []nlq.Question {
	questionsOnce.Do(func() {
		questionsByDB = map[string][]nlq.Question{}
		for _, b := range datasets.All() {
			questionsByDB[b.Name] = nlq.Generate(b)
		}
	})
	return questionsByDB[db]
}

func goldKey(db string, qid int) string { return fmt.Sprintf("%s#%d", db, qid) }

// goldResult executes (once) and caches a gold query's result.
func goldResult(b *datasets.Built, q nlq.Question) *sqldb.Result {
	goldOnce.Do(func() { goldRes = map[string]*sqldb.Result{} })
	key := goldKey(b.Name, q.ID)
	if r, ok := goldRes[key]; ok {
		return r
	}
	res, err := sqlexec.ExecuteSQL(b.Instance, q.Gold)
	if err != nil {
		panic(fmt.Sprintf("experiments: gold query failed (%s q%d): %v", b.Name, q.ID, err))
	}
	goldRes[key] = res
	return res
}

// Run returns the full cached sweep over the SNAILS collection.
func Run() *Sweep {
	sweepOnce.Do(func() { sweepVal = runSweep(datasets.All()) })
	return sweepVal
}

// runSweep executes the grid over the given databases (exported indirectly
// for the Spider-modified experiment, which sweeps a different collection).
func runSweep(dbs []*datasets.Built) *Sweep {
	s := &Sweep{Tally: map[string]*evalx.IdentifierTally{}}
	models := make([]*llm.Model, 0, 6)
	for _, p := range llm.Profiles() {
		models = append(models, llm.New(p))
		s.Tally[p.Name] = evalx.NewIdentifierTally()
	}
	for _, b := range dbs {
		qs := questionsOf(b)
		for _, q := range qs {
			goldSel, err := sqlparse.Parse(q.Gold)
			if err != nil {
				panic(fmt.Sprintf("experiments: unparseable gold (%s q%d): %v", b.Name, q.ID, err))
			}
			goldIDs := sqlparse.Analyze(goldSel).All()
			gold := goldResult(b, q)
			for _, m := range models {
				for _, v := range schema.Variants {
					cell := runCell(b, q, goldIDs, gold, m, v)
					if v == schema.VariantNative && cell.ParseOK {
						s.Tally[m.Profile.Name].Observe(cell.GoldIDs, cell.PredIDs)
					}
					s.Cells = append(s.Cells, cell)
				}
			}
		}
	}
	return s
}

// questionsOf returns cached questions for SNAILS databases and generates
// fresh ones for foreign collections (Spider).
func questionsOf(b *datasets.Built) []nlq.Question {
	if qs := Questions(b.Name); qs != nil {
		return qs
	}
	return nlq.Generate(b)
}

func runCell(b *datasets.Built, q nlq.Question, goldIDs sqlparse.IdentifierSet,
	gold *sqldb.Result, m *llm.Model, v schema.Variant) Cell {

	out := workflow.Run(workflow.RunInput{B: b, Q: q, Variant: v, Model: m})
	cell := Cell{
		Model:      m.Profile.Name,
		DB:         b.Name,
		Variant:    v,
		QuestionID: q.ID,
		GoldIDs:    goldIDs,
		ParseOK:    out.ParseOK,
	}
	fillNaturalnessFeatures(&cell, b, goldIDs, m, v)

	if out.ParseOK {
		predSel, err := sqlparse.Parse(out.NativeSQL)
		if err == nil {
			cell.PredIDs = sqlparse.Analyze(predSel).All()
			cell.Link = evalx.QueryLinking(goldIDs, cell.PredIDs)
			res, execErr := sqlexec.Execute(b.Instance, predSel)
			if execErr == nil {
				outcome := evalx.CompareResults(gold, res)
				if outcome == evalx.MatchYes && q.Ordered {
					outcome = evalx.OrderedCompare(gold, res)
				}
				cell.ExecCorrect = outcome == evalx.MatchYes
			}
		}
	}

	if out.FilteredNative != nil {
		goldTables := sqlparse.IdentifierSet{}
		for _, t := range q.Tables {
			goldTables.Add(t)
		}
		selected := sqlparse.IdentifierSet{}
		for _, t := range out.FilteredNative {
			selected.Add(t)
		}
		ss := evalx.SchemaSubsetting(goldTables, selected)
		cell.Subset = &ss
	}
	return cell
}

// fillNaturalnessFeatures derives the query-level naturalness measures the
// correlation tables use: the levels of the gold identifiers as the prompt
// variant renders them, and their tokenizer TCR.
func fillNaturalnessFeatures(cell *Cell, b *datasets.Built, goldIDs sqlparse.IdentifierSet, m *llm.Model, v schema.Variant) {
	var levels []naturalness.Level
	tok := token.ForModel(tokenizerFor(m.Profile.Name))
	var tcrSum float64
	n := 0
	for _, id := range goldIDs.Sorted() {
		var lvl naturalness.Level
		if l, ok := v.Level(); ok {
			lvl = l
		} else if nl, ok := b.Schema.IdentifierLevel(id); ok {
			lvl = nl
		} else {
			continue
		}
		levels = append(levels, lvl)
		rendered := b.Schema.RenameVariant(id, v)
		tcrSum += tok.TCR(rendered)
		n++
	}
	cell.Combined = naturalness.CombinedOf(levels)
	cell.RegFrac, cell.LowFrac, cell.LeastFrac = naturalness.Proportions(levels)
	if n > 0 {
		cell.TCR = tcrSum / float64(n)
	}
}

// tokenizerFor maps a model profile to its tokenizer family.
func tokenizerFor(model string) string {
	switch model {
	case "Phind-CodeLlama-34B-v2", "CodeS":
		return token.ModelCodeLlama
	default:
		return token.ModelGPT
	}
}

// Filter returns the cells matching the predicate.
func (s *Sweep) Filter(keep func(*Cell) bool) []Cell {
	var out []Cell
	for i := range s.Cells {
		if keep(&s.Cells[i]) {
			out = append(out, s.Cells[i])
		}
	}
	return out
}

// ModelNames returns the evaluated model names in reporting order.
func ModelNames() []string {
	out := make([]string, 0, 6)
	for _, p := range llm.Profiles() {
		out = append(out, p.Name)
	}
	return out
}
