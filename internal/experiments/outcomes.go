package experiments

import (
	"sync/atomic"

	"github.com/snails-bench/snails/internal/schema"
)

// Per-cell sweep outcomes, tallied process-wide by variant. The metrics
// registry reads these through CellOutcome at scrape time; the sweep engine
// itself never imports a metrics package. "error" covers cells whose
// prediction failed to parse; "mismatch" parsed but did not reproduce the
// gold result (execution failures included).
const (
	outcomeMatch = iota
	outcomeMismatch
	outcomeError
	numOutcomes
)

// Outcomes lists the per-cell result classes in display order, aligned with
// the outcome* indices above.
var Outcomes = []string{"match", "mismatch", "error"}

type outcomeRow [numOutcomes]atomic.Uint64

var cellOutcomes = make([]outcomeRow, len(schema.Variants))

// countOutcome classifies a finished cell into its outcome row.
func countOutcome(c *Cell) int {
	idx := outcomeError
	switch {
	case c.ExecCorrect:
		idx = outcomeMatch
	case c.ParseOK:
		idx = outcomeMismatch
	}
	cellOutcomes[int(c.Variant)][idx].Add(1)
	return idx
}

// CellOutcome returns the number of sweep cells that finished with the named
// outcome ("match", "mismatch", "error") under one schema variant, since
// process start.
func CellOutcome(v schema.Variant, outcome string) uint64 {
	vi := int(v)
	if vi < 0 || vi >= len(cellOutcomes) {
		return 0
	}
	for i, name := range Outcomes {
		if name == outcome {
			return cellOutcomes[vi][i].Load()
		}
	}
	return 0
}
