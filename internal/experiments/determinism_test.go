package experiments

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"testing"

	"github.com/snails-bench/snails/internal/datasets"
)

// TestParallelSweepDeterministic is the bit-identity contract of the worker
// pool: a sweep fanned out over 4 workers must produce exactly the cells,
// tallies, and downstream report tables of the serial sweep. Under -short
// (and therefore under -race in the tier-1 recipe) it runs on a database
// subset to keep goroutine interleaving checks fast.
func TestParallelSweepDeterministic(t *testing.T) {
	dbs := datasets.All()
	if testing.Short() {
		dbs = dbs[:3]
	}

	serial := RunSweep(dbs, Options{Workers: 1})
	parallel := RunSweep(dbs, Options{Workers: 4})

	if serial.Stats.Workers != 1 || parallel.Stats.Workers != 4 {
		t.Fatalf("worker counts: serial=%d parallel=%d", serial.Stats.Workers, parallel.Stats.Workers)
	}
	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cell counts differ: serial=%d parallel=%d", len(serial.Cells), len(parallel.Cells))
	}
	for i := range serial.Cells {
		if !reflect.DeepEqual(serial.Cells[i], parallel.Cells[i]) {
			t.Fatalf("cell %d differs:\nserial:   %+v\nparallel: %+v", i, serial.Cells[i], parallel.Cells[i])
		}
	}
	if !reflect.DeepEqual(serial.Tally, parallel.Tally) {
		t.Fatal("identifier tallies differ between serial and parallel sweeps")
	}

	// Every report table must digest identically: the figures are pure
	// functions of the sweep, so this pins the full reporting surface.
	pd := tableDigests(parallel)
	for name, digest := range tableDigests(serial) {
		if pd[name] != digest {
			t.Errorf("table %s digests differ: serial=%s parallel=%s", name, digest, pd[name])
		}
	}
}

// tableDigests renders every report table of a sweep and hashes it.
func tableDigests(s *Sweep) map[string]string {
	d := map[string]string{
		"figure8":  fmt.Sprintf("%+v", Figure8Of(s)),
		"figure9":  fmt.Sprintf("%+v", Figure9Of(s)),
		"figure10": fmt.Sprintf("%+v", Figure10Of(s)),
		"figure11": fmt.Sprintf("%+v", Figure11Of(s)),
		"figure30": fmt.Sprintf("%+v", Figure30Of(s)),
		"figure12": fmt.Sprintf("%+v", Figure12Of(s)),
	}
	for _, spec := range Catalog() {
		d["corr"+spec.Figure] = fmt.Sprintf("%+v", CorrelateOf(s, spec.F, spec.O, spec.Scope))
	}
	for k, v := range d {
		d[k] = fmt.Sprintf("%x", sha256.Sum256([]byte(v)))
	}
	return d
}

// TestSweepStats checks that execution statistics are populated without
// participating in result equality.
func TestSweepStats(t *testing.T) {
	dbs := datasets.All()[:1]
	s := RunSweep(dbs, Options{Workers: 2})
	if s.Stats.Cells != len(s.Cells) {
		t.Errorf("Stats.Cells = %d, want %d", s.Stats.Cells, len(s.Cells))
	}
	if s.Stats.WallClock <= 0 || s.Stats.CellsPerSec <= 0 {
		t.Errorf("Stats timing not populated: %+v", s.Stats)
	}
}

// TestDefaultWorkers exercises the process-wide override used by the
// -parallel CLI flags.
func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d after SetDefaultWorkers(3)", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Errorf("DefaultWorkers = %d, want >= 1", got)
	}
}
