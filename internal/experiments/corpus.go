package experiments

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/stats"
	"github.com/snails-bench/snails/internal/token"
)

// Figure2Row is the mean token-in-dictionary proportion for one naturalness
// class.
type Figure2Row struct {
	Level naturalness.Level
	Mean  float64
	N     int
}

// Figure2 computes mean token-in-dictionary by class over the labeled
// corpus (Artifact 2).
func Figure2() []Figure2Row {
	d := ident.DefaultDictionary()
	sums := map[naturalness.Level]float64{}
	counts := map[naturalness.Level]int{}
	for _, ex := range datasets.Collection2() {
		sums[ex.Level] += ident.MeanTokenInDictionary(ex.Identifier, d)
		counts[ex.Level]++
	}
	var rows []Figure2Row
	for _, l := range naturalness.Levels {
		mean := 0.0
		if counts[l] > 0 {
			mean = sums[l] / float64(counts[l])
		}
		rows = append(rows, Figure2Row{Level: l, Mean: mean, N: counts[l]})
	}
	return rows
}

// Table1 returns example identifiers per class, like the paper's Table 1.
// Examples are stride-sampled across the corpus so each class shows a
// spread of databases and naming styles.
func Table1(perLevel int) map[naturalness.Level][]string {
	byLevel := map[naturalness.Level][]string{}
	for _, ex := range datasets.Collection2() {
		byLevel[ex.Level] = append(byLevel[ex.Level], ex.Identifier)
	}
	out := map[naturalness.Level][]string{}
	for l, ids := range byLevel {
		if perLevel <= 0 || len(ids) == 0 {
			continue
		}
		stride := len(ids) / perLevel
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < len(ids) && len(out[l]) < perLevel; i += stride {
			out[l] = append(out[l], ids[i])
		}
	}
	return out
}

// CollectionRow is one collection's naturalness distribution (Figure 3).
type CollectionRow struct {
	Collection string
	Regular    float64
	Low        float64
	Least      float64
	Combined   float64
	N          int
}

// Figure3 compares the naturalness proportions of the SNAILS collection,
// the Spider-like benchmark collection, and the SchemaPile-like corpus.
// Proportions for SNAILS and Spider come from classifying each identifier
// with the trained classifier — as the paper does — rather than from the
// generators' ground truth.
func Figure3() []CollectionRow {
	clf := TrainedClassifier()
	var rows []CollectionRow

	// Each database/schema contributes its proportion profile equally so a
	// single huge schema (SBOD, 10k+ identifiers) cannot dominate the
	// collection's distribution — matching the chart semantics of Figure 3.
	summarize := func(name string, perSchema [][]string) CollectionRow {
		var row CollectionRow
		for _, ids := range perSchema {
			var levels []naturalness.Level
			for _, id := range ids {
				levels = append(levels, clf.Classify(id))
			}
			r, lo, le := naturalness.Proportions(levels)
			row.Regular += r
			row.Low += lo
			row.Least += le
			row.Combined += naturalness.CombinedOf(levels)
			row.N += len(levels)
		}
		n := float64(len(perSchema))
		row.Collection = name
		row.Regular /= n
		row.Low /= n
		row.Least /= n
		row.Combined /= n
		return row
	}

	var snails [][]string
	for _, b := range datasets.All() {
		snails = append(snails, b.Schema.UniqueIdentifiers())
	}
	rows = append(rows, summarize("SNAILS", snails))

	var spider [][]string
	for _, b := range datasets.SpiderDev() {
		spider = append(spider, b.Schema.UniqueIdentifiers())
	}
	rows = append(rows, summarize("Spider-like", spider))

	var bird [][]string
	for _, b := range datasets.BirdDev() {
		bird = append(bird, b.Schema.UniqueIdentifiers())
	}
	rows = append(rows, summarize("BIRD-like", bird))

	// SchemaPile: classify a deterministic sample (the paper classifies the
	// full 1M-identifier collection with the CANINE model; we bound work).
	var pile [][]string
	all := datasets.SchemaPile()
	total := 0
	for i := range all {
		if i%4 != 0 {
			continue
		}
		pile = append(pile, all[i].Identifiers)
		total += len(all[i].Identifiers)
		if total > 8000 {
			break
		}
	}
	rows = append(rows, summarize("SchemaPile-like", pile))
	return rows
}

// PileScan summarizes the section 2.2 SchemaPile scan.
type PileScan struct {
	Schemas            int
	LeastHeavySchemas  int     // schemas with >= 10% Least identifiers
	LeastHeavyFraction float64 // proportion of such schemas
	LowCombined        int     // schemas with combined naturalness <= 0.7
	LowCombinedMinor   int     // of those, schemas where Low+Least outnumber Regular
}

// Section22Scan classifies the SchemaPile-like corpus with the trained
// classifier and reproduces the section 2.2 statistics.
func Section22Scan() PileScan {
	clf := TrainedClassifier()
	pile := datasets.SchemaPile()
	scan := PileScan{Schemas: len(pile)}
	for i := range pile {
		var levels []naturalness.Level
		for _, id := range pile[i].Identifiers {
			levels = append(levels, clf.Classify(id))
		}
		r, lo, le := naturalness.Proportions(levels)
		if le >= 0.10 {
			scan.LeastHeavySchemas++
		}
		if naturalness.CombinedOf(levels) <= 0.7 {
			scan.LowCombined++
			if lo+le > r {
				scan.LowCombinedMinor++
			}
		}
	}
	scan.LeastHeavyFraction = float64(scan.LeastHeavySchemas) / float64(scan.Schemas)
	return scan
}

// CDFSeries is one naturalness level's cumulative distribution over a
// measurement (Figures 26 and 27).
type CDFSeries struct {
	Level      naturalness.Level
	Thresholds []float64
	CDF        []float64
	N          int
}

// Figure26 computes the identifier character-count CDF by naturalness level.
func Figure26() []CDFSeries {
	perLevel := map[naturalness.Level][]float64{}
	for _, ex := range datasets.Collection2() {
		perLevel[ex.Level] = append(perLevel[ex.Level], float64(len(ex.Identifier)))
	}
	thresholds := makeThresholds(1, 40)
	var out []CDFSeries
	for _, l := range naturalness.Levels {
		out = append(out, CDFSeries{
			Level: l, Thresholds: thresholds,
			CDF: stats.CDF(perLevel[l], thresholds), N: len(perLevel[l]),
		})
	}
	return out
}

// Figure27 computes the token-count CDF by level for one model tokenizer.
func Figure27(model string) []CDFSeries {
	tok := token.ForModel(model)
	perLevel := map[naturalness.Level][]float64{}
	for _, ex := range datasets.Collection2() {
		perLevel[ex.Level] = append(perLevel[ex.Level], float64(tok.Count(ex.Identifier)))
	}
	thresholds := makeThresholds(1, 16)
	var out []CDFSeries
	for _, l := range naturalness.Levels {
		out = append(out, CDFSeries{
			Level: l, Thresholds: thresholds,
			CDF: stats.CDF(perLevel[l], thresholds), N: len(perLevel[l]),
		})
	}
	return out
}

// TCRRow is one (tokenizer, level) token-to-character summary (Figure 28).
type TCRRow struct {
	Tokenizer string
	Level     naturalness.Level
	Box       stats.BoxStats
}

// Figure28 computes TCR distributions by naturalness level per tokenizer.
func Figure28() []TCRRow {
	var rows []TCRRow
	for _, model := range token.ModelNames() {
		tok := token.ForModel(model)
		perLevel := map[naturalness.Level][]float64{}
		for _, ex := range datasets.Collection2() {
			perLevel[ex.Level] = append(perLevel[ex.Level], tok.TCR(ex.Identifier))
		}
		for _, l := range naturalness.Levels {
			rows = append(rows, TCRRow{Tokenizer: model, Level: l, Box: stats.Box(perLevel[l])})
		}
	}
	return rows
}

// Figure5Row is one database's native naturalness summary (Figures 5/24).
type Figure5Row struct {
	DB       string
	Regular  float64
	Low      float64
	Least    float64
	Combined float64
}

// Figure5 reports the per-database native naturalness proportions and
// combined scores.
func Figure5() []Figure5Row {
	var rows []Figure5Row
	for _, b := range datasets.All() {
		levels := b.Schema.NativeLevels()
		r, lo, le := naturalness.Proportions(levels)
		rows = append(rows, Figure5Row{
			DB: b.Name, Regular: r, Low: lo, Least: le,
			Combined: naturalness.CombinedOf(levels),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].DB < rows[j].DB })
	return rows
}

func makeThresholds(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}

// NamingPatternScan reports the section-6 "other naming patterns" counts
// over the SchemaPile-like corpus: identifiers containing whitespace and
// identifiers embedding the word "table" — both rare (<1%) but present, as
// the paper observes.
type NamingPatternScan struct {
	Identifiers int
	Whitespace  int
	TableWord   int
}

// Section6NamingPatterns scans the corpus for LLM-unfriendly naming
// patterns.
func Section6NamingPatterns() NamingPatternScan {
	var scan NamingPatternScan
	for _, s := range datasets.SchemaPile() {
		for _, id := range s.Identifiers {
			scan.Identifiers++
			if strings.ContainsAny(id, " \t") {
				scan.Whitespace++
			}
			lower := strings.ToLower(id)
			if strings.Contains(lower, "table") || strings.HasPrefix(lower, "tbl_") {
				scan.TableWord++
			}
		}
	}
	return scan
}
