package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/config"
	"github.com/snails-bench/snails/internal/schema"
)

// testDBs returns a small deterministic collection (full grid in -short).
func testDBs(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"KIS"}
	}
	return []string{"KIS", "CWO"}
}

// TestConfigSweepMatchesFlagPath pins the tentpole's byte-identity promise:
// a config-driven sweep over synthetic backends produces exactly the cells
// the classic Options path does.
func TestConfigSweepMatchesFlagPath(t *testing.T) {
	names := testDBs(t)
	exp := &config.Experiment{Databases: names, Workers: 2}
	backends, closer, err := backend.BuildAll(exp)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	defer closer()
	viaConfig, err := RunConfig(exp, backends)
	if err != nil {
		t.Fatalf("RunConfig: %v", err)
	}

	dbs, err := ResolveDatabases(names)
	if err != nil {
		t.Fatal(err)
	}
	viaFlags := RunSweep(dbs, Options{Workers: 2})

	var a, b bytes.Buffer
	if err := viaConfig.WriteCells(&a); err != nil {
		t.Fatal(err)
	}
	if err := viaFlags.WriteCells(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty cell dump")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("config-driven sweep diverged from the flag path (%d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestConfigSweepBudget checks the budget axes cut the grid to a stable
// prefix.
func TestConfigSweepBudget(t *testing.T) {
	exp := &config.Experiment{
		Databases: []string{"KIS"},
		Backends:  []config.BackendSpec{{Model: "gpt-4o"}},
		Variants:  []string{"native", "least"},
		Workers:   1,
		Budget:    config.Budget{MaxQuestionsPerDB: 3},
	}
	backends, closer, err := backend.BuildAll(exp)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	s, err := RunConfig(exp, backends)
	if err != nil {
		t.Fatal(err)
	}
	// 1 backend x 2 variants x 3 questions.
	if len(s.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(s.Cells))
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Backend != "gpt-4o" || c.Backend != c.Model {
			t.Fatalf("cell %d: backend %q model %q", i, c.Backend, c.Model)
		}
		if c.Variant != schema.VariantNative && c.Variant != schema.VariantLeast {
			t.Fatalf("cell %d: unexpected variant %v", i, c.Variant)
		}
	}

	capped, err := RunConfig(&config.Experiment{
		Databases: []string{"KIS"},
		Backends:  exp.Backends,
		Variants:  exp.Variants,
		Workers:   1,
		Budget:    config.Budget{MaxCells: 4},
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Cells) != 4 {
		t.Fatalf("MaxCells=4 got %d cells", len(capped.Cells))
	}
	// The capped run is a prefix of the budgeted one.
	var full, pre bytes.Buffer
	s.WriteCells(&full)
	capped.WriteCells(&pre)
	if !strings.HasPrefix(full.String(), pre.String()) {
		t.Fatal("MaxCells run is not a prefix of the larger grid")
	}
}

// TestConfigSweepUnknownDatabase checks name resolution fails loudly.
func TestConfigSweepUnknownDatabase(t *testing.T) {
	if _, err := ResolveDatabases([]string{"NOPE"}); err == nil ||
		!strings.Contains(err.Error(), "unknown database") {
		t.Fatalf("ResolveDatabases: %v", err)
	}
}

// TestConfigSweepMockHTTP runs a budgeted grid end-to-end through the mock
// chat-completions endpoint: every cell must decode over the wire (the
// mock answers a COUNT over the prompt's first table) and most should
// parse after denaturalization.
func TestConfigSweepMockHTTP(t *testing.T) {
	exp := &config.Experiment{
		Databases: []string{"KIS"},
		Backends: []config.BackendSpec{{
			ID: "mock", Type: config.TypeMockHTTP, Model: "mock-model",
			MaxRetries: 2, TimeoutMs: 5000, BackoffMs: 1,
		}},
		Variants: []string{"native"},
		Workers:  2,
		Budget:   config.Budget{MaxQuestionsPerDB: 4},
	}
	backends, closer, err := backend.BuildAll(exp)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	s, err := RunConfig(exp, backends)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(s.Cells))
	}
	parsed := 0
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Backend != "mock" {
			t.Fatalf("cell %d backend %q", i, c.Backend)
		}
		if c.ParseOK {
			parsed++
		}
	}
	if parsed == 0 {
		t.Fatal("no mock generation parsed — the wire or fence path is broken")
	}
}
