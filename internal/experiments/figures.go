package experiments

import (
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/stats"
)

// AccuracyRow is one (model, variant) execution-accuracy summary.
type AccuracyRow struct {
	Model    string
	Variant  schema.Variant
	Accuracy float64
	N        int
}

// Figure8 computes execution accuracy by model and naturalness level.
func Figure8() []AccuracyRow { return Figure8Of(Run()) }

// Figure8Of computes the same summary over an explicit sweep.
func Figure8Of(s *Sweep) []AccuracyRow {
	var rows []AccuracyRow
	for _, m := range ModelNames() {
		for _, v := range schema.Variants {
			correct, n := 0, 0
			for i := range s.Cells {
				c := &s.Cells[i]
				if c.Model != m || c.Variant != v {
					continue
				}
				n++
				if c.ExecCorrect {
					correct++
				}
			}
			rows = append(rows, AccuracyRow{Model: m, Variant: v, Accuracy: ratio(correct, n), N: n})
		}
	}
	return rows
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// IdentifierRecallRow is one (model, identifier naturalness level) mean
// IdentifierRecall with its 95% confidence half-width (Figure 9).
type IdentifierRecallRow struct {
	Model  string
	Level  naturalness.Level
	Recall float64
	CI     float64
	N      int
}

// Figure9 computes Native-identifier recall by model and identifier
// naturalness level over the Native-variant runs.
func Figure9() []IdentifierRecallRow { return Figure9Of(Run()) }

// Figure9Of computes the same summary over an explicit sweep.
func Figure9Of(s *Sweep) []IdentifierRecallRow {
	var rows []IdentifierRecallRow
	levelOf := map[string]naturalness.Level{}
	for _, b := range datasets.All() {
		for _, id := range b.Schema.UniqueIdentifiers() {
			if l, ok := b.Schema.IdentifierLevel(id); ok {
				levelOf[upper(id)] = l
			}
		}
	}
	for _, m := range ModelNames() {
		tally := s.Tally[m]
		perLevel := map[naturalness.Level][]float64{}
		for _, id := range tally.Identifiers() {
			r, ok := tally.Recall(id)
			if !ok {
				continue
			}
			l, known := levelOf[id]
			if !known {
				continue
			}
			perLevel[l] = append(perLevel[l], r)
		}
		for _, l := range naturalness.Levels {
			mean, ci := stats.MeanCI(perLevel[l], 0.95)
			rows = append(rows, IdentifierRecallRow{
				Model: m, Level: l, Recall: mean, CI: ci, N: len(perLevel[l]),
			})
		}
	}
	return rows
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// LinkingRow is one (model, variant) mean linking-score summary
// (Figure 10 uses Recall; the appendix F figures use F1 and Precision).
type LinkingRow struct {
	Model     string
	Variant   schema.Variant
	Recall    float64
	Precision float64
	F1        float64
	N         int // valid (parseable) predictions
	Excluded  int // unparseable predictions excluded from linking analysis
}

// Figure10 computes QueryRecall (and Precision/F1) by model and schema
// naturalness level.
func Figure10() []LinkingRow { return Figure10Of(Run()) }

// Figure10Of computes the same summary over an explicit sweep.
func Figure10Of(s *Sweep) []LinkingRow {
	var rows []LinkingRow
	for _, m := range ModelNames() {
		for _, v := range schema.Variants {
			row := LinkingRow{Model: m, Variant: v}
			var r, p, f float64
			for i := range s.Cells {
				c := &s.Cells[i]
				if c.Model != m || c.Variant != v {
					continue
				}
				if !c.ParseOK {
					row.Excluded++
					continue
				}
				row.N++
				r += c.Link.Recall
				p += c.Link.Precision
				f += c.Link.F1
			}
			if row.N > 0 {
				row.Recall = r / float64(row.N)
				row.Precision = p / float64(row.N)
				row.F1 = f / float64(row.N)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// DrillDownRow is one (db, model, variant) QueryRecall mean (Figure 11 and
// the appendix box plots).
type DrillDownRow struct {
	DB      string
	Model   string
	Variant schema.Variant
	Recall  float64
	Box     stats.BoxStats // recall distribution
	BoxF1   stats.BoxStats // F1 distribution (appendix Figures 48-51)
}

// Figure11 drills QueryRecall down into individual databases. The paper
// showcases NTSB, PILB and SBOD; passing no names returns all databases.
func Figure11(dbNames ...string) []DrillDownRow { return Figure11Of(Run(), dbNames...) }

// Figure11Of computes the same drill-down over an explicit sweep.
func Figure11Of(s *Sweep, dbNames ...string) []DrillDownRow {
	if len(dbNames) == 0 {
		dbNames = datasets.Names
	}
	var rows []DrillDownRow
	for _, db := range dbNames {
		for _, m := range ModelNames() {
			for _, v := range schema.Variants {
				var vals, f1s []float64
				for i := range s.Cells {
					c := &s.Cells[i]
					if c.DB != db || c.Model != m || c.Variant != v || !c.ParseOK {
						continue
					}
					vals = append(vals, c.Link.Recall)
					f1s = append(f1s, c.Link.F1)
				}
				rows = append(rows, DrillDownRow{
					DB: db, Model: m, Variant: v,
					Recall: stats.Mean(vals), Box: stats.Box(vals), BoxF1: stats.Box(f1s),
				})
			}
		}
	}
	return rows
}

// GridRow is one (db, model, variant) execution accuracy cell (Figure 30).
type GridRow struct {
	DB       string
	Model    string
	Variant  schema.Variant
	Accuracy float64
	N        int
}

// Figure30 computes the per-database execution-accuracy grid.
func Figure30() []GridRow { return Figure30Of(Run()) }

// Figure30Of computes the same grid over an explicit sweep.
func Figure30Of(s *Sweep) []GridRow {
	var rows []GridRow
	for _, db := range datasets.Names {
		for _, m := range ModelNames() {
			for _, v := range schema.Variants {
				correct, n := 0, 0
				for i := range s.Cells {
					c := &s.Cells[i]
					if c.DB != db || c.Model != m || c.Variant != v {
						continue
					}
					n++
					if c.ExecCorrect {
						correct++
					}
				}
				rows = append(rows, GridRow{DB: db, Model: m, Variant: v, Accuracy: ratio(correct, n), N: n})
			}
		}
	}
	return rows
}

// SubsetRow is one (model, variant) schema-subsetting summary (Figure 12).
type SubsetRow struct {
	Model     string
	Variant   schema.Variant
	Recall    float64
	Precision float64
	F1        float64
	N         int
}

// Figure12 computes schema-subsetting performance for the workflows with a
// filtering stage (DIN SQL and CodeS).
func Figure12() []SubsetRow { return Figure12Of(Run()) }

// Figure12Of computes the same summary over an explicit sweep.
func Figure12Of(s *Sweep) []SubsetRow {
	var rows []SubsetRow
	for _, m := range ModelNames() {
		for _, v := range schema.Variants {
			row := SubsetRow{Model: m, Variant: v}
			var r, p, f float64
			for i := range s.Cells {
				c := &s.Cells[i]
				if c.Model != m || c.Variant != v || c.Subset == nil {
					continue
				}
				row.N++
				r += c.Subset.Recall
				p += c.Subset.Precision
				f += c.Subset.F1
			}
			if row.N == 0 {
				continue
			}
			row.Recall = r / float64(row.N)
			row.Precision = p / float64(row.N)
			row.F1 = f / float64(row.N)
			rows = append(rows, row)
		}
	}
	return rows
}
