package experiments

import (
	"strings"
	"testing"
)

// TestReportRendersEverySection smoke-tests the full report: every
// table/figure section header must appear exactly once and the output must
// be byte-for-byte deterministic across renders.
func TestReportRendersEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full report requires the complete sweep")
	}
	var a strings.Builder
	Report(&a)
	out := a.String()
	for _, section := range []string{
		"Table 1:", "Figure 2:", "Figure 3:", "Section 2.2:", "Table 2:",
		"Table 3:", "Table 4:", "Figure 5:", "Table 5:", "Figure 8:",
		"Figure 9:", "Figure 10 ", "Figure 11:", "Figure 12:", "Figure 13:",
		"Figure 26:", "Figure 27:", "Figure 28:", "Figure 30:",
		"Figure 31a:", "Figure 47b:", "Figures 48-51:",
		"Ablation: recognition gate", "Ablation: metadata grounding",
		"weak supervision",
	} {
		if n := strings.Count(out, section); n != 1 && !strings.HasPrefix(section, "Figure 27") {
			t.Errorf("section %q appears %d times", section, n)
		}
	}
	// Figure 27 renders once per tokenizer.
	if n := strings.Count(out, "Figure 27:"); n != 3 {
		t.Errorf("figure 27 sections = %d, want 3", n)
	}
	// Determinism: a second render is identical.
	var b strings.Builder
	Report(&b)
	if out != b.String() {
		t.Error("report is not deterministic")
	}
}

func TestSummaryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("summary requires the complete sweep")
	}
	s := Summary()
	for _, m := range ModelNames() {
		if !strings.Contains(s, m) {
			t.Errorf("summary missing model %s", m)
		}
	}
	if !strings.Contains(s, "tau=") {
		t.Error("summary missing correlation digest")
	}
}
