package experiments

import (
	"runtime"
	"testing"

	"github.com/snails-bench/snails/internal/trace"
)

// TestScalingCurveListsAllStages is the regression test for the vanished
// sql_exec stage: the warmup sweep warms the gold/pred execution memos, so
// the timed runs hit the memo and record no exec span — and the scaling
// rows used to silently drop the stage. Every row must list every pipeline
// stage, zero-count rows included, so a disappeared stage is visible to the
// compare gate instead of indistinguishable from "never existed".
func TestScalingCurveListsAllStages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full sweeps")
	}
	curve := ScalingCurve([]int{1})
	if len(curve) != 1 {
		t.Fatalf("got %d points, want 1", len(curve))
	}
	pt := curve[0]
	if len(pt.Stages) != int(trace.NumStages) {
		t.Fatalf("row lists %d stages, want all %d", len(pt.Stages), trace.NumStages)
	}
	for i, s := range pt.Stages {
		if want := trace.Stage(i).String(); s.Stage != want {
			t.Fatalf("stage %d = %q, want %q (canonical order)", i, s.Stage, want)
		}
	}
	// The decode stage always does real work; exec is the memoized one.
	byName := map[string]trace.StageSnapshot{}
	for _, s := range pt.Stages {
		byName[s.Stage] = s
	}
	if byName["llm_decode"].Count == 0 {
		t.Fatal("llm_decode recorded no spans — the curve measured nothing")
	}
	if exec, ok := byName["sql_exec"]; !ok {
		t.Fatal("sql_exec row missing")
	} else if exec.Count != 0 {
		// Not a failure — a cold pred cache can still execute — but the
		// row being present is the contract; log the observation.
		t.Logf("sql_exec recorded %d spans (pred memo not fully warm)", exec.Count)
	}
	if pt.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("GOMAXPROCS = %d, want %d", pt.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
}

// TestPadStages pins the padding helper: observed stages keep their data,
// unobserved ones appear zeroed, order is canonical.
func TestPadStages(t *testing.T) {
	in := []trace.StageSnapshot{
		{Stage: "llm_decode", Count: 10, TotalSeconds: 1.5},
		{Stage: "match", Count: 3},
	}
	out := padStages(in)
	if len(out) != int(trace.NumStages) {
		t.Fatalf("len = %d, want %d", len(out), trace.NumStages)
	}
	for i, s := range out {
		if want := trace.Stage(i).String(); s.Stage != want {
			t.Fatalf("out[%d] = %q, want %q", i, s.Stage, want)
		}
		switch s.Stage {
		case "llm_decode":
			if s.Count != 10 || s.TotalSeconds != 1.5 {
				t.Fatalf("llm_decode lost its data: %+v", s)
			}
		case "match":
			if s.Count != 3 {
				t.Fatalf("match lost its data: %+v", s)
			}
		default:
			if s.Count != 0 || s.TotalSeconds != 0 {
				t.Fatalf("%s should be zeroed: %+v", s.Stage, s)
			}
		}
	}
	if got := padStages(nil); len(got) != int(trace.NumStages) {
		t.Fatalf("padStages(nil) len = %d", len(got))
	}
}
