package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/evalx"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/modifier"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/sqlparse"
	"github.com/snails-bench/snails/internal/workflow"
)

// Ablations of the reproduction's design choices (DESIGN.md §5/§6). Each
// ablation answers "does this mechanism matter for the reproduced shape?"
// by re-running a focused slice of the benchmark with the mechanism off.

// AblationRow is one (configuration, variant) outcome.
type AblationRow struct {
	Config  string
	Variant schema.Variant
	Recall  float64
	N       int
}

// miniSweep runs one model over one database at every variant and returns
// mean QueryRecall per variant.
func miniSweep(b *datasets.Built, p *llm.Profile, label string) []AblationRow {
	m := llm.New(p)
	var rows []AblationRow
	for _, v := range schema.Variants {
		var recall float64
		n := 0
		for _, q := range Questions(b.Name) {
			out := workflow.Run(workflow.RunInput{B: b, Q: q, Variant: v, Model: m})
			if !out.ParseOK {
				continue
			}
			goldSel, err := sqlparse.Parse(q.Gold)
			if err != nil {
				continue
			}
			predSel, err := sqlparse.Parse(out.NativeSQL)
			if err != nil {
				continue
			}
			link := evalx.QueryLinking(sqlparse.Analyze(goldSel).All(), sqlparse.Analyze(predSel).All())
			recall += link.Recall
			n++
		}
		row := AblationRow{Config: label, Variant: v, N: n}
		if n > 0 {
			row.Recall = recall / float64(n)
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationGate compares the full linker against one without the recognition
// gate: without it, Least-naturalness identifiers retain a deterministic
// lexical signal and the Least degradation shrinks — showing the gate is
// what carries the paper's "consistent drop at Least" for strong models.
func AblationGate(dbName, model string) []AblationRow {
	b, _ := datasets.Get(dbName)
	p, _ := llm.ProfileByName(model)
	full := miniSweep(b, p, "full")
	off := p.Clone()
	off.DisableGate = true
	return append(full, miniSweep(b, off, "no-gate")...)
}

// AblationPrefixEase compares the full decoder against one that treats
// prefix truncations like interior skeletons: without the ease, the
// Regular/Low gap widens beyond the paper's "visible but less impactful"
// band.
func AblationPrefixEase(dbName, model string) []AblationRow {
	b, _ := datasets.Get(dbName)
	p, _ := llm.ProfileByName(model)
	full := miniSweep(b, p, "full")
	off := p.Clone()
	off.DisablePrefixEase = true
	return append(full, miniSweep(b, off, "no-prefix-ease")...)
}

// ExpanderAblationResult summarizes metadata grounding's contribution to
// identifier expansion.
type ExpanderAblationResult struct {
	DB            string
	Entries       int
	GroundedExact int // expansions matching the true concept with metadata
	DictOnlyExact int // expansions matching with dictionary analysis alone
	GroundedOK    int // expansions with every token resolved (metadata)
	DictOnlyOK    int
}

// AblationExpander measures how often the Artifact 5 expander recovers the
// true concept words of a database's Low/Least identifiers, with and
// without the metadata index (the appendix-C.2 design choice).
func AblationExpander(dbName string) ExpanderAblationResult {
	b, _ := datasets.Get(dbName)
	res := ExpanderAblationResult{DB: dbName}
	grounded := &modifier.Expander{Metadata: b.Schema.Metadata}
	dictOnly := &modifier.Expander{}
	for _, e := range b.Schema.Crosswalk.Entries() {
		if e.NativeLevel == naturalness.Regular {
			continue
		}
		res.Entries++
		truth := strings.Join(e.Words, " ")
		if words, ok := grounded.Expand(e.Native); ok {
			res.GroundedOK++
			if strings.Join(words, " ") == truth {
				res.GroundedExact++
			}
		}
		if words, ok := dictOnly.Expand(e.Native); ok {
			res.DictOnlyOK++
			if strings.Join(words, " ") == truth {
				res.DictOnlyExact++
			}
		}
	}
	return res
}

// MatchingAblationResult compares relaxed set-superset execution matching
// against strict matching (equal column counts required).
type MatchingAblationResult struct {
	DB      string
	Model   string
	N       int
	Relaxed int // correct under the paper's set-superset rule
	Strict  int // correct when extra projected columns disqualify
}

// AblationMatching quantifies how many predictions the relaxed rule saves —
// the paper's argument for set-superset matching over exact matching.
func AblationMatching(dbName, model string) MatchingAblationResult {
	b, _ := datasets.Get(dbName)
	p, _ := llm.ProfileByName(model)
	m := llm.New(p)
	res := MatchingAblationResult{DB: dbName, Model: model}
	for _, q := range Questions(b.Name) {
		out := workflow.Run(workflow.RunInput{B: b, Q: q, Variant: schema.VariantNative, Model: m})
		res.N++
		if !out.ParseOK {
			continue
		}
		gold, err := sqlexec.ExecuteSQL(b.Instance, q.Gold)
		if err != nil {
			continue
		}
		pred, err := sqlexec.ExecuteSQL(b.Instance, out.NativeSQL)
		if err != nil {
			continue
		}
		if evalx.CompareResults(gold, pred) == evalx.MatchYes {
			res.Relaxed++
			if strictEqual(gold, pred) {
				res.Strict++
			}
		}
	}
	return res
}

func strictEqual(gold, pred *sqldb.Result) bool {
	return gold.NumCols() == pred.NumCols() && evalx.CompareResults(gold, pred) == evalx.MatchYes
}

// WriteAblations renders the ablation study.
func WriteAblations(w io.Writer) {
	fmt.Fprintf(w, "\n=== Ablation: recognition gate (ATBI, gpt-4o) ===\n")
	fmt.Fprintf(w, "%-16s %-8s %8s %6s\n", "config", "variant", "recall", "n")
	for _, r := range AblationGate("ATBI", "gpt-4o") {
		fmt.Fprintf(w, "%-16s %-8s %8.3f %6d\n", r.Config, r.Variant, r.Recall, r.N)
	}
	fmt.Fprintf(w, "\n=== Ablation: prefix-truncation ease (ATBI, gpt-3.5) ===\n")
	fmt.Fprintf(w, "%-16s %-8s %8s %6s\n", "config", "variant", "recall", "n")
	for _, r := range AblationPrefixEase("ATBI", "gpt-3.5") {
		fmt.Fprintf(w, "%-16s %-8s %8.3f %6d\n", r.Config, r.Variant, r.Recall, r.N)
	}
	fmt.Fprintf(w, "\n=== Ablation: metadata grounding in the expander ===\n")
	fmt.Fprintf(w, "%-8s %8s %15s %15s %12s %12s\n", "db", "entries", "grounded-exact", "dictonly-exact", "grounded-ok", "dictonly-ok")
	for _, db := range []string{"ATBI", "NYSED", "SBOD"} {
		r := AblationExpander(db)
		fmt.Fprintf(w, "%-8s %8d %15d %15d %12d %12d\n",
			r.DB, r.Entries, r.GroundedExact, r.DictOnlyExact, r.GroundedOK, r.DictOnlyOK)
	}
	fmt.Fprintf(w, "\n=== Ablation: relaxed vs strict execution matching (native schemas) ===\n")
	fmt.Fprintf(w, "%-8s %-24s %6s %8s %8s\n", "db", "model", "n", "relaxed", "strict")
	for _, db := range []string{"CWO", "NTSB"} {
		r := AblationMatching(db, "gpt-4o")
		fmt.Fprintf(w, "%-8s %-24s %6d %8d %8d\n", r.DB, r.Model, r.N, r.Relaxed, r.Strict)
	}
}
