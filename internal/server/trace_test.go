package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/obs"
)

// tracesOf pulls /debugz/traces and decodes the body.
func tracesOf(t *testing.T, s *Server, query string) TracesResponse {
	t.Helper()
	rec := do(s, http.MethodGet, "/debugz/traces"+query, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debugz/traces: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	return resp
}

// Trace spans must survive micro-batch coalescing with per-request
// attribution: when many handlers' requests are folded into one batch, each
// finished trace still carries its own question id, a queue span, and the
// decode span recorded deep in the shared worker. Run under -race this also
// exercises the slab's atomic publication against concurrent /debugz/traces
// readers.
func TestTraceSpansSurviveBatchCoalescing(t *testing.T) {
	const n = 12
	s := New(Config{
		CacheEntries:     -1,
		RequestTimeout:   60 * time.Second,
		BatchWindow:      25 * time.Millisecond,
		FixedBatchWindow: true, // the test asserts coalescing, so no adaptive immediate flush
		MaxBatch:         n,
	})

	// All requests share (db, variant) so they coalesce into few batches.
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(qid int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":%d}`, qid)
			rec := do(s, http.MethodPost, "/v1/infer", body, nil)
			if rec.Code != http.StatusOK {
				t.Errorf("infer q%d: HTTP %d: %s", qid, rec.Code, rec.Body.String())
			}
		}(i)
	}
	// Concurrent readers while the batch runs (the -race payoff).
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				do(s, http.MethodGet, "/debugz/traces", "", nil)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	resp := tracesOf(t, s, "")
	if len(resp.Traces) != n {
		t.Fatalf("want %d traces, got %d", n, len(resp.Traces))
	}
	seen := map[int]bool{}
	for _, v := range resp.Traces {
		if v.Endpoint != "/v1/infer" || v.DB != "ASIS" || v.Variant != "Regular" {
			t.Errorf("misattributed trace: %+v", v)
		}
		if seen[v.QuestionID] {
			t.Errorf("question %d traced twice", v.QuestionID)
		}
		seen[v.QuestionID] = true
		stages := map[string]bool{}
		for _, sp := range v.Spans {
			stages[sp.Stage] = true
			if sp.DurMillis < 0 || sp.OffsetMillis < 0 {
				t.Errorf("q%d: negative span timing: %+v", v.QuestionID, sp)
			}
		}
		for _, want := range []string{"queue", "prompt_render", "llm_decode"} {
			if !stages[want] {
				t.Errorf("q%d: missing %s span (have %v)", v.QuestionID, want, v.Spans)
			}
		}
	}
	for i := 1; i <= n; i++ {
		if !seen[i] {
			t.Errorf("no trace for question %d", i)
		}
	}

	// The requests must actually have coalesced, or this test proves nothing.
	rec := do(s, http.MethodGet, "/metricsz", "", nil)
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode metricsz: %v", err)
	}
	if snap.Batches >= snap.BatchedRequests {
		t.Errorf("expected coalescing: %d batches for %d requests", snap.Batches, snap.BatchedRequests)
	}
	// The batched stage histograms surfaced in /metricsz cover every request.
	var sawDecode bool
	for _, sg := range snap.Stages {
		if sg.Stage == "llm_decode" && sg.Count == n {
			sawDecode = true
		}
	}
	if !sawDecode {
		t.Errorf("metricsz stage breakdown missing llm_decode count %d: %+v", n, snap.Stages)
	}
}

// For a serial workload the trace stream must be structurally deterministic:
// two fresh servers given the same requests produce the same traces in the
// same order, with the same span stage sequences (timings of course differ).
func TestDebugTracesDeterministicSerial(t *testing.T) {
	bodies := inferBodies(24)
	type shape struct {
		Endpoint, DB, Variant string
		QuestionID            int
		Stages                []string
	}
	runOne := func() []shape {
		s := newTestServer()
		for _, b := range bodies {
			if rec := do(s, http.MethodPost, "/v1/infer", b, nil); rec.Code != http.StatusOK {
				t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body.String())
			}
		}
		resp := tracesOf(t, s, "")
		out := make([]shape, 0, len(resp.Traces))
		for _, v := range resp.Traces {
			sh := shape{Endpoint: v.Endpoint, DB: v.DB, Variant: v.Variant, QuestionID: v.QuestionID}
			for _, sp := range v.Spans {
				sh.Stages = append(sh.Stages, sp.Stage)
			}
			out = append(out, sh)
		}
		return out
	}

	a, b := runOne(), runOne()
	if len(a) != len(bodies) {
		t.Fatalf("want %d traces, got %d", len(bodies), len(a))
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("serial trace streams diverge:\n%s\nvs\n%s", aj, bj)
	}
}

func TestDebugTracesQueryParams(t *testing.T) {
	s := newTestServer()
	for i := 1; i <= 3; i++ {
		body := fmt.Sprintf(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":%d}`, i)
		if rec := do(s, http.MethodPost, "/v1/infer", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("infer: HTTP %d", rec.Code)
		}
	}

	if got := len(tracesOf(t, s, "?n=2").Traces); got != 2 {
		t.Errorf("n=2: got %d traces", got)
	}
	slow := tracesOf(t, s, "?slowest=1")
	if !slow.Slowest {
		t.Errorf("slowest flag not echoed")
	}
	for i := 1; i < len(slow.Traces); i++ {
		if slow.Traces[i].TotalMs > slow.Traces[i-1].TotalMs {
			t.Errorf("slowest order violated at %d", i)
		}
	}

	for _, q := range []string{"?n=-1", "?n=x", "?slowest=maybe"} {
		rec := do(s, http.MethodGet, "/debugz/traces"+q, "", nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", q, rec.Code)
		}
	}
}

func TestDebugTracesDisabled(t *testing.T) {
	s := New(Config{CacheEntries: -1, TraceBuffer: -1, RequestTimeout: 30 * time.Second})
	rec := do(s, http.MethodGet, "/debugz/traces", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("want 404 when tracing disabled, got %d", rec.Code)
	}
	if code := errCode(t, rec); code != "tracing_disabled" {
		t.Errorf("code=%q", code)
	}
	// The serving path must still work without a collector.
	if rec := do(s, http.MethodPost, "/v1/infer", validBody("/v1/infer"), nil); rec.Code != http.StatusOK {
		t.Errorf("infer with tracing disabled: HTTP %d: %s", rec.Code, rec.Body.String())
	}
}

// Tracing must not change response bytes: the same request answered by a
// traced and an untraced server is byte-identical (the cache-header aside,
// both servers run uncached here).
func TestTracingDoesNotChangeResponses(t *testing.T) {
	on := newTestServer() // default TraceBuffer 256
	off := New(Config{CacheEntries: -1, TraceBuffer: -1, RequestTimeout: 30 * time.Second})
	for _, ep := range endpoints {
		body := validBody(ep)
		a := do(on, http.MethodPost, ep, body, nil)
		b := do(off, http.MethodPost, ep, body, nil)
		if a.Code != b.Code || a.Body.String() != b.Body.String() {
			t.Errorf("%s: traced and untraced responses differ:\n%s\nvs\n%s", ep, a.Body.String(), b.Body.String())
		}
	}
}

// benchInfer drives /v1/infer with a rotating workload; the on/off pair pins
// the tracing overhead (<2% is the budget; asserted by inspection of the
// benchmark delta, since Go benchmarks don't self-compare).
func benchInfer(b *testing.B, traceBuffer int) {
	// Logging filtered at warn keeps the pair a pure tracing comparison —
	// the canonical line's sampled info promotion would otherwise write to
	// the bench's stderr (BenchmarkInferLogging owns the logging overhead).
	log, err := obs.NewLogger(io.Discard, "json", "warn")
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{CacheEntries: -1, TraceBuffer: traceBuffer, RequestTimeout: 60 * time.Second, Logger: log})
	bodies := inferBodies(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(s, http.MethodPost, "/v1/infer", bodies[i%len(bodies)], nil)
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkInferTraceOn(b *testing.B)  { benchInfer(b, 256) }
func BenchmarkInferTraceOff(b *testing.B) { benchInfer(b, -1) }
