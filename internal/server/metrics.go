package server

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/obs"
	"github.com/snails-bench/snails/internal/stats"
	"github.com/snails-bench/snails/internal/trace"
)

// latencyRingSize bounds the latency sample memory; 2048 samples give stable
// p99 estimates at serving rates without unbounded growth.
const latencyRingSize = 2048

// latencyRing is a fixed-size ring of request latencies in milliseconds.
// Percentiles are computed over whatever the ring currently holds, so they
// reflect recent traffic rather than the whole process lifetime.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyRingSize]float64
	next  int
	count int
}

func (r *latencyRing) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % latencyRingSize
	if r.count < latencyRingSize {
		r.count++
	}
	r.mu.Unlock()
}

// percentiles returns the requested quantiles (0..1) over the ring; the
// ring is copied outside the lock and quantiles come from stats.Percentile,
// which interpolates between ranks. (An earlier version truncated the rank
// to an index, which biased p99 low — with 2048 samples it reported the
// 2026th-ranked latency instead of interpolating at rank 2026.53.)
func (r *latencyRing) percentiles(qs ...float64) []float64 {
	r.mu.Lock()
	n := r.count
	samples := make([]float64, n)
	copy(samples, r.buf[:n])
	r.mu.Unlock()

	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.Percentile(samples, q)
	}
	return out
}

// metrics aggregates serving counters. All fields are safe for concurrent
// update; /metricsz renders a point-in-time snapshot.
type metrics struct {
	start time.Time

	requests   atomic.Uint64 // all requests, including errors
	errors     atomic.Uint64 // responses with status >= 400
	timeouts   atomic.Uint64 // 504s
	inflight   atomic.Int64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	coalesced  atomic.Uint64 // misses served by another request's in-flight compute
	batches    atomic.Uint64 // flushed inference batches
	batchedReq atomic.Uint64 // inference requests carried by those batches

	byEndpoint sync.Map // endpoint path -> *atomic.Uint64

	lat latencyRing
	// dur is the same request latency as lat, folded into the log-spaced
	// histogram /metrics exposes (the ring serves /metricsz's interpolated
	// percentiles; the histogram serves scrape-time bucket series).
	dur obs.Histogram
	// batchWindow records the accumulation window the adaptive policy chose
	// each time a micro-batch was created (zero for immediate flushes), so
	// the window distribution under load is observable.
	batchWindow obs.Histogram
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

func (m *metrics) countEndpoint(path string) {
	v, ok := m.byEndpoint.Load(path)
	if !ok {
		v, _ = m.byEndpoint.LoadOrStore(path, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Add(1)
}

// endpointCount reads one path's request count (0 before its first request).
func (m *metrics) endpointCount(path string) uint64 {
	v, ok := m.byEndpoint.Load(path)
	if !ok {
		return 0
	}
	return v.(*atomic.Uint64).Load()
}

// observabilityPaths are the endpoints whose traffic is monitoring-induced —
// scrapes and trace pulls — rather than workload. They still appear in
// requests_by_path, but requests_total excludes them: a loadgen run that
// sends 400 requests and then scrapes /metricsz must read back exactly 400,
// or the -compare gate's workload count depends on how often something
// scraped the server. (The original off-by-one: the loadgen's own final
// /metricsz pull counted itself, reporting 401.)
var observabilityPaths = []string{"/metrics", "/metricsz", "/debugz/traces"}

// MetricsSnapshot is the /metricsz response document.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// RequestsTotal counts workload (API) requests only; self-induced
	// observability traffic is reported separately so scraping the server
	// never perturbs the gated workload count.
	RequestsTotal      uint64            `json:"requests_total"`
	ObservabilityTotal uint64            `json:"observability_requests_total"`
	RequestsByPath     map[string]uint64 `json:"requests_by_path"`
	ErrorsTotal        uint64            `json:"errors_total"`
	TimeoutsTotal      uint64            `json:"timeouts_total"`
	Inflight           int64             `json:"inflight"`
	CacheHits          uint64            `json:"cache_hits"`
	CacheMisses        uint64            `json:"cache_misses"`
	// CacheCoalesced counts misses that never ran the pipeline because an
	// identical request was already computing — the singleflight followers.
	// They are a subset of CacheMisses (the lookup did miss), so the hit
	// ratio's meaning is unchanged.
	CacheCoalesced   uint64  `json:"cache_coalesced"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	CacheEntries     int     `json:"cache_entries"`
	CacheEvictions   uint64  `json:"cache_evictions"`
	Batches          uint64  `json:"batches"`
	BatchedRequests  uint64  `json:"batched_requests"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`

	// Stages breaks request latency down by pipeline stage (queue, prompt
	// render, decode, parse, exec, match) from the trace collector's
	// log-spaced histograms. Empty when tracing is disabled or idle.
	Stages []trace.StageSnapshot `json:"stages,omitempty"`

	// Backend is the process-wide model-backend tally block (requests by
	// outcome, retries, backoff time, fence-extraction failures) — the same
	// families /metrics exposes as snails_backend_*. Summed across shards by
	// the router's aggregated view.
	Backend backend.Stats `json:"backend"`
}

func (m *metrics) snapshot(cacheEntries int, cacheEvictions uint64) MetricsSnapshot {
	// Read every counter before computing uptime: uptime is the denominator
	// of any rate a consumer derives, so it must be at least as fresh as the
	// counts. (An earlier version evaluated uptime first inside the struct
	// literal, so counters incremented during snapshot assembly could exceed
	// what the reported uptime accounted for.)
	//
	// Observability-path counts load BEFORE the request total: every such
	// request increments both counters, so this order guarantees the
	// subtraction below never underflows even mid-increment.
	var obsTotal uint64
	for _, p := range observabilityPaths {
		obsTotal += m.endpointCount(p)
	}
	requests := m.requests.Load()
	errs, timeouts := m.errors.Load(), m.timeouts.Load()
	inflight := m.inflight.Load()
	hits, misses := m.cacheHits.Load(), m.cacheMiss.Load()
	coalesced := m.coalesced.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	batches, batched := m.batches.Load(), m.batchedReq.Load()
	meanBatch := 0.0
	if batches > 0 {
		meanBatch = float64(batched) / float64(batches)
	}
	ps := m.lat.percentiles(0.50, 0.99)
	byPath := map[string]uint64{}
	m.byEndpoint.Range(func(k, v any) bool {
		byPath[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return MetricsSnapshot{
		UptimeSeconds:      time.Since(m.start).Seconds(),
		RequestsTotal:      requests - obsTotal,
		ObservabilityTotal: obsTotal,
		RequestsByPath:     byPath,
		ErrorsTotal:        errs,
		TimeoutsTotal:      timeouts,
		Inflight:           inflight,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheCoalesced:     coalesced,
		CacheHitRatio:      ratio,
		CacheEntries:       cacheEntries,
		CacheEvictions:     cacheEvictions,
		Batches:            batches,
		BatchedRequests:    batched,
		MeanBatchSize:      meanBatch,
		LatencyP50Millis:   ps[0],
		LatencyP99Millis:   ps[1],
		Backend:            backend.ReadStats(),
	}
}
