package server

import "github.com/snails-bench/snails/internal/trace"

// MergeSnapshots folds per-shard /metricsz snapshots into one cluster-wide
// view. Counters sum; derived ratios are recomputed from the summed parts
// (never averaged — a shard that served 10× the traffic should weigh 10×);
// uptime is the oldest shard's (the cluster has been serving at least that
// long). Latency percentiles cannot be reconstructed exactly without the
// raw samples, so they are request-count-weighted means of the shard
// percentiles — a standard approximation that is exact when shards see the
// same latency distribution, which shared-nothing determinism makes the
// common case.
func MergeSnapshots(snaps []MetricsSnapshot) MetricsSnapshot {
	var out MetricsSnapshot
	if len(snaps) == 0 {
		return out
	}
	out.RequestsByPath = map[string]uint64{}
	var p50Weighted, p99Weighted, weight float64
	for _, s := range snaps {
		if s.UptimeSeconds > out.UptimeSeconds {
			out.UptimeSeconds = s.UptimeSeconds
		}
		out.RequestsTotal += s.RequestsTotal
		out.ObservabilityTotal += s.ObservabilityTotal
		for p, n := range s.RequestsByPath {
			out.RequestsByPath[p] += n
		}
		out.ErrorsTotal += s.ErrorsTotal
		out.TimeoutsTotal += s.TimeoutsTotal
		out.Inflight += s.Inflight
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheCoalesced += s.CacheCoalesced
		out.CacheEntries += s.CacheEntries
		out.CacheEvictions += s.CacheEvictions
		out.Batches += s.Batches
		out.BatchedRequests += s.BatchedRequests
		out.Backend.RequestsOK += s.Backend.RequestsOK
		out.Backend.RequestsError += s.Backend.RequestsError
		out.Backend.Retries += s.Backend.Retries
		out.Backend.FenceFailures += s.Backend.FenceFailures
		out.Backend.BackoffSleeps += s.Backend.BackoffSleeps
		out.Backend.BackoffSeconds += s.Backend.BackoffSeconds
		w := float64(s.RequestsTotal)
		p50Weighted += w * s.LatencyP50Millis
		p99Weighted += w * s.LatencyP99Millis
		weight += w
	}
	if out.CacheHits+out.CacheMisses > 0 {
		out.CacheHitRatio = float64(out.CacheHits) / float64(out.CacheHits+out.CacheMisses)
	}
	if out.Batches > 0 {
		out.MeanBatchSize = float64(out.BatchedRequests) / float64(out.Batches)
	}
	if weight > 0 {
		out.LatencyP50Millis = p50Weighted / weight
		out.LatencyP99Millis = p99Weighted / weight
	}
	out.Stages = mergeStages(snaps)
	return out
}

// mergeStages folds per-shard stage breakdowns by stage name, preserving
// the pipeline order of first appearance. Counts and totals sum; the mean
// is recomputed; p50/p99 are span-count-weighted means of the shard values.
func mergeStages(snaps []MetricsSnapshot) []trace.StageSnapshot {
	idx := map[string]int{}
	var out []trace.StageSnapshot
	p50w := map[string]float64{}
	p99w := map[string]float64{}
	for _, s := range snaps {
		for _, sg := range s.Stages {
			i, ok := idx[sg.Stage]
			if !ok {
				i = len(out)
				idx[sg.Stage] = i
				out = append(out, trace.StageSnapshot{Stage: sg.Stage})
			}
			out[i].Count += sg.Count
			out[i].TotalSeconds += sg.TotalSeconds
			w := float64(sg.Count)
			p50w[sg.Stage] += w * sg.P50Millis
			p99w[sg.Stage] += w * sg.P99Millis
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].MeanMillis = round3(1000 * out[i].TotalSeconds / float64(out[i].Count))
			out[i].P50Millis = round3(p50w[out[i].Stage] / float64(out[i].Count))
			out[i].P99Millis = round3(p99w[out[i].Stage] / float64(out[i].Count))
		}
	}
	return out
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
