package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/trace"
)

// TestTraceHeaderMintedAndEchoed: an untraced request gets a fresh wire ID
// echoed on the response, and /debugz/traces?id= finds exactly that trace.
func TestTraceHeaderMintedAndEchoed(t *testing.T) {
	s := newTestServer()
	rec := do(s, http.MethodPost, "/v1/infer", validBody("/v1/infer"), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	tid := rec.Result().Header.Get(trace.Header)
	if tid == "" {
		t.Fatal("response carries no X-Snails-Trace header")
	}
	if _, ok := trace.ParseID(tid); !ok {
		t.Fatalf("echoed trace id %q is not canonical wire form", tid)
	}

	resp := tracesOf(t, s, "?id="+tid)
	if resp.TraceID != tid {
		t.Errorf("lookup echoes trace_id %q, want %q", resp.TraceID, tid)
	}
	if len(resp.Traces) != 1 {
		t.Fatalf("lookup found %d traces, want 1", len(resp.Traces))
	}
	if got := resp.Traces[0].TraceID; got != tid {
		t.Errorf("found view carries trace_id %q, want %q", got, tid)
	}
}

// TestTraceHeaderAdoption: a request arriving with X-Snails-Trace (the
// router relaying it) adopts the propagated ID — the response echoes it
// verbatim and the recorded trace carries it, so cross-process stitching
// works purely by ID equality.
func TestTraceHeaderAdoption(t *testing.T) {
	s := New(Config{CacheEntries: -1, RequestTimeout: 30 * time.Second, ShardID: "shard-7"})
	const wire = "00000000deadbeef"
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(validBody("/v1/infer")))
	req.Header.Set(trace.Header, wire)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Result().Header.Get(trace.Header); got != wire {
		t.Errorf("response echoes %q, want the adopted %q", got, wire)
	}

	resp := tracesOf(t, s, "?id="+wire)
	if len(resp.Traces) != 1 {
		t.Fatalf("lookup found %d traces, want 1", len(resp.Traces))
	}
	v := resp.Traces[0]
	if v.TraceID != wire {
		t.Errorf("adopted view carries trace_id %q, want %q", v.TraceID, wire)
	}
	if v.Proc != "shard-7" {
		t.Errorf("view proc = %q, want the shard id", v.Proc)
	}

	// A malformed inbound header is ignored, not adopted: the request still
	// serves and gets a freshly minted ID.
	req = httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(validBody("/v1/infer")))
	req.Header.Set(trace.Header, "DEADBEEFDEADBEEF")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer with bad header: HTTP %d", rec.Code)
	}
	got := rec.Result().Header.Get(trace.Header)
	if got == "" || got == "DEADBEEFDEADBEEF" {
		t.Errorf("malformed inbound header must be replaced by a minted ID, got %q", got)
	}
}

// TestDebugTracesByIDValidation: malformed ids are 400 bad_id; a well-formed
// but unknown id answers 200 with an empty (non-null) traces array.
func TestDebugTracesByIDValidation(t *testing.T) {
	s := newTestServer()
	for _, bad := range []string{"xyz", "DEADBEEFDEADBEEF", "0000000000000000", "deadbeef"} {
		rec := do(s, http.MethodGet, "/debugz/traces?id="+bad, "", nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("id=%q: want 400, got %d", bad, rec.Code)
			continue
		}
		if code := errCode(t, rec); code != "bad_id" {
			t.Errorf("id=%q: code=%q, want bad_id", bad, code)
		}
	}

	rec := do(s, http.MethodGet, "/debugz/traces?id=00000000deadbeef", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown id: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"traces":[]`) {
		t.Errorf("unknown id must answer an empty traces array: %s", rec.Body.String())
	}
}

// TestCanonicalRequestLog: every completed request emits one wide log line
// with the full debugging context — trace id, shard, db, variant, backend,
// cache verdict, match verdict, and the per-stage micros breakdown.
func TestCanonicalRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := New(Config{
		CacheEntries:   -1,
		RequestTimeout: 30 * time.Second,
		ShardID:        "shard-3",
		Logger:         logger,
	})
	rec := do(s, http.MethodPost, "/v1/infer", validBody("/v1/infer"), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	tid := rec.Result().Header.Get(trace.Header)

	var line string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, "request served") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no canonical request log line emitted; log:\n%s", buf.String())
	}
	for _, want := range []string{
		"path=/v1/infer",
		"status=200",
		"dur_ms=",
		"cache=off",
		"shard=shard-3",
		"backend=gpt-4o",
		"match=",
		"stages_us=",
		"db=ASIS",
		"variant=regular",
		"trace_id=" + tid,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("canonical line missing %q:\n%s", want, line)
		}
	}
	for _, stage := range []string{"queue:", "prompt_render:", "llm_decode:"} {
		if !strings.Contains(line, stage) {
			t.Errorf("stages_us missing %q:\n%s", stage, line)
		}
	}
}

// TestCanonicalLogSampling: with the canonical line at debug and the logger
// at info, only every CanonicalLogEvery-th request is promoted — the sampled
// trickle that keeps an info-level production log representative.
func TestCanonicalLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s := New(Config{
		CacheEntries:      -1,
		RequestTimeout:    30 * time.Second,
		CanonicalLogEvery: 4,
		Logger:            logger,
	})
	const n = 8
	for i := 1; i <= n; i++ {
		body := fmt.Sprintf(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":%d}`, i)
		if rec := do(s, http.MethodPost, "/v1/infer", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("infer %d: HTTP %d", i, rec.Code)
		}
	}
	got := strings.Count(buf.String(), "request served")
	if got != n/4 {
		t.Errorf("info-level canonical lines = %d over %d requests with every=4, want %d\nlog:\n%s",
			got, n, n/4, buf.String())
	}

	// A negative sampling interval disables promotion entirely.
	buf.Reset()
	s2 := New(Config{
		CacheEntries:      -1,
		RequestTimeout:    30 * time.Second,
		CanonicalLogEvery: -1,
		Logger:            slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	for i := 0; i < 4; i++ {
		do(s2, http.MethodPost, "/v1/infer", validBody("/v1/infer"), nil)
	}
	if strings.Contains(buf.String(), "request served") {
		t.Errorf("CanonicalLogEvery=-1 must never promote:\n%s", buf.String())
	}
}

// TestMergeSnapshotsSumsBackend: the cluster-wide /metricsz view sums the
// per-shard backend tallies (they are per-process counters, so summation is
// the only correct fold).
func TestMergeSnapshotsSumsBackend(t *testing.T) {
	a := MetricsSnapshot{Backend: backend.Stats{
		RequestsOK: 10, RequestsError: 1, Retries: 3,
		FenceFailures: 2, BackoffSleeps: 3, BackoffSeconds: 0.5,
	}}
	b := MetricsSnapshot{Backend: backend.Stats{
		RequestsOK: 5, RequestsError: 2, Retries: 1,
		FenceFailures: 0, BackoffSleeps: 1, BackoffSeconds: 0.25,
	}}
	m := MergeSnapshots([]MetricsSnapshot{a, b}).Backend
	if m.RequestsOK != 15 || m.RequestsError != 3 || m.Retries != 4 ||
		m.FenceFailures != 2 || m.BackoffSleeps != 4 || m.BackoffSeconds != 0.75 {
		t.Errorf("merged backend stats = %+v", m)
	}
}
