package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchWriter is a minimal ResponseWriter so the benchmarks measure the
// serving path, not httptest's recorder machinery.
type benchWriter struct {
	h http.Header
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(int)             {}

// resetHeader clears a reused header map without reallocating it.
func resetHeader(h http.Header) {
	for k := range h {
		delete(h, k)
	}
}

// replayBody lets one request body reader be rewound across iterations.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

// BenchmarkServeHotPath measures the steady-state request path — decode,
// cache key, lookup, response write — on a warm cache. Its allocs/op budget
// is gated in scripts/check.sh, so a regression that re-buffers bodies or
// re-encodes hits fails CI.
func BenchmarkServeHotPath(b *testing.B) {
	s := New(Config{RequestTimeout: 30 * time.Second, CanonicalLogEvery: -1})
	body := []byte(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":1}`)
	if rec := do(s, http.MethodPost, "/v1/infer", string(body), nil); rec.Code != http.StatusOK {
		b.Fatalf("warmup: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	br := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", nil)
	w := &benchWriter{h: http.Header{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(body)
		req.Body = replayBody{br}
		resetHeader(w.h)
		s.ServeHTTP(w, req)
	}
}
