package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/obs"
)

// scrape fetches /metrics and returns the body, failing on a bad status or
// content type.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := do(s, http.MethodGet, "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.ContentType)
	}
	return rec.Body.String()
}

var serverSampleLine = regexp.MustCompile(`^([a-z0-9_]+)(\{[^}]*\})? (-?[0-9].*|\+Inf|-Inf|NaN)$`)

// parseScrape validates every line of an exposition document and returns the
// family names and the sample values keyed by name+labels. (The obs package
// owns the strict format tests; this parser re-checks the invariants that
// matter at the integration level — unique snails_ families, parseable
// samples — against the real server registry.)
func parseScrape(t *testing.T, text string) (families map[string]bool, samples map[string]float64) {
	t.Helper()
	families = map[string]bool{}
	samples = map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)[0]
			if families[name] {
				t.Fatalf("family %q declared twice", name)
			}
			if !strings.HasPrefix(name, "snails_") {
				t.Fatalf("family %q is not snails_-prefixed", name)
			}
			families[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := serverSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		if m[3] != "+Inf" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			samples[m[1]+m[2]] = v
		}
	}
	return families, samples
}

// TestMetricsExposition drives real traffic through the server and asserts
// the scrape covers every subsystem the issue names: HTTP, cache, batcher,
// pool, sqlexec, stages, runtime.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{RequestTimeout: 30 * time.Second}) // response cache on
	for i := 0; i < 2; i++ {
		if rec := do(s, http.MethodPost, "/v1/infer", validBody("/v1/infer"), nil); rec.Code != http.StatusOK {
			t.Fatalf("infer = %d: %s", rec.Code, rec.Body.String())
		}
	}
	do(s, http.MethodPost, "/v1/classify", validBody("/v1/classify"), nil)

	families, samples := parseScrape(t, scrape(t, s))
	if len(families) < 20 {
		t.Errorf("scrape exposes %d families, want >= 20", len(families))
	}
	for _, want := range []string{
		"snails_http_requests_total", "snails_http_errors_total", "snails_http_inflight",
		"snails_http_request_duration_seconds", "snails_uptime_seconds",
		"snails_cache_hits_total", "snails_cache_misses_total", "snails_cache_entries",
		"snails_cache_coalesced_total",
		"snails_batches_total", "snails_batch_coalesce_total", "snails_batch_queue_depth",
		"snails_batch_window_us",
		"snails_pool_workers", "snails_pool_busy_workers", "snails_pool_rejections_total",
		"snails_infer_verdicts_total", "snails_stage_duration_seconds",
		"snails_sqlexec_queries_total", "snails_sweep_cells_total",
		"snails_go_goroutines", "snails_go_heap_alloc_bytes",
	} {
		if !families[want] {
			t.Errorf("scrape missing family %s", want)
		}
	}

	if v := samples[`snails_http_requests_total{path="/v1/infer"}`]; v != 2 {
		t.Errorf("requests{/v1/infer} = %v, want 2", v)
	}
	// The second identical infer hit the response cache.
	if v := samples[`snails_cache_hits_total{cache="response"}`]; v < 1 {
		t.Errorf("response cache hits = %v, want >= 1", v)
	}
	if v := samples["snails_sqlexec_queries_total"]; v < 1 {
		t.Errorf("sqlexec queries = %v, want >= 1", v)
	}
	if v := samples["snails_batches_total"]; v < 1 {
		t.Errorf("batches = %v, want >= 1", v)
	}
	if v := samples[`snails_http_request_duration_seconds_count`]; v < 3 {
		t.Errorf("duration count = %v, want >= 3 (one per API request)", v)
	}
	if v := samples["snails_go_goroutines"]; v < 1 {
		t.Errorf("goroutines = %v, want >= 1", v)
	}
	// The stage histogram saw the traced infer pipeline.
	if v := samples[`snails_stage_duration_seconds_count{stage="llm_decode"}`]; v < 1 {
		t.Errorf("decode stage count = %v, want >= 1", v)
	}

	// A second scrape must see its own predecessor: the /metrics counter is
	// monotone and self-counting.
	_, again := parseScrape(t, scrape(t, s))
	first := samples[`snails_http_requests_total{path="/metrics"}`]
	second := again[`snails_http_requests_total{path="/metrics"}`]
	if first != 1 || second != 2 {
		t.Errorf("/metrics self-count = %v then %v, want 1 then 2", first, second)
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	s := newTestServer()
	rec := do(s, http.MethodPost, "/metrics", "", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

// TestConcurrentScrapeUnderLoad hammers the API while scraping; under the
// race detector this is the data-race gate for every scrape-time callback.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	s := newTestServer()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":%d}`, i%5+1)
				do(s, http.MethodPost, "/v1/infer", body, nil)
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		parseScrape(t, scrape(t, s))
	}
	close(stop)
	wg.Wait()
	parseScrape(t, scrape(t, s)) // quiesced scrape still parses
}

// BenchmarkInferLogging is the observability overhead pair: the "on" variant
// serves with debug-level access logging enabled (every record rendered) and
// a scraper hitting /metrics alongside, the "off" variant with logging
// filtered at info and no scraper. The issue's acceptance bound is <2%
// between the two.
func BenchmarkInferLogging(b *testing.B) {
	run := func(b *testing.B, level string, scrapeEvery int) {
		log, err := obs.NewLogger(io.Discard, "json", level)
		if err != nil {
			b.Fatal(err)
		}
		s := New(Config{CacheEntries: -1, RequestTimeout: 30 * time.Second, Logger: log})
		body := validBody("/v1/infer")
		do(s, http.MethodPost, "/v1/infer", body, nil) // warm datasets
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec := do(s, http.MethodPost, "/v1/infer", body, nil); rec.Code != http.StatusOK {
				b.Fatalf("infer = %d", rec.Code)
			}
			if scrapeEvery > 0 && i%scrapeEvery == 0 {
				do(s, http.MethodGet, "/metrics", "", nil)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, "info", 0) })
	b.Run("on", func(b *testing.B) { run(b, "debug", 100) })
}
