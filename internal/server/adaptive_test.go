package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/backend"
)

// gatedBackend blocks every Infer call on a gate channel so tests can hold a
// request inside the pipeline at a known point. It is deterministic (fixed
// SQL) and non-batchable, so each request occupies a pool worker for as long
// as the gate stays closed.
type gatedBackend struct {
	name    string
	gate    chan struct{}
	entered chan struct{} // buffered; receives once per Infer entry
	calls   atomic.Int64
}

func (g *gatedBackend) Name() string                       { return g.name }
func (g *gatedBackend) Capabilities() backend.Capabilities { return backend.Capabilities{} }
func (g *gatedBackend) Infer(ctx context.Context, req backend.Request) (backend.Result, error) {
	g.calls.Add(1)
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return backend.Result{SQL: "SELECT 1"}, nil
}

func newGatedBackend(name string) *gatedBackend {
	return &gatedBackend{name: name, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
}

// pollUntil waits for cond with a deadline; the server-side analogue of the
// memo package's waitFor.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// flightKeyFor reproduces the response-cache key the server derives for a
// request body, so tests can observe flight membership deterministically.
func flightKeyFor(t *testing.T, s *Server, endpoint, body string) string {
	t.Helper()
	var req apiRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("body: %v", err)
	}
	return s.cacheKey(endpoint, &req)
}

// TestInferMissCoalescingByteIdentity holds a leader inside the backend,
// parks N identical misses behind it, and asserts the pipeline ran once,
// every caller got byte-identical bodies, the followers are tagged and
// counted as coalesced, and a solo run on an uncached server produces the
// same bytes.
func TestInferMissCoalescingByteIdentity(t *testing.T) {
	gb := newGatedBackend("gated")
	s := New(Config{
		RequestTimeout: 30 * time.Second,
		Workers:        4,
		Backends:       []backend.Backend{gb},
	})
	const body = `{"db":"ASIS","model":"gated","variant":"regular","question_id":1}`
	const followers = 6

	recs := make(chan *httptest.ResponseRecorder, followers+1)
	go func() { recs <- do(s, http.MethodPost, "/v1/infer", body, nil) }()
	<-gb.entered // the leader is inside the backend; its flight is registered

	for i := 0; i < followers; i++ {
		go func() { recs <- do(s, http.MethodPost, "/v1/infer", body, nil) }()
	}
	key := flightKeyFor(t, s, "/v1/infer", body)
	pollUntil(t, "followers to park on the flight", func() bool { return s.flight.Waiters(key) == followers })
	close(gb.gate)

	byCache := map[string]int{}
	var first string
	for i := 0; i < followers+1; i++ {
		rec := <-recs
		if rec.Code != http.StatusOK {
			t.Fatalf("caller %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
		}
		byCache[rec.Header().Get("X-Snails-Cache")]++
		if first == "" {
			first = rec.Body.String()
		} else if rec.Body.String() != first {
			t.Fatalf("coalesced bodies diverge:\n%s\nvs\n%s", first, rec.Body.String())
		}
	}
	if got := gb.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d identical concurrent misses, want 1", got, followers+1)
	}
	if byCache["miss"] != 1 || byCache["coalesced"] != followers {
		t.Fatalf("X-Snails-Cache tally = %v, want 1 miss and %d coalesced", byCache, followers)
	}
	if snap := s.metrics.snapshot(0, 0); snap.CacheCoalesced != followers {
		t.Fatalf("CacheCoalesced = %d, want %d", snap.CacheCoalesced, followers)
	}

	// A repeat is a plain cache hit with the same bytes.
	rec := do(s, http.MethodPost, "/v1/infer", body, nil)
	if rec.Header().Get("X-Snails-Cache") != "hit" || rec.Body.String() != first {
		t.Fatalf("post-coalesce repeat: cache=%q, bytes equal=%v",
			rec.Header().Get("X-Snails-Cache"), rec.Body.String() == first)
	}

	// Byte identity against a solo run with caching (and so the flight)
	// disabled entirely.
	gb2 := newGatedBackend("gated")
	close(gb2.gate)
	solo := New(Config{
		CacheEntries:   -1,
		RequestTimeout: 30 * time.Second,
		Backends:       []backend.Backend{gb2},
	})
	rec = do(solo, http.MethodPost, "/v1/infer", body, nil)
	if rec.Code != http.StatusOK || rec.Body.String() != first {
		t.Fatalf("solo uncached run differs from coalesced bytes (HTTP %d):\n%s\nvs\n%s",
			rec.Code, rec.Body.String(), first)
	}
}

// TestInferLeaderCancellationHandoff cancels a flight leader mid-compute: the
// leader answers 499, the parked follower re-runs the pipeline as the new
// leader (no inherited failure, no lost wakeup), and the result still lands
// in the cache.
func TestInferLeaderCancellationHandoff(t *testing.T) {
	gb := newGatedBackend("gated")
	s := New(Config{
		RequestTimeout: 30 * time.Second,
		Workers:        4,
		Backends:       []backend.Backend{gb},
	})
	const body = `{"db":"ASIS","model":"gated","variant":"regular","question_id":2}`

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderRec <- do(s, http.MethodPost, "/v1/infer", body, leaderCtx) }()
	<-gb.entered

	followerRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { followerRec <- do(s, http.MethodPost, "/v1/infer", body, nil) }()
	key := flightKeyFor(t, s, "/v1/infer", body)
	pollUntil(t, "follower to park on the flight", func() bool { return s.flight.Waiters(key) == 1 })

	cancelLeader()
	lr := <-leaderRec
	if lr.Code != 499 {
		t.Fatalf("canceled leader answered %d, want 499: %s", lr.Code, lr.Body.String())
	}

	// The follower re-leads: a second pipeline run enters the backend. (The
	// first run keeps executing on the batch's own context — its result may
	// warm caches — but the follower must not depend on it.)
	<-gb.entered
	close(gb.gate)
	fr := <-followerRec
	if fr.Code != http.StatusOK {
		t.Fatalf("handoff follower answered %d: %s", fr.Code, fr.Body.String())
	}
	if fr.Header().Get("X-Snails-Cache") != "miss" {
		t.Fatalf("new leader cache verdict = %q, want miss (it recomputed)", fr.Header().Get("X-Snails-Cache"))
	}
	if got := gb.calls.Load(); got != 2 {
		t.Fatalf("backend ran %d times, want 2 (canceled leader + handoff)", got)
	}

	// The recomputed result is cached and byte-identical on a hit.
	rec := do(s, http.MethodPost, "/v1/infer", body, nil)
	if rec.Header().Get("X-Snails-Cache") != "hit" || rec.Body.String() != fr.Body.String() {
		t.Fatalf("post-handoff repeat: cache=%q, bytes equal=%v",
			rec.Header().Get("X-Snails-Cache"), rec.Body.String() == fr.Body.String())
	}
}

// TestDrainFlushesArmedAdaptiveTimer arms a depth-scaled adaptive window (a
// busy lone worker forces the non-zero window) and drains while the timer is
// still pending: the batch must flush and answer 200 with bytes identical to
// a solo run, not hang or get dropped.
func TestDrainFlushesArmedAdaptiveTimer(t *testing.T) {
	gb := newGatedBackend("gated")
	s := New(Config{
		CacheEntries:   -1, // isolate the batcher: no response cache, no flight
		RequestTimeout: 30 * time.Second,
		Workers:        1,
		BatchWindow:    2 * time.Second, // scaled floor is 250ms — far beyond the drain below
		Backends:       []backend.Backend{gb},
	})

	// Occupy the lone worker so the next arrival sees a saturated pool.
	blockRec := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		blockRec <- do(s, http.MethodPost, "/v1/infer",
			`{"db":"ASIS","model":"gated","variant":"regular","question_id":1}`, nil)
	}()
	<-gb.entered

	const synthBody = `{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":3}`
	synthRec := make(chan *httptest.ResponseRecorder, 1)
	go func() { synthRec <- do(s, http.MethodPost, "/v1/infer", synthBody, nil) }()
	pollUntil(t, "adaptive timer to arm with the request pending", func() bool { return s.batcher.pendingItems() == 1 })

	close(gb.gate)
	s.Drain()
	if n := s.batcher.pendingItems(); n != 0 {
		t.Fatalf("%d requests still pending after drain", n)
	}

	if rec := <-blockRec; rec.Code != http.StatusOK {
		t.Fatalf("gated request answered %d after drain: %s", rec.Code, rec.Body.String())
	}
	rec := <-synthRec
	if rec.Code != http.StatusOK {
		t.Fatalf("pending-at-drain request answered %d: %s", rec.Code, rec.Body.String())
	}

	solo := New(Config{CacheEntries: -1, RequestTimeout: 30 * time.Second})
	soloRec := do(solo, http.MethodPost, "/v1/infer", synthBody, nil)
	if soloRec.Code != http.StatusOK || soloRec.Body.String() != rec.Body.String() {
		t.Fatalf("drained-batch bytes differ from solo run (HTTP %d):\n%s\nvs\n%s",
			soloRec.Code, rec.Body.String(), soloRec.Body.String())
	}
}
