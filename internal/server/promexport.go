package server

import (
	"net/http"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/experiments"
	"github.com/snails-bench/snails/internal/obs"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/trace"
)

// scrapePaths is the fixed endpoint set the per-path request counter exposes.
// A fixed list (rather than enumerating the sync.Map at scrape time) keeps
// the label space identical across scrapes, so dashboards and the check.sh
// monotone smoke can address any series before its first request.
var scrapePaths = []string{
	"/v1/infer", "/v1/classify", "/v1/modify", "/v1/link",
	"/metrics", "/metricsz", "/debugz/traces",
}

// registerMetrics builds the server's registry. Families fall into three
// groups: counters owned by this Server (HTTP, cache, batcher, pool), reads
// of process-wide tallies owned by other packages (sqlexec, sweep outcomes,
// Go runtime), and histogram views over the trace collector. Everything is
// registered once at construction; scrapes only read.
func (s *Server) registerMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	m := s.metrics

	// --- HTTP serving ---------------------------------------------------
	pathSeries := make([]obs.Series, len(scrapePaths))
	for i, p := range scrapePaths {
		p := p
		pathSeries[i] = obs.Series{
			Labels: []obs.Label{{Name: "path", Value: p}},
			F:      func() float64 { return float64(m.endpointCount(p)) },
		}
	}
	r.CounterSeries("snails_http_requests_total", "Requests received, by path.", pathSeries...)
	r.CounterFunc("snails_http_errors_total", "Responses with status >= 400.",
		func() float64 { return float64(m.errors.Load()) })
	r.CounterFunc("snails_http_timeouts_total", "Requests answered 504 (deadline expired).",
		func() float64 { return float64(m.timeouts.Load()) })
	r.GaugeFunc("snails_http_inflight", "API requests currently being served.",
		func() float64 { return float64(m.inflight.Load()) })
	r.HistogramSeriesFamily("snails_http_request_duration_seconds",
		"API request latency, including queueing and batching.",
		obs.HistogramSeries{H: &m.dur})
	r.GaugeFunc("snails_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(m.start).Seconds() })

	// --- memo caches ----------------------------------------------------
	// Three cache classes: whole-response, gold-query results, predicted-
	// query results. The response class reads the server's own hit counters
	// (a nil cache means response caching is disabled and stays at zero).
	counterBy := func(label string, f func() uint64) obs.Series {
		return obs.Series{
			Labels: []obs.Label{{Name: "cache", Value: label}},
			F:      func() float64 { return float64(f()) },
		}
	}
	respStat := func(f func() uint64) func() uint64 {
		return func() uint64 {
			if s.cache == nil {
				return 0
			}
			return f()
		}
	}
	r.CounterSeries("snails_cache_hits_total", "Cache lookups that found their key, by cache class.",
		counterBy("response", respStat(func() uint64 { return s.cache.Hits() })),
		counterBy("gold", s.goldCache.Hits),
		counterBy("pred", s.predCache.Hits),
	)
	r.CounterSeries("snails_cache_misses_total", "Cache lookups that missed, by cache class.",
		counterBy("response", respStat(func() uint64 { return s.cache.Misses() })),
		counterBy("gold", s.goldCache.Misses),
		counterBy("pred", s.predCache.Misses),
	)
	r.CounterSeries("snails_cache_evictions_total", "Entries displaced by the clock hand, by cache class.",
		counterBy("response", respStat(func() uint64 { return s.cache.Evictions() })),
		counterBy("gold", s.goldCache.Evictions),
		counterBy("pred", s.predCache.Evictions),
	)
	r.GaugeSeries("snails_cache_entries", "Entries currently resident, by cache class.",
		counterBy("response", respStat(func() uint64 { return uint64(s.cache.Len()) })),
		counterBy("gold", func() uint64 { return uint64(s.goldCache.Len()) }),
		counterBy("pred", func() uint64 { return uint64(s.predCache.Len()) }),
	)
	r.CounterFunc("snails_cache_coalesced_total",
		"Response-cache misses served from another request's in-flight compute (a subset of response misses).",
		func() float64 { return float64(m.coalesced.Load()) })

	// --- micro-batcher ---------------------------------------------------
	r.CounterFunc("snails_batches_total", "Inference batches flushed to the worker pool.",
		func() float64 { return float64(m.batches.Load()) })
	r.CounterFunc("snails_batched_requests_total", "Inference requests carried by flushed batches.",
		func() float64 { return float64(m.batchedReq.Load()) })
	s.coalesce = r.CounterVec("snails_batch_coalesce_total",
		"Flushed batches by coarse size class.", "size")
	for _, c := range coalesceClasses {
		s.coalesce.With(c)
	}
	r.GaugeFunc("snails_batch_queue_depth", "Requests waiting in not-yet-flushed batches.",
		func() float64 { return float64(s.batcher.pendingItems()) })
	r.HistogramSeriesFamily("snails_batch_window_us",
		"Accumulation window chosen by the adaptive flush policy per batch created (zero for immediate dispatch; le bounds are seconds).",
		obs.HistogramSeries{H: &m.batchWindow})

	// --- worker pool -----------------------------------------------------
	r.GaugeFunc("snails_pool_workers", "Size of the inference worker pool.",
		func() float64 { return float64(s.pool.workers) })
	r.GaugeFunc("snails_pool_busy_workers", "Workers currently running a batch.",
		func() float64 { return float64(s.pool.busy.Load()) })
	r.GaugeFunc("snails_pool_queue_depth", "Batches queued for a free worker.",
		func() float64 { return float64(len(s.pool.jobs)) })
	r.GaugeFunc("snails_pool_queue_capacity", "Bound of the worker pool queue.",
		func() float64 { return float64(cap(s.pool.jobs)) })
	r.CounterFunc("snails_pool_rejections_total", "Batch submissions refused because the pool was saturated or closed.",
		func() float64 { return float64(s.pool.rejected.Load()) })

	// --- inference evaluation --------------------------------------------
	s.verdicts = r.CounterVec("snails_infer_verdicts_total",
		"Completed /v1/infer evaluations by verdict.", "verdict")
	for _, v := range []string{"correct", "incorrect", "invalid"} {
		s.verdicts.With(v)
	}

	// --- pipeline stages --------------------------------------------------
	if s.traces != nil {
		stageSeries := make([]obs.HistogramSeries, 0, trace.NumStages)
		for st := trace.Stage(0); st < trace.NumStages; st++ {
			stageSeries = append(stageSeries, obs.HistogramSeries{
				Labels: []obs.Label{{Name: "stage", Value: st.String()}},
				H:      s.traces.StageHistogram(st),
			})
		}
		r.HistogramSeriesFamily("snails_stage_duration_seconds",
			"Pipeline stage latency from the trace collector.", stageSeries...)
	}

	// --- model backends (seventh pipeline concern) --------------------------
	r.CounterSeries("snails_backend_requests_total",
		"Backend Infer calls process-wide, by outcome.",
		obs.Series{Labels: []obs.Label{{Name: "outcome", Value: "ok"}},
			F: func() float64 { return float64(backend.ReadStats().RequestsOK) }},
		obs.Series{Labels: []obs.Label{{Name: "outcome", Value: "error"}},
			F: func() float64 { return float64(backend.ReadStats().RequestsError) }})
	r.CounterFunc("snails_backend_retries_total",
		"HTTP backend re-sends after retryable failures.",
		func() float64 { return float64(backend.ReadStats().Retries) })
	r.CounterFunc("snails_backend_fence_failures_total",
		"Chat completions with no SQL fence (the whole message was taken as SQL).",
		func() float64 { return float64(backend.ReadStats().FenceFailures) })
	r.HistogramSeriesFamily("snails_backend_backoff_seconds",
		"Retry backoff sleeps between backend attempts.",
		obs.HistogramSeries{H: backend.BackoffHistogram()})

	// --- tracing health -----------------------------------------------------
	r.CounterFunc("snails_trace_spans_dropped_total",
		"Spans dropped process-wide because a trace's span slab was full.",
		func() float64 { return float64(trace.SpansDropped()) })

	// --- process-wide tallies ---------------------------------------------
	r.CounterFunc("snails_sqlexec_queries_total", "Top-level SQL statements executed process-wide.",
		func() float64 { return float64(sqlexec.Stats().Queries) })
	r.CounterFunc("snails_sqlexec_parse_failures_total", "SQL strings that failed to parse.",
		func() float64 { return float64(sqlexec.Stats().ParseFailures) })
	r.CounterFunc("snails_sqlexec_exec_failures_total", "Parsed statements that failed during execution.",
		func() float64 { return float64(sqlexec.Stats().ExecFailures) })
	r.CounterFunc("snails_sqlexec_rows_returned_total", "Result rows produced by successful statements.",
		func() float64 { return float64(sqlexec.Stats().RowsReturned) })

	sweepSeries := make([]obs.Series, 0, len(schema.Variants)*len(experiments.Outcomes))
	for _, v := range schema.Variants {
		for _, o := range experiments.Outcomes {
			v, o := v, o
			sweepSeries = append(sweepSeries, obs.Series{
				Labels: []obs.Label{{Name: "variant", Value: v.String()}, {Name: "outcome", Value: o}},
				F:      func() float64 { return float64(experiments.CellOutcome(v, o)) },
			})
		}
	}
	r.CounterSeries("snails_sweep_cells_total",
		"Sweep cells evaluated process-wide, by schema variant and outcome.", sweepSeries...)

	r.RegisterRuntime()
}

// handleMetrics serves the registry in Prometheus text format v0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.countEndpoint("/metrics")
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.writeError(w, errorf(http.StatusMethodNotAllowed, "method_not_allowed", "/metrics requires GET"))
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if r.Method == http.MethodHead {
		return
	}
	if err := s.reg.WriteText(w); err != nil {
		// The connection is gone mid-scrape; nothing useful to write.
		s.logger.Debug("metrics scrape aborted", "err", err)
	}
}
