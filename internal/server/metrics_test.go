package server

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/stats"
)

// Regression: percentiles must interpolate between ranks like
// stats.Percentile does. The old implementation truncated the fractional
// rank to an index (int(q*(n-1))), which systematically under-reported the
// high quantiles — with samples 1..10ms, p99 came out 9.0 instead of 9.91.
func TestLatencyRingPercentilesInterpolate(t *testing.T) {
	var r latencyRing
	samples := make([]float64, 0, 10)
	for i := 1; i <= 10; i++ {
		r.record(time.Duration(i) * time.Millisecond)
		samples = append(samples, float64(i))
	}

	got := r.percentiles(0.50, 0.90, 0.99)
	want := []float64{
		stats.Percentile(samples, 0.50),
		stats.Percentile(samples, 0.90),
		stats.Percentile(samples, 0.99),
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("quantile %d: got %v want %v", i, got[i], want[i])
		}
	}
	// Pin the interpolated values so this test fails under either
	// implementation drifting, not just under disagreement.
	if math.Abs(got[0]-5.5) > 1e-9 {
		t.Errorf("p50 of 1..10 must interpolate to 5.5, got %v", got[0])
	}
	if math.Abs(got[2]-9.91) > 1e-9 {
		t.Errorf("p99 of 1..10 must interpolate to 9.91, got %v", got[2])
	}
}

func TestLatencyRingEmpty(t *testing.T) {
	var r latencyRing
	got := r.percentiles(0.50, 0.99)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("empty ring should report zeros, got %v", got)
	}
}

// The ring overwrites oldest samples past capacity; percentiles then cover
// only the retained window.
func TestLatencyRingWrapAround(t *testing.T) {
	var r latencyRing
	for i := 0; i < latencyRingSize+100; i++ {
		r.record(time.Duration(i) * time.Microsecond)
	}
	if r.count != latencyRingSize {
		t.Fatalf("count=%d want %d", r.count, latencyRingSize)
	}
	got := r.percentiles(0.0)
	// The smallest retained sample is 100µs = 0.1ms.
	if got[0] < 0.1-1e-9 {
		t.Errorf("oldest samples should have been evicted, min=%v", got[0])
	}
}

// Regression: scraping the server must not count toward requests_total.
// The original bug: a loadgen that sent 400 API requests and then pulled
// /metricsz to read the counters got back requests_total=401 — the scrape
// counted itself, so the workload count depended on how often anything
// observed the server. Observability traffic is now reported separately.
func TestMetricsSelfScrapeExcluded(t *testing.T) {
	s := newTestServer()
	defer s.Drain()

	const apiRequests = 5
	for i := 0; i < apiRequests; i++ {
		if rec := do(s, "POST", "/v1/classify", validBody("/v1/classify"), nil); rec.Code != 200 {
			t.Fatalf("classify request %d: status %d", i, rec.Code)
		}
	}
	// Scrape every observability endpoint a few times, interleaved — none
	// of it may leak into the workload count.
	for i := 0; i < 3; i++ {
		do(s, "GET", "/metricsz", "", nil)
		do(s, "GET", "/metrics", "", nil)
		do(s, "GET", "/debugz/traces", "", nil)
	}

	rec := do(s, "GET", "/metricsz", "", nil)
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode /metricsz: %v", err)
	}
	if snap.RequestsTotal != apiRequests {
		t.Errorf("requests_total = %d, want %d (observability traffic leaked in)", snap.RequestsTotal, apiRequests)
	}
	// 3 full scrape rounds plus the final /metricsz pull.
	if snap.ObservabilityTotal != 10 {
		t.Errorf("observability_requests_total = %d, want 10", snap.ObservabilityTotal)
	}
	// The per-path map still records everything, so nothing is hidden.
	if snap.RequestsByPath["/metricsz"] != 4 {
		t.Errorf("requests_by_path[/metricsz] = %d, want 4", snap.RequestsByPath["/metricsz"])
	}
	if snap.RequestsByPath["/v1/classify"] != apiRequests {
		t.Errorf("requests_by_path[/v1/classify] = %d, want %d", snap.RequestsByPath["/v1/classify"], apiRequests)
	}
}
