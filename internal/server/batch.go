package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/evalx"
	"github.com/snails-bench/snails/internal/experiments"
	"github.com/snails-bench/snails/internal/llm"
	"github.com/snails-bench/snails/internal/memo"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlexec"
	"github.com/snails-bench/snails/internal/trace"
	"github.com/snails-bench/snails/internal/workflow"
)

// pool is a bounded worker pool with a fixed-depth queue. Submissions are
// rejected (never blocked) when the queue is full, so an overloaded server
// answers 503 instead of accumulating unbounded goroutines.
type pool struct {
	mu     sync.RWMutex
	jobs   chan func()
	closed bool
	wg     sync.WaitGroup

	workers  int
	busy     atomic.Int64  // workers currently running a job
	rejected atomic.Uint64 // submissions refused (saturated or closed)
}

func newPool(workers, queueDepth int) *pool {
	p := &pool{jobs: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				p.busy.Add(1)
				f()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// submit enqueues f, reporting false when the pool is saturated or closed.
func (p *pool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.rejected.Add(1)
		return false
	}
	select {
	case p.jobs <- f:
		return true
	default:
		p.rejected.Add(1)
		return false
	}
}

// close stops intake and waits for queued work to drain — the serving
// daemon's "finish in-flight batches" step.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// inferKey groups concurrent inference requests that can share one rendered
// schema prompt. The backend name is part of the key: batches never mix
// backends, so per-backend dispatch (a wire backend's latency, a synthetic
// one's shared decode structures) stays isolated.
type inferKey struct {
	db      string
	variant schema.Variant
	backend string
}

// inferItem is one queued /v1/infer request inside a batch.
type inferItem struct {
	q   nlq.Question
	be  backend.Backend
	out chan inferOutcome // buffered(1); exactly one send per item

	// tr is the request's trace (nil when tracing is disabled); enqueued
	// marks when the item entered the batch, so the worker can record the
	// queue/batch-wait span against the right request even after the batch
	// coalesced items from many handlers.
	tr       *trace.Trace
	enqueued time.Time
}

type inferOutcome struct {
	resp InferResponse
	err  *apiError
}

type inferBatch struct {
	key   inferKey
	b     *datasets.Built
	items []*inferItem
	timer *time.Timer
	// adaptive marks a batch the adaptive policy flushed immediately (zero
	// window): the pool was idle and nothing else was pending, so waiting
	// for companions could only add latency, never sharing.
	adaptive bool
}

// batcher accumulates concurrent /v1/infer requests per (db, variant) and
// flushes each batch as one pool job that renders the schema prompt once.
// Batching trades a bounded added latency for shared prompt work — the
// micro-batching pattern of serving systems, applied to schema-knowledge
// rendering.
//
// The flush policy is adaptive (unless fixed): a request arriving while the
// worker pool has idle capacity and no other request is pending dispatches
// immediately — waiting can only add latency when there is nobody to share
// with and nothing ahead in line. Under contention the window scales with
// observed queue depth, from window/8 up to the configured window, so a
// deeper backlog waits longer and coalesces more. Every chosen window
// (including zero) lands in the snails_batch_window_us histogram.
type batcher struct {
	s        *Server
	window   time.Duration
	maxBatch int
	fixed    bool // always wait the full window (the pre-adaptive behavior)

	mu      sync.Mutex
	pending map[inferKey]*inferBatch
	// inflight counts batches handed to the pool but not yet finished, so
	// shutdown can drain them.
	inflight sync.WaitGroup
}

func newBatcher(s *Server, window time.Duration, maxBatch int, fixed bool) *batcher {
	return &batcher{s: s, window: window, maxBatch: maxBatch, fixed: fixed, pending: map[inferKey]*inferBatch{}}
}

// windowLocked picks the accumulation window for a batch being created now.
// Called under bt.mu (it reads the pending set).
func (bt *batcher) windowLocked() time.Duration {
	if bt.fixed {
		return bt.window
	}
	queued := len(bt.s.pool.jobs)
	busy := int(bt.s.pool.busy.Load())
	pending := 0
	for _, ba := range bt.pending {
		pending += len(ba.items)
	}
	if queued == 0 && pending == 0 && busy < bt.s.pool.workers {
		return 0
	}
	// Contended: scale the window with the depth of work ahead of this
	// request. A saturated pool counts as one extra unit so depth is never
	// zero when every worker is busy.
	depth := queued + pending
	if busy >= bt.s.pool.workers {
		depth++
	}
	w := bt.window * time.Duration(depth) / time.Duration(bt.maxBatch)
	if floor := bt.window / 8; w < floor {
		w = floor
	}
	if w > bt.window {
		w = bt.window
	}
	return w
}

// enqueue queues one request and returns the channel its outcome will be
// delivered on. Every item receives exactly one outcome — a result, or an
// overload error if the pool rejects its batch. Non-batchable backends
// (wire models: each request is an independent network call) skip the
// window and dispatch immediately as singleton batches.
func (bt *batcher) enqueue(b *datasets.Built, v schema.Variant, q nlq.Question, be backend.Backend, tr *trace.Trace) chan inferOutcome {
	item := &inferItem{q: q, be: be, out: make(chan inferOutcome, 1), tr: tr, enqueued: tr.Now()}
	key := inferKey{db: b.Name, variant: v, backend: be.Name()}

	if !be.Capabilities().Batchable {
		bt.dispatch(&inferBatch{key: key, b: b, items: []*inferItem{item}})
		return item.out
	}

	bt.mu.Lock()
	ba := bt.pending[key]
	if ba == nil {
		w := bt.windowLocked()
		if w == 0 {
			// Adaptive fast path: idle capacity and an empty line — flush the
			// singleton straight to the pool without registering it as
			// pending, so a companion arriving a microsecond later starts its
			// own batch instead of joining one already running.
			bt.mu.Unlock()
			bt.s.metrics.batchWindow.Observe(0)
			bt.dispatch(&inferBatch{key: key, b: b, items: []*inferItem{item}, adaptive: true})
			return item.out
		}
		ba = &inferBatch{key: key, b: b}
		bt.pending[key] = ba
		ba.timer = time.AfterFunc(w, func() { bt.flush(key, ba) })
		bt.s.metrics.batchWindow.Observe(w)
	}
	ba.items = append(ba.items, item)
	full := len(ba.items) >= bt.maxBatch
	if full {
		ba.timer.Stop()
		delete(bt.pending, key)
	}
	bt.mu.Unlock()

	if full {
		bt.dispatch(ba)
	}
	return item.out
}

// flush moves a timed-out batch from pending to the pool. It is a no-op if
// the batch was already dispatched by the size trigger.
func (bt *batcher) flush(key inferKey, ba *inferBatch) {
	bt.mu.Lock()
	if bt.pending[key] != ba {
		bt.mu.Unlock()
		return
	}
	delete(bt.pending, key)
	bt.mu.Unlock()
	bt.dispatch(ba)
}

// dispatch hands a batch to the worker pool; on rejection it fails every
// item (the sole outcome send for those items).
func (bt *batcher) dispatch(ba *inferBatch) {
	bt.inflight.Add(1)
	ok := bt.s.pool.submit(func() {
		defer bt.inflight.Done()
		bt.run(ba)
	})
	if !ok {
		bt.inflight.Done()
		for _, it := range ba.items {
			it.out <- inferOutcome{err: errOverloaded}
		}
	}
}

// pendingItems counts requests sitting in not-yet-flushed batches — the
// batcher's queue depth gauge.
func (bt *batcher) pendingItems() int {
	bt.mu.Lock()
	n := 0
	for _, ba := range bt.pending {
		n += len(ba.items)
	}
	bt.mu.Unlock()
	return n
}

// coalesceClass buckets a flushed batch's size for the coalesce counter.
// Classes are coarse on purpose: the interesting signal is "alone vs shared"
// and the rough sharing factor, not an exact size distribution. Batches the
// adaptive policy flushed immediately report the distinct "adaptive" class —
// they are singletons by choice (idle pool), not for lack of companions.
func coalesceClass(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n == 2:
		return "2"
	case n == 3:
		return "3"
	case n <= 7:
		return "4-7"
	case n <= 15:
		return "8-15"
	default:
		return "16+"
	}
}

// coalesceClasses lists every class so the counter vec pre-declares them and
// scrapes render the full label space from the first request on.
var coalesceClasses = []string{"adaptive", "1", "2", "3", "4-7", "8-15", "16+"}

// drain flushes every pending batch immediately and waits for in-flight
// batches to finish. Called during graceful shutdown after the listener has
// stopped accepting new requests.
func (bt *batcher) drain() {
	bt.mu.Lock()
	pending := make([]*inferBatch, 0, len(bt.pending))
	for key, ba := range bt.pending {
		ba.timer.Stop()
		delete(bt.pending, key)
		pending = append(pending, ba)
	}
	bt.mu.Unlock()
	for _, ba := range pending {
		bt.dispatch(ba)
	}
	bt.inflight.Wait()
}

// run executes one flushed batch: the schema prompt is rendered once when
// the database's prompts are question-independent (all databases except the
// module-scoped SBOD), then each item runs the standard pipeline and
// evaluation.
func (bt *batcher) run(ba *inferBatch) {
	bt.s.metrics.batches.Add(1)
	bt.s.metrics.batchedReq.Add(uint64(len(ba.items)))
	class := coalesceClass(len(ba.items))
	if ba.adaptive {
		class = "adaptive"
	}
	bt.s.coalesce.With(class).Inc()

	// The queue span closes now for every member: the batch has been picked
	// up, so each request's wait ends here regardless of its slot in the
	// per-item loop below.
	for _, it := range ba.items {
		it.tr.Span(trace.StageQueue, it.enqueued)
	}

	shared := ""
	var sharedPS *llm.PromptSchema
	if workflow.SharedPrompt(ba.b) && len(ba.items) > 0 {
		// The shared render is timed once and attributed to every traced
		// member — each request did pay for it, amortized. The parsed
		// prompt-schema handle (identifier interning, columnar score slabs)
		// is resolved here too, so every member of the batch decodes against
		// one interned schema instead of re-hashing the prompt text.
		var t0 time.Time
		for _, it := range ba.items {
			if it.tr != nil {
				t0 = time.Now()
				break
			}
		}
		shared, _ = workflow.PromptFor(ba.b, ba.items[0].q, ba.key.variant)
		sharedPS = llm.PromptSchemaOf(shared)
		if !t0.IsZero() {
			d := time.Since(t0)
			for _, it := range ba.items {
				it.tr.SpanDur(trace.StagePrompt, t0, d)
			}
		}
	}
	for _, it := range ba.items {
		resp, err := bt.s.runInfer(ba, it, shared, sharedPS)
		if err != nil {
			it.out <- inferOutcome{err: err}
			continue
		}
		it.out <- inferOutcome{resp: resp}
	}
}

// runInfer is the per-item pipeline: prompt → synthetic-LLM inference →
// denaturalization → linking scores → relaxed execution match. Gold query
// results and predicted-query executions are memoized across requests.
func (s *Server) runInfer(ba *inferBatch, it *inferItem, sharedPrompt string, sharedPS *llm.PromptSchema) (InferResponse, *apiError) {
	ctx := trace.NewContext(context.Background(), it.tr)
	in := workflow.RunInput{B: ba.b, Q: it.q, Variant: ba.key.variant, Backend: it.be}
	var out workflow.RunOutput
	if sharedPS != nil {
		out = workflow.RunWithSchemaCtx(ctx, in, sharedPrompt, nil, sharedPS)
	} else if sharedPrompt != "" {
		out = workflow.RunWithPromptCtx(ctx, in, sharedPrompt, nil)
	} else {
		out = workflow.RunCtx(ctx, in)
	}
	if out.InferErr != nil {
		return InferResponse{}, errorf(http.StatusBadGateway, "backend_failed",
			"backend %s could not answer: %v", it.be.Name(), out.InferErr)
	}

	resp := InferResponse{
		DB:         ba.b.Name,
		Model:      it.be.Name(),
		Variant:    ba.key.variant.String(),
		QuestionID: it.q.ID,
		Question:   it.q.Text,
		SQL:        out.Prediction.SQL,
		NativeSQL:  out.NativeSQL,
		Valid:      out.ParseOK,
	}
	if !out.ParseOK {
		s.verdicts.With("invalid").Inc()
		return resp, nil
	}
	link := evalx.QueryLinkingSQL(it.q.Gold, out.NativeSQL)
	resp.Recall, resp.Precision, resp.F1 = link.Recall, link.Precision, link.F1

	gold, err := s.goldResult(ctx, ba.b, it.q)
	if err != nil {
		return resp, errorf(500, "gold_failed", "gold query for %s#%d failed: %v", ba.b.Name, it.q.ID, err)
	}
	if pred := s.predResult(ctx, ba.b, out.NativeSQL); pred != nil {
		t0 := it.tr.Now()
		resp.ExecCorrect = evalx.CompareResults(gold, pred) == evalx.MatchYes
		it.tr.Span(trace.StageMatch, t0)
	}
	if resp.ExecCorrect {
		s.verdicts.With("correct").Inc()
	} else {
		s.verdicts.With("incorrect").Inc()
	}
	return resp, nil
}

// backendFor resolves a decode backend by name: configured backends first,
// then the synthetic family lazily by profile name. Synthetic backends
// carry only memoized deterministic state, so sharing across requests is
// race-safe (the parallel sweep engine relies on the same property).
func (s *Server) backendFor(name string) (backend.Backend, *apiError) {
	s.backendsMu.RLock()
	be, ok := s.backends[name]
	s.backendsMu.RUnlock()
	if ok {
		return be, nil
	}
	s.backendsMu.Lock()
	defer s.backendsMu.Unlock()
	if be, ok := s.backends[name]; ok {
		return be, nil
	}
	p, ok := llm.ProfileByName(name)
	if !ok {
		return nil, errorf(http.StatusNotFound, "unknown_model", "unknown model %q (have %s)",
			name, strings.Join(s.backendNamesLocked(), ", "))
	}
	be = backend.WrapModel(llm.New(p))
	s.backends[name] = be
	return be, nil
}

// backendNamesLocked lists the reachable backend names (configured plus
// synthetic profiles), sorted, for error messages. Callers hold backendsMu.
func (s *Server) backendNamesLocked() []string {
	seen := map[string]bool{}
	var out []string
	for name := range s.backends {
		seen[name] = true
		out = append(out, name)
	}
	for _, name := range experiments.ModelNames() {
		if !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// goldResult executes (and memoizes) a question's gold query. The execution
// is traced on first compute only; cache hits do no SQL work and record no
// span.
func (s *Server) goldResult(ctx context.Context, b *datasets.Built, q nlq.Question) (*sqldb.Result, error) {
	key := fmt.Sprintf("%s#%d", b.Name, q.ID)
	if v, ok := s.goldCache.Get(key); ok {
		return v, nil
	}
	res, err := sqlexec.ExecuteSQLCtx(ctx, b.Instance, q.Gold)
	if err != nil {
		return nil, err
	}
	s.goldCache.Put(key, res)
	return res, nil
}

// goldSQLResult executes an arbitrary caller-supplied gold query (the
// /v1/link path, where gold is not a benchmark question). Errors are
// reported to the caller, so results are not memoized through predCache's
// nil-on-error convention.
func (s *Server) goldSQLResult(ctx context.Context, b *datasets.Built, sql string) (*sqldb.Result, error) {
	key := b.Name + "\x00gold\x00" + sql
	if v, ok := s.goldCache.Get(key); ok {
		return v, nil
	}
	res, err := sqlexec.ExecuteSQLCtx(ctx, b.Instance, sql)
	if err != nil {
		return nil, err
	}
	s.goldCache.Put(key, res)
	return res, nil
}

// predResult executes (and memoizes) a predicted query; nil means the
// prediction does not execute, which scores as an execution miss.
func (s *Server) predResult(ctx context.Context, b *datasets.Built, sql string) *sqldb.Result {
	key := b.Name + "\x00" + sql
	return s.predCache.GetOrCompute(key, func() *sqldb.Result {
		res, err := sqlexec.ExecuteSQLCtx(ctx, b.Instance, sql)
		if err != nil {
			return nil
		}
		return res
	})
}

// newExecCaches builds the server's execution memos. Both are bounded:
// /v1/link accepts arbitrary caller SQL, so even the gold side has an
// unbounded key space in a long-running daemon.
func newExecCaches() (gold *memo.Cache[*sqldb.Result], pred *memo.Cache[*sqldb.Result]) {
	return memo.NewBounded[*sqldb.Result](1 << 13), memo.NewBounded[*sqldb.Result](1 << 14)
}
