package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/experiments"
)

// newTestServer builds a server with caching disabled so every request
// exercises the pipeline (cache behaviour has its own tests).
func newTestServer() *Server {
	return New(Config{CacheEntries: -1, RequestTimeout: 30 * time.Second})
}

// do issues one request straight through ServeHTTP.
func do(s *Server, method, path, body string, ctx context.Context) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// errCode decodes the uniform error body and returns its code.
func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var doc struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("error body is not the uniform shape: %v (%s)", err, rec.Body.String())
	}
	if doc.Error.Code == "" || doc.Error.Message == "" {
		t.Fatalf("error body missing code/message: %s", rec.Body.String())
	}
	return doc.Error.Code
}

// validBody returns a known-good request body per endpoint.
func validBody(endpoint string) string {
	switch endpoint {
	case "/v1/infer":
		return `{"db":"ASIS","model":"gpt-4o","variant":"regular","question_id":1}`
	case "/v1/classify":
		return `{"identifiers":["vegetation_height","tbl_emp","xqz"]}`
	case "/v1/modify":
		return `{"op":"expand","identifier":"veg_hght"}`
	case "/v1/link":
		return `{"gold_sql":"SELECT a FROM t","pred_sql":"SELECT a FROM t"}`
	}
	panic("unknown endpoint " + endpoint)
}

// unknownDBBody returns a body referencing a nonexistent database.
func unknownDBBody(endpoint string) string {
	switch endpoint {
	case "/v1/infer":
		return `{"db":"NOPE","model":"gpt-4o","question_id":1}`
	case "/v1/classify":
		return `{"db":"NOPE"}`
	case "/v1/modify":
		return `{"db":"NOPE","op":"abbreviate","identifier":"x"}`
	case "/v1/link":
		return `{"db":"NOPE","gold_sql":"SELECT a FROM t","pred_sql":"SELECT a FROM t"}`
	}
	panic("unknown endpoint " + endpoint)
}

var endpoints = []string{"/v1/infer", "/v1/classify", "/v1/modify", "/v1/link"}

// TestEndpointTable drives every endpoint through the shared failure grid:
// valid request, unknown db, malformed JSON, oversized body, canceled
// context, and deadline exceeded.
func TestEndpointTable(t *testing.T) {
	std := newTestServer()
	tinyBody := New(Config{CacheEntries: -1, MaxBodyBytes: 96, RequestTimeout: 30 * time.Second})
	tinyDeadline := New(Config{CacheEntries: -1, RequestTimeout: time.Nanosecond})
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	for _, ep := range endpoints {
		ep := ep
		t.Run(ep, func(t *testing.T) {
			cases := []struct {
				name       string
				srv        *Server
				body       string
				ctx        context.Context
				wantStatus int
				wantCode   string // "" means a 200 success
			}{
				{name: "valid", srv: std, body: validBody(ep), wantStatus: http.StatusOK},
				{name: "unknown db", srv: std, body: unknownDBBody(ep),
					wantStatus: http.StatusNotFound, wantCode: "unknown_db"},
				{name: "malformed json", srv: std, body: `{"db":`,
					wantStatus: http.StatusBadRequest, wantCode: "bad_json"},
				{name: "oversized body", srv: tinyBody,
					body:       `{"filler":"` + strings.Repeat("x", 200) + `"}`,
					wantStatus: http.StatusRequestEntityTooLarge, wantCode: "body_too_large"},
				{name: "canceled context", srv: std, body: validBody(ep), ctx: canceled,
					wantStatus: 499, wantCode: "canceled"},
				{name: "deadline exceeded", srv: tinyDeadline, body: validBody(ep),
					wantStatus: http.StatusGatewayTimeout, wantCode: "timeout"},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					rec := do(tc.srv, http.MethodPost, ep, tc.body, tc.ctx)
					if rec.Code != tc.wantStatus {
						t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
					}
					if tc.wantCode == "" {
						if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
							t.Errorf("Content-Type = %q", ct)
						}
						return
					}
					if code := errCode(t, rec); code != tc.wantCode {
						t.Errorf("error code = %q, want %q", code, tc.wantCode)
					}
				})
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer()
	for _, ep := range endpoints {
		rec := do(s, http.MethodGet, ep, "", nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s GET status = %d, want 405", ep, rec.Code)
		}
		if code := errCode(t, rec); code != "method_not_allowed" {
			t.Errorf("%s GET code = %q", ep, code)
		}
	}
}

func TestInferValidation(t *testing.T) {
	s := newTestServer()
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown model", `{"db":"ASIS","model":"gpt-99","question_id":1}`, 404, "unknown_model"},
		{"unknown question id", `{"db":"ASIS","question_id":100000}`, 404, "unknown_question"},
		{"unknown question text", `{"db":"ASIS","question":"what is the answer to everything?"}`, 404, "unknown_question"},
		{"missing question", `{"db":"ASIS"}`, 400, "missing_question"},
		{"bad variant", `{"db":"ASIS","variant":"super","question_id":1}`, 400, "bad_variant"},
		{"missing db", `{"question_id":1}`, 400, "missing_db"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(s, http.MethodPost, "/v1/infer", tc.body, nil)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			if code := errCode(t, rec); code != tc.code {
				t.Errorf("code = %q, want %q", code, tc.code)
			}
		})
	}
}

func TestInferByQuestionText(t *testing.T) {
	s := newTestServer()
	q := experiments.Questions("ASIS")[0]
	body, _ := json.Marshal(map[string]any{"db": "ASIS", "model": "gpt-4o", "variant": "native", "question": q.Text})
	rec := do(s, http.MethodPost, "/v1/infer", string(body), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.QuestionID != q.ID || resp.SQL == "" {
		t.Errorf("resp = %+v, want question %d with non-empty SQL", resp, q.ID)
	}
}

func TestClassifyWholeDatabase(t *testing.T) {
	s := newTestServer()
	rec := do(s, http.MethodPost, "/v1/classify", `{"db":"ATBI"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results for a whole schema")
	}
	sum := resp.Regular + resp.Low + resp.Least
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	if resp.Combined < 0 || resp.Combined > 1 {
		t.Errorf("combined = %f", resp.Combined)
	}
}

func TestModifyCrosswalkRoundTrip(t *testing.T) {
	s := newTestServer()
	// Pick a native identifier and abbreviate it via the crosswalk…
	rec := do(s, http.MethodPost, "/v1/classify", `{"db":"ATBI"}`, nil)
	var cls ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cls); err != nil {
		t.Fatal(err)
	}
	native := cls.Results[0].Identifier
	body, _ := json.Marshal(map[string]any{"db": "ATBI", "op": "abbreviate", "identifier": native, "target": "least"})
	rec = do(s, http.MethodPost, "/v1/modify", string(body), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("abbreviate status = %d: %s", rec.Code, rec.Body.String())
	}
	var abbr ModifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &abbr); err != nil {
		t.Fatal(err)
	}
	if abbr.Source != "crosswalk" || abbr.Identifier == "" {
		t.Fatalf("abbreviate = %+v", abbr)
	}
	// …then expand the abbreviated form back to the native identifier.
	body, _ = json.Marshal(map[string]any{"db": "ATBI", "op": "expand", "identifier": abbr.Identifier})
	rec = do(s, http.MethodPost, "/v1/modify", string(body), nil)
	var exp ModifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Identifier != native {
		t.Errorf("round trip: %q -> %q -> %q", native, abbr.Identifier, exp.Identifier)
	}

	// Unknown native identifiers 404.
	rec = do(s, http.MethodPost, "/v1/modify", `{"db":"ATBI","op":"abbreviate","identifier":"no_such_identifier"}`, nil)
	if rec.Code != http.StatusNotFound || errCode(t, rec) != "unknown_identifier" {
		t.Errorf("unknown identifier: status %d code %s", rec.Code, rec.Body.String())
	}

	// Bad op 400.
	rec = do(s, http.MethodPost, "/v1/modify", `{"op":"rewrite","identifier":"x"}`, nil)
	if rec.Code != http.StatusBadRequest || errCode(t, rec) != "bad_op" {
		t.Errorf("bad op: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestModifyMetadataGrounding(t *testing.T) {
	s := newTestServer()
	body := `{"op":"expand","identifier":"DtDs","metadata":{"DtDs":"the detection distance in meters from the observer"}}`
	rec := do(s, http.MethodPost, "/v1/modify", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ModifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "expander+metadata" {
		t.Errorf("source = %q", resp.Source)
	}
	got := strings.Join(resp.Words, " ")
	if got != "detection distance" {
		t.Errorf("expansion = %q, want \"detection distance\"", got)
	}
}

func TestLinkWithExecution(t *testing.T) {
	s := newTestServer()
	q := experiments.Questions("ASIS")[0]
	// Gold vs itself: perfect linking and a correct execution verdict.
	body, _ := json.Marshal(map[string]any{"db": "ASIS", "gold_sql": q.Gold, "pred_sql": q.Gold})
	rec := do(s, http.MethodPost, "/v1/link", string(body), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp LinkResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Valid || resp.F1 != 1 {
		t.Errorf("self-link = %+v", resp)
	}
	if resp.ExecCorrect == nil || !*resp.ExecCorrect {
		t.Errorf("self-link exec verdict = %v, want true", resp.ExecCorrect)
	}

	// Without a db there is no execution verdict.
	rec = do(s, http.MethodPost, "/v1/link", validBody("/v1/link"), nil)
	var noDB LinkResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &noDB); err != nil {
		t.Fatal(err)
	}
	if noDB.ExecCorrect != nil {
		t.Error("exec verdict should be absent without a db")
	}

	// Unparseable prediction: valid=false, zero scores, still 200.
	rec = do(s, http.MethodPost, "/v1/link", `{"gold_sql":"SELECT a FROM t","pred_sql":"not sql at all ((("}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("invalid-pred status = %d", rec.Code)
	}
	var invalid LinkResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &invalid); err != nil {
		t.Fatal(err)
	}
	if invalid.Valid {
		t.Error("unparseable prediction should be Valid=false")
	}
}

func TestResponseCache(t *testing.T) {
	s := New(Config{CacheEntries: 64, RequestTimeout: 30 * time.Second})
	body := validBody("/v1/infer")
	first := do(s, http.MethodPost, "/v1/infer", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first status = %d: %s", first.Code, first.Body.String())
	}
	if h := first.Header().Get("X-Snails-Cache"); h != "miss" {
		t.Errorf("first cache header = %q, want miss", h)
	}
	second := do(s, http.MethodPost, "/v1/infer", body, nil)
	if h := second.Header().Get("X-Snails-Cache"); h != "hit" {
		t.Errorf("second cache header = %q, want hit", h)
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cached response differs from computed response")
	}
	if s.metrics.cacheHits.Load() == 0 {
		t.Error("cache hit not counted")
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s := newTestServer()
	rec := do(s, http.MethodGet, "/healthz", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Databases != 9 {
		t.Errorf("health = %+v", h)
	}

	s.BeginShutdown()
	rec = do(s, http.MethodGet, "/healthz", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", rec.Code)
	}
	rec = do(s, http.MethodPost, "/v1/classify", validBody("/v1/classify"), nil)
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "draining" {
		t.Errorf("draining POST = %d %s", rec.Code, rec.Body.String())
	}
	s.Drain() // must not hang with nothing in flight
}

func TestMetricsz(t *testing.T) {
	s := newTestServer()
	for i := 0; i < 3; i++ {
		do(s, http.MethodPost, "/v1/link", validBody("/v1/link"), nil)
	}
	do(s, http.MethodPost, "/v1/link", `{"gold_sql":`, nil) // one error
	rec := do(s, http.MethodGet, "/metricsz", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metricsz = %d", rec.Code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	// Exactly the 4 workload requests: the /metricsz pull itself must not
	// count (it is observability traffic, reported separately).
	if m.RequestsTotal != 4 {
		t.Errorf("requests_total = %d, want 4", m.RequestsTotal)
	}
	if m.ObservabilityTotal != 1 {
		t.Errorf("observability_requests_total = %d, want 1", m.ObservabilityTotal)
	}
	if m.ErrorsTotal != 1 {
		t.Errorf("errors_total = %d, want 1", m.ErrorsTotal)
	}
	if m.RequestsByPath["/v1/link"] != 4 {
		t.Errorf("by_path[/v1/link] = %d, want 4", m.RequestsByPath["/v1/link"])
	}
	if m.LatencyP99Millis < m.LatencyP50Millis {
		t.Errorf("p99 %f < p50 %f", m.LatencyP99Millis, m.LatencyP50Millis)
	}
}
