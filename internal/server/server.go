// Package server is the snailsd serving layer: a long-running HTTP JSON API
// exposing the SNAILS artifacts — NL-to-SQL inference with evaluation
// (/v1/infer), identifier naturalness classification (/v1/classify),
// identifier abbreviation/expansion (/v1/modify), and schema-linking scoring
// (/v1/link) — plus /healthz and /metricsz observability endpoints.
//
// The serving pipeline is built for sustained concurrent traffic:
//
//   - a bounded worker pool executes inference batches, so load beyond
//     capacity queues briefly and then sheds with 503 instead of piling up
//     goroutines;
//   - concurrent /v1/infer requests against the same (db, variant) are
//     micro-batched for a few milliseconds so the schema-knowledge prompt is
//     rendered once per batch;
//   - a sharded clock-hand cache (internal/memo) memoizes whole responses
//     keyed by (endpoint, db, variant, body digest), and gold/predicted
//     query executions are memoized independently;
//   - every request runs under a deadline (504 on expiry) and shutdown
//     drains in-flight batches before the process exits.
//
// Everything the server computes is deterministic, so cached and batched
// responses are byte-identical to serial, uncached ones.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snails-bench/snails/internal/backend"
	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/experiments"
	"github.com/snails-bench/snails/internal/memo"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/obs"
	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/trace"
)

// Config parameterizes a Server. The zero value is production-ready; fields
// override individual knobs.
type Config struct {
	// RequestTimeout bounds each request's total latency (default 10s);
	// expiry answers 504.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB); larger answers 413.
	MaxBodyBytes int64
	// CacheEntries bounds the response cache (default 4096 entries, evicted
	// clock-hand); negative disables response caching.
	CacheEntries int
	// BatchWindow is the longest a lone /v1/infer request waits for
	// companions before its batch flushes (default 2ms). The adaptive flush
	// policy treats this as a ceiling: with idle workers and nothing pending
	// a request dispatches immediately, and under contention the window
	// scales with queue depth up to this bound.
	BatchWindow time.Duration
	// FixedBatchWindow disables the adaptive flush policy: every batch waits
	// the full BatchWindow (or fills to MaxBatch), the pre-adaptive
	// behavior. Tests that need guaranteed coalescing set it; production
	// servers should not.
	FixedBatchWindow bool
	// MaxBatch flushes a batch early once it holds this many requests
	// (default 16).
	MaxBatch int
	// Workers sizes the inference worker pool (default GOMAXPROCS).
	Workers int
	// TraceBuffer bounds the in-memory ring of finished request traces
	// served at /debugz/traces (default 256 traces; negative disables
	// tracing entirely, including the per-stage histograms in /metricsz).
	TraceBuffer int
	// CanonicalLogEvery samples the canonical per-request wide log line
	// under load: every request emits it at debug, and every Nth completed
	// request is promoted to info, so a production log level still sees a
	// steady, representative trickle (default 256; negative disables the
	// promotion and leaves every line at debug).
	CanonicalLogEvery int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default; snailsd's -pprof flag sets it).
	EnablePprof bool
	// ShardID, when non-empty, is stamped on every response as the
	// X-Snails-Shard header. Cluster workers set it so the byte-identity
	// guarantee can be checked modulo shard attribution (bodies identical,
	// only the header differs).
	ShardID string
	// Backends pre-registers decode backends by name (config-driven
	// deployments: wire backends, renamed synthetics). Synthetic profiles
	// not listed here remain reachable by profile name — they are built
	// lazily on first use, preserving the classic /v1/infer surface.
	Backends []backend.Backend
	// Logger receives the server's structured logs (access records at debug,
	// 5xx responses at warn). Defaults to slog.Default(), so a binary that
	// installs an obs.NewLogger as the process default gets request-scoped
	// attributes on every record without further wiring.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	if c.CanonicalLogEvery == 0 {
		c.CanonicalLogEvery = 256
	}
	return c
}

// cachedResponse is one memoized response body.
type cachedResponse struct {
	status int
	body   []byte
}

// Server implements http.Handler for the snailsd API.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	logger  *slog.Logger

	// reg is this server's metrics registry, scraped at GET /metrics. It is
	// per-Server (not process-global) so tests building many Servers never
	// collide on family names; process-wide counters (sqlexec, sweep
	// outcomes, runtime) are exposed through scrape-time callbacks.
	reg      *obs.Registry
	coalesce *obs.CounterVec // flushed batch sizes by coarse class
	verdicts *obs.CounterVec // /v1/infer evaluation verdicts

	cache *memo.Cache[cachedResponse] // nil when caching is disabled
	// flight coalesces concurrent identical cache misses: the leader runs
	// the pipeline, followers receive its bytes through the flight (nil when
	// caching is disabled — the flight shares exactly what the cache would
	// have served a moment later, so the two are enabled together).
	flight    *memo.Group[cachedResponse]
	goldCache *memo.Cache[*sqldb.Result]
	predCache *memo.Cache[*sqldb.Result]

	// traces collects finished request traces and per-stage histograms;
	// nil when tracing is disabled (every hook no-ops on nil).
	traces *trace.Collector

	pool    *pool
	batcher *batcher

	// backendsMu guards the decode-backend registry: configured backends
	// at construction, synthetic profiles lazily on first request. Reads
	// vastly outnumber writes (every /v1/infer resolves a backend), so the
	// steady-state lookup takes only the read lock.
	backendsMu sync.RWMutex
	backends   map[string]backend.Backend

	// canonSeq numbers completed requests for canonical-log sampling.
	canonSeq atomic.Uint64

	clfOnce    sync.Once
	classifier *naturalness.SoftmaxClassifier

	draining  chan struct{} // closed when shutdown begins
	drainOnce sync.Once
}

// New constructs a Server. Databases are built lazily on first touch (or
// eagerly via Preload); the classifier trains on first /v1/classify.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		metrics:  newMetrics(),
		logger:   cfg.Logger,
		backends: map[string]backend.Backend{},
		draining: make(chan struct{}),
	}
	for _, be := range cfg.Backends {
		s.backends[be.Name()] = be
	}
	// Any injected logger is routed through the obs context middleware so
	// request-scoped attrs (trace_id, db, variant) reach its records; loggers
	// built by obs.NewLogger pass through unchanged.
	s.logger = obs.ContextLogger(s.logger)
	if cfg.CacheEntries > 0 {
		s.cache = memo.NewBounded[cachedResponse](cfg.CacheEntries)
		s.flight = &memo.Group[cachedResponse]{}
	}
	if cfg.TraceBuffer > 0 {
		s.traces = trace.NewCollector(cfg.TraceBuffer)
		// Attribute this process's span groups in stitched cluster traces.
		if cfg.ShardID != "" {
			s.traces.SetProcess(cfg.ShardID)
		} else {
			s.traces.SetProcess("server")
		}
	}
	s.goldCache, s.predCache = newExecCaches()
	s.pool = newPool(cfg.Workers, 4*cfg.Workers+64)
	s.batcher = newBatcher(s, cfg.BatchWindow, cfg.MaxBatch, cfg.FixedBatchWindow)
	s.registerMetrics()

	s.mux.HandleFunc("/v1/infer", s.post("/v1/infer", s.handleInfer))
	s.mux.HandleFunc("/v1/classify", s.post("/v1/classify", s.handleClassify))
	s.mux.HandleFunc("/v1/modify", s.post("/v1/modify", s.handleModify))
	s.mux.HandleFunc("/v1/link", s.post("/v1/link", s.handleLink))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/debugz/traces", s.handleDebugTraces)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Preload builds every benchmark database, trains the classifier, and
// constructs every synthetic decode backend so the first request pays no
// cold-start cost (model construction is the single largest lazy build —
// ~100 ms for the richest profile — and would otherwise serialize the
// first burst of traffic behind the registry lock).
func (s *Server) Preload() {
	for _, b := range datasets.All() {
		experiments.Questions(b.Name)
	}
	s.trainedClassifier()
	for _, name := range experiments.ModelNames() {
		s.backendFor(name)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ShardID != "" {
		w.Header().Set("X-Snails-Shard", s.cfg.ShardID)
	}
	s.mux.ServeHTTP(w, r)
}

// BeginShutdown flips /healthz to draining (so load balancers stop routing
// here) and rejects new API requests with 503. Safe to call more than once.
func (s *Server) BeginShutdown() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Drain flushes pending micro-batches, waits for in-flight work, and stops
// the worker pool. Call after the HTTP listener has stopped accepting
// connections (http.Server.Shutdown) to finish a graceful exit.
func (s *Server) Drain() {
	s.BeginShutdown()
	s.batcher.drain()
	s.pool.close()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Sentinel API errors shared across handlers.
var (
	errOverloaded  = errorf(http.StatusServiceUnavailable, "overloaded", "server is saturated; retry with backoff")
	errDrainingAPI = errorf(http.StatusServiceUnavailable, "draining", "server is shutting down")
)

// handlerFunc is one POST endpoint's logic: it receives the decoded request
// and returns a response document or an API error.
type handlerFunc func(ctx context.Context, req *apiRequest) (any, *apiError)

// statusWriter records the status code a handler writes so the access log
// and metrics can see it after the fact.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// post wraps an endpoint with the shared serving concerns: method check,
// body cap, request deadline, response cache, metrics, access logging, and
// uniform error rendering.
func (s *Server) post(endpoint string, h handlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(1)
		s.metrics.countEndpoint(endpoint)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		w := &statusWriter{ResponseWriter: rw, status: http.StatusOK}
		logCtx := r.Context()
		var (
			tr           *trace.Trace
			cacheVerdict = "off"
			model        string
			matchVerdict string
		)
		defer func() {
			d := time.Since(start)
			s.metrics.lat.record(d)
			s.metrics.dur.Observe(d)
			// The canonical wide line: one record per completed request with
			// everything needed to debug it in isolation (trace_id, db, and
			// variant ride in as context attrs). It goes out at debug so
			// sustained traffic costs one disabled-level check per request;
			// server faults surface at warn, and every CanonicalLogEvery-th
			// request is promoted to info — the sampled-under-load trickle
			// that keeps a production log level representative without the
			// full firehose.
			lvl := slog.LevelDebug
			if w.status >= http.StatusInternalServerError {
				lvl = slog.LevelWarn
			} else if every := s.cfg.CanonicalLogEvery; every > 0 && s.canonSeq.Add(1)%uint64(every) == 0 {
				lvl = slog.LevelInfo
			}
			if !s.logger.Enabled(logCtx, lvl) {
				return
			}
			attrs := make([]slog.Attr, 0, 8)
			attrs = append(attrs,
				slog.String("path", endpoint),
				slog.Int("status", w.status),
				slog.Float64("dur_ms", float64(d)/float64(time.Millisecond)),
				slog.String("cache", cacheVerdict))
			if s.cfg.ShardID != "" {
				attrs = append(attrs, slog.String("shard", s.cfg.ShardID))
			}
			if model != "" {
				attrs = append(attrs, slog.String("backend", model))
			}
			if matchVerdict != "" {
				attrs = append(attrs, slog.String("match", matchVerdict))
			}
			if tr != nil {
				attrs = append(attrs, slog.String("stages_us", stageMicros(tr)))
			}
			s.logger.LogAttrs(logCtx, lvl, "request served", attrs...)
		}()

		if r.Method != http.MethodPost {
			s.writeError(w, errorf(http.StatusMethodNotAllowed, "method_not_allowed", "%s requires POST", endpoint))
			return
		}
		if s.isDraining() {
			s.writeError(w, errDrainingAPI)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		var req apiRequest
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeError(w, errorf(http.StatusRequestEntityTooLarge, "body_too_large",
					"request body exceeds %d bytes", tooBig.Limit))
				return
			}
			s.writeError(w, errorf(http.StatusBadRequest, "bad_json", "malformed request body: %v", err))
			return
		}
		if dec.More() {
			s.writeError(w, errorf(http.StatusBadRequest, "bad_json", "trailing data after JSON body"))
			return
		}

		// Request-scoped log attributes apply to every record below — the
		// canonical completion line included, so cache hits still log their
		// db/variant.
		var attrs []slog.Attr
		if req.DB != "" {
			attrs = append(attrs, slog.String("db", req.DB))
		}
		if req.Variant != "" {
			attrs = append(attrs, slog.String("variant", req.Variant))
		}
		if len(attrs) > 0 {
			ctx = obs.ContextAttrs(ctx, attrs...)
			logCtx = ctx
		}

		key := s.cacheKey(endpoint, &req)
		if s.cache != nil {
			if hit, ok := s.cache.Get(key); ok {
				s.metrics.cacheHits.Add(1)
				cacheVerdict = "hit"
				w.Header().Set("X-Snails-Cache", "hit")
				s.writeJSON(w, hit.status, hit.body)
				return
			}
			s.metrics.cacheMiss.Add(1)
			cacheVerdict = "miss"
			w.Header().Set("X-Snails-Cache", "miss")
		}

		// A request that arrives already expired (or canceled) never reaches
		// the pipeline.
		if err := ctx.Err(); err != nil {
			s.writeError(w, ctxError(err))
			return
		}

		// compute runs the full pipeline for this request: trace, handler,
		// encode, cache fill. It is the singleflight leader's unit of work;
		// ok=false (handler or encode error) tells parked followers the result
		// is not shareable — one of them re-runs it as the new leader, so a
		// canceled or failed leader never poisons the whole flight. Error
		// details land in leaderErr, which only the leader itself reads.
		//
		// Tracing covers the computed path only: cache hits and coalesced
		// followers replay bytes and would produce empty traces. A propagated
		// X-Snails-Trace header (the cluster router relaying this request) is
		// adopted so this process's spans stitch under the router's trace;
		// otherwise a fresh wire ID is minted. Either way the ID is echoed on
		// the response and stamped into the log attributes, and the trace
		// rides the context so pipeline layers record their stages onto it.
		var leaderErr *apiError
		compute := func() (cachedResponse, bool) {
			if remoteID, ok := trace.Extract(r.Header); ok {
				tr = s.traces.StartRemote(endpoint, remoteID)
			} else {
				tr = s.traces.Start(endpoint)
			}
			cctx := ctx
			if tr != nil {
				cctx = trace.NewContext(cctx, tr)
				tid := trace.FormatID(tr.TraceID)
				w.Header().Set(trace.Header, tid)
				cctx = obs.ContextAttrs(cctx,
					slog.Uint64("request_id", tr.ID),
					slog.String("trace_id", tid))
				logCtx = cctx
			}
			doc, apiErr := h(cctx, &req)
			s.traces.Finish(tr)
			if ir, ok := doc.(InferResponse); ok {
				model = ir.Model
				switch {
				case !ir.Valid:
					matchVerdict = "invalid"
				case ir.ExecCorrect:
					matchVerdict = "correct"
				default:
					matchVerdict = "incorrect"
				}
			}
			if apiErr != nil {
				leaderErr = apiErr
				return cachedResponse{}, false
			}
			body, err := encodeBody(doc)
			if err != nil {
				leaderErr = errorf(http.StatusInternalServerError, "encode_failed", "encoding response: %v", err)
				return cachedResponse{}, false
			}
			res := cachedResponse{status: http.StatusOK, body: body}
			if s.cache != nil {
				s.cache.Put(key, res)
			}
			return res, true
		}

		if s.flight == nil {
			res, ok := compute()
			if !ok {
				s.writeError(w, leaderErr)
				return
			}
			s.writeJSON(w, res.status, res.body)
			return
		}
		res, ok, shared, err := s.flight.Do(ctx, key, compute)
		if err != nil {
			// This request's own context ended while parked behind a leader.
			s.writeError(w, ctxError(err))
			return
		}
		if !ok {
			// Only a leader sees ok=false (followers hand off and re-lead), so
			// leaderErr is this goroutine's own handler error.
			s.writeError(w, leaderErr)
			return
		}
		if shared {
			s.metrics.coalesced.Add(1)
			cacheVerdict = "coalesced"
			w.Header().Set("X-Snails-Cache", "coalesced")
		}
		s.writeJSON(w, res.status, res.body)
	}
}

// stageMicros renders a finished trace's spans as a compact
// "stage[tag]:micros" list for the canonical log line, e.g.
// "queue:41 prompt_render:220 llm_decode:8114 backend_attempt[gpt-4o#0]:8010".
// Only called when the record's level is enabled, so the string build is off
// the disabled-logging hot path.
func stageMicros(tr *trace.Trace) string {
	var b strings.Builder
	for i, sp := range tr.Spans() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Stage.String())
		if sp.Tag != "" {
			b.WriteByte('[')
			b.WriteString(sp.Tag)
			b.WriteByte(']')
		}
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(sp.Dur/time.Microsecond), 10))
	}
	return b.String()
}

// cacheKey derives the response-cache key from the endpoint, the request's
// addressing fields, and a digest of its full canonical encoding.
func (s *Server) cacheKey(endpoint string, req *apiRequest) string {
	canonical, _ := json.Marshal(req)
	sum := sha256.Sum256(canonical)
	return fmt.Sprintf("%s|%s|%s|%x", endpoint, req.DB, req.Variant, sum[:16])
}

// ctxError maps a context error to its HTTP rendering: 504 for an expired
// deadline, 499 (nginx's client-closed-request) for a canceled caller.
func ctxError(err error) *apiError {
	if errors.Is(err, context.DeadlineExceeded) {
		return errorf(http.StatusGatewayTimeout, "timeout", "request deadline exceeded")
	}
	return &apiError{Status: 499, Code: "canceled", Message: "client canceled the request"}
}

// encPool recycles JSON encode buffers across requests so the hot path's
// only per-response allocation is the owned copy handed to the cache and
// the singleflight (whose lifetime outlives the pooled buffer).
var encPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBody marshals doc through a pooled buffer and returns an owned
// slice that already carries the trailing newline the API emits —
// json.Encoder's output is exactly json.Marshal's plus '\n', so cached,
// coalesced, and direct responses stay byte-identical to the historical
// append(body, '\n') framing without re-copying the body per write.
func encodeBody(doc any) ([]byte, error) {
	buf := encPool.Get().(*bytes.Buffer)
	defer encPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(doc); err != nil {
		return nil, err
	}
	return bytes.Clone(buf.Bytes()), nil
}

// writeDoc marshals and writes a response document (used by the GET
// observability endpoints, which bypass the POST wrapper).
func (s *Server) writeDoc(w http.ResponseWriter, status int, doc any) {
	body, err := encodeBody(doc)
	if err != nil {
		s.writeError(w, errorf(http.StatusInternalServerError, "encode_failed", "encoding response: %v", err))
		return
	}
	s.writeJSON(w, status, body)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if n := len(body); n > 0 && body[n-1] == '\n' {
		// Already newline-framed (the pooled encode path): write as-is
		// instead of the old append(body, '\n'), which copied the whole
		// body on every response — cache hits included.
		w.Write(body)
		return
	}
	w.Write(body)
	io.WriteString(w, "\n")
}

func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	s.metrics.errors.Add(1)
	if e.Status == http.StatusGatewayTimeout {
		s.metrics.timeouts.Add(1)
	}
	body, _ := json.Marshal(struct {
		Error *apiError `json:"error"`
	}{e})
	s.writeJSON(w, e.Status, body)
}

// trainedClassifier lazily trains (once) the paper's production softmax
// classifier for /v1/classify.
func (s *Server) trainedClassifier() *naturalness.SoftmaxClassifier {
	s.clfOnce.Do(func() { s.classifier = experiments.TrainedClassifier() })
	return s.classifier
}
