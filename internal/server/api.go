package server

import (
	"fmt"
	"strings"

	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/schema"
	"github.com/snails-bench/snails/internal/trace"
)

// apiRequest is the union of every POST endpoint's request body. Handlers
// validate the subset of fields they use; unknown fields are ignored so
// clients can evolve ahead of the server.
type apiRequest struct {
	// Shared addressing fields (cache keys include DB and Variant).
	DB      string `json:"db,omitempty"`
	Variant string `json:"variant,omitempty"`

	// /v1/infer
	Model      string `json:"model,omitempty"`
	QuestionID int    `json:"question_id,omitempty"`
	Question   string `json:"question,omitempty"`

	// /v1/classify
	Identifier  string   `json:"identifier,omitempty"`
	Identifiers []string `json:"identifiers,omitempty"`

	// /v1/modify
	Op       string            `json:"op,omitempty"`     // "abbreviate" | "expand"
	Words    []string          `json:"words,omitempty"`  // abbreviate input
	Target   string            `json:"target,omitempty"` // naturalness level
	Metadata map[string]string `json:"metadata,omitempty"`

	// /v1/link
	GoldSQL string `json:"gold_sql,omitempty"`
	PredSQL string `json:"pred_sql,omitempty"`
}

// apiError is the uniform error body: {"error":{"code":...,"message":...}}.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

func errorf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// InferResponse is one NL-to-SQL round served by /v1/infer.
type InferResponse struct {
	DB         string `json:"db"`
	Model      string `json:"model"`
	Variant    string `json:"variant"`
	QuestionID int    `json:"question_id"`
	Question   string `json:"question"`

	// The response body deliberately carries no batching/caching metadata:
	// identical requests must produce byte-identical bodies whether served
	// solo, batched, or from cache (the determinism guarantee). Batch and
	// cache behaviour is observable via /metricsz and the X-Snails-Cache
	// header instead.
	SQL         string  `json:"sql"`
	NativeSQL   string  `json:"native_sql"`
	Valid       bool    `json:"valid"`
	ExecCorrect bool    `json:"exec_correct"`
	Recall      float64 `json:"recall"`
	Precision   float64 `json:"precision"`
	F1          float64 `json:"f1"`
}

// ClassifiedIdentifier is one /v1/classify verdict.
type ClassifiedIdentifier struct {
	Identifier string `json:"identifier"`
	Level      string `json:"level"` // "Regular" | "Low" | "Least"
	Label      string `json:"label"` // "N1" | "N2" | "N3"
}

// ClassifyResponse reports naturalness for ad-hoc identifiers or a whole
// benchmark schema.
type ClassifyResponse struct {
	DB      string                 `json:"db,omitempty"`
	Results []ClassifiedIdentifier `json:"results"`
	// Schema-level aggregates (populated when classifying a db or more than
	// one identifier).
	Regular  float64 `json:"regular_fraction"`
	Low      float64 `json:"low_fraction"`
	Least    float64 `json:"least_fraction"`
	Combined float64 `json:"combined_naturalness"`
}

// ModifyResponse is the /v1/modify result for either direction.
type ModifyResponse struct {
	Op         string   `json:"op"`
	Identifier string   `json:"identifier,omitempty"` // abbreviate output / expand input
	Words      []string `json:"words,omitempty"`      // expand output
	// Grounded reports whether every token expanded cleanly (dictionary or
	// metadata hit); false means at least one token was kept as-is.
	Grounded bool `json:"grounded"`
	// Source names the mechanism used: "crosswalk", "abbreviator",
	// "expander", or "expander+metadata".
	Source string `json:"source"`
}

// LinkResponse is the /v1/link schema-linking verdict.
type LinkResponse struct {
	Valid     bool    `json:"valid"`
	Recall    float64 `json:"recall"`
	Precision float64 `json:"precision"`
	F1        float64 `json:"f1"`
	// ExecCorrect is evaluated only when a db is supplied (relaxed execution
	// match of pred vs gold on that instance).
	ExecCorrect *bool `json:"exec_correct,omitempty"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok" | "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	Databases     int     `json:"databases"`
}

// TracesResponse is the /debugz/traces body: the buffered request traces,
// oldest first (or slowest first when requested). With ?id= the response is
// a single-trace lookup — TraceID echoes the queried wire ID and Traces
// holds only views carrying it (on the router, stitched across processes).
type TracesResponse struct {
	Traces  []trace.View `json:"traces"`
	Slowest bool         `json:"slowest"`
	TraceID string       `json:"trace_id,omitempty"`
}

// parseVariant maps the wire form ("native", "regular", "low", "least",
// case-insensitive; empty defaults to native) to a schema variant.
func parseVariant(s string) (schema.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "native":
		return schema.VariantNative, nil
	case "regular", "n1":
		return schema.VariantRegular, nil
	case "low", "n2":
		return schema.VariantLow, nil
	case "least", "n3":
		return schema.VariantLeast, nil
	}
	return schema.VariantNative, fmt.Errorf("unknown variant %q (want native, regular, low, or least)", s)
}

// parseTarget maps a /v1/modify target to a naturalness level; empty
// defaults to Least for abbreviation (the paper's hardest setting) and is
// ignored for expansion.
func parseTarget(s string, fallback naturalness.Level) (naturalness.Level, error) {
	if strings.TrimSpace(s) == "" {
		return fallback, nil
	}
	return naturalness.ParseLevel(s)
}
