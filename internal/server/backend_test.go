package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/snails-bench/snails/internal/backend"
)

// newBackendTestServer builds a server with a configured mock wire backend
// alongside the lazily-registered synthetic family.
func newBackendTestServer(t *testing.T, opts backend.MockOptions) *Server {
	t.Helper()
	mock, err := backend.NewMockServer(opts)
	if err != nil {
		t.Fatalf("mock server: %v", err)
	}
	t.Cleanup(func() { mock.Close() })
	be, err := backend.NewHTTP(backend.HTTPOptions{
		Name: "wire", BaseURL: mock.URL, Model: "mock-model",
		MaxRetries: 2, Backoff: time.Millisecond, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	return New(Config{
		CacheEntries:   -1,
		RequestTimeout: 30 * time.Second,
		Backends:       []backend.Backend{be},
	})
}

// TestInferConfiguredHTTPBackend routes /v1/infer through a configured wire
// backend: the response must carry the backend's name and the mock's
// generation, and synthetic profiles must stay reachable next to it.
func TestInferConfiguredHTTPBackend(t *testing.T) {
	s := newBackendTestServer(t, backend.MockOptions{})

	rec := do(s, http.MethodPost, "/v1/infer",
		`{"db":"ASIS","model":"wire","variant":"native","question_id":1}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp InferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Model != "wire" {
		t.Fatalf("Model = %q, want the configured backend id", resp.Model)
	}
	if resp.SQL == "" {
		t.Fatal("wire backend returned empty SQL")
	}

	// The synthetic family still answers by profile name.
	rec = do(s, http.MethodPost, "/v1/infer",
		`{"db":"ASIS","model":"gpt-4o","variant":"native","question_id":1}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("synthetic fallback status = %d: %s", rec.Code, rec.Body.String())
	}

	// Unknown names 404 and list the configured backend too.
	rec = do(s, http.MethodPost, "/v1/infer",
		`{"db":"ASIS","model":"gpt-99","question_id":1}`, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown model status = %d", rec.Code)
	}
	if body := rec.Body.String(); !jsonContains(body, "wire") {
		t.Fatalf("unknown-model error does not list the configured backend: %s", body)
	}
}

// TestInferBackendFailureIs502 maps an exhausted wire backend to a 502 with
// the backend_failed code, not a hung or 500 response.
func TestInferBackendFailureIs502(t *testing.T) {
	s := newBackendTestServer(t, backend.MockOptions{FailStatus: 500, FailCount: 1 << 30})
	rec := do(s, http.MethodPost, "/v1/infer",
		`{"db":"ASIS","model":"wire","question_id":1}`, nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502: %s", rec.Code, rec.Body.String())
	}
	if code := errCode(t, rec); code != "backend_failed" {
		t.Fatalf("code = %q, want backend_failed", code)
	}
}

// TestBatcherKeysPerBackend checks batches never mix backends: concurrent
// same-(db,variant) requests against two backends land in separate batches.
func TestBatcherKeysPerBackend(t *testing.T) {
	s := newBackendTestServer(t, backend.MockOptions{})
	// A long window would batch every request below together if keys
	// collided across backends.
	s.batcher.window = 50 * time.Millisecond

	const n = 4
	results := make(chan string, 2*n)
	for i := 0; i < n; i++ {
		for _, model := range []string{"wire", "gpt-4o"} {
			go func(model string, qid int) {
				rec := do(s, http.MethodPost, "/v1/infer",
					fmt.Sprintf(`{"db":"ASIS","model":%q,"variant":"native","question_id":%d}`, model, qid), nil)
				if rec.Code != http.StatusOK {
					results <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var resp InferResponse
				json.Unmarshal(rec.Body.Bytes(), &resp)
				results <- resp.Model
			}(model, i+1)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 2*n; i++ {
		counts[<-results]++
	}
	if counts["wire"] != n || counts["gpt-4o"] != n {
		t.Fatalf("per-backend responses = %v, want %d each for wire and gpt-4o", counts, n)
	}
}

// jsonContains reports whether a JSON error body mentions the token.
func jsonContains(body, token string) bool {
	var doc struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return false
	}
	return strings.Contains(doc.Error.Message, token)
}
