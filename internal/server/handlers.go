package server

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"github.com/snails-bench/snails/internal/datasets"
	"github.com/snails-bench/snails/internal/evalx"
	"github.com/snails-bench/snails/internal/experiments"
	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/modifier"
	"github.com/snails-bench/snails/internal/naturalness"
	"github.com/snails-bench/snails/internal/nlq"
	"github.com/snails-bench/snails/internal/trace"
)

// lookupDB resolves a request's db field, answering 404 with the known names
// on a miss and 400 when the field is required but absent.
func lookupDB(name string, required bool) (*datasets.Built, *apiError) {
	if strings.TrimSpace(name) == "" {
		if !required {
			return nil, nil
		}
		return nil, errorf(http.StatusBadRequest, "missing_db", "field \"db\" is required")
	}
	b, ok := datasets.Get(name)
	if !ok {
		return nil, errorf(http.StatusNotFound, "unknown_db", "unknown database %q (have %s)",
			name, strings.Join(datasets.Names, ", "))
	}
	return b, nil
}

// findQuestion resolves a benchmark question by id or exact text.
func findQuestion(b *datasets.Built, req *apiRequest) (nlq.Question, *apiError) {
	qs := experiments.Questions(b.Name)
	if req.QuestionID > 0 {
		for _, q := range qs {
			if q.ID == req.QuestionID {
				return q, nil
			}
		}
		return nlq.Question{}, errorf(http.StatusNotFound, "unknown_question",
			"%s has no question #%d (1..%d)", b.Name, req.QuestionID, len(qs))
	}
	text := strings.TrimSpace(req.Question)
	if text == "" {
		return nlq.Question{}, errorf(http.StatusBadRequest, "missing_question",
			"provide \"question_id\" or \"question\"")
	}
	for _, q := range qs {
		if strings.EqualFold(strings.TrimSpace(q.Text), text) {
			return q, nil
		}
	}
	return nlq.Question{}, errorf(http.StatusNotFound, "unknown_question",
		"%s has no benchmark question matching %q (inference needs a gold query to evaluate against)", b.Name, text)
}

// handleInfer serves one NL-to-SQL round with full evaluation. The request
// is queued into the (db, variant) micro-batch and the handler parks on the
// outcome channel under the request deadline.
func (s *Server) handleInfer(ctx context.Context, req *apiRequest) (any, *apiError) {
	b, apiErr := lookupDB(req.DB, true)
	if apiErr != nil {
		return nil, apiErr
	}
	model := req.Model
	if model == "" {
		model = "gpt-4o"
	}
	be, apiErr := s.backendFor(model)
	if apiErr != nil {
		return nil, apiErr
	}
	v, err := parseVariant(req.Variant)
	if err != nil {
		return nil, errorf(http.StatusBadRequest, "bad_variant", "%v", err)
	}
	q, apiErr := findQuestion(b, req)
	if apiErr != nil {
		return nil, apiErr
	}

	tr := trace.FromContext(ctx)
	tr.SetRequest(b.Name, v.String(), q.ID)
	out := s.batcher.enqueue(b, v, q, be, tr)
	select {
	case o := <-out:
		if o.err != nil {
			return nil, o.err
		}
		return o.resp, nil
	case <-ctx.Done():
		// The batch keeps running (its result still warms the caches); only
		// this waiter gives up.
		return nil, ctxError(ctx.Err())
	}
}

// handleClassify scores identifier naturalness: either ad-hoc identifiers
// from the request or a whole benchmark schema when db is set.
func (s *Server) handleClassify(ctx context.Context, req *apiRequest) (any, *apiError) {
	b, apiErr := lookupDB(req.DB, false)
	if apiErr != nil {
		return nil, apiErr
	}
	var ids []string
	switch {
	case b != nil:
		ids = b.Schema.UniqueIdentifiers()
	case len(req.Identifiers) > 0:
		ids = req.Identifiers
	case strings.TrimSpace(req.Identifier) != "":
		ids = []string{req.Identifier}
	default:
		return nil, errorf(http.StatusBadRequest, "missing_identifier",
			"provide \"identifier\", \"identifiers\", or \"db\"")
	}

	clf := s.trainedClassifier()
	resp := ClassifyResponse{DB: req.DB, Results: make([]ClassifiedIdentifier, 0, len(ids))}
	levels := make([]naturalness.Level, 0, len(ids))
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
		l := clf.Classify(id)
		levels = append(levels, l)
		resp.Results = append(resp.Results, ClassifiedIdentifier{
			Identifier: id, Level: l.String(), Label: l.Label(),
		})
	}
	resp.Regular, resp.Low, resp.Least = naturalness.Proportions(levels)
	resp.Combined = naturalness.CombinedOf(levels)
	return resp, nil
}

// handleModify lowers or raises identifier naturalness. With a db the
// crosswalk provides the exact benchmark mapping; without one the generic
// abbreviator / metadata-RAG expander run on the request's own inputs.
func (s *Server) handleModify(ctx context.Context, req *apiRequest) (any, *apiError) {
	b, apiErr := lookupDB(req.DB, false)
	if apiErr != nil {
		return nil, apiErr
	}
	op := strings.ToLower(strings.TrimSpace(req.Op))
	switch op {
	case "abbreviate":
		target, err := parseTarget(req.Target, naturalness.Least)
		if err != nil {
			return nil, errorf(http.StatusBadRequest, "bad_target", "%v", err)
		}
		if b != nil {
			native := strings.TrimSpace(req.Identifier)
			if native == "" {
				return nil, errorf(http.StatusBadRequest, "missing_identifier",
					"crosswalk abbreviation needs \"identifier\" (a native identifier of %s)", b.Name)
			}
			if _, ok := b.Schema.Crosswalk.Lookup(native); !ok {
				return nil, errorf(http.StatusNotFound, "unknown_identifier",
					"%q is not a native identifier of %s", native, b.Name)
			}
			return ModifyResponse{
				Op: op, Identifier: b.Schema.Crosswalk.ToLevel(native, target),
				Grounded: true, Source: "crosswalk",
			}, nil
		}
		if len(req.Words) == 0 {
			return nil, errorf(http.StatusBadRequest, "missing_words",
				"abbreviation needs \"words\" (the concept as lower-case full words) or a \"db\" + \"identifier\"")
		}
		return ModifyResponse{
			Op: op, Identifier: modifier.Abbreviate(req.Words, target, ident.CaseSnake),
			Grounded: true, Source: "abbreviator",
		}, nil

	case "expand":
		id := strings.TrimSpace(req.Identifier)
		if id == "" {
			return nil, errorf(http.StatusBadRequest, "missing_identifier", "expansion needs \"identifier\"")
		}
		if b != nil {
			// Try the crosswalk at each modified level, most-abbreviated
			// first: a Least/Low/Regular form maps straight back to native.
			for _, l := range []naturalness.Level{naturalness.Least, naturalness.Low, naturalness.Regular} {
				if native := b.Schema.Crosswalk.ToNative(id, l); native != id {
					return ModifyResponse{Op: op, Identifier: native,
						Words: ident.Words(native), Grounded: true, Source: "crosswalk"}, nil
				}
			}
		}
		e := &modifier.Expander{}
		source := "expander"
		if len(req.Metadata) > 0 {
			idx := modifier.NewMetadataIndex()
			for k, desc := range req.Metadata {
				idx.Add(k, desc)
			}
			e.Metadata = idx
			source = "expander+metadata"
		}
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
		words, ok := e.Expand(id)
		return ModifyResponse{Op: op, Identifier: id, Words: words, Grounded: ok, Source: source}, nil

	default:
		return nil, errorf(http.StatusBadRequest, "bad_op",
			"unknown op %q (want \"abbreviate\" or \"expand\")", req.Op)
	}
}

// handleLink scores a candidate query's schema linking against a gold query;
// with a db it also reports the relaxed execution-match verdict.
func (s *Server) handleLink(ctx context.Context, req *apiRequest) (any, *apiError) {
	b, apiErr := lookupDB(req.DB, false)
	if apiErr != nil {
		return nil, apiErr
	}
	if strings.TrimSpace(req.GoldSQL) == "" || strings.TrimSpace(req.PredSQL) == "" {
		return nil, errorf(http.StatusBadRequest, "missing_sql", "both \"gold_sql\" and \"pred_sql\" are required")
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxError(err)
	}
	link := evalx.QueryLinkingSQL(req.GoldSQL, req.PredSQL)
	resp := LinkResponse{Valid: link.Valid, Recall: link.Recall, Precision: link.Precision, F1: link.F1}
	if b != nil && link.Valid {
		gold, err := s.goldSQLResult(ctx, b, req.GoldSQL)
		if err != nil {
			return nil, errorf(http.StatusBadRequest, "gold_failed", "gold query failed on %s: %v", b.Name, err)
		}
		correct := false
		if pred := s.predResult(ctx, b, req.PredSQL); pred != nil {
			tr := trace.FromContext(ctx)
			t0 := tr.Now()
			correct = evalx.CompareResults(gold, pred) == evalx.MatchYes
			tr.Span(trace.StageMatch, t0)
		}
		resp.ExecCorrect = &correct
	}
	return resp, nil
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers rotate it out during graceful shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: s.metrics.snapshot(0, 0).UptimeSeconds,
		Databases:     len(datasets.Names),
	}
	status := http.StatusOK
	if s.isDraining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeDoc(w, status, resp)
}

// handleDebugTraces serves the bounded ring of finished request traces as
// JSON: the last n traces in completion order, the n slowest when
// ?slowest=1, or the traces carrying one wire trace ID when ?id= is given
// (the cluster router's stitching fan-out uses this). Tracing disabled
// (TraceBuffer < 0) answers 404 so probes can tell "off" from "idle".
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.countEndpoint("/debugz/traces")
	if s.traces == nil {
		s.writeError(w, errorf(http.StatusNotFound, "tracing_disabled",
			"request tracing is disabled (start with a non-negative trace buffer)"))
		return
	}
	if v := r.URL.Query().Get("id"); v != "" {
		id, ok := trace.ParseID(v)
		if !ok {
			s.writeError(w, errorf(http.StatusBadRequest, "bad_id",
				"query parameter id must be 16 lowercase hex digits"))
			return
		}
		views := s.traces.Find(id)
		if views == nil {
			views = []trace.View{}
		}
		s.writeDoc(w, http.StatusOK, TracesResponse{Traces: views, TraceID: v})
		return
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			s.writeError(w, errorf(http.StatusBadRequest, "bad_n", "query parameter n must be a non-negative integer"))
			return
		}
		n = parsed
	}
	slowest := false
	switch v := r.URL.Query().Get("slowest"); v {
	case "", "0", "false":
	case "1", "true":
		slowest = true
	default:
		s.writeError(w, errorf(http.StatusBadRequest, "bad_slowest", "query parameter slowest must be a boolean"))
		return
	}
	s.writeDoc(w, http.StatusOK, TracesResponse{
		Traces:  s.traces.Snapshot(n, slowest),
		Slowest: slowest,
	})
}

// handleMetricsz reports the serving counters.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.countEndpoint("/metricsz")
	entries, evictions := 0, uint64(0)
	if s.cache != nil {
		entries, evictions = s.cache.Len(), s.cache.Evictions()
	}
	snap := s.metrics.snapshot(entries, evictions)
	snap.Stages = s.traces.Stages()
	s.writeDoc(w, http.StatusOK, snap)
}
