package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// inferBodies builds n distinct /v1/infer requests spread across four
// databases, two models, and three variants — the same grid the PR-1
// determinism test covers, now through the serving path.
func inferBodies(n int) []string {
	dbs := []string{"ASIS", "ATBI", "CWO", "KIS"}
	models := []string{"gpt-4o", "gpt-3.5"}
	variants := []string{"native", "regular", "least"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"db":%q,"model":%q,"variant":%q,"question_id":%d}`,
			dbs[i%len(dbs)], models[i%len(models)], variants[i%len(variants)], (i%5)+1)
	}
	return out
}

// TestConcurrentInferDeterministic fires 100 simultaneous /v1/infer requests
// across 4 databases and asserts every response body is byte-identical to a
// serial run. Caching is disabled on both servers so the comparison covers
// the batched compute path, not cache replay; run under -race this is the
// serving-layer extension of the sweep determinism guarantee.
func TestConcurrentInferDeterministic(t *testing.T) {
	const n = 100
	bodies := inferBodies(n)

	// Serial baseline: one request at a time, batches of one.
	serial := New(Config{CacheEntries: -1, RequestTimeout: 60 * time.Second})
	want := make([]string, n)
	for i, b := range bodies {
		rec := do(serial, http.MethodPost, "/v1/infer", b, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("serial request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()
	}

	// Concurrent run on a fresh server with a wide batch window so requests
	// genuinely coalesce into micro-batches.
	concurrent := New(Config{
		CacheEntries:   -1,
		RequestTimeout: 60 * time.Second,
		BatchWindow:    5 * time.Millisecond,
		MaxBatch:       8,
	})
	got := make([]string, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := do(concurrent, http.MethodPost, "/v1/infer", bodies[i], nil)
			if rec.Code != http.StatusOK {
				t.Errorf("concurrent request %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			got[i] = rec.Body.String()
		}(i)
	}
	close(start) // release all 100 at once
	wg.Wait()

	for i := range bodies {
		if got[i] != want[i] {
			t.Errorf("request %d diverged under concurrency:\nserial:     %s\nconcurrent: %s", i, want[i], got[i])
		}
	}

	// The wide window plus simultaneous release must have produced at least
	// one real micro-batch.
	if concurrent.metrics.batches.Load() == 0 || concurrent.metrics.batchedReq.Load() <= concurrent.metrics.batches.Load() {
		t.Logf("batches=%d batched_requests=%d (no multi-request batch formed; timing-dependent, not a failure)",
			concurrent.metrics.batches.Load(), concurrent.metrics.batchedReq.Load())
	}

	// Repeating one request serially afterwards still matches: shared model
	// state and memo caches did not drift.
	rec := do(concurrent, http.MethodPost, "/v1/infer", bodies[0], nil)
	if rec.Body.String() != want[0] {
		t.Errorf("post-storm replay diverged:\nwant %s\ngot  %s", want[0], rec.Body.String())
	}
}

// TestGracefulDrainUnderLoad starts requests, begins shutdown mid-flight,
// and asserts every in-flight request still completes with a terminal
// outcome while new requests are rejected.
func TestGracefulDrainUnderLoad(t *testing.T) {
	s := New(Config{
		CacheEntries:     -1,
		RequestTimeout:   60 * time.Second,
		BatchWindow:      20 * time.Millisecond, // long window: requests are pending when drain hits
		FixedBatchWindow: true,                  // adaptive flushing would dispatch them before the drain
	})
	bodies := inferBodies(16)
	results := make(chan int, len(bodies))
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(s, http.MethodPost, "/v1/infer", bodies[i], nil)
			results <- rec.Code
		}(i)
	}
	// Give the requests a moment to enqueue into pending batches, then
	// drain: pending batches must flush, not hang.
	time.Sleep(5 * time.Millisecond)
	s.Drain()
	wg.Wait()
	close(results)

	for code := range results {
		// Requests that enqueued before the drain finish with 200; requests
		// that arrived after BeginShutdown are rejected with 503. Nothing
		// may hang or fail with any other status.
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("in-flight request finished with status %d", code)
		}
	}

	// After the drain, new API requests are rejected.
	rec := do(s, http.MethodPost, "/v1/classify", `{"identifier":"x"}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request = %d, want 503", rec.Code)
	}
}
