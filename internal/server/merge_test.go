package server

import (
	"math"
	"testing"

	"github.com/snails-bench/snails/internal/trace"
)

func TestMergeSnapshotsSumsAndRecomputes(t *testing.T) {
	a := MetricsSnapshot{
		UptimeSeconds:      10,
		RequestsTotal:      100,
		ObservabilityTotal: 3,
		RequestsByPath:     map[string]uint64{"/v1/infer": 90, "/metricsz": 3},
		ErrorsTotal:        2,
		CacheHits:          60,
		CacheMisses:        40,
		CacheCoalesced:     8,
		CacheEntries:       5,
		Batches:            10,
		BatchedRequests:    30,
		LatencyP50Millis:   2,
		LatencyP99Millis:   8,
		Stages: []trace.StageSnapshot{
			{Stage: "decode", Count: 10, TotalSeconds: 0.1, P50Millis: 10, P99Millis: 12},
		},
	}
	b := MetricsSnapshot{
		UptimeSeconds:    25,
		RequestsTotal:    300,
		RequestsByPath:   map[string]uint64{"/v1/infer": 280, "/v1/link": 20},
		CacheHits:        30,
		CacheMisses:      70,
		CacheCoalesced:   5,
		CacheEntries:     7,
		Batches:          10,
		BatchedRequests:  50,
		LatencyP50Millis: 4,
		LatencyP99Millis: 16,
		Stages: []trace.StageSnapshot{
			{Stage: "decode", Count: 30, TotalSeconds: 0.5, P50Millis: 20, P99Millis: 24},
			{Stage: "exec", Count: 5, TotalSeconds: 0.05, P50Millis: 9, P99Millis: 11},
		},
	}

	m := MergeSnapshots([]MetricsSnapshot{a, b})

	if m.RequestsTotal != 400 || m.ObservabilityTotal != 3 || m.ErrorsTotal != 2 {
		t.Errorf("counter sums wrong: %+v", m)
	}
	if m.RequestsByPath["/v1/infer"] != 370 || m.RequestsByPath["/v1/link"] != 20 {
		t.Errorf("per-path sums wrong: %v", m.RequestsByPath)
	}
	if m.UptimeSeconds != 25 {
		t.Errorf("uptime = %v, want the oldest shard's 25", m.UptimeSeconds)
	}
	// Ratio recomputed from summed parts (90/200), not averaged (0.45 vs
	// the 0.45 average here is coincidental — use values where they differ).
	if math.Abs(m.CacheHitRatio-0.45) > 1e-9 {
		t.Errorf("cache hit ratio = %v, want 0.45", m.CacheHitRatio)
	}
	if m.CacheEntries != 12 {
		t.Errorf("cache entries = %d, want 12", m.CacheEntries)
	}
	if m.CacheCoalesced != 13 {
		t.Errorf("cache coalesced = %d, want 13", m.CacheCoalesced)
	}
	if math.Abs(m.MeanBatchSize-4.0) > 1e-9 {
		t.Errorf("mean batch size = %v, want 80/20 = 4", m.MeanBatchSize)
	}
	// Percentiles are request-count-weighted: p50 = (100·2 + 300·4)/400.
	if math.Abs(m.LatencyP50Millis-3.5) > 1e-9 {
		t.Errorf("p50 = %v, want 3.5", m.LatencyP50Millis)
	}
	if math.Abs(m.LatencyP99Millis-14.0) > 1e-9 {
		t.Errorf("p99 = %v, want 14", m.LatencyP99Millis)
	}

	if len(m.Stages) != 2 || m.Stages[0].Stage != "decode" || m.Stages[1].Stage != "exec" {
		t.Fatalf("stages not merged in first-appearance order: %+v", m.Stages)
	}
	d := m.Stages[0]
	if d.Count != 40 || math.Abs(d.TotalSeconds-0.6) > 1e-9 {
		t.Errorf("decode stage sums wrong: %+v", d)
	}
	// Weighted p50 = (10·10 + 30·20)/40 = 17.5; mean = 600ms/40 = 15ms.
	if math.Abs(d.P50Millis-17.5) > 1e-9 || math.Abs(d.MeanMillis-15.0) > 1e-9 {
		t.Errorf("decode stage derived values wrong: %+v", d)
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	m := MergeSnapshots(nil)
	if m.RequestsTotal != 0 || m.CacheHitRatio != 0 || m.Stages != nil {
		t.Errorf("empty merge not zero: %+v", m)
	}
}

// A single-snapshot merge is the snapshot itself (modulo the rebuilt map):
// a 1-shard cluster's /metricsz must read like the shard's own.
func TestMergeSnapshotsIdentity(t *testing.T) {
	a := MetricsSnapshot{
		RequestsTotal:    42,
		RequestsByPath:   map[string]uint64{"/v1/infer": 42},
		CacheHits:        3,
		CacheMisses:      1,
		Batches:          6,
		BatchedRequests:  9,
		LatencyP50Millis: 1.5,
		LatencyP99Millis: 7.25,
	}
	m := MergeSnapshots([]MetricsSnapshot{a})
	if m.RequestsTotal != a.RequestsTotal ||
		m.RequestsByPath["/v1/infer"] != 42 ||
		math.Abs(m.CacheHitRatio-0.75) > 1e-9 ||
		math.Abs(m.MeanBatchSize-1.5) > 1e-9 ||
		m.LatencyP50Millis != a.LatencyP50Millis ||
		m.LatencyP99Millis != a.LatencyP99Millis {
		t.Errorf("single-snapshot merge drifted: %+v", m)
	}
}
