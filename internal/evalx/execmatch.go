// Package evalx implements the SNAILS performance-evaluation layer:
// relaxed execution result matching (set-superset comparison, appendix E.2),
// query-level and identifier-level schema-linking metrics (section 5.2), and
// schema-subsetting metrics (Figure 12).
package evalx

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/sqldb"
)

// MatchOutcome classifies an execution-accuracy comparison.
type MatchOutcome int

const (
	// MatchNo means the prediction is ruled out (wrong cardinality or
	// missing gold columns).
	MatchNo MatchOutcome = iota
	// MatchYes means the prediction passed set-superset comparison.
	MatchYes
	// MatchUndetermined marks empty result sets, which the paper retains
	// for syntactic comparison rather than scoring immediately.
	MatchUndetermined
)

// String names the outcome.
func (m MatchOutcome) String() string {
	switch m {
	case MatchYes:
		return "match"
	case MatchUndetermined:
		return "undetermined"
	default:
		return "no-match"
	}
}

// CompareResults performs the relaxed set-superset execution comparison:
//
//   - result cardinality must be equal and greater than zero;
//   - every gold column must be present (as a value multiset) among the
//     predicted columns — extra predicted columns do not fail the match;
//   - with columns aligned, the two results must agree row-wise under a
//     canonical ordering.
func CompareResults(gold, pred *sqldb.Result) MatchOutcome {
	if gold == nil || pred == nil {
		return MatchNo
	}
	if gold.Empty() || pred.Empty() {
		return MatchUndetermined
	}
	if gold.NumRows() != pred.NumRows() {
		return MatchNo
	}
	if gold.NumCols() > pred.NumCols() {
		return MatchNo
	}
	assignment := matchColumns(gold, pred, func(a []int) bool {
		return rowsEqualUnderAssignment(gold, pred, a)
	})
	if assignment == nil {
		return MatchNo
	}
	return MatchYes
}

// matchColumns finds an injective mapping gold column -> predicted column
// with identical value multisets AND a passing accept predicate, backtracking
// across interchangeable candidates. The predicate must be part of the search:
// when two columns share a value multiset (candidates are interchangeable),
// the first multiset-valid assignment can fail row-wise comparison while a
// different one passes, so validating only one assignment yields false
// negatives.
func matchColumns(gold, pred *sqldb.Result, accept func(assignment []int) bool) []int {
	goldKeys := make([]string, gold.NumCols())
	for i := range goldKeys {
		goldKeys[i] = gold.ColumnKey(i)
	}
	predKeys := make([]string, pred.NumCols())
	for j := range predKeys {
		predKeys[j] = pred.ColumnKey(j)
	}
	candidates := make([][]int, gold.NumCols())
	for i, gk := range goldKeys {
		for j, pk := range predKeys {
			if gk == pk {
				candidates[i] = append(candidates[i], j)
			}
		}
		if len(candidates[i]) == 0 {
			return nil
		}
	}
	// Assign scarce columns first.
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(candidates[order[a]]) < len(candidates[order[b]])
	})
	assignment := make([]int, len(candidates))
	used := make([]bool, pred.NumCols())
	var assign func(k int) bool
	assign = func(k int) bool {
		if k == len(order) {
			return accept(assignment)
		}
		i := order[k]
		for _, j := range candidates[i] {
			if used[j] {
				continue
			}
			used[j] = true
			assignment[i] = j
			if assign(k + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	if !assign(0) {
		return nil
	}
	return assignment
}

// rowsEqualUnderAssignment checks that the multiset of gold row tuples
// equals the multiset of predicted row tuples projected onto the assigned
// columns.
func rowsEqualUnderAssignment(gold, pred *sqldb.Result, assignment []int) bool {
	key := func(row []sqldb.Value, cols []int) string {
		var b strings.Builder
		for _, c := range cols {
			b.WriteString(strings.ToUpper(row[c].String()))
			b.WriteByte('\x1f')
		}
		return b.String()
	}
	goldCols := make([]int, gold.NumCols())
	for i := range goldCols {
		goldCols[i] = i
	}
	counts := map[string]int{}
	for _, r := range gold.Rows {
		counts[key(r, goldCols)]++
	}
	for _, r := range pred.Rows {
		k := key(r, assignment)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

// OrderedCompare additionally requires identical row order for questions
// that specify an ordering. It runs the same column-assignment search as
// CompareResults but with the ordered row predicate: an assignment that
// matches unordered may still disagree in row order while a different
// multiset-valid assignment agrees, so the ordered check must drive the
// backtracking rather than re-validate one unordered assignment. Ordered
// row-wise equality implies multiset equality, so no separate unordered pass
// is needed.
func OrderedCompare(gold, pred *sqldb.Result) MatchOutcome {
	if gold == nil || pred == nil {
		return MatchNo
	}
	if gold.Empty() || pred.Empty() {
		return MatchUndetermined
	}
	if gold.NumRows() != pred.NumRows() {
		return MatchNo
	}
	if gold.NumCols() > pred.NumCols() {
		return MatchNo
	}
	assignment := matchColumns(gold, pred, func(a []int) bool {
		return rowsEqualOrdered(gold, pred, a)
	})
	if assignment == nil {
		return MatchNo
	}
	return MatchYes
}

// rowsEqualOrdered reports whether gold and pred agree cell-for-cell in row
// order under the column assignment.
func rowsEqualOrdered(gold, pred *sqldb.Result, assignment []int) bool {
	for ri, grow := range gold.Rows {
		for gi, pi := range assignment {
			if !strings.EqualFold(grow[gi].String(), pred.Rows[ri][pi].String()) {
				return false
			}
		}
	}
	return true
}
