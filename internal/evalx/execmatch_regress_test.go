package evalx

import (
	"testing"

	"github.com/snails-bench/snails/internal/sqldb"
)

// Regression tests for the column-assignment search: when several columns
// share a value multiset, the first multiset-valid assignment can fail the
// row-wise predicate while another passes. The backtracker must keep
// searching instead of validating a single assignment.

// Gold columns a and b both hold the multiset {1,2}, so the columns are
// interchangeable at the multiset level. Only the swapped assignment
// (a→col1, b→col0) reproduces gold's row order; the identity assignment
// passes the unordered comparison but disagrees in order.
func TestOrderedCompareSearchesAssignments(t *testing.T) {
	g := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(2)},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(1)})
	p := res([]string{"x", "y"},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(1)},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(2)})

	if got := CompareResults(g, p); got != MatchYes {
		t.Fatalf("unordered comparison should pass: %v", got)
	}
	if got := OrderedCompare(g, p); got != MatchYes {
		t.Errorf("ordered comparison must search all assignments, got %v", got)
	}
}

// The same failure mode inside CompareResults itself: columns a and b are
// multiset-interchangeable, but only the swapped assignment makes the row
// multisets agree (the third column pins rows together).
func TestCompareResultsSearchesAssignments(t *testing.T) {
	g := res([]string{"a", "b", "tag"},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(2), sqldb.String("A")},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(1), sqldb.String("B")})
	p := res([]string{"x", "y", "tag"},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(1), sqldb.String("A")},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(2), sqldb.String("B")})

	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("comparison must search all assignments, got %v", got)
	}
}

func TestOrderedCompareStillRejectsWrongOrder(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Int(2)}, []sqldb.Value{sqldb.Int(1)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Fatalf("unordered comparison should pass: %v", got)
	}
	if got := OrderedCompare(g, p); got != MatchNo {
		t.Errorf("reversed single-column rows must fail ordered comparison, got %v", got)
	}
}

// OrderedCompare performs its own prechecks now (it no longer delegates to
// CompareResults), so pin the edge-case outcomes to the unordered ones.
func TestOrderedComparePrechecks(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)})
	if got := OrderedCompare(nil, g); got != MatchNo {
		t.Errorf("nil gold: %v", got)
	}
	if got := OrderedCompare(g, nil); got != MatchNo {
		t.Errorf("nil pred: %v", got)
	}
	empty := res([]string{"a"})
	if got := OrderedCompare(empty, g); got != MatchUndetermined {
		t.Errorf("empty gold: %v", got)
	}
	if got := OrderedCompare(g, empty); got != MatchUndetermined {
		t.Errorf("empty pred: %v", got)
	}
	twoRows := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	if got := OrderedCompare(g, twoRows); got != MatchNo {
		t.Errorf("row-count mismatch: %v", got)
	}
	wide := res([]string{"a", "b"}, []sqldb.Value{sqldb.Int(1), sqldb.Int(2)})
	if got := OrderedCompare(wide, g); got != MatchNo {
		t.Errorf("gold wider than pred: %v", got)
	}
}
