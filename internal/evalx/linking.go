package evalx

import (
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/sqlparse"
)

// LinkScores holds the query-level schema-linking metrics of section 5.2.
type LinkScores struct {
	Recall    float64
	Precision float64
	F1        float64
	// Valid is false when the predicted query could not be parsed, which
	// the paper excludes from linking analysis.
	Valid bool
}

// QueryLinking computes QueryRecall / QueryPrecision / QueryF1 between the
// identifier sets of the gold and predicted queries (equations 1-3).
func QueryLinking(gold, pred sqlparse.IdentifierSet) LinkScores {
	s := LinkScores{Valid: true}
	inter := float64(gold.Intersect(pred))
	if len(gold) > 0 {
		s.Recall = inter / float64(len(gold))
	}
	if len(pred) > 0 {
		s.Precision = inter / float64(len(pred))
	}
	if s.Recall+s.Precision > 0 {
		s.F1 = 2 * s.Recall * s.Precision / (s.Recall + s.Precision)
	}
	return s
}

// QueryLinkingSQL parses both queries and computes linking scores. The
// returned Valid flag is false when the predicted SQL fails to parse (the
// gold query is trusted and panics are not tolerated there).
func QueryLinkingSQL(goldSQL, predSQL string) LinkScores {
	goldSel, err := sqlparse.Parse(goldSQL)
	if err != nil {
		return LinkScores{Valid: false}
	}
	predSel, err := sqlparse.Parse(predSQL)
	if err != nil {
		return LinkScores{Valid: false}
	}
	return QueryLinking(sqlparse.Analyze(goldSel).All(), sqlparse.Analyze(predSel).All())
}

// IdentifierTally accumulates identifier-level linking statistics
// (equation 4): for each native identifier, how many gold queries contained
// it and how many predictions recalled it.
type IdentifierTally struct {
	gold  map[string]int
	match map[string]int
}

// NewIdentifierTally returns an empty tally.
func NewIdentifierTally() *IdentifierTally {
	return &IdentifierTally{gold: map[string]int{}, match: map[string]int{}}
}

// Observe records one gold/predicted identifier-set pair.
func (t *IdentifierTally) Observe(gold, pred sqlparse.IdentifierSet) {
	for id := range gold {
		t.gold[id]++
		if _, ok := pred[id]; ok {
			t.match[id]++
		}
	}
}

// Recall returns IdentifierRecall for one identifier; ok is false if the
// identifier never appeared in a gold query.
func (t *IdentifierTally) Recall(identifier string) (float64, bool) {
	key := strings.ToUpper(identifier)
	g := t.gold[key]
	if g == 0 {
		return 0, false
	}
	return float64(t.match[key]) / float64(g), true
}

// GoldCount returns how many gold queries contained the identifier.
func (t *IdentifierTally) GoldCount(identifier string) int {
	return t.gold[strings.ToUpper(identifier)]
}

// Identifiers returns all identifiers seen in gold queries, sorted. The
// order is part of the determinism contract: downstream figures accumulate
// floats in this order, so it must not depend on map iteration.
func (t *IdentifierTally) Identifiers() []string {
	out := make([]string, 0, len(t.gold))
	for id := range t.gold {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SubsetScores holds schema-subsetting (table retrieval) metrics.
type SubsetScores struct {
	Recall    float64
	Precision float64
	F1        float64
}

// SchemaSubsetting scores a filtered table set against the gold tables.
func SchemaSubsetting(goldTables, selectedTables sqlparse.IdentifierSet) SubsetScores {
	var s SubsetScores
	inter := float64(goldTables.Intersect(selectedTables))
	if len(goldTables) > 0 {
		s.Recall = inter / float64(len(goldTables))
	}
	if len(selectedTables) > 0 {
		s.Precision = inter / float64(len(selectedTables))
	}
	if s.Recall+s.Precision > 0 {
		s.F1 = 2 * s.Recall * s.Precision / (s.Recall + s.Precision)
	}
	return s
}
