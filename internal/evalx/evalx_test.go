package evalx

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/snails-bench/snails/internal/sqldb"
	"github.com/snails-bench/snails/internal/sqlparse"
)

func res(cols []string, rows ...[]sqldb.Value) *sqldb.Result {
	return &sqldb.Result{Columns: cols, Rows: rows}
}

func TestCompareIdentical(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("identical results: %v", got)
	}
}

func TestCompareRowOrderInsensitive(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Int(2)}, []sqldb.Value{sqldb.Int(1)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("row order should not matter: %v", got)
	}
}

func TestCompareColumnOrderInsensitive(t *testing.T) {
	g := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.String("x")},
		[]sqldb.Value{sqldb.Int(2), sqldb.String("y")})
	p := res([]string{"bb", "aa"},
		[]sqldb.Value{sqldb.String("x"), sqldb.Int(1)},
		[]sqldb.Value{sqldb.String("y"), sqldb.Int(2)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("column order/name should not matter: %v", got)
	}
}

func TestCompareSupersetColumnsAllowed(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	p := res([]string{"a", "extra"},
		[]sqldb.Value{sqldb.Int(1), sqldb.String("junk")},
		[]sqldb.Value{sqldb.Int(2), sqldb.String("junk")})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("extra predicted columns should not fail: %v", got)
	}
}

func TestCompareMissingGoldColumnFails(t *testing.T) {
	g := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.String("x")})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)})
	if got := CompareResults(g, p); got != MatchNo {
		t.Errorf("missing gold column must fail: %v", got)
	}
}

func TestCompareCardinalityMismatch(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(1)})
	if got := CompareResults(g, p); got != MatchNo {
		t.Errorf("cardinality mismatch must fail: %v", got)
	}
}

func TestCompareEmptyUndetermined(t *testing.T) {
	g := res([]string{"a"})
	p := res([]string{"a"})
	if got := CompareResults(g, p); got != MatchUndetermined {
		t.Errorf("empty results are undetermined: %v", got)
	}
	if got := CompareResults(nil, p); got != MatchNo {
		t.Errorf("nil gold must fail: %v", got)
	}
}

func TestCompareRowAlignment(t *testing.T) {
	// Same column multisets but rows paired differently must fail: (1,x),(2,y)
	// vs (1,y),(2,x).
	g := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.String("x")},
		[]sqldb.Value{sqldb.Int(2), sqldb.String("y")})
	p := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.String("y")},
		[]sqldb.Value{sqldb.Int(2), sqldb.String("x")})
	if got := CompareResults(g, p); got != MatchNo {
		t.Errorf("misaligned rows must fail: %v", got)
	}
}

func TestCompareDuplicateColumnsBacktracking(t *testing.T) {
	// Two gold columns with identical content: assignment needs to be
	// injective but any pairing works.
	g := res([]string{"a", "b"},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(1)},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(2)})
	p := res([]string{"x", "y"},
		[]sqldb.Value{sqldb.Int(1), sqldb.Int(1)},
		[]sqldb.Value{sqldb.Int(2), sqldb.Int(2)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("duplicate columns should match injectively: %v", got)
	}
}

func TestCompareCaseInsensitiveValues(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.String("Wolf")})
	p := res([]string{"a"}, []sqldb.Value{sqldb.String("WOLF")})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("value comparison should be case-insensitive: %v", got)
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(4)})
	p := res([]string{"a"}, []sqldb.Value{sqldb.Float(4.0)})
	if got := CompareResults(g, p); got != MatchYes {
		t.Errorf("4 and 4.0 should match: %v", got)
	}
}

func TestOrderedCompare(t *testing.T) {
	g := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	inOrder := res([]string{"a"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	reversed := res([]string{"a"}, []sqldb.Value{sqldb.Int(2)}, []sqldb.Value{sqldb.Int(1)})
	if OrderedCompare(g, inOrder) != MatchYes {
		t.Error("in-order comparison should pass")
	}
	if OrderedCompare(g, reversed) != MatchNo {
		t.Error("ordered comparison must reject reordered rows")
	}
}

func TestCompareReflexiveProperty(t *testing.T) {
	f := func(vals [6]int16) bool {
		r := res([]string{"a", "b"},
			[]sqldb.Value{sqldb.Int(int64(vals[0])), sqldb.Int(int64(vals[1]))},
			[]sqldb.Value{sqldb.Int(int64(vals[2])), sqldb.Int(int64(vals[3]))},
			[]sqldb.Value{sqldb.Int(int64(vals[4])), sqldb.Int(int64(vals[5]))})
		return CompareResults(r, r.Clone()) == MatchYes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- linking ------------------------------------------------------------------

func set(ids ...string) sqlparse.IdentifierSet {
	s := sqlparse.IdentifierSet{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestQueryLinkingPaperExample(t *testing.T) {
	// The appendix E.4 worked example: |gold|=9, |pred|=10, |intersection|=6.
	gold := set("TLU_PLANTSPECIES", "TBL_OVERSTORY", "TBL_SEEDLINGS", "SPECIES",
		"SPECIESCODE", "COMMONNAME", "SPCODE", "OVERSTORY_ID", "SEEDLINGS_ID")
	pred := set("TLU_PLANTSPECIES", "TBL_OVERSTORY", "TBL_SAPLINGS", "SPECIES",
		"SPECIESCODE", "COMMONNAME", "SPCODE", "GENUS", "SUBSPECIES", "SUBGENUS")
	s := QueryLinking(gold, pred)
	if math.Abs(s.Recall-6.0/9.0) > 1e-9 {
		t.Errorf("recall = %v, want 0.667", s.Recall)
	}
	if math.Abs(s.Precision-0.6) > 1e-9 {
		t.Errorf("precision = %v, want 0.60", s.Precision)
	}
	if math.Abs(s.F1-0.632) > 1e-3 {
		t.Errorf("f1 = %v, want 0.632", s.F1)
	}
}

func TestQueryLinkingSQLInvalidPrediction(t *testing.T) {
	s := QueryLinkingSQL("SELECT a FROM t", "THIS IS NOT SQL")
	if s.Valid {
		t.Error("unparseable prediction must be flagged invalid")
	}
	s = QueryLinkingSQL("SELECT a FROM t", "SELECT a FROM t")
	if !s.Valid || s.Recall != 1 || s.Precision != 1 {
		t.Errorf("identical queries should score 1: %+v", s)
	}
}

func TestLinkingBounds(t *testing.T) {
	f := func(goldN, predN, interN uint8) bool {
		gold := sqlparse.IdentifierSet{}
		pred := sqlparse.IdentifierSet{}
		gi := int(goldN%10) + 1
		pi := int(predN%10) + 1
		in := int(interN) % (gi + 1)
		if in > pi {
			in = pi
		}
		for i := 0; i < gi; i++ {
			gold.Add(idName("g", i, in))
		}
		for i := 0; i < pi; i++ {
			pred.Add(idName("p", i, in))
		}
		s := QueryLinking(gold, pred)
		return s.Recall >= 0 && s.Recall <= 1 && s.Precision >= 0 && s.Precision <= 1 && s.F1 >= 0 && s.F1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func idName(prefix string, i, shared int) string {
	if i < shared {
		return "SHARED" + string(rune('A'+i))
	}
	return prefix + string(rune('A'+i))
}

func TestIdentifierTally(t *testing.T) {
	tally := NewIdentifierTally()
	tally.Observe(set("A", "B"), set("A"))
	tally.Observe(set("A", "C"), set("A", "C"))
	tally.Observe(set("B"), set("X"))
	if r, ok := tally.Recall("A"); !ok || r != 1 {
		t.Errorf("recall(A) = %v %v", r, ok)
	}
	if r, ok := tally.Recall("B"); !ok || r != 0 {
		t.Errorf("recall(B) = %v %v", r, ok)
	}
	if r, ok := tally.Recall("C"); !ok || r != 1 {
		t.Errorf("recall(C) = %v %v", r, ok)
	}
	if _, ok := tally.Recall("NEVER"); ok {
		t.Error("unseen identifier should report !ok")
	}
	if tally.GoldCount("a") != 2 {
		t.Errorf("gold count case-insensitivity broken: %d", tally.GoldCount("a"))
	}
	if len(tally.Identifiers()) != 3 {
		t.Errorf("identifiers = %v", tally.Identifiers())
	}
}

func TestSchemaSubsetting(t *testing.T) {
	gold := set("T1", "T2")
	selected := set("T1", "T2", "T3", "T4")
	s := SchemaSubsetting(gold, selected)
	if s.Recall != 1 || s.Precision != 0.5 {
		t.Errorf("subsetting scores wrong: %+v", s)
	}
	if math.Abs(s.F1-2.0/3.0) > 1e-9 {
		t.Errorf("f1 = %v", s.F1)
	}
	empty := SchemaSubsetting(set(), set())
	if empty.Recall != 0 || empty.Precision != 0 || empty.F1 != 0 {
		t.Errorf("empty sets should score 0: %+v", empty)
	}
}
