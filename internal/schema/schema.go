// Package schema models relational database schemas for the SNAILS
// benchmark: tables, columns, foreign keys, the identifier crosswalk that
// maps every native identifier to Regular/Low/Least forms, schema-knowledge
// prompt rendering, and natural-view DDL generation.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"github.com/snails-bench/snails/internal/memo"
	"github.com/snails-bench/snails/internal/modifier"
	"github.com/snails-bench/snails/internal/naturalness"
)

// ColType is a simplified SQL column type.
type ColType int

const (
	TypeInt ColType = iota
	TypeFloat
	TypeText
	TypeDate
	TypeBool
)

// String renders the type as the T-SQL name used in schema prompts.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeText:
		return "nvarchar"
	case TypeDate:
		return "date"
	case TypeBool:
		return "bit"
	default:
		return "nvarchar"
	}
}

// ColumnRef identifies a column by native table and column name.
type ColumnRef struct {
	Table  string
	Column string
}

// Column is one schema column.
type Column struct {
	// Name is the native identifier.
	Name string
	// Concept is the Regular-naturalness word decomposition of the meaning.
	Concept []string
	// NativeLevel is the naturalness of the native identifier.
	NativeLevel naturalness.Level
	Type        ColType
	// Ref is the foreign-key target, if any.
	Ref *ColumnRef
	// PK marks primary-key membership.
	PK bool
}

// Table is one schema table.
type Table struct {
	Name        string
	Concept     []string
	NativeLevel naturalness.Level
	Columns     []*Column
}

// Column returns the column with the given native name (case-insensitive).
func (t *Table) Column(name string) (*Column, bool) {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return nil, false
}

// Database is a complete schema with its crosswalk and metadata.
type Database struct {
	Name   string
	Tables []*Table
	// Crosswalk maps every native identifier (tables and columns) to its
	// forms at every naturalness level.
	Crosswalk *modifier.Crosswalk
	// Metadata is the database's data dictionary, used by the expander.
	Metadata *modifier.MetadataIndex
	// promptMemo caches rendered schema-knowledge blocks per PromptOptions.
	// The sweep asks for the same handful of renderings thousands of times,
	// concurrently. nil (hand-built Database literals) disables caching.
	promptMemo *memo.Cache[string]
}

// Table returns the table with the given native name (case-insensitive).
func (d *Database) Table(name string) (*Table, bool) {
	for _, t := range d.Tables {
		if strings.EqualFold(t.Name, name) {
			return t, true
		}
	}
	return nil, false
}

// NumColumns returns the total column count across tables.
func (d *Database) NumColumns() int {
	n := 0
	for _, t := range d.Tables {
		n += len(t.Columns)
	}
	return n
}

// Identifiers returns every native identifier (table names then column
// names) in deterministic order. Duplicate column names across tables appear
// once per occurrence.
func (d *Database) Identifiers() []string {
	var out []string
	for _, t := range d.Tables {
		out = append(out, t.Name)
		for _, c := range t.Columns {
			out = append(out, c.Name)
		}
	}
	return out
}

// UniqueIdentifiers returns the deduplicated, sorted native identifiers.
func (d *Database) UniqueIdentifiers() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, id := range d.Identifiers() {
		key := strings.ToUpper(id)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NativeLevels returns the naturalness levels of all identifiers
// (one per occurrence), for proportion and combined-naturalness reporting.
func (d *Database) NativeLevels() []naturalness.Level {
	var out []naturalness.Level
	for _, t := range d.Tables {
		out = append(out, t.NativeLevel)
		for _, c := range t.Columns {
			out = append(out, c.NativeLevel)
		}
	}
	return out
}

// CombinedNaturalness returns the equation-5 combined score of the native
// schema.
func (d *Database) CombinedNaturalness() float64 {
	return naturalness.CombinedOf(d.NativeLevels())
}

// IdentifierLevel looks up the native naturalness level of an identifier.
func (d *Database) IdentifierLevel(name string) (naturalness.Level, bool) {
	if e, ok := d.Crosswalk.Lookup(name); ok {
		return e.NativeLevel, true
	}
	return naturalness.Regular, false
}

// Rename maps a native identifier to the requested schema variant level.
// The Native pseudo-level is handled by callers passing the identity.
func (d *Database) Rename(native string, l naturalness.Level) string {
	return d.Crosswalk.ToLevel(native, l)
}

// Variant describes which schema version a prompt or experiment uses:
// the native identifiers or one of the three modified virtual schemas.
type Variant int

const (
	VariantNative Variant = iota
	VariantRegular
	VariantLow
	VariantLeast
)

// Variants lists all schema variants in report order.
var Variants = []Variant{VariantNative, VariantRegular, VariantLow, VariantLeast}

// String returns the variant name used in figures.
func (v Variant) String() string {
	switch v {
	case VariantNative:
		return "Native"
	case VariantRegular:
		return "Regular"
	case VariantLow:
		return "Low"
	case VariantLeast:
		return "Least"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Level returns the naturalness level of a modified variant; ok is false
// for VariantNative, which keeps identifiers unchanged.
func (v Variant) Level() (naturalness.Level, bool) {
	switch v {
	case VariantRegular:
		return naturalness.Regular, true
	case VariantLow:
		return naturalness.Low, true
	case VariantLeast:
		return naturalness.Least, true
	default:
		return naturalness.Regular, false
	}
}

// RenameVariant maps a native identifier into the given variant.
func (d *Database) RenameVariant(native string, v Variant) string {
	if l, ok := v.Level(); ok {
		return d.Rename(native, l)
	}
	return native
}

// ToNativeVariant maps a variant identifier back to native (denaturalization).
func (d *Database) ToNativeVariant(name string, v Variant) string {
	if l, ok := v.Level(); ok {
		return d.Crosswalk.ToNative(name, l)
	}
	return name
}
