package schema

import (
	"fmt"
	"strings"
)

// PromptOptions controls schema-knowledge rendering for NL-to-SQL prompts.
type PromptOptions struct {
	// Variant selects native identifiers or a modified virtual schema.
	Variant Variant
	// Tables restricts rendering to a subset (native table names); nil means
	// all tables. Used by the SBOD module segmentation and by schema
	// filtering stages.
	Tables []string
	// IncludeTypes appends column types, the paper's default format.
	IncludeTypes bool
}

// SchemaKnowledge renders the database's schema-knowledge block in the
// paper's zero-shot format:
//
//	#TableName (Col1Name Type, Col2Name Type, ...)
//
// one line per table, with identifiers mapped to the requested variant.
// Renders are memoized per option set once the database is built (builder
// databases are frozen before evaluation; hand-assembled literals render
// uncached).
func (d *Database) SchemaKnowledge(opts PromptOptions) string {
	if d.promptMemo == nil {
		return d.schemaKnowledge(opts)
	}
	key := opts.cacheKey()
	if s, ok := d.promptMemo.Get(key); ok {
		return s
	}
	s := d.schemaKnowledge(opts)
	d.promptMemo.Put(key, s)
	return s
}

// cacheKey serializes the options into a stable memo key. A nil table subset
// (all tables) and an empty one (no tables) are distinct renderings.
func (o PromptOptions) cacheKey() string {
	var b strings.Builder
	b.Grow(8 + 16*len(o.Tables))
	fmt.Fprintf(&b, "%d|%t|", o.Variant, o.IncludeTypes)
	if o.Tables == nil {
		b.WriteString("*")
	}
	for _, t := range o.Tables {
		b.WriteString(t)
		b.WriteByte('\x00')
	}
	return b.String()
}

func (d *Database) schemaKnowledge(opts PromptOptions) string {
	var keep map[string]struct{}
	if opts.Tables != nil {
		keep = make(map[string]struct{}, len(opts.Tables))
		for _, t := range opts.Tables {
			keep[strings.ToUpper(t)] = struct{}{}
		}
	}
	var b strings.Builder
	for _, t := range d.Tables {
		if keep != nil {
			if _, ok := keep[strings.ToUpper(t.Name)]; !ok {
				continue
			}
		}
		b.WriteByte('#')
		b.WriteString(d.RenameVariant(t.Name, opts.Variant))
		b.WriteByte('(')
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.RenameVariant(c.Name, opts.Variant))
			if opts.IncludeTypes {
				b.WriteByte(' ')
				b.WriteString(c.Type.String())
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// ZeroShotPrompt assembles the full zero-shot prompt of section 4.1: task
// instructions, database header, schema knowledge, and the NL question.
func (d *Database) ZeroShotPrompt(question string, opts PromptOptions) string {
	var b strings.Builder
	b.WriteString("For the database described next, provide only a sql query. ")
	b.WriteString("do not include any text that is not valid SQL.\n")
	fmt.Fprintf(&b, "#Database: %s\n", d.Name)
	b.WriteString("#MS SQL Server tables, with their properties:\n")
	b.WriteString(d.SchemaKnowledge(opts))
	b.WriteString("### a sql query, written in the MS SQL Server dialect, to answer the question: ")
	b.WriteString(question)
	b.WriteString("\n")
	return b.String()
}

// NaturalViewDDL generates the section-6 natural-view proof of concept:
// one CREATE VIEW statement per table mapping the Regular-naturalness
// representation onto the native schema under a db_nl schema, leaving the
// dbo base schema untouched for existing integrations.
func (d *Database) NaturalViewDDL() []string {
	out := make([]string, 0, len(d.Tables))
	for _, t := range d.Tables {
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE VIEW db_nl.[%s] AS\nSELECT\n", d.Rename(t.Name, 0))
		for i, c := range t.Columns {
			sep := ","
			if i == len(t.Columns)-1 {
				sep = ""
			}
			fmt.Fprintf(&b, "  [%s] AS [%s]%s\n", c.Name, d.Rename(c.Name, 0), sep)
		}
		fmt.Fprintf(&b, "FROM dbo.[%s];", t.Name)
		out = append(out, b.String())
	}
	return out
}

// TokenEstimate returns a crude prompt-size estimate (whitespace-separated
// chunks) used for SBOD module pruning decisions.
func (d *Database) TokenEstimate(opts PromptOptions) int {
	return len(strings.Fields(d.SchemaKnowledge(opts)))
}
