package schema

import (
	"fmt"
	"strings"

	"github.com/snails-bench/snails/internal/ident"
	"github.com/snails-bench/snails/internal/memo"
	"github.com/snails-bench/snails/internal/modifier"
	"github.com/snails-bench/snails/internal/naturalness"
)

// Builder constructs a Database with exact crosswalk entries: every
// identifier is defined by its Regular concept words and a native
// naturalness level; the builder renders the native name with the
// abbreviator, guarantees scope-level uniqueness, and registers all three
// naturalness forms.
type Builder struct {
	db *Database
	// Style is the rendering convention for this database's identifiers.
	Style ident.CaseStyle
	// used tracks names per level to keep table names unique.
	usedTables [4]map[string]struct{}
}

// NewBuilder starts a database definition.
func NewBuilder(name string, style ident.CaseStyle) *Builder {
	b := &Builder{
		db: &Database{
			Name:       name,
			Crosswalk:  modifier.NewCrosswalk(),
			Metadata:   modifier.NewMetadataIndex(),
			promptMemo: memo.NewBounded[string](1 << 10),
		},
		Style: style,
	}
	for i := range b.usedTables {
		b.usedTables[i] = make(map[string]struct{})
	}
	return b
}

// render builds the identifier forms for a concept at a native level.
func (b *Builder) render(words []string, level naturalness.Level, style ident.CaseStyle) modifier.Entry {
	var e modifier.Entry
	e.Words = words
	e.NativeLevel = level
	for _, l := range naturalness.Levels {
		e.Forms[l] = modifier.Abbreviate(words, l, style)
	}
	e.Native = e.Forms[level]
	return e
}

// TableBuilder accumulates one table's columns.
type TableBuilder struct {
	b     *Builder
	table *Table
	// usedCols tracks column names per level within the table scope.
	usedCols [3]map[string]struct{}
}

// AddTable defines a table by its concept words and native naturalness. A
// prefix such as "tbl" may be included in the words to reproduce real-world
// prefix habits.
func (b *Builder) AddTable(level naturalness.Level, words ...string) *TableBuilder {
	e := b.render(words, level, b.Style)
	// Ensure the native table name is unique within the database.
	for i := 2; ; i++ {
		if _, dup := b.usedTables[0][strings.ToUpper(e.Native)]; !dup {
			break
		}
		e = b.render(append(append([]string{}, words...), fmt.Sprintf("%d", i)), level, b.Style)
	}
	stored := b.db.Crosswalk.Add(e)
	b.usedTables[0][strings.ToUpper(stored.Native)] = struct{}{}
	t := &Table{
		Name:        stored.Native,
		Concept:     words,
		NativeLevel: level,
	}
	b.db.Tables = append(b.db.Tables, t)
	tb := &TableBuilder{b: b, table: t}
	for i := range tb.usedCols {
		tb.usedCols[i] = make(map[string]struct{})
	}
	return tb
}

// Describe adds a data-dictionary entry for the table.
func (tb *TableBuilder) Describe(description string) *TableBuilder {
	tb.b.db.Metadata.Add(tb.table.Name, description)
	return tb
}

// Col adds a column defined by concept words.
func (tb *TableBuilder) Col(level naturalness.Level, typ ColType, words ...string) *Column {
	e := tb.b.render(words, level, tb.b.Style)
	for i := 2; ; i++ {
		if _, dup := tb.usedCols[0][strings.ToUpper(e.Native)]; !dup {
			break
		}
		e = tb.b.render(append(append([]string{}, words...), fmt.Sprintf("%d", i)), level, tb.b.Style)
	}
	stored := tb.b.db.Crosswalk.Add(e)
	tb.usedCols[0][strings.ToUpper(stored.Native)] = struct{}{}
	c := &Column{
		Name:        stored.Native,
		Concept:     words,
		NativeLevel: level,
		Type:        typ,
	}
	tb.table.Columns = append(tb.table.Columns, c)
	// Auto-document every column so the expander has metadata to retrieve.
	tb.b.db.Metadata.Add(c.Name, strings.Join(words, " ")+" of the "+strings.Join(tb.table.Concept, " "))
	return c
}

// PK adds a primary-key integer column.
func (tb *TableBuilder) PK(level naturalness.Level, words ...string) *Column {
	c := tb.Col(level, TypeInt, words...)
	c.PK = true
	return c
}

// FK adds a foreign-key column referencing another table's column.
func (tb *TableBuilder) FK(level naturalness.Level, ref ColumnRef, words ...string) *Column {
	c := tb.Col(level, TypeInt, words...)
	c.Ref = &ref
	return c
}

// Table returns the table under construction.
func (tb *TableBuilder) Table() *Table { return tb.table }

// Database finalizes and returns the built database.
func (b *Builder) Database() *Database { return b.db }
