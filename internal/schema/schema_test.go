package schema

import (
	"strings"
	"testing"

	"github.com/snails-bench/snails/internal/naturalness"
)

func buildSample() *Database {
	b := NewBuilder("TESTDB", 3 /* CasePascal */)
	loc := b.AddTable(naturalness.Low, "tbl", "locations")
	locID := loc.PK(naturalness.Regular, "location", "id")
	loc.Col(naturalness.Regular, TypeText, "location", "name")
	loc.Col(naturalness.Low, TypeText, "county")
	obs := b.AddTable(naturalness.Least, "observations")
	obs.PK(naturalness.Regular, "observation", "id")
	obs.FK(naturalness.Low, ColumnRef{Table: loc.Table().Name, Column: locID.Name}, "location", "id")
	obs.Col(naturalness.Least, TypeFloat, "vegetation", "height")
	obs.Col(naturalness.Regular, TypeDate, "observation", "date")
	return b.Database()
}

func TestBuilderConstructsSchema(t *testing.T) {
	db := buildSample()
	if len(db.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(db.Tables))
	}
	if db.NumColumns() != 7 {
		t.Fatalf("want 7 columns, got %d", db.NumColumns())
	}
	// Native names reflect native levels: a Least table name should be
	// heavily abbreviated.
	obs := db.Tables[1]
	if obs.NativeLevel != naturalness.Least {
		t.Fatalf("table level wrong: %v", obs.NativeLevel)
	}
	if len(obs.Name) >= len("observations") {
		t.Errorf("Least table name should be abbreviated: %q", obs.Name)
	}
}

func TestCrosswalkRegisteredForAllIdentifiers(t *testing.T) {
	db := buildSample()
	for _, id := range db.Identifiers() {
		if _, ok := db.Crosswalk.Lookup(id); !ok {
			t.Errorf("identifier %q missing from crosswalk", id)
		}
	}
}

func TestRenameRoundTrip(t *testing.T) {
	db := buildSample()
	for _, id := range db.UniqueIdentifiers() {
		for _, v := range []Variant{VariantRegular, VariantLow, VariantLeast} {
			mod := db.RenameVariant(id, v)
			back := db.ToNativeVariant(mod, v)
			if !strings.EqualFold(back, id) {
				t.Errorf("round trip %v: %q -> %q -> %q", v, id, mod, back)
			}
		}
		// Native variant is the identity.
		if db.RenameVariant(id, VariantNative) != id {
			t.Errorf("native variant should not rename %q", id)
		}
	}
}

func TestSchemaKnowledgeFormat(t *testing.T) {
	db := buildSample()
	sk := db.SchemaKnowledge(PromptOptions{Variant: VariantNative, IncludeTypes: true})
	lines := strings.Split(strings.TrimSpace(sk), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one line per table, got %d: %q", len(lines), sk)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "#") || !strings.Contains(ln, "(") || !strings.HasSuffix(ln, ")") {
			t.Errorf("malformed schema line: %q", ln)
		}
	}
	if !strings.Contains(sk, " int") || !strings.Contains(sk, " float") {
		t.Errorf("types missing from schema knowledge: %q", sk)
	}
}

func TestSchemaKnowledgeVariantRenames(t *testing.T) {
	db := buildSample()
	nat := db.SchemaKnowledge(PromptOptions{Variant: VariantNative})
	reg := db.SchemaKnowledge(PromptOptions{Variant: VariantRegular})
	least := db.SchemaKnowledge(PromptOptions{Variant: VariantLeast})
	if nat == reg && nat == least {
		t.Error("variants should differ from native rendering")
	}
	if !strings.Contains(reg, "VegetationHeight") {
		t.Errorf("regular variant should contain full words: %q", reg)
	}
	if strings.Contains(least, "VegetationHeight") {
		t.Errorf("least variant should not contain full words: %q", least)
	}
}

func TestSchemaKnowledgeTableSubset(t *testing.T) {
	db := buildSample()
	first := db.Tables[0].Name
	sk := db.SchemaKnowledge(PromptOptions{Variant: VariantNative, Tables: []string{first}})
	if lines := strings.Split(strings.TrimSpace(sk), "\n"); len(lines) != 1 {
		t.Errorf("subset should render 1 table, got %d", len(lines))
	}
}

func TestZeroShotPrompt(t *testing.T) {
	db := buildSample()
	p := db.ZeroShotPrompt("How many observations are there?", PromptOptions{Variant: VariantNative, IncludeTypes: true})
	for _, want := range []string{
		"provide only a sql query",
		"#Database: TESTDB",
		"MS SQL Server tables",
		"How many observations are there?",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
}

func TestNaturalViewDDL(t *testing.T) {
	db := buildSample()
	ddl := db.NaturalViewDDL()
	if len(ddl) != len(db.Tables) {
		t.Fatalf("want %d views, got %d", len(db.Tables), len(ddl))
	}
	for _, stmt := range ddl {
		if !strings.HasPrefix(stmt, "CREATE VIEW db_nl.[") {
			t.Errorf("view DDL should target db_nl schema: %q", stmt)
		}
		if !strings.Contains(stmt, "FROM dbo.[") {
			t.Errorf("view DDL should select from dbo: %q", stmt)
		}
	}
}

func TestCombinedNaturalness(t *testing.T) {
	db := buildSample()
	c := db.CombinedNaturalness()
	if c <= 0 || c >= 1 {
		t.Errorf("mixed schema combined naturalness should be in (0,1): %v", c)
	}
	// Hand-check: levels = [Low, Reg, Reg, Low, Least, Reg, Low, Least, Reg]
	levels := db.NativeLevels()
	want := naturalness.CombinedOf(levels)
	if c != want {
		t.Errorf("combined = %v, want %v", c, want)
	}
}

func TestColumnUniquenessWithinTable(t *testing.T) {
	b := NewBuilder("DUP", 1 /* CaseSnake */)
	tb := b.AddTable(naturalness.Regular, "things")
	c1 := tb.Col(naturalness.Regular, TypeInt, "value")
	c2 := tb.Col(naturalness.Regular, TypeInt, "value")
	if c1.Name == c2.Name {
		t.Errorf("duplicate concept should get unique native names: %q vs %q", c1.Name, c2.Name)
	}
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	db := buildSample()
	name := db.Tables[0].Name
	if _, ok := db.Table(strings.ToUpper(name)); !ok {
		t.Error("table lookup should be case-insensitive")
	}
	if _, ok := db.Table("nope"); ok {
		t.Error("unknown table should not be found")
	}
	tbl := db.Tables[0]
	colName := tbl.Columns[0].Name
	if _, ok := tbl.Column(strings.ToLower(colName)); !ok {
		t.Error("column lookup should be case-insensitive")
	}
}

func TestVariantStrings(t *testing.T) {
	want := []string{"Native", "Regular", "Low", "Least"}
	for i, v := range Variants {
		if v.String() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.String(), want[i])
		}
	}
	if _, ok := VariantNative.Level(); ok {
		t.Error("native variant has no modification level")
	}
	if l, ok := VariantLeast.Level(); !ok || l != naturalness.Least {
		t.Error("least variant level wrong")
	}
}

func TestMetadataPopulated(t *testing.T) {
	db := buildSample()
	if db.Metadata.Len() == 0 {
		t.Fatal("builder should auto-document columns")
	}
	// The Least column VgHt-like identifier should have retrievable context.
	var leastCol *Column
	for _, t2 := range db.Tables {
		for _, c := range t2.Columns {
			if c.NativeLevel == naturalness.Least {
				leastCol = c
			}
		}
	}
	if leastCol == nil {
		t.Fatal("no least column in sample")
	}
	if _, ok := db.Metadata.Lookup(leastCol.Name); !ok {
		t.Errorf("metadata missing for %q", leastCol.Name)
	}
}
