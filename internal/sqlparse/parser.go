package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement (optionally terminated by ';').
func Parse(input string) (*Select, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.at(TokEOF, "") {
		return nil, fmt.Errorf("sqlparse: trailing input at %q", p.cur().Text)
	}
	return sel, nil
}

type parser struct {
	toks []Tok
	pos  int
}

func (p *parser) cur() Tok  { return p.toks[p.pos] }
func (p *parser) next() Tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	if t.Kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.Text, text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Tok, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Tok{}, fmt.Errorf("sqlparse: expected %q, found %q at offset %d", text, p.cur().Text, p.cur().Pos)
}

// acceptName consumes an identifier token. Function-name keywords (COUNT,
// YEAR, ...) double as identifiers in real schemas ("count" is a column of
// the ASIS minnow survey table), so they are accepted here when they are not
// followed by an opening parenthesis.
func (p *parser) acceptName() (Tok, bool) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.pos++
		return t, true
	}
	if t.Kind == TokKeyword {
		if _, ok := funcKeywords[t.Text]; ok && !(p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(") {
			p.pos++
			return t, true
		}
	}
	return Tok{}, false
}

func (p *parser) expectName(what string) (Tok, error) {
	if t, ok := p.acceptName(); ok {
		return t, nil
	}
	return Tok{}, fmt.Errorf("sqlparse: expected %s, found %q at offset %d", what, p.cur().Text, p.cur().Pos)
}

func (p *parser) parseSelect() (*Select, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.accept(TokKeyword, "DISTINCT") {
		sel.Distinct = true
	}
	if p.accept(TokKeyword, "TOP") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, fmt.Errorf("sqlparse: TOP requires a number: %w", err)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: invalid TOP count %q", t.Text)
		}
		sel.Top = n
	}
	// select list
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = &from
		for {
			kind, ok := p.acceptJoin()
			if !ok {
				break
			}
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Kind: kind, Right: right, On: on})
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	return sel, nil
}

func (p *parser) acceptJoin() (JoinKind, bool) {
	switch {
	case p.accept(TokKeyword, "JOIN"):
		return JoinInner, true
	case p.at(TokKeyword, "INNER"):
		p.next()
		p.accept(TokKeyword, "JOIN")
		return JoinInner, true
	case p.at(TokKeyword, "LEFT"):
		p.next()
		p.accept(TokKeyword, "OUTER")
		p.accept(TokKeyword, "JOIN")
		return JoinLeft, true
	}
	return JoinInner, false
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.at(TokOp, "*") {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	var ref TableRef
	if p.accept(TokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return ref, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return ref, err
		}
		ref.Subquery = sub
	} else {
		t, err := p.expectName("table name")
		if err != nil {
			return ref, err
		}
		name := t.Text
		// Support schema-qualified names like dbo.Table and db_nl.Table:
		// the last component is the table name, earlier components form the
		// schema qualifier.
		var qualifier []string
		for p.accept(TokOp, ".") {
			t2, err := p.expectName("table name")
			if err != nil {
				return ref, err
			}
			qualifier = append(qualifier, name)
			name = t2.Text
		}
		ref.Schema = strings.Join(qualifier, ".")
		ref.Table = name
	}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return ref, err
		}
		ref.Alias = t.Text
	} else if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | predicate
//	pred   := additive ((=|<>|<|<=|>|>=|LIKE) additive
//	        | IS [NOT] NULL | [NOT] BETWEEN .. AND ..
//	        | [NOT] IN (..))?
//	additive := mult ((+|-) mult)*
//	mult   := primary ((*|/|%) primary)*
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.at(TokKeyword, "EXISTS") {
		p.next()
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &Exists{Subquery: sub}, nil
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison operators
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.at(TokOp, op) {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canon := op
			if canon == "!=" {
				canon = "<>"
			}
			return &Binary{Op: canon, Left: left, Right: right}, nil
		}
	}
	if p.accept(TokKeyword, "LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "LIKE", Left: left, Right: right}, nil
	}
	if p.accept(TokKeyword, "IS") {
		neg := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Inner: left, Negate: neg}, nil
	}
	neg := false
	if p.at(TokKeyword, "NOT") {
		// lookahead for NOT BETWEEN / NOT IN / NOT LIKE
		save := p.pos
		p.next()
		switch {
		case p.at(TokKeyword, "BETWEEN"), p.at(TokKeyword, "IN"):
			neg = true
		case p.accept(TokKeyword, "LIKE"):
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Not{Inner: &Binary{Op: "LIKE", Left: left, Right: right}}, nil
		default:
			p.pos = save
			return left, nil
		}
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{Inner: left, Lo: lo, Hi: hi, Negate: neg}, nil
	}
	if p.accept(TokKeyword, "IN") {
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		in := &InExpr{Inner: left, Negate: neg}
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokOp, "+"), p.at(TokOp, "-"):
			op := p.next().Text
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: op, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokOp, "*"), p.at(TokOp, "/"), p.at(TokOp, "%"):
			op := p.next().Text
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: op, Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

var funcKeywords = map[string]struct{}{
	"COUNT": {}, "SUM": {}, "AVG": {}, "MIN": {}, "MAX": {},
	"YEAR": {}, "MONTH": {}, "DAY": {}, "LEN": {}, "ROUND": {}, "ABS": {},
	"UPPER": {}, "LOWER": {},
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &NumberLit{Text: t.Text}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return NullLit{}, nil
	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.parseCase()
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Subquery: sub}, nil
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &Paren{Inner: inner}, nil
	case t.Kind == TokOp && t.Text == "-":
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "-", Left: &NumberLit{Text: "0"}, Right: inner}, nil
	case t.Kind == TokKeyword:
		if _, isFunc := funcKeywords[t.Text]; isFunc {
			if p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
				return p.parseFuncCall(t.Text)
			}
			// A function keyword not followed by "(" is a plain column
			// reference (e.g. the ASIS "count" column, the NYSED "YEAR").
			p.next()
			if p.accept(TokOp, ".") {
				t2, err := p.expectName("column name")
				if err != nil {
					return nil, err
				}
				return &ColRef{Table: t.Text, Column: t2.Text}, nil
			}
			return &ColRef{Column: t.Text}, nil
		}
		return nil, fmt.Errorf("sqlparse: unexpected keyword %q at offset %d", t.Text, t.Pos)
	case t.Kind == TokIdent:
		p.next()
		name := t.Text
		// Function call written as identifier(...)?
		if !t.Bracketed && p.at(TokOp, "(") {
			return p.parseFuncCallNamed(strings.ToUpper(name))
		}
		if p.accept(TokOp, ".") {
			if p.at(TokOp, "*") {
				p.next()
				return &Star{Table: name}, nil
			}
			t2, err := p.expectName("column name")
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: t2.Text}, nil
		}
		return &ColRef{Column: name}, nil
	default:
		return nil, fmt.Errorf("sqlparse: unexpected token %q at offset %d", t.Text, t.Pos)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // consume keyword
	return p.parseFuncCallNamed(name)
}

func (p *parser) parseFuncCallNamed(name string) (Expr, error) {
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.accept(TokOp, "*") {
		f.Star = true
	} else if !p.at(TokOp, ")") {
		if p.accept(TokKeyword, "DISTINCT") {
			f.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sqlparse: CASE requires at least one WHEN")
	}
	return c, nil
}
