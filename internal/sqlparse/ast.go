package sqlparse

import (
	"fmt"
	"strings"
)

// Node is any AST node.
type Node interface {
	sql(b *strings.Builder, r Renamer)
}

// Renamer rewrites identifiers during rendering; used for query
// denaturalization and identifier tagging. kind is "table" or "column".
type Renamer func(kind, name string) string

// identity is the no-op renamer.
func identity(kind, name string) string { return name }

func render(n Node, r Renamer) string {
	if r == nil {
		r = identity
	}
	var b strings.Builder
	n.sql(&b, r)
	return b.String()
}

// isBareIdent reports whether name can be rendered without quoting: a
// letter or underscore followed by letters, digits, or underscores, and not
// a reserved keyword.
func isBareIdent(name string) bool {
	if name == "" || IsKeyword(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// writeIdent renders an identifier, double-quoting it when it is not a bare
// identifier (empty, embedded punctuation/whitespace, leading digit, or a
// keyword) so rendered queries always re-parse — the denaturalization path
// re-parses and executes its own output.
func writeIdent(b *strings.Builder, name string) {
	if isBareIdent(name) {
		b.WriteString(name)
		return
	}
	b.WriteByte('"')
	b.WriteString(strings.ReplaceAll(name, `"`, `""`))
	b.WriteByte('"')
}

// --- expressions -------------------------------------------------------------

// Expr is any SQL expression.
type Expr interface{ Node }

// Star is the "*" projection (optionally qualified: t.*).
type Star struct{ Table string }

func (s *Star) sql(b *strings.Builder, r Renamer) {
	if s.Table != "" {
		writeIdent(b, r("table", s.Table))
		b.WriteString(".*")
		return
	}
	b.WriteByte('*')
}

// ColRef is a column reference, optionally qualified by a table or alias.
type ColRef struct {
	Table  string // may be an alias; resolved during analysis
	Column string
}

func (c *ColRef) sql(b *strings.Builder, r Renamer) {
	if c.Table != "" {
		writeIdent(b, r("table", c.Table))
		b.WriteByte('.')
	}
	writeIdent(b, r("column", c.Column))
}

// NumberLit is a numeric literal (kept as written).
type NumberLit struct{ Text string }

func (n *NumberLit) sql(b *strings.Builder, r Renamer) { b.WriteString(n.Text) }

// StringLit is a string literal.
type StringLit struct{ Value string }

func (s *StringLit) sql(b *strings.Builder, r Renamer) {
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(s.Value, "'", "''"))
	b.WriteByte('\'')
}

// NullLit is the NULL literal.
type NullLit struct{}

func (NullLit) sql(b *strings.Builder, r Renamer) { b.WriteString("NULL") }

// Binary is a binary operation: comparison, arithmetic, AND/OR, LIKE.
type Binary struct {
	Op          string // upper-cased: =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE
	Left, Right Expr
}

func (x *Binary) sql(b *strings.Builder, r Renamer) {
	x.Left.sql(b, r)
	b.WriteByte(' ')
	b.WriteString(x.Op)
	b.WriteByte(' ')
	x.Right.sql(b, r)
}

// Not is logical negation.
type Not struct{ Inner Expr }

func (n *Not) sql(b *strings.Builder, r Renamer) {
	b.WriteString("NOT ")
	n.Inner.sql(b, r)
}

// Paren preserves explicit grouping.
type Paren struct{ Inner Expr }

func (p *Paren) sql(b *strings.Builder, r Renamer) {
	b.WriteByte('(')
	p.Inner.sql(b, r)
	b.WriteByte(')')
}

// FuncCall is a function application; Star is true for COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

func (f *FuncCall) sql(b *strings.Builder, r Renamer) {
	b.WriteString(f.Name)
	b.WriteByte('(')
	if f.Star {
		b.WriteByte('*')
	} else {
		if f.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.sql(b, r)
		}
	}
	b.WriteByte(')')
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	Inner  Expr
	Negate bool
}

func (x *IsNull) sql(b *strings.Builder, r Renamer) {
	x.Inner.sql(b, r)
	if x.Negate {
		b.WriteString(" IS NOT NULL")
	} else {
		b.WriteString(" IS NULL")
	}
}

// Between is "expr [NOT] BETWEEN lo AND hi".
type Between struct {
	Inner, Lo, Hi Expr
	Negate        bool
}

func (x *Between) sql(b *strings.Builder, r Renamer) {
	x.Inner.sql(b, r)
	if x.Negate {
		b.WriteString(" NOT")
	}
	b.WriteString(" BETWEEN ")
	x.Lo.sql(b, r)
	b.WriteString(" AND ")
	x.Hi.sql(b, r)
}

// InExpr is "expr [NOT] IN (list)" or "expr [NOT] IN (subquery)".
type InExpr struct {
	Inner    Expr
	List     []Expr
	Subquery *Select
	Negate   bool
}

func (x *InExpr) sql(b *strings.Builder, r Renamer) {
	x.Inner.sql(b, r)
	if x.Negate {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	if x.Subquery != nil {
		x.Subquery.sql(b, r)
	} else {
		for i, e := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			e.sql(b, r)
		}
	}
	b.WriteByte(')')
}

// Exists is "[NOT] EXISTS (subquery)".
type Exists struct {
	Subquery *Select
	Negate   bool
}

func (x *Exists) sql(b *strings.Builder, r Renamer) {
	if x.Negate {
		b.WriteString("NOT ")
	}
	b.WriteString("EXISTS (")
	x.Subquery.sql(b, r)
	b.WriteByte(')')
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct{ Subquery *Select }

func (x *SubqueryExpr) sql(b *strings.Builder, r Renamer) {
	b.WriteByte('(')
	x.Subquery.sql(b, r)
	b.WriteByte(')')
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN...THEN arm.
type CaseWhen struct{ Cond, Then Expr }

func (x *CaseExpr) sql(b *strings.Builder, r Renamer) {
	b.WriteString("CASE")
	for _, w := range x.Whens {
		b.WriteString(" WHEN ")
		w.Cond.sql(b, r)
		b.WriteString(" THEN ")
		w.Then.sql(b, r)
	}
	if x.Else != nil {
		b.WriteString(" ELSE ")
		x.Else.sql(b, r)
	}
	b.WriteString(" END")
}

// --- statement structure ------------------------------------------------------

// SelectItem is one projection in the select list.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s *SelectItem) sql(b *strings.Builder, r Renamer) {
	s.Expr.sql(b, r)
	if s.Alias != "" {
		b.WriteString(" AS ")
		writeIdent(b, s.Alias)
	}
}

// TableRef is a FROM-clause source: a base table or a derived subquery.
type TableRef struct {
	// Schema is the optional schema qualifier (dbo, db_nl, ...). It is
	// preserved verbatim so view lookups can distinguish db_nl.X from X.
	Schema   string
	Table    string // base table name ("" when Subquery != nil)
	Subquery *Select
	Alias    string
}

func (t *TableRef) sql(b *strings.Builder, r Renamer) {
	if t.Subquery != nil {
		b.WriteByte('(')
		t.Subquery.sql(b, r)
		b.WriteByte(')')
	} else {
		if t.Schema != "" {
			writeIdent(b, t.Schema)
			b.WriteByte('.')
		}
		writeIdent(b, r("table", t.Table))
	}
	if t.Alias != "" {
		b.WriteByte(' ')
		writeIdent(b, t.Alias)
	}
}

// JoinKind enumerates supported join types.
type JoinKind int

const (
	JoinInner JoinKind = iota
	JoinLeft
)

func (k JoinKind) String() string {
	if k == JoinLeft {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// Join is one JOIN clause.
type Join struct {
	Kind  JoinKind
	Right TableRef
	On    Expr
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a parsed SELECT statement.
type Select struct {
	Distinct bool
	Top      int // 0 means absent
	Items    []SelectItem
	From     *TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
}

func (s *Select) sql(b *strings.Builder, r Renamer) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Top > 0 {
		fmt.Fprintf(b, "TOP %d ", s.Top)
	}
	for i := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		s.Items[i].sql(b, r)
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		s.From.sql(b, r)
		for i := range s.Joins {
			b.WriteByte(' ')
			b.WriteString(s.Joins[i].Kind.String())
			b.WriteByte(' ')
			s.Joins[i].Right.sql(b, r)
			b.WriteString(" ON ")
			s.Joins[i].On.sql(b, r)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		s.Where.sql(b, r)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			e.sql(b, r)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		s.Having.sql(b, r)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			o.Expr.sql(b, r)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
}

// SQL renders the statement back to SQL text.
func (s *Select) SQL() string { return render(s, nil) }

// SQLRenamed renders the statement with identifiers rewritten by r.
func (s *Select) SQLRenamed(r Renamer) string { return render(s, r) }
