package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) *Select {
	t.Helper()
	sel, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustParse(t, "SELECT species, count FROM observations")
	if len(sel.Items) != 2 || sel.From == nil || sel.From.Table != "observations" {
		t.Fatalf("bad parse: %+v", sel)
	}
}

func TestParsePaperExampleASIS(t *testing.T) {
	// ASIS question 8 from the paper appendix.
	sql := `SELECT stage, sum(count) minnowCountSum
	FROM tblFieldDataMinnowTrapSurveys
	WHERE locationID = 'ASIS_HERPS_20H'
	GROUP BY stage;`
	sel := mustParse(t, sql)
	if sel.Items[1].Alias != "minnowCountSum" {
		t.Errorf("implicit alias lost: %+v", sel.Items[1])
	}
	f, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || f.Name != "SUM" {
		t.Errorf("sum() not parsed as function: %+v", sel.Items[1].Expr)
	}
	if len(sel.GroupBy) != 1 {
		t.Errorf("group by lost")
	}
	a := Analyze(sel)
	if !a.Tables.Contains("tblFieldDataMinnowTrapSurveys") {
		t.Errorf("table missing: %v", a.Tables.Sorted())
	}
	if !a.Columns.Contains("stage") || !a.Columns.Contains("count") || !a.Columns.Contains("locationID") {
		t.Errorf("columns missing: %v", a.Columns.Sorted())
	}
	if a.Columns.Contains("minnowCountSum") {
		t.Error("alias should not be counted as a column")
	}
}

func TestParsePaperExampleSBOD(t *testing.T) {
	sql := `SELECT StatusOfP, StatusOfE, StreetNoW, StreetNoH
	FROM OHEM employees
	JOIN HTM1 teamMembers ON employees.empId = teamMembers.empID
	JOIN OHTM emplTeams ON teamMembers.teamID = emplTeams.teamID
	WHERE emplTeams.name = 'Purchasing'`
	sel := mustParse(t, sql)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	a := Analyze(sel)
	for _, tab := range []string{"OHEM", "HTM1", "OHTM"} {
		if !a.Tables.Contains(tab) {
			t.Errorf("table %s missing: %v", tab, a.Tables.Sorted())
		}
	}
	// Aliases must not appear as tables.
	for _, alias := range []string{"employees", "teamMembers", "emplTeams"} {
		if a.Tables.Contains(alias) {
			t.Errorf("alias %s counted as table", alias)
		}
	}
}

func TestParseExistsNotExists(t *testing.T) {
	// ATBI question 30 shape from the appendix.
	sql := `SELECT species, CommonName FROM tlu_PlantSpecies sp
	WHERE EXISTS( SELECT overstory_id FROM tbl_Overstory WHERE SpCode = sp.SpeciesCode )
	AND NOT EXISTS ( SELECT Seedlings_ID FROM tbl_Seedlings WHERE SpCode = sp.SpeciesCode )`
	sel := mustParse(t, sql)
	flags := CountClauses(sel)
	if !flags.Exists || !flags.Subquery || !flags.Negation || !flags.Where {
		t.Errorf("clause flags wrong: %+v", flags)
	}
	a := Analyze(sel)
	for _, want := range []string{"TLU_PLANTSPECIES", "TBL_OVERSTORY", "TBL_SEEDLINGS"} {
		if !a.Tables.Contains(want) {
			t.Errorf("missing table %s: %v", want, a.Tables.Sorted())
		}
	}
	for _, want := range []string{"SPECIES", "COMMONNAME", "SPCODE", "OVERSTORY_ID", "SEEDLINGS_ID", "SPECIESCODE"} {
		if !a.Columns.Contains(want) {
			t.Errorf("missing column %s: %v", want, a.Columns.Sorted())
		}
	}
}

func TestParseTopDistinct(t *testing.T) {
	sel := mustParse(t, "SELECT DISTINCT TOP 5 name FROM locations ORDER BY name DESC")
	if !sel.Distinct || sel.Top != 5 {
		t.Fatalf("distinct/top lost: %+v", sel)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order by lost: %+v", sel.OrderBy)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*) FROM obs WHERE x > 1")
	f := sel.Items[0].Expr.(*FuncCall)
	if !f.Star || f.Name != "COUNT" {
		t.Fatalf("count(*) mis-parsed: %+v", f)
	}
}

func TestParseBracketedIdentifiers(t *testing.T) {
	sel := mustParse(t, "SELECT [LOC_TYPE], COUNT(*) AS cnt FROM [TBL_LOCATIONS] WHERE [COUNTY] = 'SHASTA COUNTY' GROUP BY [LOC_TYPE]")
	a := Analyze(sel)
	if !a.Tables.Contains("TBL_LOCATIONS") || !a.Columns.Contains("LOC_TYPE") || !a.Columns.Contains("COUNTY") {
		t.Errorf("bracketed identifiers mishandled: %v %v", a.Tables.Sorted(), a.Columns.Sorted())
	}
}

func TestParseInSubqueryAndBetween(t *testing.T) {
	sql := `SELECT name FROM species WHERE code IN (SELECT sp FROM sightings WHERE yr BETWEEN 2000 AND 2020) AND kind NOT IN ('x','y')`
	sel := mustParse(t, sql)
	flags := CountClauses(sel)
	if !flags.Subquery || !flags.Negation {
		t.Errorf("flags: %+v", flags)
	}
}

func TestParseLeftJoin(t *testing.T) {
	sel := mustParse(t, "SELECT a.x FROM t1 a LEFT JOIN t2 b ON a.id = b.id WHERE b.id IS NULL")
	if sel.Joins[0].Kind != JoinLeft {
		t.Error("left join kind lost")
	}
	flags := CountClauses(sel)
	if flags.CKJoin {
		t.Error("single-equality ON is not a composite key join")
	}
}

func TestCompositeKeyJoinDetection(t *testing.T) {
	sel := mustParse(t, "SELECT v.x FROM crash c JOIN vehicle v ON c.caseno = v.caseno AND c.psu = v.psu")
	flags := CountClauses(sel)
	if !flags.CKJoin {
		t.Error("composite-key join not detected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"UPDATE t SET x = 1",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT a FROM t WHERE x = 'unterminated",
		"SELECT [broken FROM t",
		"SELECT * FROM t; extra",
		"SELECT TOP abc * FROM t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestRoundTripRendersParseably(t *testing.T) {
	queries := []string{
		"SELECT species, COUNT(*) AS n FROM obs WHERE yr >= 2000 GROUP BY species HAVING COUNT(*) > 3 ORDER BY n DESC",
		"SELECT TOP 10 a.x, b.y FROM t1 a JOIN t2 b ON a.id = b.id AND a.k = b.k WHERE a.x <> 5",
		"SELECT DISTINCT name FROM sp WHERE EXISTS (SELECT 1 FROM ob WHERE ob.code = sp.code)",
		"SELECT x FROM t WHERE c LIKE 'abc%' AND d IS NOT NULL",
		"SELECT CASE WHEN x > 1 THEN 'hi' ELSE 'lo' END AS lvl FROM t",
		"SELECT AVG(v) FROM (SELECT v FROM raw WHERE v > 0) sub",
		"SELECT x FROM t WHERE NOT (a = 1 OR b = 2)",
	}
	for _, q := range queries {
		sel := mustParse(t, q)
		rendered := sel.SQL()
		sel2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-parse of rendered %q failed: %v", rendered, err)
			continue
		}
		if sel2.SQL() != rendered {
			t.Errorf("render not stable:\n first=%q\nsecond=%q", rendered, sel2.SQL())
		}
	}
}

func TestRenameIdentifiersPreservesAliases(t *testing.T) {
	sql := "SELECT LcTp, COUNT(*) AS LocationCount FROM Locs WHERE Cty = 'Shasta County' GROUP BY LcTp"
	sel := mustParse(t, sql)
	mapping := map[string]string{
		"LCTP": "LOC_TYPE", "LOCS": "TBL_LOCATIONS", "CTY": "COUNTY",
	}
	out := RenameIdentifiers(sel, func(kind, name string) string {
		if v, ok := mapping[strings.ToUpper(name)]; ok {
			return v
		}
		return name
	})
	for _, want := range []string{"LOC_TYPE", "TBL_LOCATIONS", "COUNTY", "LocationCount"} {
		if !strings.Contains(out, want) {
			t.Errorf("denaturalized query missing %q: %s", want, out)
		}
	}
	if strings.Contains(out, "LcTp") || strings.Contains(out, "Locs ") {
		t.Errorf("modified identifiers remain: %s", out)
	}
	// The denaturalized query must itself parse.
	if _, err := Parse(out); err != nil {
		t.Errorf("denaturalized output unparseable: %v\n%s", err, out)
	}
}

func TestRenameDoesNotTouchStringLiterals(t *testing.T) {
	// Substring collisions inside literals were the paper's motivation for
	// parser-based (not string-based) replacement.
	sql := "SELECT x FROM Locs WHERE name = 'Locs'"
	sel := mustParse(t, sql)
	out := RenameIdentifiers(sel, func(kind, name string) string {
		if strings.EqualFold(name, "Locs") {
			return "TBL_LOCATIONS"
		}
		return name
	})
	if !strings.Contains(out, "'Locs'") {
		t.Errorf("literal mutated: %s", out)
	}
	if !strings.Contains(out, "FROM TBL_LOCATIONS") {
		t.Errorf("table not renamed: %s", out)
	}
}

func TestTagIdentifiers(t *testing.T) {
	sel := mustParse(t, "SELECT LcTp FROM Locs")
	out := TagIdentifiers(sel)
	if !strings.Contains(out, "<TABLE_NAME>Locs</TABLE_NAME>") ||
		!strings.Contains(out, "<COLUMN_NAME>LcTp</COLUMN_NAME>") {
		t.Errorf("tagging wrong: %s", out)
	}
}

func TestQualifiedStar(t *testing.T) {
	sel := mustParse(t, "SELECT sp.* FROM species sp")
	a := Analyze(sel)
	if a.Tables.Contains("sp") {
		t.Error("alias qualifier of star counted as table")
	}
}

func TestSchemaQualifiedTable(t *testing.T) {
	sel := mustParse(t, "SELECT x FROM dbo.Locations")
	a := Analyze(sel)
	if !a.Tables.Contains("Locations") {
		t.Errorf("schema-qualified table mis-parsed: %v", a.Tables.Sorted())
	}
}

func TestCommentsSkipped(t *testing.T) {
	sel := mustParse(t, "-- question 8\nSELECT x FROM t -- trailing\n")
	if sel.From.Table != "t" {
		t.Error("comments broke parsing")
	}
}

func TestAnalyzeAllUnion(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE b = 1")
	all := Analyze(sel).All()
	if len(all) != 3 {
		t.Errorf("All() = %v", all.Sorted())
	}
	if all.Intersect(all) != 3 {
		t.Error("self-intersection should equal size")
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Fuzz-style: Parse on arbitrary input must return an error, never panic.
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s)
		_, _ = Parse("SELECT a FROM t WHERE " + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Lex(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
